lib/exec/tscan.ml: Cost Heap_file Predicate Rdb_engine Rdb_storage Scan Table

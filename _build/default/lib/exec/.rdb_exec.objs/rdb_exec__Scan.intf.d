lib/exec/scan.mli: Btree Predicate Rdb_btree Rdb_data Rdb_engine Rid Row Table

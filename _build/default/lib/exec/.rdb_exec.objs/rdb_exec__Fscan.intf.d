lib/exec/fscan.mli: Cost Filter Predicate Rdb_engine Rdb_rid Rdb_storage Scan Table

lib/exec/final_stage.ml: Array Cost Heap_file Predicate Rdb_data Rdb_engine Rdb_storage Rid Scan Table

lib/exec/jscan.ml: Btree Cost Cost_model Filter Float Int List Predicate Printf Rdb_btree Rdb_data Rdb_engine Rdb_rid Rdb_storage Rdb_util Rid Rid_list Scan Table Trace

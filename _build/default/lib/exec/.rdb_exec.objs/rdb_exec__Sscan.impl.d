lib/exec/sscan.ml: Btree Cost Predicate Rdb_btree Rdb_engine Rdb_storage Scan Table

lib/exec/fscan.ml: Btree Cost Filter Heap_file Predicate Rdb_btree Rdb_engine Rdb_rid Rdb_storage Scan Table

lib/exec/sscan.mli: Cost Predicate Rdb_engine Rdb_storage Scan Table

lib/exec/cost_model.ml: Btree Buffer_pool Cost Float Heap_file Rdb_btree Rdb_engine Rdb_storage Rdb_util Table

lib/exec/cost_model.mli: Rdb_engine Table

lib/exec/uscan.mli: Cost Rdb_data Rdb_engine Rdb_storage Rid Scan Table Trace

lib/exec/scan.ml: Array Btree Predicate Rdb_btree Rdb_data Rdb_engine Rid Row Schema Table Value

lib/exec/final_stage.mli: Cost Predicate Rdb_data Rdb_engine Rdb_storage Rid Scan Table

lib/exec/trace.ml: Format Printf Rdb_util

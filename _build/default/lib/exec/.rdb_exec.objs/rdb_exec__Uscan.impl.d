lib/exec/uscan.ml: Btree Cost Cost_model Float List Predicate Printf Rdb_btree Rdb_data Rdb_engine Rdb_rid Rdb_storage Rid Rid_list Scan Table Trace

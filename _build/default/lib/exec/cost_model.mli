(** Cost projections used by the competition criteria.

    All figures are in weighted cost units ({!Rdb_storage.Cost.total}
    with default weights), assuming a cold cache — the *guaranteed*
    cost of an alternative must not depend on hoped-for buffer hits. *)

open Rdb_engine

val tscan_cost : Table.t -> float
(** Full sequential scan: every data page read once plus per-record
    CPU. *)

val rid_fetch_cost : Table.t -> k:int -> float
(** Fetching [k] distinct records via a *sorted* RID list: expected
    distinct pages by Yao's formula, plus CPU. *)

val index_scan_cost : Table.index -> entries:float -> float
(** Scanning [entries] consecutive index entries: leaf loads at the
    tree's average fill plus the descent, plus per-entry CPU. *)

val index_full_cost : Table.index -> float

val key_order_fetch_cost : Table.t -> Table.index -> entries:float -> float
(** Cost of fetching [entries] records in *index-key order* (what an
    Fscan does): interpolates between the clustered case (key order =
    physical order, one page per page-full of records) and the
    unclustered case (Yao), by the index's measured clustering factor
    (§3(b)). *)

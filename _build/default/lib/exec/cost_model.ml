open Rdb_btree
open Rdb_storage
open Rdb_engine

let w = Cost.default_weights

let tscan_cost table =
  let pages = float_of_int (Table.page_count table) in
  let rows = float_of_int (Table.row_count table) in
  (pages *. w.Cost.physical_read) +. (rows *. w.Cost.cpu_op)

let rid_fetch_cost table ~k =
  if k <= 0 then 0.0
  else begin
    let n = Table.row_count table in
    let per_block = Heap_file.records_per_page (Table.heap table) in
    let pages = Rdb_util.Yao.blocks ~n ~per_block ~k in
    (pages *. w.Cost.physical_read) +. (float_of_int k *. w.Cost.cpu_op)
  end

let index_scan_cost idx ~entries =
  let tree = idx.Table.tree in
  let per_leaf = Float.max 1.0 (Btree.avg_leaf_entries tree) in
  let leaves = entries /. per_leaf in
  let descent = float_of_int (Btree.height tree) in
  ((leaves +. descent) *. w.Cost.physical_read) +. (entries *. w.Cost.cpu_op)

let index_full_cost idx =
  index_scan_cost idx ~entries:(float_of_int (Btree.cardinality idx.Table.tree))

let key_order_fetch_cost table idx ~entries =
  if entries <= 0.0 then 0.0
  else begin
    let clustering = Table.clustering_factor table idx in
    let per_block = float_of_int (Heap_file.records_per_page (Table.heap table)) in
    let clustered_pages = entries /. per_block in
    let distinct_pages =
      Rdb_util.Yao.blocks ~n:(Table.row_count table)
        ~per_block:(Heap_file.records_per_page (Table.heap table))
        ~k:(int_of_float (ceil entries))
    in
    (* Random fetch order revisits pages; once the working set exceeds
       the buffer pool, most revisits miss.  Expected physical reads
       interpolate between "each distinct page once" (pool holds them
       all) and "every fetch misses". *)
    let capacity = float_of_int (Buffer_pool.capacity (Table.pool table)) in
    let hit_ratio = Rdb_util.Stats.clamp (capacity /. Float.max 1.0 distinct_pages) ~lo:0.0 ~hi:1.0 in
    let unclustered_pages =
      Float.max distinct_pages (entries *. (1.0 -. hit_ratio))
    in
    let pages =
      (clustering *. clustered_pages) +. ((1.0 -. clustering) *. unclustered_pages)
    in
    (pages *. w.Cost.physical_read) +. (entries *. w.Cost.cpu_op)
  end

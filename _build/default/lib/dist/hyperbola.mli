(** Truncated-hyperbola fitting (paper §2).

    The paper reports that asymmetric AND/OR transforms of the uniform
    distribution are well approximated by truncated hyperbolas, with
    relative errors 1/4 for [&X], 1/7 for [&&X], 1/23 for [&&&X],
    where the relative error of a fit h to p is

      max_s |p(s) - h(s)| / (max_s p(s) - min_s p(s)).

    The fitted family is h(s) = A / (s + b) + d on [0,1], truncated and
    normalized (A is determined by b, d and the normalization
    constraint).  Right-leaning L-shapes are fitted through their
    mirror. *)

type fit = {
  b : float;  (** pole offset; smaller = more skewed *)
  d : float;  (** vertical offset of the truncated hyperbola *)
  mirrored : bool;  (** fit performed on the mirrored density *)
  relative_error : float;  (** the paper's max-relative-error metric *)
}

val relative_error : Dist.t -> Dist.t -> float
(** The paper's error metric between a density and a candidate fit
    (same bin count required). *)

val density : ?bins:int -> b:float -> d:float -> unit -> Dist.t
(** The normalized truncated hyperbola with parameters [b], [d >= 0].
    Raises [Invalid_argument] for non-positive [b]. *)

val fit : Dist.t -> fit
(** Best fit over a logarithmic grid of [b] refined by golden-section
    search, with [d] swept over a small grid; the mirror orientation
    giving the smaller error is selected. *)

val fitted_dist : Dist.t -> fit -> Dist.t
(** Materialize the fitted density at the distribution's resolution. *)

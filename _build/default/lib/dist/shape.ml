type classification = L_left | L_right | Bell | Flat

let skewness d =
  let m = Dist.mean d in
  let sd = Dist.stddev d in
  if sd <= 1e-12 then 0.0
  else Dist.expectation d (fun s -> ((s -. m) /. sd) ** 3.0)

let concentration d = Dist.quantile d 0.5

let l_shape_score d =
  let med = concentration d in
  (* Uniform has median 0.5; all-mass-at-zero has median ~0. *)
  Rdb_util.Stats.clamp ((0.5 -. med) /. 0.5) ~lo:0.0 ~hi:1.0

let classify d =
  let med = concentration d in
  let sd = Dist.stddev d in
  let uniform_sd = 1.0 /. sqrt 12.0 in
  if med <= 0.2 then L_left
  else if med >= 0.8 then L_right
  else if sd >= uniform_sd *. 0.85 then Flat
  else Bell

let classification_to_string = function
  | L_left -> "L-left"
  | L_right -> "L-right"
  | Bell -> "bell"
  | Flat -> "flat"

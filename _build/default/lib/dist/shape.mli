(** Shape classification of selectivity distributions (paper §2).

    The paper's central statistical finding is that AND/OR chains drive
    selectivity distributions toward *L-shapes*: roughly half the
    probability mass concentrated in a thin sliver at one end of [0,1]
    with the remainder spread over a broad adjacent region.  This
    module quantifies that. *)

type classification =
  | L_left  (** mass concentrated near selectivity 0 (AND-dominant) *)
  | L_right  (** mass concentrated near 1 (OR-dominant) *)
  | Bell  (** unimodal concentration away from both ends *)
  | Flat  (** near-uniform *)

val skewness : Dist.t -> float
(** Standardized third central moment.  Strongly positive for L_left
    shapes, strongly negative for L_right. *)

val concentration : Dist.t -> float
(** The paper's "50% in a small area" measure: the smallest prefix
    width w such that mass([0,w]) >= 0.5, i.e. the median.  Small
    values mean strong left concentration. *)

val l_shape_score : Dist.t -> float
(** In [0,1]: how strongly the distribution is left-L-shaped.  Defined
    as [mass_below m - m] rescaled, where m is the median of a uniform
    reference (0.5): a uniform distribution scores 0, a distribution
    with all mass at 0 scores 1. *)

val classify : Dist.t -> classification
(** Heuristic classification used in reports and tests. *)

val classification_to_string : classification -> string

(** Selectivity probability distributions (paper §2).

    A selectivity distribution is a probability density function over
    the selectivity interval [0,1], represented as a histogram of [bins]
    equal-width bins.  The algebra implements the paper's operators:

    - negation: [p_{~X}(s) = p_X(1-s)] (mirror symmetry);
    - AND under an assumed correlation [c ∈ [-1,+1]]: the combined
      selectivity of point selectivities [sx], [sy] is the linear
      interpolation between [max 0 (sx+sy-1)] (c = -1), [sx*sy] (c = 0)
      and [min sx sy] (c = +1);
    - AND under the *unknown correlation* assumption: a uniform mixture
      of the above over [c ∈ [-1,+1]], which deposits each probability
      mass pair uniformly over the two selectivity segments
      [[max 0 (sx+sy-1), sx*sy]] and [[sx*sy, min sx sy]];
    - OR by De Morgan: [X|Y = ~(~X & ~Y)].

    All operations assume independence *between the distributions*
    (the correlation parameter models correlation between the
    underlying predicates, as in the paper). *)

type t

type correlation =
  | Fixed of float  (** assumed correlation c ∈ [-1, +1] *)
  | Unknown  (** uniform mixture over c ∈ [-1, +1] *)

val default_bins : int
(** Grid resolution used by the convenience constructors (512). *)

(** {1 Constructors} *)

val uniform : ?bins:int -> unit -> t
(** Total uncertainty: flat density on [0,1]. *)

val point : ?bins:int -> float -> t
(** All mass at selectivity [s] (clamped to [0,1]): a perfectly known
    selectivity. *)

val bell : ?bins:int -> mean:float -> stddev:float -> unit -> t
(** Truncated, renormalized Gaussian: an estimate [mean] with
    uncertainty [stddev] (the paper's "bell", e.g. m=0.2, e=0.005 in
    Figure 2.2). *)

val of_density : float array -> t
(** Build from raw non-negative density samples (renormalized).
    Raises [Invalid_argument] if empty, all-zero or containing a
    negative value. *)

val hyperbola : ?bins:int -> b:float -> unit -> t
(** Truncated hyperbola density [h(s) = A / (s + b)] on [0,1],
    normalized.  Small [b] gives extreme L-shapes. *)

(** {1 Algebra} *)

val neg : t -> t
(** Distribution of [~X]. *)

val and_ : corr:correlation -> t -> t -> t
(** Distribution of [X & Y]. *)

val or_ : corr:correlation -> t -> t -> t
(** Distribution of [X | Y] (De Morgan on {!and_}). *)

val join : corr:correlation -> t -> t -> t
(** Distribution of an equi-join's selectivity over the key-domain
    cross product.  The paper (§2): "the JOIN operator behaves almost
    identically to the AND operator when multiple joins use the same
    key which is unique for all underlying tables - the key domain
    cardinality should be used in the selectivity definition"; under
    that framing this *is* {!and_}, and the general JOIN case
    degenerates at least as fast. *)

val and_self : corr:correlation -> t -> t
(** [and_self d] is [and_ d d]: the paper's unary [&X] shorthand
    (conjunction with an independent predicate of identical
    distribution). *)

val or_self : corr:correlation -> t -> t

val chain : op:(t -> t) -> int -> t -> t
(** [chain ~op n d] applies [op] to [d] [n] times ([n >= 0]). *)

(** {1 Queries} *)

val bins : t -> int

val density : t -> float array
(** Copy of the density values; [density.(i)] is the density at the
    midpoint of bin [i].  Sums to [bins] (i.e. integrates to 1). *)

val pdf_at : t -> float -> float
val cdf : t -> float -> float
(** Probability of selectivity [<= s]. *)

val quantile : t -> float -> float
(** Inverse CDF; [quantile d 0.5] is the median. *)

val mean : t -> float
val variance : t -> float
val stddev : t -> float

val mass_below : t -> float -> float
(** Same as {!cdf}; reads better in L-shape contexts: "mass
    concentrated below s". *)

val mode : t -> float
(** Midpoint of the highest-density bin. *)

val sample : Rdb_util.Prng.t -> t -> float
(** Draw a selectivity by inverse-CDF sampling. *)

val expectation : t -> (float -> float) -> float
(** [expectation d f] is E[f(S)]. *)

val scale_cost : t -> float -> (float -> float)
(** [scale_cost d cmax] views the distribution as a *cost* distribution
    on [0, cmax] and returns its density function there (used by the
    competition model, §3). *)

val is_close : ?tolerance:float -> t -> t -> bool
(** L1 distance between densities below [tolerance] (default 0.05);
    distributions must have equal bin counts. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: mean, stddev, quartiles. *)

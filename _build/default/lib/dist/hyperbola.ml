type fit = { b : float; d : float; mirrored : bool; relative_error : float }

let relative_error p h =
  let dp = Dist.density p and dh = Dist.density h in
  if Array.length dp <> Array.length dh then invalid_arg "Hyperbola.relative_error";
  let pmax = Array.fold_left Float.max neg_infinity dp in
  let pmin = Array.fold_left Float.min infinity dp in
  let range = pmax -. pmin in
  if range <= 0.0 then invalid_arg "Hyperbola.relative_error: constant density";
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Float.max !worst (Float.abs (x -. dh.(i)))) dp;
  !worst /. range

let density ?(bins = Dist.default_bins) ~b ~d () =
  if b <= 0.0 then invalid_arg "Hyperbola.density: b <= 0";
  if d < 0.0 then invalid_arg "Hyperbola.density: d < 0";
  (* Per-bin averages (exact integrals of 1/(s+b)), not midpoint
     samples: near the pole a midpoint sample grossly underestimates
     the bin mass, which matters because L-shapes put over half their
     mass in the first few bins. *)
  let h = 1.0 /. float_of_int bins in
  Dist.of_density
    (Array.init bins (fun i ->
         let s0 = float_of_int i *. h and s1 = float_of_int (i + 1) *. h in
         (log ((s1 +. b) /. (s0 +. b)) /. h) +. d))

let try_fit target ~mirrored =
  let p = if mirrored then Dist.neg target else target in
  let n = Dist.bins p in
  let err b d = relative_error p (density ~bins:n ~b ~d ()) in
  (* Coarse logarithmic sweep on b crossed with a d grid, then
     golden-section refinement on b for the best d. *)
  let d_grid = [ 0.0; 0.05; 0.1; 0.2; 0.4; 0.8 ] in
  let best = ref (1.0, 0.0, err 1.0 0.0) in
  List.iter
    (fun d ->
      let b = ref 1e-8 in
      while !b <= 10.0 do
        let e = err !b d in
        let _, _, be = !best in
        if e < be then best := (!b, d, e);
        b := !b *. 1.3
      done)
    d_grid;
  let b0, d0, _ = !best in
  (* Golden-section on log b around the coarse optimum. *)
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let lo = ref (log (b0 /. 2.0)) and hi = ref (log (b0 *. 2.0)) in
  for _ = 1 to 40 do
    let x1 = !hi -. (phi *. (!hi -. !lo)) in
    let x2 = !lo +. (phi *. (!hi -. !lo)) in
    if err (exp x1) d0 < err (exp x2) d0 then hi := x2 else lo := x1
  done;
  let b = exp ((!lo +. !hi) /. 2.0) in
  let e_refined = err b d0 in
  let _, _, e_coarse = !best in
  if e_refined < e_coarse then { b; d = d0; mirrored; relative_error = e_refined }
  else { b = b0; d = d0; mirrored; relative_error = e_coarse }

let fit target =
  let left = try_fit target ~mirrored:false in
  let right = try_fit target ~mirrored:true in
  if left.relative_error <= right.relative_error then left else right

let fitted_dist target f =
  let h = density ~bins:(Dist.bins target) ~b:f.b ~d:f.d () in
  if f.mirrored then Dist.neg h else h

type t = { d : float array } (* density at bin midpoints; mean of d = 1 *)

type correlation = Fixed of float | Unknown

let default_bins = 512

let normalize d =
  let n = Array.length d in
  let total = Array.fold_left ( +. ) 0.0 d in
  if total <= 0.0 then invalid_arg "Dist: non-normalizable density";
  let scale = float_of_int n /. total in
  { d = Array.map (fun x -> x *. scale) d }

let of_density d =
  if Array.length d = 0 then invalid_arg "Dist.of_density: empty";
  Array.iter (fun x -> if x < 0.0 || Float.is_nan x then invalid_arg "Dist.of_density: negative") d;
  normalize (Array.copy d)

let uniform ?(bins = default_bins) () = { d = Array.make bins 1.0 }

let clamp01 s = Rdb_util.Stats.clamp s ~lo:0.0 ~hi:1.0

let midpoint n i = (float_of_int i +. 0.5) /. float_of_int n

let bin_of n s =
  let i = int_of_float (clamp01 s *. float_of_int n) in
  Int.min (n - 1) (Int.max 0 i)

let point ?(bins = default_bins) s =
  let d = Array.make bins 0.0 in
  d.(bin_of bins s) <- 1.0;
  normalize d

let bell ?(bins = default_bins) ~mean ~stddev () =
  if stddev <= 0.0 then point ~bins mean
  else begin
    let d =
      Array.init bins (fun i ->
          let x = midpoint bins i in
          let z = (x -. mean) /. stddev in
          exp (-0.5 *. z *. z))
    in
    normalize d
  end

let hyperbola ?(bins = default_bins) ~b () =
  if b <= 0.0 then invalid_arg "Dist.hyperbola: b must be positive";
  (* Bin-averaged (exact integral of 1/(s+b) per bin) so steep shapes
     keep their mass under discretization. *)
  let h = 1.0 /. float_of_int bins in
  normalize
    (Array.init bins (fun i ->
         let s0 = float_of_int i *. h and s1 = float_of_int (i + 1) *. h in
         log ((s1 +. b) /. (s0 +. b)) /. h))

let bins t = Array.length t.d

let density t = Array.copy t.d

let neg t =
  let n = bins t in
  { d = Array.init n (fun i -> t.d.(n - 1 - i)) }

(* Combined selectivity of point selectivities under correlation c. *)
let combine_and ~c sx sy =
  let indep = sx *. sy in
  if c >= 0.0 then ((1.0 -. c) *. indep) +. (c *. Float.min sx sy)
  else ((1.0 +. c) *. indep) -. (c *. Float.max 0.0 (sx +. sy -. 1.0))

(* Deposit of probability mass [w] spread uniformly over [x0, x1] into
   a mass accumulator: [mass] takes point deposits, [slope] is a
   difference array of uniform density covering whole bins.  Partial
   end bins receive their exact overlap as point mass. *)
let deposit_uniform ~mass ~slope x0 x1 w =
  let n = Array.length mass in
  let h = 1.0 /. float_of_int n in
  let width = x1 -. x0 in
  if width <= h *. 0.5 then begin
    let i = bin_of n ((x0 +. x1) *. 0.5) in
    mass.(i) <- mass.(i) +. w
  end
  else begin
    let dens = w /. width in
    let i0 = bin_of n x0 and i1 = bin_of n x1 in
    if i0 = i1 then mass.(i0) <- mass.(i0) +. w
    else begin
      let first_overlap = (float_of_int (i0 + 1) *. h) -. x0 in
      mass.(i0) <- mass.(i0) +. (dens *. first_overlap);
      let last_overlap = x1 -. (float_of_int i1 *. h) in
      mass.(i1) <- mass.(i1) +. (dens *. last_overlap);
      if i1 > i0 + 1 then begin
        slope.(i0 + 1) <- slope.(i0 + 1) +. dens;
        slope.(i1) <- slope.(i1) -. dens
      end
    end
  end

let and_ ~corr a b =
  let n = Int.max (bins a) (bins b) in
  let wa = Array.map (fun x -> x /. float_of_int (bins a)) a.d in
  let wb = Array.map (fun x -> x /. float_of_int (bins b)) b.d in
  let mass = Array.make n 0.0 in
  let slope = Array.make n 0.0 in
  let na = bins a and nb = bins b in
  (match corr with
  | Fixed c ->
      if c < -1.0 || c > 1.0 then invalid_arg "Dist.and_: correlation out of [-1,1]";
      for i = 0 to na - 1 do
        let wi = wa.(i) in
        if wi > 0.0 then begin
          let sx = midpoint na i in
          for j = 0 to nb - 1 do
            let wj = wb.(j) in
            if wj > 0.0 then begin
              let s = combine_and ~c sx (midpoint nb j) in
              let k = bin_of n s in
              mass.(k) <- mass.(k) +. (wi *. wj)
            end
          done
        end
      done
  | Unknown ->
      (* Uniform mixture over c in [-1,+1]: half the pair mass spreads
         uniformly over [neg_end, indep] (c in [-1,0]) and half over
         [indep, pos_end] (c in [0,+1]), because the combined
         selectivity is linear in c on each half-interval. *)
      for i = 0 to na - 1 do
        let wi = wa.(i) in
        if wi > 0.0 then begin
          let sx = midpoint na i in
          for j = 0 to nb - 1 do
            let wj = wb.(j) in
            if wj > 0.0 then begin
              let sy = midpoint nb j in
              let indep = sx *. sy in
              let neg_end = Float.max 0.0 (sx +. sy -. 1.0) in
              let pos_end = Float.min sx sy in
              let w = wi *. wj in
              deposit_uniform ~mass ~slope neg_end indep (w *. 0.5);
              deposit_uniform ~mass ~slope indep pos_end (w *. 0.5)
            end
          done
        end
      done);
  (* Fold the difference array into per-bin mass. *)
  let h = 1.0 /. float_of_int n in
  let running = ref 0.0 in
  let d =
    Array.mapi
      (fun i m ->
        running := !running +. slope.(i);
        m +. (!running *. h))
      mass
  in
  normalize d

let or_ ~corr a b = neg (and_ ~corr (neg a) (neg b))

let join = and_

let and_self ~corr t = and_ ~corr t t

let or_self ~corr t = or_ ~corr t t

let chain ~op n t =
  if n < 0 then invalid_arg "Dist.chain";
  let rec loop n acc = if n = 0 then acc else loop (n - 1) (op acc) in
  loop n t

let pdf_at t s = t.d.(bin_of (bins t) s)

let cdf t s =
  let n = bins t in
  let s = clamp01 s in
  let h = 1.0 /. float_of_int n in
  let full = int_of_float (s /. h) in
  let full = Int.min full n in
  let acc = ref 0.0 in
  for i = 0 to full - 1 do
    acc := !acc +. (t.d.(i) *. h)
  done;
  if full < n then begin
    let part = s -. (float_of_int full *. h) in
    acc := !acc +. (t.d.(full) *. part)
  end;
  Float.min 1.0 !acc

let mass_below = cdf

let quantile t p =
  let n = bins t in
  let h = 1.0 /. float_of_int n in
  let p = Rdb_util.Stats.clamp p ~lo:0.0 ~hi:1.0 in
  let rec loop i acc =
    if i >= n then 1.0
    else begin
      let m = t.d.(i) *. h in
      if acc +. m >= p then begin
        let frac = if m > 0.0 then (p -. acc) /. m else 0.0 in
        (float_of_int i +. frac) *. h
      end
      else loop (i + 1) (acc +. m)
    end
  in
  loop 0 0.0

let expectation t f =
  let n = bins t in
  let h = 1.0 /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (t.d.(i) *. h *. f (midpoint n i))
  done;
  !acc

let mean t = expectation t (fun s -> s)

let variance t =
  let m = mean t in
  expectation t (fun s -> (s -. m) *. (s -. m))

let stddev t = sqrt (variance t)

let mode t =
  let n = bins t in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if t.d.(i) > t.d.(!best) then best := i
  done;
  midpoint n !best

let sample rng t = quantile t (Rdb_util.Prng.float rng 1.0)

let scale_cost t cmax =
  if cmax <= 0.0 then invalid_arg "Dist.scale_cost";
  fun x -> if x < 0.0 || x > cmax then 0.0 else pdf_at t (x /. cmax) /. cmax

let is_close ?(tolerance = 0.05) a b =
  if bins a <> bins b then invalid_arg "Dist.is_close: bin mismatch";
  let n = bins a in
  let h = 1.0 /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Float.abs (a.d.(i) -. b.d.(i)) *. h)
  done;
  !acc <= tolerance

let pp fmt t =
  Format.fprintf fmt "mean=%.4f sd=%.4f q25=%.4f q50=%.4f q75=%.4f" (mean t) (stddev t)
    (quantile t 0.25) (quantile t 0.5) (quantile t 0.75)

lib/dist/shape.ml: Dist Rdb_util

lib/dist/shape.mli: Dist

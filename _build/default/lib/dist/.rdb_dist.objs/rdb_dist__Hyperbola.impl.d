lib/dist/hyperbola.ml: Array Dist Float List

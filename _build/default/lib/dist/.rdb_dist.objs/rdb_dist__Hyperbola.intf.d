lib/dist/hyperbola.mli: Dist

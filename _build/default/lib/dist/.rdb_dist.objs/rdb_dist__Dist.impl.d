lib/dist/dist.ml: Array Float Format Int Rdb_util

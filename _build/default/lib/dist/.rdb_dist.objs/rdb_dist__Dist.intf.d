lib/dist/dist.mli: Format Rdb_util

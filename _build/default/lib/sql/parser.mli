(** Recursive-descent parser for the SQL subset (see {!Ast}).

    Accepted statement forms:

    {v
    SELECT [DISTINCT] * | cols | aggs FROM table
      [WHERE cond] [ORDER BY cols] [LIMIT [TO] n [ROWS]]
      [OPTIMIZE FOR FAST FIRST | TOTAL TIME]
    EXPLAIN <select>
    CREATE TABLE t (col TYPE [NULL], ...)
    CREATE INDEX i ON t (cols)
    INSERT INTO t VALUES (v, ...), ...
    DELETE FROM t [WHERE cond]
    UPDATE t SET col = v, ... [WHERE cond]
    v}

    Conditions support comparisons, BETWEEN, [NOT] IN (list or
    subquery), EXISTS (subquery), [NOT] LIKE, IS [NOT] NULL, AND / OR /
    NOT, parentheses and [:host] variables. *)

exception Parse_error of string

val parse_statement : string -> Ast.statement
val parse_select : string -> Ast.select
(** Raise {!Parse_error} or {!Lexer.Lex_error} on bad input. *)

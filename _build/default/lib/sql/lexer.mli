(** SQL tokenizer.

    Case-insensitive keywords, 'single-quoted' strings with doubled-
    quote escapes, integer and float literals, [:name] host variables,
    and [--] line comments. *)

type token =
  | Ident of string  (** uppercased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Host_var of string
  | Symbol of string  (** one of ( ) , * = <> != < <= > >= ; . *)
  | Eof

exception Lex_error of string * int  (** message, position *)

val tokenize : string -> token list
(** Ends with [Eof].  Raises {!Lex_error}. *)

val token_to_string : token -> string

(** SQL execution on top of the dynamic retrieval engine.

    Single-table SELECTs map directly onto {!Rdb_core.Retrieval};
    uncorrelated subqueries are evaluated innermost-first (an IN
    subquery materializes into a value list, an EXISTS subquery into a
    boolean), each with its own inferred optimization goal — this
    reproduces the §4 three-level example, where the LIMIT TO 2 ROWS
    innermost select runs fast-first while the DISTINCT middle select
    runs total-time.

    EXPLAIN executes the query and reports the dynamic optimizer's
    decisions (tactic, estimates, scan discards, strategy switches):
    with a run-time optimizer the plan *is* the execution history. *)

open Rdb_data
open Rdb_engine

type result = {
  columns : string list;
  rows : Value.t list list;
  summaries : (string * Rdb_core.Retrieval.summary) list;
      (** (table, summary) per retrieval executed, innermost first *)
  message : string option;  (** DDL/DML acknowledgements *)
}

exception Execution_error of string

val execute :
  ?env:Predicate.env ->
  ?config:Rdb_core.Retrieval.config ->
  Database.t ->
  Ast.statement ->
  result

val execute_sql :
  ?env:Predicate.env ->
  ?config:Rdb_core.Retrieval.config ->
  Database.t ->
  string ->
  result
(** Parse and execute. *)

val goal_context_of_select :
  Database.t -> Ast.select -> outer:Rdb_core.Goal.controlling_node option ->
  Rdb_core.Goal.controlling_node option
(** The §4 rule, exposed for tests: the node immediately controlling
    the select's retrieval. *)

lib/sql/executor.mli: Ast Database Predicate Rdb_core Rdb_data Rdb_engine Value

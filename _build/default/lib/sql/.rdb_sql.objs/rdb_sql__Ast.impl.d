lib/sql/ast.ml: Buffer List Printf Rdb_core Rdb_data String Value

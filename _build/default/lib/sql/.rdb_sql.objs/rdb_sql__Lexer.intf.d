lib/sql/lexer.mli:

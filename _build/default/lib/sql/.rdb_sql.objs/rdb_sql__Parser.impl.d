lib/sql/parser.ml: Ast Lexer List Option Printf Rdb_core Rdb_data Value

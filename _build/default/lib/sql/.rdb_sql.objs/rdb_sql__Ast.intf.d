lib/sql/ast.mli: Rdb_core Rdb_data Value

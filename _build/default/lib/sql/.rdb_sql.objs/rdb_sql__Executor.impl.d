lib/sql/executor.ml: Array Ast Database Float Hashtbl Int List Parser Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Row Schema String Table Value

type column = { name : string; ty : Value.ty; nullable : bool }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let make cols =
  let arr = Array.of_list cols in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if c.name = "" then invalid_arg "Schema.make: empty column name";
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    arr;
  { cols = arr; by_name }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let column t i = t.cols.(i)

let index_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let find t name = Hashtbl.find_opt t.by_name name
let mem t name = Hashtbl.mem t.by_name name

let ty_to_string = function
  | Value.T_int -> "INT"
  | Value.T_float -> "FLOAT"
  | Value.T_str -> "STRING"

let validate_row t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "arity mismatch: schema has %d columns, row has %d" (arity t)
         (Array.length row))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let c = t.cols.(i) in
          match Value.type_of v with
          | None -> if not c.nullable then err := Some (c.name ^ " is not nullable")
          | Some ty ->
              (* Ints are acceptable in float columns. *)
              let ok = ty = c.ty || (c.ty = Value.T_float && ty = Value.T_int) in
              if not ok then
                err :=
                  Some
                    (Printf.sprintf "%s expects %s, got %s" c.name (ty_to_string c.ty)
                       (ty_to_string ty))
        end)
      row;
    match !err with None -> Ok () | Some e -> Error e
  end

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.name (ty_to_string c.ty)
              (if c.nullable then "" else " NOT NULL"))
          (columns t)))

let col ?(nullable = false) name ty = { name; ty; nullable }

(** Rows and their stored encoding.

    A row is a [Value.t array] matching a schema.  The binary codec is
    a small tagged format used by the heap file so that page capacity
    tracks realistic record sizes. *)

type t = Value.t array

val get : t -> int -> Value.t
val size_bytes : t -> int

val encode : t -> Bytes.t
val decode : Bytes.t -> t
(** [decode (encode r) = r].  Raises [Failure] on corrupt input. *)

val project : t -> int array -> t
(** [project row cols] extracts the given column positions. *)

val equal : t -> t -> bool
val compare_at : int array -> t -> t -> int
(** Lexicographic comparison on the given column positions. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Record identifiers.

    A RID names a record's physical location: (data page number, slot
    within the page).  RID order therefore *is* physical order, which
    is what makes sorted-RID-list retrieval sequential-friendly
    (paper §7, background-only tactic). *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
(** Mixed hash for hashed bitmap filters [Babb79]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_int : t -> slots_per_page:int -> int
(** Dense encoding used by exact (non-hashed) page bitmaps. *)

val of_int : int -> slots_per_page:int -> t

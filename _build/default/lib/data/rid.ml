type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let compare a b =
  let c = Int.compare a.page b.page in
  if c <> 0 then c else Int.compare a.slot b.slot

let equal a b = compare a b = 0

let hash { page; slot } =
  (* splitmix-style finalizer over the packed pair. *)
  let z = (page * 0x100000) lxor slot in
  let z = (z lxor (z lsr 30)) * 0x5851F42D in
  let z = (z lxor (z lsr 27)) * 0x14057B7E in
  (z lxor (z lsr 31)) land max_int

let to_string { page; slot } = Printf.sprintf "%d:%d" page slot

let pp fmt r = Format.pp_print_string fmt (to_string r)

let to_int { page; slot } ~slots_per_page = (page * slots_per_page) + slot

let of_int i ~slots_per_page =
  { page = i / slots_per_page; slot = i mod slots_per_page }

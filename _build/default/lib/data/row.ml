type t = Value.t array

let get (r : t) i = r.(i)

let size_bytes r = Array.fold_left (fun acc v -> acc + Value.size_bytes v) 2 r

let encode r =
  let buf = Buffer.create (size_bytes r) in
  Buffer.add_uint16_le buf (Array.length r);
  Array.iter
    (fun v ->
      match (v : Value.t) with
      | Null -> Buffer.add_char buf '\000'
      | Int i ->
          Buffer.add_char buf '\001';
          Buffer.add_int64_le buf (Int64.of_int i)
      | Float f ->
          Buffer.add_char buf '\002';
          Buffer.add_int64_le buf (Int64.bits_of_float f)
      | Str s ->
          Buffer.add_char buf '\003';
          Buffer.add_int32_le buf (Int32.of_int (String.length s));
          Buffer.add_string buf s)
    r;
  Buffer.to_bytes buf

let decode bytes =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length bytes then failwith "Row.decode: truncated"
  in
  need 2;
  let arity = Bytes.get_uint16_le bytes !pos in
  pos := !pos + 2;
  Array.init arity (fun _ ->
      need 1;
      let tag = Bytes.get bytes !pos in
      incr pos;
      match tag with
      | '\000' -> Value.Null
      | '\001' ->
          need 8;
          let v = Bytes.get_int64_le bytes !pos in
          pos := !pos + 8;
          Value.Int (Int64.to_int v)
      | '\002' ->
          need 8;
          let v = Bytes.get_int64_le bytes !pos in
          pos := !pos + 8;
          Value.Float (Int64.float_of_bits v)
      | '\003' ->
          need 4;
          let len = Int32.to_int (Bytes.get_int32_le bytes !pos) in
          pos := !pos + 4;
          need len;
          let s = Bytes.sub_string bytes !pos len in
          pos := !pos + len;
          Value.Str s
      | _ -> failwith "Row.decode: bad tag")

let project r cols = Array.map (fun i -> r.(i)) cols

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare_at cols a b =
  let rec loop i =
    if i >= Array.length cols then 0
    else begin
      let c = Value.compare a.(cols.(i)) b.(cols.(i)) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let to_string r =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string r)) ^ ")"

let pp fmt r = Format.pp_print_string fmt (to_string r)

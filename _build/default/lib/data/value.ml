type t = Null | Int of int | Float of float | Str of string

type ty = T_int | T_float | T_str

let type_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_str

let rank = function Null -> 0 | Int _ | Float _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let is_null = function Null -> true | _ -> false

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s

let int i = Int i
let float f = Float f
let str s = Str s

let as_int = function Int i -> Some i | _ -> None

let as_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let as_string = function Str s -> Some s | _ -> None

let min_value = Null

let succ_approx = function
  | Null -> Null
  | Int i -> if i = max_int then Int i else Int (i + 1)
  | Float f -> Float (Float.succ f)
  | Str s -> Str (s ^ "\000")

lib/data/row.ml: Array Buffer Bytes Format Int32 Int64 String Value

lib/data/value.ml: Float Format Int Printf String

lib/data/value.mli: Format

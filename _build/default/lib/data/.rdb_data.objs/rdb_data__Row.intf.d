lib/data/row.mli: Bytes Format Value

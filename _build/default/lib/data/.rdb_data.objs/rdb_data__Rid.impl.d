lib/data/rid.ml: Format Int Printf

lib/data/rid.mli: Format

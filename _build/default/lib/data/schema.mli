(** Table schemas: ordered, named, typed columns. *)

type column = {
  name : string;
  ty : Value.ty;
  nullable : bool;
}

type t

val make : column list -> t
(** Raises [Invalid_argument] on duplicate or empty column names. *)

val columns : t -> column list
val arity : t -> int
val column : t -> int -> column
val index_of : t -> string -> int
(** Position of a column by name.  Raises [Not_found]. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity, type and nullability check. *)

val pp : Format.formatter -> t -> unit

val col : ?nullable:bool -> string -> Value.ty -> column
(** Convenience constructor; [nullable] defaults to false. *)

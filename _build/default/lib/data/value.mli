(** Typed column values.

    The engine is dynamically typed at the row level (like Rdb's
    runtime record format): every cell is a {!t}.  NULL ordering
    follows the usual index convention — NULL sorts before every
    non-NULL value — while three-valued logic for comparisons is
    handled in the predicate evaluator, not here. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = T_int | T_float | T_str

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order: Null < Int/Float (numerics compare by value) < Str.
    Int and Float compare numerically against each other so mixed
    numeric columns behave. *)

val equal : t -> t -> bool

val is_null : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Approximate stored size, used for page-capacity accounting. *)

(** {1 Convenience constructors} *)

val int : int -> t
val float : float -> t
val str : string -> t

(** {1 Coercions} *)

val as_int : t -> int option
val as_float : t -> float option
(** [as_float] also coerces [Int]. *)

val as_string : t -> string option

(** {1 Key helpers} *)

val min_value : t
(** Sorts before every value (it is [Null]). *)

val succ_approx : t -> t
(** Smallest representable value strictly greater than [v] for ints and
    strings; for floats uses the next representable float.  Used to
    turn exclusive range bounds into inclusive ones. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

(* The capacity hint is dropped: a safe polymorphic preallocation would
   need a dummy element, which interacts badly with the unboxed float
   array representation.  Growth is amortized O(1) regardless. *)
let with_capacity _n = create ()

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.set";
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t = t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Dynarray.truncate";
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len

let append dst src = iter (push dst) src

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

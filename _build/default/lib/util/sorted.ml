let lower_bound ~cmp a ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound ~cmp a ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem ~cmp a ~len x =
  let i = lower_bound ~cmp a ~len x in
  i < len && cmp a.(i) x = 0

let intersect ~cmp a b =
  let out = Dynarray.create () in
  let i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let c = cmp a.(!i) b.(!j) in
    if c = 0 then begin
      Dynarray.push out a.(!i);
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Dynarray.to_array out

let union ~cmp a b =
  let out = Dynarray.create () in
  let i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la || !j < lb do
    if !i >= la then begin
      Dynarray.push out b.(!j);
      incr j
    end
    else if !j >= lb then begin
      Dynarray.push out a.(!i);
      incr i
    end
    else begin
      let c = cmp a.(!i) b.(!j) in
      if c = 0 then begin
        Dynarray.push out a.(!i);
        incr i;
        incr j
      end
      else if c < 0 then begin
        Dynarray.push out a.(!i);
        incr i
      end
      else begin
        Dynarray.push out b.(!j);
        incr j
      end
    end
  done;
  Dynarray.to_array out

let merge_dedup ~cmp a =
  let a = Array.copy a in
  Array.sort cmp a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = Dynarray.create () in
    Dynarray.push out a.(0);
    for i = 1 to n - 1 do
      if cmp a.(i) a.(i - 1) <> 0 then Dynarray.push out a.(i)
    done;
    Dynarray.to_array out
  end

(** Growable arrays.

    OCaml 5.1's standard library has no [Dynarray]; this is the small
    subset the engine needs (append-only growth plus in-place sort and
    truncation, used heavily by RID-list builders). *)

type 'a t

val create : unit -> 'a t
val with_capacity : int -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val clear : 'a t -> unit
val truncate : 'a t -> int -> unit
(** [truncate a n] keeps the first [n] elements ([n <= length a]). *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live elements. *)

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val last : 'a t -> 'a option

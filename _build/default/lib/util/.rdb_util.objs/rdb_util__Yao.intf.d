lib/util/yao.mli:

lib/util/ascii_plot.ml: Array Buffer Float Int List Printf Stats String

lib/util/sorted.mli:

lib/util/dynarray.ml: Array

lib/util/stats.mli:

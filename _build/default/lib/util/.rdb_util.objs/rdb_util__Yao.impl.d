lib/util/yao.ml:

lib/util/prng.mli:

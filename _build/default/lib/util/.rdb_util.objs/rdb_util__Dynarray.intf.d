lib/util/dynarray.mli:

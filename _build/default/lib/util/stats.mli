(** Small numeric helpers shared by the estimator, the distribution
    algebra, and the benchmark reporting code. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]: linear-interpolated percentile
    of a copy of [xs] sorted ascending.  Raises [Invalid_argument] on
    an empty array. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values. *)

val clamp : float -> lo:float -> hi:float -> float

val log2 : float -> float

val float_equal : ?eps:float -> float -> float -> bool
(** Absolute-difference comparison, default [eps = 1e-9]. *)

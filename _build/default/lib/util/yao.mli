(** Yao's formula for block accesses.

    Fetching [k] records chosen uniformly without replacement from a
    table of [n] records packed [m] records per block touches, in
    expectation,

      blocks(n, m, k) = B * (1 - C(n - m, k) / C(n, k))

    where B = ceil(n / m) is the number of blocks.  The dynamic
    optimizer uses it to project the cost of fetching a sorted RID list
    (§6: "projected retrieval cost ... estimated from the current RID
    list"). *)

val blocks : n:int -> per_block:int -> k:int -> float
(** Expected number of distinct blocks touched.  Total blocks when
    [k >= n]; 0 when [k = 0]. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 0.5

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let clamp x ~lo ~hi = Float.min hi (Float.max lo x)

let log2 x = log x /. log 2.0

let float_equal ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(** Binary-search helpers over sorted arrays, shared by B-tree nodes
    and sorted RID lists. *)

val lower_bound : cmp:('a -> 'a -> int) -> 'a array -> len:int -> 'a -> int
(** Index of the first element [>= x] within the first [len] slots of a
    sorted array; [len] if all are smaller. *)

val upper_bound : cmp:('a -> 'a -> int) -> 'a array -> len:int -> 'a -> int
(** Index of the first element [> x]. *)

val mem : cmp:('a -> 'a -> int) -> 'a array -> len:int -> 'a -> bool

val intersect : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Intersection of two sorted deduplicated arrays. *)

val union : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Union of two sorted deduplicated arrays. *)

val merge_dedup : cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** Sort a copy and drop duplicates. *)

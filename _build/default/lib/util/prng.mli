(** Deterministic pseudo-random number generator (splitmix64).

    All randomized components of the system (samplers, workload
    generators, property tests) draw from this generator so that every
    experiment is reproducible from a seed.  The implementation is the
    standard splitmix64 mixer, which is small, fast, and has no shared
    global state: each [t] is an independent stream. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator positioned at [g]'s current
    state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound-1].  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on [lo, hi] inclusive ([lo <= hi]). *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float. *)

val normal : t -> mean:float -> stddev:float -> float
(** Normally distributed float (Box-Muller). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = s }

(* Non-negative 62-bit value: safe to convert to a native [int]. *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let max = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = max - (max mod bound) in
  let rec loop () =
    let v = bits g in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let exponential g ~mean =
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let normal g ~mean ~stddev =
  let u1 = 1.0 -. float g 1.0 in
  let u2 = float g 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(** Terminal plotting used by the benchmark harness to regenerate the
    paper's figures (2.1, 2.2) as ASCII art, and to print aligned
    result tables. *)

val plot :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  float array ->
  string
(** [plot ys] renders the series as a column chart scaled to
    [height] rows by [width] columns (the series is resampled to
    [width] buckets by averaging).  Y axis is annotated with min/max. *)

val multi_plot :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  (string * float array) list ->
  string
(** Overlay several series, each drawn with its own glyph; a legend
    line maps glyphs to names. *)

val table : header:string list -> string list list -> string
(** Aligned text table with a header rule.  Columns are right-aligned
    when every cell parses as a number, left-aligned otherwise. *)

let resample ys width =
  let n = Array.length ys in
  if n = 0 then Array.make width 0.0
  else
    Array.init width (fun c ->
        let lo = c * n / width and hi = Int.max (((c + 1) * n / width) - 1) (c * n / width) in
        let acc = ref 0.0 in
        for i = lo to hi do
          acc := !acc +. ys.(i)
        done;
        !acc /. float_of_int (hi - lo + 1))

let bounds series =
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (Array.iter (fun y ->
         if y < !lo then lo := y;
         if y > !hi then hi := y))
    series;
  if !lo > !hi then (0.0, 1.0)
  else if Stats.float_equal !lo !hi then (!lo -. 0.5, !hi +. 0.5)
  else (!lo, !hi)

let render ~width ~height ~title ~x_label named =
  let resampled = List.map (fun (name, glyph, ys) -> (name, glyph, resample ys width)) named in
  let lo, hi = bounds (List.map (fun (_, _, ys) -> ys) resampled) in
  let lo = Float.min lo 0.0 in
  let grid = Array.make_matrix height width ' ' in
  let row_of y =
    let frac = (y -. lo) /. (hi -. lo) in
    let r = int_of_float (Float.round (frac *. float_of_int (height - 1))) in
    height - 1 - Int.max 0 (Int.min (height - 1) r)
  in
  List.iter
    (fun (_, glyph, ys) ->
      Array.iteri
        (fun c y ->
          let r = row_of y in
          grid.(r).(c) <- glyph)
        ys)
    resampled;
  let buf = Buffer.create 1024 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  Array.iteri
    (fun r line ->
      let label =
        if r = 0 then Printf.sprintf "%8.3g |" hi
        else if r = height - 1 then Printf.sprintf "%8.3g |" lo
        else "         |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
  (match x_label with
  | Some l -> Buffer.add_string buf ("          " ^ l ^ "\n")
  | None -> ());
  let legend =
    List.filter_map
      (fun (name, glyph, _) -> if name = "" then None else Some (Printf.sprintf "%c = %s" glyph name))
      resampled
  in
  if legend <> [] then Buffer.add_string buf ("          " ^ String.concat "   " legend ^ "\n");
  Buffer.contents buf

let plot ?(width = 60) ?(height = 14) ?title ?x_label ys =
  render ~width ~height ~title ~x_label [ ("", '*', ys) ]

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let multi_plot ?(width = 60) ?(height = 14) ?title named =
  let named =
    List.mapi (fun i (name, ys) -> (name, glyphs.(i mod Array.length glyphs), ys)) named
  in
  render ~width ~height ~title ~x_label:None named

let is_number s =
  match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> Int.max acc (List.length r)) 0 all in
  let cell row c = match List.nth_opt row c with Some s -> s | None -> "" in
  let width c = List.fold_left (fun acc r -> Int.max acc (String.length (cell r c))) 0 all in
  let widths = Array.init cols width in
  let numeric =
    Array.init cols (fun c ->
        rows <> [] && List.for_all (fun r -> cell r c = "" || is_number (cell r c)) rows)
  in
  let pad c s =
    let w = widths.(c) in
    let n = w - String.length s in
    if n <= 0 then s
    else if numeric.(c) then String.make n ' ' ^ s
    else s ^ String.make n ' '
  in
  let line row = String.concat "  " (List.init cols (fun c -> pad c (cell row c))) in
  let rule = String.concat "  " (List.init cols (fun c -> String.make widths.(c) '-')) in
  String.concat "\n" ((line header :: rule :: List.map line rows) @ [ "" ])

let blocks ~n ~per_block ~k =
  if n <= 0 || per_block <= 0 || k <= 0 then 0.0
  else begin
    let b = (n + per_block - 1) / per_block in
    if k >= n then float_of_int b
    else begin
      (* prob. a given block of [m] records receives none of the [k]
         draws: prod_{i=0}^{k-1} (n - m - i) / (n - i), computed in log
         space for stability on large tables. *)
      let m = per_block in
      if n - m < k then float_of_int b
      else begin
        let log_miss = ref 0.0 in
        for i = 0 to k - 1 do
          log_miss :=
            !log_miss
            +. log (float_of_int (n - m - i))
            -. log (float_of_int (n - i))
        done;
        float_of_int b *. (1.0 -. exp !log_miss)
      end
    end
  end

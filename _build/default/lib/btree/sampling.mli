(** Random sampling from B+-trees.

    Two samplers over the in-range entries of an index:

    - {!acceptance_rejection} — Olken & Rotem [OlRo89]: random root-to-
      leaf descent choosing children uniformly, accepting the drawn
      entry with probability (∏ fill_i) / f^height; rejected descents
      are retried, wasting node reads.
    - {!ranked} — the pseudo-ranked descent of [Ant92]: children are
      chosen proportionally to maintained subtree counts, so every
      descent yields a sample (no rejections) at the cost of keeping
      the counts (maintained for free on the insert/delete path here).

    Sampling estimates the selectivity of *arbitrary* predicates over
    in-range entries — the §5 refinement beyond descent-to-split, able
    to handle "pattern matching, complex arithmetic, comparing
    attributes of the same index". *)

open Rdb_data
open Rdb_storage

type stats = {
  samples : (Btree.key * Rid.t) array;
  descents : int;  (** total root-to-leaf walks, including rejected *)
  nodes_visited : int;
}

val acceptance_rejection :
  Rdb_util.Prng.t -> Btree.t -> Cost.t -> n:int -> ?max_descents:int -> unit -> stats
(** Draw [n] (near-)uniform samples from the whole tree.
    [max_descents] (default [50 * n]) bounds the retry loop on very
    unbalanced trees; the result may then hold fewer than [n]
    samples. *)

val ranked : Rdb_util.Prng.t -> Btree.t -> Cost.t -> n:int -> stats
(** Draw [n] exactly-uniform samples (with replacement) using subtree
    counts. *)

val estimate_fraction :
  Rdb_util.Prng.t ->
  Btree.t ->
  Cost.t ->
  n:int ->
  (Btree.key -> Rid.t -> bool) ->
  float
(** Fraction of entries satisfying the predicate, estimated from [n]
    ranked samples; 0 on an empty tree. *)

open Rdb_data
module Prng = Rdb_util.Prng
module Dynarray = Rdb_util.Dynarray

type stats = {
  samples : (Btree.key * Rid.t) array;
  descents : int;
  nodes_visited : int;
}

let acceptance_rejection rng tree meter ~n ?max_descents () =
  let max_descents = match max_descents with Some m -> m | None -> 50 * Int.max 1 n in
  let f = float_of_int (Btree.fanout tree) in
  let out = Dynarray.create () in
  let descents = ref 0 and nodes = ref 0 in
  let card = Btree.cardinality tree in
  if card > 0 then begin
    while Dynarray.length out < n && !descents < max_descents do
      incr descents;
      (* One random descent; acceptance probability accumulates the
         fill factor of each visited node. *)
      let rec walk node p =
        incr nodes;
        match Btree.view tree meter node with
        | Btree.Leaf_view entries ->
            let len = Array.length entries in
            if len = 0 then None
            else begin
              let p = p *. (float_of_int len /. f) in
              let e = entries.(Prng.int rng len) in
              if Prng.float rng 1.0 < p then Some e else None
            end
        | Btree.Internal_view (_, children) ->
            let len = Array.length children in
            let p = p *. (float_of_int len /. f) in
            walk children.(Prng.int rng len) p
      in
      match walk (Btree.root tree) 1.0 with
      | Some e -> Dynarray.push out e
      | None -> ()
    done
  end;
  { samples = Dynarray.to_array out; descents = !descents; nodes_visited = !nodes }

let ranked rng tree meter ~n =
  let out = Dynarray.create () in
  let nodes = ref 0 in
  let card = Btree.cardinality tree in
  let descents = if card = 0 then 0 else n in
  if card > 0 then begin
    for _ = 1 to n do
      let rec walk node =
        incr nodes;
        match Btree.view tree meter node with
        | Btree.Leaf_view entries -> entries.(Prng.int rng (Array.length entries))
        | Btree.Internal_view (_, children) ->
            (* Choose a child proportionally to its subtree count. *)
            let total = Btree.subtree_count tree node in
            let target = Prng.int rng total in
            let rec pick i acc =
              let c = children.(i) in
              let acc = acc + Btree.subtree_count tree c in
              if target < acc || i = Array.length children - 1 then c
              else pick (i + 1) acc
            in
            walk (pick 0 0)
      in
      Dynarray.push out (walk (Btree.root tree))
    done
  end;
  { samples = Dynarray.to_array out; descents; nodes_visited = !nodes }

let estimate_fraction rng tree meter ~n pred =
  let { samples; _ } = ranked rng tree meter ~n in
  let len = Array.length samples in
  if len = 0 then 0.0
  else begin
    let hits =
      Array.fold_left (fun acc (k, rid) -> if pred k rid then acc + 1 else acc) 0 samples
    in
    float_of_int hits /. float_of_int len
  end

lib/btree/sampling.mli: Btree Cost Rdb_data Rdb_storage Rdb_util Rid

lib/btree/estimate.mli: Btree Cost Rdb_storage

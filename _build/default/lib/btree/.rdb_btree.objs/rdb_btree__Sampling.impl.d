lib/btree/sampling.ml: Array Btree Int Rdb_data Rdb_util Rid

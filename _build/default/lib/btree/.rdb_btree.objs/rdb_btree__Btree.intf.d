lib/btree/btree.mli: Buffer_pool Cost Rdb_data Rdb_storage Rid Value

lib/btree/estimate.ml: Array Btree Float Int List Rdb_util

lib/btree/btree.ml: Array Buffer_pool Cost Int Printf Rdb_data Rdb_storage Rdb_util Rid Value

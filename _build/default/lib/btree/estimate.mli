(** Range cardinality estimation by descent to the split node
    (paper §5, Figure 5).

    Descend from the root along the path of nodes whose child span for
    the range is a single child.  The lowest such node is the *split
    node* at level [l] (leaves are level 1).  With [k+1] children of
    the split node touching the range (the two edge children counted
    as one, i.e. [k]), the estimate is

      RangeRIDs ≈ k * f^(l-1)

    with [f] the average tree fanout.  At [l = 1] the in-range leaf
    entries are counted exactly.  The estimate costs one root-to-split
    path of node reads — it is "fast, well suited for small ranges,
    and always up-to-date". *)

open Rdb_storage

type result = {
  estimate : float;  (** estimated number of in-range entries *)
  exact : bool;  (** true when the split node was a leaf (l = 1) *)
  split_level : int;  (** l; leaves are 1 *)
  k : int;  (** effective child count at the split node *)
  nodes_visited : int;  (** estimation cost in node reads *)
}

val range : Btree.t -> Cost.t -> Btree.range -> result

val ranges : Btree.t -> Cost.t -> Btree.range list -> result
(** Sum of per-range descents (disjoint ranges assumed); exact iff
    every component was exact. *)

val estimate_only : Btree.t -> Cost.t -> Btree.range -> float
(** Just the estimate. *)

val selectivity : Btree.t -> Cost.t -> Btree.range -> float
(** Estimate divided by the tree cardinality, clamped to [0,1];
    0 for an empty tree. *)


type result = {
  estimate : float;
  exact : bool;
  split_level : int;
  k : int;
  nodes_visited : int;
}

(* Child span [lo_child, hi_child] of an internal node that may contain
   in-range keys, from the separator keys (seps.(i) is the minimum key
   of child i+1). *)
let child_span (seps : Btree.key array) (range : Btree.range) =
  let n = Array.length seps in
  let lo_child =
    match range.Btree.lo with
    | Btree.Unbounded -> 0
    | Btree.Incl k ->
        let rec count i =
          if i >= n then i
          else if Btree.compare_key seps.(i) k < 0 then count (i + 1)
          else i
        in
        count 0
    | Btree.Excl k ->
        let rec count i =
          if i >= n then i
          else if Btree.compare_key seps.(i) k <= 0 then count (i + 1)
          else i
        in
        count 0
  in
  let hi_child =
    match range.Btree.hi with
    | Btree.Unbounded -> n
    | Btree.Incl k ->
        let rec count i =
          if i >= n then i
          else if Btree.compare_key seps.(i) k <= 0 then count (i + 1)
          else i
        in
        count 0
    | Btree.Excl k ->
        let rec count i =
          if i >= n then i
          else if Btree.compare_key seps.(i) k < 0 then count (i + 1)
          else i
        in
        count 0
  in
  (lo_child, Int.max lo_child hi_child)

let range tree meter (r : Btree.range) =
  match (r.Btree.lo, r.Btree.hi) with
  | Btree.Unbounded, Btree.Unbounded ->
      (* The whole index: the maintained cardinality is exact and free
         of any descent. *)
      ignore meter;
      {
        estimate = float_of_int (Btree.cardinality tree);
        exact = true;
        split_level = Btree.height tree;
        k = 1;
        nodes_visited = 0;
      }
  | _ ->
  let f =
    (* Single average fanout as in the paper; geometric blend of leaf
       fill and internal fill degenerates gracefully for tiny trees. *)
    let leaf = Btree.avg_leaf_entries tree in
    let inner = Btree.avg_internal_children tree in
    if Btree.height tree <= 1 then Float.max 1.0 leaf
    else Float.max 1.0 (sqrt (leaf *. inner))
  in
  let height = Btree.height tree in
  let rec descend node level visited =
    match Btree.view tree meter node with
    | Btree.Leaf_view entries ->
        let k =
          Array.fold_left
            (fun acc (key, _) -> if Btree.in_range r key then acc + 1 else acc)
            0 entries
        in
        { estimate = float_of_int k; exact = true; split_level = 1; k;
          nodes_visited = visited + 1 }
    | Btree.Internal_view (seps, children) ->
        let lo_c, hi_c = child_span seps r in
        if lo_c = hi_c then descend children.(lo_c) (level - 1) (visited + 1)
        else begin
          (* Split node found: k+1 children contain the range; the two
             edge children jointly count as one full child. *)
          let k = hi_c - lo_c in
          let estimate = float_of_int k *. (f ** float_of_int (level - 2)) *.
                         Btree.avg_leaf_entries tree
          in
          (* For split at level 2 the exponent is 0: k leaf-loads. *)
          let estimate = if level = 2 then float_of_int k *. Btree.avg_leaf_entries tree
                         else estimate
          in
          { estimate; exact = false; split_level = level; k;
            nodes_visited = visited + 1 }
        end
  in
  descend (Btree.root tree) height 0

let estimate_only tree meter r = (range tree meter r).estimate

let selectivity tree meter r =
  let card = Btree.cardinality tree in
  if card = 0 then 0.0
  else Rdb_util.Stats.clamp ((range tree meter r).estimate /. float_of_int card) ~lo:0.0 ~hi:1.0

let ranges tree meter (rs : Btree.range list) =
  List.fold_left
    (fun acc r ->
      let res = range tree meter r in
      {
        estimate = acc.estimate +. res.estimate;
        exact = acc.exact && res.exact;
        split_level = Int.max acc.split_level res.split_level;
        k = acc.k + res.k;
        nodes_visited = acc.nodes_visited + res.nodes_visited;
      })
    { estimate = 0.0; exact = true; split_level = 1; k = 0; nodes_visited = 0 }
    rs

type cost_dist = { density : float -> float; cmax : float }

let of_dist d ~cmax = { density = Rdb_dist.Dist.scale_cost d cmax; cmax }

let l_shaped ~knee ~cmax ?(bins = 512) () =
  if knee <= 0.0 || knee >= cmax then invalid_arg "Competition_math.l_shaped";
  (* Choose hyperbola pole b so the mass below the knee is 1/2:
     F(x) = ln(1 + x/b) / ln(1 + cmax/b); solve F(knee) = 0.5 on b by
     bisection (monotone in b). *)
  let frac = knee /. cmax in
  let mass_below b = log (1.0 +. (frac /. b)) /. log (1.0 +. (1.0 /. b)) in
  let lo = ref 1e-12 and hi = ref 1e6 in
  for _ = 1 to 200 do
    let mid = sqrt (!lo *. !hi) in
    if mass_below mid > 0.5 then lo := mid else hi := mid
  done;
  let b = sqrt (!lo *. !hi) in
  let d = Rdb_dist.Dist.hyperbola ~bins ~b () in
  of_dist d ~cmax

let steps = 2048

let integrate f cmax =
  let h = cmax /. float_of_int steps in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = (float_of_int i +. 0.5) *. h in
    acc := !acc +. (f x *. h)
  done;
  !acc

let mean d = integrate (fun x -> x *. d.density x) d.cmax

let cdf d x =
  if x <= 0.0 then 0.0
  else if x >= d.cmax then 1.0
  else integrate (fun y -> if y <= x then d.density y else 0.0) d.cmax

let mean_below d x =
  let m = cdf d x in
  if m <= 0.0 then 0.0
  else integrate (fun y -> if y <= x then y *. d.density y else 0.0) d.cmax /. m

let quantile d p =
  let h = d.cmax /. float_of_int steps in
  let rec loop i acc =
    if i >= steps then d.cmax
    else begin
      let x = (float_of_int i +. 0.5) *. h in
      let acc = acc +. (d.density x *. h) in
      if acc >= p then x else loop (i + 1) acc
    end
  in
  loop 0 0.0

let run_to_completion_cost = mean

let switch_cost ~try_ ~fallback ~switch_at =
  let completed = integrate (fun x -> if x <= switch_at then x *. try_.density x else 0.0) try_.cmax in
  let p_fail = 1.0 -. cdf try_ switch_at in
  completed +. (p_fail *. (switch_at +. mean fallback))

let optimal_switch ~try_ ~fallback =
  let best = ref (try_.cmax, switch_cost ~try_ ~fallback ~switch_at:try_.cmax) in
  let n = 200 in
  for i = 1 to n do
    let tau = float_of_int i /. float_of_int n *. try_.cmax in
    let c = switch_cost ~try_ ~fallback ~switch_at:tau in
    if c < snd !best then best := (tau, c)
  done;
  !best

(* Total cost of a concurrent proportional-speed run, for realized
   plan costs xa, xb. *)
let simultaneous_total ~speed_a ~abandon_b_at xa xb =
  let sa = speed_a and sb = 1.0 -. speed_a in
  let wa = xa /. sa in
  (* wall time at which A would complete *)
  let wb_complete = xb /. sb in
  let wb_abandon = abandon_b_at /. sb in
  if xb <= abandon_b_at && wb_complete <= wa then
    (* B completes first: both consumed until then. *)
    wb_complete
  else if wa <= wb_abandon then
    (* A completes while B still running: consumed = wall time. *)
    wa
  else
    (* B abandoned at wb_abandon, A continues alone at full speed. *)
    wb_abandon +. (xa -. (sa *. wb_abandon))

(* Mass-conserving discretization: bin mass from CDF differences, so
   point-like spikes are never lost between sample points. *)
let grid_masses d k =
  let h = d.cmax /. float_of_int k in
  let prev = ref 0.0 in
  Array.init k (fun i ->
      let x_hi = float_of_int (i + 1) *. h in
      let c = cdf d x_hi in
      let mass = c -. !prev in
      prev := c;
      ((float_of_int i +. 0.5) *. h, Float.max 0.0 mass))

let simultaneous_cost ~a ~b ~speed_a ~abandon_b_at =
  if speed_a <= 0.0 || speed_a >= 1.0 then invalid_arg "Competition_math.simultaneous_cost";
  let k = 256 in
  let ga = grid_masses a k and gb = grid_masses b k in
  let acc = ref 0.0 in
  Array.iter
    (fun (xa, wa) ->
      if wa > 0.0 then
        Array.iter
          (fun (xb, wb) ->
            if wb > 0.0 then
              acc := !acc +. (wa *. wb *. simultaneous_total ~speed_a ~abandon_b_at xa xb))
          gb)
    ga;
  !acc

let optimal_simultaneous ~a ~b =
  let best = ref (0.5, b.cmax, infinity) in
  List.iter
    (fun speed_a ->
      List.iter
        (fun q ->
          let abandon = quantile b q in
          if abandon > 0.0 then begin
            let c = simultaneous_cost ~a ~b ~speed_a ~abandon_b_at:abandon in
            let _, _, bc = !best in
            if c < bc then best := (speed_a, abandon, c)
          end)
        [ 0.3; 0.5; 0.55; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ])
    [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ];
  !best

(** The traditional compile-time optimizer baseline [SACL79].

    Mean-point cost estimation, one plan chosen at compile time, run to
    completion with no switching.  Host variables are the Achilles
    heel: at compile time an unbound parameter's selectivity falls back
    to the System-R magic numbers (1/10 for equality, 1/3 for
    inequality), and the chosen strategy is then *frozen* for every
    subsequent execution — exactly the behaviour the paper's §4
    motivating query (AGE >= :A1 with :A1 ∈ {0, 200}) breaks. *)

open Rdb_data
open Rdb_engine
open Rdb_exec

type strategy =
  | P_tscan
  | P_sscan of string  (** index name *)
  | P_fscan of string

type plan = {
  strategy : strategy;
  estimated_cost : float;
  estimated_rows : float;
}

val compile :
  ?projection:string list -> Table.t -> Predicate.t -> env:Predicate.env -> plan
(** [env] holds the parameter values known at compile time — typically
    none; unknown parameters get default selectivities.  [projection]
    is the column set the query must deliver (default: all columns),
    which gates index-only plans. *)

type result = {
  rows : Row.t list;
  cost : float;
  trace : Trace.event list;
}

val execute :
  ?limit:int -> Table.t -> plan -> Predicate.t -> env:Predicate.env -> result
(** Run the frozen plan with the *actual* parameter values.  [limit]
    stops delivery early (the plan itself never switches). *)

val strategy_to_string : strategy -> string

type t = Fast_first | Total_time

type controlling_node = Exists | Limit of int | Sort | Aggregate | Cursor

let of_controlling_node = function
  | Exists | Limit _ -> Some Fast_first
  | Sort | Aggregate -> Some Total_time
  | Cursor -> None

let node_name = function
  | Exists -> "EXISTS"
  | Limit n -> Printf.sprintf "LIMIT TO %d ROWS" n
  | Sort -> "SORT"
  | Aggregate -> "aggregate"
  | Cursor -> "cursor"

let to_string = function Fast_first -> "fast-first" | Total_time -> "total-time"

let resolve ?explicit ?context ~default () =
  match context with
  | Some node -> (
      match of_controlling_node node with
      | Some goal -> (goal, "inferred from controlling " ^ node_name node)
      | None -> (
          match explicit with
          | Some g -> (g, "user request")
          | None -> (default, "default")))
  | None -> (
      match explicit with
      | Some g -> (g, "user request")
      | None -> (default, "default"))

let pp fmt t = Format.pp_print_string fmt (to_string t)

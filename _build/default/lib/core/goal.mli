(** Optimization goals and their inference (§4).

    Retrieval is optimized either for total time or for fast delivery
    of the first few records.  The goal for a retrieval node is set by
    the node from the enclosing plan that immediately controls it:
    EXISTS and LIMIT TO n ROWS request fast-first; SORT and aggregates
    request total-time; otherwise the user-specified (OPTIMIZE FOR) or
    default goal applies. *)

type t = Fast_first | Total_time

type controlling_node =
  | Exists
  | Limit of int
  | Sort
  | Aggregate
  | Cursor  (** plain cursor / top-level result delivery *)

val of_controlling_node : controlling_node -> t option
(** The paper's rule; [Cursor] gives [None] (no inference). *)

val resolve :
  ?explicit:t -> ?context:controlling_node -> default:t -> unit -> t * string
(** Inference first, then the explicit user request, then the default.
    Returns the goal and a human-readable provenance string.

    Note the paper's precedence: the §4 example sets total-time for
    table B "because of SORT needed for distinct" even under an
    explicit OPTIMIZE FOR TOTAL TIME — the controlling node wins over
    the user request. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

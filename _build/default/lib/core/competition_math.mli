(** The §3 competition cost model, in closed form and by simulation.

    Two alternative plans A₁, A₂ have L-shaped cost distributions: 50%
    of the probability in a small region [0, cᵢ], the rest spread
    widely with overall means M₁ ≤ M₂ and low-region mean m₂ ≪ c₂ ≪ M₁.
    The paper's arithmetic: the traditional optimizer runs A₁ at
    average cost M₁; running A₂ up to c₂ then switching to A₁ costs

      (m₂ + c₂ + M₁) / 2   — about half of M₁.

    This module evaluates arbitrary switch points against arbitrary
    cost densities, optimizes the switch point, and handles the
    simultaneous proportional-speed run of two hyperbolic plans. *)

type cost_dist = {
  density : float -> float;  (** pdf on [0, cmax] *)
  cmax : float;
}

val of_dist : Rdb_dist.Dist.t -> cmax:float -> cost_dist
(** View a selectivity distribution as a cost distribution. *)

val l_shaped : knee:float -> cmax:float -> ?bins:int -> unit -> cost_dist
(** Truncated hyperbola with half the mass below [knee]. *)

val mean : cost_dist -> float
val cdf : cost_dist -> float -> float
val mean_below : cost_dist -> float -> float
(** Mean of the distribution conditioned on [cost <= x]. *)

val quantile : cost_dist -> float -> float

val run_to_completion_cost : cost_dist -> float
(** Expected cost of the traditional single-plan run (its mean). *)

val switch_cost : try_:cost_dist -> fallback:cost_dist -> switch_at:float -> float
(** Expected cost of: run [try_] until it either completes (cost ≤
    switch point) or hits [switch_at], then abandon and run [fallback]
    to completion.  E = E[X·1(X≤τ)] + (1-F(τ))·(τ + E[fallback]). *)

val optimal_switch : try_:cost_dist -> fallback:cost_dist -> float * float
(** Switch point minimizing {!switch_cost} (grid + refinement), with
    its expected cost. *)

val simultaneous_cost :
  a:cost_dist -> b:cost_dist -> speed_a:float -> abandon_b_at:float -> float
(** Run A and B concurrently, A at relative speed [speed_a] ∈ (0,1]
    (B gets the complement); B is abandoned once its own progress
    reaches [abandon_b_at]; total cost counts both plans' consumption
    until the first completes (or A completes after B's abandonment).
    Evaluated by numeric integration over the two completion costs,
    assuming independence. *)

val optimal_simultaneous : a:cost_dist -> b:cost_dist -> float * float * float
(** Best (speed_a, abandon_b_at, expected_cost) over a grid. *)

(** Statically-controlled multi-index access baseline [MoHa90].

    The DB2-style comparator the paper discusses in §6: index subset
    and order chosen once from compile-style estimates with a fixed
    keep threshold, every selected scan run to completion — no
    guaranteed-best readjustment, no mid-scan termination, no dynamic
    reordering.  "One ill-predicted alternative execution cost, when
    not corrected dynamically, can put further execution off-balance
    and make it suboptimal." *)

open Rdb_data
open Rdb_engine
open Rdb_exec

type result = {
  rows : Row.t list;
  cost : float;
  trace : Trace.event list;
  used_tscan : bool;
}

val run :
  ?keep_threshold:float ->
  ?limit:int ->
  Table.t ->
  Predicate.t ->
  env:Predicate.env ->
  result
(** [keep_threshold] (default 0.25): an index participates iff its
    estimated range selectivity is at most this fraction of the table.
    With no participating index the plan degenerates to Tscan. *)

lib/core/static_jscan.ml: Cost Estimate Final_stage Float Int Jscan List Predicate Range_extract Rdb_btree Rdb_data Rdb_engine Rdb_exec Rdb_storage Row Scan Table Trace Tscan

lib/core/competition_math.ml: Array Float List Rdb_dist

lib/core/retrieval.mli: Goal Jscan Predicate Rdb_data Rdb_engine Rdb_exec Rid Row Table Trace

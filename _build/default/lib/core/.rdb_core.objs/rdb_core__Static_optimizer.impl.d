lib/core/static_optimizer.ml: Btree Cost Cost_model Estimate Fscan List Predicate Range_extract Rdb_btree Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_util Row Scan Sscan Table Trace Tscan

lib/core/initial_stage.mli: Cost Predicate Rdb_engine Rdb_exec Rdb_storage Scan Table Trace

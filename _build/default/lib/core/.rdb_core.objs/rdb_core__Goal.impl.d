lib/core/goal.ml: Format Printf

lib/core/competition_math.mli: Rdb_dist

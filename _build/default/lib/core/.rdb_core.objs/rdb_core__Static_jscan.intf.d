lib/core/static_jscan.mli: Predicate Rdb_data Rdb_engine Rdb_exec Row Table Trace

lib/core/goal.mli: Format

lib/core/initial_stage.ml: Btree Estimate Float List Option Predicate Range_extract Rdb_btree Rdb_engine Rdb_exec Scan Table Trace

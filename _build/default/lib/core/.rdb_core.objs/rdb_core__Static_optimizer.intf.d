lib/core/static_optimizer.mli: Predicate Rdb_data Rdb_engine Rdb_exec Row Table Trace

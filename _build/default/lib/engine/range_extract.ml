open Rdb_btree
open Rdb_data

type t = {
  ranges : Btree.range list;
  residual : Predicate.t;
  bounded : bool;
  eq_prefix : int;
}

let key_of_values vs = Array.of_list vs

let const_value = function Predicate.Const v -> Some v | Predicate.Param _ -> None

(* A conjunct usable against column [col]: returns the absorbed bounds
   as (lower, upper) where each is [Some (value, inclusive)]. *)
let bounds_for col = function
  | Predicate.Cmp (c, op, o) when c = col -> (
      match const_value o with
      | Some v when not (Value.is_null v) -> (
          match op with
          | Predicate.Eq -> Some (Some (v, true), Some (v, true))
          | Predicate.Ge -> Some (Some (v, true), None)
          | Predicate.Gt -> Some (Some (v, false), None)
          | Predicate.Le -> Some (None, Some (v, true))
          | Predicate.Lt -> Some (None, Some (v, false))
          | Predicate.Ne -> None)
      | _ -> None)
  | Predicate.Between (c, a, b) when c = col -> (
      match (const_value a, const_value b) with
      | Some lo, Some hi when (not (Value.is_null lo)) && not (Value.is_null hi) ->
          Some (Some (lo, true), Some (hi, true))
      | _ -> None)
  | _ -> None

(* Tighten: keep the larger lower bound / smaller upper bound. *)
let tighten_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c > 0 then Some (va, ia)
      else if c < 0 then Some (vb, ib)
      else Some (va, ia && ib)

let tighten_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c < 0 then Some (va, ia)
      else if c > 0 then Some (vb, ib)
      else Some (va, ia && ib)

let for_index restriction (idx : Table.index) =
  if not (Predicate.is_bound restriction) then
    invalid_arg "Range_extract.for_index: unbound restriction";
  let restriction = Predicate.simplify restriction in
  let conjuncts = match restriction with Predicate.And ts -> ts | t -> [ t ] in
  (* Walk key columns, absorbing equality conjuncts, then at most one
     range column. *)
  let absorbed = Hashtbl.create 8 in
  (* A small IN-list of constants on the stopping column becomes a
     union of point ranges (delivered in key order). *)
  let in_list_for col =
    let best = ref None in
    List.iteri
      (fun i conj ->
        if (not (Hashtbl.mem absorbed i)) && !best = None then begin
          match conj with
          | Predicate.In_list (c, os) when c = col && List.length os <= 32 ->
              let consts =
                List.filter_map
                  (fun o ->
                    match const_value o with
                    | Some v when not (Value.is_null v) -> Some v
                    | _ -> None)
                  os
              in
              if List.length consts = List.length os && consts <> [] then
                best := Some (i, List.sort_uniq Value.compare consts)
          | _ -> ()
        end)
      conjuncts;
    !best
  in
  let rec walk cols eq_vals =
    match cols with
    | [] -> (List.rev eq_vals, None, None, None)
    | col :: rest ->
        let lo = ref None and hi = ref None in
        let found = ref [] in
        List.iteri
          (fun i conj ->
            if not (Hashtbl.mem absorbed i) then begin
              match bounds_for col conj with
              | Some (l, h) ->
                  lo := tighten_lo !lo l;
                  hi := tighten_hi !hi h;
                  found := i :: !found
              | None -> ()
            end)
          conjuncts;
        (match (!lo, !hi) with
        | Some (vl, true), Some (vh, true) when Value.compare vl vh = 0 ->
            (* Equality on this column: absorb and continue deeper. *)
            List.iter (fun i -> Hashtbl.replace absorbed i ()) !found;
            walk rest (vl :: eq_vals)
        | None, None -> (
            match in_list_for col with
            | Some (i, values) ->
                Hashtbl.replace absorbed i ();
                (List.rev eq_vals, None, None, Some values)
            | None -> (List.rev eq_vals, None, None, None))
        | l, h ->
            List.iter (fun i -> Hashtbl.replace absorbed i ()) !found;
            (List.rev eq_vals, l, h, None))
  in
  let eq_vals, lo, hi, in_values = walk idx.Table.key_columns [] in
  let eq_prefix = List.length eq_vals in
  let lo_bound =
    match lo with
    | Some (v, incl) ->
        let key = key_of_values (eq_vals @ [ v ]) in
        if incl then Btree.Incl key else Btree.Excl key
    | None ->
        if eq_vals <> [] then Btree.Incl (key_of_values eq_vals)
        else if hi <> None then
          (* Upper bound only: exclude NULL keys, which sort first but
             cannot satisfy the absorbed comparison. *)
          Btree.Excl [| Value.Null |]
        else Btree.Unbounded
  in
  let hi_bound =
    match hi with
    | Some (v, incl) ->
        let key = key_of_values (eq_vals @ [ v ]) in
        if incl then Btree.Incl key else Btree.Excl key
    | None -> if eq_vals <> [] then Btree.Incl (key_of_values eq_vals) else Btree.Unbounded
  in
  (* NULL in the range column under an upper-bound-only range within an
     equality prefix: exclude via a NULL-excluding low key. *)
  let lo_bound =
    match (lo, hi, eq_vals) with
    | None, Some _, _ :: _ -> Btree.Excl (key_of_values (eq_vals @ [ Value.Null ]))
    | _ -> lo_bound
  in
  let residual_list =
    List.filteri (fun i _ -> not (Hashtbl.mem absorbed i)) conjuncts
  in
  let residual = Predicate.simplify (Predicate.And residual_list) in
  match in_values with
  | Some values ->
      let ranges =
        List.map (fun v -> Btree.point_range (key_of_values (eq_vals @ [ v ]))) values
      in
      { ranges; residual; bounded = true; eq_prefix }
  | None ->
      let bounded = lo_bound <> Btree.Unbounded || hi_bound <> Btree.Unbounded in
      { ranges = [ { Btree.lo = lo_bound; hi = hi_bound } ]; residual; bounded; eq_prefix }

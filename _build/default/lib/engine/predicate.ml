open Rdb_data

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = Const of Value.t | Param of string

type t =
  | True
  | False
  | Cmp of string * comparison * operand
  | Cmp_col of string * comparison * string
  | Between of string * operand * operand
  | In_list of string * operand list
  | Is_null of string
  | Is_not_null of string
  | Like of string * string
  | And of t list
  | Or of t list
  | Not of t

type env = (string * Value.t) list

exception Unbound_param of string

let bind_operand env = function
  | Const _ as c -> c
  | Param name -> (
      match List.assoc_opt name env with
      | Some v -> Const v
      | None -> raise (Unbound_param name))

let rec bind t env =
  match t with
  | True | False | Is_null _ | Is_not_null _ | Like _ | Cmp_col _ -> t
  | Cmp (c, op, o) -> Cmp (c, op, bind_operand env o)
  | Between (c, a, b) -> Between (c, bind_operand env a, bind_operand env b)
  | In_list (c, os) -> In_list (c, List.map (bind_operand env) os)
  | And ts -> And (List.map (fun x -> bind x env) ts)
  | Or ts -> Or (List.map (fun x -> bind x env) ts)
  | Not x -> Not (bind x env)

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let params t =
  let rec go acc = function
    | True | False | Is_null _ | Is_not_null _ | Like _ | Cmp_col _ -> acc
    | Cmp (_, _, Param p) -> p :: acc
    | Cmp (_, _, Const _) -> acc
    | Between (_, a, b) ->
        let acc = match a with Param p -> p :: acc | Const _ -> acc in
        (match b with Param p -> p :: acc | Const _ -> acc)
    | In_list (_, os) ->
        List.fold_left (fun acc -> function Param p -> p :: acc | Const _ -> acc) acc os
    | And ts | Or ts -> List.fold_left go acc ts
    | Not x -> go acc x
  in
  dedup (List.rev (go [] t))

let columns t =
  let rec go acc = function
    | True | False -> acc
    | Cmp (c, _, _) | Between (c, _, _) | In_list (c, _) | Is_null c | Is_not_null c
    | Like (c, _) ->
        c :: acc
    | Cmp_col (a, _, b) -> b :: a :: acc
    | And ts | Or ts -> List.fold_left go acc ts
    | Not x -> go acc x
  in
  dedup (List.rev (go [] t))

let is_bound t = params t = []

(* --- three-valued logic -------------------------------------------- *)

type tri = T | F | U

let tri_not = function T -> F | F -> T | U -> U

let tri_and a b =
  match (a, b) with F, _ | _, F -> F | T, T -> T | _ -> U

let tri_or a b =
  match (a, b) with T, _ | _, T -> T | F, F -> F | _ -> U

let const_of = function
  | Const v -> v
  | Param p -> raise (Unbound_param p)

let cmp_tri op (a : Value.t) (b : Value.t) =
  if Value.is_null a || Value.is_null b then U
  else begin
    let c = Value.compare a b in
    let holds =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    if holds then T else F
  end

(* SQL LIKE with % (any run) and _ (any single char). *)
let like_match pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
        let r =
          if pi >= np then si >= ns
          else begin
            match pattern.[pi] with
            | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
            | '_' -> si < ns && go (pi + 1) (si + 1)
            | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
          end
        in
        Hashtbl.add memo (pi, si) r;
        r
  in
  go 0 0

let rec eval_tri t schema row =
  match t with
  | True -> T
  | False -> F
  | Cmp (col, op, o) ->
      cmp_tri op (Row.get row (Schema.index_of schema col)) (const_of o)
  | Cmp_col (a, op, b) ->
      cmp_tri op
        (Row.get row (Schema.index_of schema a))
        (Row.get row (Schema.index_of schema b))
  | Between (col, lo, hi) ->
      let v = Row.get row (Schema.index_of schema col) in
      tri_and (cmp_tri Ge v (const_of lo)) (cmp_tri Le v (const_of hi))
  | In_list (col, os) ->
      let v = Row.get row (Schema.index_of schema col) in
      List.fold_left (fun acc o -> tri_or acc (cmp_tri Eq v (const_of o))) F os
  | Is_null col -> if Value.is_null (Row.get row (Schema.index_of schema col)) then T else F
  | Is_not_null col ->
      if Value.is_null (Row.get row (Schema.index_of schema col)) then F else T
  | Like (col, pattern) -> (
      match Row.get row (Schema.index_of schema col) with
      | Value.Null -> U
      | Value.Str s -> if like_match pattern s then T else F
      | v -> if like_match pattern (Value.to_string v) then T else F)
  | And ts -> List.fold_left (fun acc x -> tri_and acc (eval_tri x schema row)) T ts
  | Or ts -> List.fold_left (fun acc x -> tri_or acc (eval_tri x schema row)) F ts
  | Not x -> tri_not (eval_tri x schema row)

let eval t schema row = eval_tri t schema row = T

let eval_maybe t schema row = eval_tri t schema row <> F

let rec simplify t =
  match t with
  | True | False | Cmp _ | Cmp_col _ | Between _ | In_list _ | Is_null _ | Is_not_null _
  | Like _ ->
      t
  | Not x -> (
      match simplify x with
      | True -> False
      | False -> True
      | Not y -> y
      | y -> Not y)
  | And ts ->
      let ts =
        List.concat_map
          (fun x -> match simplify x with And ys -> ys | True -> [] | y -> [ y ])
          ts
      in
      if List.mem False ts then False
      else begin
        match ts with [] -> True | [ x ] -> x | _ -> And ts
      end
  | Or ts ->
      let ts =
        List.concat_map
          (fun x -> match simplify x with Or ys -> ys | False -> [] | y -> [ y ])
          ts
      in
      if List.mem True ts then True
      else begin
        match ts with [] -> False | [ x ] -> x | _ -> Or ts
      end

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let operand_to_string = function
  | Const v -> Value.to_string v
  | Param p -> ":" ^ p

let rec to_string = function
  | True -> "TRUE"
  | False -> "FALSE"
  | Cmp (c, op, o) ->
      Printf.sprintf "%s %s %s" c (comparison_to_string op) (operand_to_string o)
  | Cmp_col (a, op, b) -> Printf.sprintf "%s %s %s" a (comparison_to_string op) b
  | Between (c, a, b) ->
      Printf.sprintf "%s BETWEEN %s AND %s" c (operand_to_string a) (operand_to_string b)
  | In_list (c, os) ->
      Printf.sprintf "%s IN (%s)" c (String.concat ", " (List.map operand_to_string os))
  | Is_null c -> c ^ " IS NULL"
  | Is_not_null c -> c ^ " IS NOT NULL"
  | Like (c, p) -> Printf.sprintf "%s LIKE '%s'" c p
  | And ts -> "(" ^ String.concat " AND " (List.map to_string ts) ^ ")"
  | Or ts -> "(" ^ String.concat " OR " (List.map to_string ts) ^ ")"
  | Not x -> "NOT " ^ to_string x

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( =% ) c v = Cmp (c, Eq, Const v)
let ( <% ) c v = Cmp (c, Lt, Const v)
let ( <=% ) c v = Cmp (c, Le, Const v)
let ( >% ) c v = Cmp (c, Gt, Const v)
let ( >=% ) c v = Cmp (c, Ge, Const v)
let between c lo hi = Between (c, Const lo, Const hi)
let param_cmp c op p = Cmp (c, op, Param p)

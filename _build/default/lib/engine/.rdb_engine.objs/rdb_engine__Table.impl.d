lib/engine/table.ml: Array Btree Buffer_pool Cost Hashtbl Heap_file Int List Printf Rdb_btree Rdb_data Rdb_storage Rdb_util Rid Row Sampling Schema

lib/engine/histogram.mli: Cost Format Predicate Rdb_storage Table

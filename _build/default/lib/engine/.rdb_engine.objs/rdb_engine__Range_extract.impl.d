lib/engine/range_extract.ml: Array Btree Hashtbl List Predicate Rdb_btree Rdb_data Table Value

lib/engine/range_extract.mli: Btree Predicate Rdb_btree Rdb_data Table Value

lib/engine/predicate.mli: Format Rdb_data Row Schema Value

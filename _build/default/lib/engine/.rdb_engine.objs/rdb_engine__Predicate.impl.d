lib/engine/predicate.ml: Format Hashtbl List Printf Rdb_data Row Schema String Value

lib/engine/table.mli: Btree Buffer_pool Cost Heap_file Rdb_btree Rdb_data Rdb_storage Rid Row Schema

lib/engine/selectivity.mli: Cost Predicate Rdb_dist Rdb_storage Table

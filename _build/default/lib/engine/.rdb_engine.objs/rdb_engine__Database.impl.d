lib/engine/database.ml: Buffer_pool Hashtbl Rdb_storage Table

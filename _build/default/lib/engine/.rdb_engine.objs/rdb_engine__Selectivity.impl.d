lib/engine/selectivity.ml: Btree Estimate Int List Predicate Range_extract Rdb_btree Rdb_dist Rdb_util Table

lib/engine/histogram.ml: Array Cost Float Format Heap_file Int Predicate Rdb_data Rdb_storage Row Schema Table Value

lib/engine/database.mli: Buffer_pool Rdb_data Rdb_storage Schema Table

(** Boolean restriction trees.

    The paper optimizes single-table access under a "Boolean
    restriction" — an AND/OR/NOT tree over simple column predicates,
    possibly containing host-language variables (the `:A1` of the §4
    motivating query).  Evaluation uses SQL three-valued logic: a
    comparison with NULL is [Unknown], and a row qualifies only if the
    whole restriction evaluates to [True]. *)

open Rdb_data

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Const of Value.t
  | Param of string  (** host variable, bound at open-retrieval time *)

type t =
  | True
  | False
  | Cmp of string * comparison * operand
  | Cmp_col of string * comparison * string
      (** column-to-column comparison — same-row attribute comparison
          (the §5 case range estimation cannot serve) and the carrier
          of join conditions in the SQL layer *)
  | Between of string * operand * operand  (** inclusive *)
  | In_list of string * operand list
  | Is_null of string
  | Is_not_null of string
  | Like of string * string  (** pattern with [%] and [_] *)
  | And of t list
  | Or of t list
  | Not of t

type env = (string * Value.t) list
(** Host-variable bindings. *)

exception Unbound_param of string

val bind : t -> env -> t
(** Substitute parameters; raises {!Unbound_param} if one is missing. *)

val params : t -> string list
(** Parameter names, deduplicated, in first-occurrence order. *)

val columns : t -> string list
(** Referenced column names, deduplicated. *)

val is_bound : t -> bool

val eval : t -> Schema.t -> Row.t -> bool
(** Three-valued evaluation collapsed to "qualifies or not".  The
    restriction must be bound and its columns must exist in the
    schema; raises [Unbound_param] / [Not_found] otherwise. *)

val eval_maybe : t -> Schema.t -> Row.t -> bool
(** [false] only when the restriction definitely fails ([F]); [true]
    for [T] or [Unknown].  Used to pre-filter on synthetic rows built
    from index keys, where unreferenced columns read as NULL: a row may
    be rejected early only on definite evidence. *)

val simplify : t -> t
(** Flatten nested And/Or, drop [True]/[False] units, fold constants.
    Does not reorder operands. *)

val comparison_to_string : comparison -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Convenience constructors} *)

val ( =% ) : string -> Value.t -> t
val ( <% ) : string -> Value.t -> t
val ( <=% ) : string -> Value.t -> t
val ( >% ) : string -> Value.t -> t
val ( >=% ) : string -> Value.t -> t
val between : string -> Value.t -> Value.t -> t
val param_cmp : string -> comparison -> string -> t

(** Extraction of an index range from a bound restriction.

    Given the table-wide Boolean restriction (bound: no host variables
    left), determine for one index the narrowest B-tree range that is
    guaranteed to contain every qualifying row, plus the *residual*
    restriction that must still be evaluated per row.  The shape is the
    classical one: an equality prefix on the leading key columns
    followed by at most one range column — or, when the stopping
    column carries a small constant IN-list, a union of point ranges
    (one per value, in key order).

    Conjuncts comparing against NULL are never absorbed (they can only
    evaluate to Unknown), and absorbed upper-bound-only ranges get an
    explicit NULL-excluding lower bound, because NULL keys sort first
    in the tree. *)

open Rdb_btree
open Rdb_data

type t = {
  ranges : Btree.range list;
      (** disjoint, in key order; usually a single range, several for
          an absorbed IN-list on the stopping key column *)
  residual : Predicate.t;  (** what the ranges do not guarantee *)
  bounded : bool;  (** false when the single range is the whole index *)
  eq_prefix : int;  (** number of leading equality columns absorbed *)
}

val for_index : Predicate.t -> Table.index -> t
(** The restriction must be bound ({!Predicate.is_bound}); raises
    [Invalid_argument] otherwise. *)

val key_of_values : Value.t list -> Btree.key

type weights = {
  physical_read : float;
  logical_read : float;
  block_write : float;
  cpu_op : float;
}

let default_weights =
  { physical_read = 1.0; logical_read = 0.01; block_write = 1.0; cpu_op = 0.0001 }

type t = {
  mutable physical : int;
  mutable logical : int;
  mutable writes : int;
  mutable cpu : int;
}

let create () = { physical = 0; logical = 0; writes = 0; cpu = 0 }

let charge_physical t = t.physical <- t.physical + 1
let charge_logical t = t.logical <- t.logical + 1
let charge_write t = t.writes <- t.writes + 1
let charge_cpu t n = t.cpu <- t.cpu + n

let physical_reads t = t.physical
let logical_reads t = t.logical
let block_writes t = t.writes
let cpu_ops t = t.cpu

let total ?(weights = default_weights) t =
  (float_of_int t.physical *. weights.physical_read)
  +. (float_of_int t.logical *. weights.logical_read)
  +. (float_of_int t.writes *. weights.block_write)
  +. (float_of_int t.cpu *. weights.cpu_op)

let add dst src =
  dst.physical <- dst.physical + src.physical;
  dst.logical <- dst.logical + src.logical;
  dst.writes <- dst.writes + src.writes;
  dst.cpu <- dst.cpu + src.cpu

let snapshot t = { physical = t.physical; logical = t.logical; writes = t.writes; cpu = t.cpu }

let since now before = total now -. total before

let reset t =
  t.physical <- 0;
  t.logical <- 0;
  t.writes <- 0;
  t.cpu <- 0

let pp fmt t =
  Format.fprintf fmt "phys=%d log=%d wr=%d cpu=%d cost=%.2f" t.physical t.logical t.writes
    t.cpu (total t)

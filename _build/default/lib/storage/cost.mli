(** Cost meters.

    Every scan strategy carries a meter; the buffer pool charges it on
    each block access.  The dynamic optimizer's competition criteria
    (§3, §6) compare meter readings and projections, so the *weights*
    define the system's notion of cost: a physical (disk) read is the
    unit, a buffered (logical) read is ~100x cheaper, per-record CPU
    work cheaper still.  These match the paper's observation that index
    scans are "typically 10-100 times cheaper" than record fetching. *)

type weights = {
  physical_read : float;
  logical_read : float;
  block_write : float;
  cpu_op : float;
}

val default_weights : weights

type t

val create : unit -> t

val charge_physical : t -> unit
val charge_logical : t -> unit
val charge_write : t -> unit
val charge_cpu : t -> int -> unit
(** [charge_cpu m n] adds [n] CPU operations (per-record comparisons,
    filter probes...). *)

val physical_reads : t -> int
val logical_reads : t -> int
val block_writes : t -> int
val cpu_ops : t -> int

val total : ?weights:weights -> t -> float
(** Weighted cost. *)

val add : t -> t -> unit
(** [add dst src] accumulates [src] into [dst] (used to roll per-scan
    meters up into a retrieval-level meter). *)

val snapshot : t -> t
(** Independent copy. *)

val since : t -> t -> float
(** [since now before] is [total now -. total before] with default
    weights: cost spent between two snapshots. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit

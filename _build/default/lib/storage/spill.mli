(** Temporary spill storage for RID lists (paper §6).

    When a Jscan RID list overflows its memory buffer it "flows into a
    temporary table".  A spill file is an append-only sequence of
    fixed-capacity RID blocks; writing a block charges a block write,
    reading one back goes through the buffer pool like any other
    block. *)

open Rdb_data

type t

val create : ?rids_per_block:int -> Buffer_pool.t -> t
(** [rids_per_block] defaults to 1024 (8 KiB at 8 bytes per RID). *)

val append : t -> Cost.t -> Rid.t array -> unit
(** Append RIDs, flushing full blocks as they fill. *)

val seal : t -> Cost.t -> unit
(** Flush the partial tail block; no more appends accepted. *)

val length : t -> int
(** Total RIDs stored (including the unsealed tail). *)

val block_count : t -> int

val iter : t -> Cost.t -> (Rid.t -> unit) -> unit
(** Stream all RIDs back in append order, charging one access per
    block. *)

val to_array : t -> Cost.t -> Rid.t array

val destroy : t -> unit
(** Drop the spill blocks from the buffer pool. *)

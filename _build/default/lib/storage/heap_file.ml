open Rdb_data
module Dynarray = Rdb_util.Dynarray

type page = {
  slots : Bytes.t option Dynarray.t; (* None = tombstone *)
  mutable bytes_used : int;
}

type t = {
  pool : Buffer_pool.t;
  file : int;
  page_bytes : int;
  pages : page Dynarray.t;
  mutable live : int;
  mutable max_slots : int;
}

let create ?(page_bytes = 8192) pool =
  if page_bytes < 64 then invalid_arg "Heap_file.create: page too small";
  {
    pool;
    file = Buffer_pool.fresh_file pool;
    page_bytes;
    pages = Dynarray.create ();
    live = 0;
    max_slots = 1;
  }

let file_id t = t.file
let page_count t = Dynarray.length t.pages
let record_count t = t.live

let records_per_page t =
  let pages = Int.max 1 (page_count t) in
  Int.max 1 ((t.live + pages - 1) / pages)

let block t index : Buffer_pool.block = { file = t.file; index }

let insert t row =
  let encoded = Row.encode row in
  let size = Bytes.length encoded + 4 (* slot directory entry *) in
  let page, page_no =
    match Dynarray.last t.pages with
    | Some p when p.bytes_used + size <= t.page_bytes -> (p, Dynarray.length t.pages - 1)
    | _ ->
        let p = { slots = Dynarray.create (); bytes_used = 0 } in
        Dynarray.push t.pages p;
        (p, Dynarray.length t.pages - 1)
  in
  let slot = Dynarray.length page.slots in
  Dynarray.push page.slots (Some encoded);
  page.bytes_used <- page.bytes_used + size;
  t.live <- t.live + 1;
  t.max_slots <- Int.max t.max_slots (slot + 1);
  Rid.make ~page:page_no ~slot

let get_page t meter page_no =
  if page_no < 0 || page_no >= Dynarray.length t.pages then None
  else begin
    Buffer_pool.touch t.pool meter (block t page_no);
    Some (Dynarray.get t.pages page_no)
  end

let fetch t meter (rid : Rid.t) =
  match get_page t meter rid.page with
  | None -> None
  | Some page ->
      if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then None
      else begin
        match Dynarray.get page.slots rid.slot with
        | None -> None
        | Some bytes ->
            Cost.charge_cpu meter 1;
            Some (Row.decode bytes)
      end

let delete t meter (rid : Rid.t) =
  match get_page t meter rid.page with
  | None -> false
  | Some page ->
      if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then false
      else begin
        match Dynarray.get page.slots rid.slot with
        | None -> false
        | Some bytes ->
            Dynarray.set page.slots rid.slot None;
            page.bytes_used <- page.bytes_used - (Bytes.length bytes + 4);
            t.live <- t.live - 1;
            Buffer_pool.write t.pool meter (block t rid.page);
            true
      end

let update t meter (rid : Rid.t) row =
  match get_page t meter rid.page with
  | None -> false
  | Some page ->
      if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then false
      else begin
        match Dynarray.get page.slots rid.slot with
        | None -> false
        | Some old ->
            let encoded = Row.encode row in
            Dynarray.set page.slots rid.slot (Some encoded);
            page.bytes_used <- page.bytes_used - Bytes.length old + Bytes.length encoded;
            Buffer_pool.write t.pool meter (block t rid.page);
            true
      end

type cursor = {
  heap : t;
  meter : Cost.t;
  mutable page_no : int;
  mutable slot : int;
  mutable loaded : page option;
}

let scan t meter = { heap = t; meter; page_no = -1; slot = 0; loaded = None }

let rec next c =
  match c.loaded with
  | None ->
      let page_no = c.page_no + 1 in
      if page_no >= page_count c.heap then None
      else begin
        c.page_no <- page_no;
        c.slot <- 0;
        c.loaded <- get_page c.heap c.meter page_no;
        next c
      end
  | Some page ->
      if c.slot >= Dynarray.length page.slots then begin
        c.loaded <- None;
        next c
      end
      else begin
        let slot = c.slot in
        c.slot <- slot + 1;
        match Dynarray.get page.slots slot with
        | None -> next c
        | Some bytes ->
            Cost.charge_cpu c.meter 1;
            Some (Rid.make ~page:c.page_no ~slot, Row.decode bytes)
      end

let iter t meter f =
  let c = scan t meter in
  let rec loop () =
    match next c with
    | None -> ()
    | Some (rid, row) ->
        f rid row;
        loop ()
  in
  loop ()

let slots_per_page_hint t = t.max_slots

lib/storage/buffer_pool.ml: Cost Hashtbl List

lib/storage/heap_file.mli: Buffer_pool Cost Rdb_data Rid Row

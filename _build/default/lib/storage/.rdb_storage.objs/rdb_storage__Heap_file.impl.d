lib/storage/heap_file.ml: Buffer_pool Bytes Cost Int Rdb_data Rdb_util Rid Row

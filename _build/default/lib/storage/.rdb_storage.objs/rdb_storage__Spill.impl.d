lib/storage/spill.ml: Array Buffer_pool Rdb_data Rdb_util Rid

lib/storage/spill.mli: Buffer_pool Cost Rdb_data Rid

lib/storage/buffer_pool.mli: Cost

lib/storage/cost.mli: Format

open Rdb_data

type t = Exact of Rid.t array | Hashed of Bitmap.t

let of_sorted_array a =
  assert (
    let ok = ref true in
    for i = 1 to Array.length a - 1 do
      if Rid.compare a.(i - 1) a.(i) > 0 then ok := false
    done;
    !ok);
  Exact a

let mem t rid =
  match t with
  | Exact a -> Rdb_util.Sorted.mem ~cmp:Rid.compare a ~len:(Array.length a) rid
  | Hashed b -> Bitmap.mem b rid

let is_exact = function Exact _ -> true | Hashed _ -> false

let size_hint = function
  | Exact a -> Array.length a
  | Hashed b -> Bitmap.population b

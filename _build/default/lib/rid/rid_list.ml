open Rdb_data
open Rdb_storage
module Dynarray = Rdb_util.Dynarray

type tier = Inline | Buffered | Spilled

let inline_capacity = 20

type t = {
  pool : Buffer_pool.t;
  meter : Cost.t;
  budget : int;
  bitmap_bits : int;
  inline : Rid.t array;
  mutable inline_len : int;
  mutable buffer : Rid.t Dynarray.t option;
  mutable spill : Spill.t option;
  mutable bitmap : Bitmap.t option; (* maintained from first spill on *)
  mutable total : int;
  mutable sealed : bool;
}

let create ?(memory_budget = 4096) ?bitmap_bits pool meter =
  if memory_budget < inline_capacity then
    invalid_arg "Rid_list.create: budget below inline capacity";
  let bitmap_bits =
    match bitmap_bits with Some b -> b | None -> 16 * memory_budget
  in
  {
    pool;
    meter;
    budget = memory_budget;
    bitmap_bits;
    inline = Array.make inline_capacity (Rid.make ~page:0 ~slot:0);
    inline_len = 0;
    buffer = None;
    spill = None;
    bitmap = None;
    total = 0;
    sealed = false;
  }

let count t = t.total

let tier t =
  if t.spill <> None then Spilled else if t.buffer <> None then Buffered else Inline

let promote_to_buffer t =
  let buf = Dynarray.create () in
  for i = 0 to t.inline_len - 1 do
    Dynarray.push buf t.inline.(i)
  done;
  t.buffer <- Some buf

let promote_to_spill t buf =
  let spill = Spill.create t.pool in
  let bitmap = Bitmap.create ~bits:t.bitmap_bits in
  Dynarray.iter (Bitmap.add bitmap) buf;
  Spill.append spill t.meter (Dynarray.to_array buf);
  t.buffer <- None;
  t.spill <- Some spill;
  t.bitmap <- Some bitmap

let rec add t rid =
  if t.sealed then invalid_arg "Rid_list.add: sealed";
  t.total <- t.total + 1;
  match (t.spill, t.buffer) with
  | Some spill, _ ->
      Spill.append spill t.meter [| rid |];
      (match t.bitmap with Some b -> Bitmap.add b rid | None -> assert false)
  | None, Some buf ->
      if Dynarray.length buf >= t.budget then begin
        promote_to_spill t buf;
        add_after_spill t rid
      end
      else Dynarray.push buf rid
  | None, None ->
      if t.inline_len < inline_capacity then begin
        t.inline.(t.inline_len) <- rid;
        t.inline_len <- t.inline_len + 1
      end
      else begin
        promote_to_buffer t;
        match t.buffer with
        | Some buf -> Dynarray.push buf rid
        | None -> assert false
      end

and add_after_spill t rid =
  match (t.spill, t.bitmap) with
  | Some spill, Some b ->
      Spill.append spill t.meter [| rid |];
      Bitmap.add b rid
  | _ -> assert false

let seal t =
  if not t.sealed then begin
    (match t.spill with Some s -> Spill.seal s t.meter | None -> ());
    t.sealed <- true
  end

let in_memory_array t =
  match t.buffer with
  | Some buf -> Dynarray.to_array buf
  | None -> Array.sub t.inline 0 t.inline_len

let filter t =
  seal t;
  match t.bitmap with
  | Some b -> Filter.Hashed b
  | None ->
      let a = in_memory_array t in
      let sorted = Rdb_util.Sorted.merge_dedup ~cmp:Rid.compare a in
      Filter.of_sorted_array sorted

let to_sorted_array t =
  seal t;
  let a =
    match t.spill with
    | Some spill -> Spill.to_array spill t.meter
    | None -> in_memory_array t
  in
  Rdb_util.Sorted.merge_dedup ~cmp:Rid.compare a

let iter_unordered t f =
  seal t;
  match t.spill with
  | Some spill -> Spill.iter spill t.meter f
  | None -> Array.iter f (in_memory_array t)

let destroy t =
  match t.spill with Some s -> Spill.destroy s | None -> ()

(** RID-list filters for Jscan intersection (§6).

    A completed index scan leaves behind a filter that subsequent
    scans probe: either an exact sorted in-memory RID list, or a hashed
    bitmap when the list spilled.  [mem] is one-sided for the hashed
    kind: [false] is definite, [true] may be a false positive. *)

open Rdb_data

type t =
  | Exact of Rid.t array  (** sorted ascending *)
  | Hashed of Bitmap.t

val of_sorted_array : Rid.t array -> t
(** The array must be sorted; checked with an assertion. *)

val mem : t -> Rid.t -> bool
val is_exact : t -> bool

val size_hint : t -> int
(** Exact size, or the bitmap population as a proxy. *)

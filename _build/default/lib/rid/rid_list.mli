(** Hybrid RID-list accumulator (paper §6, "engineering around the
    L-shape distribution").

    The RID-list size quantity is split into monotonically increasing
    regions:

    - a zero-length list shortcuts the whole retrieval;
    - up to {!inline_capacity} RIDs live in a statically-allocated
      buffer — no allocation, no memory-manager overhead;
    - bigger lists move to an allocated in-memory buffer bounded by the
      memory budget;
    - bigger still, the list flows into a spill (temporary table) and a
      hashed bitmap of "as small as necessary" size takes over filter
      duty.

    Because most Jscan lists are tiny (that is the L-shape), the cheap
    tiers carry almost all traffic. *)

open Rdb_data
open Rdb_storage

type tier = Inline | Buffered | Spilled

type t

val inline_capacity : int
(** 20, as in the paper. *)

val create :
  ?memory_budget:int -> ?bitmap_bits:int -> Buffer_pool.t -> Cost.t -> t
(** [memory_budget] is the max buffered RIDs before spilling (default
    4096); [bitmap_bits] sizes the hashed bitmap used once spilled
    (default [16 * memory_budget]). *)

val add : t -> Rid.t -> unit
val count : t -> int
val tier : t -> tier

val seal : t -> unit
(** Flush the spill tail; no more adds. *)

val filter : t -> Filter.t
(** Seals, then: exact sorted filter while in-memory; hashed bitmap if
    spilled. *)

val to_sorted_array : t -> Rid.t array
(** Seals, reads back any spilled blocks, sorts and dedups. *)

val iter_unordered : t -> (Rid.t -> unit) -> unit
(** Seals, then iterates in append order (spill reads charged). *)

val destroy : t -> unit
(** Release spill blocks from the pool. *)

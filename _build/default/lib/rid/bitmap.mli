(** Hashed in-memory bitmaps [Babb79].

    A fixed-size bit array addressed by RID hash.  Used as the filter
    for spilled RID lists during Jscan (§6): membership answers are
    one-sided — [false] means definitely absent, [true] means possibly
    present — so a filtered candidate stream keeps every true match and
    admits a tunable rate of false positives that the final-stage
    restriction evaluation weeds out. *)

open Rdb_data

type t

val create : bits:int -> t
(** [bits] rounded up to a multiple of 8; at least 64. *)

val bits : t -> int
val add : t -> Rid.t -> unit
val mem : t -> Rid.t -> bool
val population : t -> int
(** Number of set bits. *)

val fill_ratio : t -> float

val expected_false_positive_rate : t -> float
(** For the current population, assuming uniform hashing (two hash
    probes per RID). *)

lib/rid/rid_list.ml: Array Bitmap Buffer_pool Cost Filter Rdb_data Rdb_storage Rdb_util Rid Spill

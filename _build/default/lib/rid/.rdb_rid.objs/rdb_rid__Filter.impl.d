lib/rid/filter.ml: Array Bitmap Rdb_data Rdb_util Rid

lib/rid/bitmap.ml: Bytes Char Int Rdb_data Rid

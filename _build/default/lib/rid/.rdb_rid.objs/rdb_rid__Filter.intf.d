lib/rid/filter.mli: Bitmap Rdb_data Rid

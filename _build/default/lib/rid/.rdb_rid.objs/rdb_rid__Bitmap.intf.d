lib/rid/bitmap.mli: Rdb_data Rid

lib/rid/rid_list.mli: Buffer_pool Cost Filter Rdb_data Rdb_storage Rid

open Rdb_data

type t = { data : Bytes.t; nbits : int; mutable adds : int }

let create ~bits =
  let nbits = Int.max 64 ((bits + 7) / 8 * 8) in
  { data = Bytes.make (nbits / 8) '\000'; nbits; adds = 0 }

let bits t = t.nbits

(* Two probes per RID, derived from one mixed hash. *)
let probes t rid =
  let h = Rid.hash rid in
  let h1 = h mod t.nbits in
  let h2 = (h / t.nbits) mod t.nbits in
  (h1, h2)

let set_bit t i =
  let byte = Bytes.get_uint8 t.data (i / 8) in
  Bytes.set_uint8 t.data (i / 8) (byte lor (1 lsl (i mod 8)))

let get_bit t i = Bytes.get_uint8 t.data (i / 8) land (1 lsl (i mod 8)) <> 0

let add t rid =
  let h1, h2 = probes t rid in
  set_bit t h1;
  set_bit t h2;
  t.adds <- t.adds + 1

let mem t rid =
  let h1, h2 = probes t rid in
  get_bit t h1 && get_bit t h2

let population t =
  let count = ref 0 in
  Bytes.iter (fun c -> count := !count + (match c with '\000' -> 0 | c ->
    let rec pop n acc = if n = 0 then acc else pop (n lsr 1) (acc + (n land 1)) in
    pop (Char.code c) 0)) t.data;
  !count

let fill_ratio t = float_of_int (population t) /. float_of_int t.nbits

let expected_false_positive_rate t =
  (* k = 2 hash functions: (1 - e^{-2n/m})^2 *)
  let n = float_of_int t.adds and m = float_of_int t.nbits in
  let p = 1.0 -. exp (-2.0 *. n /. m) in
  p *. p

(** Zipf-distributed integer generator [Zipf49].

    The paper's §2 conclusion is that intermediate selectivities are
    "predominantly Zipf-like"; the benchmark workloads use Zipfian
    column values to reproduce the data skew that breaks static
    optimizers. *)

type t

val create : n:int -> theta:float -> t
(** Ranks 1..n with P(k) ∝ 1/k^theta.  [theta = 0] is uniform;
    [theta = 1] is classic Zipf.  Raises [Invalid_argument] if
    [n < 1] or [theta < 0]. *)

val draw : t -> Rdb_util.Prng.t -> int
(** A rank in [1, n], skewed toward 1. *)

val pmf : t -> int -> float
(** Probability of rank k. *)

val expected_count : t -> int -> total:int -> float
(** Expected occurrences of rank [k] among [total] draws. *)

lib/workload/zipf.mli: Rdb_util

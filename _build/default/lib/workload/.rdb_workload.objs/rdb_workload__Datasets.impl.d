lib/workload/datasets.ml: Char Database Int Printf Rdb_data Rdb_engine Rdb_util Schema String Table Value Zipf

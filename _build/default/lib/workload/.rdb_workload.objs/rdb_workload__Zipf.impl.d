lib/workload/zipf.ml: Array Rdb_util

lib/workload/datasets.mli: Database Rdb_engine Table

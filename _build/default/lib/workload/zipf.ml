type t = { n : int; cdf : float array }

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if theta < 0.0 then invalid_arg "Zipf.create: theta < 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let draw t rng =
  let u = Rdb_util.Prng.float rng 1.0 in
  (* Binary search for the first cdf entry >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let pmf t k =
  if k < 1 || k > t.n then 0.0
  else if k = 1 then t.cdf.(0)
  else t.cdf.(k - 1) -. t.cdf.(k - 2)

let expected_count t k ~total = pmf t k *. float_of_int total

(* §1 — "iteration context" sensitivity, via joins.

   "With multiple runs of an execution plan or with iterative
   execution of query subplans, a number of variables can change their
   values between different runs and iterations: host-language
   variables, iteration context, ..."

   A nested-loop join probes the inner table once per outer row — the
   same subplan executed under a different parameter each iteration.
   With Zipf-skewed join values, some probes hit thousands of rows and
   some hit none: the dynamic engine re-decides per probe (and cancels
   empty probes at estimation time), while a frozen inner plan runs its
   one strategy every time. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SO = Rdb_core.Static_optimizer

let name = "join"
let description = "§1 iteration context: per-probe dynamic decisions vs a frozen inner plan"

let run () =
  Bench_common.section "Experiment join — per-iteration dynamic optimization";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  (* Outer side: a small driver list of customer ids, half of them
     missing entirely (ids beyond the Zipf domain). *)
  let rng = Rdb_util.Prng.create ~seed:77 in
  let probes =
    List.init 300 (fun i ->
        if i mod 2 = 0 then 1 + Rdb_util.Prng.int rng 30 (* hot heads *)
        else 2500 + Rdb_util.Prng.int rng 1000 (* guaranteed misses *))
  in
  let param_pred = Predicate.And
      [ Predicate.param_cmp "CUSTOMER" Predicate.Eq "CID";
        Predicate.( <% ) "PRICE" (Value.int 2000) ]
  in
  (* Dynamic: one fresh retrieval per probe. *)
  Bench_common.flush_pool db;
  let dyn_cost = ref 0.0 and dyn_rows = ref 0 and cancelled = ref 0 in
  List.iter
    (fun cid ->
      let _, s = R.run orders (R.request ~env:[ ("CID", Value.int cid) ] param_pred) in
      dyn_cost := !dyn_cost +. s.R.total_cost;
      dyn_rows := !dyn_rows + s.R.rows_delivered;
      if s.R.tactic = R.Cancelled then incr cancelled)
    probes;
  (* Frozen: compile the inner plan once with the parameter unknown. *)
  Bench_common.flush_pool db;
  let plan = SO.compile orders param_pred ~env:[] in
  let frozen_cost = ref 0.0 and frozen_rows = ref 0 in
  List.iter
    (fun cid ->
      let r = SO.execute orders plan param_pred ~env:[ ("CID", Value.int cid) ] in
      frozen_cost := !frozen_cost +. r.SO.cost;
      frozen_rows := !frozen_rows + List.length r.SO.rows)
    probes;
  Bench_common.table
    ~header:[ "inner engine"; "total cost (300 probes)"; "rows"; "empty probes cancelled" ]
    [
      [ "dynamic per-iteration"; Bench_common.f1 !dyn_cost; string_of_int !dyn_rows;
        string_of_int !cancelled ];
      [ Printf.sprintf "frozen plan (%s)" (SO.strategy_to_string plan.SO.strategy);
        Bench_common.f1 !frozen_cost; string_of_int !frozen_rows; "0" ];
    ];

  Bench_common.subsection "full SQL join (probes memoized per distinct value)";
  let sqldb = Database.create ~pool_capacity:256 () in
  ignore (Rdb_sql.Executor.execute_sql sqldb "CREATE TABLE DRIVERS (CID INT, TAG STRING)");
  let driver_rows =
    List.mapi (fun i cid -> Printf.sprintf "(%d, 'tag%03d')" cid i) probes
  in
  ignore
    (Rdb_sql.Executor.execute_sql sqldb
       ("INSERT INTO DRIVERS VALUES " ^ String.concat ", " driver_rows));
  (* reuse ORDERS inside the same catalog *)
  let _ = Rdb_workload.Datasets.orders ~rows:50_000 sqldb in
  let r =
    Rdb_sql.Executor.execute_sql sqldb
      "SELECT COUNT(*) FROM DRIVERS, ORDERS WHERE DRIVERS.CID = ORDERS.CUSTOMER AND PRICE \
       < 2000"
  in
  (match r.Rdb_sql.Executor.rows with
  | [ [ Value.Int n ] ] -> Printf.printf "join row count: %d\n" n
  | _ -> ());
  List.iter
    (fun (t, (s : R.summary)) ->
      Printf.printf "  %s: cost %.1f (%s)\n" t s.R.total_cost s.R.goal_provenance)
    r.Rdb_sql.Executor.summaries;

  Bench_common.subsection "paper checkpoints";
  Printf.printf "dynamic per-iteration beats the frozen inner plan (%.1f vs %.1f, %.1fx): %b\n"
    !dyn_cost !frozen_cost
    (!frozen_cost /. Float.max 0.1 !dyn_cost)
    (!dyn_cost < !frozen_cost);
  Printf.printf "identical rows from both engines: %b\n" (!dyn_rows = !frozen_rows);
  Printf.printf "about half the probes were cancelled as empty at estimation time: %b\n"
    (!cancelled >= 130)

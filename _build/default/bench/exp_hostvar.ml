(* §4 motivating query — host-variable sensitivity.

     select * from FAMILIES where AGE >= :A1

   A compile-once static plan (System-R defaults for the unknown :A1)
   is frozen across runs; the dynamic optimizer re-decides per run and
   cancels outright on the empty range.  The paper claims correct
   goal/strategy settings improve performance "up to a few decimal
   orders" — the empty-range and near-empty cases show exactly that. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SO = Rdb_core.Static_optimizer

let name = "hostvar"
let description = "§4: AGE >= :A1 — frozen static plan vs dynamic per-run decisions"

let run () =
  Bench_common.section "Experiment hostvar — the §4 motivating query";
  let db = Database.create ~pool_capacity:64 () in
  let families = Rdb_workload.Datasets.families ~rows:40_000 db in
  let pred = Predicate.param_cmp "AGE" Predicate.Ge "A1" in
  let plan = SO.compile families pred ~env:[] in
  Printf.printf "table: %d rows, %d pages; static plan (compiled once): %s\n"
    (Table.row_count families) (Table.page_count families)
    (SO.strategy_to_string plan.SO.strategy);
  let sweep = [ 0; 20; 40; 60; 80; 90; 95; 99; 100; 101; 200 ] in
  let static_total = ref 0.0 and dynamic_total = ref 0.0 in
  let rows =
    List.map
      (fun a1 ->
        let env = [ ("A1", Value.int a1) ] in
        Bench_common.flush_pool db;
        let st = SO.execute families plan pred ~env in
        Bench_common.flush_pool db;
        let returned, dyn = R.run families (R.request ~env pred) in
        static_total := !static_total +. st.SO.cost;
        dynamic_total := !dynamic_total +. dyn.R.total_cost;
        let speedup = st.SO.cost /. Float.max 0.01 dyn.R.total_cost in
        [
          string_of_int a1;
          string_of_int (List.length returned);
          Bench_common.f1 st.SO.cost;
          Bench_common.f1 dyn.R.total_cost;
          Bench_common.f1 speedup;
          R.tactic_to_string dyn.R.tactic;
        ])
      sweep
  in
  Bench_common.table
    ~header:[ ":A1"; "rows"; "static cost"; "dynamic cost"; "static/dynamic"; "dynamic tactic" ]
    rows;
  Printf.printf "\nsweep totals: static %.1f, dynamic %.1f (ratio %.2fx)\n" !static_total
    !dynamic_total
    (!static_total /. !dynamic_total);
  Bench_common.subsection "paper checkpoints";
  Printf.printf "dynamic wins the sweep overall: %b\n" (!dynamic_total < !static_total);
  Bench_common.flush_pool db;
  let _, s_empty = R.run families (R.request ~env:[ ("A1", Value.int 200) ] pred) in
  Bench_common.flush_pool db;
  let st_empty = SO.execute families plan pred ~env:[ ("A1", Value.int 200) ] in
  Printf.printf
    "empty range: dynamic cancels for %.1f vs static %.1f — %.0fx (\"a few decimal orders\"): %b\n"
    s_empty.R.total_cost st_empty.SO.cost
    (st_empty.SO.cost /. Float.max 0.01 s_empty.R.total_cost)
    (st_empty.SO.cost > 20.0 *. Float.max 0.01 s_empty.R.total_cost)

(* §7 — the four retrieval tactics under early termination.

   Total-time retrieval optimizes the complete run; fast-first
   optimizes time-to-first-rows and early-termination cost; the sorted
   tactic saves record fetches with a background filter; the index-only
   tactic lets the covering Sscan and Jscan compete.  The sweep
   measures the cost of fetching the first k rows and the full result
   under each goal. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal

let name = "tactics"
let description = "§7: the four competition tactics under early termination"

let fetch_k table req k =
  let c = R.open_ table req in
  let got = ref 0 in
  (try
     while !got < k do
       match R.fetch c with Some _ -> incr got | None -> raise Exit
     done
   with Exit -> ());
  R.close c

let run () =
  Bench_common.section "Experiment tactics — fast-first / background-only / sorted / index-only";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let employees = Rdb_workload.Datasets.employees ~rows:30_000 db in

  Bench_common.subsection "fast-first vs total-time: cost to first k rows (ORDERS)";
  let pred =
    Predicate.And
      [ Predicate.( =% ) "CUSTOMER" (Value.int 3); Predicate.( <% ) "PRICE" (Value.int 3500) ]
  in
  let rows =
    List.map
      (fun k ->
        Bench_common.flush_pool db;
        let ff = fetch_k orders (R.request ~explicit_goal:G.Fast_first pred) k in
        Bench_common.flush_pool db;
        let tt = fetch_k orders (R.request ~explicit_goal:G.Total_time pred) k in
        [
          (if k = max_int then "all" else string_of_int k);
          string_of_int ff.R.rows_delivered;
          Bench_common.f1 ff.R.total_cost;
          Bench_common.f1 tt.R.total_cost;
          R.tactic_to_string ff.R.tactic;
        ])
      [ 1; 10; 100; max_int ]
  in
  Bench_common.table
    ~header:[ "rows wanted"; "delivered"; "fast-first cost"; "total-time cost"; "ff tactic" ]
    rows;

  Bench_common.subsection "sorted tactic: background filter saves fetches (ORDERS, ORDER BY DAY)";
  let spred =
    Predicate.And
      [ Predicate.( =% ) "PRODUCT" (Value.int 7); Predicate.( <% ) "PRICE" (Value.int 1500) ]
  in
  Bench_common.flush_pool db;
  let _, with_filter =
    R.run orders (R.request ~explicit_goal:G.Fast_first ~order_by:[ "DAY" ] spred)
  in
  (* Ablation: the same plan with the background neutered — a zero
     switch ratio makes the two-stage criterion discard every scan at
     its first check, so no filter is ever delivered. *)
  Bench_common.flush_pool db;
  let no_bgr_cfg =
    {
      R.default_config with
      R.jscan = { Rdb_exec.Jscan.default_config with Rdb_exec.Jscan.switch_ratio = 0.0 };
    }
  in
  let _, without_filter =
    R.run ~config:no_bgr_cfg orders
      (R.request ~explicit_goal:G.Fast_first ~order_by:[ "DAY" ] spred)
  in
  Printf.printf "with background filter:    cost %.1f (%s)\n" with_filter.R.total_cost
    (R.tactic_to_string with_filter.R.tactic);
  Printf.printf "background disabled:       cost %.1f\n" without_filter.R.total_cost;
  Printf.printf "filter saves fetches: %b\n"
    (with_filter.R.total_cost < without_filter.R.total_cost);

  Bench_common.subsection "index-only tactic: covering Sscan vs Jscan (EMPLOYEES)";
  let epred =
    Predicate.And
      [
        Predicate.( =% ) "DEPT" (Value.int 3);
        Predicate.between "SALARY" (Value.int 50_000) (Value.int 90_000);
      ]
  in
  Bench_common.flush_pool db;
  let _, io =
    R.run employees (R.request ~projection:[ "DEPT"; "SALARY" ] epred)
  in
  Bench_common.flush_pool db;
  let _, full =
    R.run employees (R.request epred)
  in
  Printf.printf "projection within (DEPT,SALARY) index: cost %.1f (%s)\n" io.R.total_cost
    (R.tactic_to_string io.R.tactic);
  Printf.printf "SELECT * (fetch-needed):               cost %.1f (%s)\n" full.R.total_cost
    (R.tactic_to_string full.R.tactic);
  Printf.printf "index-only is cheaper: %b\n" (io.R.total_cost <= full.R.total_cost);

  Bench_common.subsection "ablation: foreground/background speed ratio (fast-first, k=20)";
  let ratio_rows =
    List.map
      (fun ratio ->
        Bench_common.flush_pool db;
        let config = { R.default_config with R.speed_ratio = ratio } in
        let c = R.open_ ~config orders (R.request ~explicit_goal:G.Fast_first pred) in
        let got = ref 0 in
        (try
           while !got < 20 do
             match R.fetch c with Some _ -> incr got | None -> raise Exit
           done
         with Exit -> ());
        let s = R.close c in
        [ Bench_common.f2 ratio; Bench_common.f1 s.R.total_cost ])
      [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
  in
  Bench_common.table ~header:[ "fgr:bgr speed ratio"; "cost to 20 rows" ] ratio_rows;

  Bench_common.subsection "paper checkpoints";
  Bench_common.flush_pool db;
  let ff1 = fetch_k orders (R.request ~explicit_goal:G.Fast_first pred) 10 in
  Bench_common.flush_pool db;
  let tt_all = fetch_k orders (R.request ~explicit_goal:G.Total_time pred) max_int in
  Printf.printf "early termination is far cheaper than a full run (%.1f vs %.1f): %b\n"
    ff1.R.total_cost tt_all.R.total_cost
    (ff1.R.total_cost < tt_all.R.total_cost /. 2.0);
  Bench_common.flush_pool db;
  let ff_all = fetch_k orders (R.request ~explicit_goal:G.Fast_first pred) max_int in
  Printf.printf
    "fast-first read-to-end does not blow up vs total-time (%.1f vs %.1f): %b\n"
    ff_all.R.total_cost tt_all.R.total_cost
    (ff_all.R.total_cost < tt_all.R.total_cost *. 1.5)

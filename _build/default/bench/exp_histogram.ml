(* §5 — stored histograms vs the B-tree as a hierarchical histogram.

   The paper's three charges against stored histograms, measured:

   1. maintenance: building one costs full table rescans, and it goes
      stale as soon as data changes — the B-tree estimate "is always
      up-to-date";
   2. coverage: histograms only serve range-producing restrictions;
   3. granularity: "histograms fail to detect small ranges falling
      below granularity, though the smallest ranges must be detected
      and scanned first" — the descent reaches leaves and counts small
      ranges exactly, enabling the §5 shortcut and empty-range
      cancellation. *)

open Rdb_btree
open Rdb_data
open Rdb_engine

let name = "histogram"
let description = "§5: stored histograms vs descent-to-split (maintenance, coverage, granularity)"

let descent_estimate table idx_name pred =
  let idx = Option.get (Table.find_index table idx_name) in
  let e = Range_extract.for_index pred idx in
  let meter = Rdb_storage.Cost.create () in
  let r = Estimate.ranges idx.Table.tree meter e.Range_extract.ranges in
  (r.Estimate.estimate, r.Estimate.nodes_visited)

let actual_count table pred =
  let m = Rdb_storage.Cost.create () in
  let n = ref 0 in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then incr n);
  !n

let run () =
  Bench_common.section "Experiment histogram — §5 estimation methods compared";
  let db = Database.create ~pool_capacity:256 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let meter = Rdb_storage.Cost.create () in
  let hist = Histogram.build ~buckets:64 orders ~column:"PRICE" meter in
  Printf.printf "%s\n" (Format.asprintf "%a" Histogram.pp hist);
  Printf.printf "build cost: %.1f (two full rescans) vs descent estimate cost: ~3 node reads\n"
    (Histogram.build_cost hist);

  Bench_common.subsection "granularity: small ranges (the ones that matter most)";
  let cases =
    [
      ("PRICE = 2500 (point)", Predicate.( =% ) "PRICE" (Value.int 2500));
      ("PRICE in [2500,2505]", Predicate.between "PRICE" (Value.int 2500) (Value.int 2505));
      ("PRICE in [2500,2580]", Predicate.between "PRICE" (Value.int 2500) (Value.int 2580));
      ("PRICE in [1000,2000]", Predicate.between "PRICE" (Value.int 1000) (Value.int 2000));
      ("PRICE > 6000 (empty)", Predicate.( >% ) "PRICE" (Value.int 6000));
    ]
  in
  let rows =
    List.map
      (fun (label, pred) ->
        let actual = actual_count orders pred in
        let h = Option.value ~default:nan (Histogram.estimate_predicate hist pred) in
        let d, nodes = descent_estimate orders "PRICE_IDX" pred in
        [
          label;
          string_of_int actual;
          Bench_common.f1 h;
          Bench_common.f1 d;
          string_of_int nodes;
        ])
      cases
  in
  Bench_common.table
    ~header:[ "restriction"; "actual"; "histogram est"; "descent est"; "descent nodes" ]
    rows;

  Bench_common.subsection "staleness after data changes";
  (* Append 25k rows of expensive orders; the histogram still answers
     from its build-time snapshot, the B-tree is the live data. *)
  let rng = Rdb_util.Prng.create ~seed:99 in
  for i = 0 to 24_999 do
    ignore
      (Table.insert orders
         [|
           Value.int (100_000 + i);
           Value.int (1 + Rdb_util.Prng.int rng 2000);
           Value.int (1 + Rdb_util.Prng.int rng 500);
           Value.int 400;
           Value.int (4000 + Rdb_util.Prng.int rng 1000);
           Value.int 1;
         |])
  done;
  let pred = Predicate.( >=% ) "PRICE" (Value.int 4000) in
  let actual = actual_count orders pred in
  let h = Option.value ~default:nan (Histogram.estimate_predicate hist pred) in
  let d, _ = descent_estimate orders "PRICE_IDX" pred in
  Printf.printf
    "after +25k inserts: actual %d | stale histogram %.0f | live descent %.0f\n" actual h d;

  Bench_common.subsection "coverage: non-range restrictions";
  let like_pred = Predicate.Like ("PRICE", "4%") in
  (match Histogram.estimate_predicate hist like_pred with
  | None -> print_endline "histogram: LIKE is not range-producing -> no estimate (as the paper says)"
  | Some _ -> print_endline "unexpected: histogram estimated a LIKE");
  let rng = Rdb_util.Prng.create ~seed:7 in
  let idx = Option.get (Table.find_index orders "PRICE_IDX") in
  let m2 = Rdb_storage.Cost.create () in
  let frac =
    Sampling.estimate_fraction rng idx.Table.tree m2 ~n:800 (fun key _ ->
        match key.(0) with
        | Value.Int v -> String.length (string_of_int v) > 0 && (string_of_int v).[0] = '4'
        | _ -> false)
  in
  let sampled = frac *. float_of_int (Btree.cardinality idx.Table.tree) in
  let actual_like = actual_count orders like_pred in
  Printf.printf "B-tree sampling handles it: estimated %.0f vs actual %d\n" sampled actual_like;

  Bench_common.subsection "paper checkpoints";
  let point_actual = actual_count orders (Predicate.( =% ) "PRICE" (Value.int 2500)) in
  let d_point, _ = descent_estimate orders "PRICE_IDX" (Predicate.( =% ) "PRICE" (Value.int 2500)) in
  Printf.printf "descent detects a point range near-exactly (%d vs %.0f): %b\n" point_actual
    d_point
    (Float.abs (d_point -. float_of_int point_actual) <= 10.0);
  let empty_d, _ = descent_estimate orders "PRICE_IDX" (Predicate.( >% ) "PRICE" (Value.int 6000)) in
  Printf.printf "descent proves the empty range empty (est %.0f): %b\n" empty_d (empty_d = 0.0);
  Printf.printf "histogram build cost is within a factor of 3 of two Tscans: %b\n"
    (Histogram.build_cost hist > Rdb_exec.Cost_model.tscan_cost orders);
  Printf.printf "stale histogram misses the data shift by >2x: %b\n"
    (h < float_of_int actual /. 2.0);
  Printf.printf "sampling covers the non-range predicate within 25%%: %b\n"
    (Float.abs (sampled -. float_of_int actual_like) < 0.25 *. float_of_int (Int.max 1 actual_like))

(* §3(c) — cache interference between concurrent retrievals.

   "The actual cost of index scan and data record fetches measured in
   physical I/Os is often unpredictable because the pattern of caching
   the disk pages is influenced by many asynchronous processes totally
   unrelated to a given retrieval."

   We run the same query alone on a warm cache, then interleaved with
   an antagonist query sweeping a different table through the shared
   buffer pool, and measure the inflation of its physical reads —
   the run-time variance no compile-time cost model can see. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal

let name = "interference"
let description = "§3(c): buffer-cache interference makes identical queries cost differently"

let drain cursor =
  let rec go () = match R.fetch cursor with Some _ -> go () | None -> () in
  go ();
  R.close cursor

let run () =
  Bench_common.section "Experiment interference — §3(c) cache interference";
  let db = Database.create ~pool_capacity:512 () in
  let orders = Rdb_workload.Datasets.orders ~rows:30_000 db in
  let families = Rdb_workload.Datasets.families ~rows:20_000 db in
  let victim_pred =
    Predicate.And
      [ Predicate.( =% ) "CUSTOMER" (Value.int 4); Predicate.( <% ) "PRICE" (Value.int 4000) ]
  in
  let antagonist_pred = Predicate.( >=% ) "AGE" (Value.int 0) in
  let run_victim () =
    drain (R.open_ orders (R.request ~explicit_goal:G.Total_time victim_pred))
  in
  (* Cold first run pulls the victim's pages in. *)
  Bench_common.flush_pool db;
  let cold = run_victim () in
  (* Immediate repetition: everything still cached. *)
  let warm = run_victim () in
  (* An unrelated query sweeps the shared pool between repetitions. *)
  ignore (drain (R.open_ families (R.request ~explicit_goal:G.Total_time antagonist_pred)));
  let after_antagonist = run_victim () in
  Bench_common.table
    ~header:[ "scenario"; "victim cost"; "rows" ]
    [
      [ "cold cache"; Bench_common.f2 cold.R.total_cost; string_of_int cold.R.rows_delivered ];
      [ "repeated immediately (warm)"; Bench_common.f2 warm.R.total_cost;
        string_of_int warm.R.rows_delivered ];
      [ "repeated after an unrelated sweep"; Bench_common.f2 after_antagonist.R.total_cost;
        string_of_int after_antagonist.R.rows_delivered ];
    ];
  Bench_common.subsection "paper checkpoints";
  Printf.printf
    "the warm repetition is far cheaper than cold (%.1fx) — caching dominates cost: %b\n"
    (cold.R.total_cost /. Float.max 0.01 warm.R.total_cost)
    (warm.R.total_cost < cold.R.total_cost /. 2.0);
  Printf.printf
    "an unrelated query re-inflates the identical plan %.1fx over warm — §3(c)'s \
     unpredictability: %b\n"
    (after_antagonist.R.total_cost /. Float.max 0.01 warm.R.total_cost)
    (after_antagonist.R.total_cost > 2.0 *. warm.R.total_cost);
  Printf.printf "row results identical in all three runs: %b\n"
    (cold.R.rows_delivered = warm.R.rows_delivered
    && warm.R.rows_delivered = after_antagonist.R.rows_delivered)

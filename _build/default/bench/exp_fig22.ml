(* Figure 2.2 — Degradation of certainty.

   The paper starts from an estimate "bell" with mean 0.2 and error
   0.005 and shows how AND/OR chains (unknown correlation) destroy the
   precision: one operator inflates the spread to the order of the
   distance from the interval end; repetition produces L-shapes. *)

open Rdb_dist

let name = "fig2.2"
let description = "Figure 2.2: degradation of certainty of a bell estimate (m=0.2, e=0.005)"

let run () =
  Bench_common.section
    "Experiment fig2.2 — degradation of certainty (paper Figure 2.2)";
  let bell = Dist.bell ~mean:0.2 ~stddev:0.005 () in
  let anded n = Dist.chain ~op:(Dist.and_self ~corr:Dist.Unknown) n bell in
  let ored n = Dist.chain ~op:(Dist.or_self ~corr:Dist.Unknown) n bell in
  let cases =
    [
      ("X (the estimate)", bell);
      ("&X", anded 1);
      ("&&X", anded 2);
      ("&&&X", anded 3);
      ("|X", ored 1);
      ("||X", ored 2);
      ("|||X", ored 3);
      ("|||||X", ored 5);
      ("&|||X", Dist.and_self ~corr:Dist.Unknown (ored 3));
    ]
  in
  let rows =
    List.map
      (fun (label, d) ->
        [
          label;
          Bench_common.f4 (Dist.mean d);
          Bench_common.f4 (Dist.stddev d);
          Bench_common.f1 (Dist.stddev d /. Dist.stddev bell);
          Shape.classification_to_string (Shape.classify d);
        ])
      cases
  in
  Bench_common.table ~header:[ "operator"; "mean"; "stddev"; "spread x"; "shape" ] rows;
  print_string
    (Rdb_util.Ascii_plot.multi_plot ~width:64 ~height:12
       ~title:"the bell explodes: X vs &X vs |||X"
       [
         ("X", Dist.density bell);
         ("&X", Dist.density (anded 1));
         ("|||X", Dist.density (ored 3));
       ]);
  Bench_common.subsection "paper checkpoints";
  Printf.printf
    "(1) one AND nullifies relative precision: spread grew %.0fx (>= 10x): %b\n"
    (Dist.stddev (anded 1) /. Dist.stddev bell)
    (Dist.stddev (anded 1) > 10.0 *. Dist.stddev bell);
  Printf.printf "(2) ORing spreads the bell toward the center (mean %.3f > 0.2): %b\n"
    (Dist.mean (ored 1))
    (Dist.mean (ored 1) > 0.2);
  Printf.printf "(3) repeated ANDing near the left end gives an L-shape: %b\n"
    (Shape.classify (anded 3) = Shape.L_left);
  Printf.printf "    repeated ORing ends L-right: %b\n"
    (Shape.classify (ored 5) = Shape.L_right)

(* Figure 2.1 — Transformation of uniform selectivity distributions
   under AND/OR chains and correlation assumptions.

   Regenerates the figure's panels as ASCII density plots plus a
   numeric shape table.  Paper claims reproduced: crescent / triangle /
   L-shapes; skewness grows as correlation decreases and as operators
   accumulate; balanced AND/OR mixes restore symmetry. *)

open Rdb_dist

let name = "fig2.1"
let description = "Figure 2.1: AND/OR transforms of uniform selectivity distributions"

let ops =
  (* (label, transform of the uniform distribution) *)
  let u () = Dist.uniform () in
  [
    ("X (uniform)", u ());
    ("&[c=+1] X", Dist.and_self ~corr:(Dist.Fixed 1.0) (u ()));
    ("&[c=0] X", Dist.and_self ~corr:(Dist.Fixed 0.0) (u ()));
    ("&[c=-0.9] X", Dist.and_self ~corr:(Dist.Fixed (-0.9)) (u ()));
    ("&X (unknown corr)", Dist.and_self ~corr:Dist.Unknown (u ()));
    ("&&X", Dist.chain ~op:(Dist.and_self ~corr:Dist.Unknown) 2 (u ()));
    ("&&&X", Dist.chain ~op:(Dist.and_self ~corr:Dist.Unknown) 3 (u ()));
    ("|X (unknown corr)", Dist.or_self ~corr:Dist.Unknown (u ()));
    ("||X", Dist.chain ~op:(Dist.or_self ~corr:Dist.Unknown) 2 (u ()));
    ("|&X (balanced mix)", Dist.or_self ~corr:Dist.Unknown (Dist.and_self ~corr:Dist.Unknown (u ())));
  ]

let run () =
  Bench_common.section
    "Experiment fig2.1 — transformation of uniform distributions (paper Figure 2.1)";
  let rows =
    List.map
      (fun (label, d) ->
        [
          label;
          Bench_common.f3 (Dist.mean d);
          Bench_common.f3 (Dist.quantile d 0.5);
          Bench_common.f3 (Dist.mass_below d 0.1);
          Bench_common.f3 (1.0 -. Dist.mass_below d 0.9);
          Bench_common.f2 (Shape.skewness d);
          Shape.classification_to_string (Shape.classify d);
        ])
      ops
  in
  Bench_common.table
    ~header:[ "operator"; "mean"; "median"; "mass<0.1"; "mass>0.9"; "skew"; "shape" ]
    rows;
  Bench_common.subsection "density overlays (resampled)";
  print_string
    (Rdb_util.Ascii_plot.multi_plot ~width:64 ~height:12
       ~title:"AND side: skewness grows with chain length"
       [
         ("&X", Dist.density (List.assoc "&X (unknown corr)" ops));
         ("&&X", Dist.density (List.assoc "&&X" ops));
       ]);
  print_string
    (Rdb_util.Ascii_plot.multi_plot ~width:64 ~height:12
       ~title:"correlation assumption: c=+1 (crescent) vs c=0 (log) vs c=-0.9"
       [
         ("c=+1", Dist.density (List.assoc "&[c=+1] X" ops));
         ("c=0", Dist.density (List.assoc "&[c=0] X" ops));
         ("c=-0.9", Dist.density (List.assoc "&[c=-0.9] X" ops));
       ]);
  Bench_common.subsection "paper checkpoints";
  let a1 = List.assoc "&X (unknown corr)" ops in
  let a2 = List.assoc "&&X" ops in
  let mix = List.assoc "|&X (balanced mix)" ops in
  Printf.printf
    "AND chains are L-left (skew %.2f -> %.2f as chain grows): %b\n"
    (Shape.skewness a1) (Shape.skewness a2)
    (Shape.classify a1 = Shape.L_left && Shape.skewness a2 > Shape.skewness a1);
  Printf.printf "OR mirrors AND (|X is L-right): %b\n"
    (Shape.classify (List.assoc "|X (unknown corr)" ops) = Shape.L_right);
  Printf.printf "balanced |&X restores symmetry (mean %.3f ~ 0.5): %b\n" (Dist.mean mix)
    (Float.abs (Dist.mean mix -. 0.5) < 0.1)

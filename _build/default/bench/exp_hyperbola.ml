(* §2 hyperbola-fit claims.

   "Truncated hyperbolas fit &X with relative error 1/4, &&X with error
   1/7, &&&X with error 1/23", where relative error is
   max|p - h| / (max p - min p). *)

open Rdb_dist

let name = "hyperbola"
let description = "Hyperbola fit errors for AND chains (paper: 1/4, 1/7, 1/23)"

let run () =
  Bench_common.section "Experiment hyperbola — truncated-hyperbola fits of AND chains";
  let u = Dist.uniform () in
  let cases =
    [
      ("&X", 1, 1.0 /. 4.0);
      ("&&X", 2, 1.0 /. 7.0);
      ("&&&X", 3, 1.0 /. 23.0);
    ]
  in
  let rows =
    List.map
      (fun (label, n, paper) ->
        let d = Dist.chain ~op:(Dist.and_self ~corr:Dist.Unknown) n u in
        let f = Hyperbola.fit d in
        [
          label;
          Bench_common.f4 paper;
          Bench_common.f4 f.Hyperbola.relative_error;
          Printf.sprintf "%.2e" f.Hyperbola.b;
          string_of_bool f.Hyperbola.mirrored;
        ])
      cases
  in
  Bench_common.table
    ~header:[ "chain"; "paper error"; "measured error"; "fitted b"; "mirrored" ]
    rows;
  Bench_common.subsection "OR side (fitted through the mirror)";
  let o = Dist.or_self ~corr:Dist.Unknown u in
  let f = Hyperbola.fit o in
  Printf.printf "|X: error %.4f, mirrored=%b\n" f.Hyperbola.relative_error
    f.Hyperbola.mirrored;
  Bench_common.subsection "paper checkpoint";
  let errs =
    List.map
      (fun (_, n, _) ->
        (Hyperbola.fit (Dist.chain ~op:(Dist.and_self ~corr:Dist.Unknown) n u))
          .Hyperbola.relative_error)
      cases
  in
  (match errs with
  | [ e1; e2; e3 ] ->
      Printf.printf
        "errors comparable to the paper's and in the same small range: %b\n"
        (e1 < 0.5 && e2 < 0.29 && e3 < 0.15);
      Printf.printf "longer chains are at least as hyperbolic (e2, e3 << e1): %b\n"
        (e2 < e1 && e3 < e1)
  | _ -> ())

(* §2 — unknown correlations in practice.

   The independence assumption predicts sel(A AND B) = sel(A)·sel(B);
   with strongly correlated columns the truth is ≈ min(sel(A), sel(B)),
   orders of magnitude bigger.  The dynamic optimizer's projections use
   independence *optimism* for un-scanned candidates, so correlated
   data is its adversarial case: we verify that mid-scan evidence
   (accepted-count extrapolation) and the guaranteed best keep the
   damage bounded, as the competition architecture promises. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SJ = Rdb_core.Static_jscan

let name = "correlation"
let description = "§2: correlated columns break independence estimates; competition bounds the damage"

let run () =
  Bench_common.section "Experiment correlation — correlated columns (§2's uncertainty)";
  let db = Database.create ~pool_capacity:128 () in
  let sensors = Rdb_workload.Datasets.sensors ~rows:40_000 db in
  let tscan = Rdb_exec.Cost_model.tscan_cost sensors in
  Printf.printf "SENSORS: %d rows; B = A +/- 200; Tscan cost %.1f\n\n"
    (Table.row_count sensors) tscan;
  let pred lo hi =
    Predicate.And
      [ Predicate.between "A" (Value.int lo) (Value.int hi);
        Predicate.between "B" (Value.int lo) (Value.int hi) ]
  in
  let oracle p =
    let m = Rdb_storage.Cost.create () in
    let n = ref 0 in
    Rdb_storage.Heap_file.iter (Table.heap sensors) m (fun _ row ->
        if Predicate.eval p (Table.schema sensors) row then incr n);
    !n
  in
  let card = float_of_int (Table.row_count sensors) in
  let rows =
    List.map
      (fun (lo, hi) ->
        let p = pred lo hi in
        let actual = oracle p in
        let sel = float_of_int (hi - lo + 1) /. 10_000.0 in
        let independence = sel *. sel *. card in
        Bench_common.flush_pool db;
        let returned, dyn = R.run sensors (R.request p) in
        Bench_common.flush_pool db;
        let stat = SJ.run sensors p ~env:[] in
        [
          Printf.sprintf "[%d,%d]" lo hi;
          string_of_int actual;
          Bench_common.f1 independence;
          string_of_int (List.length returned);
          Bench_common.f1 dyn.R.total_cost;
          Bench_common.f1 stat.SJ.cost;
        ])
      [ (2000, 2199); (3000, 3999); (1000, 6999) ]
  in
  Bench_common.table
    ~header:
      [ "A,B range"; "actual rows"; "independence predicts"; "returned";
        "dynamic cost"; "static jscan cost" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  let p = pred 2000 2199 in
  let actual = oracle p in
  let independence = 0.02 *. 0.02 *. card in
  Printf.printf
    "independence underestimates the intersection by %.0fx (%d actual vs %.1f predicted): %b\n"
    (float_of_int actual /. independence)
    actual independence
    (float_of_int actual > 10.0 *. independence);
  Bench_common.flush_pool db;
  let _, dyn = R.run sensors (R.request p) in
  Printf.printf
    "despite the broken estimate, the dynamic cost stays within 1.5x of the best single-index plan: %b\n"
    (dyn.R.total_cost < 1.5 *. tscan);
  Printf.printf "rows are exactly right regardless: %b\n"
    (dyn.R.rows_delivered = actual)

(* §4 goal inference — the three-level nested query, end to end
   through SQL:

     select * from A where A.X in (
       select distinct Y from B where B.Y in (
         select Z from C limit to 2 rows))
     optimize for total time;

   Expected: fast-first for C (LIMIT TO), total-time for B (SORT from
   DISTINCT), total-time for A (explicit request).  We also measure
   what the correct goals save vs forcing the opposite goal. *)

module Executor = Rdb_sql.Executor
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal

let name = "goal"
let description = "§4: goal inference on the nested A/B/C example"

let build_db () =
  let db = Rdb_engine.Database.create ~pool_capacity:128 () in
  ignore (Executor.execute_sql db "CREATE TABLE A (X INT, PAYLOAD STRING)");
  ignore (Executor.execute_sql db "CREATE TABLE B (Y INT, REGION INT)");
  ignore (Executor.execute_sql db "CREATE TABLE C (Z INT, KIND INT)");
  let rng = Rdb_util.Prng.create ~seed:29 in
  let ins t rows =
    ignore
      (Executor.execute_sql db (Printf.sprintf "INSERT INTO %s VALUES %s" t
           (String.concat ", " rows)))
  in
  ins "A"
    (List.init 20_000 (fun i ->
         Printf.sprintf "(%d, 'payload-%06d')" (Rdb_util.Prng.int rng 500) i));
  ins "B"
    (List.init 5_000 (fun _ ->
         Printf.sprintf "(%d, %d)" (Rdb_util.Prng.int rng 500) (Rdb_util.Prng.int rng 10)));
  ins "C"
    (List.init 1_000 (fun _ ->
         Printf.sprintf "(%d, %d)" (Rdb_util.Prng.int rng 500) (Rdb_util.Prng.int rng 5)));
  ignore (Executor.execute_sql db "CREATE INDEX A_X ON A (X)");
  ignore (Executor.execute_sql db "CREATE INDEX B_Y ON B (Y)");
  ignore (Executor.execute_sql db "CREATE INDEX C_Z ON C (Z)");
  db

let nested =
  "SELECT X, PAYLOAD FROM A WHERE X IN (SELECT DISTINCT Y FROM B WHERE Y IN (SELECT Z \
   FROM C LIMIT TO 2 ROWS)) OPTIMIZE FOR TOTAL TIME"

let run () =
  Bench_common.section "Experiment goal — §4 nested goal-inference example";
  let db = build_db () in
  let r = Executor.execute_sql db nested in
  Printf.printf "query: %s\nresult rows: %d\n\n" nested (List.length r.Executor.rows);
  let rows =
    List.map
      (fun (tbl, (s : R.summary)) ->
        [
          tbl;
          G.to_string s.R.goal;
          s.R.goal_provenance;
          R.tactic_to_string s.R.tactic;
          Bench_common.f2 s.R.total_cost;
          string_of_int s.R.rows_delivered;
        ])
      r.Executor.summaries
  in
  Bench_common.table
    ~header:[ "table"; "goal"; "provenance"; "tactic"; "cost"; "rows" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  (match r.Executor.summaries with
  | [ (_, sc); (_, sb); (_, sa) ] ->
      Printf.printf "C is fast-first because of LIMIT TO: %b\n" (sc.R.goal = G.Fast_first);
      Printf.printf "B is total-time because of SORT (distinct): %b\n"
        (sb.R.goal = G.Total_time);
      Printf.printf "A is total-time by explicit request: %b\n"
        (sa.R.goal = G.Total_time && sa.R.goal_provenance = "user request")
  | _ -> print_endline "unexpected summary shape");

  Bench_common.subsection "what the fast-first inference saves on C";
  (* C's subquery wants only 2 rows.  Compare the inferred fast-first
     against a forced total-time run of the same subquery. *)
  let c_table = Rdb_engine.Database.table db "C" in
  Bench_common.flush_pool db;
  let ff =
    let c = R.open_ c_table (R.request ~explicit_goal:G.Fast_first Rdb_engine.Predicate.True) in
    ignore (R.fetch c);
    ignore (R.fetch c);
    R.close c
  in
  Bench_common.flush_pool db;
  let _, tt = R.run c_table (R.request ~explicit_goal:G.Total_time Rdb_engine.Predicate.True) in
  Printf.printf "first 2 rows fast-first: %.2f;  full total-time run: %.2f;  saved %.0fx: %b\n"
    ff.R.total_cost tt.R.total_cost
    (tt.R.total_cost /. Float.max 0.01 ff.R.total_cost)
    (ff.R.total_cost < tt.R.total_cost)

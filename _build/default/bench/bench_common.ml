(* Shared helpers for the experiment harness. *)

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows = print_string (Rdb_util.Ascii_plot.table ~header rows)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x

let flush_pool db = Rdb_storage.Buffer_pool.flush (Rdb_engine.Database.pool db)

(* Count trace events matching a predicate. *)
let count_events trace pred = List.length (List.filter pred trace)

let discards trace =
  count_events trace (function Rdb_exec.Trace.Scan_discarded _ -> true | _ -> false)

(* §6 — Jscan: dynamic competition vs the statically-thresholded
   baseline [MoHa90], plus threshold ablations.

   ORDERS has Zipf-skewed CUSTOMER and PRODUCT: the same conjunction is
   hot-hot, hot-cold, or cold-cold depending on the constants, so no
   static index subset/order is right everywhere.  Dynamic Jscan
   discards unproductive scans mid-flight against the guaranteed best;
   the static baseline commits. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SJ = Rdb_core.Static_jscan
module SO = Rdb_core.Static_optimizer

let name = "jscan"
let description = "§6: dynamic Jscan vs static-threshold Jscan vs frozen single-index plans"

let pred c p price =
  Predicate.And
    [
      Predicate.( =% ) "CUSTOMER" (Value.int c);
      Predicate.( =% ) "PRODUCT" (Value.int p);
      Predicate.( <% ) "PRICE" (Value.int price);
    ]

let run () =
  Bench_common.section "Experiment jscan — joint-scan competition (paper §6)";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  Printf.printf "ORDERS: %d rows, %d pages, 4 single-column indexes, Zipf(1.0) skew\n"
    (Table.row_count orders) (Table.page_count orders);
  let cases =
    [
      ("hot cust, hot prod", 1, 1, 2500);
      ("hot cust, cold prod", 1, 450, 2500);
      ("cold cust, hot prod", 1500, 1, 2500);
      ("cold cust, cold prod", 1500, 450, 2500);
      ("mid, mid, tight price", 40, 30, 300);
      ("hot, hot, broad price", 2, 2, 5000);
    ]
  in
  let dyn_total = ref 0.0 and stat_total = ref 0.0 and frozen_total = ref 0.0 in
  let rows =
    List.map
      (fun (label, c, p, price) ->
        Bench_common.flush_pool db;
        let returned, dyn = R.run orders (R.request (pred c p price)) in
        Bench_common.flush_pool db;
        let stat = SJ.run orders (pred c p price) ~env:[] in
        Bench_common.flush_pool db;
        let plan = SO.compile orders (pred c p price) ~env:[] in
        let frozen = SO.execute orders plan (pred c p price) ~env:[] in
        dyn_total := !dyn_total +. dyn.R.total_cost;
        stat_total := !stat_total +. stat.SJ.cost;
        frozen_total := !frozen_total +. frozen.SO.cost;
        [
          label;
          string_of_int (List.length returned);
          Bench_common.f1 dyn.R.total_cost;
          Bench_common.f1 stat.SJ.cost;
          Bench_common.f1 frozen.SO.cost;
          string_of_int (Bench_common.discards dyn.R.trace);
        ])
      cases
  in
  Bench_common.table
    ~header:
      [ "case"; "rows"; "dynamic"; "static jscan"; "single-index"; "scans discarded" ]
    rows;
  Printf.printf "\ntotals: dynamic %.1f | static jscan %.1f | frozen single-index %.1f\n"
    !dyn_total !stat_total !frozen_total;

  Bench_common.subsection "ablation: switch ratio (two-stage threshold)";
  let with_cfg ratio cap =
    let cfg =
      {
        R.default_config with
        R.jscan =
          {
            Rdb_exec.Jscan.default_config with
            Rdb_exec.Jscan.switch_ratio = ratio;
            scan_cost_cap = cap;
          };
      }
    in
    let total = ref 0.0 in
    List.iter
      (fun (_, c, p, price) ->
        Bench_common.flush_pool db;
        let _, s = R.run ~config:cfg orders (R.request (pred c p price)) in
        total := !total +. s.R.total_cost)
      cases;
    !total
  in
  let ablation_rows =
    List.map
      (fun ratio -> [ Bench_common.f2 ratio; Bench_common.f1 (with_cfg ratio 0.25) ])
      [ 0.5; 0.75; 0.95; 1.1; 2.0 ]
  in
  Bench_common.table ~header:[ "switch_ratio"; "sweep total cost" ] ablation_rows;
  Bench_common.subsection "ablation: competition check cadence (check_every)";
  let cadence_rows =
    List.map
      (fun every ->
        let cfg =
          {
            R.default_config with
            R.jscan = { Rdb_exec.Jscan.default_config with Rdb_exec.Jscan.check_every = every };
          }
        in
        let total = ref 0.0 in
        List.iter
          (fun (_, c, p, price) ->
            Bench_common.flush_pool db;
            let _, s = R.run ~config:cfg orders (R.request (pred c p price)) in
            total := !total +. s.R.total_cost)
          cases;
        [ string_of_int every; Bench_common.f1 !total ])
      [ 8; 32; 128; 1024; 100000 ]
  in
  Bench_common.table ~header:[ "check_every"; "sweep total cost" ] cadence_rows;

  Bench_common.subsection "ablation: direct scan-cost cap";
  let cap_rows =
    List.map
      (fun cap -> [ Bench_common.f2 cap; Bench_common.f1 (with_cfg 0.95 cap) ])
      [ 0.05; 0.25; 0.5; 1.0; 1e9 ]
  in
  Bench_common.table ~header:[ "scan_cost_cap"; "sweep total cost" ] cap_rows;

  Bench_common.subsection "ablation: simultaneous adjacent scans (dynamic reordering)";
  (* Queries whose two index estimates are close (ambiguous order): the
     simultaneous scan lets the actually-smaller list win the filter
     role.  §6: "there is almost no overhead involved in simultaneous
     scanning because both indexes are to be scanned anyway". *)
  let ambiguous_cases = [ (3, 2, 4000); (5, 4, 4000); (8, 6, 4000) ] in
  let sim_total on =
    let cfg =
      {
        R.default_config with
        R.jscan = { Rdb_exec.Jscan.default_config with Rdb_exec.Jscan.simultaneous = on };
      }
    in
    let total = ref 0.0 in
    List.iter
      (fun (c, p, price) ->
        Bench_common.flush_pool db;
        let _, s = R.run ~config:cfg orders (R.request (pred c p price)) in
        total := !total +. s.R.total_cost)
      ambiguous_cases;
    !total
  in
  Bench_common.table
    ~header:[ "simultaneous"; "ambiguous-order sweep cost" ]
    [
      [ "off"; Bench_common.f1 (sim_total false) ];
      [ "on"; Bench_common.f1 (sim_total true) ];
    ];

  Bench_common.subsection "paper checkpoints";
  Printf.printf "dynamic never loses the sweep to the static threshold: %b\n"
    (!dyn_total <= !stat_total *. 1.05);
  Printf.printf "competition discards fired somewhere in the sweep: %b\n"
    (List.exists (fun r -> int_of_string (List.nth r 5) > 0) rows)

bench/exp_mixed.ml: Bench_common Database Hashtbl List Option Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_util Rdb_workload Table Value

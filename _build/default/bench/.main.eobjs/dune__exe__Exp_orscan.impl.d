bench/exp_orscan.ml: Bench_common Database Float List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_workload Table Value

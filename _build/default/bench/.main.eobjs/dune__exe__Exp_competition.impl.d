bench/exp_competition.ml: Bench_common List Printf Rdb_core Rdb_dist Rdb_util

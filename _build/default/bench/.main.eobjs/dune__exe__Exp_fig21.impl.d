bench/exp_fig21.ml: Bench_common Dist Float List Printf Rdb_dist Rdb_util Shape

bench/exp_interference.ml: Bench_common Database Float Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_workload Value

bench/exp_fig5.ml: Array Bench_common Btree Estimate List Printf Rdb_btree Rdb_data Rdb_storage Rdb_util Rid Value

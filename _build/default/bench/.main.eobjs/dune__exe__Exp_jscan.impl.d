bench/exp_jscan.ml: Bench_common Database List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_workload Table Value

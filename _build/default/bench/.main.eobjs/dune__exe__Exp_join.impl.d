bench/exp_join.ml: Bench_common Database Float List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_sql Rdb_util Rdb_workload String Value

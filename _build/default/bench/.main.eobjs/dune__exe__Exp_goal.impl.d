bench/exp_goal.ml: Bench_common Float List Printf Rdb_core Rdb_engine Rdb_sql Rdb_util String

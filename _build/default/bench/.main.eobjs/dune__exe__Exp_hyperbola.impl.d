bench/exp_hyperbola.ml: Bench_common Dist Hyperbola List Printf Rdb_dist

bench/exp_clustering.ml: Bench_common Cost_model Database Fscan List Option Predicate Printf Range_extract Rdb_btree Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_workload Scan Table Value

bench/exp_micro.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance List Measure Printf Rdb_btree Rdb_data Rdb_dist Rdb_rid Rdb_storage Rdb_util Staged Test Time Toolkit

bench/exp_correlation.ml: Bench_common Database List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_workload Table Value

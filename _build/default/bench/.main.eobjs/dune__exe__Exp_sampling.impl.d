bench/exp_sampling.ml: Array Bench_common Btree Float Int List Printf Rdb_btree Rdb_data Rdb_storage Rdb_util Rid Sampling Value

bench/exp_shortcut.ml: Bench_common Database List Option Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_util Rdb_workload Table Value

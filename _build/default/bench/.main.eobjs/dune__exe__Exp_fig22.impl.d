bench/exp_fig22.ml: Bench_common Dist List Printf Rdb_dist Rdb_util Shape

bench/exp_hostvar.ml: Bench_common Database Float List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_workload Table Value

bench/bench_common.ml: List Printf Rdb_engine Rdb_exec Rdb_storage Rdb_util String

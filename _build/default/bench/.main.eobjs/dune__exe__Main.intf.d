bench/main.mli:

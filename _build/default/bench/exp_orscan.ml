(* The §7 "covering ORs" extension — union scan.

   The paper names OR coverage of table-wide Booleans a rich source
   for extending the tactics; Uscan is the union dual of Jscan: one
   index scan per disjunct, an accumulated union RID list, and
   all-or-nothing competition against Tscan (a union cannot drop one
   disjunct without losing rows). *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval

let name = "orscan"
let description = "§7 extension: union scan for covered OR restrictions vs Tscan"

let run () =
  Bench_common.section "Experiment orscan — union tactic for OR restrictions";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let cases =
    [
      ( "three selective disjuncts",
        Predicate.Or
          [
            Predicate.( =% ) "CUSTOMER" (Value.int 1500);
            Predicate.( =% ) "PRODUCT" (Value.int 444);
            Predicate.between "DAY" (Value.int 100) (Value.int 101);
          ] );
      ( "two point disjuncts",
        Predicate.Or
          [
            Predicate.( =% ) "CUSTOMER" (Value.int 999);
            Predicate.( =% ) "CUSTOMER" (Value.int 1001);
          ] );
      ( "selective OR hot (skew)",
        Predicate.Or
          [
            Predicate.( =% ) "CUSTOMER" (Value.int 1);
            Predicate.( =% ) "PRODUCT" (Value.int 490);
          ] );
      ( "broad OR (should fall back)",
        Predicate.Or
          [
            Predicate.( >=% ) "PRICE" (Value.int 1000);
            Predicate.( <% ) "DAY" (Value.int 300);
          ] );
    ]
  in
  let tscan_cost = Rdb_exec.Cost_model.tscan_cost orders in
  Printf.printf "ORDERS: %d rows; Tscan cost %.1f\n\n" (Table.row_count orders) tscan_cost;
  let rows =
    List.map
      (fun (label, pred) ->
        Bench_common.flush_pool db;
        let returned, s = R.run orders (R.request pred) in
        let fell_back =
          List.exists
            (function Rdb_exec.Trace.Use_tscan _ -> true | _ -> false)
            s.R.trace
        in
        [
          label;
          string_of_int (List.length returned);
          Bench_common.f1 s.R.total_cost;
          Bench_common.f1 (tscan_cost /. Float.max 0.5 s.R.total_cost);
          R.tactic_to_string s.R.tactic;
          string_of_bool fell_back;
        ])
      cases
  in
  Bench_common.table
    ~header:[ "case"; "rows"; "cost"; "vs Tscan x"; "tactic"; "fell back" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  Bench_common.flush_pool db;
  let _, sel = R.run orders (R.request (snd (List.nth cases 0))) in
  Printf.printf "selective OR beats Tscan by >3x: %b\n"
    (sel.R.total_cost *. 3.0 < tscan_cost);
  Bench_common.flush_pool db;
  let _, broad = R.run orders (R.request (snd (List.nth cases 3))) in
  Printf.printf "broad OR falls back near Tscan cost (within 15%%): %b\n"
    (broad.R.total_cost < tscan_cost *. 1.15)

(* §5 — initial-stage shortcuts for short OLTP transactions.

   Three mechanisms: (a) indexes are estimated in the order the last
   retrieval found best, (b) a very short range stops further
   estimation, (c) an exactly-empty range cancels the whole retrieval.
   We measure their effect on a stream of point queries with misses. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SJ = Rdb_core.Static_jscan

let name = "shortcut"
let description = "§5: estimation shortcuts and empty-range cancellation for OLTP"

let run () =
  Bench_common.section "Experiment shortcut — §5 initial-stage optimizations";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let rng = Rdb_util.Prng.create ~seed:41 in

  Bench_common.subsection "point-query stream (50% present customers, 50% misses)";
  let queries =
    List.init 400 (fun i ->
        let customer =
          if i mod 2 = 0 then 1 + Rdb_util.Prng.int rng 2000
          else 100_000 + Rdb_util.Prng.int rng 1000 (* guaranteed miss *)
        in
        Predicate.And
          [
            Predicate.( =% ) "CUSTOMER" (Value.int customer);
            Predicate.( =% ) "PRODUCT" (Value.int (1 + Rdb_util.Prng.int rng 500));
          ])
  in
  Bench_common.flush_pool db;
  let total_dyn = ref 0.0 and cancelled = ref 0 and shortcuts = ref 0 in
  List.iter
    (fun pred ->
      let _, s = R.run orders (R.request pred) in
      total_dyn := !total_dyn +. s.R.total_cost;
      if s.R.tactic = R.Cancelled then incr cancelled;
      shortcuts :=
        !shortcuts
        + Bench_common.count_events s.R.trace (function
            | Rdb_exec.Trace.Shortcut_estimation _ -> true
            | _ -> false))
    queries;
  Bench_common.flush_pool db;
  let total_static = ref 0.0 in
  List.iter
    (fun pred ->
      let r = SJ.run orders pred ~env:[] in
      total_static := !total_static +. r.SJ.cost)
    queries;
  Bench_common.table
    ~header:[ "engine"; "total cost (400 queries)"; "avg/query" ]
    [
      [ "dynamic (with §5 shortcuts)"; Bench_common.f1 !total_dyn;
        Bench_common.f3 (!total_dyn /. 400.0) ];
      [ "static jscan baseline"; Bench_common.f1 !total_static;
        Bench_common.f3 (!total_static /. 400.0) ];
    ];
  Printf.printf "empty-range cancellations: %d / 400;  estimation shortcuts: %d\n"
    !cancelled !shortcuts;

  Bench_common.subsection "adaptive index preordering (repeat the same query shape)";
  (* First run estimates indexes in catalog order; subsequent runs
     start from the remembered winner. *)
  Table.set_preferred_order orders [];
  let pred =
    Predicate.And
      [
        Predicate.( =% ) "PRODUCT" (Value.int 480);
        Predicate.( <% ) "PRICE" (Value.int 4500);
        Predicate.( =% ) "CUSTOMER" (Value.int 17);
      ]
  in
  let estimation_events s =
    Bench_common.count_events s.R.trace (function
      | Rdb_exec.Trace.Estimated _ -> true
      | _ -> false)
  in
  let first_estimated s =
    List.find_map
      (function Rdb_exec.Trace.Estimated { index; _ } -> Some index | _ -> None)
      s.R.trace
  in
  let _, s1 = R.run orders (R.request pred) in
  let _, s2 = R.run orders (R.request pred) in
  Printf.printf "run 1: estimated %d indexes, first was %s\n" (estimation_events s1)
    (Option.value ~default:"-" (first_estimated s1));
  Printf.printf "run 2: estimated %d indexes, first was %s (remembered winner)\n"
    (estimation_events s2)
    (Option.value ~default:"-" (first_estimated s2));

  Bench_common.subsection "paper checkpoints";
  Printf.printf "dynamic OLTP stream is cheaper than the static baseline: %b\n"
    (!total_dyn < !total_static);
  Printf.printf "misses were cancelled at estimation time: %b\n" (!cancelled >= 190);
  Printf.printf
    "the second identical query starts estimation at the previous winner: %b\n"
    (first_estimated s2 = Some (List.hd (Table.preferred_order orders)))

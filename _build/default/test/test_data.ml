(* Tests for values, schemas, rows, RIDs. *)

open Rdb_data

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- values ----------------------------------------------------------- *)

let test_value_order () =
  check "null smallest" true (Value.compare Value.Null (Value.int (-100)) < 0);
  check "int float mixed" true (Value.compare (Value.int 2) (Value.float 2.5) < 0);
  check "int float equal" true (Value.compare (Value.int 2) (Value.float 2.0) = 0);
  check "numeric below string" true (Value.compare (Value.int 5) (Value.str "a") < 0);
  check "string order" true (Value.compare (Value.str "abc") (Value.str "abd") < 0)

let arb_value =
  QCheck.make
    ~print:Value.to_string
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map Value.int (int_range (-1000) 1000);
          map Value.float (float_range (-100.0) 100.0);
          map Value.str (string_size ~gen:printable (int_range 0 12));
        ])

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare is a total order" ~count:300
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      let antisym = not (Value.compare a b < 0 && Value.compare b a < 0) in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then Value.compare a c <= 0
        else true
      in
      let refl = Value.compare a a = 0 in
      antisym && trans && refl)

let test_succ_approx () =
  check "int succ" true (Value.compare (Value.int 5) (Value.succ_approx (Value.int 5)) < 0);
  check "str succ" true
    (Value.compare (Value.str "ab") (Value.succ_approx (Value.str "ab")) < 0);
  check "float succ" true
    (Value.compare (Value.float 1.0) (Value.succ_approx (Value.float 1.0)) < 0)

let test_coercions () =
  check "as_float of int" true (Value.as_float (Value.int 3) = Some 3.0);
  check "as_int of str" true (Value.as_int (Value.str "3") = None)

(* --- rid --------------------------------------------------------------- *)

let test_rid_order_is_physical () =
  let r1 = Rid.make ~page:1 ~slot:9 and r2 = Rid.make ~page:2 ~slot:0 in
  check "page major" true (Rid.compare r1 r2 < 0);
  check "slot minor" true
    (Rid.compare (Rid.make ~page:1 ~slot:1) (Rid.make ~page:1 ~slot:2) < 0)

let test_rid_int_roundtrip () =
  for page = 0 to 20 do
    for slot = 0 to 19 do
      let r = Rid.make ~page ~slot in
      let r' = Rid.of_int (Rid.to_int r ~slots_per_page:20) ~slots_per_page:20 in
      check "roundtrip" true (Rid.equal r r')
    done
  done

let test_rid_hash_spreads () =
  let seen = Hashtbl.create 64 in
  for page = 0 to 99 do
    for slot = 0 to 9 do
      Hashtbl.replace seen (Rid.hash (Rid.make ~page ~slot) mod 1024) ()
    done
  done;
  check "hash covers many buckets" true (Hashtbl.length seen > 500)

(* --- schema ------------------------------------------------------------ *)

let schema =
  Schema.make
    [ Schema.col "A" Value.T_int; Schema.col ~nullable:true "B" Value.T_str;
      Schema.col "C" Value.T_float ]

let test_schema_lookup () =
  check_int "index_of" 1 (Schema.index_of schema "B");
  check "find missing" true (Schema.find schema "Z" = None);
  Alcotest.check_raises "index_of missing" Not_found (fun () ->
      ignore (Schema.index_of schema "Z"))

let test_schema_dup_rejected () =
  check "dup raises" true
    (try
       ignore (Schema.make [ Schema.col "X" Value.T_int; Schema.col "X" Value.T_int ]);
       false
     with Invalid_argument _ -> true)

let test_validate_row () =
  let ok = Schema.validate_row schema [| Value.int 1; Value.Null; Value.float 2.0 |] in
  check "valid row" true (ok = Ok ());
  let int_in_float =
    Schema.validate_row schema [| Value.int 1; Value.str "x"; Value.int 2 |]
  in
  check "int accepted in float col" true (int_in_float = Ok ());
  check "null in non-nullable" true
    (match Schema.validate_row schema [| Value.Null; Value.Null; Value.float 0.0 |] with
    | Error _ -> true
    | Ok () -> false);
  check "arity" true
    (match Schema.validate_row schema [| Value.int 1 |] with Error _ -> true | Ok () -> false);
  check "type mismatch" true
    (match Schema.validate_row schema [| Value.str "no"; Value.Null; Value.float 0.0 |] with
    | Error _ -> true
    | Ok () -> false)

(* --- row codec ----------------------------------------------------------- *)

let prop_row_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8) arb_value)
    (fun vs ->
      let row = Array.of_list vs in
      Row.equal row (Row.decode (Row.encode row)))

let test_row_project_compare () =
  let r1 = [| Value.int 1; Value.str "b"; Value.int 9 |] in
  let r2 = [| Value.int 1; Value.str "a"; Value.int 5 |] in
  check "project" true
    (Row.equal (Row.project r1 [| 2; 0 |]) [| Value.int 9; Value.int 1 |]);
  check "compare_at first col ties" true (Row.compare_at [| 0 |] r1 r2 = 0);
  check "compare_at second col" true (Row.compare_at [| 0; 1 |] r1 r2 > 0)

let test_row_decode_corrupt () =
  check "truncated fails" true
    (try
       ignore (Row.decode (Bytes.of_string "\x02\x00\x01"));
       false
     with Failure _ -> true)

let () =
  Alcotest.run "rdb_data"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          QCheck_alcotest.to_alcotest prop_compare_total_order;
          Alcotest.test_case "succ_approx" `Quick test_succ_approx;
          Alcotest.test_case "coercions" `Quick test_coercions;
        ] );
      ( "rid",
        [
          Alcotest.test_case "physical order" `Quick test_rid_order_is_physical;
          Alcotest.test_case "int roundtrip" `Quick test_rid_int_roundtrip;
          Alcotest.test_case "hash spreads" `Quick test_rid_hash_spreads;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicates rejected" `Quick test_schema_dup_rejected;
          Alcotest.test_case "validate_row" `Quick test_validate_row;
        ] );
      ( "row",
        [
          QCheck_alcotest.to_alcotest prop_row_roundtrip;
          Alcotest.test_case "project/compare" `Quick test_row_project_compare;
          Alcotest.test_case "corrupt decode" `Quick test_row_decode_corrupt;
        ] );
    ]

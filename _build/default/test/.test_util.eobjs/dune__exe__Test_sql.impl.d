test/test_sql.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Rdb_core Rdb_data Rdb_engine Rdb_sql Rdb_storage String Value

test/test_core.ml: Alcotest List Option Predicate Printf QCheck QCheck_alcotest Rdb_core Rdb_data Rdb_dist Rdb_engine Rdb_exec Rdb_storage Rdb_util Row Scan Schema Table Trace Value

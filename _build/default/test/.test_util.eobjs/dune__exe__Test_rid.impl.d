test/test_rid.ml: Alcotest Array Bitmap Filter Float List Printf QCheck QCheck_alcotest Rdb_data Rdb_rid Rdb_storage Rid Rid_list

test/test_storage.ml: Alcotest Array Buffer_pool Cost Fun Hashtbl Heap_file List Option Printf QCheck QCheck_alcotest Rdb_data Rdb_storage Rid Row Spill String Value

test/test_dist.ml: Alcotest Array Dist Float Format Hyperbola List QCheck QCheck_alcotest Rdb_dist Rdb_util Shape

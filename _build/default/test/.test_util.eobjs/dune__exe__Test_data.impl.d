test/test_data.ml: Alcotest Array Bytes Hashtbl QCheck QCheck_alcotest Rdb_data Rid Row Schema Value

test/test_btree.ml: Alcotest Array Btree Estimate Float Hashtbl Int List Printf QCheck QCheck_alcotest Rdb_btree Rdb_data Rdb_storage Rdb_util Rid Sampling Value

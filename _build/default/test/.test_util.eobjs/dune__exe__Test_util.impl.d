test/test_util.ml: Alcotest Array Dynarray Float Fun Hashtbl List Option Prng QCheck QCheck_alcotest Rdb_util Sorted Stats Yao

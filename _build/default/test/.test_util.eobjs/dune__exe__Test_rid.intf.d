test/test_rid.mli:

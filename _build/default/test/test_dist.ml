(* Tests for the §2 selectivity-distribution algebra: exact shapes
   under fixed correlations, De Morgan mirror symmetry, the paper's
   Figure 2.1/2.2 findings, and the hyperbola-fit error claims. *)

open Rdb_dist
module Dist = Dist

let check = Alcotest.(check bool)
let checkf msg tol a b = Alcotest.(check (float tol)) msg a b

let bins = 256 (* faster test grids *)

let uniform () = Dist.uniform ~bins ()

(* --- constructors ---------------------------------------------------- *)

let test_normalization () =
  List.iter
    (fun d ->
      let mass = Dist.cdf d 1.0 in
      checkf "integrates to 1" 1e-6 1.0 mass)
    [
      uniform ();
      Dist.point ~bins 0.3;
      Dist.bell ~bins ~mean:0.2 ~stddev:0.05 ();
      Dist.hyperbola ~bins ~b:0.01 ();
    ]

let test_point () =
  let d = Dist.point ~bins 0.25 in
  checkf "mean at point" 0.01 0.25 (Dist.mean d);
  check "tiny stddev" true (Dist.stddev d < 0.01)

let test_bell_moments () =
  let d = Dist.bell ~bins ~mean:0.5 ~stddev:0.05 () in
  checkf "mean" 0.005 0.5 (Dist.mean d);
  checkf "stddev" 0.005 0.05 (Dist.stddev d)

let test_of_density_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.of_density: empty") (fun () ->
      ignore (Dist.of_density [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.of_density: negative")
    (fun () -> ignore (Dist.of_density [| 1.0; -0.5 |]))

(* --- negation -------------------------------------------------------- *)

let test_neg_mirror () =
  let d = Dist.bell ~bins ~mean:0.2 ~stddev:0.05 () in
  let n = Dist.neg d in
  checkf "mirrored mean" 1e-6 (1.0 -. Dist.mean d) (Dist.mean n);
  check "double negation" true (Dist.is_close ~tolerance:1e-9 d (Dist.neg n))

(* --- AND under fixed correlations: closed-form checks ---------------- *)

let test_and_plus1_of_uniform () =
  (* s = min(sx, sy) of two uniforms: density 2(1-s), mean 1/3. *)
  let d = Dist.and_self ~corr:(Fixed 1.0) (uniform ()) in
  checkf "mean 1/3" 0.01 (1.0 /. 3.0) (Dist.mean d);
  checkf "pdf near 0" 0.05 2.0 (Dist.pdf_at d 0.01);
  checkf "pdf near 1" 0.05 0.0 (Dist.pdf_at d 0.99)

let test_and_indep_of_uniform () =
  (* s = sx*sy: density -ln s, mean 1/4. *)
  let d = Dist.and_self ~corr:(Fixed 0.0) (uniform ()) in
  checkf "mean 1/4" 0.01 0.25 (Dist.mean d);
  checkf "pdf(0.5)" 0.05 (-.log 0.5) (Dist.pdf_at d 0.5)

let test_and_minus1_of_uniform () =
  (* s = max(0, sx+sy-1): half the mass is an atom at 0, the rest is
     triangular: P(s=0)=1/2, density of positive part = 2(1-?)... For
     uniforms: P(S<=t) = 1/2 + t - t^2/2; mean = 1/6. *)
  let d = Dist.and_self ~corr:(Fixed (-1.0)) (uniform ()) in
  checkf "mean 1/6" 0.01 (1.0 /. 6.0) (Dist.mean d);
  check "atom at zero" true (Dist.cdf d 0.01 > 0.45)

let test_and_correlation_monotone () =
  (* Higher assumed correlation keeps more of the intersection: the
     mean selectivity grows with c. *)
  let u = uniform () in
  let means =
    List.map (fun c -> Dist.mean (Dist.and_self ~corr:(Fixed c) u)) [ -1.0; -0.5; 0.0; 0.5; 1.0 ]
  in
  let rec increasing = function
    | a :: b :: rest -> a <= b +. 1e-9 && increasing (b :: rest)
    | _ -> true
  in
  check "mean monotone in c" true (increasing means)

let test_or_de_morgan () =
  (* X|Y must equal the mirror of ~X & ~Y exactly (it is defined that
     way), and for uniforms |X must mirror &X. *)
  let u = uniform () in
  let ored = Dist.or_self ~corr:Unknown u in
  let anded = Dist.and_self ~corr:Unknown u in
  check "mirror symmetry" true (Dist.is_close ~tolerance:0.02 (Dist.neg ored) anded)

let test_join_is_and () =
  (* §2: JOIN over a shared unique key behaves as AND on key-domain
     selectivities. *)
  let a = Dist.bell ~bins ~mean:0.3 ~stddev:0.1 () in
  let b = Dist.bell ~bins ~mean:0.6 ~stddev:0.05 () in
  check "join = and" true
    (Dist.is_close ~tolerance:1e-9 (Dist.join ~corr:Unknown a b)
       (Dist.and_ ~corr:Unknown a b))

let test_and_commutative () =
  let a = Dist.bell ~bins ~mean:0.3 ~stddev:0.1 () in
  let b = Dist.bell ~bins ~mean:0.6 ~stddev:0.05 () in
  let ab = Dist.and_ ~corr:Unknown a b in
  let ba = Dist.and_ ~corr:Unknown b a in
  check "commutative" true (Dist.is_close ~tolerance:0.02 ab ba)

(* --- Figure 2.1: shapes of transformed uniforms ---------------------- *)

let test_fig21_and_chain_l_shapes () =
  let u = uniform () in
  let a1 = Dist.and_self ~corr:Unknown u in
  let a2 = Dist.and_self ~corr:Unknown a1 in
  check "single AND is L-left" true (Shape.classify a1 = Shape.L_left);
  check "double AND is L-left" true (Shape.classify a2 = Shape.L_left);
  check "skewness grows" true (Shape.skewness a2 > Shape.skewness a1);
  check "median shrinks" true (Shape.concentration a2 < Shape.concentration a1)

let test_fig21_or_chain_mirrors () =
  let u = uniform () in
  let o1 = Dist.or_self ~corr:Unknown u in
  check "single OR is L-right" true (Shape.classify o1 = Shape.L_right);
  check "negative skew" true (Shape.skewness o1 < 0.0)

let test_fig21_balanced_mix_restores_symmetry () =
  (* Equal numbers of ANDs and ORs restore near-uniform symmetry. *)
  let u = uniform () in
  let d = Dist.or_self ~corr:Unknown (Dist.and_self ~corr:Unknown u) in
  check "balanced mean near 0.5" true (Float.abs (Dist.mean d -. 0.5) < 0.1);
  check "not L-shaped" true
    (match Shape.classify d with Shape.L_left | Shape.L_right -> false | _ -> true)

(* --- Figure 2.2: degradation of certainty ---------------------------- *)

let test_fig22_single_and_nullifies_precision () =
  (* "An estimation precision relative to the closest distance from the
     interval end is instantly nullified by a single ANDing": the bell
     (0.2, 0.005) explodes to a spread comparable to 0.2. *)
  let bell = Dist.bell ~bins ~mean:0.2 ~stddev:0.005 () in
  let after = Dist.and_self ~corr:Unknown bell in
  check "spread explodes" true (Dist.stddev after > 10.0 *. Dist.stddev bell);
  check "same order as distance" true (Dist.stddev after > 0.02)

let test_fig22_oring_spreads_toward_center () =
  let bell = Dist.bell ~bins ~mean:0.2 ~stddev:0.005 () in
  let o = Dist.or_self ~corr:Unknown bell in
  check "mean moves right" true (Dist.mean o > Dist.mean bell);
  check "spread grows" true (Dist.stddev o > Dist.stddev bell)

let test_fig22_repeated_anding_l_shape () =
  let bell = Dist.bell ~bins ~mean:0.2 ~stddev:0.005 () in
  let d = Dist.chain ~op:(Dist.and_self ~corr:Unknown) 3 bell in
  check "L-left after repeated AND near left end" true (Shape.classify d = Shape.L_left)

(* --- hyperbola fits --------------------------------------------------- *)

let test_hyperbola_fit_errors_match_paper () =
  (* Paper: truncated hyperbolas fit &X with relative error 1/4, &&X
     with 1/7, &&&X with 1/23.  Our numeric pipeline should do at
     least in the same ballpark (within 2x of the claims). *)
  let u = Dist.uniform () in
  let a1 = Dist.and_self ~corr:Unknown u in
  let a2 = Dist.and_self ~corr:Unknown a1 in
  let a3 = Dist.and_self ~corr:Unknown a2 in
  let e1 = (Hyperbola.fit a1).Hyperbola.relative_error in
  let e2 = (Hyperbola.fit a2).Hyperbola.relative_error in
  let e3 = (Hyperbola.fit a3).Hyperbola.relative_error in
  check "&X within 2x of 1/4" true (e1 < 0.5);
  check "&&X within 2x of 1/7" true (e2 < 0.29);
  check "&&&X within 2x of 1/23" true (e3 < 0.09)

let test_hyperbola_fits_mirrored_shapes () =
  let u = Dist.uniform ~bins () in
  let o = Dist.or_self ~corr:Unknown u in
  let f = Hyperbola.fit o in
  check "OR shape fitted through mirror" true f.Hyperbola.mirrored;
  check "error reasonable" true (f.Hyperbola.relative_error < 0.5)

let test_hyperbola_self_fit () =
  (* Fitting a hyperbola to itself should be nearly exact. *)
  let h = Hyperbola.density ~bins ~b:0.05 ~d:0.0 () in
  let f = Hyperbola.fit h in
  check "self fit error tiny" true (f.Hyperbola.relative_error < 0.02)

(* --- queries ---------------------------------------------------------- *)

let test_quantile_cdf_inverse () =
  let d = Dist.bell ~bins ~mean:0.4 ~stddev:0.1 () in
  List.iter
    (fun p ->
      let q = Dist.quantile d p in
      checkf "cdf(quantile p) = p" 0.02 p (Dist.cdf d q))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_sample_distribution () =
  let d = Dist.bell ~bins ~mean:0.3 ~stddev:0.05 () in
  let rng = Rdb_util.Prng.create ~seed:9 in
  let xs = Array.init 20_000 (fun _ -> Dist.sample rng d) in
  check "sample mean" true (Float.abs (Rdb_util.Stats.mean xs -. 0.3) < 0.01);
  check "sample sd" true (Float.abs (Rdb_util.Stats.stddev xs -. 0.05) < 0.01)

let test_expectation () =
  let u = uniform () in
  checkf "E[s^2] of uniform" 0.01 (1.0 /. 3.0) (Dist.expectation u (fun s -> s *. s))

(* --- edge cases --------------------------------------------------------- *)

let test_or_fixed_corr_closed_form () =
  (* |X at c=+1: s = max(sx, sy) (mirror of min) -> density 2s. *)
  let d = Dist.or_self ~corr:(Fixed 1.0) (uniform ()) in
  checkf "mean 2/3" 0.01 (2.0 /. 3.0) (Dist.mean d);
  checkf "pdf near 1" 0.1 2.0 (Dist.pdf_at d 0.99)

let test_chain_zero_is_identity () =
  let b = Dist.bell ~bins ~mean:0.4 ~stddev:0.1 () in
  check "chain 0" true
    (Dist.is_close ~tolerance:1e-9 b (Dist.chain ~op:(Dist.and_self ~corr:Unknown) 0 b))

let test_point_and_point () =
  (* Independent AND of two point selectivities lands at the product. *)
  let a = Dist.point ~bins 0.5 and b = Dist.point ~bins 0.4 in
  let d = Dist.and_ ~corr:(Fixed 0.0) a b in
  checkf "product mean" 0.01 0.2 (Dist.mean d);
  check "still a point" true (Dist.stddev d < 0.01)

let test_point_extremes () =
  checkf "point at 0" 0.01 0.0 (Dist.mean (Dist.point ~bins 0.0));
  checkf "point at 1" 0.01 1.0 (Dist.mean (Dist.point ~bins 1.0));
  (* clamped out-of-range input *)
  checkf "clamped" 0.01 1.0 (Dist.mean (Dist.point ~bins 7.0))

let test_scale_cost_integrates_to_one () =
  let d = Dist.bell ~bins ~mean:0.3 ~stddev:0.1 () in
  let f = Dist.scale_cost d 250.0 in
  let steps = 5000 in
  let h = 250.0 /. float_of_int steps in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    acc := !acc +. (f ((float_of_int i +. 0.5) *. h) *. h)
  done;
  checkf "mass 1 on [0,cmax]" 0.01 1.0 !acc;
  checkf "zero outside" 0.0001 0.0 (f 251.0)

let test_invalid_correlation_rejected () =
  check "c=2 rejected" true
    (try
       ignore (Dist.and_self ~corr:(Fixed 2.0) (uniform ()));
       false
     with Invalid_argument _ -> true)

(* --- qcheck properties ------------------------------------------------ *)

let arb_dist =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Dist.pp d)
    (QCheck.Gen.oneof
       [
         QCheck.Gen.return (Dist.uniform ~bins ());
         QCheck.Gen.map
           (fun (m, sd) -> Dist.bell ~bins ~mean:m ~stddev:(0.005 +. sd) ())
           QCheck.Gen.(pair (float_bound_inclusive 1.0) (float_bound_inclusive 0.2));
         QCheck.Gen.map
           (fun b -> Dist.hyperbola ~bins ~b:(0.001 +. b) ())
           QCheck.Gen.(float_bound_inclusive 1.0);
       ])

let prop_ops_preserve_normalization =
  QCheck.Test.make ~name:"ops preserve normalization" ~count:30
    (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      let ops =
        [
          Dist.and_ ~corr:Unknown a b;
          Dist.or_ ~corr:Unknown a b;
          Dist.and_ ~corr:(Fixed 0.5) a b;
          Dist.neg a;
        ]
      in
      List.for_all (fun d -> Float.abs (Dist.cdf d 1.0 -. 1.0) < 1e-6) ops)

let prop_and_below_min_mean =
  QCheck.Test.make ~name:"AND mean <= min of operand means (any corr)" ~count:30
    (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      let d = Dist.and_ ~corr:Unknown a b in
      Dist.mean d <= Float.min (Dist.mean a) (Dist.mean b) +. 0.02)

let prop_or_above_max_mean =
  QCheck.Test.make ~name:"OR mean >= max of operand means (any corr)" ~count:30
    (QCheck.pair arb_dist arb_dist)
    (fun (a, b) ->
      let d = Dist.or_ ~corr:Unknown a b in
      Dist.mean d >= Float.max (Dist.mean a) (Dist.mean b) -. 0.02)

let prop_quantiles_monotone =
  QCheck.Test.make ~name:"quantiles monotone" ~count:50 arb_dist (fun d ->
      let qs = List.map (Dist.quantile d) [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
      let rec mono = function
        | a :: b :: r -> a <= b +. 1e-9 && mono (b :: r)
        | _ -> true
      in
      mono qs)

let () =
  Alcotest.run "rdb_dist"
    [
      ( "constructors",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "point" `Quick test_point;
          Alcotest.test_case "bell moments" `Quick test_bell_moments;
          Alcotest.test_case "of_density rejects" `Quick test_of_density_rejects;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "neg mirror" `Quick test_neg_mirror;
          Alcotest.test_case "AND c=+1 closed form" `Quick test_and_plus1_of_uniform;
          Alcotest.test_case "AND c=0 closed form" `Quick test_and_indep_of_uniform;
          Alcotest.test_case "AND c=-1 closed form" `Quick test_and_minus1_of_uniform;
          Alcotest.test_case "correlation monotone" `Quick test_and_correlation_monotone;
          Alcotest.test_case "De Morgan mirror" `Quick test_or_de_morgan;
          Alcotest.test_case "AND commutative" `Quick test_and_commutative;
          Alcotest.test_case "JOIN behaves as AND" `Quick test_join_is_and;
        ] );
      ( "figure-2.1",
        [
          Alcotest.test_case "AND chains: L-left" `Quick test_fig21_and_chain_l_shapes;
          Alcotest.test_case "OR chains: L-right" `Quick test_fig21_or_chain_mirrors;
          Alcotest.test_case "balanced mix symmetric" `Quick
            test_fig21_balanced_mix_restores_symmetry;
        ] );
      ( "figure-2.2",
        [
          Alcotest.test_case "one AND nullifies precision" `Quick
            test_fig22_single_and_nullifies_precision;
          Alcotest.test_case "OR spreads toward center" `Quick
            test_fig22_oring_spreads_toward_center;
          Alcotest.test_case "repeated AND gives L" `Quick test_fig22_repeated_anding_l_shape;
        ] );
      ( "hyperbola",
        [
          Alcotest.test_case "fit errors vs paper" `Slow test_hyperbola_fit_errors_match_paper;
          Alcotest.test_case "mirrored fit" `Quick test_hyperbola_fits_mirrored_shapes;
          Alcotest.test_case "self fit" `Quick test_hyperbola_self_fit;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "OR c=+1 closed form" `Quick test_or_fixed_corr_closed_form;
          Alcotest.test_case "chain 0 identity" `Quick test_chain_zero_is_identity;
          Alcotest.test_case "point AND point" `Quick test_point_and_point;
          Alcotest.test_case "point extremes" `Quick test_point_extremes;
          Alcotest.test_case "scale_cost normalization" `Quick
            test_scale_cost_integrates_to_one;
          Alcotest.test_case "invalid correlation" `Quick test_invalid_correlation_rejected;
        ] );
      ( "queries",
        [
          Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_cdf_inverse;
          Alcotest.test_case "sampling" `Quick test_sample_distribution;
          Alcotest.test_case "expectation" `Quick test_expectation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ops_preserve_normalization;
          QCheck_alcotest.to_alcotest prop_and_below_min_mean;
          QCheck_alcotest.to_alcotest prop_or_above_max_mean;
          QCheck_alcotest.to_alcotest prop_quantiles_monotone;
        ] );
    ]

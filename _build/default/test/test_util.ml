(* Unit and property tests for rdb_util. *)

open Rdb_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- prng ----------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_differs () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int a 1_000_000 = Prng.int b 1_000_000 then incr same
  done;
  check "streams differ" true (!same < 5)

let test_prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    check "in bounds" true (v >= 0 && v < 10);
    let f = Prng.float g 2.5 in
    check "float bounds" true (f >= 0.0 && f < 2.5);
    let x = Prng.int_in g (-5) 5 in
    check "int_in bounds" true (x >= -5 && x <= 5)
  done

let test_prng_uniformity () =
  let g = Prng.create ~seed:3 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int g 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check "bucket near 0.1" true (Float.abs (frac -. 0.1) < 0.01))
    buckets

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:11 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_prng_normal_moments () =
  let g = Prng.create ~seed:13 in
  let xs = Array.init 50_000 (fun _ -> Prng.normal g ~mean:5.0 ~stddev:2.0) in
  check "mean" true (Float.abs (Stats.mean xs -. 5.0) < 0.05);
  check "stddev" true (Float.abs (Stats.stddev xs -. 2.0) < 0.05)

let test_prng_split_independent () =
  let g = Prng.create ~seed:17 in
  let h = Prng.split g in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int g 1_000_000 = Prng.int h 1_000_000 then incr same
  done;
  check "split independent" true (!same < 5)

(* --- dynarray ------------------------------------------------------- *)

let test_dynarray_push_get () =
  let d = Dynarray.create () in
  for i = 0 to 999 do
    Dynarray.push d (i * 2)
  done;
  check_int "length" 1000 (Dynarray.length d);
  check_int "get 500" 1000 (Dynarray.get d 500);
  check_int "last" 1998 (Option.get (Dynarray.last d))

let test_dynarray_pop () =
  let d = Dynarray.of_list [ 1; 2; 3 ] in
  check_int "pop" 3 (Option.get (Dynarray.pop d));
  check_int "len" 2 (Dynarray.length d);
  check "pop empty" true (Dynarray.pop (Dynarray.create ()) = None)

let test_dynarray_truncate_sort () =
  let d = Dynarray.of_list [ 5; 3; 9; 1; 7 ] in
  Dynarray.sort compare d;
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] (Dynarray.to_list d);
  Dynarray.truncate d 2;
  Alcotest.(check (list int)) "truncated" [ 1; 3 ] (Dynarray.to_list d)

let test_dynarray_bounds () =
  let d = Dynarray.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dynarray.get") (fun () ->
      ignore (Dynarray.get d 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Dynarray.set") (fun () ->
      Dynarray.set d (-1) 0)

let test_dynarray_works_with_floats () =
  (* Guards the flat-float-array representation. *)
  let d = Dynarray.create () in
  for i = 0 to 99 do
    Dynarray.push d (float_of_int i /. 3.0)
  done;
  check_float "float get" (50.0 /. 3.0) (Dynarray.get d 50)

(* --- sorted --------------------------------------------------------- *)

let test_sorted_bounds () =
  let a = [| 1; 3; 3; 5; 9 |] in
  let lb = Sorted.lower_bound ~cmp:compare a ~len:5 in
  let ub = Sorted.upper_bound ~cmp:compare a ~len:5 in
  check_int "lb 3" 1 (lb 3);
  check_int "ub 3" 3 (ub 3);
  check_int "lb 0" 0 (lb 0);
  check_int "lb 10" 5 (lb 10);
  check "mem" true (Sorted.mem ~cmp:compare a ~len:5 5);
  check "not mem" false (Sorted.mem ~cmp:compare a ~len:5 4)

let test_sorted_set_ops () =
  let a = [| 1; 2; 4; 8 |] and b = [| 2; 3; 4; 9 |] in
  Alcotest.(check (array int)) "intersect" [| 2; 4 |] (Sorted.intersect ~cmp:compare a b);
  Alcotest.(check (array int))
    "union" [| 1; 2; 3; 4; 8; 9 |]
    (Sorted.union ~cmp:compare a b)

let prop_set_ops_match_model =
  QCheck.Test.make ~name:"sorted set ops match list model" ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let dedup l = List.sort_uniq compare l in
      let a = Array.of_list (dedup xs) and b = Array.of_list (dedup ys) in
      let inter = Array.to_list (Rdb_util.Sorted.intersect ~cmp:compare a b) in
      let union = Array.to_list (Rdb_util.Sorted.union ~cmp:compare a b) in
      let model_inter = List.filter (fun x -> List.mem x (dedup ys)) (dedup xs) in
      let model_union = dedup (xs @ ys) in
      inter = model_inter && union = model_union)

let prop_merge_dedup =
  QCheck.Test.make ~name:"merge_dedup sorts and dedups" ~count:200
    QCheck.(list small_nat)
    (fun xs ->
      Array.to_list (Rdb_util.Sorted.merge_dedup ~cmp:compare (Array.of_list xs))
      = List.sort_uniq compare xs)

(* --- stats ---------------------------------------------------------- *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "median" 2.5 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 1.0)

let test_stats_empty () =
  check_float "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 0.5))

(* --- yao ------------------------------------------------------------ *)

let test_yao_edges () =
  check_float "k=0" 0.0 (Yao.blocks ~n:1000 ~per_block:10 ~k:0);
  check_float "k>=n" 100.0 (Yao.blocks ~n:1000 ~per_block:10 ~k:1000);
  check_float "k=n-1 still ~all" 100.0 (Yao.blocks ~n:1000 ~per_block:10 ~k:995)

let test_yao_monotone () =
  let prev = ref 0.0 in
  for k = 1 to 100 do
    let b = Yao.blocks ~n:1000 ~per_block:10 ~k in
    check "monotone in k" true (b >= !prev);
    prev := b
  done

let test_yao_single_record_blocks () =
  (* One record per block: k draws touch exactly k blocks. *)
  check_float "identity" 50.0 (Yao.blocks ~n:100 ~per_block:1 ~k:50)

let test_yao_vs_simulation () =
  let g = Prng.create ~seed:23 in
  let n = 2000 and m = 20 and k = 150 in
  let trials = 300 in
  let acc = ref 0 in
  for _ = 1 to trials do
    let picked = Hashtbl.create 64 in
    let records = Array.init n Fun.id in
    Prng.shuffle g records;
    for i = 0 to k - 1 do
      Hashtbl.replace picked (records.(i) / m) ()
    done;
    acc := !acc + Hashtbl.length picked
  done;
  let simulated = float_of_int !acc /. float_of_int trials in
  let formula = Yao.blocks ~n ~per_block:m ~k in
  check "formula matches simulation" true (Float.abs (simulated -. formula) < 2.0)

let () =
  Alcotest.run "rdb_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_prng_seed_differs;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        ] );
      ( "dynarray",
        [
          Alcotest.test_case "push/get" `Quick test_dynarray_push_get;
          Alcotest.test_case "pop" `Quick test_dynarray_pop;
          Alcotest.test_case "truncate/sort" `Quick test_dynarray_truncate_sort;
          Alcotest.test_case "bounds" `Quick test_dynarray_bounds;
          Alcotest.test_case "floats" `Quick test_dynarray_works_with_floats;
        ] );
      ( "sorted",
        [
          Alcotest.test_case "bounds" `Quick test_sorted_bounds;
          Alcotest.test_case "set ops" `Quick test_sorted_set_ops;
          QCheck_alcotest.to_alcotest prop_set_ops_match_model;
          QCheck_alcotest.to_alcotest prop_merge_dedup;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "yao",
        [
          Alcotest.test_case "edges" `Quick test_yao_edges;
          Alcotest.test_case "monotone" `Quick test_yao_monotone;
          Alcotest.test_case "per_block=1" `Quick test_yao_single_record_blocks;
          Alcotest.test_case "vs simulation" `Quick test_yao_vs_simulation;
        ] );
    ]

(* Tests for cost meters, the LRU buffer pool (against a reference
   model), the slotted heap file and the spill store. *)

open Rdb_data
open Rdb_storage

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- cost -------------------------------------------------------------- *)

let test_cost_accumulation () =
  let m = Cost.create () in
  Cost.charge_physical m;
  Cost.charge_physical m;
  Cost.charge_logical m;
  Cost.charge_write m;
  Cost.charge_cpu m 100;
  check_int "phys" 2 (Cost.physical_reads m);
  check_int "log" 1 (Cost.logical_reads m);
  let expected = 2.0 +. 0.01 +. 1.0 +. (100.0 *. 0.0001) in
  Alcotest.(check (float 1e-9)) "weighted" expected (Cost.total m)

let test_cost_add_snapshot () =
  let a = Cost.create () and b = Cost.create () in
  Cost.charge_physical a;
  Cost.charge_write b;
  let snap = Cost.snapshot a in
  Cost.add a b;
  check "snapshot unchanged" true (Cost.total snap = 1.0);
  Alcotest.(check (float 1e-9)) "added" 2.0 (Cost.total a);
  Alcotest.(check (float 1e-9)) "since" 1.0 (Cost.since a snap)

(* --- buffer pool -------------------------------------------------------- *)

let block file index : Buffer_pool.block = { Buffer_pool.file; index }

let test_pool_hit_miss () =
  let p = Buffer_pool.create ~capacity:2 in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 0);
  check_int "one miss" 1 (Cost.physical_reads m);
  check_int "one hit" 1 (Cost.logical_reads m)

let test_pool_lru_eviction () =
  let p = Buffer_pool.create ~capacity:2 in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 1);
  Buffer_pool.touch p m (block 0 0);
  (* 0 is now MRU *)
  Buffer_pool.touch p m (block 0 2);
  (* evicts 1 *)
  check "0 resident" true (Buffer_pool.is_resident p (block 0 0));
  check "1 evicted" false (Buffer_pool.is_resident p (block 0 1));
  check "2 resident" true (Buffer_pool.is_resident p (block 0 2))

let test_pool_evict_file_and_flush () =
  let p = Buffer_pool.create ~capacity:8 in
  let m = Cost.create () in
  for i = 0 to 3 do
    Buffer_pool.touch p m (block 1 i);
    Buffer_pool.touch p m (block 2 i)
  done;
  check_int "resident 8" 8 (Buffer_pool.resident p);
  Buffer_pool.evict_file p 1;
  check_int "file 1 gone" 4 (Buffer_pool.resident p);
  check "file2 stays" true (Buffer_pool.is_resident p (block 2 0));
  Buffer_pool.flush p;
  check_int "flushed" 0 (Buffer_pool.resident p)

(* LRU reference model: list of blocks, most recent first. *)
let prop_pool_matches_model =
  QCheck.Test.make ~name:"LRU pool matches reference model" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let cap = 4 in
      let p = Buffer_pool.create ~capacity:cap in
      let m = Cost.create () in
      let model = ref [] in
      List.for_all
        (fun (f, i) ->
          let b = block f i in
          let hits_before = Cost.logical_reads m in
          Buffer_pool.touch p m b;
          let was_hit = Cost.logical_reads m > hits_before in
          let hit_model = List.mem b !model in
          model := b :: List.filter (( <> ) b) !model;
          if List.length !model > cap then
            model := List.filteri (fun k _ -> k < cap) !model;
          (* Hit/miss and residency must agree with the model. *)
          was_hit = hit_model
          && List.for_all (fun blk -> Buffer_pool.is_resident p blk) !model
          && Buffer_pool.resident p = List.length !model)
        ops)

let test_pool_write_makes_resident () =
  let p = Buffer_pool.create ~capacity:2 in
  let m = Cost.create () in
  Buffer_pool.write p m (block 0 7);
  check "resident after write" true (Buffer_pool.is_resident p (block 0 7));
  check_int "write charged" 1 (Cost.block_writes m);
  Buffer_pool.touch p m (block 0 7);
  check_int "then hit" 1 (Cost.logical_reads m)

(* --- heap file ----------------------------------------------------------- *)

let row i = [| Value.int i; Value.str (Printf.sprintf "row-%04d" i) |]

let test_heap_insert_fetch () =
  let p = Buffer_pool.create ~capacity:64 in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  let rids = List.init 100 (fun i -> Heap_file.insert h (row i)) in
  check_int "count" 100 (Heap_file.record_count h);
  check "multiple pages" true (Heap_file.page_count h > 1);
  List.iteri
    (fun i rid ->
      match Heap_file.fetch h m rid with
      | Some r -> check "fetch roundtrip" true (Row.equal r (row i))
      | None -> Alcotest.fail "missing record")
    rids

let test_heap_delete_update () =
  let p = Buffer_pool.create ~capacity:64 in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  let rids = Array.init 50 (fun i -> Heap_file.insert h (row i)) in
  check "delete" true (Heap_file.delete h m rids.(10));
  check "double delete" false (Heap_file.delete h m rids.(10));
  check "fetch deleted" true (Heap_file.fetch h m rids.(10) = None);
  check_int "count after delete" 49 (Heap_file.record_count h);
  check "update" true (Heap_file.update h m rids.(11) (row 999));
  check "updated value" true
    (Row.equal (Option.get (Heap_file.fetch h m rids.(11))) (row 999));
  check "update deleted fails" false (Heap_file.update h m rids.(10) (row 1))

let test_heap_scan_order_and_cost () =
  let p = Buffer_pool.create ~capacity:64 in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  for i = 0 to 99 do
    ignore (Heap_file.insert h (row i))
  done;
  let seen = ref [] in
  Heap_file.iter h m (fun rid r ->
      ignore rid;
      seen := r :: !seen);
  let ids =
    List.rev_map (fun r -> match Row.get r 0 with Value.Int i -> i | _ -> -1) !seen
  in
  Alcotest.(check (list int)) "physical order" (List.init 100 Fun.id) ids;
  check_int "page reads = page count" (Heap_file.page_count h) (Cost.physical_reads m)

let test_heap_fetch_bogus_rid () =
  let p = Buffer_pool.create ~capacity:8 in
  let h = Heap_file.create p in
  let m = Cost.create () in
  check "bad page" true (Heap_file.fetch h m (Rid.make ~page:99 ~slot:0) = None);
  ignore (Heap_file.insert h (row 0));
  check "bad slot" true (Heap_file.fetch h m (Rid.make ~page:0 ~slot:99) = None)

let prop_heap_matches_model =
  QCheck.Test.make ~name:"heap matches assoc model under ops" ~count:60
    QCheck.(list (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let p = Buffer_pool.create ~capacity:64 in
      let h = Heap_file.create ~page_bytes:200 p in
      let m = Cost.create () in
      let model = Hashtbl.create 16 in
      let rids = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              let rid = Heap_file.insert h (row v) in
              Hashtbl.replace model rid v;
              rids := rid :: !rids
          | 1 -> (
              match !rids with
              | [] -> ()
              | rid :: _ ->
                  if Hashtbl.mem model rid then begin
                    ignore (Heap_file.delete h m rid);
                    Hashtbl.remove model rid
                  end)
          | _ -> (
              match !rids with
              | [] -> ()
              | rid :: _ ->
                  if Hashtbl.mem model rid then begin
                    ignore (Heap_file.update h m rid (row v));
                    Hashtbl.replace model rid v
                  end))
        ops;
      Hashtbl.fold
        (fun rid v acc ->
          acc
          &&
          match Heap_file.fetch h m rid with
          | Some r -> Row.equal r (row v)
          | None -> false)
        model true
      && Heap_file.record_count h = Hashtbl.length model)

let test_pool_capacity_one () =
  let p = Buffer_pool.create ~capacity:1 in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 1);
  Buffer_pool.touch p m (block 0 0);
  check_int "all misses" 3 (Cost.physical_reads m);
  check_int "resident 1" 1 (Buffer_pool.resident p);
  check "zero capacity rejected" true
    (try
       ignore (Buffer_pool.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_heap_huge_record_gets_own_page () =
  let p = Buffer_pool.create ~capacity:16 in
  let h = Heap_file.create ~page_bytes:128 p in
  (* A record bigger than the page still lands somewhere (simulation
     allows overflow pages of one record). *)
  let big = [| Value.str (String.make 500 'x') |] in
  let rid1 = Heap_file.insert h big in
  let rid2 = Heap_file.insert h big in
  check "distinct pages" true (rid1.Rid.page <> rid2.Rid.page);
  let m = Cost.create () in
  check "fetch works" true (Heap_file.fetch h m rid1 <> None)

(* --- spill ----------------------------------------------------------------- *)

let test_spill_roundtrip () =
  let p = Buffer_pool.create ~capacity:64 in
  let s = Spill.create ~rids_per_block:16 p in
  let m = Cost.create () in
  let rids = Array.init 100 (fun i -> Rid.make ~page:(i / 7) ~slot:(i mod 7)) in
  Spill.append s m rids;
  check_int "length" 100 (Spill.length s);
  Spill.seal s m;
  check_int "blocks" 7 (Spill.block_count s);
  let back = Spill.to_array s m in
  check "roundtrip order" true (Array.for_all2 Rid.equal rids back)

let test_spill_write_costs () =
  let p = Buffer_pool.create ~capacity:64 in
  let s = Spill.create ~rids_per_block:10 p in
  let m = Cost.create () in
  Spill.append s m (Array.init 25 (fun i -> Rid.make ~page:i ~slot:0));
  check_int "two full blocks written" 2 (Cost.block_writes m);
  Spill.seal s m;
  check_int "partial tail flushed" 3 (Cost.block_writes m);
  check "append after seal" true
    (try
       Spill.append s m [| Rid.make ~page:0 ~slot:0 |];
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "rdb_storage"
    [
      ( "cost",
        [
          Alcotest.test_case "accumulation" `Quick test_cost_accumulation;
          Alcotest.test_case "add/snapshot" `Quick test_cost_add_snapshot;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_pool_lru_eviction;
          Alcotest.test_case "evict_file/flush" `Quick test_pool_evict_file_and_flush;
          Alcotest.test_case "write residency" `Quick test_pool_write_makes_resident;
          QCheck_alcotest.to_alcotest prop_pool_matches_model;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "capacity one" `Quick test_pool_capacity_one;
          Alcotest.test_case "oversized record" `Quick test_heap_huge_record_gets_own_page;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "insert/fetch" `Quick test_heap_insert_fetch;
          Alcotest.test_case "delete/update" `Quick test_heap_delete_update;
          Alcotest.test_case "scan order and cost" `Quick test_heap_scan_order_and_cost;
          Alcotest.test_case "bogus rid" `Quick test_heap_fetch_bogus_rid;
          QCheck_alcotest.to_alcotest prop_heap_matches_model;
        ] );
      ( "spill",
        [
          Alcotest.test_case "roundtrip" `Quick test_spill_roundtrip;
          Alcotest.test_case "write costs" `Quick test_spill_write_costs;
        ] );
    ]

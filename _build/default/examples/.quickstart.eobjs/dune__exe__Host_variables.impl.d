examples/host_variables.ml: Database List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_storage Rdb_util Rdb_workload Value

examples/host_variables.mli:

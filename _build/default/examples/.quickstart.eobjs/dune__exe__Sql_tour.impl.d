examples/sql_tour.ml: List Printf Rdb_core Rdb_data Rdb_engine Rdb_sql Rdb_util String Value

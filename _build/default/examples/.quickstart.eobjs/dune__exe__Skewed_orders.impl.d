examples/skewed_orders.ml: Database List Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_util Rdb_workload Table Value

examples/fast_first.mli:

examples/skewed_orders.mli:

examples/competition_math.mli:

examples/fast_first.ml: Database List Option Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_storage Rdb_workload Value

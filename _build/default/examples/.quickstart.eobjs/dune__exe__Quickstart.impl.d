examples/quickstart.ml: Database List Option Predicate Printf Rdb_core Rdb_data Rdb_engine Rdb_exec Rdb_util Schema Table Value

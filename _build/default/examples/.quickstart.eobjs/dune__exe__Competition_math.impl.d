examples/competition_math.ml: Array List Printf Rdb_core Rdb_util

examples/quickstart.mli:

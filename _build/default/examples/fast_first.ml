(* Fast-first vs total-time (§4, §7).

   The same restriction is retrieved three ways:

   - total-time goal, run to completion (background-only Jscan);
   - fast-first goal, cursor closed after the first 10 rows — the
     foreground borrows RIDs from the background and delivers
     immediately;
   - fast-first goal but the user keeps reading to the end — the
     foreground is retired by competition and the background finishes
     the job (no worst-case blowup, unlike a plain Fscan).

   Run with: dune exec examples/fast_first.exe *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal

let () =
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:30000 db in
  let pred =
    Predicate.And
      [
        Predicate.( =% ) "CUSTOMER" (Value.int 2);
        Predicate.( <% ) "PRICE" (Value.int 3000);
      ]
  in
  let flush () = Rdb_storage.Buffer_pool.flush (Database.pool db) in

  flush ();
  let all, tt = R.run orders (R.request ~explicit_goal:G.Total_time pred) in
  Printf.printf "total-time, full result: %d rows, cost %.1f, first row at %.1f (%s)\n"
    (List.length all) tt.R.total_cost
    (Option.value ~default:0.0 tt.R.cost_to_first_row)
    (R.tactic_to_string tt.R.tactic);

  flush ();
  let c = R.open_ orders (R.request ~explicit_goal:G.Fast_first pred) in
  let got = ref 0 in
  (try
     while !got < 10 do
       match R.fetch c with Some _ -> incr got | None -> raise Exit
     done
   with Exit -> ());
  let ff10 = R.close c in
  Printf.printf "fast-first, stop after 10:  %d rows, cost %.1f, first row at %.1f (%s)\n"
    ff10.R.rows_delivered ff10.R.total_cost
    (Option.value ~default:0.0 ff10.R.cost_to_first_row)
    (R.tactic_to_string ff10.R.tactic);

  flush ();
  let all_ff, ff = R.run orders (R.request ~explicit_goal:G.Fast_first pred) in
  Printf.printf "fast-first, read to end:   %d rows, cost %.1f, first row at %.1f (%s)\n"
    (List.length all_ff) ff.R.total_cost
    (Option.value ~default:0.0 ff.R.cost_to_first_row)
    (R.tactic_to_string ff.R.tactic);
  print_newline ();
  List.iter
    (fun e ->
      match e with
      | Rdb_exec.Trace.Foreground_stopped _ | Rdb_exec.Trace.Final_stage _ ->
          Printf.printf "  %s\n" (Rdb_exec.Trace.event_to_string e)
      | _ -> ())
    ff.R.trace;
  print_newline ();

  (* Sorted tactic: fast-first with a requested order.  DAY_IDX
     delivers the order; the other indexes build a filter that saves
     record fetches. *)
  flush ();
  let sorted_req =
    R.request ~explicit_goal:G.Fast_first ~order_by:[ "DAY" ]
      (Predicate.And
         [
           Predicate.( =% ) "PRODUCT" (Value.int 3);
           Predicate.( <% ) "PRICE" (Value.int 2000);
         ])
  in
  let rows, so = R.run orders sorted_req in
  Printf.printf "ordered fast-first (ORDER BY DAY): %d rows, cost %.1f, first at %.1f (%s)\n"
    (List.length rows) so.R.total_cost
    (Option.value ~default:0.0 so.R.cost_to_first_row)
    (R.tactic_to_string so.R.tactic)

(* SQL tour, ending with the paper's §4 goal-inference example:

     select * from A where A.X in (
       select distinct Y from B where B.Y in (
         select Z from C limit to 2 rows))
     optimize for total time;

   whose goals resolve to fast-first for C (LIMIT), total-time for B
   (SORT from DISTINCT), total-time for A (explicit request).

   Run with: dune exec examples/sql_tour.exe *)

open Rdb_data
module Executor = Rdb_sql.Executor

let db = Rdb_engine.Database.create ~pool_capacity:256 ()

let run ?env sql =
  let echo =
    if String.length sql > 90 then String.sub sql 0 87 ^ "..." else sql
  in
  Printf.printf "rdb> %s\n" echo;
  let r = Executor.execute_sql ?env db sql in
  (match r.Executor.message with Some m -> Printf.printf "%s\n" m | None -> ());
  if r.Executor.columns <> [] then begin
    let shown = List.filteri (fun i _ -> i < 6) r.Executor.rows in
    print_string
      (Rdb_util.Ascii_plot.table ~header:r.Executor.columns
         (List.map (List.map Value.to_string) shown));
    if List.length r.Executor.rows > 6 then
      Printf.printf "... (%d rows total)\n" (List.length r.Executor.rows)
  end;
  List.iter
    (fun (tbl, (s : Rdb_core.Retrieval.summary)) ->
      Printf.printf "-- %s: goal %s (%s), tactic %s, cost %.2f\n" tbl
        (Rdb_core.Goal.to_string s.Rdb_core.Retrieval.goal)
        s.Rdb_core.Retrieval.goal_provenance
        (Rdb_core.Retrieval.tactic_to_string s.Rdb_core.Retrieval.tactic)
        s.Rdb_core.Retrieval.total_cost)
    r.Executor.summaries;
  print_newline ()

let () =
  (* Build the A/B/C tables of the example. *)
  run "CREATE TABLE A (X INT, PAYLOAD STRING)";
  run "CREATE TABLE B (Y INT, REGION INT)";
  run "CREATE TABLE C (Z INT, KIND INT)";
  let rng = Rdb_util.Prng.create ~seed:5 in
  let a_rows =
    List.init 8000 (fun i ->
        Printf.sprintf "(%d, 'payload-%d')" (Rdb_util.Prng.int rng 300) i)
  in
  run (Printf.sprintf "INSERT INTO A VALUES %s" (String.concat ", " a_rows));
  let b_rows =
    List.init 2000 (fun _ ->
        Printf.sprintf "(%d, %d)" (Rdb_util.Prng.int rng 300) (Rdb_util.Prng.int rng 10))
  in
  run (Printf.sprintf "INSERT INTO B VALUES %s" (String.concat ", " b_rows));
  let c_rows =
    List.init 500 (fun _ ->
        Printf.sprintf "(%d, %d)" (Rdb_util.Prng.int rng 300) (Rdb_util.Prng.int rng 5))
  in
  run (Printf.sprintf "INSERT INTO C VALUES %s" (String.concat ", " c_rows));
  run "CREATE INDEX A_X ON A (X)";
  run "CREATE INDEX B_Y ON B (Y)";
  run "CREATE INDEX C_Z ON C (Z)";

  (* Basic selects with host variables. *)
  run ~env:[ ("LO", Value.int 100); ("HI", Value.int 120) ]
    "SELECT COUNT(*) FROM A WHERE X BETWEEN :LO AND :HI";
  run "SELECT DISTINCT REGION FROM B WHERE Y < 20 ORDER BY REGION";

  (* The paper's nested example. *)
  run
    "SELECT X, PAYLOAD FROM A WHERE X IN (SELECT DISTINCT Y FROM B WHERE Y IN (SELECT Z \
     FROM C LIMIT TO 2 ROWS)) OPTIMIZE FOR TOTAL TIME";

  (* Covered ORs take the union tactic (§7 extension). *)
  run "SELECT COUNT(*) FROM A WHERE X = 17 OR X BETWEEN 290 AND 292";

  (* DML runs through the same dynamic retrieval. *)
  run "UPDATE B SET REGION = 99 WHERE Y < 3";
  run "SELECT COUNT(*) FROM B WHERE REGION = 99";
  run "DELETE FROM C WHERE KIND = 0";
  run "SELECT COUNT(*) FROM C";

  (* EXPLAIN shows the dynamic decisions. *)
  run "EXPLAIN SELECT X FROM A WHERE X BETWEEN 10 AND 12"

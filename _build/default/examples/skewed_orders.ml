(* Jscan on skewed data: dynamic competition vs static thresholds.

   ORDERS has Zipf-distributed CUSTOMER and PRODUCT columns: customer 1
   places thousands of orders, customer 1500 a handful.  The same
   three-index conjunction is therefore sometimes best answered by one
   index, sometimes by an intersection, sometimes by a sequential scan
   -- and no static choice is right for all parameter values.

   Run with: dune exec examples/skewed_orders.exe *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module SJ = Rdb_core.Static_jscan

let () =
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:30000 db in
  let pred customer product =
    Predicate.And
      [
        Predicate.( =% ) "CUSTOMER" (Value.int customer);
        Predicate.( =% ) "PRODUCT" (Value.int product);
        Predicate.( <% ) "PRICE" (Value.int 2500);
      ]
  in
  Printf.printf "ORDERS: %d rows, %d pages; Zipf(1.0) CUSTOMER and PRODUCT\n\n"
    (Table.row_count orders) (Table.page_count orders);

  let header = [ "customer"; "product"; "rows"; "dynamic"; "static-jscan"; "discarded scans" ] in
  let rows =
    List.map
      (fun (c, p) ->
        Rdb_storage.Buffer_pool.flush (Database.pool db);
        let rows, dyn = R.run orders (R.request (pred c p)) in
        let discarded =
          List.length
            (List.filter
               (function Rdb_exec.Trace.Scan_discarded _ -> true | _ -> false)
               dyn.R.trace)
        in
        Rdb_storage.Buffer_pool.flush (Database.pool db);
        let st = SJ.run orders (pred c p) ~env:[] in
        [
          string_of_int c;
          string_of_int p;
          string_of_int (List.length rows);
          Printf.sprintf "%.1f" dyn.R.total_cost;
          Printf.sprintf "%.1f" st.SJ.cost;
          string_of_int discarded;
        ])
      [ (1, 1); (1, 400); (1200, 1); (1500, 420); (3, 7) ]
  in
  print_string (Rdb_util.Ascii_plot.table ~header rows);
  print_newline ();

  (* Show the decision trail for the hot-customer hot-product case. *)
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let _, s = R.run orders (R.request (pred 1 1)) in
  print_endline "trace for customer=1, product=1 (both hot):";
  List.iter (fun e -> Printf.printf "  %s\n" (Rdb_exec.Trace.event_to_string e)) s.R.trace

(* Host-variable sensitivity — the paper's §4 motivating query:

     select * from FAMILIES where AGE >= :A1;

   With :A1 = 0 the query returns the whole table (sequential scan
   territory); with :A1 = 100 it returns almost nothing (index
   territory).  A traditional compile-once optimizer freezes one
   strategy for all runs; the dynamic optimizer decides per run.

   Run with: dune exec examples/host_variables.exe *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Static_optimizer

let () =
  let db = Database.create ~pool_capacity:64 () in
  let families = Rdb_workload.Datasets.families ~rows:20000 db in
  let pred = Predicate.param_cmp "AGE" Predicate.Ge "A1" in

  (* Compile once, with :A1 unknown — the static optimizer falls back
     to the System-R default selectivity of 1/3 and freezes a plan. *)
  let plan = S.compile families pred ~env:[] in
  Printf.printf "static plan (compiled once, :A1 unknown): %s, estimated cost %.1f\n\n"
    (S.strategy_to_string plan.S.strategy)
    plan.S.estimated_cost;

  let header = [ ":A1"; "rows"; "static cost"; "dynamic cost"; "dynamic tactic" ] in
  let rows =
    List.map
      (fun a1 ->
        let env = [ ("A1", Value.int a1) ] in
        Rdb_storage.Buffer_pool.flush (Database.pool db);
        let st = S.execute families plan pred ~env in
        Rdb_storage.Buffer_pool.flush (Database.pool db);
        let _, dyn = R.run families (R.request ~env pred) in
        [
          string_of_int a1;
          string_of_int (List.length st.S.rows);
          Printf.sprintf "%.1f" st.S.cost;
          Printf.sprintf "%.1f" dyn.R.total_cost;
          R.tactic_to_string dyn.R.tactic;
        ])
      [ 0; 25; 50; 75; 90; 99; 100; 200 ]
  in
  print_string (Rdb_util.Ascii_plot.table ~header rows);
  print_newline ();
  print_endline
    "The frozen plan pays full price at both extremes; the dynamic\n\
     optimizer switches between sequential and index retrieval per run,\n\
     and cancels outright when the range is empty (:A1 = 200)."

(* Quickstart: build a table, add indexes, and watch the dynamic
   optimizer choose and switch strategies.

   Run with: dune exec examples/quickstart.exe *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval

let () =
  (* A database is a buffer pool plus a catalog.  A small pool keeps
     I/O costs honest: the data will not all fit in cache. *)
  let db = Database.create ~pool_capacity:128 () in

  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "AGE" Value.T_int;
        Schema.col "CITY" Value.T_str;
        Schema.col "INCOME" Value.T_int;
      ]
  in
  let people = Database.create_table db ~name:"PEOPLE" schema in

  let rng = Rdb_util.Prng.create ~seed:11 in
  let cities = [| "nashua"; "boston"; "keene"; "salem" |] in
  for i = 0 to 14_999 do
    ignore
      (Table.insert people
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.str (Rdb_util.Prng.choose rng cities);
           Value.int (Rdb_util.Prng.int rng 150_000);
         |])
  done;
  ignore (Table.create_index people ~name:"AGE_IDX" ~columns:[ "AGE" ] ());
  ignore (Table.create_index people ~name:"INCOME_IDX" ~columns:[ "INCOME" ] ());
  Printf.printf "PEOPLE: %d rows over %d pages, %d indexes\n\n" (Table.row_count people)
    (Table.page_count people)
    (List.length (Table.indexes people));

  let show name req =
    let rows, s = R.run people req in
    Printf.printf "%s\n  -> %d rows, cost %.1f, tactic: %s\n" name (List.length rows)
      s.R.total_cost
      (R.tactic_to_string s.R.tactic);
    List.iter
      (fun e -> Printf.printf "     %s\n" (Rdb_exec.Trace.event_to_string e))
      s.R.trace;
    print_newline ()
  in

  let open Predicate in
  (* A selective conjunction: Jscan intersects both indexes. *)
  show "AGE in [30,32] AND INCOME < 20000"
    (R.request (And [ between "AGE" (Value.int 30) (Value.int 32);
                      "INCOME" <% Value.int 20_000 ]));

  (* An unselective restriction: competition discards the index scans
     and recommends the sequential scan. *)
  show "AGE >= 5 (unselective)" (R.request ("AGE" >=% Value.int 5));

  (* An impossible range cancels the retrieval in the initial stage. *)
  show "AGE > 400 (empty)" (R.request ("AGE" >% Value.int 400));

  (* Fast-first: open a cursor, take 5 rows, close.  The foreground
     borrows RIDs from the background Jscan. *)
  let req =
    R.request ~explicit_goal:Rdb_core.Goal.Fast_first
      (And [ "AGE" >=% Value.int 60; "INCOME" <% Value.int 40_000 ])
  in
  let c = R.open_ people req in
  let rec take n = if n > 0 then (match R.fetch c with Some _ -> take (n - 1) | None -> ()) in
  take 5;
  let s = R.close c in
  Printf.printf
    "fast-first cursor, stopped after 5 rows\n  -> cost %.2f (first row at %.2f), tactic: %s\n"
    s.R.total_cost
    (Option.value ~default:0.0 s.R.cost_to_first_row)
    (R.tactic_to_string s.R.tactic)

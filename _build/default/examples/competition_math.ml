(* The §3 competition model as a playground.

   Builds L-shaped cost distributions (truncated hyperbolas with half
   their mass below a small knee), evaluates the paper's switch policy
   against the traditional single-plan run, plots the expected cost as
   a function of the switch point, and sweeps the L-shape knee to show
   where competition pays the most.

   Run with: dune exec examples/competition_math.exe *)

module CM = Rdb_core.Competition_math

let () =
  let a1 = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let a2 = CM.l_shaped ~knee:8.0 ~cmax:1200.0 () in
  let m1 = CM.mean a1 in
  let c2 = CM.quantile a2 0.5 in
  let m2 = CM.mean_below a2 c2 in
  Printf.printf "two L-shaped plans: M1 = %.1f, M2 = %.1f; A2's knee c2 = %.1f (m2 = %.1f)\n\n"
    m1 (CM.mean a2) c2 m2;

  Printf.printf "traditional optimizer (run A1 to completion):      %.1f\n" m1;
  Printf.printf "paper's formula (m2 + c2 + M1)/2:                  %.1f\n"
    (0.5 *. (m2 +. c2 +. m1));
  Printf.printf "evaluated knee-switch policy:                      %.1f\n"
    (CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:c2);
  let tau, best = CM.optimal_switch ~try_:a2 ~fallback:a1 in
  Printf.printf "optimal switch point (tau = %.1f):                 %.1f\n" tau best;
  let speed, abandon, sim = CM.optimal_simultaneous ~a:a1 ~b:a2 in
  Printf.printf "optimal simultaneous run (speed %.2f, abandon %.1f): %.1f\n\n" speed abandon
    sim;

  (* Expected cost as a function of the switch point. *)
  let taus = Array.init 60 (fun i -> float_of_int (i + 1) *. 2.0) in
  let costs = Array.map (fun t -> CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:t) taus in
  print_string
    (Rdb_util.Ascii_plot.plot ~width:60 ~height:12
       ~title:"expected cost vs switch point (x: tau = 2..120)"
       ~x_label:"too-early switches waste A2's chance; too-late ones chase the L-tail"
       costs);
  print_newline ();

  (* How the advantage scales with L-shape sharpness. *)
  let header = [ "knee/cmax"; "traditional M1"; "knee switch"; "gain x" ] in
  let rows =
    List.map
      (fun knee ->
        let a = CM.l_shaped ~knee ~cmax:1000.0 () in
        let b = CM.l_shaped ~knee ~cmax:1000.0 () in
        let m = CM.mean a in
        let k = CM.quantile b 0.5 in
        let c = CM.switch_cost ~try_:b ~fallback:a ~switch_at:k in
        [
          Printf.sprintf "%.3f" (knee /. 1000.0);
          Printf.sprintf "%.1f" m;
          Printf.sprintf "%.1f" c;
          Printf.sprintf "%.2f" (m /. c);
        ])
      [ 1.0; 5.0; 10.0; 50.0; 200.0; 450.0 ]
  in
  print_string (Rdb_util.Ascii_plot.table ~header rows);
  print_endline
    "\nThe sharper the L (smaller knee at equal mass), the more the switch\n\
     policy wins; as the distribution flattens the advantage disappears —\n\
     which is exactly why the paper first had to establish that real cost\n\
     distributions are L-shaped (section 2) before proposing competition\n\
     (section 3)."

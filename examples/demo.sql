-- Demo script for rdbsh: run with
--   dune exec bin/rdbsh.exe -- --demo --file examples/demo.sql
-- The --demo flag preloads FAMILIES / ORDERS / EMPLOYEES.

-- The dynamic optimizer picks a tactic per run:
SELECT COUNT(*) FROM ORDERS WHERE CUSTOMER = 1 AND PRICE < 2000;
SELECT COUNT(*) FROM ORDERS WHERE CUSTOMER = 1999 AND PRICE < 2000;

-- EXPLAIN shows the run-time decisions (estimates, discards, switches):
EXPLAIN SELECT ID FROM ORDERS
WHERE CUSTOMER = 3 AND PRODUCT = 7 AND PRICE < 2500;

-- The paper's motivating host-variable query (bind with .set A1 95):
SELECT COUNT(*) FROM FAMILIES WHERE AGE >= 95;
SELECT COUNT(*) FROM FAMILIES WHERE AGE >= 200;   -- cancelled: empty range

-- Covered ORs use the union tactic:
SELECT COUNT(*) FROM ORDERS WHERE CUSTOMER = 1500 OR PRODUCT = 444;

-- Goal inference (LIMIT -> fast-first, DISTINCT -> total-time):
SELECT DISTINCT PRODUCT FROM ORDERS WHERE CUSTOMER = 2 ORDER BY PRODUCT;
SELECT ID FROM ORDERS WHERE PRICE < 100 LIMIT TO 3 ROWS;

-- Joins probe the inner table per outer row, memoized per value:
SELECT COUNT(*) FROM EMPLOYEES, FAMILIES
WHERE EMPLOYEES.AGE = FAMILIES.AGE AND SALARY > 100000;

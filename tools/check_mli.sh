#!/bin/sh
# Every lib/ module must ship an interface file: the .mli is where the
# invariant documentation lives, and a missing one silently exports
# every helper.  Run from the repository root.
set -eu

missing=0
for ml in $(find lib -name '*.ml' | sort); do
  if [ ! -f "${ml}i" ]; then
    echo "missing interface: ${ml}i"
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "every lib/ module must have a .mli" >&2
  exit 1
fi
echo "ok: every lib/ module ships an interface"

(* Figure 5 — range estimation by descent to the split node.

   RangeRIDs ~ k * f^(l-1).  We reproduce the toy example (fanout-3
   tree, a small AGE range estimated from one root-to-split path) and
   then measure estimation accuracy and cost on a realistic tree
   (fanout 64, 100k uniform keys) across range sizes. *)

open Rdb_btree
open Rdb_data

let name = "fig5"
let description = "Figure 5: descent-to-split-node range estimation accuracy & cost"

let build ~fanout ~n ~key_space =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:100_000 () in
  let t = Btree.create ~fanout pool in
  let m = Rdb_storage.Cost.create () in
  let rng = Rdb_util.Prng.create ~seed:17 in
  for i = 0 to n - 1 do
    Btree.insert t m
      [| Value.int (Rdb_util.Prng.int rng key_space) |]
      (Rid.make ~page:(i / 32) ~slot:(i mod 32))
  done;
  t

let range_of lo hi = Btree.range_incl [| Value.int lo |] [| Value.int hi |]

let run () =
  Bench_common.section "Experiment fig5 — estimation by descent to a split node";

  Bench_common.subsection "toy tree (fanout 3, like the figure)";
  let toy = build ~fanout:3 ~n:27 ~key_space:60 in
  let m = Rdb_storage.Cost.create () in
  let r = Estimate.range toy m (range_of 30 32) in
  let actual = Btree.count_range toy m (range_of 30 32) in
  Printf.printf
    "range [30,32]: split level %d, k=%d, estimate %.0f, actual %d, %d node reads\n"
    r.Estimate.split_level r.Estimate.k r.Estimate.estimate actual
    r.Estimate.nodes_visited;

  Bench_common.subsection "realistic tree (fanout 64, 100k keys)";
  let t = build ~fanout:64 ~n:100_000 ~key_space:100_000 in
  let rng = Rdb_util.Prng.create ~seed:23 in
  let header =
    [ "range span"; "trials"; "actual (med)"; "est/actual p50"; "p10"; "p90";
      "exact %"; "avg nodes" ]
  in
  let rows =
    List.map
      (fun span ->
        let trials = 200 in
        let ratios = ref [] in
        let exact = ref 0 in
        let nodes = ref 0 in
        let actuals = ref [] in
        for _ = 1 to trials do
          let lo = Rdb_util.Prng.int rng (100_000 - span) in
          let range = range_of lo (lo + span - 1) in
          let meter = Rdb_storage.Cost.create () in
          let r = Estimate.range t meter range in
          let actual = Btree.count_range t (Rdb_storage.Cost.create ()) range in
          nodes := !nodes + r.Estimate.nodes_visited;
          if r.Estimate.exact then incr exact;
          actuals := float_of_int actual :: !actuals;
          if actual > 0 then
            ratios := (r.Estimate.estimate /. float_of_int actual) :: !ratios
          else if r.Estimate.estimate = 0.0 then ratios := 1.0 :: !ratios
        done;
        let ratios = Array.of_list !ratios in
        [
          string_of_int span;
          string_of_int trials;
          Bench_common.f1 (Rdb_util.Stats.median (Array.of_list !actuals));
          Bench_common.f2 (Rdb_util.Stats.percentile ratios 0.5);
          Bench_common.f2 (Rdb_util.Stats.percentile ratios 0.1);
          Bench_common.f2 (Rdb_util.Stats.percentile ratios 0.9);
          Bench_common.f1 (100.0 *. float_of_int !exact /. float_of_int trials);
          Bench_common.f1 (float_of_int !nodes /. float_of_int trials);
        ])
      [ 1; 10; 100; 1000; 10_000; 50_000 ]
  in
  Bench_common.table ~header rows;
  Bench_common.subsection "paper checkpoints";
  print_endline
    "- estimation costs one root-to-split path (avg nodes <= tree height), and";
  Printf.printf "  the tree height is %d\n" (Btree.height t);
  print_endline
    "- small ranges are detected exactly (the smallest ranges hit leaves), which";
  print_endline "  is what the §5 shortcut and empty-range cancellation rely on."

(* Benchmark harness: regenerates every quantitative artifact of the
   paper (figures 2.1, 2.2, 5; the hyperbola-fit and §3 competition
   numbers; the §4-§7 performance claims) plus ablations and bechamel
   micro-benchmarks.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- -l      # list experiments
     dune exec bench/main.exe -- -e fig5 -e jscan   # run a subset *)

let experiments : (string * string * (unit -> unit)) list =
  [
    (Exp_fig21.name, Exp_fig21.description, Exp_fig21.run);
    (Exp_fig22.name, Exp_fig22.description, Exp_fig22.run);
    (Exp_hyperbola.name, Exp_hyperbola.description, Exp_hyperbola.run);
    (Exp_competition.name, Exp_competition.description, Exp_competition.run);
    (Exp_fig5.name, Exp_fig5.description, Exp_fig5.run);
    (Exp_hostvar.name, Exp_hostvar.description, Exp_hostvar.run);
    (Exp_jscan.name, Exp_jscan.description, Exp_jscan.run);
    (Exp_tactics.name, Exp_tactics.description, Exp_tactics.run);
    (Exp_goal.name, Exp_goal.description, Exp_goal.run);
    (Exp_shortcut.name, Exp_shortcut.description, Exp_shortcut.run);
    (Exp_sampling.name, Exp_sampling.description, Exp_sampling.run);
    (Exp_orscan.name, Exp_orscan.description, Exp_orscan.run);
    (Exp_histogram.name, Exp_histogram.description, Exp_histogram.run);
    (Exp_correlation.name, Exp_correlation.description, Exp_correlation.run);
    (Exp_interference.name, Exp_interference.description, Exp_interference.run);
    (Exp_join.name, Exp_join.description, Exp_join.run);
    (Exp_mixed.name, Exp_mixed.description, Exp_mixed.run);
    (Exp_clustering.name, Exp_clustering.description, Exp_clustering.run);
    (Exp_faults.name, Exp_faults.description, Exp_faults.run);
    (Exp_concurrency.name, Exp_concurrency.description, Exp_concurrency.run);
    (Exp_chaos.name, Exp_chaos.description, Exp_chaos.run);
    (Exp_storm.name, Exp_storm.description, Exp_storm.run);
    (Exp_crash.name, Exp_crash.description, Exp_crash.run);
    (Exp_batch.name, Exp_batch.description, Exp_batch.run);
    (Exp_feedback.name, Exp_feedback.description, Exp_feedback.run);
    (Exp_hybrid.name, Exp_hybrid.description, Exp_hybrid.run);
    (Exp_micro.name, Exp_micro.description, Exp_micro.run);
  ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-12s %s\n" n d) experiments

module Json = Rdb_util.Json

(* Checkpoint lines are the "NAME: true|false" booleans every
   experiment prints in its "paper checkpoints" section. *)
let parse_checkpoints out =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      let ends suffix =
        let n = String.length suffix in
        String.length line > n && String.sub line (String.length line - n) n = suffix
      in
      if ends ": true" then Some (String.sub line 0 (String.length line - 6), true)
      else if ends ": false" then Some (String.sub line 0 (String.length line - 7), false)
      else None)
    (String.split_on_char '\n' out)

(* BENCH_<id>.json: the experiment's checkpoint booleans (mirroring the
   text output exactly) plus every [Bench_common.metric] it recorded,
   with the gating direction — the input of bench/diff_baseline.exe. *)
let write_json dir name out =
  let checkpoints = parse_checkpoints out in
  let j =
    Json.Obj
      [
        ("experiment", Json.Str name);
        ( "checkpoints",
          Json.Arr
            (List.map
               (fun (n, pass) ->
                 Json.Obj [ ("name", Json.Str n); ("pass", Json.Bool pass) ])
               checkpoints) );
        ( "metrics",
          Json.Arr
            (List.map
               (fun (n, v, d) ->
                 Json.Obj
                   [
                     ("name", Json.Str n);
                     ("value", Json.Num v);
                     ("direction", Json.Str (Bench_common.direction_to_string d));
                   ])
               (Bench_common.metrics ())) );
      ]
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true j);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* Run one experiment with stdout captured to a temp file, then replay
   it and scan the "paper checkpoints" booleans: any line ending in
   ": false" is a failed checkpoint.  This makes the harness its own
   gate — CI (and any scripted run) fails on exit code instead of
   grepping, so a checkpoint regression can never pass vacuously. *)
let run_gated ?json_dir (name, _, run) =
  Bench_common.reset_metrics ();
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "rdb-bench" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (match run () with
  | () -> restore ()
  | exception e ->
      restore ();
      let out = In_channel.with_open_text tmp In_channel.input_all in
      Sys.remove tmp;
      print_string out;
      raise e);
  let out = In_channel.with_open_text tmp In_channel.input_all in
  Sys.remove tmp;
  print_string out;
  (match json_dir with None -> () | Some dir -> write_json dir name out);
  let failed =
    List.filter
      (fun line ->
        let line = String.trim line in
        String.length line >= 7
        && String.sub line (String.length line - 7) 7 = ": false")
      (String.split_on_char '\n' out)
  in
  List.iter (Printf.eprintf "CHECKPOINT FAILED [%s] %s\n" name) failed;
  List.length failed

let main selected list_only json json_dir =
  if list_only then list_experiments ()
  else begin
    let json_dir = if json then Some json_dir else None in
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
          List.filter_map
            (fun n ->
              match List.find_opt (fun (name, _, _) -> name = n) experiments with
              | Some e -> Some e
              | None ->
                  Printf.eprintf "unknown experiment %S (use -l to list)\n" n;
                  exit 2)
            names
    in
    let failures = List.fold_left (fun acc e -> acc + run_gated ?json_dir e) 0 to_run in
    print_newline ();
    if failures > 0 then begin
      Printf.eprintf "%d paper checkpoint(s) failed\n" failures;
      exit 1
    end
  end

open Cmdliner

let selected =
  Arg.(
    value & opt_all string []
    & info [ "e"; "experiment" ] ~docv:"ID" ~doc:"Run only the given experiment(s).")

let list_only = Arg.(value & flag & info [ "l"; "list" ] ~doc:"List experiments and exit.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Also write BENCH_<id>.json per experiment (checkpoint booleans + recorded \
           cost metrics) for the CI perf-regression gate.")

let json_dir_opt =
  Arg.(
    value & opt string "."
    & info [ "json-dir" ] ~docv:"DIR" ~doc:"Directory for BENCH_<id>.json files.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "rdb-bench" ~doc)
    Term.(const main $ selected $ list_only $ json_flag $ json_dir_opt)

let () = exit (Cmd.eval cmd)

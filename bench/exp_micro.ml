(* Bechamel micro-benchmarks of the core data structures.

   Wall-clock timings (monotonic clock, OLS on run count) for the
   operations the optimizer leans on: B-tree inserts/lookups/estimates,
   distribution algebra, RID-list tiers, bitmap probes, row codec. *)

open Bechamel
open Toolkit

let name = "micro"
let description = "bechamel micro-benchmarks of core operations"

let make_btree n =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:100_000 () in
  let t = Rdb_btree.Btree.create ~fanout:64 pool in
  let m = Rdb_storage.Cost.create () in
  let rng = Rdb_util.Prng.create ~seed:3 in
  for i = 0 to n - 1 do
    Rdb_btree.Btree.insert t m
      [| Rdb_data.Value.int (Rdb_util.Prng.int rng 1_000_000) |]
      (Rdb_data.Rid.make ~page:(i / 32) ~slot:(i mod 32))
  done;
  t

let tests () =
  let tree = make_btree 50_000 in
  let meter = Rdb_storage.Cost.create () in
  let rng = Rdb_util.Prng.create ~seed:9 in
  let uniform = Rdb_dist.Dist.uniform ~bins:128 () in
  let row =
    [| Rdb_data.Value.int 42; Rdb_data.Value.str "benchmark-row"; Rdb_data.Value.float 3.14 |]
  in
  let encoded = Rdb_data.Row.encode row in
  let bitmap = Rdb_rid.Bitmap.create ~bits:65536 in
  for i = 0 to 999 do
    Rdb_rid.Bitmap.add bitmap (Rdb_data.Rid.make ~page:i ~slot:0)
  done;
  let insert_pool = Rdb_storage.Buffer_pool.create ~capacity:100_000 () in
  let insert_tree = Rdb_btree.Btree.create ~fanout:64 insert_pool in
  let counter = ref 0 in
  [
    Test.make ~name:"btree.insert (50k tree)"
      (Staged.stage (fun () ->
           incr counter;
           Rdb_btree.Btree.insert insert_tree meter
             [| Rdb_data.Value.int !counter |]
             (Rdb_data.Rid.make ~page:(!counter / 32) ~slot:(!counter mod 32))));
    Test.make ~name:"btree.mem"
      (Staged.stage (fun () ->
           ignore
             (Rdb_btree.Btree.mem tree meter
                [| Rdb_data.Value.int (Rdb_util.Prng.int rng 1_000_000) |]
                (Rdb_data.Rid.make ~page:0 ~slot:0))));
    Test.make ~name:"btree.estimate (descent)"
      (Staged.stage (fun () ->
           let lo = Rdb_util.Prng.int rng 900_000 in
           ignore
             (Rdb_btree.Estimate.estimate_only tree meter
                (Rdb_btree.Btree.range_incl
                   [| Rdb_data.Value.int lo |]
                   [| Rdb_data.Value.int (lo + 5000) |]))));
    Test.make ~name:"dist.and_unknown (128 bins)"
      (Staged.stage (fun () ->
           ignore (Rdb_dist.Dist.and_self ~corr:Rdb_dist.Dist.Unknown uniform)));
    Test.make ~name:"bitmap.mem"
      (Staged.stage (fun () ->
           ignore
             (Rdb_rid.Bitmap.mem bitmap
                (Rdb_data.Rid.make ~page:(Rdb_util.Prng.int rng 2000) ~slot:0))));
    Test.make ~name:"row.encode+decode"
      (Staged.stage (fun () -> ignore (Rdb_data.Row.decode (Rdb_data.Row.encode row))));
    Test.make ~name:"row.decode"
      (Staged.stage (fun () -> ignore (Rdb_data.Row.decode encoded)));
    Test.make ~name:"yao.blocks"
      (Staged.stage (fun () -> ignore (Rdb_util.Yao.blocks ~n:100_000 ~per_block:40 ~k:500)));
  ]

let run () =
  Bench_common.section "Experiment micro — bechamel timings";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"rdb" ~fmt:"%s %s" (tests ())) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name result acc ->
        let time_ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.sprintf "%.1f" est
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ test_name; time_ns; r2 ] :: acc)
      results []
  in
  let rows = List.sort compare rows in
  Bench_common.table ~header:[ "operation"; "ns/run"; "r^2" ] rows

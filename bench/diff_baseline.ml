(* CI perf-regression gate over BENCH_<id>.json files.

     diff_baseline --baseline bench/baseline --current . [--tolerance 0.10]

   For every BENCH_*.json in the baseline directory:
   - the current run must have produced the same file;
   - every current checkpoint must pass, and no baseline checkpoint
     may have disappeared (a deleted checkpoint would let a regression
     pass vacuously);
   - every gated baseline metric must exist in the current run and be
     within the tolerance along its direction: a [lower_better] metric
     fails when current > baseline * (1 + tol), a [higher_better] when
     current < baseline * (1 - tol); [info] metrics are reported but
     never gated.

   Exit code 0 = no regression, 1 = regression, 2 = bad input. *)

module Json = Rdb_util.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let load path =
  match In_channel.with_open_text path In_channel.input_all |> Json.of_string with
  | j -> j
  | exception Sys_error m -> die "cannot read %s: %s" path m
  | exception Json.Parse_error m -> die "%s: invalid JSON: %s" path m

let str_field path j key =
  match Option.bind (Json.member key j) Json.to_str with
  | Some s -> s
  | None -> die "%s: missing string field %S" path key

let num_field path j key =
  match Option.bind (Json.member key j) Json.to_num with
  | Some n -> n
  | None -> die "%s: missing numeric field %S" path key

let list_field path j key =
  match Option.bind (Json.member key j) Json.to_list with
  | Some l -> l
  | None -> die "%s: missing array field %S" path key

type metric = { value : float; direction : string }

let parse_doc path j =
  let checkpoints =
    List.map
      (fun c ->
        ( str_field path c "name",
          match Option.bind (Json.member "pass" c) Json.to_bool with
          | Some b -> b
          | None -> die "%s: checkpoint without boolean \"pass\"" path ))
      (list_field path j "checkpoints")
  in
  let metrics =
    List.map
      (fun m ->
        ( str_field path m "name",
          { value = num_field path m "value"; direction = str_field path m "direction" } ))
      (list_field path j "metrics")
  in
  (str_field path j "experiment", checkpoints, metrics)

let eps = 1e-9

(* Each failure is recorded as "experiment/offender" so the exit
   summary can name exactly which gates tripped, not just how many. *)
let check_experiment ~tolerance ~current_dir ~offenders base_path =
  let file = Filename.basename base_path in
  let cur_path = Filename.concat current_dir file in
  if not (Sys.file_exists cur_path) then begin
    Printf.printf "FAIL %s: current run produced no %s\n" file cur_path;
    offenders := (file ^ "/missing-output") :: !offenders;
    1
  end
  else begin
    let _, base_cps, base_ms = parse_doc base_path (load base_path) in
    let exp_name, cur_cps, cur_ms = parse_doc cur_path (load cur_path) in
    let failures = ref 0 in
    let fail ~offender fmt =
      Printf.ksprintf
        (fun s ->
          incr failures;
          offenders := (exp_name ^ "/" ^ offender) :: !offenders;
          Printf.printf "FAIL %s: %s\n" exp_name s)
        fmt
    in
    List.iter
      (fun (name, pass) ->
        if not pass then fail ~offender:name "checkpoint %S failed" name)
      cur_cps;
    if List.length cur_cps < List.length base_cps then
      fail ~offender:"checkpoint-count"
        "checkpoint count shrank (%d -> %d): a gate disappeared"
        (List.length base_cps) (List.length cur_cps);
    List.iter
      (fun (name, (base : metric)) ->
        match List.assoc_opt name cur_ms with
        | None ->
            if base.direction <> "info" then
              fail ~offender:name "gated metric %S disappeared" name
        | Some cur -> (
            match base.direction with
            | "lower_better" ->
                if cur.value > (base.value *. (1.0 +. tolerance)) +. eps then
                  fail ~offender:name "%s regressed: %.6g -> %.6g (> +%.0f%%)" name
                    base.value cur.value (100.0 *. tolerance)
            | "higher_better" ->
                if cur.value < (base.value *. (1.0 -. tolerance)) -. eps then
                  fail ~offender:name "%s regressed: %.6g -> %.6g (< -%.0f%%)" name
                    base.value cur.value (100.0 *. tolerance)
            | "info" -> ()
            | d -> fail ~offender:name "metric %S has unknown direction %S" name d))
      base_ms;
    if !failures = 0 then
      Printf.printf "ok   %s: %d checkpoints pass, %d metrics within %.0f%%\n" exp_name
        (List.length cur_cps) (List.length base_ms) (100.0 *. tolerance);
    !failures
  end

let main baseline_dir current_dir tolerance =
  if not (Sys.file_exists baseline_dir && Sys.is_directory baseline_dir) then
    die "baseline directory %s does not exist" baseline_dir;
  let baselines =
    Sys.readdir baseline_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat baseline_dir)
  in
  if baselines = [] then die "no BENCH_*.json baselines in %s" baseline_dir;
  let offenders = ref [] in
  let failures =
    List.fold_left
      (fun acc p -> acc + check_experiment ~tolerance ~current_dir ~offenders p)
      0 baselines
  in
  if failures > 0 then begin
    Printf.eprintf "%d perf-gate failure(s): %s\n" failures
      (String.concat ", " (List.rev !offenders));
    exit 1
  end

open Cmdliner

let baseline =
  Arg.(
    value
    & opt string "bench/baseline"
    & info [ "baseline" ] ~docv:"DIR" ~doc:"Directory of committed baseline JSON files.")

let current =
  Arg.(
    value & opt string "."
    & info [ "current" ] ~docv:"DIR" ~doc:"Directory of freshly generated JSON files.")

let tolerance =
  Arg.(
    value & opt float 0.10
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:"Allowed relative drift along each metric's direction (default 0.10).")

let cmd =
  let doc = "diff BENCH_*.json cost metrics against a committed baseline" in
  Cmd.v
    (Cmd.info "diff_baseline" ~doc)
    Term.(const main $ baseline $ current $ tolerance)

let () = exit (Cmd.eval cmd)

(* Capstone — a mixed OLTP/decision-support workload through four
   engines.

   The workload is what production systems actually run: a handful of
   *query shapes* with host variables, each executed many times with
   different parameter values.  The static optimizer compiles each
   shape once (parameters unknown — System-R default selectivities) and
   reuses the frozen plan for every execution, exactly as the paper
   describes; the dynamic engine decides per execution; the
   statically-thresholded Jscan estimates at start-retrieval time but
   never revisits a decision; the null engine scans sequentially.

   One table of totals.  Rows are cross-checked between engines. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal
module SO = Rdb_core.Static_optimizer
module SJ = Rdb_core.Static_jscan

let name = "mixed"
let description = "capstone: parameterized query shapes through dynamic and static engines"

type shape = {
  label : string;
  pred : Predicate.t;  (** with host variables *)
  goal : G.t;
  take : int option;  (** early termination after n rows *)
  instances : Predicate.env list;
}

let shapes rng =
  let open Predicate in
  [
    {
      label = "OLTP point (half misses)";
      pred = And [ param_cmp "CUSTOMER" Eq "C"; param_cmp "PRODUCT" Eq "P" ];
      goal = G.Total_time;
      take = None;
      instances =
        List.init 40 (fun i ->
            [
              ( "C",
                Value.int
                  (if i mod 2 = 0 then 1 + Rdb_util.Prng.int rng 2000
                   else 50_000 + Rdb_util.Prng.int rng 1000) );
              ("P", Value.int (1 + Rdb_util.Prng.int rng 500));
            ]);
    };
    {
      label = "skewed AND over hot heads";
      pred = And [ param_cmp "CUSTOMER" Eq "C"; param_cmp "PRICE" Lt "PMAX" ];
      goal = G.Total_time;
      take = None;
      instances =
        List.init 20 (fun _ ->
            [
              ("C", Value.int (1 + Rdb_util.Prng.int rng 10));
              ("PMAX", Value.int (500 + Rdb_util.Prng.int rng 3000));
            ]);
    };
    {
      label = "broad sweep";
      pred = param_cmp "PRICE" Ge "P0";
      goal = G.Total_time;
      take = None;
      instances =
        List.init 10 (fun _ -> [ ("P0", Value.int (Rdb_util.Prng.int rng 500)) ]);
    };
    {
      label = "first-10 fast-first";
      pred = And [ param_cmp "CUSTOMER" Lt "CMAX"; ( <% ) "PRICE" (Value.int 4000) ];
      goal = G.Fast_first;
      take = Some 10;
      instances =
        List.init 10 (fun _ ->
            [ ("CMAX", Value.int (50 + Rdb_util.Prng.int rng 200)) ]);
    };
    {
      label = "day-window report";
      pred = Between ("DAY", Param "D0", Param "D1");
      goal = G.Total_time;
      take = None;
      instances =
        List.init 10 (fun _ ->
            let d = Rdb_util.Prng.int rng 350 in
            [ ("D0", Value.int d); ("D1", Value.int (d + 7)) ]);
    };
    {
      label = "selective OR";
      pred = Or [ param_cmp "CUSTOMER" Eq "C"; param_cmp "PRODUCT" Eq "P" ];
      goal = G.Total_time;
      take = None;
      instances =
        List.init 10 (fun _ ->
            [
              ("C", Value.int (1000 + Rdb_util.Prng.int rng 1000));
              ("P", Value.int (400 + Rdb_util.Prng.int rng 100));
            ]);
    };
  ]

let run () =
  Bench_common.section "Experiment mixed — parameterized workload, four engines";
  let db = Database.create ~pool_capacity:128 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let rng = Rdb_util.Prng.create ~seed:2026 in
  let shapes = shapes rng in
  let n_exec = List.fold_left (fun acc s -> acc + List.length s.instances) 0 shapes in
  Printf.printf "ORDERS: %d rows, %d pages; %d shapes, %d executions\n\n"
    (Table.row_count orders) (Table.page_count orders) (List.length shapes) n_exec;

  (* Reference row counts per (shape, instance), from the dynamic runs. *)
  let reference : (string * int, int) Hashtbl.t = Hashtbl.create 128 in

  let run_dynamic () =
    let total = ref 0.0 in
    List.iter
      (fun s ->
        List.iteri
          (fun i env ->
            let c = R.open_ orders (R.request ~env ~explicit_goal:s.goal s.pred) in
            let got = ref 0 in
            (try
               let limit = Option.value s.take ~default:max_int in
               while !got < limit do
                 match R.fetch c with Some _ -> incr got | None -> raise Exit
               done
             with Exit -> ());
            let sm = R.close c in
            Hashtbl.replace reference (s.label, i) !got;
            total := !total +. sm.R.total_cost)
          s.instances)
      shapes;
    !total
  in
  let run_static_opt () =
    let total = ref 0.0 in
    List.iter
      (fun s ->
        (* Compile ONCE per shape, parameters unknown. *)
        let plan = SO.compile orders s.pred ~env:[] in
        List.iteri
          (fun i env ->
            let r = SO.execute ?limit:s.take orders plan s.pred ~env in
            (match (Hashtbl.find_opt reference (s.label, i), s.take) with
            | Some n, None when n <> List.length r.SO.rows ->
                Printf.printf "!! row mismatch on %s #%d\n" s.label i
            | _ -> ());
            total := !total +. r.SO.cost)
          s.instances)
      shapes;
    !total
  in
  let run_static_jscan () =
    let total = ref 0.0 in
    List.iter
      (fun s ->
        List.iter
          (fun env ->
            let r = SJ.run ?limit:s.take orders s.pred ~env in
            total := !total +. r.SJ.cost)
          s.instances)
      shapes;
    !total
  in
  let run_tscan_only () =
    let total = ref 0.0 in
    List.iter
      (fun s ->
        List.iter
          (fun env ->
            let meter = Rdb_storage.Cost.create () in
            let bound = Predicate.bind s.pred env in
            let t = Rdb_exec.Tscan.create orders meter bound in
            let limit = Option.value s.take ~default:max_int in
            let got = ref 0 in
            let rec loop () =
              if !got < limit then begin
                match Rdb_exec.Tscan.step t with
                | Rdb_exec.Scan.Deliver _ ->
                    incr got;
                    loop ()
                | Rdb_exec.Scan.Continue -> loop ()
                | Rdb_exec.Scan.Done -> ()
                | Rdb_exec.Scan.Failed f -> raise (Rdb_storage.Fault.Injected f)
              end
            in
            loop ();
            total := !total +. Rdb_storage.Cost.total meter)
          s.instances)
      shapes;
    !total
  in
  let engines =
    [
      ("dynamic (this paper)", run_dynamic);
      ("static optimizer [SACL79]", run_static_opt);
      ("static jscan [MoHa90]", run_static_jscan);
      ("tscan only", run_tscan_only);
    ]
  in
  let results =
    List.map
      (fun (label, f) ->
        Bench_common.flush_pool db;
        (label, f ()))
      engines
  in
  let dyn_total = List.assoc "dynamic (this paper)" results in
  Bench_common.table
    ~header:[ "engine"; "workload total cost"; "vs dynamic" ]
    (List.map
       (fun (label, total) ->
         [ label; Bench_common.f1 total; Printf.sprintf "%.2fx" (total /. dyn_total) ])
       results);
  Bench_common.subsection "paper checkpoints";
  Printf.printf "the dynamic engine wins the whole mix against every static engine: %b\n"
    (List.for_all (fun (_, t) -> t >= dyn_total *. 0.999) results)

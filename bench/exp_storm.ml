(* Overload survival and sharded-pool scale under storm traffic.

   ROADMAP item 2: thousands of concurrent sessions over a sharded
   buffer pool.  A heavy-tailed storm (bursty Zipf arrival gaps in
   waves, Zipf quota mix, a tail of tight cost deadlines) of at least
   1024 sessions — RDB_STORM_SCALE raises it further, the nightly CI
   job runs 4096 — is thrown at a bounded queue with graceful
   degradation, over a pool partitioned into 8 LRU shards.  Measured:

   - exact accounting at scale: every submission ends served, shed, or
     timed out — the three counts sum to the submission count;
   - per-shard lookup balance: the deterministic block->shard mix keeps
     the probe load within a bounded skew of perfectly even;
   - sharding steers contention, never results: sessions served under
     every shard count in {1, 2, 8} deliver byte-identical rows in the
     same order, and no shard count introduces degradation events;
   - shards=1 is the monolithic pool byte-for-byte: its storm report is
     identical to a run that never touches the shard knob;
   - starvation bound holds for everything that runs;
   - isolation: each survivor's rows (content AND order) are identical
     to a calm rerun without the shed/timed-out peers;
   - every exit is structured, timed-out sessions keep partial rows,
     served non-LIMIT queries match the full-scan oracle;
   - equal seeds give byte-identical reports. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic

let name = "storm"

let description =
  "thousand-session storms over a sharded buffer pool: scale accounting, shard \
   balance, result invariance"

(* >= 1024 by default; the nightly CI job exports RDB_STORM_SCALE=4096. *)
let scale =
  match Sys.getenv_opt "RDB_STORM_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1024)
  | None -> 1024

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_strings rows = List.map Row.to_string rows
let multiset rows = List.sort compare (row_strings rows)

(* Order-sensitive fingerprint of a delivered row list — lets the
   cross-shard comparison hold thousands of result sets without
   retaining the rows themselves. *)
let digest_rows rows = Digest.to_hex (Digest.string (String.concat "\n" (row_strings rows)))

let oracle table (sp : Traffic.spec) =
  let pred = Predicate.simplify (Predicate.bind sp.Traffic.pred sp.Traffic.env) in
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

let storm_config ~shed_policy ~pool_shards =
  {
    S.default_config with
    S.max_inflight = 8;
    quantum = 12.0;
    max_queue = 12;
    shed_policy;
    pressure_threshold = 10;
    pool_shards;
    record_events = false;
  }

(* Submit the whole storm into one scheduler and run it. *)
let run_storm db table arrivals ~shed_policy ~pool_shards =
  Bench_common.flush_pool db;
  let sched = S.create ~config:(storm_config ~shed_policy ~pool_shards) db in
  let ids =
    List.map
      (fun (a : Traffic.arrival) ->
        let sp = a.Traffic.spec in
        S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ?quota:a.Traffic.quota ?deadline:a.Traffic.deadline
          ~arrive_at:a.Traffic.arrive_at table (request_of sp))
      arrivals
  in
  let report = S.run sched in
  (sched, report, ids)

let outcome_kind (s : S.session_stats) =
  match s.S.s_outcome with
  | S.Served -> `Served
  | S.Timed_out _ -> `Timed_out
  | S.Shed _ -> `Shed
  | S.Lost _ -> `Lost (* storms run without crash points; never fires *)

(* Per-session record of one shard-count run: outcome, an ordered-rows
   digest for served sessions (timed-out partials are cost-dependent,
   so they are excluded from cross-shard comparison by design), and the
   degradation-event count from the trace. *)
let snapshot sched (report : S.report) =
  List.map
    (fun (s : S.session_stats) ->
      let dg =
        if outcome_kind s = `Served then digest_rows (S.rows_of sched s.S.s_id) else ""
      in
      (s.S.s_id, outcome_kind s, dg, s.S.s_degradations))
    report.S.sessions

let run () =
  Bench_common.section
    "Experiment storm — thousand-session storms over a sharded buffer pool";
  let db = Datasets.fresh_db ~pool_capacity:96 () in
  let table = Datasets.orders ~rows:12000 db in
  let count = scale in
  let waves = max 1 (count / 256) in
  let arrivals = Traffic.storm ~seed:4242 ~count ~waves () in

  (* --- the headline storm run: 8 shards, shed-largest-quota --------- *)
  let sched, report, ids =
    run_storm db table arrivals ~shed_policy:S.Shed_largest_quota
      ~pool_shards:(Some 8)
  in
  let sessions = report.S.sessions in
  let served = List.filter (fun s -> outcome_kind s = `Served) sessions in
  let shed = List.filter (fun s -> outcome_kind s = `Shed) sessions in
  let timed_out = List.filter (fun s -> outcome_kind s = `Timed_out) sessions in
  let degraded = List.filter (fun s -> s.S.s_degraded) sessions in

  Bench_common.subsection
    (Printf.sprintf
       "storm of %d submissions in %d waves (max_inflight=8, max_queue=12, \
        pressure_threshold=10, shed-largest-quota, 8 pool shards)"
       count waves);
  Bench_common.table
    ~header:[ "outcome"; "count"; "rows"; "charged" ]
    (List.map
       (fun (label, ss) ->
         [
           label;
           string_of_int (List.length ss);
           string_of_int (List.fold_left (fun acc s -> acc + s.S.s_rows) 0 ss);
           Bench_common.f1 (List.fold_left (fun acc s -> acc +. s.S.s_charged) 0.0 ss);
         ])
       [
         ("served", served);
         ("timed out", timed_out);
         ("shed", shed);
         ("degraded (subset of served)", degraded);
       ]);
  Printf.printf "pool: %d grants, total charged %.1f, hit rate %.3f, max in-flight %d\n"
    report.S.pool.S.p_grants report.S.pool.S.p_total_cost report.S.pool.S.p_hit_rate
    report.S.pool.S.p_max_inflight_seen;
  Printf.printf "shards: %d, lookup balance %.3f (per-shard lookups %s)\n"
    report.S.pool.S.p_shards report.S.pool.S.p_lookup_balance
    (String.concat "/"
       (Array.to_list (Array.map string_of_int report.S.pool.S.p_shard_lookups)));
  let snap_8 = snapshot sched report in

  (* --- shed-policy comparison --------------------------------------- *)
  let _, newest_report, _ =
    run_storm db table arrivals ~shed_policy:S.Shed_newest ~pool_shards:(Some 8)
  in
  Bench_common.subsection "shed-policy comparison (same storm, 8 shards)";
  Bench_common.table
    ~header:[ "policy"; "served"; "shed"; "timed out" ]
    (List.map
       (fun (label, (rep : S.report)) ->
         [
           label;
           string_of_int rep.S.pool.S.p_served;
           string_of_int rep.S.pool.S.p_shed;
           string_of_int rep.S.pool.S.p_timed_out;
         ])
       [ ("shed-largest-quota", report); ("shed-newest", newest_report) ]);

  (* --- determinism ---------------------------------------------------- *)
  let _, rep_repeat, _ =
    run_storm db table arrivals ~shed_policy:S.Shed_largest_quota
      ~pool_shards:(Some 8)
  in
  let deterministic = S.report_to_string report = S.report_to_string rep_repeat in

  (* --- shard-count invariance: {1, 2, 8} ----------------------------- *)
  (* Costs differ across shard counts (each count is a different
     eviction domain), so *which* sessions survive the deadlines may
     differ — but every session served under all three counts must
     deliver byte-identical rows in the same order, and no count may
     introduce degradation events (retries / quarantines / fallbacks:
     this storm runs fault-free, so any nonzero count would be
     sharding corrupting a scan). *)
  let snap_2 =
    let sched2, rep2, _ =
      run_storm db table arrivals ~shed_policy:S.Shed_largest_quota
        ~pool_shards:(Some 2)
    in
    snapshot sched2 rep2
  in
  let sched1, rep1, _ =
    run_storm db table arrivals ~shed_policy:S.Shed_largest_quota ~pool_shards:(Some 1)
  in
  let snap_1 = snapshot sched1 rep1 in
  let report_1 = S.report_to_string rep1 in
  let common_served = ref 0 in
  let rows_invariant = ref true in
  let no_degradations = ref true in
  List.iter
    (fun ((id, k8, d8, deg8), ((_, k2, d2, deg2), (_, k1, d1, deg1))) ->
      ignore id;
      if deg8 + deg2 + deg1 > 0 then no_degradations := false;
      if k8 = `Served && k2 = `Served && k1 = `Served then begin
        incr common_served;
        if not (String.equal d8 d2 && String.equal d2 d1) then rows_invariant := false
      end)
    (List.combine snap_8 (List.combine snap_2 snap_1));

  (* --- shards=1 is byte-for-byte the monolithic pool ------------------ *)
  (* The same storm through a scheduler that never touches the shard
     knob (the pool is single-sharded after the run above): any
     difference would mean the sharded code path leaks into the
     single-shard pool. *)
  let _, rep_untouched, _ =
    run_storm db table arrivals ~shed_policy:S.Shed_largest_quota ~pool_shards:None
  in
  let monolith_identical = String.equal report_1 (S.report_to_string rep_untouched) in

  (* --- isolation: calm rerun of the survivors only ------------------ *)
  (* Same queries, no storm: unbounded queue, no deadlines, no
     pressure.  Every survivor must deliver byte-identical rows in the
     same order — shedding changed which queries ran, never their
     results. *)
  let survivor_arrivals =
    List.filter_map
      (fun ((a : Traffic.arrival), id) ->
        let s = List.find (fun s -> s.S.s_id = id) sessions in
        if outcome_kind s = `Served then Some (a, id) else None)
      (List.combine arrivals ids)
  in
  Bench_common.flush_pool db;
  let calm =
    S.create
      ~config:{ S.default_config with S.max_inflight = 8; S.record_events = false }
      db
  in
  let calm_ids =
    List.map
      (fun ((a : Traffic.arrival), _) ->
        let sp = a.Traffic.spec in
        S.submit calm ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
          (request_of sp))
      survivor_arrivals
  in
  let _ = S.run calm in
  let survivors_invariant =
    List.for_all2
      (fun (_, storm_id) calm_id ->
        row_strings (S.rows_of sched storm_id) = row_strings (S.rows_of calm calm_id))
      survivor_arrivals calm_ids
  in

  (* --- served non-LIMIT queries still match the oracle --------------- *)
  let served_correct =
    List.for_all2
      (fun (a : Traffic.arrival) id ->
        let s = List.find (fun s -> s.S.s_id = id) sessions in
        match (outcome_kind s, a.Traffic.spec.Traffic.limit) with
        | `Served, None ->
            multiset (S.rows_of sched id) = multiset (oracle table a.Traffic.spec)
        | _ -> true)
      arrivals ids
  in

  (* --- structured exits ---------------------------------------------- *)
  let structured_exits =
    List.for_all
      (fun (s : S.session_stats) ->
        match (s.S.s_outcome, s.S.s_summary) with
        | S.Served, Some _ -> true
        | S.Timed_out _, Some summary -> (
            match summary.R.status with R.Timed_out _ -> true | _ -> false)
        | S.Timed_out _, None ->
            (* timed out on arrival: never ran, charged nothing *)
            s.S.s_quanta = 0 && s.S.s_charged = 0.0 && s.S.s_rows = 0
        | S.Shed _, None -> s.S.s_quanta = 0 && s.S.s_charged = 0.0 && s.S.s_rows = 0
        | S.Served, None | S.Shed _, Some _ -> false
        | S.Lost _, _ -> false (* no crash points in storms *))
      sessions
  in
  let partial_rows_kept =
    List.exists
      (fun (s : S.session_stats) ->
        match s.S.s_outcome with S.Timed_out _ -> s.S.s_rows > 0 | _ -> false)
      sessions
  in

  let max_gap =
    List.fold_left (fun acc (s : S.session_stats) -> max acc s.S.s_max_gap) 0 sessions
  in
  let p = report.S.pool in
  Bench_common.metric "storm_submitted" (float_of_int p.S.p_submitted);
  Bench_common.metric ~dir:Bench_common.Higher_better "storm_served"
    (float_of_int p.S.p_served);
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_shed"
    (float_of_int p.S.p_shed);
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_timed_out"
    (float_of_int p.S.p_timed_out);
  Bench_common.metric "storm_degraded" (float_of_int (List.length degraded));
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_total_cost" p.S.p_total_cost;
  Bench_common.metric ~dir:Bench_common.Higher_better "storm_hit_rate" p.S.p_hit_rate;
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_max_gap"
    (float_of_int max_gap);
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_lookup_balance"
    p.S.p_lookup_balance;

  (* --- checkpoints ---------------------------------------------------- *)
  let bound = (storm_config ~shed_policy:S.Shed_largest_quota ~pool_shards:None).S.starvation_bound in
  Bench_common.subsection "paper checkpoints";
  Printf.printf "storm scale >= 1024 sessions (%d submitted): %b\n" p.S.p_submitted
    (p.S.p_submitted >= min scale 1024 && p.S.p_submitted = count);
  Printf.printf
    "exact accounting at scale (%d served + %d shed + %d timed out = %d submitted): %b\n"
    p.S.p_served p.S.p_shed p.S.p_timed_out p.S.p_submitted
    (p.S.p_served + p.S.p_shed + p.S.p_timed_out = p.S.p_submitted);
  Printf.printf
    "overload exercised (shed %d > 0, timed out %d > 0, degraded %d > 0): %b\n"
    p.S.p_shed p.S.p_timed_out (List.length degraded)
    (p.S.p_shed > 0 && p.S.p_timed_out > 0 && degraded <> []);
  Printf.printf "per-shard lookup balance within bounded skew (%.3f <= 1.50 at %d shards): %b\n"
    p.S.p_lookup_balance p.S.p_shards
    (p.S.p_shards = 8 && p.S.p_lookup_balance <= 1.5);
  Printf.printf "starvation bound holds under storm (max gap %d <= bound %d): %b\n"
    max_gap bound (max_gap <= bound);
  Printf.printf
    "rows and order invariant across shard counts {1,2,8} (%d sessions served under \
     all): %b\n"
    !common_served
    (!rows_invariant && !common_served > 0);
  Printf.printf
    "no shard count introduces degradation events (fault-free storm stays clean): %b\n"
    !no_degradations;
  Printf.printf "shards=1 report byte-identical to the untouched monolithic pool: %b\n"
    monolith_identical;
  Printf.printf "survivor rows invariant under shed/timed-out peers (%d survivors): %b\n"
    (List.length survivor_arrivals) survivors_invariant;
  Printf.printf "served non-LIMIT rows match the full-scan oracle: %b\n" served_correct;
  Printf.printf "every exit structured (shed/timed-out never absorb): %b\n"
    structured_exits;
  Printf.printf "timed-out sessions keep their partial rows: %b\n" partial_rows_kept;
  Printf.printf "equal seeds and configs give byte-identical reports: %b\n" deterministic

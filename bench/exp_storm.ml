(* Overload survival under storm traffic.

   ROADMAP item 2: the scheduler must survive arrival storms, not just
   queue them.  A heavy-tailed storm (bursty Zipf arrival gaps, Zipf
   quota mix, a tail of tight cost deadlines) is thrown at a bounded
   queue with graceful degradation enabled.  Measured:

   - exact accounting: every submission ends served, shed, or timed
     out — the three counts sum to the submission count;
   - starvation bound holds for everything that runs;
   - isolation: each survivor's rows (content AND order) are identical
     to a calm rerun without the shed/timed-out peers — shedding
     changes which queries run, never the results of queries that run;
   - every exit is structured (shed queries never open a cursor,
     timed-out queries keep their partial rows and a Timed_out
     summary) — no exceptions, no absorbing states;
   - served non-LIMIT queries still match the full-scan oracle;
   - equal seeds give byte-identical reports. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic

let name = "storm"

let description =
  "overload survival: deadlines, load shedding, degradation under a 160-query storm"

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_strings rows = List.map Row.to_string rows
let multiset rows = List.sort compare (row_strings rows)

let oracle table (sp : Traffic.spec) =
  let pred = Predicate.simplify (Predicate.bind sp.Traffic.pred sp.Traffic.env) in
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

let storm_config ~shed_policy =
  {
    S.default_config with
    S.max_inflight = 4;
    quantum = 12.0;
    max_queue = 6;
    shed_policy;
    pressure_threshold = 5;
    record_events = true;
  }

(* Submit the whole storm into one scheduler and run it. *)
let run_storm ?(record_events = true) db table arrivals ~shed_policy =
  Bench_common.flush_pool db;
  let cfg = { (storm_config ~shed_policy) with S.record_events = record_events } in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun (a : Traffic.arrival) ->
        let sp = a.Traffic.spec in
        S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ?quota:a.Traffic.quota ?deadline:a.Traffic.deadline
          ~arrive_at:a.Traffic.arrive_at table (request_of sp))
      arrivals
  in
  let report = S.run sched in
  (sched, report, ids)

let outcome_kind (s : S.session_stats) =
  match s.S.s_outcome with
  | S.Served -> `Served
  | S.Timed_out _ -> `Timed_out
  | S.Shed _ -> `Shed

let run () =
  Bench_common.section "Experiment storm — overload survival under heavy-tailed traffic";
  let db = Datasets.fresh_db ~pool_capacity:96 () in
  let table = Datasets.orders ~rows:12000 db in
  let count = 160 in
  let arrivals = Traffic.storm ~seed:4242 ~count () in

  (* --- the headline storm run (shed-largest-quota) ------------------ *)
  let sched, report, ids = run_storm db table arrivals ~shed_policy:S.Shed_largest_quota in
  let sessions = report.S.sessions in
  let served = List.filter (fun s -> outcome_kind s = `Served) sessions in
  let shed = List.filter (fun s -> outcome_kind s = `Shed) sessions in
  let timed_out = List.filter (fun s -> outcome_kind s = `Timed_out) sessions in
  let degraded = List.filter (fun s -> s.S.s_degraded) sessions in

  Bench_common.subsection
    (Printf.sprintf "storm of %d submissions (max_inflight=4, max_queue=6, \
                     pressure_threshold=5, shed-largest-quota)"
       count);
  Bench_common.table
    ~header:[ "outcome"; "count"; "rows"; "charged" ]
    (List.map
       (fun (label, ss) ->
         [
           label;
           string_of_int (List.length ss);
           string_of_int (List.fold_left (fun acc s -> acc + s.S.s_rows) 0 ss);
           Bench_common.f1
             (List.fold_left (fun acc s -> acc +. s.S.s_charged) 0.0 ss);
         ])
       [
         ("served", served);
         ("timed out", timed_out);
         ("shed", shed);
         ("degraded (subset of served)", degraded);
       ]);
  Printf.printf "pool: %d grants, total charged %.1f, hit rate %.3f, max in-flight %d\n"
    report.S.pool.S.p_grants report.S.pool.S.p_total_cost report.S.pool.S.p_hit_rate
    report.S.pool.S.p_max_inflight_seen;

  (* --- shed-policy comparison --------------------------------------- *)
  let _, newest_report, _ = run_storm db table arrivals ~shed_policy:S.Shed_newest in
  Bench_common.subsection "shed-policy comparison (same storm)";
  Bench_common.table
    ~header:[ "policy"; "served"; "shed"; "timed out" ]
    (List.map
       (fun (label, (rep : S.report)) ->
         [
           label;
           string_of_int rep.S.pool.S.p_served;
           string_of_int rep.S.pool.S.p_shed;
           string_of_int rep.S.pool.S.p_timed_out;
         ])
       [ ("shed-largest-quota", report); ("shed-newest", newest_report) ]);

  (* --- isolation: calm rerun of the survivors only ------------------ *)
  (* Same queries, no storm: unbounded queue, no deadlines, no
     pressure.  Every survivor must deliver byte-identical rows in the
     same order — shedding changed which queries ran, never their
     results. *)
  let survivor_arrivals =
    List.filter_map
      (fun ((a : Traffic.arrival), id) ->
        let s = List.find (fun s -> s.S.s_id = id) sessions in
        if outcome_kind s = `Served then Some (a, id) else None)
      (List.combine arrivals ids)
  in
  Bench_common.flush_pool db;
  let calm = S.create ~config:{ S.default_config with S.max_inflight = 4 } db in
  let calm_ids =
    List.map
      (fun ((a : Traffic.arrival), _) ->
        let sp = a.Traffic.spec in
        S.submit calm ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
          (request_of sp))
      survivor_arrivals
  in
  let _ = S.run calm in
  let survivors_invariant =
    List.for_all2
      (fun (_, storm_id) calm_id ->
        row_strings (S.rows_of sched storm_id) = row_strings (S.rows_of calm calm_id))
      survivor_arrivals calm_ids
  in

  (* --- served non-LIMIT queries still match the oracle --------------- *)
  let served_correct =
    List.for_all2
      (fun (a : Traffic.arrival) id ->
        let s = List.find (fun s -> s.S.s_id = id) sessions in
        match (outcome_kind s, a.Traffic.spec.Traffic.limit) with
        | `Served, None -> multiset (S.rows_of sched id) = multiset (oracle table a.Traffic.spec)
        | _ -> true)
      arrivals ids
  in

  (* --- structured exits ---------------------------------------------- *)
  let structured_exits =
    List.for_all
      (fun (s : S.session_stats) ->
        match (s.S.s_outcome, s.S.s_summary) with
        | S.Served, Some _ -> true
        | S.Timed_out _, Some summary -> (
            match summary.R.status with R.Timed_out _ -> true | _ -> false)
        | S.Timed_out _, None ->
            (* timed out on arrival: never ran, charged nothing *)
            s.S.s_quanta = 0 && s.S.s_charged = 0.0 && s.S.s_rows = 0
        | S.Shed _, None -> s.S.s_quanta = 0 && s.S.s_charged = 0.0 && s.S.s_rows = 0
        | S.Served, None | S.Shed _, Some _ -> false)
      sessions
  in
  let partial_rows_kept =
    List.exists
      (fun (s : S.session_stats) ->
        match s.S.s_outcome with S.Timed_out _ -> s.S.s_rows > 0 | _ -> false)
      sessions
  in

  (* --- determinism ---------------------------------------------------- *)
  let _, rep_a, _ = run_storm db table arrivals ~shed_policy:S.Shed_largest_quota in
  let _, rep_b, _ = run_storm db table arrivals ~shed_policy:S.Shed_largest_quota in
  let deterministic = S.report_to_string rep_a = S.report_to_string rep_b in

  let max_gap =
    List.fold_left (fun acc (s : S.session_stats) -> max acc s.S.s_max_gap) 0 sessions
  in
  let p = report.S.pool in
  Bench_common.metric "storm_submitted" (float_of_int p.S.p_submitted);
  Bench_common.metric ~dir:Bench_common.Higher_better "storm_served"
    (float_of_int p.S.p_served);
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_shed"
    (float_of_int p.S.p_shed);
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_timed_out"
    (float_of_int p.S.p_timed_out);
  Bench_common.metric "storm_degraded" (float_of_int (List.length degraded));
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_total_cost"
    p.S.p_total_cost;
  Bench_common.metric ~dir:Bench_common.Higher_better "storm_hit_rate" p.S.p_hit_rate;
  Bench_common.metric ~dir:Bench_common.Lower_better "storm_max_gap"
    (float_of_int max_gap);

  (* --- checkpoints ---------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  Printf.printf "storm scale >= 128 sessions (%d submitted): %b\n" p.S.p_submitted
    (p.S.p_submitted >= 128);
  Printf.printf "exact accounting (%d served + %d shed + %d timed out = %d submitted): %b\n"
    p.S.p_served p.S.p_shed p.S.p_timed_out p.S.p_submitted
    (p.S.p_served + p.S.p_shed + p.S.p_timed_out = p.S.p_submitted);
  Printf.printf "overload exercised (shed %d > 0, timed out %d > 0, degraded %d > 0): %b\n"
    p.S.p_shed p.S.p_timed_out (List.length degraded)
    (p.S.p_shed > 0 && p.S.p_timed_out > 0 && degraded <> []);
  Printf.printf "starvation bound holds under storm (max gap %d <= bound %d): %b\n"
    max_gap
    (storm_config ~shed_policy:S.Shed_largest_quota).S.starvation_bound
    (max_gap <= (storm_config ~shed_policy:S.Shed_largest_quota).S.starvation_bound);
  Printf.printf "survivor rows invariant under shed/timed-out peers (%d survivors): %b\n"
    (List.length survivor_arrivals) survivors_invariant;
  Printf.printf "served non-LIMIT rows match the full-scan oracle: %b\n" served_correct;
  Printf.printf "every exit structured (shed/timed-out never absorb): %b\n"
    structured_exits;
  Printf.printf "timed-out sessions keep their partial rows: %b\n" partial_rows_kept;
  Printf.printf "equal seeds and configs give byte-identical reports: %b\n" deterministic

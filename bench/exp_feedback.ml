(* ROADMAP item 1 / DESIGN.md §13 — feedback-driven estimation.

   The paper (§5) pre-orders indexes by the outcomes of previous runs;
   this experiment closes the same loop for the estimates themselves.
   A fixed workload of equality/range conjunctions over the Zipf-skewed
   ORDERS table is replayed for several generations with a positive
   feedback learning rate: every completed scan teaches the table's
   feedback store its true range cardinality, and later generations
   plan with the corrected estimates.

   Claims checked:
   - rows and their order are invariant with feedback on vs off, every
     query, every generation (estimates steer cost, never results);
   - the first query of generation 1 reproduces the uncorrected
     baseline trace exactly (the store is empty until the first
     close; later gen-1 queries may already learn from earlier ones);
   - the estimate-vs-actual error histogram's mean shrinks strictly
     from generation 1 to generation N;
   - at least one competition switch point moves (scan order or
     discard decisions change) with a strict cost improvement;
   - with the loop disabled (default config) the store stays empty;
   - everything is deterministic in cost units: an independent rerun
     reproduces every generation's error and cost exactly. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module M = Rdb_util.Metrics
module T = Rdb_exec.Trace
module Datasets = Rdb_workload.Datasets

let name = "feedback"

let description =
  "feedback loop: observed cardinalities correct future estimates across generations"

let generations = 5
let rate = 0.5

(* SENSORS ranges (A uniform, B = A ± 200): bounded BETWEEN
   conjunctions over A_IDX and B_IDX are the inexact high-split
   descents whose estimates wander by several x (bench -e fig5), and
   both indexes are selective enough that Jscan scans them to
   completion — each completed walk is one feedback observation.
   The two range widths are deliberately close in several queries, so
   a raw misestimate can invert the scan order that the true
   cardinalities dictate; correction restores it. *)
let workload =
  let open Predicate in
  let q alo ahi blo bhi =
    ( Printf.sprintf "A %d-%d & B %d-%d" alo ahi blo bhi,
      And
        [
          between "A" (Value.int alo) (Value.int ahi);
          between "B" (Value.int blo) (Value.int bhi);
        ] )
  in
  [
    q 2000 2599 2000 2499;
    q 3000 3499 2950 3549;
    q 1000 1799 1100 1899;
    q 5000 5399 5050 5449;
    q 7000 7999 7100 7899;
    q 4000 4299 3950 4349;
  ]

let mk_db () =
  let db = Datasets.fresh_db ~pool_capacity:128 () in
  let table = Datasets.sensors ~rows:40_000 db in
  (db, table)

(* The competition decisions a generation took, per query: scan order,
   discards, stop/switch events.  A changed signature is a moved
   switch point. *)
let switch_signature trace =
  List.filter_map
    (function
      | T.Scan_started { index } -> Some ("start " ^ index)
      | T.Scan_discarded { index; _ } -> Some ("discard " ^ index)
      | T.Simultaneous_winner { index } -> Some ("winner " ^ index)
      | T.Foreground_stopped _ -> Some "fg-stop"
      | T.Background_stopped _ -> Some "bg-stop"
      | T.Use_tscan _ -> Some "tscan"
      | _ -> None)
    trace

type gen_result = {
  rows : Row.t list list;  (** per query, in delivery order *)
  costs : float list;  (** per query *)
  sigs : string list list;  (** per query switch signature *)
  traces : T.event list list;  (** per query full trace *)
  mean_err : float;  (** mean estimate-vs-actual error factor *)
  err_count : int;  (** (estimate, actual) pairs behind it *)
}

(* One full pass over the workload.  The pool is flushed before every
   query so per-query costs compare across generations without cache
   interference. *)
let run_generation db table ~feedback_rate =
  let m = M.create () in
  let config = { R.default_config with feedback_rate; metrics = Some m } in
  let per_query =
    List.map
      (fun (_, pred) ->
        Bench_common.flush_pool db;
        let rows, (s : R.summary) = R.run ~config table (R.request pred) in
        (rows, s.R.total_cost, s.R.trace))
      workload
  in
  let h = M.histogram m "retrieval.estimate_error" in
  let count = M.histogram_count h in
  {
    rows = List.map (fun (r, _, _) -> r) per_query;
    costs = List.map (fun (_, c, _) -> c) per_query;
    sigs = List.map (fun (_, _, t) -> switch_signature t) per_query;
    traces = List.map (fun (_, _, t) -> t) per_query;
    mean_err = (if count = 0 then 0.0 else M.histogram_sum h /. float_of_int count);
    err_count = count;
  }

let total l = List.fold_left ( +. ) 0.0 l

let run () =
  Bench_common.section
    "Experiment feedback — observed cardinalities correct future estimates (§5 closed loop)";
  let db_off, t_off = mk_db () in
  let off = run_generation db_off t_off ~feedback_rate:0.0 in
  let run_trained () =
    let db_fb, t_fb = mk_db () in
    let gens =
      List.init generations (fun _ -> run_generation db_fb t_fb ~feedback_rate:rate)
    in
    (gens, Rdb_engine.Feedback.observations (Table.feedback t_fb))
  in
  let gens, observations = run_trained () in
  let first = List.hd gens and last = List.nth gens (generations - 1) in
  Printf.printf "SENSORS: %d rows; %d queries/generation; %d generations at rate %.2f\n\n"
    (Table.row_count t_off) (List.length workload) generations rate;
  Bench_common.table
    ~header:[ "generation"; "mean est error"; "err pairs"; "workload cost" ]
    (List.mapi
       (fun i g ->
         [
           string_of_int (i + 1);
           Bench_common.f3 g.mean_err;
           string_of_int g.err_count;
           Bench_common.f1 (total g.costs);
         ])
       gens);
  Printf.printf "\nuncorrected baseline: mean est error %.3f, workload cost %.1f\n"
    off.mean_err (total off.costs);
  (* What each descent said vs what the scans found, baseline vs
     trained. *)
  Bench_common.subsection "estimates vs actuals (baseline, then last generation)";
  let estimate_lines trace =
    let completed =
      List.filter_map
        (function T.Scan_completed { index; scanned; _ } -> Some (index, scanned) | _ -> None)
        trace
    in
    List.filter_map
      (function
        | T.Estimated { index; estimate; exact; _ } ->
            let actual =
              match List.assoc_opt index completed with
              | Some n -> string_of_int n
              | None -> "-"
            in
            Some
              (Printf.sprintf "%s ~%.0f%s actual %s" index estimate
                 (if exact then " (exact)" else "")
                 actual)
        | _ -> None)
      trace
  in
  List.iteri
    (fun i (label, _) ->
      Printf.printf "%-22s off: %s\n%-22s gen%d: %s\n" label
        (String.concat "; " (estimate_lines (List.nth off.traces i)))
        "" generations
        (String.concat "; " (estimate_lines (List.nth last.traces i))))
    workload;
  (* Per-query deltas between the uncorrected baseline and the last
     generation. *)
  Bench_common.subsection "per-query: baseline vs trained (last generation)";
  Bench_common.table
    ~header:[ "query"; "cost off"; "cost trained"; "switch points moved" ]
    (List.map2
       (fun (label, _) (co, (ct, (so, st))) ->
         [ label; Bench_common.f1 co; Bench_common.f1 ct;
           (if so <> st then "yes" else "no") ])
       workload
       (List.combine off.costs
          (List.combine last.costs (List.combine off.sigs last.sigs))));
  let moved_and_cheaper =
    List.exists2
      (fun (co, so) (ct, st) -> so <> st && ct < co)
      (List.combine off.costs off.sigs)
      (List.combine last.costs last.sigs)
  in
  let rows_invariant =
    List.for_all (fun g -> g.rows = off.rows) gens
  in
  (* Determinism: an independent training run (fresh db, same seed)
     reproduces every generation exactly. *)
  let gens', observations' = run_trained () in
  let deterministic =
    observations = observations'
    && List.for_all2
         (fun a b -> a.costs = b.costs && a.mean_err = b.mean_err)
         gens gens'
  in
  Bench_common.metric "feedback.err_gen1" first.mean_err;
  Bench_common.metric ~dir:Bench_common.Lower_better "feedback.err_final" last.mean_err;
  Bench_common.metric "feedback.cost_off" (total off.costs);
  Bench_common.metric ~dir:Bench_common.Lower_better "feedback.cost_final"
    (total last.costs);
  Bench_common.metric "feedback.observations" (float_of_int observations);
  Bench_common.subsection "paper checkpoints";
  Printf.printf "rows and order invariant with feedback on vs off, all generations: %b\n"
    rows_invariant;
  Printf.printf
    "first query of generation 1 reproduces the uncorrected baseline exactly: %b\n"
    (List.hd first.costs = List.hd off.costs
    && List.hd first.rows = List.hd off.rows
    && List.hd first.traces = List.hd off.traces);
  Printf.printf "mean estimate error shrinks strictly (gen %d %.3f < gen 1 %.3f): %b\n"
    generations last.mean_err first.mean_err
    (last.mean_err < first.mean_err && last.err_count > 0);
  Printf.printf "a competition switch point moved with a strict cost improvement: %b\n"
    moved_and_cheaper;
  Printf.printf "feedback is config-gated: store empty after the off run, taught after training: %b\n"
    (Rdb_engine.Feedback.observations (Table.feedback t_off) = 0 && observations > 0);
  Printf.printf "deterministic: an independent rerun reproduces every generation exactly: %b\n"
    deterministic

(* §3(b) — clustering uncertainty, measured.

   "Some indexes or index portions can have their sequence coincided to
   a various degree with physical record locations.  This clustering
   effect may not be known or may be hard to detect, so it adds a
   significant uncertainty to the cost estimation."

   ORDERS is inserted in DAY order: DAY_IDX is clustered, PRICE_IDX is
   not.  We measure the engine's sampled clustering factor, run real
   Fscans of equal entry counts through both indexes on a cold cache,
   and compare against the clustering-aware cost model. *)

open Rdb_data
open Rdb_engine
open Rdb_exec

let name = "clustering"
let description = "§3(b): measured clustering factors and their effect on Fscan cost"

let fscan_cost table idx_name pred =
  let idx = Option.get (Table.find_index table idx_name) in
  let e = Range_extract.for_index pred idx in
  let meter = Rdb_storage.Cost.create () in
  let est =
    (Rdb_btree.Estimate.ranges idx.Table.tree meter e.Range_extract.ranges)
      .Rdb_btree.Estimate.estimate
  in
  let cand =
    {
      Scan.idx;
      ranges = e.Range_extract.ranges;
      residual = e.Range_extract.residual;
      est;
      est_exact = false;
    }
  in
  let run_meter = Rdb_storage.Cost.create () in
  let fs = Fscan.create table run_meter cand ~restriction:pred in
  let rows = ref 0 in
  let rec drain () =
    match Fscan.step fs with
    | Scan.Deliver _ ->
        incr rows;
        drain ()
    | Scan.Continue -> drain ()
    | Scan.Done -> ()
    | Scan.Failed f -> raise (Rdb_storage.Fault.Injected f)
  in
  drain ();
  (!rows, Rdb_storage.Cost.total run_meter, est)

let run () =
  Bench_common.section "Experiment clustering — §3(b) clustering effects on Fscan";
  let db = Database.create ~pool_capacity:96 () in
  let orders = Rdb_workload.Datasets.orders ~rows:50_000 db in
  let factor n =
    Table.clustering_factor orders (Option.get (Table.find_index orders n))
  in
  Printf.printf "measured clustering factors: DAY_IDX %.3f, PRICE_IDX %.3f, CUST_IDX %.3f\n\n"
    (factor "DAY_IDX") (factor "PRICE_IDX") (factor "CUST_IDX");
  (* Ranges tuned to similar entry counts on both indexes. *)
  let cases =
    [
      ("DAY_IDX", Predicate.between "DAY" (Value.int 100) (Value.int 114), "DAY in [100,114]");
      ( "PRICE_IDX",
        Predicate.between "PRICE" (Value.int 1000) (Value.int 1204),
        "PRICE in [1000,1204]" );
      ("DAY_IDX", Predicate.between "DAY" (Value.int 50) (Value.int 52), "DAY in [50,52]");
      ( "PRICE_IDX",
        Predicate.between "PRICE" (Value.int 3000) (Value.int 3040),
        "PRICE in [3000,3040]" );
    ]
  in
  let rows =
    List.map
      (fun (idx_name, pred, label) ->
        Bench_common.flush_pool db;
        let n, measured, est = fscan_cost orders idx_name pred in
        let idx = Option.get (Table.find_index orders idx_name) in
        let predicted =
          Cost_model.index_scan_cost idx ~entries:est
          +. Cost_model.key_order_fetch_cost orders idx ~entries:est
        in
        [
          label;
          idx_name;
          string_of_int n;
          Bench_common.f1 measured;
          Bench_common.f1 predicted;
        ])
      cases
  in
  Bench_common.table
    ~header:[ "range"; "index"; "rows"; "measured Fscan cost"; "model prediction" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  Bench_common.flush_pool db;
  let _, clustered, _ =
    fscan_cost orders "DAY_IDX" (Predicate.between "DAY" (Value.int 100) (Value.int 114))
  in
  Bench_common.flush_pool db;
  let n2, unclustered, _ =
    fscan_cost orders "PRICE_IDX"
      (Predicate.between "PRICE" (Value.int 1000) (Value.int 1204))
  in
  ignore n2;
  Printf.printf
    "same-size retrieval: clustered %.1f vs unclustered %.1f — %.0fx difference: %b\n"
    clustered unclustered (unclustered /. clustered)
    (unclustered > 3.0 *. clustered);
  Printf.printf "clustering factor separates the two indexes (>0.9 vs <0.3): %b\n"
    (factor "DAY_IDX" > 0.9 && factor "PRICE_IDX" < 0.3)

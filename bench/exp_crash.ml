(* Crash–restart survival (DESIGN.md §15).

   FoundationDB-style deterministic crash injection against the epoch
   supervisor: cost-clocked crash points kill the scheduler at a grant
   boundary, losing every piece of volatile state (pool residency,
   cursors, scheduler queues, health counters, feedback, metrics)
   while durable state (heap pages, committed trees, the manifest)
   survives; restart recovery discards orphan side trees, restores
   quarantine verdicts, resubmits rebuilds, and the journal reissues
   every lost submission.  Four phases:

   1. reissue identity: a query mix crashed mid-plan (early grant) and
      mid-scan (cost deadline) still serves, per submission, exactly
      the rows of a never-crashed twin run — crashes lose cost and
      progress, never answers;
   2. crash mid-rebuild: an index is quarantined by a persistent fault
      (the verdict hits the manifest), its online rebuild is killed
      two grants in — restart finds the orphan side tree, discards it,
      restores the quarantine with its escalation count, resubmits the
      rebuild, and the structure ends Healthy with a clean manifest;
   3. storm under crashes: a shedding/deadline storm crossed with a
      seeded crash schedule keeps the cross-epoch ledger exact —
      served + shed + timed out + unresolved = submitted — and the
      supervisor terminates because the crash schedule is finite;
   4. zero-crash identity: with no crash points the supervisor's
      single epoch is byte-identical to running the scheduler
      directly — the crash machinery costs nothing when unused. *)

open Rdb_data
open Rdb_engine
open Rdb_storage
module Btree = Rdb_btree.Btree
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Recovery = Rdb_core.Recovery
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic

let name = "crash"

let description =
  "crash–restart survival: reissued rows identical, orphan rebuilds recovered, \
   exact cross-epoch accounting"

(* Storm-phase session count; the nightly CI job exports
   RDB_CRASH_SCALE=1024 to cross the crash schedule with a full-size
   storm. *)
let storm_scale =
  match Sys.getenv_opt "RDB_CRASH_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 192)
  | None -> 192

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_strings rows = List.map Row.to_string rows
let multiset rows = List.sort compare (row_strings rows)

let oracle table pred =
  let pred = Predicate.simplify pred in
  let m = Cost.create () in
  let out = ref [] in
  Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

let build () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let table = Datasets.orders ~rows:6000 db in
  (db, table)

let cfg = { S.default_config with S.max_inflight = 2; S.quantum = 2.0 }

let mix_subs table specs =
  List.map
    (fun (sp : Traffic.spec) ->
      Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
        (request_of sp))
    specs

let outcome_to_string = function
  | Some (S.Served) -> "served"
  | Some (S.Timed_out _) -> "timed out"
  | Some (S.Shed _) -> "shed"
  | Some (S.Lost _) -> "lost"
  | None -> "unresolved"

let run () =
  Bench_common.section
    "Experiment crash — crash–restart survival: deterministic crashes, durable \
     manifest, restart recovery";

  (* --- phase 1: reissue identity ------------------------------------ *)
  let specs = Traffic.orders_mix ~seed:5 ~count:10 () in
  let db_calm, table_calm = build () in
  let calm = Recovery.run ~config:cfg db_calm (mix_subs table_calm specs) in
  let db_crash, table_crash = build () in
  let crashed =
    Recovery.run ~config:cfg
      ~crashes:[ [ S.Crash_at_grant 4 ]; [ S.Crash_at_cost 30.0 ] ]
      db_crash
      (mix_subs table_crash specs)
  in
  Bench_common.subsection
    "phase 1 — the same 10 queries calm vs crashed mid-plan (grant 4) and \
     mid-scan (cost 30.0)";
  Bench_common.table
    ~header:[ "submission"; "calm"; "crashed"; "rows"; "lost" ]
    (List.map2
       (fun (a : Recovery.final) (b : Recovery.final) ->
         [
           a.Recovery.f_label;
           outcome_to_string a.Recovery.f_outcome;
           outcome_to_string b.Recovery.f_outcome;
           string_of_int (List.length b.Recovery.f_rows);
           string_of_int b.Recovery.f_lost_count;
         ])
       calm.Recovery.r_finals crashed.Recovery.r_finals);
  Printf.printf "epochs %d, crashes %d, reissues %d\n"
    (List.length crashed.Recovery.r_epochs)
    crashed.Recovery.r_crashes crashed.Recovery.r_reissues;
  let finals_identical =
    List.for_all2
      (fun (a : Recovery.final) (b : Recovery.final) ->
        a.Recovery.f_label = b.Recovery.f_label
        && a.Recovery.f_outcome = b.Recovery.f_outcome
        && row_strings a.Recovery.f_rows = row_strings b.Recovery.f_rows)
      calm.Recovery.r_finals crashed.Recovery.r_finals
  in
  let ledger_exact (r : Recovery.report) =
    r.Recovery.r_served + r.Recovery.r_shed + r.Recovery.r_timed_out
    + r.Recovery.r_unresolved
    = r.Recovery.r_submitted
  in

  (* --- phase 2: crash mid-rebuild ----------------------------------- *)
  (* A persistent fault on CUST_IDX's committed tree file quarantines
     the index (the verdict is recorded durably in the manifest); the
     online rebuild reads the heap and writes a *fresh* file, so it
     can succeed with the injector still live — unless the crash kills
     it two grants in, leaving an orphan side tree for restart
     recovery to find. *)
  let db2, table2 = build () in
  let pool2 = Database.pool db2 in
  let manifest2 = Buffer_pool.manifest pool2 in
  let cust_file =
    Btree.file_id (Option.get (Table.find_index table2 "CUST_IDX")).Table.tree
  in
  Buffer_pool.flush pool2;
  Buffer_pool.set_injector pool2
    (Some (Fault.create (Fault.plan ~persistent_files:[ cust_file ] ~seed:8 ())));
  let chaos_pred =
    let open Predicate in
    And [ "CUSTOMER" <% Value.int 100; "DAY" <% Value.int 100 ]
  in
  ignore (R.run table2 (R.request ~explicit_goal:Goal.Total_time chaos_pred));
  let verdict_recorded = Manifest.quarantines manifest2 <> [] in
  let quarantined_before =
    Health.state (Table.health table2) "CUST_IDX" = Health.Quarantined
  in
  let late =
    List.map
      (fun (sp : Traffic.spec) ->
        Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ~arrive_at:100 table2 (request_of sp))
      (Traffic.orders_mix ~seed:7 ~count:3 ())
  in
  let rep2 =
    Recovery.run ~config:cfg
      ~crashes:[ [ S.Crash_at_grant 2 ] ]
      ~repairs:[ (table2, "CUST_IDX") ]
      db2 late
  in
  Buffer_pool.set_injector pool2 None;
  Bench_common.subsection
    "phase 2 — quarantined CUST_IDX, rebuild crashed at grant 2, recovered on \
     restart";
  let actions2 =
    match (List.hd rep2.Recovery.r_epochs).Recovery.ep_actions with
    | Some a -> a
    | None -> { Recovery.act_orphans = []; act_requarantined = []; act_rebuilds = [] }
  in
  List.iter
    (fun (t, i, f) ->
      Printf.printf "orphan discarded: %s.%s (side file %d)\n" t i f)
    actions2.Recovery.act_orphans;
  List.iter
    (fun (t, s, e) ->
      Printf.printf "quarantine restored: %s.%s (escalations %d)\n" t s e)
    actions2.Recovery.act_requarantined;
  List.iter
    (fun (t, i) -> Printf.printf "rebuild resubmitted: %s.%s\n" t i)
    actions2.Recovery.act_rebuilds;
  let orphan_found =
    List.exists
      (fun (t, i, _) -> t = "ORDERS" && i = "CUST_IDX")
      actions2.Recovery.act_orphans
  in
  let verdict_restored =
    List.exists
      (fun (t, s, _) -> t = "ORDERS" && s = "CUST_IDX")
      actions2.Recovery.act_requarantined
  in
  let rebuilt_clean =
    Manifest.orphans manifest2 = []
    && Manifest.quarantines manifest2 = []
    && Health.state (Table.health table2) "CUST_IDX" = Health.Healthy
    && rep2.Recovery.r_unresolved = 0
  in
  Buffer_pool.flush pool2;
  let rows_after, after_summary =
    R.run table2 (R.request ~explicit_goal:Goal.Total_time chaos_pred)
  in
  let post_recovery_correct =
    multiset rows_after = multiset (oracle table2 chaos_pred)
    && after_summary.R.status = R.Completed
  in
  Printf.printf "post-recovery query: %d rows, status %s\n"
    (List.length rows_after)
    (R.status_to_string after_summary.R.status);

  (* --- phase 3: storm under crashes --------------------------------- *)
  let db3, table3 = build () in
  let arrivals = Traffic.storm ~seed:4242 ~count:storm_scale () in
  let storm_subs =
    List.map
      (fun (a : Traffic.arrival) ->
        let sp = a.Traffic.spec in
        Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ?quota:a.Traffic.quota ?deadline:a.Traffic.deadline
          ~arrive_at:a.Traffic.arrive_at table3 (request_of sp))
      arrivals
  in
  let storm_cfg =
    {
      S.default_config with
      S.max_inflight = 4;
      quantum = 6.0;
      max_queue = 3;
      shed_policy = S.Shed_largest_quota;
      pressure_threshold = 4;
    }
  in
  let storm_crashes = Recovery.seeded_crashes ~seed:99 ~epochs:2 ~max_tick:60 in
  let storm = Recovery.run ~config:storm_cfg ~crashes:storm_crashes db3 storm_subs in
  Bench_common.subsection
    (Printf.sprintf
       "phase 3 — %d-session shedding storm crossed with a seeded 2-epoch crash \
        schedule"
       storm_scale);
  Printf.printf
    "ledger: %d served + %d shed + %d timed out + %d unresolved = %d submitted \
     (%d crashes, %d reissues, %d epochs)\n"
    storm.Recovery.r_served storm.Recovery.r_shed storm.Recovery.r_timed_out
    storm.Recovery.r_unresolved storm.Recovery.r_submitted storm.Recovery.r_crashes
    storm.Recovery.r_reissues
    (List.length storm.Recovery.r_epochs);

  (* --- phase 4: zero-crash identity --------------------------------- *)
  let specs4 = Traffic.orders_mix ~seed:13 ~count:6 () in
  let db4, table4 = build () in
  Buffer_pool.flush (Database.pool db4);
  let sup4 = Recovery.run ~config:cfg db4 (mix_subs table4 specs4) in
  let db5, table5 = build () in
  Buffer_pool.flush (Database.pool db5);
  let sched5 = S.create ~config:cfg db5 in
  List.iter
    (fun (sp : Traffic.spec) ->
      ignore
        (S.submit sched5 ~label:sp.Traffic.label ?limit:sp.Traffic.limit table5
           (request_of sp)))
    specs4;
  let direct5 = S.run sched5 in
  let zero_crash_identical =
    S.report_to_string (List.hd sup4.Recovery.r_epochs).Recovery.ep_report
    = S.report_to_string direct5
  in

  Bench_common.metric "crash_crashes"
    (float_of_int (crashed.Recovery.r_crashes + storm.Recovery.r_crashes));
  Bench_common.metric ~dir:Bench_common.Lower_better "crash_reissues"
    (float_of_int crashed.Recovery.r_reissues);
  Bench_common.metric ~dir:Bench_common.Lower_better "crash_epochs"
    (float_of_int (List.length crashed.Recovery.r_epochs));
  Bench_common.metric ~dir:Bench_common.Higher_better "crash_storm_served"
    (float_of_int storm.Recovery.r_served);
  Bench_common.metric ~dir:Bench_common.Lower_better "crash_storm_reissues"
    (float_of_int storm.Recovery.r_reissues);

  (* --- checkpoints ---------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  Printf.printf "both scheduled crashes fired (mid-plan and mid-scan): %b\n"
    (crashed.Recovery.r_crashes = 2 && crashed.Recovery.r_reissues >= 2);
  Printf.printf
    "reissued rows byte-identical to the never-crashed run (%d submissions): %b\n"
    (List.length specs) finals_identical;
  Printf.printf
    "exact cross-epoch accounting with nothing unresolved: %b\n"
    (ledger_exact crashed && crashed.Recovery.r_unresolved = 0 && ledger_exact calm);
  Printf.printf
    "persistent fault quarantined CUST_IDX and the verdict reached the manifest: \
     %b\n"
    (quarantined_before && verdict_recorded);
  Printf.printf "crash mid-rebuild left a detectable orphan, discarded on restart: %b\n"
    orphan_found;
  Printf.printf "quarantine restored from the durable verdict on restart: %b\n"
    verdict_restored;
  Printf.printf
    "resubmitted rebuild completed: no orphans, no verdicts, CUST_IDX healthy: %b\n"
    rebuilt_clean;
  Printf.printf "post-recovery rows match the full-scan oracle: %b\n"
    post_recovery_correct;
  Printf.printf
    "storm ledger exact under crashes (served+shed+timed out+unresolved = \
     submitted): %b\n"
    (ledger_exact storm && storm.Recovery.r_unresolved = 0);
  Printf.printf
    "storm exercised every exit (shed %d > 0, timed out %d > 0, crashes %d > 0): %b\n"
    storm.Recovery.r_shed storm.Recovery.r_timed_out storm.Recovery.r_crashes
    (storm.Recovery.r_shed > 0 && storm.Recovery.r_timed_out > 0
    && storm.Recovery.r_crashes > 0);
  Printf.printf "finite crash schedule: supervisor terminated (%d epochs <= %d): %b\n"
    (List.length storm.Recovery.r_epochs)
    (List.length storm_crashes + 1)
    (List.length storm.Recovery.r_epochs <= List.length storm_crashes + 1);
  Printf.printf "zero-crash supervisor byte-identical to the scheduler: %b\n"
    zero_crash_identical

(* Multi-query session scheduler under one shared buffer pool.

   The paper's competition model interleaves scan machines by cost
   quanta inside one query; Rdb/VMS ran that machinery under
   concurrent sessions sharing one page buffer.  This experiment
   reproduces the pressure: N queries driven by round-robin cost
   quanta against one pool, with admission control and a starvation
   bound.  Measured:

   - row-set invariance: any (quantum, max-inflight) interleaving
     returns the same rows per query (LIMIT queries, set-nondeterministic
     by SQL semantics, are compared by count and oracle containment);
   - bounded overhead: concurrent total cost vs the serial (one
     in-flight) schedule through the same scheduler;
   - no starvation at max admission; queue waits under tight admission;
   - cost-quota-aware admission ordering;
   - determinism: equal seeds/configs give byte-identical reports. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic

let name = "concurrency"

let description =
  "session scheduler: rows invariant under interleaving, bounded overhead, no starvation"

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_key row = Value.to_string (Row.get row 0)
let multiset rows = List.sort compare (List.map row_key rows)

let oracle table (sp : Traffic.spec) =
  let pred = Predicate.simplify (Predicate.bind sp.Traffic.pred sp.Traffic.env) in
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

(* Run the whole spec list through one scheduler; return the report and
   per-spec delivered rows. *)
let run_schedule ?(record_events = false) db table specs ~max_inflight ~quantum =
  Bench_common.flush_pool db;
  let cfg = { S.default_config with S.max_inflight; quantum; record_events } in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun sp ->
        S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
          (request_of sp))
      specs
  in
  let report = S.run sched in
  (report, List.map (fun id -> S.rows_of sched id) ids)

(* A LIMIT query without ORDER BY may deliver any qualifying subset of
   the right size; everything else must match the oracle multiset. *)
let rows_ok (sp : Traffic.spec) ~oracle_rows rows =
  let full = multiset oracle_rows in
  match sp.Traffic.limit with
  | None -> multiset rows = full
  | Some n ->
      List.length rows = min n (List.length full)
      && List.for_all (fun r -> List.mem (row_key r) full) rows

let run () =
  Bench_common.section
    "Experiment concurrency — multi-query scheduler over a shared pool";
  (* Working set deliberately larger than the pool: interleavings now
     differ through cache interference (§3c), which is the effect a
     multi-query scheduler has to keep bounded. *)
  let db = Datasets.fresh_db ~pool_capacity:96 () in
  let table = Datasets.orders ~rows:24000 db in
  let specs = Traffic.orders_mix ~seed:77 ~count:10 () in
  let oracles = List.map (fun sp -> oracle table sp) specs in

  (* --- serial baseline (same machinery, one in-flight) ------------- *)
  let serial_report, serial_rows = run_schedule db table specs ~max_inflight:1 ~quantum:50.0 in

  (* --- the headline concurrent run --------------------------------- *)
  let conc_report, conc_rows = run_schedule db table specs ~max_inflight:4 ~quantum:50.0 in
  Bench_common.subsection "per-session stats (max_inflight=4, quantum=50)";
  print_string (S.report_to_string conc_report);

  (* --- interleaving sweep ------------------------------------------ *)
  let sweep =
    List.concat_map
      (fun quantum ->
        List.map
          (fun max_inflight ->
            let report, rows = run_schedule db table specs ~max_inflight ~quantum in
            (quantum, max_inflight, report, rows))
          [ 1; 2; 4; 10 ])
      [ 5.0; 50.0; 400.0 ]
  in
  Bench_common.subsection "interleaving sweep (quantum x max in-flight)";
  Bench_common.table
    ~header:[ "quantum"; "inflight"; "grants"; "total cost"; "hit rate"; "max gap" ]
    (List.map
       (fun (q, mi, (r : S.report), _) ->
         let max_gap =
           List.fold_left (fun acc s -> max acc s.S.s_max_gap) 0 r.S.sessions
         in
         [
           Bench_common.f1 q;
           string_of_int mi;
           string_of_int r.S.pool.S.p_grants;
           Bench_common.f1 r.S.pool.S.p_total_cost;
           Bench_common.f3 r.S.pool.S.p_hit_rate;
           string_of_int max_gap;
         ])
       sweep);

  (* --- quota-aware admission --------------------------------------- *)
  (* Tight admission (1 slot): a late-arriving query that declares a
     cost quota is admitted ahead of earlier unbounded arrivals. *)
  let quota_cfg = { R.default_config with R.cost_quota = Some 1.0e9 } in
  Bench_common.flush_pool db;
  let sched =
    S.create ~config:{ S.default_config with S.max_inflight = 1; record_events = true } db
  in
  let subs =
    List.mapi
      (fun i sp ->
        let config = if i = List.length specs - 1 then Some quota_cfg else None in
        S.submit sched ~label:sp.Traffic.label ?config ?limit:sp.Traffic.limit table
          (request_of sp))
      specs
  in
  let quota_id = List.nth subs (List.length subs - 1) in
  let quota_report = S.run sched in
  let admission_order =
    List.filter_map
      (function S.Admitted { id; _ } -> Some id | _ -> None)
      quota_report.S.events
  in
  (* All queries are queued before [run]; with one slot, the bounded
     (quota-declaring) query is admitted first despite arriving last. *)
  let quota_jumped =
    match admission_order with first :: _ -> first = quota_id | [] -> false
  in

  (* --- determinism -------------------------------------------------- *)
  let rep_a, _ = run_schedule ~record_events:true db table specs ~max_inflight:4 ~quantum:50.0 in
  let rep_b, _ = run_schedule ~record_events:true db table specs ~max_inflight:4 ~quantum:50.0 in
  let deterministic = S.report_to_string rep_a = S.report_to_string rep_b in

  (* --- starvation at max admission ---------------------------------- *)
  let all_in, all_rows = run_schedule db table specs ~max_inflight:(List.length specs) ~quantum:20.0 in
  let max_gap_all =
    List.fold_left (fun acc s -> max acc s.S.s_max_gap) 0 all_in.S.sessions
  in

  Bench_common.subsection "serial vs concurrent";
  let overhead = conc_report.S.pool.S.p_total_cost /. serial_report.S.pool.S.p_total_cost in
  Bench_common.table
    ~header:[ "schedule"; "grants"; "total cost"; "hit rate" ]
    [
      [
        "serial (1 in-flight)";
        string_of_int serial_report.S.pool.S.p_grants;
        Bench_common.f1 serial_report.S.pool.S.p_total_cost;
        Bench_common.f3 serial_report.S.pool.S.p_hit_rate;
      ];
      [
        "concurrent (4 in-flight)";
        string_of_int conc_report.S.pool.S.p_grants;
        Bench_common.f1 conc_report.S.pool.S.p_total_cost;
        Bench_common.f3 conc_report.S.pool.S.p_hit_rate;
      ];
    ];
  Printf.printf "concurrency overhead factor: %.2fx\n" overhead;
  Bench_common.metric ~dir:Bench_common.Lower_better "serial_total_cost"
    serial_report.S.pool.S.p_total_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "concurrent_total_cost"
    conc_report.S.pool.S.p_total_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "concurrency_overhead_factor"
    overhead;
  Bench_common.metric ~dir:Bench_common.Higher_better "concurrent_hit_rate"
    conc_report.S.pool.S.p_hit_rate;
  Bench_common.metric "concurrent_grants"
    (float_of_int conc_report.S.pool.S.p_grants);
  Bench_common.metric "max_gap_at_full_admission" (float_of_int max_gap_all);

  (* --- checkpoints -------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  let invariant_everywhere =
    List.for_all
      (fun (_, _, _, rows) ->
        List.for_all2
          (fun (sp, oracle_rows) rows -> rows_ok sp ~oracle_rows rows)
          (List.combine specs oracles)
          rows)
      ((50.0, 1, serial_report, serial_rows)
      :: (50.0, 4, conc_report, conc_rows)
      :: (20.0, List.length specs, all_in, all_rows)
      :: sweep)
  in
  Printf.printf "row sets invariant under every interleaving: %b\n" invariant_everywhere;
  Printf.printf "concurrent total cost within 3x of serial (%.2fx): %b\n" overhead
    (overhead <= 3.0);
  Printf.printf "no starvation at max admission (max gap %d <= bound %d): %b\n"
    max_gap_all S.default_config.S.starvation_bound
    (max_gap_all <= S.default_config.S.starvation_bound
    && List.for_all
         (fun s ->
           match s.S.s_summary with
           | Some summary -> summary.R.status = R.Completed
           | None -> false)
         all_in.S.sessions);
  Printf.printf "admission control holds (max in-flight seen %d <= 4): %b\n"
    conc_report.S.pool.S.p_max_inflight_seen
    (conc_report.S.pool.S.p_max_inflight_seen <= 4);
  Printf.printf "cost-quota-aware admission (bounded query jumped the queue): %b\n"
    quota_jumped;
  Printf.printf "equal seeds and configs give byte-identical reports: %b\n" deterministic;
  let waits_visible =
    List.exists (fun s -> s.S.s_queue_wait > 0) conc_report.S.sessions
  in
  Printf.printf "queue waits observable under tight admission: %b\n" waits_visible

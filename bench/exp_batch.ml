(* Batch-quantum invariance — the unified cursor layer (DESIGN.md §11).

   Every scan strategy now speaks `Scan.cursor`: `next_batch ~budget`
   delivers rows until the charged cost crosses the budget.  The budget
   is a pure amortization knob: it must never change which rows come
   back, in what order, at what total charged cost, or which trace /
   fault events fire — only how often the drive loop crosses the
   dispatch boundary, and therefore how many buffer-pool hash probes
   the heap-fetch cache can elide via `Buffer_pool.retouch`.

   This experiment pins both halves of that contract on a clustered
   cold-pool fetch scan (the hot loop the cache targets): identical
   results across budgets {0, 1, 7, 64}, and `pool.lookups` dropping
   materially at budget 64 vs the row-at-a-time protocol. *)

open Rdb_data
open Rdb_engine
open Rdb_storage
module R = Rdb_core.Retrieval
module G = Rdb_core.Goal

let name = "batch"
let description = "batch-quantum cursors: results invariant, pool probes amortized"

let budgets = [ 0.0; 1.0; 7.0; 64.0 ]

(* One cold retrieval of ORDERS in DAY order (rows are inserted in DAY
   order, so the fetch scan walks the heap nearly page-by-page — the
   best case for the per-batch page cache).  [plan] installs a fresh
   fault injector per run so every budget faces the same schedule. *)
let run_once db table ~budget ~plan =
  Bench_common.flush_pool db;
  let pool = Database.pool db in
  Buffer_pool.set_injector pool (Option.map Fault.create plan);
  let lookups_before = Buffer_pool.lookups pool in
  let config = { R.default_config with R.batch_budget = budget } in
  let request =
    R.request ~explicit_goal:G.Fast_first ~order_by:[ "DAY" ]
      Predicate.(And [ ( >=% ) "DAY" (Value.int 10); ( <% ) "DAY" (Value.int 70) ])
  in
  let rows, summary = R.run ~config table request in
  Buffer_pool.set_injector pool None;
  (rows, summary, Buffer_pool.lookups pool - lookups_before)

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (fun y -> y = x) rest

let run () =
  Bench_common.section "Experiment batch — batch-quantum cursor invariance";
  let db = Rdb_workload.Datasets.fresh_db ~pool_capacity:512 () in
  let orders = Rdb_workload.Datasets.orders ~rows:12_000 db in

  (* --- clean runs across budgets --------------------------------- *)
  let clean = List.map (fun b -> (b, run_once db orders ~budget:b ~plan:None)) budgets in
  Bench_common.table
    ~header:[ "batch budget"; "rows"; "total cost"; "pool lookups" ]
    (List.map
       (fun (b, (rows, s, lookups)) ->
         [
           Bench_common.f1 b;
           string_of_int (List.length rows);
           Bench_common.f2 s.R.total_cost;
           string_of_int lookups;
         ])
       clean);
  let lookups_of b = let _, _, l = List.assoc b clean in l in
  let l1 = lookups_of 1.0 and l64 = lookups_of 64.0 in
  let drop_pct = 100.0 *. (1.0 -. (float_of_int l64 /. float_of_int (max 1 l1))) in

  (* --- the same sweep under transient read faults ----------------- *)
  let plan = Some (Fault.plan ~transient_read_rate:0.2 ~seed:417 ()) in
  let faulted = List.map (fun b -> (b, run_once db orders ~budget:b ~plan)) budgets in
  let retries (_, s, _) =
    List.length
      (List.filter (function Rdb_exec.Trace.Fault_retry _ -> true | _ -> false) s.R.trace)
  in
  Bench_common.subsection "with a 20% transient-read injector (same seed per budget)";
  Bench_common.table
    ~header:[ "batch budget"; "rows"; "total cost"; "fault retries" ]
    (List.map
       (fun (b, ((rows, s, _) as r)) ->
         [
           Bench_common.f1 b;
           string_of_int (List.length rows);
           Bench_common.f2 s.R.total_cost;
           string_of_int (retries r);
         ])
       faulted);

  let clean_rows = List.map (fun (_, (rows, _, _)) -> rows) clean in
  let clean_costs = List.map (fun (_, (_, s, _)) -> s.R.total_cost) clean in
  let clean_traces = List.map (fun (_, (_, s, _)) -> s.R.trace) clean in
  let faulted_rows = List.map (fun (_, (rows, _, _)) -> rows) faulted in
  let faulted_traces = List.map (fun (_, (_, s, _)) -> s.R.trace) faulted in

  Bench_common.metric "rows" (float_of_int (List.length (List.hd clean_rows)));
  Bench_common.metric "total_cost" (List.hd clean_costs);
  Bench_common.metric ~dir:Bench_common.Lower_better "lookups_budget1" (float_of_int l1);
  Bench_common.metric ~dir:Bench_common.Lower_better "lookups_budget64" (float_of_int l64);
  Bench_common.metric ~dir:Bench_common.Higher_better "lookups_drop_pct" drop_pct;

  Bench_common.subsection "paper checkpoints";
  Printf.printf "delivered rows and their order identical across budgets {0,1,7,64}: %b\n"
    (all_equal clean_rows);
  Printf.printf "total charged cost identical across budgets (%.2f): %b\n"
    (List.hd clean_costs) (all_equal clean_costs);
  Printf.printf "trace event sequence identical across budgets: %b\n" (all_equal clean_traces);
  Printf.printf "pool lookups drop >= 20%% at budget 64 vs 1 (%d -> %d, %.1f%%): %b\n" l1 l64
    drop_pct
    (float_of_int l64 <= 0.8 *. float_of_int l1);
  Printf.printf "under transient faults, rows still identical across budgets: %b\n"
    (all_equal faulted_rows);
  Printf.printf "fault/retry trace identical across budgets (retries = %d > 0): %b\n"
    (retries (List.hd (List.map snd faulted)))
    (all_equal faulted_traces && retries (List.hd (List.map snd faulted)) > 0)

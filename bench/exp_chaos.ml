(* Self-healing storage under chaos.

   PR 1 taught the engine to *survive* faults (quarantine, fallback,
   structured abort); this experiment proves the storage layer now
   *recovers* from them.  Two indexes are damaged at once — X_IDX's
   file goes persistently dead, a Y_IDX leaf is corrupted — while a
   transient-fault storm runs against the heap.  The phases:

   1. baseline: oracle row set and the index tactic on a healthy table;
   2. chaos queries: every retrieval still answers with the oracle rows
      (or aborts structurally); the health machine walks both indexes
      to Quarantined;
   3. consistency check: CHECK classifies both indexes damaged
      (unreadable), charging every probe through the buffer pool;
   4. online repair: two rebuild sessions admitted through the
      multi-query scheduler compete with foreground queries for cost
      quanta — background maintenance is scheduled, not privileged;
   5. recovery: with the faults gone and the rebuilt trees swapped in,
      the same query regains the baseline index tactic and every
      structure reports Healthy — quarantine was an exit, not an
      absorbing state. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage
module Btree = Rdb_btree.Btree
module R = Rdb_core.Retrieval
module S = Rdb_core.Session

let name = "chaos"

let description =
  "self-healing: quarantine under chaos, CHECK, online repair through the scheduler"

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

let pred =
  let open Predicate in
  And [ "X" <% Value.int 25; "Y" <% Value.int 450 ]

let row_key rows =
  List.sort compare (List.map (fun r -> Value.to_string (Row.get r 0)) rows)

let count_events p trace = List.length (List.filter p trace)

let run () =
  Bench_common.section
    "Experiment chaos — self-healing storage: quarantine, check, online repair";
  let db = Database.create ~pool_capacity:512 () in
  let pool = Database.pool db in
  let table = Database.create_table db ~page_bytes:1024 ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:23 in
  for i = 0 to 11999 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  let health = Table.health table in
  let state n = Health.state health n in

  (* --- phase 1: healthy baseline ---------------------------------- *)
  Buffer_pool.flush pool;
  let rows0, s0 = R.run table (R.request pred) in
  let base_key = row_key rows0 in
  Bench_common.subsection "phase 1 — healthy baseline";
  Bench_common.table
    ~header:[ "rows"; "tactic"; "total cost" ]
    [
      [
        string_of_int (List.length rows0);
        R.tactic_to_string s0.R.tactic;
        Bench_common.f1 s0.R.total_cost;
      ];
    ];

  (* --- phase 2: chaos ---------------------------------------------- *)
  let x_tree = (Option.get (Table.find_index table "X_IDX")).Table.tree in
  let y_tree = (Option.get (Table.find_index table "Y_IDX")).Table.tree in
  let x_file = Btree.file_id x_tree in
  let y_file = Btree.file_id y_tree in
  let y_leaf = List.hd (Btree.leaf_blocks y_tree) in
  (* A cold full check under a null injector establishes every lazy
     checksum, so the planned corruption genuinely fires on the next
     cold read instead of being silently adopted as truth. *)
  Buffer_pool.flush pool;
  Buffer_pool.set_injector pool (Some (Fault.create Fault.null_plan));
  ignore (Check.run table);
  Buffer_pool.set_injector pool None;
  let chaos =
    Fault.create
      (Fault.plan ~transient_read_rate:0.02 ~transient_classes:[ Fault.Heap ]
         ~persistent_files:[ x_file ]
         ~corrupt_blocks:[ (y_file, y_leaf) ]
         ~seed:41 ())
  in
  Buffer_pool.set_injector pool (Some chaos);
  let both_quarantined () =
    state "X_IDX" = Health.Quarantined && state "Y_IDX" = Health.Quarantined
  in
  let chaos_runs = ref [] in
  let attempts = ref 0 in
  while (not (both_quarantined ())) && !attempts < 6 do
    incr attempts;
    Buffer_pool.flush pool;
    let rows, s = R.run table (R.request pred) in
    chaos_runs := (!attempts, rows, s, state "X_IDX", state "Y_IDX") :: !chaos_runs
  done;
  let saw_both_quarantined = both_quarantined () in
  (* One more query against the fully quarantined table: degraded
     service continues, and an elapsed backoff may re-probe — a probe
     that succeeds downgrades the quarantine (the corruption is then
     re-detected by the scan's checksum and re-recorded), which is the
     recovery path working, not damage healing itself. *)
  Buffer_pool.flush pool;
  let rows_deg, s_deg = R.run table (R.request pred) in
  incr attempts;
  chaos_runs := (!attempts, rows_deg, s_deg, state "X_IDX", state "Y_IDX") :: !chaos_runs;
  let chaos_runs = List.rev !chaos_runs in
  Bench_common.subsection "phase 2 — chaos queries (dead X_IDX, corrupt Y_IDX, heap storm)";
  Bench_common.table
    ~header:[ "query"; "rows"; "tactic"; "retries"; "total cost"; "status"; "X_IDX"; "Y_IDX" ]
    (List.map
       (fun (i, rows, s, sx, sy) ->
         [
           string_of_int i;
           string_of_int (List.length rows);
           R.tactic_to_string s.R.tactic;
           string_of_int
             (count_events
                (function Trace.Fault_retry _ -> true | _ -> false)
                s.R.trace);
           Bench_common.f1 s.R.total_cost;
           R.status_to_string s.R.status;
           Health.state_to_string sx;
           Health.state_to_string sy;
         ])
       chaos_runs);

  (* --- phase 3: consistency check ---------------------------------- *)
  (* The checker needs the heap as ground truth and (by design)
     propagates heap faults, so it runs between storm waves: the
     persistent and corrupt damage stays, the transient rate does not. *)
  Buffer_pool.set_injector pool
    (Some (Fault.create (Fault.plan ~persistent_files:[ x_file ] ~seed:42 ())));
  Buffer_pool.flush pool;
  let check_meter = Cost.create () in
  let chk = Check.run ~meter:check_meter table in
  Buffer_pool.set_injector pool (Some chaos);
  Bench_common.subsection "phase 3 — consistency check";
  print_string (Check.report_to_string chk);
  let damaged_names = List.map (fun r -> r.Check.ir_index) (Check.damaged chk) in

  (* --- phase 4: online repair through the scheduler ----------------- *)
  Buffer_pool.flush pool;
  let cfg =
    { S.default_config with S.max_inflight = 4; quantum = 50.0; record_events = true }
  in
  let sched = S.create ~config:cfg db in
  let q_ids =
    List.map
      (fun lbl -> S.submit sched ~label:lbl table (R.request pred))
      [ "fg1"; "fg2"; "fg3" ]
  in
  let rx = S.submit_repair sched ~label:"repair:X_IDX" table ~index:"X_IDX" in
  let ry = S.submit_repair sched ~label:"repair:Y_IDX" table ~index:"Y_IDX" in
  let rep = S.run sched in
  Bench_common.subsection "phase 4 — repair competes with foreground sessions";
  print_string (S.report_to_string rep);
  let admitted_at id =
    List.find_map
      (function S.Admitted { id = i; tick; _ } when i = id -> Some tick | _ -> None)
      rep.S.events
  in
  let finished_at id =
    List.find_map
      (function S.Finished { id = i; tick; _ } when i = id -> Some tick | _ -> None)
      rep.S.events
  in
  let overlaps a b =
    match (admitted_at a, finished_at a, admitted_at b, finished_at b) with
    | Some a1, Some f1, Some a2, Some f2 -> a1 < f2 && a2 < f1
    | _ -> false
  in
  let interleaved =
    List.exists (fun q -> overlaps rx q || overlaps ry q) q_ids
  in
  let fg_ok =
    List.for_all
      (fun q ->
        let rows = S.rows_of sched q in
        let st =
          match (List.find (fun s -> s.S.s_id = q) rep.S.sessions).S.s_summary with
          | Some summary -> summary.R.status
          | None -> R.Aborted { fault = "never ran" }
        in
        (row_key rows = base_key && st = R.Completed)
        || (rows = [] && match st with R.Aborted _ -> true | _ -> false))
      q_ids
  in
  let repairs_ok = S.repair_of sched rx = Some true && S.repair_of sched ry = Some true in
  let repair_charged =
    List.fold_left (fun acc r -> acc +. r.S.r_charged) 0.0 rep.S.repairs
  in
  let repair_entries =
    List.fold_left (fun acc r -> acc + r.S.r_entries) 0 rep.S.repairs
  in
  let repair_retries =
    List.fold_left (fun acc r -> acc + r.S.r_retries) 0 rep.S.repairs
  in

  (* --- phase 5: recovery -------------------------------------------- *)
  Buffer_pool.set_injector pool None;
  Buffer_pool.flush pool;
  let rows5, s5 = R.run table (R.request pred) in
  Bench_common.subsection "phase 5 — post-repair retrieval and health report";
  Bench_common.table
    ~header:[ "rows"; "tactic"; "total cost" ]
    [
      [
        string_of_int (List.length rows5);
        R.tactic_to_string s5.R.tactic;
        Bench_common.f1 s5.R.total_cost;
      ];
    ];
  List.iter
    (fun st -> print_endline ("  " ^ Health.status_to_string st))
    (Health.report health ~now:(Table.now table));

  (* --- checkpoints --------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  let chaos_answers_ok =
    List.for_all
      (fun (_, rows, s, _, _) ->
        (row_key rows = base_key && s.R.status = R.Completed)
        || (rows = [] && match s.R.status with R.Aborted _ -> true | _ -> false))
      chaos_runs
  in
  Printf.printf
    "every chaos query returned oracle rows or a structured abort: %b\n"
    chaos_answers_ok;
  Printf.printf "both damaged indexes were quarantined under chaos: %b\n"
    saw_both_quarantined;
  Printf.printf "checker classified both damaged indexes (got: %s): %b\n"
    (String.concat ", " damaged_names)
    (List.sort compare damaged_names = [ "X_IDX"; "Y_IDX" ]
    && List.for_all (fun r -> r.Check.ir_fault <> None) (Check.damaged chk));
  Printf.printf "foreground queries stayed correct during the repair window: %b\n"
    fg_ok;
  Printf.printf "repair interleaved with foreground sessions (grant overlap): %b\n"
    interleaved;
  Printf.printf "both rebuilds completed and swapped in online: %b\n" repairs_ok;
  let all_healthy =
    state "X_IDX" = Health.Healthy && state "Y_IDX" = Health.Healthy
  in
  Printf.printf "every quarantined structure returned to Healthy: %b\n" all_healthy;
  Printf.printf
    "post-repair retrieval regained the baseline index tactic (%s = %s): %b\n"
    (R.tactic_to_string s5.R.tactic)
    (R.tactic_to_string s0.R.tactic)
    (s5.R.tactic = s0.R.tactic
    && s5.R.tactic <> R.Static_tscan
    && row_key rows5 = base_key);

  Bench_common.metric ~dir:Bench_common.Lower_better "cost_baseline"
    s0.R.total_cost;
  let cost_chaos_worst =
    List.fold_left (fun acc (_, _, s, _, _) -> max acc s.R.total_cost) 0.0 chaos_runs
  in
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_chaos_worst"
    cost_chaos_worst;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_check" chk.Check.cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_repair_charged"
    repair_charged;
  Bench_common.metric "repair_entries" (float_of_int repair_entries);
  Bench_common.metric "repair_retries" (float_of_int repair_retries);
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_post_repair"
    s5.R.total_cost;
  Bench_common.metric "post_repair_cost_ratio" (s5.R.total_cost /. s0.R.total_cost)

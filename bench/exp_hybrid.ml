(* Tactic combinators: compositionality and zero-cost glue.

   DESIGN.md §17 claims the combinator algebra (1) expresses genuinely
   new strategies no bespoke machine implements — here an Fscan that
   falls ORELSE back to a fresh Tscan on the first fault that reaches
   it, [distinct]-guarded against redelivery — and (2) is pure glue:
   identity-law wraps (limit ∞, a never-firing abandon_if, a one-sided
   race, a never-firing preempt) charge nothing, because combinators
   never touch blocks or meters.  This experiment measures both:

   - clean run: the hybrid answers the oracle row set at Fscan cost;
   - fault sweep: transient index faults trip the ORELSE switch, the
     row set stays invariant, and the price is Tscan-shaped cost;
   - dead index: the persistent-fault worst case, same invariant;
   - glue overhead: a 4-deep identity-wrapped Tscan is byte-identical
     in rows and charged cost to the bare Tscan. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage
module Btree = Rdb_btree.Btree
module R = Rdb_core.Retrieval

let name = "hybrid"
let description = "tactic combinators: hybrid fscan-orelse-tscan, identity wraps are free"

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

type fixture = { table : Table.t; pool : Buffer_pool.t }

let fixture ?(rows = 8000) () =
  let pool = Buffer_pool.create ~capacity:512 () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:23 in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  { table; pool }

let pred =
  let open Predicate in
  And [ "X" <% Value.int 25; "Y" <% Value.int 450 ]

let row_key rows =
  List.sort compare (List.map (fun r -> Value.to_string (Row.get r 0)) rows)

(* Pump a composed tactic to exhaustion through the shared driver
   under a retry-transient ladder; returns (rows, charged cost). *)
let drain_tactic m tac =
  let out = ref [] in
  let d =
    Driver.make
      (Scan.cursor_of_step ~cost:(fun () -> Cost.total m) tac)
      Tactic.Policy.(seal (stack [ retry_transient ]))
  in
  (match
     Driver.drain d ~budget:infinity
       ~on_rows:(fun b -> List.iter (fun (_, r) -> out := r :: !out) b.Scan.rows)
   with
  | Ok () -> ()
  | Error _ -> ());
  (List.rev !out, Cost.total m)

(* The hybrid: Fscan over X_IDX's full range, ORELSE a fresh Tscan on
   the first fault that reaches the composition, distinct-guarded.
   [switched] reports whether the fallback arm ever armed. *)
let hybrid f =
  let idx = Option.get (Table.find_index f.table "X_IDX") in
  let m = Cost.create () in
  let cand =
    {
      Scan.idx;
      ranges = [ Btree.full_range ];
      residual = pred;
      est = 0.0;
      est_exact = false;
    }
  in
  let fscan = Fscan.create f.table m cand ~restriction:pred in
  let switched = ref false in
  let to_tscan _ =
    switched := true;
    let t = Tscan.create f.table m pred in
    fun () -> Tscan.step t
  in
  let rows, cost =
    drain_tactic m
      Tactic.(
        distinct (Hashtbl.create 64) (orelse (fun () -> Fscan.step fscan) to_tscan))
  in
  (rows, cost, !switched)

let bare_tscan f =
  let m = Cost.create () in
  let t = Tscan.create f.table m pred in
  drain_tactic m (fun () -> Tscan.step t)

(* The same Tscan under four identity-law wraps: if combinators are
   pure glue, rows and charged cost are byte-identical to the bare
   run. *)
let wrapped_tscan f =
  let m = Cost.create () in
  let t = Tscan.create f.table m pred in
  drain_tactic m
    Tactic.(
      limit max_int
        (abandon_if
           (fun () -> None)
           (race
              ~choose:(fun () -> `Left)
              ~left:(preempt (fun () -> None) (fun () -> Tscan.step t))
              ~right:halt)))

let with_injector f plan body =
  Buffer_pool.flush f.pool;
  let inj = Option.map Fault.create plan in
  Buffer_pool.set_injector f.pool inj;
  let r = body () in
  Buffer_pool.set_injector f.pool None;
  (r, inj)

let run () =
  Bench_common.section "Experiment hybrid — tactic combinators as strategy glue";
  let f = fixture () in

  (* --- clean runs -------------------------------------------------- *)
  let (base_rows, base_cost), _ = with_injector f None (fun () -> bare_tscan f) in
  let (wrap_rows, wrap_cost), _ = with_injector f None (fun () -> wrapped_tscan f) in
  let (hyb_rows, hyb_cost, hyb_switched), _ = with_injector f None (fun () -> hybrid f) in
  let dyn_rows, dyn_summary =
    Buffer_pool.flush f.pool;
    R.run f.table (R.request pred)
  in
  Bench_common.subsection "clean (cold pool each run)";
  Bench_common.table
    ~header:[ "strategy"; "rows"; "total cost" ]
    [
      [ "bare tscan"; string_of_int (List.length base_rows); Bench_common.f1 base_cost ];
      [
        "tscan under 4 identity wraps";
        string_of_int (List.length wrap_rows);
        Bench_common.f1 wrap_cost;
      ];
      [
        "hybrid fscan-orelse-tscan";
        string_of_int (List.length hyb_rows);
        Bench_common.f1 hyb_cost;
      ];
      [
        "dynamic optimizer";
        string_of_int (List.length dyn_rows);
        Bench_common.f1 dyn_summary.R.total_cost;
      ];
    ];

  (* --- fault sweep -------------------------------------------------- *)
  let x_file = Btree.file_id (Option.get (Table.find_index f.table "X_IDX")).Table.tree in
  let rates = [ 0.05; 0.2 ] in
  let sweep =
    List.map
      (fun rate ->
        let plan =
          Fault.plan ~transient_read_rate:rate ~transient_classes:[ Fault.Index ]
            ~seed:91 ()
        in
        let r, _ = with_injector f (Some plan) (fun () -> hybrid f) in
        (Printf.sprintf "transient %.2f" rate, r))
      rates
  in
  let dead, _ =
    with_injector f
      (Some (Fault.plan ~persistent_files:[ x_file ] ~seed:5 ()))
      (fun () -> hybrid f)
  in
  let sweep = sweep @ [ ("dead X_IDX", dead) ] in
  Bench_common.subsection "hybrid under index faults (cold pool each run)";
  Bench_common.table
    ~header:[ "scenario"; "rows"; "total cost"; "orelse switched" ]
    (List.map
       (fun (scenario, (rows, cost, switched)) ->
         [
           scenario;
           string_of_int (List.length rows);
           Bench_common.f1 cost;
           string_of_bool switched;
         ])
       sweep);

  (* --- checkpoints -------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  let base_key = row_key base_rows in
  Printf.printf "hybrid answers the oracle row set (%d rows): %b\n"
    (List.length hyb_rows)
    (row_key hyb_rows = base_key && row_key dyn_rows = base_key);
  Printf.printf "clean hybrid never armed its fallback: %b\n" (not hyb_switched);
  Printf.printf "identity wraps leave rows byte-identical: %b\n"
    (wrap_rows = base_rows);
  Printf.printf "identity wraps charge zero extra cost (%.1f = %.1f): %b\n"
    wrap_cost base_cost
    (wrap_cost = base_cost);
  Printf.printf "row set invariant across every fault scenario: %b\n"
    (List.for_all (fun (_, (rows, _, _)) -> row_key rows = base_key) sweep);
  Printf.printf "the ORELSE switch actually fired under faults: %b\n"
    (List.exists (fun (_, (_, _, switched)) -> switched) sweep);
  let _, (_, dead_cost, dead_switched) = List.nth sweep (List.length sweep - 1) in
  Printf.printf "dead index: fallback pays cost, not rows (%.1f >= %.1f): %b\n"
    dead_cost base_cost
    (dead_switched && dead_cost >= base_cost);
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_hybrid_clean" hyb_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_hybrid_dead_index" dead_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_identity_wraps" wrap_cost;
  Bench_common.metric "wrap_overhead_factor" (wrap_cost /. base_cost)

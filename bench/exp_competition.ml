(* §3 competition model.

   Two plans with L-shaped (truncated hyperbola) cost distributions,
   half the mass below a small knee.  The paper's arithmetic: running
   A2 to its knee then switching to A1 costs (m2 + c2 + M1)/2, about
   half the traditional M1.  We evaluate the closed forms, optimize the
   switch point, run the proportional-speed simultaneous policy, and
   cross-check with Monte Carlo. *)

module CM = Rdb_core.Competition_math

let name = "competition"
let description = "§3 competition model: direct & two-stage switch policies vs traditional"

let monte_carlo ~seed ~runs ~a1 ~a2 ~switch_at =
  (* Draw independent costs and apply the knee-switch policy. *)
  let rng = Rdb_util.Prng.create ~seed in
  let d1 = Rdb_dist.Dist.hyperbola ~b:0.0101 () in
  ignore d1;
  let acc = ref 0.0 in
  for _ = 1 to runs do
    let x2 = CM.quantile a2 (Rdb_util.Prng.float rng 1.0) in
    let x1 = CM.quantile a1 (Rdb_util.Prng.float rng 1.0) in
    let cost = if x2 <= switch_at then x2 else switch_at +. x1 in
    acc := !acc +. cost
  done;
  !acc /. float_of_int runs

let run () =
  Bench_common.section "Experiment competition — §3 cost arithmetic";
  let configs =
    [ (10.0, 1000.0, 8.0, 1200.0); (5.0, 500.0, 5.0, 500.0); (20.0, 2000.0, 10.0, 1500.0) ]
  in
  let rows =
    List.map
      (fun (knee1, cmax1, knee2, cmax2) ->
        let a1 = CM.l_shaped ~knee:knee1 ~cmax:cmax1 () in
        let a2 = CM.l_shaped ~knee:knee2 ~cmax:cmax2 () in
        let m1 = CM.mean a1 in
        let c2 = CM.quantile a2 0.5 in
        let m2 = CM.mean_below a2 c2 in
        let paper = 0.5 *. (m2 +. c2 +. m1) in
        let knee_policy = CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:c2 in
        let tau, best_switch = CM.optimal_switch ~try_:a2 ~fallback:a1 in
        let sa, ab, best_sim = CM.optimal_simultaneous ~a:a1 ~b:a2 in
        ignore (sa, ab);
        let mc = monte_carlo ~seed:7 ~runs:20000 ~a1 ~a2 ~switch_at:c2 in
        [
          Printf.sprintf "%g/%g" knee1 cmax1;
          Bench_common.f1 m1;
          Bench_common.f1 c2;
          Bench_common.f1 m2;
          Bench_common.f1 paper;
          Bench_common.f1 knee_policy;
          Bench_common.f1 mc;
          Printf.sprintf "%.1f@%.1f" best_switch tau;
          Bench_common.f1 best_sim;
        ])
      configs
  in
  Bench_common.table
    ~header:
      [ "knee/cmax"; "M1 (trad.)"; "c2"; "m2"; "paper (m2+c2+M1)/2"; "knee switch";
        "monte carlo"; "optimal switch"; "simultaneous" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  let a1 = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let a2 = CM.l_shaped ~knee:8.0 ~cmax:1200.0 () in
  let m1 = CM.mean a1 in
  let c2 = CM.quantile a2 0.5 in
  let knee_policy = CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:c2 in
  Printf.printf "competition about halves the traditional cost (%.1f vs %.1f): %b\n"
    knee_policy m1
    (knee_policy < 0.7 *. m1);
  let _, _, sim = CM.optimal_simultaneous ~a:a1 ~b:a2 in
  Printf.printf
    "simultaneous proportional-speed run is still better (%.1f <= %.1f): %b\n" sim
    knee_policy
    (sim <= knee_policy *. 1.05);
  Bench_common.metric "m1_traditional" m1;
  Bench_common.metric ~dir:Bench_common.Lower_better "knee_switch_cost" knee_policy;
  Bench_common.metric ~dir:Bench_common.Lower_better "simultaneous_cost" sim;
  Bench_common.metric ~dir:Bench_common.Higher_better "competition_speedup"
    (m1 /. knee_policy)

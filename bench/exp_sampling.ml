(* [Ant92]/[OlRo89] — random sampling from B+-trees.

   The §5 estimation refinement: sampling estimates selectivities that
   descent-to-split cannot (arbitrary predicates).  We compare the
   pseudo-ranked sampler against classic acceptance/rejection at equal
   sample sizes: accuracy is similar, but acceptance/rejection pays for
   rejected descents. *)

open Rdb_btree
open Rdb_data

let name = "sampling"
let description = "pseudo-ranked vs acceptance/rejection B-tree sampling ([Ant92] vs [OlRo89])"

let run () =
  Bench_common.section "Experiment sampling — B+-tree random sampling";
  let pool = Rdb_storage.Buffer_pool.create ~capacity:100_000 () in
  let t = Btree.create ~fanout:32 pool in
  let m = Rdb_storage.Cost.create () in
  let rng = Rdb_util.Prng.create ~seed:53 in
  let n = 60_000 in
  for i = 0 to n - 1 do
    Btree.insert t m
      [| Value.int (Rdb_util.Prng.int rng 10_000) |]
      (Rid.make ~page:(i / 32) ~slot:(i mod 32))
  done;
  (* True fraction of keys < 2500. *)
  let true_frac =
    let c = ref 0 and tot = ref 0 in
    Btree.iter_range t m Btree.full_range (fun key _ ->
        incr tot;
        match key.(0) with Value.Int v when v < 2500 -> incr c | _ -> ());
    float_of_int !c /. float_of_int !tot
  in
  Printf.printf "tree: %d entries, height %d; true fraction(key < 2500) = %.4f\n" n
    (Btree.height t) true_frac;
  let is_hit (key : Btree.key) = match key.(0) with Value.Int v -> v < 2500 | _ -> false in
  let frac (s : Sampling.stats) =
    let hits = Array.fold_left (fun acc (k, _) -> if is_hit k then acc + 1 else acc) 0 s.Sampling.samples in
    float_of_int hits /. float_of_int (Int.max 1 (Array.length s.Sampling.samples))
  in
  let rows =
    List.concat_map
      (fun size ->
        let rng = Rdb_util.Prng.create ~seed:67 in
        let ranked = Sampling.ranked rng t (Rdb_storage.Cost.create ()) ~n:size in
        let rng = Rdb_util.Prng.create ~seed:67 in
        let ar = Sampling.acceptance_rejection rng t (Rdb_storage.Cost.create ()) ~n:size () in
        [
          [
            string_of_int size; "pseudo-ranked";
            Bench_common.f4 (frac ranked);
            Bench_common.f4 (Float.abs (frac ranked -. true_frac));
            string_of_int ranked.Sampling.descents;
            string_of_int ranked.Sampling.nodes_visited;
          ];
          [
            string_of_int size; "accept/reject";
            Bench_common.f4 (frac ar);
            Bench_common.f4 (Float.abs (frac ar -. true_frac));
            string_of_int ar.Sampling.descents;
            string_of_int ar.Sampling.nodes_visited;
          ];
        ])
      [ 100; 1000; 5000 ]
  in
  Bench_common.table
    ~header:[ "samples"; "method"; "estimate"; "abs error"; "descents"; "node visits" ]
    rows;
  Bench_common.subsection "paper checkpoints";
  let rng = Rdb_util.Prng.create ~seed:71 in
  let ranked = Sampling.ranked rng t (Rdb_storage.Cost.create ()) ~n:1000 in
  let ar = Sampling.acceptance_rejection rng t (Rdb_storage.Cost.create ()) ~n:1000 () in
  Printf.printf
    "pseudo-ranked needs ~%.0fx fewer node visits than acceptance/rejection: %b\n"
    (float_of_int ar.Sampling.nodes_visited /. float_of_int ranked.Sampling.nodes_visited)
    (ar.Sampling.nodes_visited > 2 * ranked.Sampling.nodes_visited);
  Printf.printf "both estimators land within 0.02 of the truth: %b\n"
    (Float.abs (frac ranked -. true_frac) < 0.02 && Float.abs (frac ar -. true_frac) < 0.02)

(* Shared helpers for the experiment harness. *)

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows = print_string (Rdb_util.Ascii_plot.table ~header rows)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x

let flush_pool db = Rdb_storage.Buffer_pool.flush (Rdb_engine.Database.pool db)

(* Count trace events matching a predicate. *)
let count_events trace pred = List.length (List.filter pred trace)

let discards trace =
  count_events trace (function Rdb_exec.Trace.Scan_discarded _ -> true | _ -> false)

(* --- machine-readable metrics ----------------------------------------
   Experiments call [metric] for every number the perf trajectory
   should track; the harness's --json mode collects them per
   experiment into BENCH_<id>.json, and the CI regression gate
   (diff_baseline.exe) applies the 10% rule along [direction]. *)

type direction =
  | Lower_better  (** a cost: regression when it grows past the gate *)
  | Higher_better  (** e.g. a hit rate: regression when it shrinks *)
  | Info  (** tracked but never gated *)

let direction_to_string = function
  | Lower_better -> "lower_better"
  | Higher_better -> "higher_better"
  | Info -> "info"

let recorded : (string * float * direction) list ref = ref []

let reset_metrics () = recorded := []

let metric ?(dir = Info) name value =
  recorded := (name, value, dir) :: !recorded;
  Printf.printf "metric %s = %.6g\n" name value

let metrics () = List.rev !recorded

(* Fault injection and graceful degradation.

   The degradation policies ride the same competition machinery the
   paper builds for cost uncertainty (§3, §6, §7): a faulting index is
   just an unproductive scan to be discarded, a dead foreground path
   falls back to the guaranteed-best Tscan, and only an unreadable
   heap — where no access path to the rows exists at all — aborts,
   structurally.  This experiment measures:

   - the injector-off baseline: a null-plan injector must be
     cost-identical to no injector at all;
   - the degradation curve: transient fault rate vs retrieval cost,
     with the row set invariant throughout;
   - the persistent-fault policies: dead index (quarantine/fallback,
     query still answers), corrupt leaf (checksum catches it, query
     still answers), dead heap (structured abort, no exception). *)

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage
module Btree = Rdb_btree.Btree
module R = Rdb_core.Retrieval

let name = "faults"
let description = "fault injection: overhead, degradation curve, quarantine/fallback/abort"

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

type fixture = { table : Table.t; pool : Buffer_pool.t }

let fixture ?(rows = 12000) () =
  let pool = Buffer_pool.create ~capacity:512 () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:23 in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  { table; pool }

let pred =
  let open Predicate in
  And [ "X" <% Value.int 25; "Y" <% Value.int 450 ]

let row_key rows =
  List.sort compare (List.map (fun r -> Value.to_string (Row.get r 0)) rows)

(* One cold retrieval under [plan]; [None] = no injector installed. *)
let run_with f plan =
  Buffer_pool.flush f.pool;
  let inj = Option.map Fault.create plan in
  Buffer_pool.set_injector f.pool inj;
  let rows, s = R.run f.table (R.request pred) in
  Buffer_pool.set_injector f.pool None;
  (rows, s, inj)

let count_events p trace = List.length (List.filter p trace)

let run () =
  Bench_common.section "Experiment faults — injection and graceful degradation";

  (* --- injector-off overhead ------------------------------------- *)
  let f0 = fixture () in
  let rows_off, s_off, _ = run_with f0 None in
  let rows_null, s_null, _ = run_with f0 (Some Fault.null_plan) in
  Bench_common.subsection "injector overhead (same fixture, cold pool)";
  Bench_common.table
    ~header:[ "injector"; "rows"; "total cost" ]
    [
      [ "none"; string_of_int (List.length rows_off); Bench_common.f1 s_off.R.total_cost ];
      [
        "null plan";
        string_of_int (List.length rows_null);
        Bench_common.f1 s_null.R.total_cost;
      ];
    ];

  (* --- degradation curve ------------------------------------------ *)
  let rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let curve =
    List.map
      (fun rate ->
        let plan = Fault.plan ~transient_read_rate:rate ~seed:91 () in
        let rows, s, inj = run_with f0 (Some plan) in
        let inj = Option.get inj in
        let retries =
          count_events (function Trace.Fault_retry _ -> true | _ -> false) s.R.trace
        in
        (rate, rows, s, Fault.injected_total inj, retries))
      rates
  in
  Bench_common.subsection "degradation curve (transient faults, cold pool)";
  Bench_common.table
    ~header:[ "fault rate"; "rows"; "faults"; "retries"; "total cost"; "status" ]
    (List.map
       (fun (rate, rows, s, faults, retries) ->
         [
           Printf.sprintf "%.2f" rate;
           string_of_int (List.length rows);
           string_of_int faults;
           string_of_int retries;
           Bench_common.f1 s.R.total_cost;
           R.status_to_string s.R.status;
         ])
       curve);

  (* --- persistent-fault policies ---------------------------------- *)
  let x_file = Btree.file_id (Option.get (Table.find_index f0.table "X_IDX")).Table.tree in
  let rows_dead_idx, s_dead_idx, _ =
    run_with f0 (Some (Fault.plan ~persistent_files:[ x_file ] ~seed:5 ()))
  in
  let x_tree = (Option.get (Table.find_index f0.table "X_IDX")).Table.tree in
  let corrupt_leaf = List.hd (Btree.leaf_blocks x_tree) in
  (* First cold pass under an injector establishes the lazy checksums;
     the corruption then fires on the verifying second pass. *)
  ignore (run_with f0 (Some Fault.null_plan));
  let rows_corrupt, s_corrupt, inj_corrupt =
    run_with f0
      (Some (Fault.plan ~corrupt_blocks:[ (Btree.file_id x_tree, corrupt_leaf) ] ~seed:6 ()))
  in
  let heap = Heap_file.file_id (Table.heap f0.table) in
  let rows_dead_heap, s_dead_heap, _ =
    run_with f0 (Some (Fault.plan ~persistent_files:[ heap ] ~seed:7 ()))
  in
  (* Quarantine is visible either as the scan-level event (a running
     scan discarded) or as the health transition (a dead structure
     caught at planning, before any scan starts). *)
  let degradations trace =
    count_events
      (function
        | Trace.Index_quarantined _ | Trace.Fallback_tscan _
        | Trace.Health_transition { to_ = "quarantined"; _ } -> true
        | _ -> false)
      trace
  in
  Bench_common.subsection "persistent-fault policies";
  Bench_common.table
    ~header:[ "scenario"; "rows"; "quarantine/fallback"; "status" ]
    [
      [
        "dead index (X_IDX)";
        string_of_int (List.length rows_dead_idx);
        string_of_int (degradations s_dead_idx.R.trace);
        R.status_to_string s_dead_idx.R.status;
      ];
      [
        "corrupt X_IDX leaf";
        string_of_int (List.length rows_corrupt);
        string_of_int (degradations s_corrupt.R.trace);
        R.status_to_string s_corrupt.R.status;
      ];
      [
        "dead heap";
        string_of_int (List.length rows_dead_heap);
        string_of_int (degradations s_dead_heap.R.trace);
        R.status_to_string s_dead_heap.R.status;
      ];
    ];

  (* --- checkpoints ------------------------------------------------- *)
  Bench_common.subsection "paper checkpoints";
  let base_key = row_key rows_off in
  Printf.printf "null-plan injector is cost-identical to none (%.1f = %.1f): %b\n"
    s_off.R.total_cost s_null.R.total_cost
    (s_null.R.total_cost = s_off.R.total_cost && row_key rows_null = base_key);
  let invariant =
    List.for_all
      (fun (_, rows, s, _, _) -> row_key rows = base_key && s.R.status = R.Completed)
      curve
  in
  Printf.printf "row set invariant under every transient fault rate: %b\n" invariant;
  let faults_fired =
    List.exists (fun (rate, _, _, faults, _) -> rate > 0.0 && faults > 0) curve
  in
  Printf.printf "transient faults actually fired along the curve: %b\n" faults_fired;
  let _, _, s_zero, _, _ = List.hd curve in
  let _, _, s_worst, _, _ = List.nth curve (List.length curve - 1) in
  Printf.printf "degradation is paid in cost, not rows (%.1f > %.1f): %b\n"
    s_worst.R.total_cost s_zero.R.total_cost
    (s_worst.R.total_cost > s_zero.R.total_cost);
  Printf.printf
    "dead index: quarantine/fallback visible, query still answers: %b\n"
    (row_key rows_dead_idx = base_key
    && s_dead_idx.R.status = R.Completed
    && degradations s_dead_idx.R.trace > 0);
  Printf.printf "corrupt leaf: checksum catches it, query still answers: %b\n"
    (row_key rows_corrupt = base_key
    && s_corrupt.R.status = R.Completed
    && Fault.injected_corrupt (Option.get inj_corrupt) > 0);
  Printf.printf "dead heap: structured abort, never an exception: %b\n"
    (rows_dead_heap = []
    && match s_dead_heap.R.status with R.Aborted _ -> true | _ -> false);
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_no_injector"
    s_off.R.total_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_zero_fault_rate"
    s_zero.R.total_cost;
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_worst_fault_rate"
    s_worst.R.total_cost;
  Bench_common.metric "fault_overhead_factor"
    (s_worst.R.total_cost /. s_zero.R.total_cost);
  Bench_common.metric ~dir:Bench_common.Lower_better "cost_dead_index"
    s_dead_idx.R.total_cost

(* rdbsh — interactive SQL shell over the dynamic-optimization engine.

   Usage: rdbsh [--demo] [--pool N] [--shards N] [--concurrent] [-e SQL]
                [--file SCRIPT]

   Statements may span lines and end with ';' (interactive mode reads
   until the terminator).  Scripts are executed statement by
   statement; '--' comments are ignored.

   Meta commands:
     .help              this text
     .tables            list tables and indexes
     .demo              load the demo datasets (FAMILIES, ORDERS, EMPLOYEES)
     .set NAME VALUE    bind a host variable (:NAME), VALUE int or 'str'
     .unset NAME        remove a binding
     .params            show bindings
     .health            per-structure health states (self-healing registry)
     .concurrent [I] [N] [SEED] [SHARDS]  N queries through the session
                        scheduler, I in-flight, workload seeded with SEED
                        (default 7), buffer pool split into SHARDS LRU
                        shards (default: leave the pool as-is)
     .crash [G] [N] [SEED]  N queries through the crash–restart
                        supervisor: the scheduler dies at grant G,
                        restart recovery reissues the lost queries, and
                        the cross-epoch journal and ledger are printed
     .quit              exit

   Anything else is SQL; EXPLAIN SELECT ... shows the dynamic
   optimizer's run-time decisions. *)

open Rdb_data
open Rdb_engine

let params : (string * Value.t) list ref = ref []

(* Shell-lifetime metrics registry: attached to the buffer pool and
   threaded into every retrieval; dumped by .stats. *)
let registry = Rdb_util.Metrics.create ()

let retrieval_config =
  { Rdb_core.Retrieval.default_config with Rdb_core.Retrieval.metrics = Some registry }

let print_table columns rows =
  let header = columns in
  let body = List.map (List.map Value.to_string) rows in
  print_string (Rdb_util.Ascii_plot.table ~header body)

let load_demo db =
  if Database.find_table db "FAMILIES" = None then begin
    ignore (Rdb_workload.Datasets.families db);
    ignore (Rdb_workload.Datasets.orders db);
    ignore (Rdb_workload.Datasets.employees db);
    print_endline "demo datasets loaded: FAMILIES (20000), ORDERS (30000), EMPLOYEES (20000)"
  end
  else print_endline "demo datasets already loaded"

(* .concurrent / --concurrent: drive a seeded mixed workload through
   the multi-query session scheduler against the shared pool and print
   its report (the scheduler's EXPLAIN). *)
let run_concurrent db ?shards inflight count seed =
  let usage = "usage: .concurrent [INFLIGHT>=1] [COUNT>=1] [SEED] [SHARDS>=1]" in
  if inflight < 1 then failwith usage;
  if count < 1 then failwith usage;
  (match shards with Some n when n < 1 -> failwith usage | _ -> ());
  load_demo db;
  let table = Database.table db "ORDERS" in
  let specs = Rdb_workload.Traffic.orders_mix ~seed ~count () in
  let module S = Rdb_core.Session in
  let module R = Rdb_core.Retrieval in
  let sched =
    S.create
      ~config:
        {
          S.default_config with
          S.max_inflight = inflight;
          S.pool_shards = shards;
          S.retrieval = retrieval_config;
          S.metrics = Some registry;
        }
      db
  in
  List.iter
    (fun (sp : Rdb_workload.Traffic.spec) ->
      ignore
        (S.submit sched ~label:sp.Rdb_workload.Traffic.label
           ?limit:sp.Rdb_workload.Traffic.limit table
           (R.request ~env:sp.Rdb_workload.Traffic.env
              ~order_by:sp.Rdb_workload.Traffic.order_by
              ?explicit_goal:
                (if sp.Rdb_workload.Traffic.fast_first then Some Rdb_core.Goal.Fast_first
                 else None)
              sp.Rdb_workload.Traffic.pred)))
    specs;
  let shard_note =
    match shards with
    | Some n when n > 1 -> Printf.sprintf " in %d shards" n
    | _ -> ""
  in
  Printf.printf
    "%d queries (seed %d), max %d in-flight, shared pool of %d blocks%s:\n" count seed
    inflight
    (Rdb_storage.Buffer_pool.capacity (Database.pool db))
    shard_note;
  print_string (S.report_to_string (S.run sched))

(* .crash: the same seeded workload through the crash–restart
   supervisor (DESIGN.md §15) — the scheduler dies at the given grant,
   restart recovery tears down the volatile state and reissues every
   lost query, and the cross-epoch journal and ledger are printed. *)
let run_crash db grant count seed =
  let usage = "usage: .crash [GRANT>=1] [COUNT>=1] [SEED]" in
  if grant < 1 then failwith usage;
  if count < 1 then failwith usage;
  load_demo db;
  let table = Database.table db "ORDERS" in
  let specs = Rdb_workload.Traffic.orders_mix ~seed ~count () in
  let module S = Rdb_core.Session in
  let module R = Rdb_core.Retrieval in
  let module Recovery = Rdb_core.Recovery in
  let subs =
    List.map
      (fun (sp : Rdb_workload.Traffic.spec) ->
        Recovery.query ~label:sp.Rdb_workload.Traffic.label
          ?limit:sp.Rdb_workload.Traffic.limit table
          (R.request ~env:sp.Rdb_workload.Traffic.env
             ~order_by:sp.Rdb_workload.Traffic.order_by
             ?explicit_goal:
               (if sp.Rdb_workload.Traffic.fast_first then
                  Some Rdb_core.Goal.Fast_first
                else None)
             sp.Rdb_workload.Traffic.pred))
      specs
  in
  let config =
    {
      S.default_config with
      S.max_inflight = 4;
      S.quantum = 4.0;
      S.retrieval = retrieval_config;
      S.metrics = Some registry;
    }
  in
  Printf.printf "%d queries (seed %d), crash at grant %d, restart, reissue:\n" count
    seed grant;
  print_string
    (Recovery.report_to_string
       (Recovery.run ~config ~crashes:[ [ S.Crash_at_grant grant ] ] db subs))

let show_tables db =
  List.iter
    (fun t ->
      Printf.printf "%s (%d rows, %d pages)\n" (Table.name t) (Table.row_count t)
        (Table.page_count t);
      List.iter
        (fun idx ->
          Printf.printf "  index %s (%s)\n" idx.Table.idx_name
            (String.concat ", " idx.Table.key_columns))
        (Table.indexes t))
    (List.sort (fun a b -> compare (Table.name a) (Table.name b)) (Database.tables db))

let parse_value s =
  if String.length s >= 2 && s.[0] = '\'' && s.[String.length s - 1] = '\'' then
    Value.str (String.sub s 1 (String.length s - 2))
  else begin
    match int_of_string_opt s with
    | Some i -> Value.int i
    | None -> (
        match float_of_string_opt s with Some f -> Value.float f | None -> Value.str s)
  end

let run_sql db sql =
  try
    let r = Rdb_sql.Executor.execute_sql ~env:!params ~config:retrieval_config db sql in
    (match r.Rdb_sql.Executor.message with
    | Some m ->
        (* CHECK/REPAIR return a table *and* a summary line *)
        if r.Rdb_sql.Executor.columns <> [] then
          print_table r.Rdb_sql.Executor.columns r.Rdb_sql.Executor.rows;
        print_endline m
    | None ->
        if r.Rdb_sql.Executor.columns <> [] then
          print_table r.Rdb_sql.Executor.columns r.Rdb_sql.Executor.rows;
        List.iter
          (fun (tbl, (s : Rdb_core.Retrieval.summary)) ->
            Printf.printf "-- %s: %d rows, cost %.2f, %s, goal %s (%s)\n" tbl
              s.Rdb_core.Retrieval.rows_delivered s.Rdb_core.Retrieval.total_cost
              (Rdb_core.Retrieval.tactic_to_string s.Rdb_core.Retrieval.tactic)
              (Rdb_core.Goal.to_string s.Rdb_core.Retrieval.goal)
              s.Rdb_core.Retrieval.goal_provenance)
          r.Rdb_sql.Executor.summaries)
  with
  | Rdb_sql.Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
  | Rdb_sql.Lexer.Lex_error (m, p) -> Printf.printf "lex error at %d: %s\n" p m
  | Rdb_sql.Executor.Execution_error m -> Printf.printf "error: %s\n" m
  | Predicate.Unbound_param p ->
      Printf.printf "error: unbound host variable :%s (use .set %s VALUE)\n" p p
  | Invalid_argument m | Failure m -> Printf.printf "error: %s\n" m
  | Not_found -> print_endline "error: not found"
  | Rdb_storage.Fault.Injected f ->
      Printf.printf "storage fault: %s\n" (Rdb_storage.Fault.describe f)
  | Stack_overflow -> print_endline "error: statement nested too deeply"
  | Out_of_memory | Sys.Break as e ->
      (* genuinely fatal / user interrupt: let it terminate the shell *)
      raise e
  | e ->
      (* any other diagnostic keeps the shell alive *)
      Printf.printf "internal error: %s\n" (Printexc.to_string e)

(* Meta commands take the same stance: a bad argument is a printed
   diagnostic, never a dead shell. *)
let protect f =
  try f () with
  | Out_of_memory | Sys.Break as e -> raise e
  | Rdb_sql.Executor.Execution_error m | Invalid_argument m | Failure m ->
      Printf.printf "error: %s\n" m
  | Not_found -> print_endline "error: not found"
  | e -> Printf.printf "internal error: %s\n" (Printexc.to_string e)

let meta db line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [ ".help" ] ->
      print_endline
        ".tables | .demo | .set NAME VALUE | .unset NAME | .params | .flush | .stats | \
         .health | .concurrent [INFLIGHT] [COUNT] [SEED] [SHARDS] | .crash [GRANT] \
         [COUNT] [SEED] | .quit — else SQL \
         (SELECT/INSERT/UPDATE/DELETE/CREATE/EXPLAIN/CHECK/REPAIR)"
  | [ ".tables" ] -> show_tables db
  | [ ".demo" ] -> load_demo db
  | [ ".flush" ] ->
      Rdb_storage.Buffer_pool.flush (Database.pool db);
      print_endline "buffer pool flushed"
  | [ ".stats" ] ->
      let pool = Database.pool db in
      let module P = Rdb_storage.Buffer_pool in
      Printf.printf "buffer pool: %d/%d blocks resident\n" (P.resident pool)
        (P.capacity pool);
      if P.shards pool > 1 then
        Printf.printf "shards: %d, lookup balance %.2f (resident %s; lookups %s)\n"
          (P.shards pool)
          (P.shard_lookup_balance pool)
          (String.concat "/"
             (Array.to_list (Array.map string_of_int (P.shard_residents pool))))
          (String.concat "/"
             (Array.to_list (Array.map string_of_int (P.shard_lookups pool))));
      Printf.printf "lifetime charges: %s\n"
        (Format.asprintf "%a" Rdb_storage.Cost.pp
           (Rdb_storage.Buffer_pool.global_meter pool));
      if Rdb_util.Metrics.is_empty registry then
        print_endline "metrics: (none recorded yet)"
      else begin
        print_endline "metrics:";
        String.split_on_char '\n' (Rdb_util.Metrics.to_string registry)
        |> List.iter (fun l -> if l <> "" then Printf.printf "  %s\n" l)
      end
  | [ ".health" ] ->
      let any = ref false in
      List.iter
        (fun table ->
          let statuses = Health.report (Table.health table) ~now:(Table.now table) in
          if statuses <> [] then begin
            any := true;
            Printf.printf "%s:\n" (Table.name table);
            List.iter
              (fun s -> Printf.printf "  %s\n" (Health.status_to_string s))
              statuses
          end)
        (Database.tables db);
      if not !any then print_endline "all structures healthy (nothing reported)"
  | ".concurrent" :: rest ->
      let usage = "usage: .concurrent [INFLIGHT>=1] [COUNT>=1] [SEED] [SHARDS>=1]" in
      let int_arg s =
        match int_of_string_opt s with Some n -> n | None -> failwith usage
      in
      let inflight, count, seed, shards =
        match rest with
        | [] -> (4, 12, 7, None)
        | [ i ] -> (int_arg i, 12, 7, None)
        | [ i; c ] -> (int_arg i, int_arg c, 7, None)
        | [ i; c; s ] -> (int_arg i, int_arg c, int_arg s, None)
        | [ i; c; s; sh ] -> (int_arg i, int_arg c, int_arg s, Some (int_arg sh))
        | _ -> failwith usage
      in
      run_concurrent db ?shards inflight count seed
  | ".crash" :: rest ->
      let usage = "usage: .crash [GRANT>=1] [COUNT>=1] [SEED]" in
      let int_arg s =
        match int_of_string_opt s with Some n -> n | None -> failwith usage
      in
      let grant, count, seed =
        match rest with
        | [] -> (6, 12, 7)
        | [ g ] -> (int_arg g, 12, 7)
        | [ g; c ] -> (int_arg g, int_arg c, 7)
        | [ g; c; s ] -> (int_arg g, int_arg c, int_arg s)
        | _ -> failwith usage
      in
      run_crash db grant count seed
  | [ ".params" ] ->
      List.iter (fun (k, v) -> Printf.printf ":%s = %s\n" k (Value.to_string v)) !params
  | [ ".set"; name; value ] ->
      let name = String.uppercase_ascii name in
      params := (name, parse_value value) :: List.remove_assoc name !params;
      Printf.printf ":%s = %s\n" name (Value.to_string (List.assoc name !params))
  | [ ".unset"; name ] ->
      params := List.remove_assoc (String.uppercase_ascii name) !params;
      print_endline "ok"
  | _ -> print_endline "unknown meta command (.help)"

(* Split a script into statements on ';' terminators, respecting
   'single-quoted' strings and -- comments. *)
let split_statements src =
  let out = ref [] and buf = Buffer.create 128 in
  let n = String.length src in
  let i = ref 0 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  while !i < n do
    (match src.[!i] with
    | '\'' ->
        (* copy the string literal verbatim, including '' escapes *)
        Buffer.add_char buf '\'';
        incr i;
        let rec copy () =
          if !i < n then begin
            Buffer.add_char buf src.[!i];
            if src.[!i] = '\'' then begin
              if !i + 1 < n && src.[!i + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                i := !i + 2;
                copy ()
              end
            end
            else begin
              incr i;
              copy ()
            end
          end
        in
        copy ()
    | '-' when !i + 1 < n && src.[!i + 1] = '-' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done;
        decr i
    | ';' -> flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !out

let run_script db src =
  List.iter
    (fun stmt ->
      if String.length stmt > 0 && stmt.[0] = '.' then protect (fun () -> meta db stmt)
      else begin
        let echo = if String.length stmt > 76 then String.sub stmt 0 73 ^ "..." else stmt in
        Printf.printf "rdb> %s\n" echo;
        let t0 = Unix.gettimeofday () in
        run_sql db stmt;
        Printf.printf "-- (%.1f ms)\n" (1000.0 *. (Unix.gettimeofday () -. t0))
      end)
    (split_statements src)

let repl db =
  print_endline "rdbsh — dynamic query optimization shell (.help for help)";
  let pending = Buffer.create 128 in
  let rec loop () =
    print_string (if Buffer.length pending = 0 then "rdb> " else "...> ");
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if Buffer.length pending = 0 && (trimmed = ".quit" || trimmed = ".exit") then ()
        else if
          Buffer.length pending = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
        then begin
          protect (fun () -> meta db trimmed);
          loop ()
        end
        else begin
          Buffer.add_string pending line;
          Buffer.add_char pending '\n';
          let src = Buffer.contents pending in
          (* Execute once the statement is terminated (or was a blank
             line on an empty buffer). *)
          if String.contains src ';' then begin
            Buffer.clear pending;
            List.iter (fun stmt -> run_sql db stmt) (split_statements src)
          end
          else if String.trim src = "" then Buffer.clear pending;
          loop ()
        end
  in
  loop ()

let main demo pool shards concurrent commands script =
  let db = Database.create ~pool_capacity:pool ~pool_shards:shards () in
  Rdb_storage.Buffer_pool.set_metrics (Database.pool db) (Some registry);
  if demo then load_demo db;
  if concurrent then protect (fun () -> run_concurrent db 4 12 7);
  match (commands, script) with
  | [], None -> if concurrent then () else repl db
  | cmds, script ->
      List.iter
        (fun sql ->
          Printf.printf "rdb> %s\n" sql;
          if String.length sql > 0 && sql.[0] = '.' then protect (fun () -> meta db sql)
          else run_sql db sql)
        cmds;
      (match script with
      | Some path -> run_script db (In_channel.with_open_text path In_channel.input_all)
      | None -> ())

open Cmdliner

let demo_flag =
  Arg.(value & flag & info [ "demo" ] ~doc:"Load the demo datasets at startup.")

let pool_opt =
  Arg.(value & opt int 256 & info [ "pool" ] ~docv:"BLOCKS" ~doc:"Buffer pool capacity.")

let shards_opt =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the buffer pool into $(docv) independent LRU shards (cost and \
           contention only — results are invariant; 1 is the classic monolithic \
           pool).")

let concurrent_flag =
  Arg.(
    value & flag
    & info [ "concurrent" ]
        ~doc:
          "Run a seeded mixed workload through the multi-query session scheduler \
           (shared buffer pool, admission control, fairness) and exit.  Same as the \
           .concurrent meta command.")

let exec_opt =
  Arg.(
    value & opt_all string []
    & info [ "e"; "execute" ] ~docv:"SQL" ~doc:"Execute a statement and exit.")

let script_opt =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Execute a SQL script and exit.")

let cmd =
  let doc = "SQL shell over the Rdb/VMS-style dynamic query optimizer" in
  Cmd.v
    (Cmd.info "rdbsh" ~doc)
    Term.(
      const main $ demo_flag $ pool_opt $ shards_opt $ concurrent_flag $ exec_opt
      $ script_opt)

let () = exit (Cmd.eval cmd)

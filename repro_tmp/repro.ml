module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic
open Rdb_engine

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by sp.Traffic.pred

let () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let table = Datasets.orders ~rows:2000 db in
  let idx = (List.hd (Table.indexes table)).Table.idx_name in
  Printf.printf "index: %s\n%!" idx;
  let cfg = { S.default_config with S.max_inflight = 1; max_queue = 1; shed_policy = S.Shed_newest } in
  let sched = S.create ~config:cfg db in
  let specs = Traffic.orders_mix ~seed:1 ~count:3 () in
  List.iter (fun sp -> ignore (S.submit sched ~label:sp.Traffic.label table (request_of sp))) specs;
  (* repair submitted last: Shed_newest will pick it as victim *)
  ignore (S.submit_repair sched ~label:"repair" table ~index:idx);
  let report = S.run sched in
  print_string (S.report_to_string report)

(* Crash–restart recovery (Recovery, DESIGN.md §15): the epoch
   supervisor reissues lost submissions and serves exactly the rows a
   never-crashed run serves; a crash mid-rebuild leaves a detectable
   orphan that restart recovery discards and resubmits; and recovery
   itself is idempotent — running it twice reaches the same manifest,
   the same health registry, and the same actions. *)

open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Recovery = Rdb_core.Recovery
module Goal = Rdb_core.Goal
module Trace = Rdb_exec.Trace
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic
module Buffer_pool = Rdb_storage.Buffer_pool
module Manifest = Rdb_storage.Manifest

let check = Alcotest.(check bool)

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

(* Two structurally identical databases: generators are deterministic
   from the seed, so the calm and the crashed run see the same data. *)
let build () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let table = Datasets.orders ~rows:4000 db in
  (db, table)

let subs table specs =
  List.map
    (fun (sp : Traffic.spec) ->
      Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
        (request_of sp))
    specs

let cfg = { S.default_config with S.max_inflight = 2; S.quantum = 2.0 }
let row_list rows = List.map Rdb_data.Row.to_string rows

(* --- reissued rows are byte-identical to a never-crashed run ---------- *)

let test_reissue_identity () =
  let specs = Traffic.orders_mix ~seed:5 ~count:6 () in
  let db_calm, table_calm = build () in
  let calm = Recovery.run ~config:cfg db_calm (subs table_calm specs) in
  let db_crash, table_crash = build () in
  let crashed =
    Recovery.run ~config:cfg
      ~crashes:[ [ S.Crash_at_grant 5 ]; [ S.Crash_at_grant 9 ] ]
      db_crash
      (subs table_crash specs)
  in
  check "calm run is one epoch with no recovery" true
    (List.length calm.Recovery.r_epochs = 1
    && (List.hd calm.Recovery.r_epochs).Recovery.ep_actions = None
    && calm.Recovery.r_crashes = 0
    && calm.Recovery.r_reissues = 0);
  check "crashed run crashed and reissued" true
    (crashed.Recovery.r_crashes >= 1 && crashed.Recovery.r_reissues >= 1);
  check "everything resolved" true
    (crashed.Recovery.r_unresolved = 0
    && crashed.Recovery.r_served + crashed.Recovery.r_shed
       + crashed.Recovery.r_timed_out
       = crashed.Recovery.r_submitted);
  List.iter2
    (fun (a : Recovery.final) (b : Recovery.final) ->
      check (Printf.sprintf "outcome identical for %s" a.Recovery.f_label) true
        (a.Recovery.f_label = b.Recovery.f_label
        && a.Recovery.f_outcome = b.Recovery.f_outcome);
      check (Printf.sprintf "rows byte-identical for %s" a.Recovery.f_label) true
        (row_list a.Recovery.f_rows = row_list b.Recovery.f_rows))
    calm.Recovery.r_finals crashed.Recovery.r_finals

(* --- zero-crash supervisor is byte-identical to the scheduler --------- *)

let test_zero_crash_identity () =
  let specs = Traffic.orders_mix ~seed:13 ~count:6 () in
  let db, table = build () in
  Buffer_pool.flush (Database.pool db);
  let sup = Recovery.run ~config:cfg db (subs table specs) in
  let db2, table2 = build () in
  Buffer_pool.flush (Database.pool db2);
  let sched = S.create ~config:cfg db2 in
  List.iter
    (fun (sp : Traffic.spec) ->
      ignore
        (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table2
           (request_of sp)))
    specs;
  let direct = S.run sched in
  check "single epoch report byte-identical to direct scheduler" true
    (S.report_to_string (List.hd sup.Recovery.r_epochs).Recovery.ep_report
    = S.report_to_string direct)

(* --- crash mid-rebuild: orphan discarded, rebuild resubmitted --------- *)

let test_crash_mid_repair () =
  let db, table = build () in
  let manifest = Buffer_pool.manifest (Database.pool db) in
  Buffer_pool.flush (Database.pool db);
  (* queries arrive late so the repair is admitted (and its side tree
     begun) before the crash at grant 2 hits it mid-rebuild *)
  let late =
    List.map
      (fun (sp : Traffic.spec) ->
        Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ~arrive_at:50 table (request_of sp))
      (Traffic.orders_mix ~seed:7 ~count:3 ())
  in
  let rep =
    Recovery.run ~config:cfg
      ~crashes:[ [ S.Crash_at_grant 2 ] ]
      ~repairs:[ (table, "CUST_IDX") ]
      db late
  in
  check "crashed once then finished clean" true
    (rep.Recovery.r_crashes = 1
    && List.length rep.Recovery.r_epochs >= 2
    && rep.Recovery.r_unresolved = 0);
  let actions =
    match (List.hd rep.Recovery.r_epochs).Recovery.ep_actions with
    | Some a -> a
    | None -> Alcotest.fail "first epoch should have crashed"
  in
  check "orphan side tree discarded" true
    (List.exists
       (fun (t, i, _) -> t = "ORDERS" && i = "CUST_IDX")
       actions.Recovery.act_orphans);
  check "rebuild resubmitted" true
    (List.mem ("ORDERS", "CUST_IDX") actions.Recovery.act_rebuilds);
  check "recovery events traced" true
    (List.exists
       (function Trace.Orphan_discarded _ -> true | _ -> false)
       rep.Recovery.r_trace
    && List.exists
         (function Trace.Rebuild_resubmitted _ -> true | _ -> false)
         rep.Recovery.r_trace);
  check "no orphans left in the manifest" true (Manifest.orphans manifest = []);
  check "index healthy after the resubmitted rebuild" true
    (Health.state (Table.health table) "CUST_IDX" = Health.Healthy);
  check "no quarantine verdicts left" true (Manifest.quarantines manifest = [])

(* --- recovery is idempotent (S3) -------------------------------------- *)

let recover_state db =
  let manifest = Buffer_pool.manifest (Database.pool db) in
  let health_of table =
    List.map
      (fun (idx : Table.index) ->
        ( idx.Table.idx_name,
          Health.state_to_string
            (Health.state (Table.health table) idx.Table.idx_name) ))
      (Table.indexes table)
  in
  (Manifest.to_string manifest, List.concat_map health_of (Database.tables db))

let prop_recover_twice_noop =
  QCheck.Test.make ~name:"recovering twice is a no-op" ~count:8
    QCheck.(pair (int_bound 100_000) (int_range 1 30))
    (fun (seed, g) ->
      let g = max 1 (min 30 g) in
      let db, table = build () in
      Buffer_pool.flush (Database.pool db);
      let sched =
        S.create ~config:{ cfg with S.crash_points = [ S.Crash_at_grant g ] } db
      in
      List.iter
        (fun (sp : Traffic.spec) ->
          ignore
            (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
               (request_of sp)))
        (Traffic.orders_mix ~seed ~count:4 ());
      ignore (S.submit_repair sched ~label:"repair:CUST_IDX" table ~index:"CUST_IDX");
      let rep = S.run sched in
      let crashed = rep.S.pool.S.p_crash_tick <> None in
      if crashed then Recovery.crash_teardown db;
      let a1 = Recovery.recover db in
      let state1 = recover_state db in
      let a2 = Recovery.recover db in
      let state2 = recover_state db in
      state1 = state2
      && a2.Recovery.act_orphans = []
      && a2.Recovery.act_requarantined = a1.Recovery.act_requarantined
      && a2.Recovery.act_rebuilds = a1.Recovery.act_rebuilds
      && ((not crashed) || a1.Recovery.act_orphans <> [] || a1.Recovery.act_requarantined = []))

let () =
  Alcotest.run "rdb_recovery"
    [
      ( "recovery",
        [
          Alcotest.test_case "reissued rows identical to never-crashed run" `Quick
            test_reissue_identity;
          Alcotest.test_case "zero-crash supervisor equals direct scheduler" `Quick
            test_zero_crash_identity;
          Alcotest.test_case "crash mid-rebuild: orphan discarded and resubmitted"
            `Quick test_crash_mid_repair;
          QCheck_alcotest.to_alcotest prop_recover_twice_noop;
        ] );
    ]

(* B+-tree tests: model-based random operations, structural
   invariants, range cursors, the Figure 5 estimator, and the two
   samplers. *)

open Rdb_data
open Rdb_btree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh ?(fanout = 5) () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:10_000 () in
  (Btree.create ~fanout pool, Rdb_storage.Cost.create ())

let k i : Btree.key = [| Value.int i |]
let rid i = Rid.make ~page:(i / 8) ~slot:(i mod 8)

let assert_ok t =
  match Btree.self_check t with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("self_check: " ^ e)

(* --- basic operations -------------------------------------------------- *)

let test_insert_lookup () =
  let t, m = fresh () in
  for i = 0 to 999 do
    Btree.insert t m (k (i * 7 mod 1000)) (rid i)
  done;
  assert_ok t;
  check_int "cardinality" 1000 (Btree.cardinality t);
  check "mem" true (Btree.mem t m (k 7) (rid 1));
  check "not mem" false (Btree.mem t m (k 7) (rid 999))

let test_duplicate_insert_ignored () =
  let t, m = fresh () in
  Btree.insert t m (k 1) (rid 1);
  Btree.insert t m (k 1) (rid 1);
  check_int "no dup" 1 (Btree.cardinality t);
  Btree.insert t m (k 1) (rid 2);
  check_int "same key different rid ok" 2 (Btree.cardinality t)

let test_delete () =
  let t, m = fresh () in
  for i = 0 to 499 do
    Btree.insert t m (k i) (rid i)
  done;
  for i = 0 to 499 do
    if i mod 2 = 0 then check "delete succeeds" true (Btree.delete t m (k i) (rid i))
  done;
  assert_ok t;
  check_int "half left" 250 (Btree.cardinality t);
  check "deleted gone" false (Btree.mem t m (k 0) (rid 0));
  check "absent delete" false (Btree.delete t m (k 0) (rid 0))

let test_delete_to_empty () =
  let t, m = fresh () in
  for i = 0 to 199 do
    Btree.insert t m (k i) (rid i)
  done;
  for i = 199 downto 0 do
    ignore (Btree.delete t m (k i) (rid i))
  done;
  assert_ok t;
  check_int "empty" 0 (Btree.cardinality t);
  check_int "height 1" 1 (Btree.height t);
  (* Reusable after emptying. *)
  Btree.insert t m (k 42) (rid 0);
  check_int "reinsert" 1 (Btree.cardinality t)

let test_height_grows_logarithmically () =
  let t, m = fresh ~fanout:8 () in
  for i = 0 to 4095 do
    Btree.insert t m (k i) (rid i)
  done;
  assert_ok t;
  check "height sane" true (Btree.height t >= 4 && Btree.height t <= 8)

(* --- model-based property --------------------------------------------- *)

let prop_matches_sorted_model =
  QCheck.Test.make ~name:"btree matches set model under random ops" ~count:40
    QCheck.(pair (int_bound 1000) (list (pair bool (int_bound 120))))
    (fun (seed, ops) ->
      ignore seed;
      let t, m = fresh ~fanout:4 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (is_insert, key) ->
          let r = rid key in
          if is_insert then begin
            Btree.insert t m (k key) r;
            Hashtbl.replace model key ()
          end
          else begin
            ignore (Btree.delete t m (k key) r);
            Hashtbl.remove model key
          end)
        ops;
      (match Btree.self_check t with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      let model_sorted = List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) model []) in
      let tree_keys = ref [] in
      Btree.iter_range t m Btree.full_range (fun key _ ->
          match key.(0) with
          | Value.Int i -> tree_keys := i :: !tree_keys
          | _ -> ());
      List.rev !tree_keys = model_sorted)

(* --- range cursors ------------------------------------------------------ *)

let test_range_inclusive_exclusive () =
  let t, m = fresh () in
  for i = 0 to 99 do
    Btree.insert t m (k i) (rid i)
  done;
  let count range = Btree.count_range t m range in
  check_int "incl incl" 11 (count (Btree.range_incl (k 10) (k 20)));
  check_int "excl lo" 10 (count { Btree.lo = Btree.Excl (k 10); hi = Btree.Incl (k 20) });
  check_int "excl hi" 10 (count { Btree.lo = Btree.Incl (k 10); hi = Btree.Excl (k 20) });
  check_int "unbounded lo" 21 (count { Btree.lo = Btree.Unbounded; hi = Btree.Incl (k 20) });
  check_int "unbounded hi" 9 (count { Btree.lo = Btree.Excl (k 90); hi = Btree.Unbounded });
  check_int "empty range" 0 (count (Btree.range_incl (k 60) (k 50)));
  check_int "point" 1 (count (Btree.point_range (k 42)))

let test_range_with_duplicates () =
  let t, m = fresh () in
  for i = 0 to 299 do
    Btree.insert t m (k (i mod 10)) (rid i)
  done;
  check_int "dup point range" 30 (Btree.count_range t m (Btree.point_range (k 3)));
  check_int "dup span" 90 (Btree.count_range t m (Btree.range_incl (k 3) (k 5)))

let test_composite_prefix_range () =
  let t, m = fresh () in
  for a = 0 to 9 do
    for b = 0 to 9 do
      Btree.insert t m [| Value.int a; Value.int b |] (rid ((a * 10) + b))
    done
  done;
  (* Prefix bound [3] matches all keys starting with 3. *)
  check_int "prefix point" 10 (Btree.count_range t m (Btree.point_range [| Value.int 3 |]));
  check_int "prefix+range" 4
    (Btree.count_range t m
       (Btree.range_incl [| Value.int 3; Value.int 2 |] [| Value.int 3; Value.int 5 |]));
  (* Exclusive prefix bound excludes the whole prefix group. *)
  check_int "excl prefix" 60
    (Btree.count_range t m { Btree.lo = Btree.Excl [| Value.int 3 |]; hi = Btree.Unbounded })

let test_cursor_consumed_and_exhaustion () =
  let t, m = fresh () in
  for i = 0 to 49 do
    Btree.insert t m (k i) (rid i)
  done;
  let c = Btree.cursor t m (Btree.range_incl (k 10) (k 14)) in
  let rec drain n = match Btree.next c with Some _ -> drain (n + 1) | None -> n in
  check_int "drained" 5 (drain 0);
  check_int "consumed" 5 (Btree.consumed c);
  check "stays exhausted" true (Btree.next c = None)

let prop_range_matches_filter =
  QCheck.Test.make ~name:"range scan equals filtered full scan" ~count:60
    QCheck.(triple (list (int_bound 200)) (int_bound 200) (int_bound 200))
    (fun (keys, a, b) ->
      let lo = Int.min a b and hi = Int.max a b in
      let t, m = fresh ~fanout:6 () in
      List.iteri (fun i key -> Btree.insert t m (k key) (rid i)) keys;
      let in_range = Btree.count_range t m (Btree.range_incl (k lo) (k hi)) in
      (* Every (key, rid) pair is unique because rids are derived from
         distinct list positions, so multiplicity is preserved. *)
      let expected = List.length (List.filter (fun key -> key >= lo && key <= hi) keys) in
      in_range = expected)

let test_multi_cursor_unions_ranges () =
  let t, m = fresh () in
  for i = 0 to 99 do
    Btree.insert t m (k i) (rid i)
  done;
  let mc =
    Btree.multi_cursor t m
      [ Btree.range_incl (k 10) (k 12); Btree.range_incl (k 50) (k 51);
        Btree.point_range (k 80) ]
  in
  let keys = ref [] in
  let rec drain () =
    match Btree.multi_next mc with
    | Some (key, _) ->
        (match key.(0) with Value.Int v -> keys := v :: !keys | _ -> ());
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ranges in order" [ 10; 11; 12; 50; 51; 80 ] (List.rev !keys);
  check_int "consumed" 6 (Btree.multi_consumed mc);
  check "stays exhausted" true (Btree.multi_next mc = None)

let test_multi_cursor_empty_ranges () =
  let t, m = fresh () in
  for i = 0 to 20 do
    Btree.insert t m (k (i * 2)) (rid i)
  done;
  let mc =
    Btree.multi_cursor t m
      [ Btree.point_range (k 1); Btree.point_range (k 4); Btree.point_range (k 999) ]
  in
  let n = ref 0 in
  let rec drain () =
    match Btree.multi_next mc with Some _ -> incr n; drain () | None -> ()
  in
  drain ();
  check_int "only the middle range hits" 1 !n

(* --- estimation (Figure 5) ---------------------------------------------- *)

let test_estimate_exact_at_leaf () =
  let t, m = fresh ~fanout:64 () in
  for i = 0 to 30 do
    Btree.insert t m (k i) (rid i)
  done;
  (* Single leaf: descent reaches the leaf, count is exact. *)
  let r = Estimate.range t m (Btree.range_incl (k 5) (k 9)) in
  check "exact" true r.Estimate.exact;
  Alcotest.(check (float 0.01)) "count" 5.0 r.Estimate.estimate

let test_estimate_paper_formula () =
  (* RangeRIDs ~ k * f^(l-1): on a uniform tree the estimate must be
     within a small factor of the truth for mid-size ranges. *)
  let t, m = fresh ~fanout:8 () in
  for i = 0 to 9999 do
    Btree.insert t m (k i) (rid i)
  done;
  List.iter
    (fun (lo, hi) ->
      let actual = float_of_int (hi - lo + 1) in
      let r = Estimate.range t m (Btree.range_incl (k lo) (k hi)) in
      let ratio = r.Estimate.estimate /. actual in
      check
        (Printf.sprintf "range [%d,%d] ratio %.2f in [1/4,4]" lo hi ratio)
        true
        (ratio > 0.25 && ratio < 4.0))
    [ (0, 99); (500, 1500); (2000, 2100); (100, 8000); (9990, 9999) ]

let test_estimate_cheapness () =
  let t, m0 = fresh ~fanout:8 () in
  for i = 0 to 9999 do
    Btree.insert t m0 (k i) (rid i)
  done;
  let r = Estimate.range t (Rdb_storage.Cost.create ()) (Btree.range_incl (k 400) (k 4000)) in
  check "few node reads" true (r.Estimate.nodes_visited <= Btree.height t)

let test_estimate_empty_range_exact_zero () =
  let t, m = fresh ~fanout:8 () in
  for i = 0 to 999 do
    Btree.insert t m (k (i * 2)) (rid i)
  done;
  (* A range between existing keys but containing none. *)
  let r = Estimate.range t m (Btree.range_incl (k 10001) (k 10100)) in
  check "exact" true r.Estimate.exact;
  Alcotest.(check (float 0.001)) "zero" 0.0 r.Estimate.estimate

let test_estimate_selectivity_clamped () =
  let t, m = fresh () in
  for i = 0 to 99 do
    Btree.insert t m (k i) (rid i)
  done;
  let s = Estimate.selectivity t m Btree.full_range in
  check "selectivity <= 1" true (s <= 1.0 && s >= 0.9)

(* --- sampling ------------------------------------------------------------ *)

let test_sampling_uniformity () =
  let t, m = fresh ~fanout:6 () in
  (* Deliberately skewed insertion order; values 0..999. *)
  let rng = Rdb_util.Prng.create ~seed:31 in
  for i = 0 to 1999 do
    Btree.insert t m (k (Rdb_util.Prng.int rng 1000)) (rid i)
  done;
  let total = Btree.cardinality t in
  let below =
    let n = ref 0 in
    Btree.iter_range t m Btree.full_range (fun key _ ->
        match key.(0) with Value.Int v when v < 300 -> incr n | _ -> ());
    float_of_int !n /. float_of_int total
  in
  let frac stats =
    let hits =
      Array.fold_left
        (fun acc (key, _) ->
          match key.(0) with Value.Int v when v < 300 -> acc + 1 | _ -> acc)
        0 stats.Sampling.samples
    in
    float_of_int hits /. float_of_int (Array.length stats.Sampling.samples)
  in
  let rng = Rdb_util.Prng.create ~seed:77 in
  let ranked = Sampling.ranked rng t m ~n:3000 in
  let ar = Sampling.acceptance_rejection rng t m ~n:3000 () in
  check "ranked near truth" true (Float.abs (frac ranked -. below) < 0.05);
  check "a/r near truth" true (Float.abs (frac ar -. below) < 0.05)

let test_ranked_cheaper_than_ar () =
  (* The [Ant92] claim: pseudo-ranked descent wastes no rejected
     descents, acceptance/rejection wastes many. *)
  let t, m = fresh ~fanout:6 () in
  for i = 0 to 4999 do
    Btree.insert t m (k i) (rid i)
  done;
  let rng = Rdb_util.Prng.create ~seed:13 in
  let ranked = Sampling.ranked rng t m ~n:500 in
  let ar = Sampling.acceptance_rejection rng t m ~n:500 () in
  check_int "ranked descents = n" 500 ranked.Sampling.descents;
  check "a/r needs more descents" true (ar.Sampling.descents > ranked.Sampling.descents);
  check "a/r visits more nodes" true (ar.Sampling.nodes_visited > ranked.Sampling.nodes_visited)

let test_estimate_fraction () =
  let t, m = fresh ~fanout:8 () in
  for i = 0 to 1999 do
    Btree.insert t m (k i) (rid i)
  done;
  let rng = Rdb_util.Prng.create ~seed:3 in
  let f =
    Sampling.estimate_fraction rng t m ~n:2000 (fun key _ ->
        match key.(0) with Value.Int v -> v mod 2 = 0 | _ -> false)
  in
  check "even fraction ~0.5" true (Float.abs (f -. 0.5) < 0.05)

let test_sampling_empty_tree () =
  let t, m = fresh () in
  let rng = Rdb_util.Prng.create ~seed:1 in
  let s = Sampling.ranked rng t m ~n:10 in
  check_int "no samples" 0 (Array.length s.Sampling.samples);
  let s2 = Sampling.acceptance_rejection rng t m ~n:10 () in
  check_int "no samples a/r" 0 (Array.length s2.Sampling.samples)

(* --- edge cases -------------------------------------------------------------- *)

let test_string_and_composite_keys () =
  let t, m = fresh ~fanout:4 () in
  let names = [| "delta"; "alpha"; "echo"; "bravo"; "charlie" |] in
  Array.iteri
    (fun i name ->
      Btree.insert t m [| Value.str name; Value.int i |] (rid i))
    names;
  assert_ok t;
  let collected = ref [] in
  Btree.iter_range t m Btree.full_range (fun key _ ->
      match key.(0) with Value.Str s -> collected := s :: !collected | _ -> ());
  Alcotest.(check (list string))
    "string key order"
    [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ]
    (List.rev !collected);
  (* prefix range on the string column *)
  check_int "prefix point" 1
    (Btree.count_range t m (Btree.point_range [| Value.str "bravo" |]))

let test_minimum_fanout_stress () =
  let t, m = fresh ~fanout:3 () in
  for i = 0 to 999 do
    Btree.insert t m (k (i * 17 mod 1000)) (rid i)
  done;
  assert_ok t;
  for i = 0 to 999 do
    if i mod 3 <> 0 then ignore (Btree.delete t m (k (i * 17 mod 1000)) (rid i))
  done;
  assert_ok t;
  check "still consistent" true (Btree.cardinality t > 0)

let test_height_shrinks_after_mass_delete () =
  let t, m = fresh ~fanout:4 () in
  for i = 0 to 2000 do
    Btree.insert t m (k i) (rid i)
  done;
  let tall = Btree.height t in
  for i = 0 to 1990 do
    ignore (Btree.delete t m (k i) (rid i))
  done;
  assert_ok t;
  check "height decreased" true (Btree.height t < tall)

let test_all_duplicate_keys () =
  let t, m = fresh ~fanout:4 () in
  for i = 0 to 499 do
    Btree.insert t m (k 7) (rid i)
  done;
  assert_ok t;
  check_int "all stored" 500 (Btree.cardinality t);
  check_int "point range finds all" 500 (Btree.count_range t m (Btree.point_range (k 7)));
  (* estimator sees a heavy duplicate run *)
  let r = Estimate.range t m (Btree.point_range (k 7)) in
  check "estimate near 500" true (r.Estimate.estimate > 100.0)

let test_null_keys_sort_first () =
  let t, m = fresh () in
  Btree.insert t m [| Value.Null |] (rid 0);
  Btree.insert t m [| Value.int (-5) |] (rid 1);
  Btree.insert t m [| Value.int 5 |] (rid 2);
  let first = ref None in
  Btree.iter_range t m Btree.full_range (fun key _ ->
      if !first = None then first := Some key.(0));
  check "null first" true (!first = Some Value.Null);
  (* an Excl [Null] low bound skips the null *)
  check_int "null excluded" 2
    (Btree.count_range t m { Btree.lo = Btree.Excl [| Value.Null |]; hi = Btree.Unbounded })

(* --- cost charging --------------------------------------------------------- *)

let test_scans_charge_pool () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:4 () in
  let t = Btree.create ~fanout:4 pool in
  let m = Rdb_storage.Cost.create () in
  for i = 0 to 499 do
    Btree.insert t m (k i) (rid i)
  done;
  let m2 = Rdb_storage.Cost.create () in
  ignore (Btree.count_range t m2 Btree.full_range);
  check "leaf walks charged" true
    (Rdb_storage.Cost.physical_reads m2 + Rdb_storage.Cost.logical_reads m2
    >= Btree.leaf_count t)

let () =
  Alcotest.run "rdb_btree"
    [
      ( "ops",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "duplicates" `Quick test_duplicate_insert_ignored;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
          Alcotest.test_case "height" `Quick test_height_grows_logarithmically;
          QCheck_alcotest.to_alcotest prop_matches_sorted_model;
        ] );
      ( "ranges",
        [
          Alcotest.test_case "multi-cursor union" `Quick test_multi_cursor_unions_ranges;
          Alcotest.test_case "multi-cursor empties" `Quick test_multi_cursor_empty_ranges;
          Alcotest.test_case "inclusive/exclusive" `Quick test_range_inclusive_exclusive;
          Alcotest.test_case "duplicates" `Quick test_range_with_duplicates;
          Alcotest.test_case "composite prefix" `Quick test_composite_prefix_range;
          Alcotest.test_case "cursor consumed" `Quick test_cursor_consumed_and_exhaustion;
          QCheck_alcotest.to_alcotest prop_range_matches_filter;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "exact at leaf" `Quick test_estimate_exact_at_leaf;
          Alcotest.test_case "paper formula accuracy" `Quick test_estimate_paper_formula;
          Alcotest.test_case "cheapness" `Quick test_estimate_cheapness;
          Alcotest.test_case "empty range exact zero" `Quick
            test_estimate_empty_range_exact_zero;
          Alcotest.test_case "selectivity clamp" `Quick test_estimate_selectivity_clamped;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "uniformity" `Quick test_sampling_uniformity;
          Alcotest.test_case "ranked cheaper than a/r" `Quick test_ranked_cheaper_than_ar;
          Alcotest.test_case "estimate_fraction" `Quick test_estimate_fraction;
          Alcotest.test_case "empty tree" `Quick test_sampling_empty_tree;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "string/composite keys" `Quick test_string_and_composite_keys;
          Alcotest.test_case "fanout-3 stress" `Quick test_minimum_fanout_stress;
          Alcotest.test_case "height shrinks" `Quick test_height_shrinks_after_mass_delete;
          Alcotest.test_case "all duplicates" `Quick test_all_duplicate_keys;
          Alcotest.test_case "NULL keys first" `Quick test_null_keys_sort_first;
        ] );
      ("cost", [ Alcotest.test_case "scans charge pool" `Quick test_scans_charge_pool ]);
    ]

(* Self-healing storage: the health-state machine's transition table,
   the deterministic fail_at_access schedule, the quarantine-backoff
   contract (no access to a quarantined structure until its re-probe is
   due, then exactly one probe), and the observation-equivalence of
   online repair (corrupt -> quarantine -> rebuild -> re-query returns
   the pristine heap-multiset rows). *)

open Rdb_data
open Rdb_engine
open Rdb_storage
module Btree = Rdb_btree.Btree
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Trace = Rdb_exec.Trace

let check = Alcotest.(check bool)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

let make_fixture ?(rows = 3000) ?(seed = 23) () =
  let db = Database.create ~pool_capacity:128 () in
  let table = Database.create_table db ~page_bytes:1024 ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  (db, table)

let pred x_hi y_hi =
  let open Predicate in
  And [ "X" <% Value.int x_hi; "Y" <% Value.int y_hi ]

let multiset rows =
  List.sort compare (List.map (fun r -> Value.to_string (Row.get r 0)) rows)

let heap_oracle table p =
  let m = Cost.create () in
  let out = ref [] in
  Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval p (Table.schema table) row then out := row :: !out);
  multiset !out

let index_file table name =
  Btree.file_id (Option.get (Table.find_index table name)).Table.tree

(* --- the state machine itself --------------------------------------- *)

let test_machine () =
  let t = Health.create () in
  (* defaults: threshold 2, budget 400, factor 2 *)
  check "unknown structure is healthy" true (Health.state t "I" = Health.Healthy);
  check "unknown structure is usable" true (Health.usable t ~now:0.0 "I");
  (match Health.record_corrupt t ~now:0.0 "I" with
  | Some tr -> check "first mismatch suspects" true (tr.Health.tr_to = Health.Suspect)
  | None -> Alcotest.fail "first corrupt produced no transition");
  check "suspect still usable" true (Health.usable t ~now:0.0 "I");
  (match Health.record_corrupt t ~now:10.0 "I" with
  | Some tr ->
      check "threshold quarantines" true (tr.Health.tr_to = Health.Quarantined)
  | None -> Alcotest.fail "threshold corrupt produced no transition");
  check "quarantined not usable before due" true
    (not (Health.usable t ~now:100.0 "I"));
  check "probe not due early" true (not (Health.probe_due t ~now:100.0 "I"));
  check "probe due after budget" true (Health.probe_due t ~now:410.0 "I");
  check "usable exactly when probe due" true (Health.usable t ~now:410.0 "I");
  (* failed probe escalates: budget 400 -> 800, due moves out *)
  check "failed probe is stateless" true (Health.record_dead t ~now:500.0 "I" = None);
  check "escalated backoff holds" true (not (Health.usable t ~now:1299.0 "I"));
  check "escalated backoff elapses" true (Health.usable t ~now:1300.0 "I");
  (match Health.mark_healthy t "I" with
  | Some tr -> check "probe success heals" true (tr.Health.tr_to = Health.Healthy)
  | None -> Alcotest.fail "mark_healthy produced no transition");
  (* rebuild lifecycle: any -> Rebuilding (unusable) -> Healthy on ok *)
  ignore (Health.record_dead t ~now:0.0 "I");
  ignore (Health.begin_rebuild t "I");
  check "rebuilding is unusable even past due" true
    (not (Health.usable t ~now:1.0e9 "I"));
  (match Health.end_rebuild t ~now:100.0 ~ok:true "I" with
  | Some tr -> check "rebuild ok heals" true (tr.Health.tr_to = Health.Healthy)
  | None -> Alcotest.fail "end_rebuild ok produced no transition");
  (* failed rebuild re-quarantines with the backoff escalated (800) *)
  ignore (Health.record_dead t ~now:0.0 "I");
  ignore (Health.begin_rebuild t "I");
  (match Health.end_rebuild t ~now:2000.0 ~ok:false "I" with
  | Some tr ->
      check "rebuild failure quarantines" true (tr.Health.tr_to = Health.Quarantined)
  | None -> Alcotest.fail "end_rebuild failure produced no transition");
  check "failed rebuild escalated the backoff" true
    ((not (Health.usable t ~now:2799.0 "I")) && Health.usable t ~now:2800.0 "I");
  match Health.report t ~now:2000.0 with
  | [ s ] ->
      check "report shows quarantine with a countdown" true
        (s.Health.structure = "I"
        && s.Health.st = Health.Quarantined
        && s.Health.probe_in = Some 800.0
        && s.Health.transitions > 0)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 status, got %d" (List.length l))

(* --- deterministic fail_at_access schedule --------------------------- *)

let test_fail_at_access () =
  let db, table = make_fixture () in
  let pool = Database.pool db in
  let heap_file = Heap_file.file_id (Table.heap table) in
  let run () =
    Buffer_pool.flush pool;
    let inj = Fault.create (Fault.plan ~fail_at_access:[ (heap_file, 7) ] ~seed:3 ()) in
    Buffer_pool.set_injector pool (Some inj);
    let rows, s = R.run table (R.request (pred 25 450)) in
    Buffer_pool.set_injector pool None;
    (rows, s, inj)
  in
  let rows_a, s_a, inj_a = run () in
  let rows_b, s_b, inj_b = run () in
  let retries s =
    List.length
      (List.filter (function Trace.Fault_retry _ -> true | _ -> false) s.R.trace)
  in
  check "scheduled fault fired exactly once per run" true
    (Fault.injected_transient inj_a = 1 && Fault.injected_transient inj_b = 1);
  check "the schedule's access counter is live" true
    (Fault.read_accesses inj_a ~file:heap_file >= 7);
  check "both runs recover through a retry" true
    (retries s_a >= 1 && retries s_a = retries s_b);
  check "rows identical across runs" true (multiset rows_a = multiset rows_b);
  check "costs identical across runs" true (s_a.R.total_cost = s_b.R.total_cost);
  check "both runs complete" true
    (s_a.R.status = R.Completed && s_b.R.status = R.Completed)

(* --- quarantine backoff: never touched until due --------------------- *)

let quarantine_x table pool x_file p =
  Buffer_pool.flush pool;
  Buffer_pool.set_injector pool
    (Some (Fault.create (Fault.plan ~persistent_files:[ x_file ] ~seed:5 ())));
  let rows, _ = R.run table (R.request p) in
  Buffer_pool.set_injector pool None;
  rows

let mentions_index name = function
  | Trace.Estimated { index; _ }
  | Trace.Scan_started { index; _ }
  | Trace.Index_quarantined { index; _ } ->
      index = name
  | _ -> false

let test_backoff_no_touch () =
  let db, table = make_fixture () in
  let pool = Database.pool db in
  let p = pred 25 450 in
  let oracle = heap_oracle table p in
  (* an effectively infinite backoff: the quarantine never becomes due *)
  Health.configure (Table.health table)
    { Health.default_config with Health.backoff_budget = 1.0e9 };
  let x_file = index_file table "X_IDX" in
  let rows1 = quarantine_x table pool x_file p in
  check "damage query still answers" true (multiset rows1 = oracle);
  check "X_IDX quarantined" true
    (Health.state (Table.health table) "X_IDX" = Health.Quarantined);
  (* During backoff the quarantined index must not be probed: the
     injector counts every read access to its file (the scheduled fault
     itself is unreachable), and the persistent fault would fire loudly
     on any slip. *)
  Buffer_pool.flush pool;
  let inj =
    Fault.create
      (Fault.plan ~persistent_files:[ x_file ]
         ~fail_at_access:[ (x_file, 1_000_000) ]
         ~seed:6 ())
  in
  Buffer_pool.set_injector pool (Some inj);
  let rows2, s2 = R.run table (R.request p) in
  Buffer_pool.set_injector pool None;
  check "no access to the quarantined index during backoff" true
    (Fault.read_accesses inj ~file:x_file = 0);
  check "no planning events mention the quarantined index" true
    (not (List.exists (mentions_index "X_IDX") s2.R.trace));
  check "degraded query still answers" true
    (multiset rows2 = oracle && s2.R.status = R.Completed)

let test_backoff_reprobe () =
  let db, table = make_fixture () in
  let pool = Database.pool db in
  let p = pred 25 450 in
  let oracle = heap_oracle table p in
  (* a tiny backoff: the next query is already past due *)
  Health.configure (Table.health table)
    { Health.default_config with Health.backoff_budget = 1.0 };
  let x_file = index_file table "X_IDX" in
  ignore (quarantine_x table pool x_file p);
  check "X_IDX quarantined" true
    (Health.state (Table.health table) "X_IDX" = Health.Quarantined);
  (* probe due, structure still dead: the probe touches the file, the
     fault escalates the backoff, the query still answers *)
  Buffer_pool.flush pool;
  let inj =
    Fault.create
      (Fault.plan ~persistent_files:[ x_file ]
         ~fail_at_access:[ (x_file, 1_000_000) ]
         ~seed:7 ())
  in
  Buffer_pool.set_injector pool (Some inj);
  let rows2, _ = R.run table (R.request p) in
  Buffer_pool.set_injector pool None;
  check "due probe touched the dead index" true
    (Fault.read_accesses inj ~file:x_file > 0);
  check "failed probe keeps it quarantined" true
    (Health.state (Table.health table) "X_IDX" = Health.Quarantined);
  check "query under failed probe still answers" true (multiset rows2 = oracle);
  (* fault cleared: the next due probe succeeds and heals the index *)
  Buffer_pool.flush pool;
  let rows3, s3 = R.run table (R.request p) in
  check "successful probe heals" true
    (Health.state (Table.health table) "X_IDX" = Health.Healthy);
  check "recovery transition traced" true
    (List.exists
       (function
         | Trace.Health_transition { to_ = "healthy"; _ } -> true | _ -> false)
       s3.R.trace);
  check "healed query answers" true (multiset rows3 = oracle)

(* --- repair is observation-equivalent -------------------------------- *)

let prop_repair_equiv =
  QCheck.Test.make
    ~name:"repair is observation-equivalent (rebuild restores pristine rows)"
    ~count:6
    QCheck.(triple (int_bound 1000) (int_range 5 95) (int_range 50 950))
    (fun (seed, x_hi, y_hi) ->
      let victim = if seed mod 2 = 0 then "X_IDX" else "Y_IDX" in
      let db, table = make_fixture ~rows:2000 ~seed:(31 + seed) () in
      let pool = Database.pool db in
      let p = pred x_hi y_hi in
      let oracle = heap_oracle table p in
      Buffer_pool.flush pool;
      let pristine, _ = R.run table (R.request p) in
      let vfile = index_file table victim in
      (* kill the victim's file; quarantine may land at planning or at
         the scan's fault boundary, so allow a few queries *)
      Buffer_pool.set_injector pool
        (Some (Fault.create (Fault.plan ~persistent_files:[ vfile ] ~seed:11 ())));
      let damaged_rows = ref [] in
      let attempts = ref 0 in
      while
        Health.state (Table.health table) victim <> Health.Quarantined
        && !attempts < 3
      do
        incr attempts;
        Buffer_pool.flush pool;
        let rows, _ = R.run table (R.request p) in
        damaged_rows := rows :: !damaged_rows
      done;
      let quarantined =
        Health.state (Table.health table) victim = Health.Quarantined
      in
      (* online repair through the scheduler, faults still installed;
         a foreground query runs alongside *)
      let cfg = { S.default_config with S.max_inflight = 2; S.quantum = 50.0 } in
      let sched = S.create ~config:cfg db in
      let qid = S.submit sched ~label:"fg" table (R.request p) in
      let rid = S.submit_repair sched ~label:"repair" table ~index:victim in
      let _rep = S.run sched in
      let fg_rows = S.rows_of sched qid in
      Buffer_pool.set_injector pool None;
      Buffer_pool.flush pool;
      let after, s_after = R.run table (R.request p) in
      quarantined
      && List.for_all (fun rows -> multiset rows = oracle) !damaged_rows
      && multiset fg_rows = oracle
      && S.repair_of sched rid = Some true
      && Health.state (Table.health table) victim = Health.Healthy
      && multiset pristine = oracle
      && multiset after = oracle
      && s_after.R.status = R.Completed)

let () =
  Alcotest.run "rdb_health"
    [
      ( "health",
        [
          Alcotest.test_case "state machine transitions" `Quick test_machine;
          Alcotest.test_case "fail_at_access is deterministic" `Quick
            test_fail_at_access;
          Alcotest.test_case "quarantine backoff: no touch until due" `Quick
            test_backoff_no_touch;
          Alcotest.test_case "quarantine backoff: re-probe and heal" `Quick
            test_backoff_reprobe;
          QCheck_alcotest.to_alcotest prop_repair_equiv;
        ] );
    ]

(* Tests for the dynamic optimizer: goal resolution, the §3
   competition arithmetic, the §5 initial stage, tactic selection and
   the Figure 4 control flow, retrieval correctness against an oracle,
   and the two static baselines. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
module Goal = Rdb_core.Goal
module R = Rdb_core.Retrieval
module IS = Rdb_core.Initial_stage
module CM = Rdb_core.Competition_math
module SO = Rdb_core.Static_optimizer
module SJ = Rdb_core.Static_jscan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- goals ----------------------------------------------------------------- *)

let test_goal_inference_rules () =
  let resolve ?explicit ?context () =
    fst (Goal.resolve ?explicit ?context ~default:Goal.Total_time ())
  in
  check "exists -> fast-first" true (resolve ~context:Goal.Exists () = Goal.Fast_first);
  check "limit -> fast-first" true (resolve ~context:(Goal.Limit 2) () = Goal.Fast_first);
  check "sort -> total-time" true (resolve ~context:Goal.Sort () = Goal.Total_time);
  check "aggregate -> total-time" true (resolve ~context:Goal.Aggregate () = Goal.Total_time);
  check "cursor defers to user" true
    (resolve ~explicit:Goal.Fast_first ~context:Goal.Cursor () = Goal.Fast_first);
  check "no context uses default" true (resolve () = Goal.Total_time);
  (* The controlling node beats the explicit request (the paper's B
     table gets total-time despite OPTIMIZE FOR TOTAL TIME... i.e. the
     SORT wins over any user setting). *)
  check "controlling node beats user" true
    (resolve ~explicit:Goal.Fast_first ~context:Goal.Sort () = Goal.Total_time)

(* --- §3 competition arithmetic ---------------------------------------------- *)

let test_lshape_has_half_mass_below_knee () =
  let d = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  Alcotest.(check (float 0.02)) "half mass" 0.5 (CM.cdf d 10.0)

let test_direct_competition_halves_cost () =
  (* The paper's arithmetic: run A2 to its knee c2, then switch to A1;
     expected cost ~ (m2 + c2 + M1)/2, about half the traditional M1. *)
  let a1 = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let a2 = CM.l_shaped ~knee:8.0 ~cmax:1200.0 () in
  let m1 = CM.mean a1 in
  let c2 = CM.quantile a2 0.5 in
  let m2 = CM.mean_below a2 c2 in
  let competition = CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:c2 in
  let predicted = 0.5 *. (m2 +. c2 +. m1) in
  Alcotest.(check (float (0.05 *. predicted))) "paper formula" predicted competition;
  check "beats traditional" true (competition < 0.75 *. m1)

let test_optimal_switch_at_least_as_good () =
  let a1 = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let a2 = CM.l_shaped ~knee:8.0 ~cmax:1200.0 () in
  let c2 = CM.quantile a2 0.5 in
  let tau, best = CM.optimal_switch ~try_:a2 ~fallback:a1 in
  check "optimal <= knee policy" true
    (best <= CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:c2 +. 1e-6);
  check "tau positive" true (tau > 0.0)

let test_switch_cost_degenerates_correctly () =
  let a1 = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let a2 = CM.l_shaped ~knee:8.0 ~cmax:1200.0 () in
  (* Switching at ~0 is just running A1; switching at cmax is just A2. *)
  let at_zero = CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:0.001 in
  Alcotest.(check (float 1.0)) "tau=0 ~ mean A1" (CM.mean a1) at_zero;
  let at_max = CM.switch_cost ~try_:a2 ~fallback:a1 ~switch_at:1200.0 in
  Alcotest.(check (float 1.0)) "tau=max ~ mean A2" (CM.mean a2) at_max

let test_simultaneous_beats_single_on_lshapes () =
  let a = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let b = CM.l_shaped ~knee:10.0 ~cmax:1000.0 () in
  let _, _, best = CM.optimal_simultaneous ~a ~b in
  check "simultaneous beats single run" true (best < CM.mean a)

let test_simultaneous_total_accounting () =
  (* Deterministic check of the per-realization cost accounting via
     two point distributions. *)
  let point x =
    CM.of_dist (Rdb_dist.Dist.point (x /. 100.0)) ~cmax:100.0
  in
  (* A costs 60 at speed .5 -> completes at wall 120; B costs 10 at
     speed .5 -> completes at wall 20 -> B first, total 20. *)
  let c = CM.simultaneous_cost ~a:(point 60.0) ~b:(point 10.0) ~speed_a:0.5 ~abandon_b_at:50.0 in
  Alcotest.(check (float 2.0)) "b completes first" 20.0 c;
  (* B abandoned at 5 of its own progress (wall 10); A then finishes
     alone: total = 10 + (60 - 5) = 65. *)
  let c2 = CM.simultaneous_cost ~a:(point 60.0) ~b:(point 10.0) ~speed_a:0.5 ~abandon_b_at:5.0 in
  Alcotest.(check (float 2.0)) "b abandoned" 65.0 c2

(* --- fixture ------------------------------------------------------------------ *)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

let fixture ?(rows = 4000) ?(pool_capacity = 1024) ?(seed = 19) () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:pool_capacity () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  ignore (Table.create_index table ~name:"XY_IDX" ~columns:[ "X"; "Y" ] ());
  table

let oracle table pred =
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  List.rev !out

let sort_rows rows = List.sort (fun a b -> Row.compare_at [| 0 |] a b) rows

(* --- initial stage -------------------------------------------------------------- *)

let stage table pred ?(needed = [ "ID"; "X"; "Y"; "S" ]) ?(order = []) () =
  let m = Rdb_storage.Cost.create () in
  let trace = Trace.create () in
  ( IS.run table m trace ~feedback_rate:0.0 ~restriction:pred ~needed_columns:needed
      ~order_by:order,
    trace )

let test_initial_stage_orders_by_estimate () =
  let table = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 3; between "Y" (Value.int 0) (Value.int 800) ] in
  match stage table pred () with
  | IS.Arranged c, _ ->
      let ests = List.map (fun cand -> cand.Scan.est) c.IS.jscan_candidates in
      let rec mono = function a :: b :: r -> a <= b && mono (b :: r) | _ -> true in
      check "ascending estimates" true (mono ests);
      check "several candidates" true (List.length c.IS.jscan_candidates >= 2)
  | IS.No_rows _, _ -> Alcotest.fail "unexpected cancellation"

let test_initial_stage_empty_range_cancels () =
  let table = fixture () in
  let open Predicate in
  match stage table ("X" >% Value.int 5000) () with
  | IS.No_rows _, trace ->
      check "trace records it" true
        (Trace.count trace (function Trace.Empty_range _ -> true | _ -> false) = 1)
  | IS.Arranged _, _ -> Alcotest.fail "expected cancellation"

let test_initial_stage_shortcut_on_tiny_range () =
  let table = fixture () in
  (* Insert a unique key value so the estimate is tiny and exact. *)
  ignore (Table.insert table [| Value.int 99999; Value.int 777; Value.int 5; Value.str "u" |]);
  let idx = Option.get (Table.find_index table "X_IDX") in
  ignore idx;
  let open Predicate in
  let pred = And [ "X" =% Value.int 777; "Y" >=% Value.int 0 ] in
  match stage table pred () with
  | IS.Arranged _, trace ->
      check "shortcut fired" true
        (Trace.count trace (function Trace.Shortcut_estimation _ -> true | _ -> false) >= 1)
  | IS.No_rows _, _ -> Alcotest.fail "unexpected cancellation"

let test_initial_stage_remembers_order () =
  let table = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 3; "Y" =% Value.int 10 ] in
  ignore (stage table pred ());
  let order = Table.preferred_order table in
  check "order recorded" true (order <> []);
  (* The next run estimates in that order. *)
  match stage table pred () with
  | IS.Arranged _, trace ->
      let first_estimated =
        List.find_map
          (function Trace.Estimated { index; _ } -> Some index | _ -> None)
          (Trace.events trace)
      in
      check "starts with remembered best" true (first_estimated = Some (List.hd order))
  | IS.No_rows _, _ -> Alcotest.fail "unexpected cancellation"

let test_initial_stage_self_sufficient_detection () =
  let table = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 3; "Y" <% Value.int 100 ] in
  match stage table pred ~needed:[ "X"; "Y" ] () with
  | IS.Arranged c, _ ->
      check "XY_IDX is self-sufficient" true
        (List.exists
           (fun cand -> cand.Scan.idx.Table.idx_name = "XY_IDX")
           c.IS.self_sufficient)
  | IS.No_rows _, _ -> Alcotest.fail "unexpected cancellation"

let test_initial_stage_order_index () =
  let table = fixture () in
  let open Predicate in
  match stage table ("Y" <% Value.int 100) ~order:[ "X" ] () with
  | IS.Arranged c, _ -> (
      match c.IS.order_index with
      | Some cand ->
          check "an X-leading index provides the order" true
            (List.mem cand.Scan.idx.Table.idx_name [ "X_IDX"; "XY_IDX" ])
      | None -> Alcotest.fail "no order index found")
  | IS.No_rows _, _ -> Alcotest.fail "unexpected cancellation"

(* --- retrieval correctness -------------------------------------------------------- *)

let run_and_compare ?explicit_goal ?order_by ?projection table pred =
  let rows, s = R.run table (R.request ?explicit_goal ?order_by ?projection pred) in
  let expected = oracle table pred in
  check
    (Printf.sprintf "rows match oracle (%s)" (R.tactic_to_string s.R.tactic))
    true
    (sort_rows rows = sort_rows expected);
  s

let test_retrieval_correct_across_goals () =
  let table = fixture () in
  let open Predicate in
  let preds =
    [
      "X" =% Value.int 5;
      And [ "X" =% Value.int 5; "Y" <% Value.int 300 ];
      And [ "X" <% Value.int 3; "Y" <% Value.int 500; "S" =% Value.str "s00001" ];
      Or [ "X" =% Value.int 5; "X" =% Value.int 6 ];
      "Y" >=% Value.int 0;
      Not ("X" <% Value.int 50);
      True;
    ]
  in
  List.iter
    (fun pred ->
      ignore (run_and_compare ~explicit_goal:Goal.Total_time table pred);
      ignore (run_and_compare ~explicit_goal:Goal.Fast_first table pred))
    preds

let test_retrieval_order_by () =
  let table = fixture () in
  let open Predicate in
  let rows, _ =
    R.run table (R.request ~order_by:[ "Y" ] (And [ "X" =% Value.int 5 ]))
  in
  let ys = List.map (fun r -> match Row.get r 2 with Value.Int y -> y | _ -> -1) rows in
  let rec mono = function a :: b :: r -> a <= b && mono (b :: r) | _ -> true in
  check "sorted by Y" true (mono ys);
  check "non-empty" true (ys <> [])

let test_retrieval_limit_stops_early () =
  let table = fixture () in
  let open Predicate in
  let rows, s = R.run ~limit:5 table (R.request ~explicit_goal:Goal.Fast_first ("X" >=% Value.int 0)) in
  check_int "limited" 5 (List.length rows);
  (* Early termination must not have paid for the whole table. *)
  check "cheap" true (s.R.total_cost < Rdb_exec.Cost_model.tscan_cost table /. 2.0)

let test_retrieval_empty_range_cancelled () =
  let table = fixture () in
  let open Predicate in
  let rows, s = R.run table (R.request ("X" >% Value.int 10000)) in
  check_int "no rows" 0 (List.length rows);
  check "cancelled tactic" true (s.R.tactic = R.Cancelled)

let test_retrieval_false_restriction () =
  let table = fixture () in
  let rows, s = R.run table (R.request Predicate.False) in
  check_int "no rows" 0 (List.length rows);
  check "cancelled" true (s.R.tactic = R.Cancelled)

let test_retrieval_host_variables () =
  let table = fixture () in
  let open Predicate in
  let pred = param_cmp "X" Ge "A1" in
  let r0, s0 = R.run table (R.request ~env:[ ("A1", Value.int 0) ] pred) in
  let r99, s99 = R.run table (R.request ~env:[ ("A1", Value.int 99) ] pred) in
  check "all rows" true (List.length r0 = Table.row_count table);
  check "few rows" true (List.length r99 < Table.row_count table / 10);
  check "cheaper when selective" true (s99.R.total_cost < s0.R.total_cost)

let test_goal_affects_first_row_cost () =
  let table = fixture ~rows:6000 () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 7; "Y" <% Value.int 900 ] in
  Rdb_storage.Buffer_pool.flush (Table.pool table);
  let _, tt = R.run table (R.request ~explicit_goal:Goal.Total_time pred) in
  Rdb_storage.Buffer_pool.flush (Table.pool table);
  let c = R.open_ table (R.request ~explicit_goal:Goal.Fast_first pred) in
  let first = R.fetch c in
  let ff = R.close c in
  check "row came" true (first <> None);
  match (ff.R.cost_to_first_row, tt.R.cost_to_first_row) with
  | Some f, Some t -> check "fast-first first row no slower" true (f <= t +. 1.0)
  | _ -> Alcotest.fail "missing first-row costs"

(* --- tactics & flow ---------------------------------------------------------------- *)

let tactic_of table ?explicit_goal ?order_by ?projection pred =
  let _, s = R.run table (R.request ?explicit_goal ?order_by ?projection pred) in
  s.R.tactic

let test_tactic_selection () =
  let table = fixture () in
  let open Predicate in
  (* No index on S: Tscan. *)
  check "tscan" true (tactic_of table ("S" =% Value.str "zzz") = R.Static_tscan);
  (* Covering index, projection within it: index-only or static sscan. *)
  let t = tactic_of table ~projection:[ "X"; "Y" ] (And [ "X" =% Value.int 5; "Y" <% Value.int 100 ]) in
  check "uses self-sufficient index" true (t = R.Index_only_tactic || t = R.Static_sscan);
  (* Fetch-needed only, total-time: background-only. *)
  check "bg-only" true
    (tactic_of table ~explicit_goal:Goal.Total_time ("X" =% Value.int 5) = R.Background_only);
  (* Fetch-needed only, fast-first: fast-first tactic. *)
  check "fast-first" true
    (tactic_of table ~explicit_goal:Goal.Fast_first ("X" =% Value.int 5) = R.Fast_first_tactic)

let test_sorted_tactic_used_and_ordered () =
  let table = fixture () in
  let open Predicate in
  let req =
    R.request ~explicit_goal:Goal.Fast_first ~order_by:[ "X" ]
      (And [ "Y" <% Value.int 200; "S" =% Value.str "s00010" ])
  in
  let rows, s = R.run table req in
  ignore rows;
  check "sorted tactic or fscan" true
    (s.R.tactic = R.Sorted_tactic || s.R.tactic = R.Static_fscan)

let test_flow_fast_first_events () =
  let table = fixture ~rows:6000 () in
  let open Predicate in
  let pred = And [ "X" <% Value.int 40; "Y" <% Value.int 400 ] in
  let rows, s = R.run table (R.request ~explicit_goal:Goal.Fast_first pred) in
  check "rows match" true (sort_rows rows = sort_rows (oracle table pred));
  (* Figure 4 flow: a tactic was chosen, the background either
     completed a list or recommended Tscan, and if a final stage ran it
     filtered the foreground's deliveries. *)
  check "tactic event" true
    (List.exists (function Trace.Tactic_chosen _ -> true | _ -> false) s.R.trace);
  let has_final = List.exists (function Trace.Final_stage _ -> true | _ -> false) s.R.trace in
  let has_tscan = List.exists (function Trace.Use_tscan _ -> true | _ -> false) s.R.trace in
  check "background resolved" true (has_final || has_tscan)

let test_no_duplicate_rows_from_fgr_bgr () =
  (* The foreground delivers some rows, the final stage must not
     deliver them again. *)
  let table = fixture ~rows:6000 () in
  let open Predicate in
  let pred = And [ "X" <% Value.int 30; "Y" <% Value.int 600 ] in
  let rows, _ = R.run table (R.request ~explicit_goal:Goal.Fast_first pred) in
  let ids =
    List.map (fun r -> match Row.get r 0 with Value.Int i -> i | _ -> -1) rows
  in
  check_int "no duplicates" (List.length ids) (List.length (List.sort_uniq compare ids))

let prop_retrieval_matches_oracle =
  QCheck.Test.make ~name:"retrieval equals oracle over random predicates/goals" ~count:20
    QCheck.(
      quad (int_bound 99) (int_bound 999) (int_bound 400) bool)
    (fun (x, ylo, yspan, fast) ->
      let table = fixture ~rows:2000 () in
      let open Predicate in
      let pred =
        And [ "X" >=% Value.int (x / 2); "X" <=% Value.int x;
              between "Y" (Value.int ylo) (Value.int (ylo + yspan)) ]
      in
      let goal = if fast then Goal.Fast_first else Goal.Total_time in
      let rows, _ = R.run table (R.request ~explicit_goal:goal pred) in
      sort_rows rows = sort_rows (oracle table pred))

let test_union_tactic_selected_and_correct () =
  let table = fixture () in
  let open Predicate in
  let pred = Or [ "X" =% Value.int 3; "Y" <% Value.int 30 ] in
  let rows, s = R.run table (R.request pred) in
  check "union tactic" true (s.R.tactic = R.Union_tactic);
  check "rows correct" true (sort_rows rows = sort_rows (oracle table pred));
  (* An uncovered disjunct (no index on S) blocks the union. *)
  let pred2 = Or [ "X" =% Value.int 3; "S" =% Value.str "s00001" ] in
  let rows2, s2 = R.run table (R.request pred2) in
  check "falls back without coverage" true (s2.R.tactic = R.Static_tscan);
  check "rows still correct" true (sort_rows rows2 = sort_rows (oracle table pred2))

let test_union_tactic_with_in_list () =
  let table = fixture () in
  let open Predicate in
  (* IN-lists absorb into multi-ranges, so this whole OR is covered. *)
  let pred =
    Or
      [
        In_list ("X", [ Const (Value.int 5); Const (Value.int 9) ]);
        "Y" =% Value.int 77;
      ]
  in
  let rows, s = R.run table (R.request pred) in
  check "union tactic over IN" true (s.R.tactic = R.Union_tactic);
  check "rows correct" true (sort_rows rows = sort_rows (oracle table pred))

let test_fetch_pair_exposes_rids () =
  let table = fixture () in
  let open Predicate in
  let c = R.open_ table (R.request ("X" =% Value.int 4)) in
  let rec drain acc =
    match R.fetch_pair c with Some p -> drain (p :: acc) | None -> List.rev acc
  in
  let pairs = drain [] in
  ignore (R.close c);
  check "has rows" true (pairs <> []);
  let m = Rdb_storage.Cost.create () in
  List.iter
    (fun (rid, row) ->
      match Rdb_storage.Heap_file.fetch (Table.heap table) m rid with
      | Some stored -> check "rid points at the delivered row" true (Row.equal stored row)
      | None -> Alcotest.fail "dangling rid")
    pairs

(* Competition thresholds steer *cost*, never *results*: any
   configuration must return the oracle's rows. *)
let prop_config_never_changes_results =
  QCheck.Test.make ~name:"rows invariant under competition configs" ~count:15
    QCheck.(
      quad (float_range 0.0 3.0) (float_range 0.0 2.0) (int_range 1 500) (int_range 25 2000))
    (fun (switch_ratio, scan_cost_cap, check_every, memory_budget) ->
      let table = fixture ~rows:1500 () in
      let open Predicate in
      let pred = And [ "X" <% Value.int 20; "Y" <% Value.int 400 ] in
      let cfg =
        {
          R.default_config with
          R.jscan =
            {
              Rdb_exec.Jscan.default_config with
              Rdb_exec.Jscan.switch_ratio;
              scan_cost_cap;
              check_every;
              memory_budget;
              simultaneous = check_every mod 2 = 0;
            };
        }
      in
      let rows, _ = R.run ~config:cfg table (R.request pred) in
      sort_rows rows = sort_rows (oracle table pred))

let test_trace_contains_lifecycle_events () =
  let table = fixture () in
  let open Predicate in
  let _, s = R.run table (R.request ("X" =% Value.int 5)) in
  check "tactic chosen traced" true
    (List.exists (function Trace.Tactic_chosen _ -> true | _ -> false) s.R.trace);
  check "retrieval done traced" true
    (List.exists (function Trace.Retrieval_done _ -> true | _ -> false) s.R.trace)

(* The [Ant91B] combination matrix: goal x order request x index
   availability must always resolve to a sensible tactic, and every
   cell must return the oracle's rows.  This pins the Figure 4
   dispatcher across its whole input space. *)
let test_tactic_matrix () =
  let table = fixture () in
  let open Predicate in
  let fetch_needed = And [ "X" =% Value.int 5; "S" =% Value.str "s00001" ] in
  let covered = And [ "X" =% Value.int 5; "Y" <% Value.int 300 ] in
  let no_index = Like ("S", "s0000%") in
  let cells =
    [
      (* (label, goal, order, projection, pred, acceptable tactics) *)
      ( "tt, no order, fetch-needed",
        Goal.Total_time, [], None, fetch_needed, [ R.Background_only ] );
      ( "ff, no order, fetch-needed",
        Goal.Fast_first, [], None, fetch_needed, [ R.Fast_first_tactic ] );
      ( "tt, no order, covering",
        Goal.Total_time, [], Some [ "X"; "Y" ], covered,
        [ R.Index_only_tactic; R.Static_sscan ] );
      ( "ff, no order, covering",
        Goal.Fast_first, [], Some [ "X"; "Y" ], covered,
        [ R.Index_only_tactic; R.Static_sscan ] );
      ( "ff, order via index, fetch-needed",
        Goal.Fast_first, [ "X" ], None, And [ "Y" <% Value.int 300; "S" =% Value.str "s00001" ],
        [ R.Sorted_tactic; R.Static_fscan ] );
      ( "tt, order via index, fetch-needed",
        Goal.Total_time, [ "X" ], None, fetch_needed,
        [ R.Background_only; R.Sorted_tactic ] );
      ( "tt, no index at all",
        Goal.Total_time, [], None, no_index, [ R.Static_tscan ] );
      ( "ff, no index at all",
        Goal.Fast_first, [], None, no_index, [ R.Static_tscan ] );
      ( "tt, covered OR",
        Goal.Total_time, [], None, Or [ "X" =% Value.int 5; "Y" =% Value.int 7 ],
        [ R.Union_tactic ] );
    ]
  in
  List.iter
    (fun (label, goal, order_by, projection, pred, acceptable) ->
      let rows, s =
        R.run table (R.request ~explicit_goal:goal ~order_by ?projection pred)
      in
      check
        (Printf.sprintf "%s -> %s acceptable" label (R.tactic_to_string s.R.tactic))
        true
        (List.mem s.R.tactic acceptable);
      (* Projection may hide columns, so compare row counts against the
         oracle rather than full rows. *)
      check_int (label ^ " count") (List.length (oracle table pred)) (List.length rows))
    cells

let test_retrieval_limit_zero () =
  let table = fixture () in
  let open Predicate in
  let rows, s = R.run ~limit:0 table (R.request ("X" =% Value.int 5)) in
  check_int "no rows" 0 (List.length rows);
  check "tiny cost" true (s.R.total_cost < 5.0)

let test_cursor_close_is_idempotent () =
  let table = fixture () in
  let open Predicate in
  let c = R.open_ table (R.request ("X" =% Value.int 5)) in
  ignore (R.fetch c);
  let s1 = R.close c in
  let s2 = R.close c in
  check "same summary" true (s1 == s2);
  check "fetch after close is None" true (R.fetch c = None)

let test_empty_table_retrieval () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:16 () in
  let table = Table.create pool ~name:"EMPTY" schema in
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  let open Predicate in
  let rows, _ = R.run table (R.request ("X" =% Value.int 1)) in
  check_int "no rows" 0 (List.length rows);
  let rows2, _ = R.run table (R.request True) in
  check_int "no rows at all" 0 (List.length rows2)

let test_union_all_branches_empty () =
  let table = fixture () in
  let open Predicate in
  let rows, s =
    R.run table (R.request (Or [ "X" >% Value.int 5000; "Y" >% Value.int 5000 ]))
  in
  check_int "empty union" 0 (List.length rows);
  (* Either the union ran and found nothing, or estimation cancelled
     the whole OR up front. *)
  check "cheap" true (s.R.total_cost < 10.0)

let test_static_jscan_thresholds () =
  let table = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 5; "Y" <% Value.int 500 ] in
  (* threshold 1.0 keeps every index *)
  let r = SJ.run ~keep_threshold:1.0 table pred ~env:[] in
  check "keeps correct" true (sort_rows r.SJ.rows = sort_rows (oracle table pred))

(* --- baselines --------------------------------------------------------------------- *)

let test_static_optimizer_freezes_plan () =
  let table = fixture () in
  let open Predicate in
  let pred = param_cmp "X" Ge "A1" in
  let plan = SO.compile table pred ~env:[] in
  (* Whatever was chosen, it is used for both extremes; correctness
     must hold regardless. *)
  let r_all = SO.execute table plan pred ~env:[ ("A1", Value.int 0) ] in
  let r_none = SO.execute table plan pred ~env:[ ("A1", Value.int 100) ] in
  check_int "all rows" (Table.row_count table) (List.length r_all.SO.rows);
  check "selective rows" true
    (List.length r_none.SO.rows = List.length (oracle table ("X" >=% Value.int 100)))

let test_static_optimizer_picks_index_when_bound () =
  let table = fixture () in
  let open Predicate in
  let plan = SO.compile table ("X" =% Value.int 5) ~env:[] in
  check "index plan" true
    (match plan.SO.strategy with SO.P_fscan _ | SO.P_sscan _ -> true | SO.P_tscan -> false)

let test_static_jscan_correct_and_threshold () =
  let table = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 5; "Y" <% Value.int 500 ] in
  let r = SJ.run table pred ~env:[] in
  check "rows correct" true (sort_rows r.SJ.rows = sort_rows (oracle table pred));
  (* With an impossible threshold every index is rejected: Tscan. *)
  let r2 = SJ.run ~keep_threshold:0.0 table pred ~env:[] in
  check "degenerates to tscan" true r2.SJ.used_tscan;
  check "still correct" true (sort_rows r2.SJ.rows = sort_rows (oracle table pred))

let test_dynamic_beats_static_on_host_variables () =
  (* The headline claim: across a parameter sweep the dynamic
     optimizer's total cost is well below the frozen plan's. *)
  let table = fixture ~rows:6000 ~pool_capacity:64 () in
  let open Predicate in
  let pred = param_cmp "X" Ge "A1" in
  let plan = SO.compile table pred ~env:[] in
  let static_total = ref 0.0 and dynamic_total = ref 0.0 in
  List.iter
    (fun v ->
      let env = [ ("A1", Value.int v) ] in
      Rdb_storage.Buffer_pool.flush (Table.pool table);
      let r = SO.execute table plan pred ~env in
      static_total := !static_total +. r.SO.cost;
      Rdb_storage.Buffer_pool.flush (Table.pool table);
      let _, s = R.run table (R.request ~env pred) in
      dynamic_total := !dynamic_total +. s.R.total_cost)
    [ 0; 50; 90; 99; 100; 150 ];
  check "dynamic cheaper overall" true (!dynamic_total < !static_total)

let () =
  Alcotest.run "rdb_core"
    [
      ("goal", [ Alcotest.test_case "inference rules" `Quick test_goal_inference_rules ]);
      ( "competition_math",
        [
          Alcotest.test_case "L-shape knee mass" `Quick test_lshape_has_half_mass_below_knee;
          Alcotest.test_case "direct competition halves cost" `Quick
            test_direct_competition_halves_cost;
          Alcotest.test_case "optimal switch" `Quick test_optimal_switch_at_least_as_good;
          Alcotest.test_case "switch degenerate taus" `Quick
            test_switch_cost_degenerates_correctly;
          Alcotest.test_case "simultaneous beats single" `Quick
            test_simultaneous_beats_single_on_lshapes;
          Alcotest.test_case "simultaneous accounting" `Quick
            test_simultaneous_total_accounting;
        ] );
      ( "initial_stage",
        [
          Alcotest.test_case "orders by estimate" `Quick test_initial_stage_orders_by_estimate;
          Alcotest.test_case "empty range cancels" `Quick test_initial_stage_empty_range_cancels;
          Alcotest.test_case "tiny range shortcut" `Quick
            test_initial_stage_shortcut_on_tiny_range;
          Alcotest.test_case "remembers order" `Quick test_initial_stage_remembers_order;
          Alcotest.test_case "self-sufficient detection" `Quick
            test_initial_stage_self_sufficient_detection;
          Alcotest.test_case "order index" `Quick test_initial_stage_order_index;
        ] );
      ( "retrieval",
        [
          Alcotest.test_case "correct across goals" `Slow test_retrieval_correct_across_goals;
          Alcotest.test_case "order by" `Quick test_retrieval_order_by;
          Alcotest.test_case "limit stops early" `Quick test_retrieval_limit_stops_early;
          Alcotest.test_case "empty range cancelled" `Quick test_retrieval_empty_range_cancelled;
          Alcotest.test_case "false restriction" `Quick test_retrieval_false_restriction;
          Alcotest.test_case "host variables" `Quick test_retrieval_host_variables;
          Alcotest.test_case "goal affects first-row cost" `Quick
            test_goal_affects_first_row_cost;
          QCheck_alcotest.to_alcotest prop_retrieval_matches_oracle;
        ] );
      ( "tactics",
        [
          Alcotest.test_case "selection" `Quick test_tactic_selection;
          Alcotest.test_case "sorted tactic" `Quick test_sorted_tactic_used_and_ordered;
          Alcotest.test_case "fast-first flow events" `Quick test_flow_fast_first_events;
          Alcotest.test_case "no fgr/bgr duplicates" `Quick test_no_duplicate_rows_from_fgr_bgr;
          Alcotest.test_case "union tactic" `Quick test_union_tactic_selected_and_correct;
          Alcotest.test_case "union over IN-list" `Quick test_union_tactic_with_in_list;
          Alcotest.test_case "fetch_pair rids" `Quick test_fetch_pair_exposes_rids;
          Alcotest.test_case "tactic matrix (goal x order x indexes)" `Quick
            test_tactic_matrix;
          QCheck_alcotest.to_alcotest prop_config_never_changes_results;
          Alcotest.test_case "lifecycle trace events" `Quick
            test_trace_contains_lifecycle_events;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "limit zero" `Quick test_retrieval_limit_zero;
          Alcotest.test_case "close idempotent" `Quick test_cursor_close_is_idempotent;
          Alcotest.test_case "empty table" `Quick test_empty_table_retrieval;
          Alcotest.test_case "union all empty" `Quick test_union_all_branches_empty;
          Alcotest.test_case "static jscan thresholds" `Quick test_static_jscan_thresholds;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "static plan frozen" `Quick test_static_optimizer_freezes_plan;
          Alcotest.test_case "static picks index" `Quick
            test_static_optimizer_picks_index_when_bound;
          Alcotest.test_case "static jscan" `Quick test_static_jscan_correct_and_threshold;
          Alcotest.test_case "dynamic beats static sweep" `Slow
            test_dynamic_beats_static_on_host_variables;
        ] );
    ]

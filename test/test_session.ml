(* Properties of the multi-query session scheduler (Session):
   determinism (equal seeds and configs give byte-identical reports),
   result invariance under quantum size / admission order / in-flight
   degree, admission-control and starvation bounds, and the submit
   lifecycle. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic
module Prng = Rdb_util.Prng

let check = Alcotest.(check bool)

(* One shared read-only fixture; every schedule flushes the pool first,
   so successive runs are independent and reproducible. *)
let fixture =
  lazy
    (let db = Datasets.fresh_db ~pool_capacity:64 () in
     let table = Datasets.orders ~rows:6000 db in
     (db, table))

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_key row = Value.to_string (Row.get row 0)
let multiset rows = List.sort compare (List.map row_key rows)

let oracle table (sp : Traffic.spec) =
  let pred = Predicate.simplify (Predicate.bind sp.Traffic.pred sp.Traffic.env) in
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

let run_schedule ?(record_events = false) db table specs ~max_inflight ~quantum =
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let cfg = { S.default_config with S.max_inflight; quantum; record_events } in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun sp ->
        ( sp,
          S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
            (request_of sp) ))
      specs
  in
  (* sequence explicitly: tuple components evaluate right-to-left, and
     rows_of must run after the scheduler *)
  let report = S.run sched in
  (report, List.map (fun (sp, id) -> (sp, S.rows_of sched id)) ids)

(* LIMIT without ORDER BY may deliver any qualifying subset of the
   right size; everything else must match the oracle multiset. *)
let rows_ok table (sp : Traffic.spec) rows =
  let full = multiset (oracle table sp) in
  match sp.Traffic.limit with
  | None -> multiset rows = full
  | Some n ->
      List.length rows = min n (List.length full)
      && List.for_all (fun r -> List.mem (row_key r) full) rows

let quanta = [| 2.0; 25.0; 80.0; 500.0 |]

(* --- determinism ---------------------------------------------------- *)

let prop_deterministic =
  QCheck.Test.make ~name:"same seed and config give byte-identical reports"
    ~count:12
    QCheck.(triple (int_bound 100_000) (int_bound 3) (int_range 1 6))
    (fun (seed, qi, max_inflight) ->
      let max_inflight = max 1 max_inflight in
      let db, table = Lazy.force fixture in
      let specs = Traffic.orders_mix ~seed ~count:6 () in
      let quantum = quanta.(qi) in
      let run () =
        run_schedule ~record_events:true db table specs ~max_inflight ~quantum
      in
      let rep_a, rows_a = run () in
      let rep_b, rows_b = run () in
      S.report_to_string rep_a = S.report_to_string rep_b
      && List.for_all2
           (fun (_, ra) (_, rb) -> multiset ra = multiset rb)
           rows_a rows_b)

(* --- result invariance ---------------------------------------------- *)

let prop_rows_invariant =
  QCheck.Test.make
    ~name:"row sets invariant under quantum, in-flight degree, admission order"
    ~count:16
    QCheck.(triple (int_bound 100_000) (int_bound 3) (int_range 1 8))
    (fun (seed, qi, max_inflight) ->
      (* qcheck shrinking can step outside int_range bounds *)
      let max_inflight = max 1 max_inflight in
      let db, table = Lazy.force fixture in
      let specs = Traffic.orders_mix ~seed ~count:6 () in
      (* shuffled submission order: results must not depend on it *)
      let arr = Array.of_list specs in
      Prng.shuffle (Prng.create ~seed:(seed + 1)) arr;
      let shuffled = Array.to_list arr in
      let _, rows = run_schedule db table shuffled ~max_inflight ~quantum:quanta.(qi) in
      List.for_all
        (fun ((sp : Traffic.spec), rows) ->
          rows_ok table sp rows
          ||
          (Printf.printf "spec %s: got %d rows, oracle %d\n" sp.Traffic.label
             (List.length rows)
             (List.length (oracle table sp));
           false))
        rows)

(* --- bounds --------------------------------------------------------- *)

let test_bounds () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:19 ~count:8 () in
  let report, _ = run_schedule db table specs ~max_inflight:3 ~quantum:30.0 in
  check "admission control holds" true (report.S.pool.S.p_max_inflight_seen <= 3);
  check "every session completed" true
    (List.for_all
       (fun s ->
         match s.S.s_summary with
         | Some summary -> summary.R.status = R.Completed
         | None -> false)
       report.S.sessions);
  (* all in flight at once: the starvation override bounds the gap *)
  let all_in, _ =
    run_schedule db table specs ~max_inflight:(List.length specs) ~quantum:10.0
  in
  List.iter
    (fun s ->
      check
        (Printf.sprintf "max grant gap bounded for %s (%d)" s.S.s_label s.S.s_max_gap)
        true
        (s.S.s_max_gap <= S.default_config.S.starvation_bound))
    all_in.S.sessions

let test_lifecycle () =
  let db, table = Lazy.force fixture in
  let sched = S.create db in
  let sp = List.hd (Traffic.orders_mix ~seed:3 ~count:1 ()) in
  let id = S.submit sched ~label:sp.Traffic.label table (request_of sp) in
  let _ = S.run sched in
  check "rows retrievable after run" true (S.rows_of sched id <> []);
  Alcotest.check_raises "submit after run rejected"
    (Invalid_argument "Session.submit: scheduler already ran") (fun () ->
      ignore (S.submit sched table (request_of sp)));
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Session.run: scheduler already ran") (fun () ->
      ignore (S.run sched));
  Alcotest.check_raises "bad config rejected"
    (Invalid_argument "Session.create: max_inflight < 1") (fun () ->
      ignore (S.create ~config:{ S.default_config with S.max_inflight = 0 } db))

let test_quota_admission_order () =
  let db, table = Lazy.force fixture in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let specs = Traffic.orders_mix ~seed:23 ~count:5 () in
  let sched =
    S.create ~config:{ S.default_config with S.max_inflight = 1; S.record_events = true } db
  in
  let quota_cfg = { R.default_config with R.cost_quota = Some 1.0e9 } in
  let ids =
    List.mapi
      (fun i sp ->
        let config = if i = List.length specs - 1 then Some quota_cfg else None in
        S.submit sched ~label:sp.Traffic.label ?config ?limit:sp.Traffic.limit table
          (request_of sp))
      specs
  in
  let report = S.run sched in
  let first_admitted =
    List.find_map
      (function S.Admitted { id; _ } -> Some id | _ -> None)
      report.S.events
  in
  check "quota-declaring query admitted first" true
    (first_admitted = Some (List.nth ids (List.length ids - 1)))

(* --- overload protection -------------------------------------------- *)

let row_list rows = List.map Row.to_string rows

let submit_arrival sched table (a : Traffic.arrival) =
  let sp = a.Traffic.spec in
  S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit
    ?quota:a.Traffic.quota ?deadline:a.Traffic.deadline
    ~arrive_at:a.Traffic.arrive_at table (request_of sp)

let overload_cfg =
  {
    S.default_config with
    S.max_inflight = 2;
    quantum = 10.0;
    max_queue = 3;
    shed_policy = S.Shed_largest_quota;
    pressure_threshold = 2;
  }

(* Each surviving session's rows (content and order) are identical
   whether or not its shed / timed-out peers were present: shedding
   changes which queries run, never the results of queries that run. *)
let prop_shed_isolation =
  QCheck.Test.make ~name:"survivor rows invariant under shed/timed-out peers"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let db, table = Lazy.force fixture in
      let arrivals = Traffic.storm ~seed ~count:16 () in
      Rdb_storage.Buffer_pool.flush (Database.pool db);
      let storm = S.create ~config:overload_cfg db in
      let ids = List.map (submit_arrival storm table) arrivals in
      let report = S.run storm in
      let survivors =
        List.filter
          (fun (_, id) ->
            let s = List.find (fun s -> s.S.s_id = id) report.S.sessions in
            s.S.s_outcome = S.Served)
          (List.combine arrivals ids)
      in
      (* calm rerun: survivors only, no queue bound, no deadlines *)
      Rdb_storage.Buffer_pool.flush (Database.pool db);
      let calm = S.create ~config:{ S.default_config with S.max_inflight = 2 } db in
      let calm_ids =
        List.map
          (fun ((a : Traffic.arrival), _) ->
            let sp = a.Traffic.spec in
            S.submit calm ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
              (request_of sp))
          survivors
      in
      let _ = S.run calm in
      List.for_all2
        (fun (_, storm_id) calm_id ->
          row_list (S.rows_of storm storm_id) = row_list (S.rows_of calm calm_id))
        survivors calm_ids)

let test_deadline () =
  let db, table = Lazy.force fixture in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let specs = Traffic.orders_mix ~seed:5 ~count:3 () in
  let expensive = List.hd specs and cheap = List.nth specs 1 in
  let sched = S.create db in
  (* deadline 0: timed out on arrival — no cursor, no quanta, no cost *)
  let zero = S.submit sched ~label:"zero" ~deadline:0.0 table (request_of expensive) in
  (* a deadline below any real plan's cost: cancelled at a grant
     boundary with the partial state kept *)
  let tight = S.submit sched ~label:"tight" ~deadline:4.0 table (request_of expensive) in
  let free = S.submit sched ~label:"free" table (request_of cheap) in
  let report = S.run sched in
  let stats id = List.find (fun s -> s.S.s_id = id) report.S.sessions in
  let z = stats zero in
  check "deadline 0 exits immediately" true
    (match z.S.s_outcome with S.Timed_out { spent; _ } -> spent = 0.0 | _ -> false);
  check "deadline 0 never ran" true
    (z.S.s_quanta = 0 && z.S.s_charged = 0.0 && z.S.s_summary = None);
  let t = stats tight in
  check "tight deadline times out" true
    (match t.S.s_outcome with S.Timed_out _ -> true | _ -> false);
  check "tight deadline has a Timed_out summary" true
    (match t.S.s_summary with
    | Some summary -> ( match summary.R.status with R.Timed_out _ -> true | _ -> false)
    | None -> false);
  check "spent at least the deadline" true
    (match t.S.s_outcome with
    | S.Timed_out { spent; deadline } -> spent >= deadline
    | _ -> false);
  check "undeadlined peer unaffected" true ((stats free).S.s_outcome = S.Served);
  check "accounting exact" true
    (report.S.pool.S.p_served + report.S.pool.S.p_shed + report.S.pool.S.p_timed_out
    = report.S.pool.S.p_submitted)

(* Explicitly-neutral overload knobs reproduce the default scheduler
   bit-for-bit: an unbounded queue never sheds, an infinite pressure
   threshold never degrades, and the shed policy is then irrelevant. *)
let test_neutral_knobs () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:31 ~count:8 () in
  let report_d, rows_d =
    run_schedule ~record_events:true db table specs ~max_inflight:3 ~quantum:30.0
  in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let cfg =
    {
      S.default_config with
      S.max_inflight = 3;
      quantum = 30.0;
      record_events = true;
      max_queue = max_int;
      shed_policy = S.Shed_largest_quota;
      pressure_threshold = max_int;
    }
  in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun sp ->
        ( sp,
          S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
            (request_of sp) ))
      specs
  in
  let report_n = S.run sched in
  check "byte-identical reports" true
    (S.report_to_string report_d = S.report_to_string report_n);
  List.iter2
    (fun (_, rows) (_, id) ->
      check "identical rows" true (row_list rows = row_list (S.rows_of sched id)))
    rows_d ids

let test_shed_policies () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:11 ~count:4 () in
  let quotas = [ None; Some 10.0; Some 500.0; Some 50.0 ] in
  let run policy =
    Rdb_storage.Buffer_pool.flush (Database.pool db);
    let cfg =
      {
        S.default_config with
        S.max_inflight = 1;
        max_queue = 1;
        shed_policy = policy;
      }
    in
    let sched = S.create ~config:cfg db in
    let _ =
      List.map2
        (fun sp quota ->
          S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit ?quota table
            (request_of sp))
        specs quotas
    in
    let report = S.run sched in
    List.map (fun s -> s.S.s_outcome) report.S.sessions
  in
  let is_shed = function S.Shed _ -> true | _ -> false in
  (* Admission takes q1 (quota 10, smallest); queue of 3 exceeds
     max_queue 1.  Largest-quota sheds the unbounded q0 then q2 (500);
     newest sheds q3 then q2. *)
  check "largest-quota sheds unbounded and largest" true
    (List.map is_shed (run S.Shed_largest_quota) = [ true; false; true; false ]);
  check "newest sheds the most recent arrivals" true
    (List.map is_shed (run S.Shed_newest) = [ false; false; true; true ])

(* --- buffer-pool sharding ------------------------------------------- *)

(* Sharding steers contention, never results: the same storm run under
   different buffer-pool shard counts keeps accounting exact in every
   run and serves byte-identical rows (content and order) for every
   session served under both counts.  Costs differ across shard counts
   — eviction order is per-shard — so the outcome *sets* may differ at
   the margin; invariance is over the common survivors. *)
let prop_shard_count_invariance =
  QCheck.Test.make
    ~name:"accounting exact and rows invariant across random shard counts"
    ~count:8
    QCheck.(pair (int_bound 100_000) (int_range 2 8))
    (fun (seed, shards) ->
      (* qcheck shrinking can step outside int_range bounds *)
      let shards = max 2 (min 8 shards) in
      let db, table = Lazy.force fixture in
      let pool = Database.pool db in
      let run n =
        Rdb_storage.Buffer_pool.flush pool;
        let cfg = { overload_cfg with S.pool_shards = Some n } in
        let sched = S.create ~config:cfg db in
        let arrivals = Traffic.storm ~seed ~count:20 () in
        let ids = List.map (submit_arrival sched table) arrivals in
        let report = S.run sched in
        let sessions =
          List.map
            (fun id ->
              let s = List.find (fun s -> s.S.s_id = id) report.S.sessions in
              (s.S.s_outcome = S.Served, row_list (S.rows_of sched id)))
            ids
        in
        (report, sessions)
      in
      let rep_1, sess_1 = run 1 in
      let rep_n, sess_n = run shards in
      (* restore the shared fixture to its single-shard shape *)
      Rdb_storage.Buffer_pool.reshard pool ~shards:1;
      let exact (r : S.report) =
        r.S.pool.S.p_served + r.S.pool.S.p_shed + r.S.pool.S.p_timed_out
        = r.S.pool.S.p_submitted
      in
      exact rep_1 && exact rep_n
      && rep_1.S.pool.S.p_shards = 1
      && rep_n.S.pool.S.p_shards = shards
      && List.for_all2
           (fun (served_1, rows_1) (served_n, rows_n) ->
             (not (served_1 && served_n)) || rows_1 = rows_n)
           sess_1 sess_n)

(* [pool_shards = Some 1] must reproduce the untouched monolithic pool
   bit-for-bit: same report text (no shard line), same rows. *)
let test_single_shard_identity () =
  let db, table = Lazy.force fixture in
  let pool = Database.pool db in
  Rdb_storage.Buffer_pool.reshard pool ~shards:1;
  let arrivals = Traffic.storm ~seed:7 ~count:16 () in
  let run pool_shards =
    Rdb_storage.Buffer_pool.flush pool;
    let cfg = { overload_cfg with S.pool_shards; S.record_events = true } in
    let sched = S.create ~config:cfg db in
    let ids = List.map (submit_arrival sched table) arrivals in
    let report = S.run sched in
    (report, List.map (fun id -> row_list (S.rows_of sched id)) ids)
  in
  let rep_none, rows_none = run None in
  let rep_one, rows_one = run (Some 1) in
  check "reports byte-identical" true
    (S.report_to_string rep_none = S.report_to_string rep_one);
  check "rows identical" true (rows_none = rows_one);
  check "single-shard pool stats" true
    (rep_one.S.pool.S.p_shards = 1
    && rep_one.S.pool.S.p_lookup_balance = 1.0
    && Array.length rep_one.S.pool.S.p_shard_lookups = 1)

(* Dropping background refinement is cost-only: rows and their order
   are invariant — the contract graceful degradation relies on. *)
let test_bgr_invariance () =
  let _, table = Lazy.force fixture in
  List.iter
    (fun seed ->
      List.iter
        (fun (sp : Traffic.spec) ->
          if sp.Traffic.limit = None then begin
            let run bgr =
              let cfg = { R.default_config with R.bgr_enabled = bgr } in
              fst (R.run ~config:cfg table (request_of sp))
            in
            check
              (Printf.sprintf "rows invariant under bgr for %s" sp.Traffic.label)
              true
              (row_list (run true) = row_list (run false))
          end)
        (Traffic.orders_mix ~seed ~count:6 ()))
    [ 2; 13; 47 ]

(* --- crash injection ------------------------------------------------- *)

(* A crash point that never fires must reproduce the crash-free
   scheduler bit-for-bit: the crash machinery is pure bookkeeping
   until a point actually triggers. *)
let test_crash_never_fires_identity () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:17 ~count:6 () in
  let run points =
    Rdb_storage.Buffer_pool.flush (Database.pool db);
    let cfg =
      {
        S.default_config with
        S.max_inflight = 2;
        quantum = 30.0;
        record_events = true;
        crash_points = points;
      }
    in
    let sched = S.create ~config:cfg db in
    let ids =
      List.map
        (fun sp ->
          S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
            (request_of sp))
        specs
    in
    let report = S.run sched in
    (S.report_to_string report, List.map (fun id -> row_list (S.rows_of sched id)) ids)
  in
  let rep_none, rows_none = run [] in
  let rep_far, rows_far = run [ S.Crash_at_grant max_int ] in
  check "report byte-identical" true (rep_none = rep_far);
  check "rows identical" true (rows_none = rows_far);
  check "no crash line" true
    (not
       (let m = rep_none in
        let rec has i =
          i + 6 <= String.length m && (String.sub m i 6 = "crash:" || has (i + 1))
        in
        has 0))

(* A mid-run crash loses every non-terminal submission — rows, cursors
   and progress vanish; terminal outcomes stand — and the report keeps
   exact accounting with the [lost] term. *)
let test_crash_loses_nonterminal () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:23 ~count:8 () in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let cfg =
    {
      S.default_config with
      S.max_inflight = 2;
      quantum = 2.0;
      record_events = true;
      S.crash_points = [ S.Crash_at_grant 12 ];
    }
  in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun sp ->
        S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
          (request_of sp))
      specs
  in
  let report = S.run sched in
  let p = report.S.pool in
  check "crash tick recorded" true (p.S.p_crash_tick = Some 12);
  check "some submissions lost" true (p.S.p_lost > 0);
  check "accounting exact with lost" true
    (p.S.p_served + p.S.p_shed + p.S.p_timed_out + p.S.p_lost = p.S.p_submitted);
  check "crash event emitted" true
    (List.exists (function S.Crashed _ -> true | _ -> false) report.S.events);
  check "lost sessions keep no rows" true
    (List.for_all
       (fun id ->
         let s = List.find (fun s -> s.S.s_id = id) report.S.sessions in
         match s.S.s_outcome with
         | S.Lost _ -> S.rows_of sched id = [] && s.S.s_summary = None
         | _ -> true)
       ids);
  check "crash line rendered" true
    (let m = S.report_to_string report in
     let needle = "crash: process died at grant 12" in
     let n = String.length needle in
     let rec has i = i + n <= String.length m && (String.sub m i n = needle || has (i + 1)) in
     has 0)

(* [Crash_at_cost] fires at the first grant boundary at which the
   run's charged cost reaches the threshold. *)
let test_crash_at_cost () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:29 ~count:6 () in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let cfg =
    { S.default_config with S.quantum = 2.0; S.crash_points = [ S.Crash_at_cost 20.0 ] }
  in
  let sched = S.create ~config:cfg db in
  List.iter
    (fun sp ->
      ignore
        (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
           (request_of sp)))
    specs;
  let report = S.run sched in
  let p = report.S.pool in
  check "cost crash fired" true (p.S.p_crash_tick <> None);
  check "accounting exact" true
    (p.S.p_served + p.S.p_shed + p.S.p_timed_out + p.S.p_lost = p.S.p_submitted)

let prop_crash_accounting =
  QCheck.Test.make ~name:"accounting exact under random crash grants" ~count:10
    QCheck.(pair (int_bound 100_000) (int_range 1 60))
    (fun (seed, g) ->
      let g = max 1 (min 60 g) in
      let db, table = Lazy.force fixture in
      Rdb_storage.Buffer_pool.flush (Database.pool db);
      let cfg =
        {
          S.default_config with
          S.max_inflight = 3;
          quantum = 2.0;
          S.crash_points = [ S.Crash_at_grant g ];
        }
      in
      let sched = S.create ~config:cfg db in
      List.iter
        (fun sp ->
          ignore
            (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
               (request_of sp)))
        (Traffic.orders_mix ~seed ~count:6 ());
      let rep = S.run sched in
      let p = rep.S.pool in
      p.S.p_served + p.S.p_shed + p.S.p_timed_out + p.S.p_lost = p.S.p_submitted
      && (match p.S.p_crash_tick with
         | Some t -> t >= g
         | None -> p.S.p_lost = 0))

let () =
  Alcotest.run "rdb_session"
    [
      ( "scheduler",
        [
          QCheck_alcotest.to_alcotest prop_deterministic;
          QCheck_alcotest.to_alcotest prop_rows_invariant;
          Alcotest.test_case "admission and starvation bounds" `Quick test_bounds;
          Alcotest.test_case "lifecycle guards" `Quick test_lifecycle;
          Alcotest.test_case "quota-aware admission order" `Quick
            test_quota_admission_order;
        ] );
      ( "overload",
        [
          QCheck_alcotest.to_alcotest prop_shed_isolation;
          Alcotest.test_case "cost deadlines" `Quick test_deadline;
          Alcotest.test_case "neutral knobs reproduce default behavior" `Quick
            test_neutral_knobs;
          Alcotest.test_case "shed policies pick the right victims" `Quick
            test_shed_policies;
          Alcotest.test_case "bgr degradation is rows-invariant" `Quick
            test_bgr_invariance;
        ] );
      ( "sharding",
        [
          QCheck_alcotest.to_alcotest prop_shard_count_invariance;
          Alcotest.test_case "pool_shards = Some 1 is byte-identical to None"
            `Quick test_single_shard_identity;
        ] );
      ( "crash",
        [
          Alcotest.test_case "never-firing crash point is byte-identical" `Quick
            test_crash_never_fires_identity;
          Alcotest.test_case "crash loses non-terminal submissions" `Quick
            test_crash_loses_nonterminal;
          Alcotest.test_case "crash at cost threshold" `Quick test_crash_at_cost;
          QCheck_alcotest.to_alcotest prop_crash_accounting;
        ] );
    ]

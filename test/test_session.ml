(* Properties of the multi-query session scheduler (Session):
   determinism (equal seeds and configs give byte-identical reports),
   result invariance under quantum size / admission order / in-flight
   degree, admission-control and starvation bounds, and the submit
   lifecycle. *)

open Rdb_data
open Rdb_engine
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Goal = Rdb_core.Goal
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic
module Prng = Rdb_util.Prng

let check = Alcotest.(check bool)

(* One shared read-only fixture; every schedule flushes the pool first,
   so successive runs are independent and reproducible. *)
let fixture =
  lazy
    (let db = Datasets.fresh_db ~pool_capacity:64 () in
     let table = Datasets.orders ~rows:6000 db in
     (db, table))

let request_of (sp : Traffic.spec) =
  R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
    ?explicit_goal:(if sp.Traffic.fast_first then Some Goal.Fast_first else None)
    sp.Traffic.pred

let row_key row = Value.to_string (Row.get row 0)
let multiset rows = List.sort compare (List.map row_key rows)

let oracle table (sp : Traffic.spec) =
  let pred = Predicate.simplify (Predicate.bind sp.Traffic.pred sp.Traffic.env) in
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  !out

let run_schedule ?(record_events = false) db table specs ~max_inflight ~quantum =
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let cfg = { S.default_config with S.max_inflight; quantum; record_events } in
  let sched = S.create ~config:cfg db in
  let ids =
    List.map
      (fun sp ->
        ( sp,
          S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
            (request_of sp) ))
      specs
  in
  (* sequence explicitly: tuple components evaluate right-to-left, and
     rows_of must run after the scheduler *)
  let report = S.run sched in
  (report, List.map (fun (sp, id) -> (sp, S.rows_of sched id)) ids)

(* LIMIT without ORDER BY may deliver any qualifying subset of the
   right size; everything else must match the oracle multiset. *)
let rows_ok table (sp : Traffic.spec) rows =
  let full = multiset (oracle table sp) in
  match sp.Traffic.limit with
  | None -> multiset rows = full
  | Some n ->
      List.length rows = min n (List.length full)
      && List.for_all (fun r -> List.mem (row_key r) full) rows

let quanta = [| 2.0; 25.0; 80.0; 500.0 |]

(* --- determinism ---------------------------------------------------- *)

let prop_deterministic =
  QCheck.Test.make ~name:"same seed and config give byte-identical reports"
    ~count:12
    QCheck.(triple (int_bound 100_000) (int_bound 3) (int_range 1 6))
    (fun (seed, qi, max_inflight) ->
      let max_inflight = max 1 max_inflight in
      let db, table = Lazy.force fixture in
      let specs = Traffic.orders_mix ~seed ~count:6 () in
      let quantum = quanta.(qi) in
      let run () =
        run_schedule ~record_events:true db table specs ~max_inflight ~quantum
      in
      let rep_a, rows_a = run () in
      let rep_b, rows_b = run () in
      S.report_to_string rep_a = S.report_to_string rep_b
      && List.for_all2
           (fun (_, ra) (_, rb) -> multiset ra = multiset rb)
           rows_a rows_b)

(* --- result invariance ---------------------------------------------- *)

let prop_rows_invariant =
  QCheck.Test.make
    ~name:"row sets invariant under quantum, in-flight degree, admission order"
    ~count:16
    QCheck.(triple (int_bound 100_000) (int_bound 3) (int_range 1 8))
    (fun (seed, qi, max_inflight) ->
      (* qcheck shrinking can step outside int_range bounds *)
      let max_inflight = max 1 max_inflight in
      let db, table = Lazy.force fixture in
      let specs = Traffic.orders_mix ~seed ~count:6 () in
      (* shuffled submission order: results must not depend on it *)
      let arr = Array.of_list specs in
      Prng.shuffle (Prng.create ~seed:(seed + 1)) arr;
      let shuffled = Array.to_list arr in
      let _, rows = run_schedule db table shuffled ~max_inflight ~quantum:quanta.(qi) in
      List.for_all
        (fun ((sp : Traffic.spec), rows) ->
          rows_ok table sp rows
          ||
          (Printf.printf "spec %s: got %d rows, oracle %d\n" sp.Traffic.label
             (List.length rows)
             (List.length (oracle table sp));
           false))
        rows)

(* --- bounds --------------------------------------------------------- *)

let test_bounds () =
  let db, table = Lazy.force fixture in
  let specs = Traffic.orders_mix ~seed:19 ~count:8 () in
  let report, _ = run_schedule db table specs ~max_inflight:3 ~quantum:30.0 in
  check "admission control holds" true (report.S.pool.S.p_max_inflight_seen <= 3);
  check "every session completed" true
    (List.for_all
       (fun s -> s.S.s_summary.R.status = R.Completed)
       report.S.sessions);
  (* all in flight at once: the starvation override bounds the gap *)
  let all_in, _ =
    run_schedule db table specs ~max_inflight:(List.length specs) ~quantum:10.0
  in
  List.iter
    (fun s ->
      check
        (Printf.sprintf "max grant gap bounded for %s (%d)" s.S.s_label s.S.s_max_gap)
        true
        (s.S.s_max_gap <= S.default_config.S.starvation_bound))
    all_in.S.sessions

let test_lifecycle () =
  let db, table = Lazy.force fixture in
  let sched = S.create db in
  let sp = List.hd (Traffic.orders_mix ~seed:3 ~count:1 ()) in
  let id = S.submit sched ~label:sp.Traffic.label table (request_of sp) in
  let _ = S.run sched in
  check "rows retrievable after run" true (S.rows_of sched id <> []);
  Alcotest.check_raises "submit after run rejected"
    (Invalid_argument "Session.submit: scheduler already ran") (fun () ->
      ignore (S.submit sched table (request_of sp)));
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Session.run: scheduler already ran") (fun () ->
      ignore (S.run sched));
  Alcotest.check_raises "bad config rejected"
    (Invalid_argument "Session.create: max_inflight < 1") (fun () ->
      ignore (S.create ~config:{ S.default_config with S.max_inflight = 0 } db))

let test_quota_admission_order () =
  let db, table = Lazy.force fixture in
  Rdb_storage.Buffer_pool.flush (Database.pool db);
  let specs = Traffic.orders_mix ~seed:23 ~count:5 () in
  let sched =
    S.create ~config:{ S.default_config with S.max_inflight = 1; S.record_events = true } db
  in
  let quota_cfg = { R.default_config with R.cost_quota = Some 1.0e9 } in
  let ids =
    List.mapi
      (fun i sp ->
        let config = if i = List.length specs - 1 then Some quota_cfg else None in
        S.submit sched ~label:sp.Traffic.label ?config ?limit:sp.Traffic.limit table
          (request_of sp))
      specs
  in
  let report = S.run sched in
  let first_admitted =
    List.find_map
      (function S.Admitted { id; _ } -> Some id | _ -> None)
      report.S.events
  in
  check "quota-declaring query admitted first" true
    (first_admitted = Some (List.nth ids (List.length ids - 1)))

let () =
  Alcotest.run "rdb_session"
    [
      ( "scheduler",
        [
          QCheck_alcotest.to_alcotest prop_deterministic;
          QCheck_alcotest.to_alcotest prop_rows_invariant;
          Alcotest.test_case "admission and starvation bounds" `Quick test_bounds;
          Alcotest.test_case "lifecycle guards" `Quick test_lifecycle;
          Alcotest.test_case "quota-aware admission order" `Quick
            test_quota_admission_order;
        ] );
    ]

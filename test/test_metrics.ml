(* Tests for the deterministic metrics registry and the minimal JSON
   codec, plus the observation-only contract: attaching a registry to
   the buffer pool and the retrieval config must never change result
   sets or charged costs (CLAUDE.md invariant: estimates and metrics
   steer nothing). *)

open Rdb_data
open Rdb_engine
module M = Rdb_util.Metrics
module Json = Rdb_util.Json
module R = Rdb_core.Retrieval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- registry basics ------------------------------------------------- *)

let test_counter_gauge_basics () =
  let m = M.create () in
  check "fresh registry is empty" true (M.is_empty m);
  let c = M.counter m "hits" in
  M.incr c;
  M.incr c;
  M.add c 3;
  check_int "counter accumulates" 5 (M.counter_value c);
  check_int "find-or-create returns the same cell" 5
    (M.counter_value (M.counter m "hits"));
  let g = M.gauge m "depth" in
  M.set g 4.5;
  M.set g 2.0;
  check "gauge keeps last value" true (M.gauge_value g = 2.0);
  check_str "labeled naming" "pool.hit{table:T}" (M.labeled "pool.hit" "table:T");
  M.reset m;
  check "reset empties" true (M.is_empty m)

let test_kind_mismatch_rejected () =
  let m = M.create () in
  ignore (M.counter m "x");
  check "gauge on a counter name" true
    (match M.gauge m "x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "histogram on a counter name" true
    (match M.histogram m "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bad_histogram_bounds_rejected () =
  let m = M.create () in
  check "empty bounds" true
    (match M.histogram ~buckets:[||] m "h0" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "non-increasing bounds" true
    (match M.histogram ~buckets:[| 1.0; 1.0; 2.0 |] m "h1" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_snapshot_sorted () =
  (* Same metrics registered in different orders must render
     byte-identically: dumps never depend on hash-table internals. *)
  let fill names =
    let m = M.create () in
    List.iter (fun n -> M.incr (M.counter m n)) names;
    M.to_string m
  in
  let names = [ "zebra"; "alpha"; "pool.hit{t}"; "mid" ] in
  check_str "order-independent dump" (fill names) (fill (List.rev names));
  let order = List.map fst (M.snapshot (let m = M.create () in
                                        List.iter (fun n -> ignore (M.counter m n)) names;
                                        m)) in
  check "snapshot sorted by name" true (order = List.sort compare order)

(* --- histogram bucket invariants (qcheck) ---------------------------- *)

let prop_histogram_invariants =
  QCheck.Test.make ~name:"histogram bucket invariants" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range (-10.0) 100000.0))
    (fun xs ->
      let m = M.create () in
      let h = M.histogram m "h" in
      List.iter (M.observe h) xs;
      let counts = M.histogram_counts h in
      let bounds = M.histogram_bounds h in
      let n = List.length xs in
      (* count and sum track the observations exactly *)
      M.histogram_count h = n
      && Array.fold_left ( + ) 0 counts = n
      && abs_float (M.histogram_sum h -. List.fold_left ( +. ) 0.0 xs) < 1e-6
      (* each bucket holds exactly the observations in its range *)
      && Array.to_list counts
         = List.init (Array.length counts) (fun i ->
               let lo = if i = 0 then neg_infinity else bounds.(i - 1) in
               let hi = if i < Array.length bounds then bounds.(i) else infinity in
               List.length (List.filter (fun v -> v > lo && v <= hi) xs)))

(* --- fixture (shape of test_core's) ---------------------------------- *)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

let fixture ?(rows = 1500) ?(pool_capacity = 256) ?(seed = 19) () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:pool_capacity () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  table

let sort_rows rows = List.sort (fun a b -> Row.compare_at [| 0 |] a b) rows

let run_instrumented ~seed pred =
  let table = fixture ~seed () in
  let m = M.create () in
  Rdb_storage.Buffer_pool.set_metrics (Table.pool table) (Some m);
  let rows, s =
    R.run ~config:{ R.default_config with R.metrics = Some m } table (R.request pred)
  in
  (rows, s, m)

(* --- determinism under equal seeds ----------------------------------- *)

let test_registry_determinism () =
  let open Predicate in
  let pred = And [ "X" <% Value.int 25; "Y" <% Value.int 450 ] in
  let _, _, m1 = run_instrumented ~seed:19 pred in
  let _, _, m2 = run_instrumented ~seed:19 pred in
  check "equal seeds give byte-identical dumps" true
    (M.to_string m1 = M.to_string m2);
  check "something was recorded" true (not (M.is_empty m1));
  let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  check "pool metrics carry table/index labels" true
    (List.exists
       (fun (name, _) ->
         has_prefix "pool." name
         && (has_prefix "pool.hit{table:T" name
            || has_prefix "pool.hit{index:" name
            || has_prefix "pool.miss{table:T" name
            || has_prefix "pool.miss{index:" name))
       (M.snapshot m1))

(* --- observation-only contract (qcheck) ------------------------------ *)

let prop_metrics_observation_only =
  QCheck.Test.make
    ~name:"metrics are observation-only: same rows, same charged costs" ~count:12
    QCheck.(pair (int_range 1 60) (int_range 1 900))
    (fun (x_cut, y_cut) ->
      let open Predicate in
      let pred = And [ "X" <% Value.int x_cut; "Y" <% Value.int y_cut ] in
      (* identical fixtures (same seed); only the registry differs *)
      let table_plain = fixture () in
      let rows_plain, s_plain =
        R.run ~config:R.default_config table_plain (R.request pred)
      in
      let table_obs = fixture () in
      let m = M.create () in
      Rdb_storage.Buffer_pool.set_metrics (Table.pool table_obs) (Some m);
      let rows_obs, s_obs =
        R.run
          ~config:{ R.default_config with R.metrics = Some m }
          table_obs (R.request pred)
      in
      let pool_total t =
        Rdb_storage.Cost.total (Rdb_storage.Buffer_pool.global_meter (Table.pool t))
      in
      sort_rows rows_plain = sort_rows rows_obs
      && s_plain.R.total_cost = s_obs.R.total_cost
      && s_plain.R.tactic = s_obs.R.tactic
      && pool_total table_plain = pool_total table_obs)

let test_pool_charges_identical_with_registry () =
  (* Byte-level check on the pool meter: instrumented and plain
     fixtures charge exactly the same physical/logical/write counts. *)
  let open Predicate in
  let pred = And [ "X" <% Value.int 25; "Y" <% Value.int 450 ] in
  let table_plain = fixture () in
  let _ = R.run table_plain (R.request pred) in
  let rows_obs, _, _ = run_instrumented ~seed:19 pred in
  let table_obs2 = fixture () in
  let m = M.create () in
  Rdb_storage.Buffer_pool.set_metrics (Table.pool table_obs2) (Some m);
  let rows_obs2, _ = R.run table_obs2 (R.request pred) in
  let meter t = Rdb_storage.Buffer_pool.global_meter (Table.pool t) in
  let fingerprint t =
    let c = meter t in
    ( Rdb_storage.Cost.physical_reads c,
      Rdb_storage.Cost.logical_reads c,
      Rdb_storage.Cost.block_writes c )
  in
  check "identical charge fingerprint" true
    (fingerprint table_plain = fingerprint table_obs2);
  check "identical rows" true (sort_rows rows_obs = sort_rows rows_obs2)

(* --- JSON codec ------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("experiment", Json.Str "competition");
        ("pass", Json.Bool true);
        ("nothing", Json.Null);
        ("cost", Json.Num 59.25);
        ("counts", Json.Arr [ Json.Num 1.0; Json.Num 2.0; Json.Num 3.0 ]);
        ("nested", Json.Obj [ ("s", Json.Str "a \"quoted\"\nline") ]);
        ("empty_arr", Json.Arr []);
        ("empty_obj", Json.Obj []);
      ]
  in
  check "compact roundtrip" true (Json.of_string (Json.to_string v) = v);
  check "pretty roundtrip" true (Json.of_string (Json.to_string ~pretty:true v) = v);
  check_str "integers print without fraction" "{\"n\":42}"
    (Json.to_string (Json.Obj [ ("n", Json.Num 42.0) ]));
  check "accessors" true
    (Option.bind (Json.member "cost" v) Json.to_num = Some 59.25
    && Option.bind (Json.member "pass" v) Json.to_bool = Some true
    && Option.bind (Json.member "experiment" v) Json.to_str = Some "competition");
  check "unicode escape decodes" true
    (Json.of_string "\"a\\u00e9b\"" = Json.Str "a\xc3\xa9b")

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with exception Json.Parse_error _ -> true | _ -> false
  in
  check "trailing garbage" true (bad "{} x");
  check "unterminated string" true (bad "\"abc");
  check "bare word" true (bad "frue");
  check "missing colon" true (bad "{\"a\" 1}")

let test_metrics_to_json () =
  let m = M.create () in
  M.add (M.counter m "c") 7;
  M.set (M.gauge m "g") 1.5;
  M.observe (M.histogram ~buckets:[| 1.0; 10.0 |] m "h") 5.0;
  let j = M.to_json m in
  (* the dump is valid JSON and roundtrips *)
  check "roundtrips" true (Json.of_string (Json.to_string j) = j);
  check "counter value" true
    (Option.bind (Json.member "c" j) (Json.member "value")
    |> Fun.flip Option.bind Json.to_num
    = Some 7.0);
  check "histogram count" true
    (Option.bind (Json.member "h" j) (Json.member "count")
    |> Fun.flip Option.bind Json.to_num
    = Some 1.0)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rdb_metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge basics" `Quick test_counter_gauge_basics;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "bad histogram bounds rejected" `Quick
            test_bad_histogram_bounds_rejected;
          Alcotest.test_case "snapshots sorted and order-independent" `Quick
            test_snapshot_sorted;
          qcheck prop_histogram_invariants;
        ] );
      ( "observation",
        [
          Alcotest.test_case "equal seeds give identical dumps" `Quick
            test_registry_determinism;
          qcheck prop_metrics_observation_only;
          Alcotest.test_case "pool charges identical with registry" `Quick
            test_pool_charges_identical_with_registry;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "metrics to_json" `Quick test_metrics_to_json;
        ] );
    ]

(* Cross-tactic differential oracle.

   For random schemas, data, and predicates, run every applicable
   retrieval strategy — the dynamic optimizer under both goals (which
   exercises Tscan/Sscan/Fscan/Jscan/Uscan and the §7 tactics), the
   sort path, arbitrary competition configurations, the raw Tscan
   machine, and both static baselines [SACL79]/[MoHa90] — and assert
   that all of them return exactly the heap's row multiset.  This
   generalizes `rows invariant under competition configs` in
   test_core.ml into a strategy-vs-strategy oracle: any divergence in
   *results* (rather than cost) between two strategies is a bug in one
   of them, and the full-scan oracle names the guilty side.

   A second property repeats the differential run under a nonzero
   transient fault rate on the index files: the degradation policies
   (retry, quarantine, fallback) must also be result-invariant. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
module R = Rdb_core.Retrieval
module SO = Rdb_core.Static_optimizer
module SJ = Rdb_core.Static_jscan
module Goal = Rdb_core.Goal
module Prng = Rdb_util.Prng

let check = Alcotest.(check bool)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

(* A fresh random table on its own small pool.  Index availability is
   itself randomized (X_IDX always exists so estimation has something
   to hold on to; Y_IDX / XY_IDX come and go), which moves the tactic
   chooser across its whole range.  The pool's shard count is
   randomized too (1–4, from the seed): every differential case — with
   and without fault injection — thereby asserts that buffer-pool
   sharding never changes results or degradation behavior. *)
let build_table ~seed ~rows ~xmax ~ymax ~with_y_idx ~with_xy_idx =
  let pool =
    Rdb_storage.Buffer_pool.create ~shards:(1 + (abs seed mod 4)) ~capacity:128 ()
  in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Prng.int rng xmax);
           Value.int (Prng.int rng ymax);
           Value.str (Printf.sprintf "s%04d" (Prng.int rng 50));
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  if with_y_idx then ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  if with_xy_idx then
    ignore (Table.create_index table ~name:"XY_IDX" ~columns:[ "X"; "Y" ] ());
  table

(* Random predicate templates (with optional host variables). *)
let pred_of rng ~xmax ~ymax =
  let open Predicate in
  let x () = Prng.int rng xmax and y () = Prng.int rng ymax in
  match Prng.int rng 8 with
  | 0 ->
      let lo = x () in
      (And [ "X" >=% Value.int lo; "X" <=% Value.int (lo + Prng.int rng 10);
             between "Y" (Value.int 0) (Value.int (y ())) ],
       [])
  | 1 -> (("X" =% Value.int (x ())), [])
  | 2 -> (Or [ "X" =% Value.int (x ()); "Y" <% Value.int (y () / 4) ], [])
  | 3 ->
      (Or
         [
           In_list ("X", [ Const (Value.int (x ())); Const (Value.int (x ())) ]);
           "Y" =% Value.int (y ());
         ],
       [])
  | 4 -> (And [ Not ("X" <% Value.int (x ())); "Y" <% Value.int (y ()) ], [])
  | 5 -> ((param_cmp "X" Ge "A"), [ ("A", Value.int (x ())) ])
  | 6 ->
      (And [ "X" =% Value.int (x ()); "Y" =% Value.int (y ());
             "S" =% Value.str (Printf.sprintf "s%04d" (Prng.int rng 50)) ],
       [])
  | _ -> (("Y" >=% Value.int (y () / 2)), [])

let oracle table pred =
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  List.rev !out

let sort_rows rows = List.sort (fun a b -> Row.compare_at [| 0 |] a b) rows

let raw_tscan table pred =
  let m = Rdb_storage.Cost.create () in
  let t = Tscan.create table m pred in
  let out = ref [] in
  let rec loop () =
    match Tscan.step t with
    | Scan.Deliver (_, row) ->
        out := row :: !out;
        loop ()
    | Scan.Continue -> loop ()
    | Scan.Done -> ()
    | Scan.Failed _ -> loop () (* retry-safe cursors: step again *)
  in
  loop ();
  List.rev !out

(* Pump a composed tactic to exhaustion through the shared driver
   under a [retry-transient] Policy ladder — the oracle-side twin of
   how every engine loop drives its cursors. *)
let drain_tactic m tac =
  let out = ref [] in
  let d =
    Driver.make
      (Scan.cursor_of_step ~cost:(fun () -> Rdb_storage.Cost.total m) tac)
      Tactic.Policy.(seal (stack [ retry_transient ]))
  in
  (match
     Driver.drain d ~budget:infinity
       ~on_rows:(fun b -> List.iter (fun (_, r) -> out := r :: !out) b.Scan.rows)
   with
  | Ok () -> ()
  | Error _ -> ());
  List.rev !out

(* ISSUE 10's compositionality proof: a genuinely new hybrid strategy
   from combinators alone — an Fscan in X-key order that falls back
   ORELSE to a fresh Tscan on the first fault that reaches it,
   [distinct]-guarded so the overlapping arms never redeliver. *)
let hybrid_strategy table bound () =
  let idx = Option.get (Table.find_index table "X_IDX") in
  let m = Rdb_storage.Cost.create () in
  let cand =
    { Scan.idx; ranges = [ Rdb_btree.Btree.full_range ];
      residual = bound; est = 0.0; est_exact = false }
  in
  let fscan = Fscan.create table m cand ~restriction:bound in
  let to_tscan _ = let t = Tscan.create table m bound in fun () -> Tscan.step t in
  drain_tactic m
    Tactic.(distinct (Hashtbl.create 64) (orelse (fun () -> Fscan.step fscan) to_tscan))

(* The seed composes 2–3 random combinators around a Tscan; each wrap
   is an identity by its .mli law, so the composition must still match
   the oracle (and, in the faulty runs, under fault injection too). *)
let wrap_random rng tac =
  let wrap tac =
    match Prng.int rng 5 with
    | 0 -> Tactic.limit max_int tac
    | 1 -> Tactic.abandon_if (fun () -> None) tac
    | 2 -> Tactic.distinct (Hashtbl.create 16) tac
    | 3 -> Tactic.then_ tac (fun () -> Tactic.halt)
    | _ -> Tactic.race ~choose:(fun () -> `Left) ~left:tac ~right:Tactic.halt
  in
  let rec go n tac = if n = 0 then tac else go (n - 1) (wrap tac) in
  go (2 + Prng.int rng 2) tac

let random_config rng =
  {
    R.default_config with
    R.jscan =
      {
        Jscan.default_config with
        Jscan.switch_ratio = Prng.float rng 3.0;
        scan_cost_cap = Prng.float rng 2.0;
        check_every = 1 + Prng.int rng 400;
        memory_budget = 25 + Prng.int rng 1000;
        simultaneous = Prng.bool rng;
      };
    R.speed_ratio = 0.25 +. Prng.float rng 3.0;
    R.batch_budget =
      (match Prng.int rng 4 with 0 -> 0.0 | 1 -> 1.0 | 2 -> 7.0 | _ -> 64.0);
    R.feedback_rate =
      (match Prng.int rng 3 with 0 -> 0.0 | 1 -> 0.25 +. Prng.float rng 0.5 | _ -> 1.0);
  }

(* Every strategy that must agree, as (name, rows) thunks.  The dynamic
   thunks feed their summaries to [note] (the fault-vacuity counter). *)
let strategies ~note rng table pred env =
  let bound = Predicate.simplify (Predicate.bind pred env) in
  let dyn ?config request () =
    let rows, summary = R.run ?config table request in
    note summary;
    rows
  in
  [
    ("dynamic total-time", dyn (R.request ~env ~explicit_goal:Goal.Total_time pred));
    ("dynamic fast-first", dyn (R.request ~env ~explicit_goal:Goal.Fast_first pred));
    ("dynamic sorted", dyn (R.request ~env ~order_by:[ "Y" ] pred));
    ("dynamic random config", dyn ~config:(random_config rng) (R.request ~env pred));
    (* Run the same request twice at full learning rate: the second run
       plans with whatever the first one taught the table's feedback
       store, and must still produce the oracle rows (corrections steer
       cost, never results). *)
    ( "dynamic feedback repeat",
      fun () ->
        let config = { R.default_config with R.feedback_rate = 1.0 } in
        ignore (dyn ~config (R.request ~env pred) ());
        dyn ~config (R.request ~env pred) () );
    ("dynamic hybrid (fscan orelse tscan)", hybrid_strategy table bound);
    ( "dynamic tactic-wrapped tscan",
      fun () ->
        let m = Rdb_storage.Cost.create () in
        let t = Tscan.create table m bound in
        drain_tactic m (wrap_random rng (fun () -> Tscan.step t)) );
    ("raw tscan", fun () -> raw_tscan table bound);
    ("static mean-point [SACL79]", fun () ->
        let plan = SO.compile table pred ~env:[] in
        (SO.execute table plan pred ~env).SO.rows);
    ("static jscan [MoHa90]", fun () -> (SJ.run table pred ~env).SJ.rows);
  ]

(* Vacuity guard: the fault property must actually exercise the
   degradation machinery, not just run fault-free by accident. *)
let fault_retries_seen = ref 0

let count_degradations (s : R.summary) =
  List.iter
    (function
      | Rdb_exec.Trace.Fault_retry _ | Rdb_exec.Trace.Index_quarantined _
      | Rdb_exec.Trace.Fallback_tscan _ ->
          incr fault_retries_seen
      | _ -> ())
    s.R.trace

let run_case ?(faulty = false) (seed, rows, knobs) =
  let rng = Prng.create ~seed:(seed + (7 * knobs)) in
  let xmax = 10 + Prng.int rng 90 in
  let ymax = 50 + Prng.int rng 950 in
  let table =
    build_table ~seed ~rows ~xmax ~ymax ~with_y_idx:(knobs mod 2 = 0)
      ~with_xy_idx:(knobs mod 3 = 0)
  in
  let pred, env = pred_of rng ~xmax ~ymax in
  let bound = Predicate.simplify (Predicate.bind pred env) in
  let expected = sort_rows (oracle table bound) in
  let injector =
    if faulty then begin
      let rate = 0.02 +. Prng.float rng 0.25 in
      (* sometimes also exhaust the spill store: a tight write budget
         turns spilled RID lists into [Spill_full] faults, whose
         fallback path must agree with the oracle too *)
      let spill_write_budget =
        if Prng.bool rng then Some (Prng.int rng 8) else None
      in
      let inj =
        Rdb_storage.Fault.create
          (Rdb_storage.Fault.plan ~transient_read_rate:rate
             ~transient_classes:[ Rdb_storage.Fault.Index ] ?spill_write_budget
             ~seed:(seed + 1) ())
      in
      (* transient faults fire on physical reads only: flush so the
         retrievals start cold instead of fault-immune in cache *)
      Rdb_storage.Buffer_pool.flush (Table.pool table);
      Rdb_storage.Buffer_pool.set_injector (Table.pool table) (Some inj);
      Some inj
    end
    else None
  in
  let note = if faulty then count_degradations else fun _ -> () in
  let strats =
    if faulty then
      (* the static baselines predate the failure channel; the fault
         property pins the dynamic degradation paths only *)
      List.filter
        (fun (name, _) -> String.length name >= 7 && String.sub name 0 7 = "dynamic")
        (strategies ~note rng table pred env)
    else strategies ~note rng table pred env
  in
  let outcome =
    List.for_all
      (fun (name, run) ->
        if faulty then Rdb_storage.Buffer_pool.flush (Table.pool table);
        let got = sort_rows (run ()) in
        if got = expected then true
        else begin
          Printf.printf "strategy %S diverged on pred %s (%d vs %d rows)\n" name
            (Predicate.to_string bound) (List.length got) (List.length expected);
          false
        end)
      strats
  in
  (match injector with
  | Some _ -> Rdb_storage.Buffer_pool.set_injector (Table.pool table) None
  | None -> ());
  outcome

let case_gen = QCheck.(triple (int_bound 1_000_000) (int_range 150 500) (int_bound 11))

(* Nightly CI raises the case count via QCHECK_COUNT; a failing case
   replays from the seed qcheck-alcotest prints (QCHECK_SEED). *)
let qcount default =
  match Option.bind (Sys.getenv_opt "QCHECK_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let prop_all_tactics_agree =
  QCheck.Test.make ~name:"all tactics return the oracle multiset" ~count:(qcount 60)
    case_gen
    (fun case -> run_case case)

let prop_all_tactics_agree_under_faults =
  QCheck.Test.make ~name:"dynamic tactics agree under transient index faults"
    ~count:(qcount 50) case_gen
    (fun case -> run_case ~faulty:true case)

(* Make sure the differential sweep actually visits the tactic space:
   fixed scenarios that must land on each tactic kind. *)
let test_tactic_coverage () =
  let table =
    build_table ~seed:3 ~rows:600 ~xmax:50 ~ymax:500 ~with_y_idx:true ~with_xy_idx:true
  in
  let open Predicate in
  let seen = Hashtbl.create 16 in
  let note ?explicit_goal ?order_by ?projection pred =
    let rows, s = R.run table (R.request ?explicit_goal ?order_by ?projection pred) in
    let bound = Predicate.simplify pred in
    check
      (Printf.sprintf "coverage run correct (%s)" (R.tactic_to_string s.R.tactic))
      true
      (List.length rows = List.length (oracle table bound));
    (* the summary's armed ladder and the pure description must never
       drift apart (EXPLAIN prints the latter for probe sides) *)
    check "policy description in lockstep" true
      (s.R.policy = R.policy_description s.R.tactic);
    Hashtbl.replace seen s.R.tactic ()
  in
  note ~explicit_goal:Goal.Total_time (Like ("S", "s000%"));
  note ~explicit_goal:Goal.Total_time ~projection:[ "X"; "Y" ]
    (And [ "X" =% Value.int 5; "Y" <% Value.int 250 ]);
  note ~explicit_goal:Goal.Total_time ("X" =% Value.int 5);
  note ~explicit_goal:Goal.Fast_first ("X" =% Value.int 5);
  note ~explicit_goal:Goal.Fast_first ~order_by:[ "X" ]
    (And [ "Y" <% Value.int 100; "S" =% Value.str "s0001" ]);
  note (Or [ "X" =% Value.int 5; "Y" =% Value.int 7 ]);
  note ("X" >% Value.int 100_000);
  let tactics = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
  let expect kind name =
    check (Printf.sprintf "tactic %s visited" name) true (List.mem kind tactics)
  in
  expect R.Static_tscan "tscan";
  expect R.Background_only "background-only";
  expect R.Fast_first_tactic "fast-first";
  expect R.Union_tactic "union";
  expect R.Cancelled "cancelled";
  check "covering tactic visited" true
    (List.mem R.Index_only_tactic tactics || List.mem R.Static_sscan tactics);
  check "ordered tactic visited" true
    (List.mem R.Sorted_tactic tactics || List.mem R.Static_fscan tactics)

(* Covering projections deliver synthetic rows (key columns only); the
   differential check compares the projected columns. *)
let test_projection_differential () =
  let table =
    build_table ~seed:11 ~rows:800 ~xmax:40 ~ymax:400 ~with_y_idx:true ~with_xy_idx:true
  in
  let open Predicate in
  let pred = And [ "X" =% Value.int 7; "Y" <% Value.int 300 ] in
  let key row = (Row.get row 1, Row.get row 2) in
  let expected = List.sort compare (List.map key (oracle table pred)) in
  List.iter
    (fun goal ->
      let rows, _ =
        R.run table (R.request ~explicit_goal:goal ~projection:[ "X"; "Y" ] pred)
      in
      check "projected multiset matches" true
        (List.sort compare (List.map key rows) = expected))
    [ Goal.Total_time; Goal.Fast_first ]

let () =
  Alcotest.run "rdb_oracle"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_all_tactics_agree;
          QCheck_alcotest.to_alcotest prop_all_tactics_agree_under_faults;
          (* runs after the fault property (alcotest is sequential) *)
          Alcotest.test_case "fault injection was exercised" `Quick (fun () ->
              check "saw at least one degradation event" true (!fault_retries_seen > 0));
        ] );
      ( "coverage",
        [
          Alcotest.test_case "tactic space visited" `Quick test_tactic_coverage;
          Alcotest.test_case "projection differential" `Quick test_projection_differential;
        ] );
    ]

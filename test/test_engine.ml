(* Tests for predicates (3VL), range extraction, tables, catalog, and
   the selectivity-distribution glue. *)

open Rdb_data
open Rdb_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let schema =
  Schema.make
    [
      Schema.col "A" Value.T_int;
      Schema.col ~nullable:true "B" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

let row a b s : Row.t =
  [| Value.int a; (match b with Some v -> Value.int v | None -> Value.Null); Value.str s |]

(* --- predicate evaluation ---------------------------------------------- *)

let test_cmp_basics () =
  let open Predicate in
  let r = row 5 (Some 3) "hello" in
  check "eq" true (eval ("A" =% Value.int 5) schema r);
  check "lt" true (eval ("A" <% Value.int 6) schema r);
  check "ge false" false (eval ("A" >=% Value.int 6) schema r);
  check "str" true (eval ("S" =% Value.str "hello") schema r)

let test_null_three_valued () =
  let open Predicate in
  let r = row 5 None "x" in
  (* Comparisons with NULL are Unknown, never satisfied... *)
  check "b = 3 unknown" false (eval ("B" =% Value.int 3) schema r);
  check "b <> 3 unknown too" false (eval (Cmp ("B", Ne, Const (Value.int 3))) schema r);
  (* ...and NOT(unknown) is still not satisfied. *)
  check "not (b = 3) unknown" false (eval (Not ("B" =% Value.int 3)) schema r);
  (* But unknown OR true = true. *)
  check "unknown or true" true (eval (Or [ "B" =% Value.int 3; "A" =% Value.int 5 ]) schema r);
  check "unknown and false" false
    (eval (And [ "B" =% Value.int 3; "A" =% Value.int 99 ]) schema r);
  check "is null" true (eval (Is_null "B") schema r);
  check "is not null" false (eval (Is_not_null "B") schema r);
  (* eval_maybe: unknown is not a definite rejection. *)
  check "maybe unknown" true (eval_maybe ("B" =% Value.int 3) schema r);
  check "maybe definite false" false (eval_maybe ("A" =% Value.int 99) schema r)

let test_between_in_like () =
  let open Predicate in
  let r = row 15 (Some 7) "database" in
  check "between" true (eval (between "A" (Value.int 10) (Value.int 20)) schema r);
  check "between excl" false (eval (between "A" (Value.int 16) (Value.int 20)) schema r);
  check "in list" true
    (eval (In_list ("B", [ Const (Value.int 1); Const (Value.int 7) ])) schema r);
  check "like prefix" true (eval (Like ("S", "data%")) schema r);
  check "like infix" true (eval (Like ("S", "%tab%")) schema r);
  check "like underscore" true (eval (Like ("S", "_atabase")) schema r);
  check "like no match" false (eval (Like ("S", "db%")) schema r);
  check "like exact" true (eval (Like ("S", "database")) schema r);
  check "like percent only" true (eval (Like ("S", "%")) schema r)

let test_bind_params () =
  let open Predicate in
  let p = param_cmp "A" Ge "X" in
  check "unbound" false (is_bound p);
  Alcotest.(check (list string)) "params" [ "X" ] (params p);
  let b = bind p [ ("X", Value.int 10) ] in
  check "bound" true (is_bound b);
  check "eval bound" true (eval b schema (row 15 None ""));
  check "missing param raises" true
    (try
       ignore (bind p []);
       false
     with Unbound_param "X" -> true)

let test_simplify () =
  let open Predicate in
  check "and true" true (simplify (And [ True; "A" =% Value.int 1 ]) = ("A" =% Value.int 1));
  check "and false" true (simplify (And [ "A" =% Value.int 1; False ]) = False);
  check "or true" true (simplify (Or [ "A" =% Value.int 1; True ]) = True);
  check "nested flatten" true
    (simplify (And [ And [ "A" =% Value.int 1; "A" =% Value.int 2 ]; "A" =% Value.int 3 ])
    = And [ "A" =% Value.int 1; "A" =% Value.int 2; "A" =% Value.int 3 ]);
  check "double neg" true (simplify (Not (Not ("A" =% Value.int 1))) = ("A" =% Value.int 1));
  check "empty and" true (simplify (And []) = True);
  check "empty or" true (simplify (Or []) = False)

(* qcheck: simplify preserves evaluation *)
let arb_pred =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Predicate.True;
        return Predicate.False;
        map
          (fun (v, op) ->
            let ops = [| Predicate.Eq; Predicate.Ne; Predicate.Lt; Predicate.Ge |] in
            Predicate.Cmp ("A", ops.(op mod 4), Predicate.Const (Value.int v)))
          (pair (int_range 0 20) (int_range 0 3));
        map (fun v -> Predicate.Cmp ("B", Predicate.Le, Predicate.Const (Value.int v)))
          (int_range 0 20);
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (1, map (fun l -> Predicate.And l) (list_size (int_range 1 3) (tree (depth - 1))));
          (1, map (fun l -> Predicate.Or l) (list_size (int_range 1 3) (tree (depth - 1))));
          (1, map (fun p -> Predicate.Not p) (tree (depth - 1)));
        ]
  in
  QCheck.make ~print:Predicate.to_string (tree 3)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves 3VL evaluation" ~count:300
    (QCheck.pair arb_pred (QCheck.pair (QCheck.int_range 0 20) (QCheck.option (QCheck.int_range 0 20))))
    (fun (p, (a, b)) ->
      let r = row a b "s" in
      Predicate.eval p schema r = Predicate.eval (Predicate.simplify p) schema r
      && Predicate.eval_maybe p schema r
         = Predicate.eval_maybe (Predicate.simplify p) schema r)

(* --- range extraction ----------------------------------------------------- *)

let mk_table () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:1024 () in
  let t = Table.create pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:5 in
  for i = 0 to 499 do
    let b = if i mod 7 = 0 then None else Some (Rdb_util.Prng.int rng 50) in
    ignore (Table.insert t (row (Rdb_util.Prng.int rng 100) b (Printf.sprintf "s%03d" i)))
  done;
  ignore (Table.create_index t ~name:"A_IDX" ~columns:[ "A" ] ());
  ignore (Table.create_index t ~name:"AB_IDX" ~columns:[ "A"; "B" ] ());
  t

let test_extract_simple_range () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e = Range_extract.for_index (And [ "A" >=% Value.int 10; "A" <% Value.int 20 ]) idx in
  check "bounded" true e.Range_extract.bounded;
  check "residual empty" true (e.Range_extract.residual = True);
  match e.Range_extract.ranges with
  | [ r ] ->
      check "range lo" true (r.Rdb_btree.Btree.lo = Rdb_btree.Btree.Incl [| Value.int 10 |]);
      check "range hi" true (r.Rdb_btree.Btree.hi = Rdb_btree.Btree.Excl [| Value.int 20 |])
  | _ -> Alcotest.fail "expected a single range" 

let test_extract_eq_prefix_plus_range () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "AB_IDX") in
  let open Predicate in
  let e =
    Range_extract.for_index (And [ "A" =% Value.int 5; "B" >% Value.int 10 ]) idx
  in
  check "eq prefix 1" true (e.Range_extract.eq_prefix = 1);
  check "residual empty" true (e.Range_extract.residual = True);
  match e.Range_extract.ranges with
  | [ r ] ->
      check "lo key" true
        (r.Rdb_btree.Btree.lo = Rdb_btree.Btree.Excl [| Value.int 5; Value.int 10 |])
  | _ -> Alcotest.fail "expected a single range" 

let test_extract_keeps_residual () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let pred = And [ "A" >=% Value.int 10; "S" =% Value.str "x" ] in
  let e = Range_extract.for_index pred idx in
  check "bounded" true e.Range_extract.bounded;
  check "residual keeps S" true (e.Range_extract.residual = ("S" =% Value.str "x"))

let test_extract_contradiction_gives_empty () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e = Range_extract.for_index (And [ "A" >% Value.int 20; "A" <% Value.int 10 ]) idx in
  (* The resulting range must select nothing. *)
  let m = Rdb_storage.Cost.create () in
  let total =
    List.fold_left
      (fun acc r -> acc + Rdb_btree.Btree.count_range idx.Table.tree m r)
      0 e.Range_extract.ranges
  in
  check_int "empty" 0 total

let test_extract_null_constant_not_absorbed () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e = Range_extract.for_index (Cmp ("A", Eq, Const Value.Null)) idx in
  check "not bounded" false e.Range_extract.bounded

let test_extract_or_not_bounded () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e =
    Range_extract.for_index (Or [ "A" =% Value.int 1; "A" =% Value.int 50 ]) idx
  in
  check "OR not bounded" false e.Range_extract.bounded

(* The soundness property: the extracted range never loses a
   qualifying row, and range + residual together equal the original
   predicate on every row. *)
let prop_extraction_sound =
  QCheck.Test.make ~name:"range extraction is sound and aligned" ~count:100 arb_pred
    (fun pred ->
      let t = mk_table () in
      let idx = Option.get (Table.find_index t "AB_IDX") in
      let e = Range_extract.for_index pred idx in
      let m = Rdb_storage.Cost.create () in
      let ok = ref true in
      Rdb_storage.Heap_file.iter (Table.heap t) m (fun _ row ->
          let qualifies = Predicate.eval pred schema row in
          let key = Table.index_key idx row in
          let in_range =
            List.exists (fun r -> Rdb_btree.Btree.in_range r key) e.Range_extract.ranges
          in
          let residual_ok = Predicate.eval e.Range_extract.residual schema row in
          (* soundness: qualifying row is in range and passes residual *)
          if qualifies && not (in_range && residual_ok) then ok := false;
          (* alignment: in-range + residual implies qualifies *)
          if in_range && residual_ok && not qualifies then ok := false);
      !ok)

let test_extract_in_list_multi_range () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e =
    Range_extract.for_index
      (In_list ("A", [ Const (Value.int 7); Const (Value.int 3); Const (Value.int 7) ]))
      idx
  in
  check "bounded" true e.Range_extract.bounded;
  check_int "two ranges (deduped, sorted)" 2 (List.length e.Range_extract.ranges);
  check "residual empty" true (e.Range_extract.residual = True);
  (* contents equal the two point groups *)
  let m = Rdb_storage.Cost.create () in
  let count =
    List.fold_left
      (fun acc r -> acc + Rdb_btree.Btree.count_range idx.Table.tree m r)
      0 e.Range_extract.ranges
  in
  let oracle = ref 0 in
  Rdb_storage.Heap_file.iter (Table.heap t) m (fun _ row ->
      match Row.get row 0 with
      | Value.Int (3 | 7) -> incr oracle
      | _ -> ());
  check_int "covers exactly the IN rows" !oracle count

let test_extract_in_list_with_param_not_absorbed () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let open Predicate in
  let e =
    Range_extract.for_index
      (In_list ("A", [ Const (Value.int 1); Const Value.Null ]))
      idx
  in
  (* NULL member: not absorbable. *)
  check "not bounded" false e.Range_extract.bounded

(* --- tables ----------------------------------------------------------------- *)

let test_table_index_maintenance () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  check_int "index covers all rows" (Table.row_count t)
    (Rdb_btree.Btree.cardinality idx.Table.tree);
  let rid = Table.insert t (row 42 (Some 1) "new") in
  check_int "insert maintained" (Table.row_count t)
    (Rdb_btree.Btree.cardinality idx.Table.tree);
  check "delete" true (Table.delete t rid);
  check_int "delete maintained" (Table.row_count t)
    (Rdb_btree.Btree.cardinality idx.Table.tree)

let test_table_validation () =
  let t = mk_table () in
  check "bad arity rejected" true
    (try
       ignore (Table.insert t [| Value.int 1 |]);
       false
     with Invalid_argument _ -> true)

let test_index_classification () =
  let t = mk_table () in
  let ab = Option.get (Table.find_index t "AB_IDX") in
  check "covers A,B" true (Table.index_covers ab ~columns:[ "A"; "B" ]);
  check "does not cover S" false (Table.index_covers ab ~columns:[ "A"; "S" ]);
  check "provides order A" true (Table.index_provides_order ab ~order:[ "A" ]);
  check "provides order A,B" true (Table.index_provides_order ab ~order:[ "A"; "B" ]);
  check "no order B" false (Table.index_provides_order ab ~order:[ "B" ])

let test_duplicate_index_rejected () =
  let t = mk_table () in
  check "dup name" true
    (try
       ignore (Table.create_index t ~name:"A_IDX" ~columns:[ "A" ] ());
       false
     with Invalid_argument _ -> true);
  check "unknown column" true
    (try
       ignore (Table.create_index t ~name:"Z_IDX" ~columns:[ "Z" ] ());
       false
     with Invalid_argument _ -> true)

let test_table_update_maintains_indexes () =
  let t = mk_table () in
  let idx = Option.get (Table.find_index t "A_IDX") in
  let rid = Table.insert t (row 42 (Some 1) "upd") in
  let m = Rdb_storage.Cost.create () in
  check "update" true (Table.update t rid (row 77 (Some 1) "upd'"));
  check "old key gone" false
    (Rdb_btree.Btree.mem idx.Table.tree m [| Value.int 42 |] rid);
  check "new key present" true
    (Rdb_btree.Btree.mem idx.Table.tree m [| Value.int 77 |] rid);
  check "row updated" true
    (Row.equal (Option.get (Rdb_storage.Heap_file.fetch (Table.heap t) m rid))
       (row 77 (Some 1) "upd'"));
  check "update dead rid" false
    (let dead = Rid.make ~page:9999 ~slot:0 in
     Table.update t dead (row 1 None "x"))

let test_clustering_factor_discriminates () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:4096 () in
  let schema2 = Schema.make [ Schema.col "K" Value.T_int; Schema.col "R" Value.T_int ] in
  let t = Table.create ~page_bytes:512 pool ~name:"CL" schema2 in
  let rng = Rdb_util.Prng.create ~seed:13 in
  for i = 0 to 4999 do
    (* K follows insertion order (clustered); R is random. *)
    ignore (Table.insert t [| Value.int i; Value.int (Rdb_util.Prng.int rng 1_000_000) |])
  done;
  let ki = Table.create_index t ~name:"K_IDX" ~columns:[ "K" ] () in
  let ri = Table.create_index t ~name:"R_IDX" ~columns:[ "R" ] () in
  let ck = Table.clustering_factor t ki in
  let cr = Table.clustering_factor t ri in
  check (Printf.sprintf "clustered ~1 (%.2f)" ck) true (ck > 0.9);
  check (Printf.sprintf "random low (%.2f)" cr) true (cr < 0.5);
  (* cache: second call returns the same *)
  check "cached" true (Table.clustering_factor t ki = ck)

let test_database_catalog () =
  let db = Database.create () in
  let t = Database.create_table db ~name:"X" schema in
  check "find" true (match Database.find_table db "X" with Some t2 -> t2 == t | None -> false);
  check "dup rejected" true
    (try
       ignore (Database.create_table db ~name:"X" schema);
       false
     with Invalid_argument _ -> true);
  check "drop" true (Database.drop_table db "X");
  check "gone" true (Database.find_table db "X" = None)

let test_like_edge_patterns () =
  let open Predicate in
  let r = row 1 None "" in
  check "empty string matches %" true (eval (Like ("S", "%")) schema r);
  check "empty vs empty" true (eval (Like ("S", "")) schema r);
  check "empty vs underscore" false (eval (Like ("S", "_")) schema r);
  let r2 = row 1 None "abc" in
  check "double percent" true (eval (Like ("S", "%%")) schema r2);
  check "literal tail" true (eval (Like ("S", "%c")) schema r2);
  check "literal head" false (eval (Like ("S", "b%")) schema r2)

let test_empty_in_list () =
  let open Predicate in
  let r = row 1 (Some 2) "x" in
  check "IN () is false" false (eval (In_list ("A", [])) schema r);
  check "NOT IN () is true" true (eval (Not (In_list ("A", []))) schema r)

let test_cmp_col_same_table () =
  let open Predicate in
  (* A vs B on the same row, with NULL handling. *)
  check "equal cols" true (eval (Cmp_col ("A", Eq, "A")) schema (row 3 None "x"));
  check "a < b" true (eval (Cmp_col ("A", Lt, "B")) schema (row 3 (Some 9) "x"));
  check "null is unknown" false (eval (Cmp_col ("A", Eq, "B")) schema (row 3 None "x"));
  check "maybe on null" true (eval_maybe (Cmp_col ("A", Eq, "B")) schema (row 3 None "x"))

let test_bind_is_idempotent_when_bound () =
  let open Predicate in
  let p = bind (param_cmp "A" Ge "X") [ ("X", Value.int 1) ] in
  check "double bind ok" true (bind p [] = p)

(* --- histogram (the §5 strawman) --------------------------------------------- *)

let test_histogram_estimates () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:1024 () in
  let schema2 = Schema.make [ Schema.col "V" Value.T_int ] in
  let t = Table.create ~page_bytes:512 pool ~name:"H" schema2 in
  for i = 0 to 9999 do
    ignore (Table.insert t [| Value.int (i mod 1000) |])
  done;
  let m = Rdb_storage.Cost.create () in
  let h = Histogram.build ~buckets:50 t ~column:"V" m in
  check "build charged full scans" true (Histogram.build_cost h > 0.0);
  check_int "rows at build" 10000 (Histogram.built_at_rows h);
  (* Uniform data: [100, 299] holds ~2000 rows. *)
  let est = Histogram.estimate_range h ~lo:(Some 100.0) ~hi:(Some 299.0) in
  check (Printf.sprintf "range estimate ~2000 (%.0f)" est) true
    (est > 1500.0 && est < 2500.0);
  check "empty above max" true (Histogram.estimate_range h ~lo:(Some 5000.0) ~hi:None < 1.0);
  check "inverted range" true (Histogram.estimate_range h ~lo:(Some 10.0) ~hi:(Some 5.0) = 0.0);
  (* full range covers everything *)
  let full = Histogram.estimate_range h ~lo:None ~hi:None in
  check "full range total" true (Float.abs (full -. 10000.0) < 1.0)

let test_histogram_predicate_coverage () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:1024 () in
  let schema2 = Schema.make [ Schema.col "V" Value.T_int ] in
  let t = Table.create pool ~name:"H2" schema2 in
  for i = 0 to 999 do
    ignore (Table.insert t [| Value.int i |])
  done;
  let m = Rdb_storage.Cost.create () in
  let h = Histogram.build t ~column:"V" m in
  let open Predicate in
  check "range-producing ok" true (Histogram.estimate_predicate h ("V" <% Value.int 100) <> None);
  check "between ok" true
    (Histogram.estimate_predicate h (between "V" (Value.int 1) (Value.int 2)) <> None);
  check "LIKE not covered" true (Histogram.estimate_predicate h (Like ("V", "1%")) = None);
  check "IS NULL not covered" true (Histogram.estimate_predicate h (Is_null "V") = None);
  check "other column ignored" true
    (Histogram.estimate_predicate h ("W" <% Value.int 1) = None)

let test_histogram_staleness () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:1024 () in
  let schema2 = Schema.make [ Schema.col "V" Value.T_int ] in
  let t = Table.create pool ~name:"H3" schema2 in
  for _ = 1 to 500 do
    ignore (Table.insert t [| Value.int 10 |])
  done;
  let m = Rdb_storage.Cost.create () in
  let h = Histogram.build t ~column:"V" m in
  for _ = 1 to 500 do
    ignore (Table.insert t [| Value.int 10 |])
  done;
  (* The histogram still answers from its snapshot. *)
  let est = Histogram.estimate_range h ~lo:None ~hi:None in
  check "snapshot answer" true (est < 600.0);
  check "witness records build size" true (Histogram.built_at_rows h = 500)

(* --- selectivity glue --------------------------------------------------------- *)

let test_selectivity_leaf_uses_index () =
  let t = mk_table () in
  let m = Rdb_storage.Cost.create () in
  let open Predicate in
  let d = Selectivity.of_predicate ~bins:128 t m ("A" <% Value.int 50) in
  (* Roughly half the rows: the distribution should be centered well
     inside (0, 1). *)
  let mean = Rdb_dist.Dist.mean d in
  check "mean in (0.2, 0.8)" true (mean > 0.2 && mean < 0.8)

let test_selectivity_unknown_is_uniform () =
  let t = mk_table () in
  let m = Rdb_storage.Cost.create () in
  let open Predicate in
  let d = Selectivity.of_predicate ~bins:128 t m (Like ("S", "%x%")) in
  check "uniform-ish" true (Rdb_dist.Dist.stddev d > 0.25)

let test_selectivity_and_shrinks () =
  let t = mk_table () in
  let m = Rdb_storage.Cost.create () in
  let open Predicate in
  let single = Selectivity.of_predicate ~bins:128 t m ("A" <% Value.int 50) in
  let conj =
    Selectivity.of_predicate ~bins:128 t m
      (And [ "A" <% Value.int 50; Like ("S", "%x%") ])
  in
  check "AND mean below single" true (Rdb_dist.Dist.mean conj < Rdb_dist.Dist.mean single +. 0.02)

let () =
  Alcotest.run "rdb_engine"
    [
      ( "predicate",
        [
          Alcotest.test_case "comparisons" `Quick test_cmp_basics;
          Alcotest.test_case "NULL 3VL" `Quick test_null_three_valued;
          Alcotest.test_case "between/in/like" `Quick test_between_in_like;
          Alcotest.test_case "bind params" `Quick test_bind_params;
          Alcotest.test_case "simplify" `Quick test_simplify;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
        ] );
      ( "predicate-edges",
        [
          Alcotest.test_case "LIKE edge patterns" `Quick test_like_edge_patterns;
          Alcotest.test_case "empty IN list" `Quick test_empty_in_list;
          Alcotest.test_case "column-column compare" `Quick test_cmp_col_same_table;
          Alcotest.test_case "bind idempotent" `Quick test_bind_is_idempotent_when_bound;
        ] );
      ( "range_extract",
        [
          Alcotest.test_case "simple range" `Quick test_extract_simple_range;
          Alcotest.test_case "eq prefix + range" `Quick test_extract_eq_prefix_plus_range;
          Alcotest.test_case "residual kept" `Quick test_extract_keeps_residual;
          Alcotest.test_case "contradiction empty" `Quick test_extract_contradiction_gives_empty;
          Alcotest.test_case "NULL not absorbed" `Quick test_extract_null_constant_not_absorbed;
          Alcotest.test_case "OR not bounded" `Quick test_extract_or_not_bounded;
          Alcotest.test_case "IN-list multi-range" `Quick test_extract_in_list_multi_range;
          Alcotest.test_case "IN with NULL not absorbed" `Quick
            test_extract_in_list_with_param_not_absorbed;
          QCheck_alcotest.to_alcotest prop_extraction_sound;
        ] );
      ( "table",
        [
          Alcotest.test_case "index maintenance" `Quick test_table_index_maintenance;
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "classification" `Quick test_index_classification;
          Alcotest.test_case "bad index rejected" `Quick test_duplicate_index_rejected;
          Alcotest.test_case "update maintains indexes" `Quick
            test_table_update_maintains_indexes;
          Alcotest.test_case "clustering factor" `Quick test_clustering_factor_discriminates;
          Alcotest.test_case "catalog" `Quick test_database_catalog;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "estimates" `Quick test_histogram_estimates;
          Alcotest.test_case "predicate coverage" `Quick test_histogram_predicate_coverage;
          Alcotest.test_case "staleness" `Quick test_histogram_staleness;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "leaf uses index" `Quick test_selectivity_leaf_uses_index;
          Alcotest.test_case "unknown is uniform" `Quick test_selectivity_unknown_is_uniform;
          Alcotest.test_case "AND shrinks" `Quick test_selectivity_and_shrinks;
        ] );
    ]

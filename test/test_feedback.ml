(* Feedback-driven estimation (DESIGN.md §13).

   Unit tests for the bucket-keyed correction math (identity at rate
   0, monotone convergence toward the observed cardinality, clamping,
   invalidation on [Table.invalidate_stats] and repair reseed), the
   histogram feedback path, end-to-end trace identity when the loop
   is off, and a qcheck property pinning the archetype invariant: on
   an identical workload replayed for several generations, every
   index's estimate-vs-actual error is non-increasing generation over
   generation, while the delivered rows stay exactly the oracle
   multiset. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
module R = Rdb_core.Retrieval
module Prng = Rdb_util.Prng

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

(* --- correction math ------------------------------------------------ *)

let test_rate_zero_identity () =
  let fb = Feedback.create () in
  Feedback.observe fb ~rate:0.0 ~name:"I" ~key:1 ~est:10.0 ~actual:100.0;
  check "no cell created at rate 0" true (Feedback.cells fb = 0);
  check "no observation counted at rate 0" true (Feedback.observations fb = 0);
  check "unknown" false (Feedback.known fb ~name:"I" ~key:1);
  checkf "correct is the identity" 42.0 (Feedback.correct fb ~name:"I" ~key:1 42.0);
  checkf "factor is 1" 1.0 (Feedback.factor fb ~name:"I" ~key:1)

let test_one_step_at_rate_one () =
  let fb = Feedback.create () in
  Feedback.observe fb ~rate:1.0 ~name:"I" ~key:0 ~est:100.0 ~actual:400.0;
  checkf "rate 1 nails the factor in one step" 400.0
    (Feedback.correct fb ~name:"I" ~key:0 100.0);
  check "cell exists" true (Feedback.known fb ~name:"I" ~key:0);
  check "one observation" true (Feedback.observations fb = 1)

let test_monotone_convergence () =
  let fb = Feedback.create () in
  let est () = Feedback.correct fb ~name:"I" ~key:0 100.0 in
  let dist e = Float.abs (log (400.0 /. e)) in
  let d = ref (dist (est ())) in
  for _ = 1 to 12 do
    Feedback.observe fb ~rate:0.5 ~name:"I" ~key:0 ~est:(est ()) ~actual:400.0;
    let d' = dist (est ()) in
    check "log distance never grows" true (d' <= !d +. 1e-9);
    d := d'
  done;
  check "converged within 1%" true (Float.abs (est () -. 400.0) /. 400.0 < 0.01)

let test_clamps () =
  let fb = Feedback.create () in
  Feedback.observe fb ~rate:1.0 ~name:"I" ~key:0 ~est:1.0 ~actual:1e9;
  checkf "factor capped at 64x" 64.0 (Feedback.factor fb ~name:"I" ~key:0);
  let fb = Feedback.create () in
  Feedback.observe fb ~rate:1.0 ~name:"I" ~key:0 ~est:1e9 ~actual:1.0;
  checkf "factor floored at 1/64" (1. /. 64.) (Feedback.factor fb ~name:"I" ~key:0);
  (* A rate beyond 1 is clamped: no overshoot past the observation. *)
  let fb = Feedback.create () in
  Feedback.observe fb ~rate:5.0 ~name:"I" ~key:0 ~est:100.0 ~actual:400.0;
  checkf "rate clamped to 1" 400.0 (Feedback.correct fb ~name:"I" ~key:0 100.0)

let test_bucketing_is_deterministic () =
  let fb = Feedback.create () in
  check "same key, same bucket" true (Feedback.bucket fb (3, "k") = Feedback.bucket fb (3, "k"));
  Feedback.observe fb ~rate:1.0 ~name:"A" ~key:(3, "k") ~est:10.0 ~actual:20.0;
  (* Same bucket under a different name is a different cell. *)
  check "names do not alias" false (Feedback.known fb ~name:"B" ~key:(3, "k"));
  Feedback.reset fb;
  check "reset drops cells" true (Feedback.cells fb = 0 && Feedback.observations fb = 0);
  check "reset forgets" false (Feedback.known fb ~name:"A" ~key:(3, "k"))

(* --- table integration --------------------------------------------- *)

let schema =
  Schema.make
    [ Schema.col "ID" Value.T_int; Schema.col "X" Value.T_int; Schema.col "Y" Value.T_int ]

let build_table ?(rows = 400) ?(xmax = 1000) ~seed () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:256 () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [| Value.int i; Value.int (Prng.int rng xmax); Value.int (Prng.int rng xmax) |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  table

let teach table =
  Feedback.observe (Table.feedback table) ~rate:1.0 ~name:"X_IDX" ~key:"k" ~est:10.0
    ~actual:30.0

let test_invalidate_stats_resets () =
  let table = build_table ~seed:5 () in
  teach table;
  check "taught" true (Feedback.observations (Table.feedback table) = 1);
  Table.invalidate_stats table;
  check "invalidate_stats resets the store" true
    (Feedback.observations (Table.feedback table) = 0
    && not (Feedback.known (Table.feedback table) ~name:"X_IDX" ~key:"k"))

let test_repair_reseed_resets () =
  let table = build_table ~seed:6 () in
  teach table;
  (* Rebuild X_IDX the way repair does and swap it in: learned factors
     describe the old physical tree and must not survive. *)
  let idx = Option.get (Table.find_index table "X_IDX") in
  let meter = Table.build_meter table in
  let tree = Rdb_btree.Btree.create (Table.pool table) in
  Rdb_storage.Heap_file.iter (Table.heap table) meter (fun rid row ->
      Rdb_btree.Btree.insert tree meter (Table.index_key idx row) rid);
  Table.replace_index table ~name:"X_IDX" tree;
  check "replace_index reseeds the store" true
    (Feedback.observations (Table.feedback table) = 0)

(* --- histogram feedback path --------------------------------------- *)

let test_histogram_feedback () =
  let table = build_table ~seed:7 ~rows:500 () in
  let m = Rdb_storage.Cost.create () in
  let h = Histogram.build table ~column:"X" m in
  let lo = Some 100.0 and hi = Some 400.0 in
  let raw = Histogram.estimate_range h ~lo ~hi in
  let fb = Feedback.create () in
  checkf "no observation: corrected = raw" raw (Histogram.estimate_range ~feedback:fb h ~lo ~hi);
  Histogram.observe_range h fb ~rate:1.0 ~lo ~hi ~actual:(3.0 *. raw);
  checkf "converges on the observed actual" (3.0 *. raw)
    (Histogram.estimate_range ~feedback:fb h ~lo ~hi);
  checkf "plain estimate untouched" raw (Histogram.estimate_range h ~lo ~hi)

(* --- end-to-end: identity off, convergence on ----------------------- *)

let oracle table pred =
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap table) m (fun _ row ->
      if Predicate.eval pred (Table.schema table) row then out := row :: !out);
  List.rev !out

let sort_rows rows = List.sort (fun a b -> Row.compare_at [| 0 |] a b) rows

(* Narrow enough that Jscan walks both index ranges to completion
   (wider spans get every scan discarded mid-competition, and a
   discarded scan teaches nothing — only full walks observe the true
   range cardinality). *)
let wide_pred =
  let open Predicate in
  And
    [
      between "X" (Value.int 100) (Value.int 199);
      between "Y" (Value.int 150) (Value.int 249);
    ]

let test_default_config_is_identical () =
  (* Two fresh identical tables, one queried at the default config and
     one at an explicit rate 0: traces (and therefore costs and every
     decision) must be byte-identical, and neither teaches the store. *)
  let run config =
    let table = build_table ~seed:21 ~rows:3000 () in
    let _, (s : R.summary) = R.run ?config table (R.request wide_pred) in
    (s.R.trace, Feedback.observations (Table.feedback table))
  in
  let trace_a, obs_a = run None in
  let trace_b, obs_b = run (Some { R.default_config with R.feedback_rate = 0.0 }) in
  check "traces identical" true (trace_a = trace_b);
  check "store untouched" true (obs_a = 0 && obs_b = 0)

(* Per-index inexact estimate-vs-actual error factors from a trace. *)
let errors_by_index events =
  let completed = Hashtbl.create 4 in
  List.iter
    (function
      | Trace.Scan_completed { index; scanned; _ } -> Hashtbl.replace completed index scanned
      | _ -> ())
    events;
  List.filter_map
    (function
      | Trace.Estimated { index; estimate; exact = false; _ } -> (
          match Hashtbl.find_opt completed index with
          | Some scanned ->
              let actual = Float.max 1.0 (float_of_int scanned) in
              let est = Float.max 1.0 estimate in
              Some (index, Float.max (est /. actual) (actual /. est))
          | None -> None)
      | _ -> None)
    events

let test_repeated_query_converges () =
  let table = build_table ~seed:22 ~rows:4000 () in
  let expected = sort_rows (oracle table wide_pred) in
  let config = { R.default_config with R.feedback_rate = 1.0 } in
  let gen () =
    let rows, (s : R.summary) = R.run ~config table (R.request wide_pred) in
    check "rows equal the oracle every generation" true (sort_rows rows = expected);
    s.R.trace
  in
  let corrections trace =
    List.length
      (List.filter (function Trace.Feedback_applied _ -> true | _ -> false) trace)
  in
  let t1 = gen () in
  check "generation 1 plans uncorrected" true (corrections t1 = 0);
  check "generation 1 completed an inexact scan" true (errors_by_index t1 <> []);
  let t2 = gen () in
  check "generation 2 plans with corrections" true (corrections t2 > 0);
  check "observations recorded" true (Feedback.observations (Table.feedback table) > 0);
  (* Errors for every index present in both generations must not grow;
     at rate 1 a re-observed index is corrected onto its actual. *)
  let e1 = errors_by_index t1 and e2 = errors_by_index t2 in
  List.iter
    (fun (idx, err2) ->
      match List.assoc_opt idx e1 with
      | Some err1 -> check ("error non-increasing on " ^ idx) true (err2 <= err1 +. 1e-6)
      | None -> ())
    e2

(* --- qcheck: the archetype property --------------------------------- *)

(* Vacuity guard: across the whole qcheck sweep, corrections must have
   actually fired (otherwise the property passes without testing
   anything). *)
let corrections_seen = ref 0

let prop_error_non_increasing =
  QCheck.Test.make
    ~name:"per-index estimate error non-increasing across generations, rows invariant"
    ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 1000 3000) (int_bound 2))
    (fun (seed, rows, ri) ->
      let rate = [| 0.25; 0.5; 1.0 |].(ri) in
      let table = build_table ~seed ~rows () in
      let rng = Prng.create ~seed:(seed + 13) in
      let span () =
        let lo = Prng.int rng 700 and w = 50 + Prng.int rng 250 in
        (lo, lo + w)
      in
      let xlo, xhi = span () and ylo, yhi = span () in
      let pred =
        let open Predicate in
        And
          [
            between "X" (Value.int xlo) (Value.int xhi);
            between "Y" (Value.int ylo) (Value.int yhi);
          ]
      in
      let expected = sort_rows (oracle table pred) in
      let config = { R.default_config with R.feedback_rate = rate } in
      let last_err = Hashtbl.create 4 in
      let ok = ref true in
      for _ = 1 to 4 do
        let rows', (s : R.summary) = R.run ~config table (R.request pred) in
        if sort_rows rows' <> expected then ok := false;
        List.iter
          (fun e ->
            match e with Trace.Feedback_applied _ -> incr corrections_seen | _ -> ())
          s.R.trace;
        List.iter
          (fun (idx, err) ->
            (match Hashtbl.find_opt last_err idx with
            | Some prev -> if err > prev +. 1e-6 then ok := false
            | None -> ());
            Hashtbl.replace last_err idx err)
          (errors_by_index s.R.trace)
      done;
      !ok)

let () =
  Alcotest.run "rdb_feedback"
    [
      ( "math",
        [
          Alcotest.test_case "rate 0 is the identity" `Quick test_rate_zero_identity;
          Alcotest.test_case "rate 1 one-step" `Quick test_one_step_at_rate_one;
          Alcotest.test_case "monotone convergence" `Quick test_monotone_convergence;
          Alcotest.test_case "clamps" `Quick test_clamps;
          Alcotest.test_case "bucketing" `Quick test_bucketing_is_deterministic;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "invalidate_stats resets" `Quick test_invalidate_stats_resets;
          Alcotest.test_case "repair reseed resets" `Quick test_repair_reseed_resets;
        ] );
      ( "histogram",
        [ Alcotest.test_case "histogram feedback path" `Quick test_histogram_feedback ] );
      ( "end-to-end",
        [
          Alcotest.test_case "default config byte-identical" `Quick
            test_default_config_is_identical;
          Alcotest.test_case "repeated query converges" `Quick test_repeated_query_converges;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_error_non_increasing;
          (* runs after the property (alcotest is sequential) *)
          Alcotest.test_case "corrections were exercised" `Quick (fun () ->
              check "saw at least one correction" true (!corrections_seen > 0));
        ] );
    ]

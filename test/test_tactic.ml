(* Tactic combinator laws (DESIGN.md §17).

   Each combinator's .mli law is pinned against scripted step tactics
   (pure step lists, so expected streams are written out by hand), and
   a qcheck property checks that combinator-composed tactics are
   byte-identical — rows, order, step stream, fault sequence — to
   their bespoke twins on random scripts.  The Policy sub-algebra is
   pinned the same way: rung order, description strings, and the
   sealed driver behavior. *)

open Rdb_data
open Rdb_exec
open Rdb_storage

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Scripted steps: a tactic replaying a fixed list, then Done. *)
let rid i = Rid.make ~page:i ~slot:0
let row i = [| Value.int i |]
let deliver i = Scan.Deliver (rid i, row i)

let fault ?(kind = Fault.Transient) ?(class_ = Fault.Index) i =
  { Fault.file = 1; index = i; class_; kind }

let of_script script =
  let rest = ref script in
  fun () ->
    match !rest with
    | [] -> Scan.Done
    | s :: tl ->
        rest := tl;
        s

(* Pump a tactic for [n] quanta and record the raw step stream. *)
let stream ?(n = 64) tac =
  let out = ref [] in
  (try
     for _ = 1 to n do
       let s = tac () in
       out := s :: !out;
       match s with Scan.Done -> raise Exit | _ -> ()
     done
   with Exit -> ());
  List.rev !out

let delivered stream =
  List.filter_map (function Scan.Deliver (_, r) -> Some r | _ -> None) stream

let faults stream =
  List.filter_map (function Scan.Failed f -> Some f | _ -> None) stream

(* ------------------------------------------------------------------ *)
(* Per-combinator laws                                                 *)

let test_halt () =
  check "halt is Done forever" true
    (List.for_all (( = ) Scan.Done) (stream ~n:5 (fun () -> Tactic.halt ())))

let test_then () =
  let built = ref 0 in
  let tac =
    Tactic.then_
      (of_script [ deliver 1; Scan.Continue; deliver 2 ])
      (fun () ->
        incr built;
        of_script [ deliver 3 ])
  in
  let s = stream tac in
  check "rows in phase order" true
    (delivered s = [ row 1; row 2; row 3 ]);
  check_int "successor built exactly once" 1 !built;
  (* first's Done is consumed as the switch quantum's Continue *)
  check "seam is one Continue" true
    (s
    = [ deliver 1; Scan.Continue; deliver 2; Scan.Continue; deliver 3;
        Scan.Done ])

let test_then_lazy () =
  let built = ref 0 in
  let tac =
    Tactic.then_ (of_script [ deliver 1 ]) (fun () -> incr built; Tactic.halt)
  in
  check "first quantum delivers" true (tac () = deliver 1);
  check_int "successor not built before Done" 0 !built

let test_orelse () =
  let seen = ref None in
  let tac =
    Tactic.orelse
      (of_script [ deliver 1; Scan.Failed (fault 7); deliver 99 ])
      (fun f ->
        seen := Some f;
        of_script [ deliver 2 ])
  in
  let s = stream tac in
  check "left rows stand, handler continues" true
    (delivered s = [ row 1; row 2 ]);
  check "handler got the failure" true (!seen = Some (fault 7));
  check "switch consumed as Continue; no fault leaks" true (faults s = []);
  check "left is never stepped past its fault" true
    (not (List.mem (deliver 99) s))

let test_orelse_handler_fault_propagates () =
  let tac =
    Tactic.orelse
      (of_script [ Scan.Failed (fault 1) ])
      (fun _ -> of_script [ deliver 2; Scan.Failed (fault 2); deliver 3 ])
  in
  (* exactly one switch: the handler's own fault surfaces unchanged *)
  let s = stream tac in
  check "handler fault propagates" true (faults s = [ fault 2 ]);
  check "handler keeps stepping after its fault" true
    (delivered s = [ row 2; row 3 ])

let test_race () =
  let lefts = ref 0 and rights = ref 0 in
  let flip = ref false in
  let tac =
    Tactic.race
      ~choose:(fun () ->
        flip := not !flip;
        if !flip then `Left else `Right)
      ~left:(fun () -> incr lefts; Scan.Continue)
      ~right:(fun () -> incr rights; if !rights = 2 then Scan.Done else Scan.Continue)
  in
  ignore (stream tac);
  check_int "left advanced only when chosen" 2 !lefts;
  check_int "right ended the race on its own Done" 2 !rights

let test_preempt () =
  let probes = ref 0 in
  let ready = ref None in
  let tac =
    Tactic.preempt
      (fun () -> incr probes; !ready)
      (of_script [ deliver 1; Scan.Continue; deliver 99 ])
  in
  check "runs the base tactic until the probe fires" true (tac () = deliver 1);
  ready := Some (of_script [ deliver 2 ]);
  (* the switch quantum already steps the successor *)
  check "successor steps in the switch quantum" true (tac () = deliver 2);
  ready := None;
  check "successor persists" true (tac () = Scan.Done);
  check_int "probe never consulted after the switch" 2 !probes

let test_repeat_until () =
  let passes = ref 0 in
  let tac =
    Tactic.repeat_until
      (fun () -> !passes >= 3)
      (fun () ->
        incr passes;
        of_script [ deliver !passes ])
  in
  let s = stream tac in
  check "three passes, one Continue per restart" true
    (s
    = [ deliver 1; Scan.Continue; deliver 2; Scan.Continue; deliver 3;
        Scan.Done ]);
  let one_pass =
    Tactic.repeat_until (fun () -> true) (fun () -> of_script [ deliver 1 ])
  in
  check "pred-true is the one-pass identity" true
    (stream one_pass = [ deliver 1; Scan.Done ])

let test_abandon_if () =
  let stepped = ref 0 in
  let cut = ref None in
  let tac =
    Tactic.abandon_if
      (fun () -> !cut)
      (fun () -> incr stepped; Scan.Continue)
  in
  check "inner runs while the predicate is quiet" true (tac () = Scan.Continue);
  cut := Some (fault 3);
  check "first Some becomes the failure" true (tac () = Scan.Failed (fault 3));
  cut := None;
  check "abandonment is permanent" true (tac () = Scan.Failed (fault 3));
  check_int "inner never stepped after abandonment" 1 !stepped

let test_limit () =
  let stepped = ref 0 in
  let inner () =
    incr stepped;
    deliver !stepped
  in
  let tac = Tactic.limit 2 inner in
  check "delivers up to the cap, then Done without stepping" true
    (stream tac = [ deliver 1; deliver 2; Scan.Done ]);
  check_int "inner not stepped past the cap" 2 !stepped;
  check "limit 0 is halt" true (stream (Tactic.limit 0 inner) = [ Scan.Done ]);
  check "negative limit rejected" true
    (match Tactic.limit (-1) inner with
    | exception Invalid_argument _ -> true
    | (_ : Tactic.t) -> false)

let test_distinct () =
  let seen = Hashtbl.create 8 in
  let tac =
    Tactic.distinct seen
      (of_script [ deliver 1; deliver 2; deliver 1; deliver 3 ])
  in
  check "repeats suppressed as Continue" true
    (stream tac = [ deliver 1; deliver 2; Scan.Continue; deliver 3; Scan.Done ]);
  check "delivered rids recorded" true (Hashtbl.mem seen (rid 2));
  (* pre-seeded rids are suppressed too: overlapping orelse arms *)
  let tac2 = Tactic.distinct seen (of_script [ deliver 3; deliver 4 ]) in
  check "pre-seeded rids suppressed" true
    (stream tac2 = [ Scan.Continue; deliver 4; Scan.Done ])

(* ------------------------------------------------------------------ *)
(* with_policy: the cursor transformer                                 *)

let cursor_of tac = Scan.cursor_of_step ~cost:(fun () -> 0.0) tac

let test_with_policy_passthrough () =
  let c =
    Tactic.with_policy
      Tactic.Policy.(seal (stack [ retry_transient ]))
      (cursor_of (of_script [ deliver 1; Scan.Continue; deliver 2 ]))
  in
  let b = c.Scan.next_batch ~budget:infinity in
  check "rows pass through in order" true
    (List.map snd b.Scan.rows = [ row 1; row 2 ]);
  check "exhaustion surfaces" true (b.Scan.status = Scan.Exhausted)

let test_with_policy_stop_and_consec () =
  (* stop on the second *consecutive* fault: the embedded driver owns
     the count and it must persist across batches *)
  let stops = ref 0 in
  let policy =
    Tactic.Policy.(
      seal
        (stack
           [
             rung ~name:"once" (fun _ ~consec ->
                 if consec < 2 then Some Driver.Retry else None);
             give_up ~name:"stop";
           ]))
  in
  let c =
    Tactic.with_policy policy
      (cursor_of
         (of_script
            [ deliver 1; Scan.Failed (fault 1); Scan.Failed (fault 2); deliver 2 ]))
  in
  let rec pump n =
    if n > 12 then check "terminates" true false
    else
      match (c.Scan.next_batch ~budget:0.0).Scan.status with
      | Scan.Faulted _ -> incr stops
      | Scan.Exhausted -> ()
      | Scan.More -> pump (n + 1)
  in
  pump 0;
  check_int "stopped on the second consecutive fault" 1 !stops

let test_with_policy_absorb () =
  let absorbed = ref [] in
  let c =
    Tactic.with_policy
      Tactic.Policy.(
        seal (stack [ absorb_with ~name:"note" (fun f -> absorbed := f :: !absorbed) ]))
      (cursor_of (of_script [ deliver 1; Scan.Failed (fault 5); deliver 2 ]))
  in
  let rec pump () =
    match (c.Scan.next_batch ~budget:infinity).Scan.status with
    | Scan.More -> pump ()
    | s -> s
  in
  check "absorbed faults keep the cursor pumping" true (pump () = Scan.Exhausted);
  check "the absorb action saw the fault" true (!absorbed = [ fault 5 ])

(* ------------------------------------------------------------------ *)
(* Policy rung algebra                                                 *)

let test_policy_stack_order () =
  let trail = ref [] in
  let mark name d =
    Tactic.Policy.rung ~name (fun _ ~consec:_ ->
        trail := name :: !trail;
        d)
  in
  let ladder =
    Tactic.Policy.stack
      [ mark "a" None; mark "b" (Some Driver.Absorb); mark "c" (Some Driver.Stop) ]
  in
  let p = Tactic.Policy.seal ladder in
  check "first deciding rung wins" true
    (p.Driver.on_fault (fault 1) ~consec:1 = Driver.Absorb);
  check "later rungs never consulted" true (!trail = [ "b"; "a" ]);
  check_str "describe is the rung names in order" "a ⇒ b ⇒ c"
    (Tactic.Policy.describe ladder);
  check "empty stack rejected" true
    (match Tactic.Policy.stack [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_policy_seal_total () =
  let p =
    Tactic.Policy.(
      seal (stack [ rung ~name:"never" (fun _ ~consec:_ -> None) ]))
  in
  check "an undecided fault is a hard error" true
    (match p.Driver.on_fault (fault 1) ~consec:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_policy_observe_runs_first () =
  let order = ref [] in
  let p =
    Tactic.Policy.(
      seal
        ~observe:(fun _ ~consec:_ -> order := "observe" :: !order)
        (stack
           [
             rung ~name:"decide" (fun _ ~consec:_ ->
                 order := "decide" :: !order;
                 Some Driver.Retry);
           ]))
  in
  ignore (p.Driver.on_fault (fault 1) ~consec:1);
  check "observe precedes the ladder" true (!order = [ "decide"; "observe" ])

let test_policy_bounded_retry () =
  let penalties = ref [] in
  let r =
    Tactic.Policy.(
      stack
        [
          bounded_retry ~limit:2 ~penalize:(fun _ ~consec ->
              penalties := consec :: !penalties);
          give_up ~name:"stop";
        ])
  in
  let p = Tactic.Policy.seal r in
  check "retries within the limit" true
    (p.Driver.on_fault (fault 1) ~consec:2 = Driver.Retry);
  check "stops past the limit" true
    (p.Driver.on_fault (fault 1) ~consec:3 = Driver.Stop);
  check "declines persistent faults outright" true
    (p.Driver.on_fault (fault ~kind:Fault.Persistent 1) ~consec:1 = Driver.Stop);
  check "penalize ran only on deciding retries" true (!penalties = [ 2 ]);
  check_str "named after its limit" "retry(2) ⇒ stop" (Tactic.Policy.describe r)

let test_policy_retry_transient () =
  let p = Tactic.Policy.(seal (stack [ retry_transient; give_up ~name:"g" ])) in
  check "transient retries" true
    (p.Driver.on_fault (fault 1) ~consec:99 = Driver.Retry);
  check "persistent falls through" true
    (p.Driver.on_fault (fault ~kind:Fault.Persistent 1) ~consec:1 = Driver.Stop)

(* ------------------------------------------------------------------ *)
(* qcheck: composed tactics are byte-identical to their bespoke twins  *)

let qcount default =
  match Option.bind (Sys.getenv_opt "QCHECK_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

(* Random scripts over a small step vocabulary.  Scripts are pure
   lists, so a composition and its bespoke twin replay the exact same
   stream without sharing state. *)
let step_gen =
  QCheck.Gen.(
    int_range 0 9 >>= fun i ->
    frequency
      [
        (4, return (deliver i));
        (2, return Scan.Continue);
        (1, return (Scan.Failed (fault i)));
      ])

let script_gen = QCheck.Gen.(list_size (int_range 0 20) step_gen)

let script_arb =
  QCheck.make script_gen
    ~print:(fun s -> Printf.sprintf "script of %d steps" (List.length s))

let prop_then_is_concat =
  QCheck.Test.make ~name:"then_ = phase concatenation with a one-Continue seam"
    ~count:(qcount 200)
    QCheck.(pair script_arb script_arb)
    (fun (s1, s2) ->
      (* faults would pause a bespoke driver identically on both sides;
         compare the raw streams directly *)
      let composed =
        stream ~n:200 (Tactic.then_ (of_script s1) (fun () -> of_script s2))
      in
      let bespoke = s1 @ [ Scan.Continue ] @ s2 @ [ Scan.Done ] in
      composed = bespoke)

let prop_identity_wraps =
  QCheck.Test.make
    ~name:"identity-law combinators leave the step stream byte-identical"
    ~count:(qcount 200)
    QCheck.(pair script_arb (int_bound 3))
    (fun (s, pick) ->
      let wrap tac =
        match pick with
        | 0 -> Tactic.limit max_int tac
        | 1 -> Tactic.abandon_if (fun () -> None) tac
        | 2 -> Tactic.race ~choose:(fun () -> `Left) ~left:tac ~right:Tactic.halt
        | _ -> Tactic.preempt (fun () -> None) tac
      in
      stream ~n:200 (wrap (of_script s)) = stream ~n:200 (of_script s))

let prop_orelse_keeps_left_rows =
  QCheck.Test.make
    ~name:"orelse delivers every left row produced before the fault"
    ~count:(qcount 200)
    QCheck.(pair script_arb script_arb)
    (fun (s1, s2) ->
      let left_prefix =
        let rec take = function
          | [] -> []
          | Scan.Failed _ :: _ -> []
          | s :: tl -> s :: take tl
        in
        take s1
      in
      let composed =
        stream ~n:300 (Tactic.orelse (of_script s1) (fun _ -> of_script s2))
      in
      let switched = List.length left_prefix < List.length s1 in
      let expected_rows =
        delivered left_prefix @ if switched then delivered s2 else []
      in
      delivered composed = expected_rows)

let prop_with_policy_matches_driver =
  QCheck.Test.make
    ~name:"with_policy batches = pumping Driver.make directly"
    ~count:(qcount 200) script_arb
    (fun s ->
      let policy () =
        Tactic.Policy.(
          seal (stack [ retry_transient; give_up ~name:"stop" ]))
      in
      let budgets = [ 0.0; infinity ] in
      List.for_all
        (fun budget ->
          let via_cursor =
            let c = Tactic.with_policy (policy ()) (cursor_of (of_script s)) in
            let rec go n acc =
              if n > 200 then List.rev acc
              else
                let b = c.Scan.next_batch ~budget in
                let acc = (b.Scan.rows, b.Scan.steps) :: acc in
                match b.Scan.status with
                | Scan.More -> go (n + 1) acc
                | Scan.Exhausted | Scan.Faulted _ -> List.rev acc
            in
            go 0 []
          in
          let via_driver =
            let d = Driver.make (cursor_of (of_script s)) (policy ()) in
            let out = ref [] in
            let rec go n =
              if n > 200 then ()
              else
                let captured = ref ([], 0) in
                let p =
                  Driver.pump d ~budget ~on_rows:(fun b ->
                      captured := (b.Scan.rows, b.Scan.steps))
                in
                out := !captured :: !out;
                match p with
                | Driver.More -> go (n + 1)
                | Driver.Exhausted | Driver.Stopped _ -> ()
            in
            go 0;
            List.rev !out
          in
          via_cursor = via_driver)
        budgets)

let () =
  Alcotest.run "rdb_tactic"
    [
      ( "laws",
        [
          Alcotest.test_case "halt" `Quick test_halt;
          Alcotest.test_case "then_" `Quick test_then;
          Alcotest.test_case "then_ laziness" `Quick test_then_lazy;
          Alcotest.test_case "orelse" `Quick test_orelse;
          Alcotest.test_case "orelse handler faults" `Quick
            test_orelse_handler_fault_propagates;
          Alcotest.test_case "race" `Quick test_race;
          Alcotest.test_case "preempt" `Quick test_preempt;
          Alcotest.test_case "repeat_until" `Quick test_repeat_until;
          Alcotest.test_case "abandon_if" `Quick test_abandon_if;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "distinct" `Quick test_distinct;
        ] );
      ( "with_policy",
        [
          Alcotest.test_case "pass-through" `Quick test_with_policy_passthrough;
          Alcotest.test_case "stop and consec across batches" `Quick
            test_with_policy_stop_and_consec;
          Alcotest.test_case "absorb keeps pumping" `Quick test_with_policy_absorb;
        ] );
      ( "policy",
        [
          Alcotest.test_case "stack order" `Quick test_policy_stack_order;
          Alcotest.test_case "seal totality" `Quick test_policy_seal_total;
          Alcotest.test_case "observe first" `Quick test_policy_observe_runs_first;
          Alcotest.test_case "bounded retry" `Quick test_policy_bounded_retry;
          Alcotest.test_case "retry transient" `Quick test_policy_retry_transient;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_then_is_concat;
          QCheck_alcotest.to_alcotest prop_identity_wraps;
          QCheck_alcotest.to_alcotest prop_orelse_keeps_left_rows;
          QCheck_alcotest.to_alcotest prop_with_policy_matches_driver;
        ] );
    ]

(* Tests for cost meters, the LRU buffer pool (against a reference
   model), the slotted heap file and the spill store. *)

open Rdb_data
open Rdb_storage

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- cost -------------------------------------------------------------- *)

let test_cost_accumulation () =
  let m = Cost.create () in
  Cost.charge_physical m;
  Cost.charge_physical m;
  Cost.charge_logical m;
  Cost.charge_write m;
  Cost.charge_cpu m 100;
  check_int "phys" 2 (Cost.physical_reads m);
  check_int "log" 1 (Cost.logical_reads m);
  let expected = 2.0 +. 0.01 +. 1.0 +. (100.0 *. 0.0001) in
  Alcotest.(check (float 1e-9)) "weighted" expected (Cost.total m)

let test_cost_add_snapshot () =
  let a = Cost.create () and b = Cost.create () in
  Cost.charge_physical a;
  Cost.charge_write b;
  let snap = Cost.snapshot a in
  Cost.add a b;
  check "snapshot unchanged" true (Cost.total snap = 1.0);
  Alcotest.(check (float 1e-9)) "added" 2.0 (Cost.total a);
  Alcotest.(check (float 1e-9)) "since" 1.0 (Cost.since a snap)

(* --- buffer pool -------------------------------------------------------- *)

let block file index : Buffer_pool.block = { Buffer_pool.file; index }

let test_pool_hit_miss () =
  let p = Buffer_pool.create ~capacity:2 () in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 0);
  check_int "one miss" 1 (Cost.physical_reads m);
  check_int "one hit" 1 (Cost.logical_reads m)

let test_pool_lru_eviction () =
  let p = Buffer_pool.create ~capacity:2 () in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 1);
  Buffer_pool.touch p m (block 0 0);
  (* 0 is now MRU *)
  Buffer_pool.touch p m (block 0 2);
  (* evicts 1 *)
  check "0 resident" true (Buffer_pool.is_resident p (block 0 0));
  check "1 evicted" false (Buffer_pool.is_resident p (block 0 1));
  check "2 resident" true (Buffer_pool.is_resident p (block 0 2))

let test_pool_evict_file_and_flush () =
  let p = Buffer_pool.create ~capacity:8 () in
  let m = Cost.create () in
  for i = 0 to 3 do
    Buffer_pool.touch p m (block 1 i);
    Buffer_pool.touch p m (block 2 i)
  done;
  check_int "resident 8" 8 (Buffer_pool.resident p);
  Buffer_pool.evict_file p 1;
  check_int "file 1 gone" 4 (Buffer_pool.resident p);
  check "file2 stays" true (Buffer_pool.is_resident p (block 2 0));
  Buffer_pool.flush p;
  check_int "flushed" 0 (Buffer_pool.resident p)

(* LRU reference model: list of blocks, most recent first. *)
let prop_pool_matches_model =
  QCheck.Test.make ~name:"LRU pool matches reference model" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let cap = 4 in
      let p = Buffer_pool.create ~capacity:cap () in
      let m = Cost.create () in
      let model = ref [] in
      List.for_all
        (fun (f, i) ->
          let b = block f i in
          let hits_before = Cost.logical_reads m in
          Buffer_pool.touch p m b;
          let was_hit = Cost.logical_reads m > hits_before in
          let hit_model = List.mem b !model in
          model := b :: List.filter (( <> ) b) !model;
          if List.length !model > cap then
            model := List.filteri (fun k _ -> k < cap) !model;
          (* Hit/miss and residency must agree with the model. *)
          was_hit = hit_model
          && List.for_all (fun blk -> Buffer_pool.is_resident p blk) !model
          && Buffer_pool.resident p = List.length !model)
        ops)

let test_pool_write_makes_resident () =
  let p = Buffer_pool.create ~capacity:2 () in
  let m = Cost.create () in
  Buffer_pool.write p m (block 0 7);
  check "resident after write" true (Buffer_pool.is_resident p (block 0 7));
  check_int "write charged" 1 (Cost.block_writes m);
  Buffer_pool.touch p m (block 0 7);
  check_int "then hit" 1 (Cost.logical_reads m)

(* --- sharded pool -------------------------------------------------------- *)

(* Per-shard LRU reference model: the sharded pool must behave as n
   independent copies of the monolithic model, one per shard, each with
   its own slice of the capacity. *)
let prop_sharded_pool_matches_model =
  QCheck.Test.make ~name:"sharded pool matches per-shard LRU models" ~count:100
    QCheck.(pair (1 -- 4) (list (pair (int_bound 3) (int_bound 15))))
    (fun (shards, ops) ->
      let cap = 4 in
      let p = Buffer_pool.create ~shards ~capacity:cap () in
      let m = Cost.create () in
      let caps = Buffer_pool.shard_capacities p in
      let models = Array.make shards [] in
      List.for_all
        (fun (f, i) ->
          let b = block f i in
          let k = Buffer_pool.shard_of_block p b in
          let hits_before = Cost.logical_reads m in
          Buffer_pool.touch p m b;
          let was_hit = Cost.logical_reads m > hits_before in
          let hit_model = List.mem b models.(k) in
          models.(k) <- b :: List.filter (( <> ) b) models.(k);
          if List.length models.(k) > caps.(k) then
            models.(k) <- List.filteri (fun j _ -> j < caps.(k)) models.(k);
          was_hit = hit_model
          && Array.for_all
               (fun model -> List.for_all (Buffer_pool.is_resident p) model)
               models
          && Buffer_pool.resident p
             = Array.fold_left (fun acc model -> acc + List.length model) 0 models
          && Array.for_all2 ( = )
               (Buffer_pool.shard_residents p)
               (Array.map List.length models))
        ops)

(* shards=1 must be the monolithic pool byte-for-byte: identical
   hit/miss stream, charges, lookups, and residency on any sequence. *)
let prop_single_shard_byte_identity =
  QCheck.Test.make ~name:"shards=1 byte-identical to default pool" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let a = Buffer_pool.create ~capacity:4 () in
      let b = Buffer_pool.create ~shards:1 ~capacity:4 () in
      let ma = Cost.create () and mb = Cost.create () in
      List.for_all
        (fun (f, i) ->
          let ra = Buffer_pool.touch_read a ma (block f i) in
          let rb = Buffer_pool.touch_read b mb (block f i) in
          ra = rb
          && Cost.total ma = Cost.total mb
          && Buffer_pool.lookups a = Buffer_pool.lookups b
          && Buffer_pool.resident a = Buffer_pool.resident b)
        ops)

let test_shard_mapping_deterministic () =
  let p = Buffer_pool.create ~shards:4 ~capacity:8 () in
  let q = Buffer_pool.create ~shards:4 ~capacity:64 () in
  let used = Array.make 4 false in
  for f = 0 to 7 do
    for i = 0 to 63 do
      let k = Buffer_pool.shard_of_block p (block f i) in
      check "in range" true (k >= 0 && k < 4);
      (* capacity never affects the partition, only the per-shard caps *)
      check_int "capacity-independent" k (Buffer_pool.shard_of_block q (block f i));
      used.(k) <- true
    done
  done;
  check "every shard reachable" true (Array.for_all Fun.id used)

let test_shard_capacity_split () =
  let p = Buffer_pool.create ~shards:3 ~capacity:8 () in
  Alcotest.(check (array int)) "8 over 3" [| 3; 3; 2 |] (Buffer_pool.shard_capacities p);
  check "shards<1 rejected" true
    (try
       ignore (Buffer_pool.create ~shards:0 ~capacity:4 ());
       false
     with Invalid_argument _ -> true);
  check "capacity<shards rejected" true
    (try
       ignore (Buffer_pool.create ~shards:5 ~capacity:4 ());
       false
     with Invalid_argument _ -> true)

let test_lookup_balance () =
  let chk name exp counts =
    Alcotest.(check (float 1e-9)) name exp (Buffer_pool.lookup_balance counts)
  in
  chk "even" 1.0 [| 10; 10 |];
  chk "all on one of two" 2.0 [| 20; 0 |];
  chk "single shard" 1.0 [| 7 |];
  chk "no lookups" 1.0 [| 0; 0; 0 |];
  chk "mild skew" 1.5 [| 30; 10; 20; 20 |]

(* An eviction in one shard must not invalidate handles in another —
   the contention-isolation property that makes sharding worth it. *)
let test_handle_survives_other_shard_eviction () =
  let p = Buffer_pool.create ~shards:2 ~capacity:4 () in
  let m = Cost.create () in
  (* find a block in each shard *)
  let find_in_shard k =
    let rec go i =
      if Buffer_pool.shard_of_block p (block 0 i) = k then i else go (i + 1)
    in
    go 0
  in
  let b0 = block 0 (find_in_shard 0) in
  let _, h0 = Buffer_pool.touch_read_h p m b0 in
  (* overflow shard 1 (2 slots) to force evictions there *)
  let n = ref 0 and i = ref 0 in
  while !n < 3 do
    let b = block 1 !i in
    if Buffer_pool.shard_of_block p b = 1 then begin
      Buffer_pool.touch p m b;
      incr n
    end;
    incr i
  done;
  check "handle survives other-shard eviction" true (Buffer_pool.retouch p m h0);
  (* and an eviction in its own shard kills it *)
  let n = ref 0 and i = ref 1000 in
  while !n < 3 do
    let b = block 0 !i in
    if Buffer_pool.shard_of_block p b = 0 then begin
      Buffer_pool.touch p m b;
      incr n
    end;
    incr i
  done;
  check "own-shard eviction invalidates" false (Buffer_pool.retouch p m h0)

let test_reshard () =
  let p = Buffer_pool.create ~capacity:8 () in
  let m = Cost.create () in
  for i = 0 to 5 do
    Buffer_pool.touch p m (block 0 i)
  done;
  let _, h = Buffer_pool.touch_read_h p m (block 0 0) in
  let lookups_before = Buffer_pool.lookups p in
  Buffer_pool.reshard p ~shards:4;
  check_int "now 4 shards" 4 (Buffer_pool.shards p);
  check_int "residency dropped" 0 (Buffer_pool.resident p);
  check_int "lookups monotone" lookups_before (Buffer_pool.lookups p);
  check "old handles invalidated" false (Buffer_pool.retouch p m h);
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 0);
  check "pool works after reshard" true (Buffer_pool.is_resident p (block 0 0));
  check_int "lookups resume counting" (lookups_before + 2) (Buffer_pool.lookups p);
  check "reshard capacity<shards rejected" true
    (try
       Buffer_pool.reshard p ~shards:9;
       false
     with Invalid_argument _ -> true)

(* --- heap file ----------------------------------------------------------- *)

let row i = [| Value.int i; Value.str (Printf.sprintf "row-%04d" i) |]

let test_heap_insert_fetch () =
  let p = Buffer_pool.create ~capacity:64 () in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  let rids = List.init 100 (fun i -> Heap_file.insert h (row i)) in
  check_int "count" 100 (Heap_file.record_count h);
  check "multiple pages" true (Heap_file.page_count h > 1);
  List.iteri
    (fun i rid ->
      match Heap_file.fetch h m rid with
      | Some r -> check "fetch roundtrip" true (Row.equal r (row i))
      | None -> Alcotest.fail "missing record")
    rids

let test_heap_delete_update () =
  let p = Buffer_pool.create ~capacity:64 () in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  let rids = Array.init 50 (fun i -> Heap_file.insert h (row i)) in
  check "delete" true (Heap_file.delete h m rids.(10));
  check "double delete" false (Heap_file.delete h m rids.(10));
  check "fetch deleted" true (Heap_file.fetch h m rids.(10) = None);
  check_int "count after delete" 49 (Heap_file.record_count h);
  check "update" true (Heap_file.update h m rids.(11) (row 999));
  check "updated value" true
    (Row.equal (Option.get (Heap_file.fetch h m rids.(11))) (row 999));
  check "update deleted fails" false (Heap_file.update h m rids.(10) (row 1))

let test_heap_scan_order_and_cost () =
  let p = Buffer_pool.create ~capacity:64 () in
  let h = Heap_file.create ~page_bytes:256 p in
  let m = Cost.create () in
  for i = 0 to 99 do
    ignore (Heap_file.insert h (row i))
  done;
  let seen = ref [] in
  Heap_file.iter h m (fun rid r ->
      ignore rid;
      seen := r :: !seen);
  let ids =
    List.rev_map (fun r -> match Row.get r 0 with Value.Int i -> i | _ -> -1) !seen
  in
  Alcotest.(check (list int)) "physical order" (List.init 100 Fun.id) ids;
  check_int "page reads = page count" (Heap_file.page_count h) (Cost.physical_reads m)

let test_heap_fetch_bogus_rid () =
  let p = Buffer_pool.create ~capacity:8 () in
  let h = Heap_file.create p in
  let m = Cost.create () in
  check "bad page" true (Heap_file.fetch h m (Rid.make ~page:99 ~slot:0) = None);
  ignore (Heap_file.insert h (row 0));
  check "bad slot" true (Heap_file.fetch h m (Rid.make ~page:0 ~slot:99) = None)

let prop_heap_matches_model =
  QCheck.Test.make ~name:"heap matches assoc model under ops" ~count:60
    QCheck.(list (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let p = Buffer_pool.create ~capacity:64 () in
      let h = Heap_file.create ~page_bytes:200 p in
      let m = Cost.create () in
      let model = Hashtbl.create 16 in
      let rids = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              let rid = Heap_file.insert h (row v) in
              Hashtbl.replace model rid v;
              rids := rid :: !rids
          | 1 -> (
              match !rids with
              | [] -> ()
              | rid :: _ ->
                  if Hashtbl.mem model rid then begin
                    ignore (Heap_file.delete h m rid);
                    Hashtbl.remove model rid
                  end)
          | _ -> (
              match !rids with
              | [] -> ()
              | rid :: _ ->
                  if Hashtbl.mem model rid then begin
                    ignore (Heap_file.update h m rid (row v));
                    Hashtbl.replace model rid v
                  end))
        ops;
      Hashtbl.fold
        (fun rid v acc ->
          acc
          &&
          match Heap_file.fetch h m rid with
          | Some r -> Row.equal r (row v)
          | None -> false)
        model true
      && Heap_file.record_count h = Hashtbl.length model)

let test_pool_capacity_one () =
  let p = Buffer_pool.create ~capacity:1 () in
  let m = Cost.create () in
  Buffer_pool.touch p m (block 0 0);
  Buffer_pool.touch p m (block 0 1);
  Buffer_pool.touch p m (block 0 0);
  check_int "all misses" 3 (Cost.physical_reads m);
  check_int "resident 1" 1 (Buffer_pool.resident p);
  check "zero capacity rejected" true
    (try
       ignore (Buffer_pool.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let test_heap_huge_record_gets_own_page () =
  let p = Buffer_pool.create ~capacity:16 () in
  let h = Heap_file.create ~page_bytes:128 p in
  (* A record bigger than the page still lands somewhere (simulation
     allows overflow pages of one record). *)
  let big = [| Value.str (String.make 500 'x') |] in
  let rid1 = Heap_file.insert h big in
  let rid2 = Heap_file.insert h big in
  check "distinct pages" true (rid1.Rid.page <> rid2.Rid.page);
  let m = Cost.create () in
  check "fetch works" true (Heap_file.fetch h m rid1 <> None)

(* --- spill ----------------------------------------------------------------- *)

let test_spill_roundtrip () =
  let p = Buffer_pool.create ~capacity:64 () in
  let s = Spill.create ~rids_per_block:16 p in
  let m = Cost.create () in
  let rids = Array.init 100 (fun i -> Rid.make ~page:(i / 7) ~slot:(i mod 7)) in
  Spill.append s m rids;
  check_int "length" 100 (Spill.length s);
  Spill.seal s m;
  check_int "blocks" 7 (Spill.block_count s);
  let back = Spill.to_array s m in
  check "roundtrip order" true (Array.for_all2 Rid.equal rids back)

let test_spill_write_costs () =
  let p = Buffer_pool.create ~capacity:64 () in
  let s = Spill.create ~rids_per_block:10 p in
  let m = Cost.create () in
  Spill.append s m (Array.init 25 (fun i -> Rid.make ~page:i ~slot:0));
  check_int "two full blocks written" 2 (Cost.block_writes m);
  Spill.seal s m;
  check_int "partial tail flushed" 3 (Cost.block_writes m);
  check "append after seal" true
    (try
       Spill.append s m [| Rid.make ~page:0 ~slot:0 |];
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "rdb_storage"
    [
      ( "cost",
        [
          Alcotest.test_case "accumulation" `Quick test_cost_accumulation;
          Alcotest.test_case "add/snapshot" `Quick test_cost_add_snapshot;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_pool_lru_eviction;
          Alcotest.test_case "evict_file/flush" `Quick test_pool_evict_file_and_flush;
          Alcotest.test_case "write residency" `Quick test_pool_write_makes_resident;
          QCheck_alcotest.to_alcotest prop_pool_matches_model;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "deterministic mapping" `Quick
            test_shard_mapping_deterministic;
          Alcotest.test_case "capacity split and validation" `Quick
            test_shard_capacity_split;
          Alcotest.test_case "lookup balance" `Quick test_lookup_balance;
          Alcotest.test_case "handle isolation across shards" `Quick
            test_handle_survives_other_shard_eviction;
          Alcotest.test_case "reshard" `Quick test_reshard;
          QCheck_alcotest.to_alcotest prop_sharded_pool_matches_model;
          QCheck_alcotest.to_alcotest prop_single_shard_byte_identity;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "capacity one" `Quick test_pool_capacity_one;
          Alcotest.test_case "oversized record" `Quick test_heap_huge_record_gets_own_page;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "insert/fetch" `Quick test_heap_insert_fetch;
          Alcotest.test_case "delete/update" `Quick test_heap_delete_update;
          Alcotest.test_case "scan order and cost" `Quick test_heap_scan_order_and_cost;
          Alcotest.test_case "bogus rid" `Quick test_heap_fetch_bogus_rid;
          QCheck_alcotest.to_alcotest prop_heap_matches_model;
        ] );
      ( "spill",
        [
          Alcotest.test_case "roundtrip" `Quick test_spill_roundtrip;
          Alcotest.test_case "write costs" `Quick test_spill_write_costs;
        ] );
    ]

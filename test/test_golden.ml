(* Golden-file snapshots of the three human-facing text surfaces:
   EXPLAIN plans, fault-degradation traces, and the session scheduler
   report.  These outputs are deterministic (all randomness is seeded,
   no wall clock), so any textual drift is a behavior change that must
   be reviewed: regenerate with

     RDB_GOLDEN_UPDATE=test/golden dune exec test/test_golden.exe

   from the repository root, then inspect the diff. *)

open Rdb_data
open Rdb_engine
open Rdb_storage
module R = Rdb_core.Retrieval
module S = Rdb_core.Session
module Recovery = Rdb_core.Recovery
module Goal = Rdb_core.Goal
module Btree = Rdb_btree.Btree
module Executor = Rdb_sql.Executor
module Datasets = Rdb_workload.Datasets
module Traffic = Rdb_workload.Traffic

let check_golden name actual =
  match Sys.getenv_opt "RDB_GOLDEN_UPDATE" with
  | Some dir ->
      Out_channel.with_open_text
        (Filename.concat dir (name ^ ".txt"))
        (fun oc -> Out_channel.output_string oc actual)
  | None ->
      (* the golden copies live next to the test executable in _build,
         so the path works under both dune runtest and dune exec *)
      let path =
        Filename.concat
          (Filename.dirname Sys.executable_name)
          (Filename.concat "golden" (name ^ ".txt"))
      in
      (* A missing snapshot must be a hard failure, not a skip: the
         dune glob dependency silently omits absent files, so without
         this check a deleted/never-committed golden would pass. *)
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing golden snapshot %s — regenerate with RDB_GOLDEN_UPDATE=test/golden \
           dune exec test/test_golden.exe and commit test/golden/%s.txt"
          path name;
      let expected = In_channel.with_open_text path In_channel.input_all in
      if expected <> actual then begin
        let exp_lines = String.split_on_char '\n' expected in
        let act_lines = String.split_on_char '\n' actual in
        let rec diff i = function
          | e :: es, a :: aas ->
              if e <> a then
                Printf.printf "line %d:\n  expected: %s\n  actual:   %s\n" i e a;
              diff (i + 1) (es, aas)
          | e :: es, [] ->
              Printf.printf "line %d missing (expected: %s)\n" i e;
              diff (i + 1) (es, [])
          | [], a :: aas ->
              Printf.printf "line %d extra (actual: %s)\n" i a;
              diff (i + 1) ([], aas)
          | [], [] -> ()
        in
        diff 1 (exp_lines, act_lines);
        Alcotest.failf
          "golden mismatch for %s (RDB_GOLDEN_UPDATE=test/golden to regenerate)" name
      end

(* --- EXPLAIN -------------------------------------------------------- *)

let explain_output () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let _ = Datasets.orders ~rows:4000 db in
  let buf = Buffer.create 1024 in
  List.iter
    (fun sql ->
      Buffer.add_string buf ("> " ^ sql ^ "\n");
      let result = Executor.execute_sql db sql in
      List.iter
        (fun row ->
          match row with
          | [ v ] -> Buffer.add_string buf (Value.to_string v ^ "\n")
          | _ -> assert false)
        result.Executor.rows;
      Buffer.add_char buf '\n';
      Buffer_pool.flush (Database.pool db))
    [
      "EXPLAIN SELECT * FROM ORDERS WHERE CUSTOMER = 17";
      "EXPLAIN SELECT * FROM ORDERS WHERE CUSTOMER = 17 AND DAY >= 40 AND DAY <= 80";
      "EXPLAIN SELECT * FROM ORDERS WHERE CUSTOMER = 3 OR PRODUCT = 9";
      "EXPLAIN SELECT * FROM ORDERS WHERE PRICE >= 4990 ORDER BY DAY";
    ];
  Buffer.contents buf

(* --- fault / degradation trace -------------------------------------- *)

let fault_trace_output () =
  let pool = Buffer_pool.create ~capacity:256 () in
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "X" Value.T_int;
        Schema.col "Y" Value.T_int;
      ]
  in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:41 in
  for i = 0 to 1999 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  let y_file = Btree.file_id (Option.get (Table.find_index table "Y_IDX")).Table.tree in
  let buf = Buffer.create 1024 in
  let scenario title plan =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer_pool.flush pool;
    Buffer_pool.set_injector pool (Some (Fault.create plan));
    let open Predicate in
    let _, summary =
      R.run table
        (R.request ~explicit_goal:Goal.Total_time
           (And [ "X" <% Value.int 30; "Y" <% Value.int 300 ]))
    in
    Buffer_pool.set_injector pool None;
    List.iter
      (fun e -> Buffer.add_string buf ("  " ^ Rdb_exec.Trace.event_to_string e ^ "\n"))
      summary.R.trace;
    Buffer.add_string buf
      (Printf.sprintf "  tactic %s, status %s, %d rows\n\n"
         (R.tactic_to_string summary.R.tactic)
         (R.status_to_string summary.R.status)
         summary.R.rows_delivered)
  in
  scenario "no faults" Fault.null_plan;
  scenario "transient index faults (rate 0.05)"
    (Fault.plan ~transient_read_rate:0.05
       ~transient_classes:[ Fault.Index ] ~seed:7 ());
  scenario "persistent fault on Y_IDX (quarantine)"
    (Fault.plan ~persistent_files:[ y_file ] ~seed:8 ());
  Buffer.contents buf

(* --- CHECK / REPAIR / .health surfaces ------------------------------- *)

(* The rdbsh-facing self-healing surfaces: CHECK TABLE's damage
   classification, the .health registry report, and REPAIR TABLE's
   rebuild summary, across a damage/repair cycle. *)
let build_xy db =
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "X" Value.T_int;
        Schema.col "Y" Value.T_int;
      ]
  in
  let table = Database.create_table db ~page_bytes:1024 ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:41 in
  for i = 0 to 1999 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  table

let xy_pred =
  let open Predicate in
  And [ "X" <% Value.int 30; "Y" <% Value.int 300 ]

let check_repair_output () =
  let db = Database.create ~pool_capacity:256 () in
  let table = build_xy db in
  let pool = Database.pool db in
  let buf = Buffer.create 1024 in
  let render sql =
    Buffer.add_string buf ("> " ^ sql ^ "\n");
    let r = Executor.execute_sql db sql in
    if r.Executor.columns <> [] then begin
      Buffer.add_string buf (String.concat " | " r.Executor.columns ^ "\n");
      List.iter
        (fun row ->
          Buffer.add_string buf
            (String.concat " | " (List.map Value.to_string row) ^ "\n"))
        r.Executor.rows
    end;
    (match r.Executor.message with
    | Some m -> Buffer.add_string buf (m ^ "\n")
    | None -> ());
    Buffer.add_char buf '\n'
  in
  let health_report () =
    Buffer.add_string buf ".health\n";
    (match Health.report (Table.health table) ~now:(Table.now table) with
    | [] -> Buffer.add_string buf "  all structures healthy (nothing reported)\n"
    | l ->
        List.iter
          (fun st -> Buffer.add_string buf ("  " ^ Health.status_to_string st ^ "\n"))
          l);
    Buffer.add_char buf '\n'
  in
  Buffer_pool.flush pool;
  render "CHECK TABLE T";
  (* kill X_IDX's file; the next query quarantines it at planning *)
  let x_file = Btree.file_id (Option.get (Table.find_index table "X_IDX")).Table.tree in
  Buffer_pool.flush pool;
  Buffer_pool.set_injector pool
    (Some (Fault.create (Fault.plan ~persistent_files:[ x_file ] ~seed:8 ())));
  ignore (R.run table (R.request ~explicit_goal:Goal.Total_time xy_pred));
  Buffer_pool.flush pool;
  render "CHECK TABLE T";
  health_report ();
  render "REPAIR TABLE T";
  Buffer_pool.set_injector pool None;
  Buffer_pool.flush pool;
  render "CHECK TABLE T";
  health_report ();
  Buffer.contents buf

(* --- repair trace through the scheduler ------------------------------ *)

let repair_trace_output () =
  let db = Database.create ~pool_capacity:256 () in
  let table = build_xy db in
  let pool = Database.pool db in
  let buf = Buffer.create 1024 in
  let x_file = Btree.file_id (Option.get (Table.find_index table "X_IDX")).Table.tree in
  Buffer_pool.flush pool;
  Buffer_pool.set_injector pool
    (Some (Fault.create (Fault.plan ~persistent_files:[ x_file ] ~seed:8 ())));
  ignore (R.run table (R.request ~explicit_goal:Goal.Total_time xy_pred));
  (* rebuild online while the fault is still live (the new tree is a
     fresh file) and a foreground query competes for quanta *)
  Buffer_pool.flush pool;
  let sched =
    S.create
      ~config:
        {
          S.default_config with
          S.max_inflight = 2;
          S.quantum = 25.0;
          S.record_events = true;
        }
      db
  in
  ignore
    (S.submit sched ~label:"fg" table
       (R.request ~explicit_goal:Goal.Total_time xy_pred));
  ignore (S.submit_repair sched ~label:"repair:X_IDX" table ~index:"X_IDX");
  let rep = S.run sched in
  Buffer_pool.set_injector pool None;
  List.iter
    (fun (r : S.repair_stats) ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" r.S.r_label);
      List.iter
        (fun e -> Buffer.add_string buf ("  " ^ Rdb_exec.Trace.event_to_string e ^ "\n"))
        r.S.r_trace;
      Buffer.add_string buf
        (Printf.sprintf "  %d entries, ok %b\n" r.S.r_entries r.S.r_ok))
    rep.S.repairs;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (S.report_to_string rep);
  Buffer.add_char buf '\n';
  List.iter
    (fun st -> Buffer.add_string buf (Health.status_to_string st ^ "\n"))
    (Health.report (Table.health table) ~now:(Table.now table));
  Buffer.contents buf

(* --- feedback trace (DESIGN.md §13) ---------------------------------- *)

(* The same conjunction replayed three times at full learning rate:
   generation 1 plans on raw descent estimates and teaches the store
   when its scans complete; generations 2-3 announce Feedback_applied
   corrections before the competition.  The closing EXPLAIN ANALYZE
   shows the corrected-vs-raw line on the SQL surface. *)
let feedback_trace_output () =
  let db = Database.create ~pool_capacity:256 () in
  let table = build_xy db in
  let pool = Database.pool db in
  let config = { R.default_config with R.feedback_rate = 1.0 } in
  let pred =
    let open Predicate in
    And
      [
        between "X" (Value.int 10) (Value.int 19);
        between "Y" (Value.int 100) (Value.int 299);
      ]
  in
  let buf = Buffer.create 1024 in
  for gen = 1 to 3 do
    Buffer_pool.flush pool;
    let _, summary =
      R.run ~config table (R.request ~explicit_goal:Goal.Total_time pred)
    in
    Buffer.add_string buf (Printf.sprintf "== generation %d ==\n" gen);
    List.iter
      (fun e -> Buffer.add_string buf ("  " ^ Rdb_exec.Trace.event_to_string e ^ "\n"))
      summary.R.trace;
    Buffer.add_char buf '\n'
  done;
  Buffer_pool.flush pool;
  let sql =
    "EXPLAIN ANALYZE SELECT ID FROM T WHERE X >= 10 AND X <= 19 AND Y >= 100 AND Y \
     <= 299"
  in
  Buffer.add_string buf ("> " ^ sql ^ "\n");
  let r = Executor.execute_sql ~config db sql in
  List.iter
    (fun row ->
      match row with
      | [ v ] -> Buffer.add_string buf (Value.to_string v ^ "\n")
      | _ -> assert false)
    r.Executor.rows;
  Buffer.contents buf

(* --- scheduler report ------------------------------------------------ *)

let scheduler_report_output () =
  let db = Datasets.fresh_db ~pool_capacity:48 () in
  let table = Datasets.orders ~rows:3000 db in
  Buffer_pool.flush (Database.pool db);
  let specs = Traffic.orders_mix ~seed:5 ~count:6 () in
  let sched =
    S.create
      ~config:{ S.default_config with S.max_inflight = 3; S.quantum = 4.0 }
      db
  in
  List.iter
    (fun (sp : Traffic.spec) ->
      ignore
        (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
           (R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
              ?explicit_goal:
                (if sp.Traffic.fast_first then Some Goal.Fast_first else None)
              sp.Traffic.pred)))
    specs;
  S.report_to_string (S.run sched)

(* --- storm report (overload protection) ------------------------------ *)

(* A small storm with every exit kind on display: shed lines, timed-out
   lines (on-arrival and mid-run), a degraded admission, and the
   served/shed/timed-out ledger. *)
let storm_report_output () =
  let db = Datasets.fresh_db ~pool_capacity:48 () in
  let table = Datasets.orders ~rows:3000 db in
  Buffer_pool.flush (Database.pool db);
  let arrivals = Traffic.storm ~seed:4242 ~count:24 () in
  let sched =
    S.create
      ~config:
        {
          S.default_config with
          S.max_inflight = 2;
          S.quantum = 6.0;
          S.max_queue = 1;
          S.shed_policy = S.Shed_largest_quota;
          S.pressure_threshold = 2;
          S.record_events = true;
        }
      db
  in
  List.iter
    (fun (a : Traffic.arrival) ->
      let sp = a.Traffic.spec in
      ignore
        (S.submit sched ~label:sp.Traffic.label ?limit:sp.Traffic.limit
           ?quota:a.Traffic.quota ?deadline:a.Traffic.deadline
           ~arrive_at:a.Traffic.arrive_at table
           (R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
              ?explicit_goal:
                (if sp.Traffic.fast_first then Some Goal.Fast_first else None)
              sp.Traffic.pred)))
    arrivals;
  (* two explicit deadline casualties so the report shows every exit
     kind: one dead on arrival, one cancelled mid-run with partial rows *)
  let open Predicate in
  ignore
    (S.submit sched ~label:"deadline-zero" ~deadline:0.0 table
       (R.request ("PRICE" >=% Value.int 0)));
  ignore
    (S.submit sched ~label:"deadline-tight" ~deadline:8.0 table
       (R.request ("PRICE" >=% Value.int 0)));
  S.report_to_string (S.run sched)

(* --- crash report (crash–restart survival, DESIGN.md §15) ------------ *)

let storm_spec_to_sub table (sp : Traffic.spec) =
  Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit table
    (R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
       ?explicit_goal:
         (if sp.Traffic.fast_first then Some Goal.Fast_first else None)
       sp.Traffic.pred)

(* A query mix interrupted by two crashes: epochs 0 and 1 each die at a
   grant boundary, epoch 2 finishes clean.  The report shows each
   epoch's scheduler ledger with its "+ N lost" term, the recovery
   summary, the per-submission journal, and the exact cross-epoch
   accounting. *)
let crash_report_output () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let table = Datasets.orders ~rows:4000 db in
  Buffer_pool.flush (Database.pool db);
  let subs =
    List.map (storm_spec_to_sub table) (Traffic.orders_mix ~seed:5 ~count:6 ())
  in
  let rep =
    Recovery.run
      ~config:{ S.default_config with S.max_inflight = 2; S.quantum = 2.0 }
      ~crashes:[ [ S.Crash_at_grant 5 ]; [ S.Crash_at_grant 9 ] ]
      db subs
  in
  Recovery.report_to_string rep

(* --- recovery trace (crash mid-rebuild) ------------------------------ *)

(* The crash lands two grants into an online rebuild (the queries
   arrive late so the repair is admitted first): restart recovery
   discards the orphan side tree, restores the quarantine from the
   manifest verdict, resubmits the rebuild, and reissues the lost
   queries. *)
let recovery_trace_output () =
  let db = Datasets.fresh_db ~pool_capacity:64 () in
  let table = Datasets.orders ~rows:4000 db in
  Buffer_pool.flush (Database.pool db);
  let late =
    List.map
      (fun (sp : Traffic.spec) ->
        Recovery.query ~label:sp.Traffic.label ?limit:sp.Traffic.limit
          ~arrive_at:50 table
          (R.request ~env:sp.Traffic.env ~order_by:sp.Traffic.order_by
             ?explicit_goal:
               (if sp.Traffic.fast_first then Some Goal.Fast_first else None)
             sp.Traffic.pred))
      (Traffic.orders_mix ~seed:7 ~count:3 ())
  in
  let rep =
    Recovery.run
      ~config:{ S.default_config with S.max_inflight = 2; S.quantum = 2.0 }
      ~crashes:[ [ S.Crash_at_grant 2 ] ]
      ~repairs:[ (table, "CUST_IDX") ]
      db late
  in
  String.concat ""
    (List.map
       (fun e -> Rdb_exec.Trace.event_to_string e ^ "\n")
       rep.Recovery.r_trace)

let () =
  Alcotest.run "rdb_golden"
    [
      ( "golden",
        [
          Alcotest.test_case "explain output" `Quick (fun () ->
              check_golden "explain" (explain_output ()));
          Alcotest.test_case "fault trace output" `Quick (fun () ->
              check_golden "fault_trace" (fault_trace_output ()));
          Alcotest.test_case "scheduler report" `Quick (fun () ->
              check_golden "scheduler_report" (scheduler_report_output ()));
          Alcotest.test_case "storm report" `Quick (fun () ->
              check_golden "storm_report" (storm_report_output ()));
          Alcotest.test_case "check / repair / .health output" `Quick (fun () ->
              check_golden "check_repair" (check_repair_output ()));
          Alcotest.test_case "repair trace" `Quick (fun () ->
              check_golden "repair_trace" (repair_trace_output ()));
          Alcotest.test_case "feedback trace" `Quick (fun () ->
              check_golden "feedback_trace" (feedback_trace_output ()));
          Alcotest.test_case "crash report" `Quick (fun () ->
              check_golden "crash_report" (crash_report_output ()));
          Alcotest.test_case "recovery trace" `Quick (fun () ->
              check_golden "recovery_trace" (recovery_trace_output ()));
        ] );
    ]

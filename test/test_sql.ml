(* Tests for the SQL layer: lexer, parser, executor semantics, and the
   §4 goal-inference example end-to-end. *)

open Rdb_data
module Lexer = Rdb_sql.Lexer
module Parser = Rdb_sql.Parser
module Ast = Rdb_sql.Ast
module Executor = Rdb_sql.Executor
module Goal = Rdb_core.Goal
module R = Rdb_core.Retrieval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexer ------------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "SELECT a, b2 FROM t WHERE x >= :P1 AND s = 'it''s' -- c" in
  let expected =
    [
      Lexer.Ident "SELECT"; Lexer.Ident "A"; Lexer.Symbol ","; Lexer.Ident "B2";
      Lexer.Ident "FROM"; Lexer.Ident "T"; Lexer.Ident "WHERE"; Lexer.Ident "X";
      Lexer.Symbol ">="; Lexer.Host_var "P1"; Lexer.Ident "AND"; Lexer.Ident "S";
      Lexer.Symbol "="; Lexer.String_lit "it's"; Lexer.Eof;
    ]
  in
  check "token stream" true (toks = expected)

let test_lexer_numbers () =
  check "int" true (Lexer.tokenize "42" = [ Lexer.Int_lit 42; Lexer.Eof ]);
  check "float" true (Lexer.tokenize "3.5" = [ Lexer.Float_lit 3.5; Lexer.Eof ]);
  check "int dot ident stays split" true
    (match Lexer.tokenize "1.x" with
    | [ Lexer.Int_lit 1; Lexer.Symbol "."; Lexer.Ident "X"; Lexer.Eof ] -> true
    | _ -> false)

let test_lexer_errors () =
  check "unterminated string" true
    (try
       ignore (Lexer.tokenize "'abc");
       false
     with Lexer.Lex_error _ -> true);
  check "bad char" true
    (try
       ignore (Lexer.tokenize "a ` b");
       false
     with Lexer.Lex_error _ -> true)

(* --- parser ------------------------------------------------------------------- *)

let test_parse_select_shape () =
  let s =
    Parser.parse_select
      "SELECT DISTINCT a, b FROM t WHERE (x > 1 OR y BETWEEN 2 AND 3) AND s LIKE 'a%' \
       ORDER BY a, b LIMIT TO 7 ROWS OPTIMIZE FOR FAST FIRST"
  in
  check "distinct" true s.Ast.distinct;
  check "projection" true (s.Ast.projection = Ast.Cols [ "A"; "B" ]);
  check "order" true (s.Ast.order_by = [ "A"; "B" ]);
  check "limit" true (s.Ast.limit = Some 7);
  check "optimize" true (s.Ast.optimize = Some Goal.Fast_first);
  match s.Ast.where with
  | Some (Ast.C_and [ Ast.C_or _; Ast.C_like ("S", "a%") ]) -> ()
  | _ -> Alcotest.fail "unexpected where shape"

let test_parse_precedence () =
  let s = Parser.parse_select "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3" in
  (* AND binds tighter than OR. *)
  match s.Ast.where with
  | Some (Ast.C_or [ Ast.C_cmp ("X", Ast.Eq, _); Ast.C_and [ _; _ ] ]) -> ()
  | _ -> Alcotest.fail "precedence broken"

let test_parse_not_in_is_null () =
  let s =
    Parser.parse_select
      "SELECT a FROM t WHERE x NOT IN (1, 2) AND y IS NOT NULL AND NOT z = 3"
  in
  match s.Ast.where with
  | Some
      (Ast.C_and
        [ Ast.C_not (Ast.C_in_list ("X", [ _; _ ])); Ast.C_is_not_null "Y";
          Ast.C_not (Ast.C_cmp ("Z", Ast.Eq, _)) ]) ->
      ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_subqueries () =
  let s =
    Parser.parse_select
      "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE k = 1) AND EXISTS (SELECT z \
       FROM v)"
  in
  match s.Ast.where with
  | Some (Ast.C_and [ Ast.C_in_select ("X", sub1); Ast.C_exists sub2 ]) ->
      check "sub1 table" true (sub1.Ast.table = "U");
      check "sub2 table" true (sub2.Ast.table = "V")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_aggregates () =
  let s = Parser.parse_select "SELECT COUNT(*), AVG(x), MAX(y) FROM t" in
  match s.Ast.projection with
  | Ast.Aggs [ (Ast.Count_star, _); (Ast.Avg "X", _); (Ast.Max "Y", _) ] -> ()
  | _ -> Alcotest.fail "unexpected aggregates"

let test_parse_statements () =
  (match Parser.parse_statement "CREATE TABLE t (a INT, b STRING NULL, c FLOAT)" with
  | Ast.Create_table ("T", defs) ->
      check_int "3 cols" 3 (List.length defs);
      check "b nullable" true (List.nth defs 1).Ast.col_nullable
  | _ -> Alcotest.fail "create table");
  (match Parser.parse_statement "CREATE INDEX i ON t (a, b)" with
  | Ast.Create_index { index = "I"; on_table = "T"; columns = [ "A"; "B" ] } -> ()
  | _ -> Alcotest.fail "create index");
  (match Parser.parse_statement "INSERT INTO t VALUES (1, 'x'), (2, NULL)" with
  | Ast.Insert { into = "T"; rows = [ [ _; _ ]; [ _; _ ] ] } -> ()
  | _ -> Alcotest.fail "insert");
  match Parser.parse_statement "EXPLAIN SELECT a FROM t" with
  | Ast.Explain _ -> ()
  | _ -> Alcotest.fail "explain"

let test_parse_errors () =
  List.iter
    (fun src ->
      check src true
        (try
           ignore (Parser.parse_statement src);
           false
         with Parser.Parse_error _ -> true))
    [
      "SELECT";
      "SELECT FROM t";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t LIMIT x";
      "SELECT a FROM t WHERE x LIKE 42";
      "SELECT a FROM t trailing";
      "INSERT INTO t VALUES 1";
      "SELECT a FROM t WHERE x BETWEEN 1";
    ]

let test_parse_negative_and_exponent_literals () =
  let s = Parser.parse_select "SELECT a FROM t WHERE x = -5 AND y > 1.5e3 AND z < -2.5" in
  match s.Ast.where with
  | Some
      (Ast.C_and
        [ Ast.C_cmp (_, _, Ast.Lit (Value.Int -5));
          Ast.C_cmp (_, _, Ast.Lit (Value.Float 1500.0));
          Ast.C_cmp (_, _, Ast.Lit (Value.Float -2.5)) ]) ->
      ()
  | _ -> Alcotest.fail "negative/exponent literals misparsed"

(* --- printer round-trip --------------------------------------------------------- *)

let arb_select =
  let open QCheck.Gen in
  let col = oneofl [ "A"; "B"; "C" ] in
  let operand =
    oneof
      [ map (fun i -> Ast.Lit (Value.int i)) (int_range (-50) 50);
        map (fun s -> Ast.Lit (Value.str s)) (oneofl [ ""; "x"; "it's"; "a b" ]);
        return (Ast.Lit Value.Null);
        map (fun h -> Ast.Host h) (oneofl [ "P1"; "LO" ]) ]
  in
  let leaf =
    oneof
      [ return Ast.C_true;
        return Ast.C_false;
        map3 (fun c op o -> Ast.C_cmp (c, op, o)) col
          (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
          operand;
        map3 (fun c a b -> Ast.C_between (c, a, b)) col operand operand;
        map2 (fun c os -> Ast.C_in_list (c, os)) col (list_size (int_range 1 3) operand);
        map (fun c -> Ast.C_is_null c) col;
        map (fun c -> Ast.C_is_not_null c) col;
        map2 (fun c p -> Ast.C_like (c, p)) col (oneofl [ "a%"; "%x%"; "_b" ]) ]
  in
  let rec cond depth =
    if depth = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (1, map (fun l -> Ast.C_and l) (list_size (int_range 2 3) (cond (depth - 1))));
          (1, map (fun l -> Ast.C_or l) (list_size (int_range 2 3) (cond (depth - 1))));
          (1, map (fun c -> Ast.C_not c) (cond (depth - 1))) ]
  in
  let projection =
    oneof
      [ return Ast.Star;
        map (fun cs -> Ast.Cols cs) (list_size (int_range 1 3) col);
        return (Ast.Aggs [ (Ast.Count_star, Ast.agg_name Ast.Count_star) ]);
        map (fun c -> Ast.Aggs [ (Ast.Sum c, Ast.agg_name (Ast.Sum c)) ]) col ]
  in
  let select =
    map2
      (fun (distinct, projection, where) (order_by, limit, optimize) ->
        { Ast.distinct; projection; table = "T"; joined = None; where; order_by; limit;
          optimize })
      (triple bool projection (option (cond 2)))
      (triple
         (list_size (int_range 0 2) col)
         (option (int_range 0 20))
         (oneofl [ None; Some Goal.Fast_first; Some Goal.Total_time ]))
  in
  QCheck.make ~print:Ast.select_to_string select

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print select) = select" ~count:300 arb_select
    (fun sel -> Parser.parse_select (Ast.select_to_string sel) = sel)

(* Fuzz the lexer+parser with arbitrary byte strings: every input must
   either parse or raise one of the two structured front-end errors —
   never an assert, Match_failure, or stack overflow (the shell relies
   on this to stay alive on garbage input). *)
let prop_parser_total_on_garbage =
  let arb_bytes =
    let open QCheck.Gen in
    let any_byte = map Char.chr (int_range 0 255) in
    let sqlish =
      oneofl
        [
          "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "IN"; "("; ")"; ",";
          ";"; "'"; "''"; "*"; "="; "<"; ">"; ":"; "."; "--"; "1e"; "-"; "NULL";
          "BETWEEN"; "LIKE"; "IS"; "T"; "0"; "9999999999999999999999";
        ]
    in
    let fragment = oneof [ map (String.make 1) any_byte; sqlish ] in
    QCheck.make ~print:String.escaped
      (map (String.concat " ") (list_size (int_range 0 12) fragment))
  in
  QCheck.Test.make ~name:"lexer/parser total on arbitrary bytes" ~count:1000 arb_bytes
    (fun src ->
      match Parser.parse_statement src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

let test_statement_printing () =
  List.iter
    (fun src ->
      let stmt = Parser.parse_statement src in
      let printed = Ast.statement_to_string stmt in
      check (Printf.sprintf "%s reparses" src) true
        (Parser.parse_statement printed = stmt))
    [
      "SELECT DISTINCT a FROM t WHERE x IN (SELECT y FROM u) ORDER BY a LIMIT 3";
      "CREATE TABLE t (a INT, b STRING NULL)";
      "CREATE INDEX i ON t (a, b)";
      "INSERT INTO t VALUES (1, 'it''s'), (-2, NULL)";
      "DELETE FROM t WHERE a = 1 OR b = 2";
      "UPDATE t SET a = 5, b = :P WHERE c IS NOT NULL";
      "EXPLAIN SELECT COUNT(*) FROM t WHERE EXISTS (SELECT a FROM u)";
    ]

(* --- executor ------------------------------------------------------------------ *)

let mkdb () =
  let db = Rdb_engine.Database.create ~pool_capacity:512 () in
  ignore (Executor.execute_sql db "CREATE TABLE T (A INT, B INT NULL, S STRING)");
  let rows =
    List.init 500 (fun i ->
        Printf.sprintf "(%d, %s, 's%03d')" (i mod 50)
          (if i mod 10 = 0 then "NULL" else string_of_int (i mod 7))
          i)
  in
  ignore
    (Executor.execute_sql db
       (Printf.sprintf "INSERT INTO T VALUES %s" (String.concat ", " rows)));
  ignore (Executor.execute_sql db "CREATE INDEX A_IDX ON T (A)");
  db

let rows_of db ?env sql = (Executor.execute_sql ?env db sql).Executor.rows

let test_exec_select_where () =
  let db = mkdb () in
  let rows = rows_of db "SELECT S FROM T WHERE A = 3 AND B = 4" in
  check "some rows" true (rows <> []);
  List.iter
    (fun r -> check "single col" true (List.length r = 1))
    rows;
  (* And the count matches first principles: i mod 50 = 3 && i mod 7 = 4
     && i mod 10 <> 0 over 0..499. *)
  let expected =
    List.length
      (List.filter
         (fun i -> i mod 50 = 3 && i mod 7 = 4 && i mod 10 <> 0)
         (List.init 500 Fun.id))
  in
  check_int "row count" expected (List.length rows)

let test_exec_null_semantics () =
  let db = mkdb () in
  let with_b = rows_of db "SELECT COUNT(*) FROM T WHERE B = 0" in
  let b_null = rows_of db "SELECT COUNT(*) FROM T WHERE B IS NULL" in
  let b_not_null = rows_of db "SELECT COUNT(*) FROM T WHERE B IS NOT NULL" in
  let total = rows_of db "SELECT COUNT(*) FROM T" in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  check_int "nulls" 50 (as_int b_null);
  check_int "null + not null = total" (as_int total) (as_int b_null + as_int b_not_null);
  (* B = 0 must not count NULLs. *)
  check "b=0 excludes nulls" true (as_int with_b + as_int b_null < as_int total)

let test_exec_order_limit_distinct () =
  let db = mkdb () in
  let rows = rows_of db "SELECT DISTINCT A FROM T WHERE A < 10 ORDER BY A" in
  check "distinct sorted" true
    (rows = List.init 10 (fun i -> [ Value.Int i ]));
  let limited = rows_of db "SELECT DISTINCT A FROM T WHERE A < 10 ORDER BY A LIMIT 3" in
  check_int "limit applies after distinct" 3 (List.length limited)

let test_exec_aggregates () =
  let db = mkdb () in
  match rows_of db "SELECT COUNT(*), MIN(A), MAX(A), AVG(A) FROM T WHERE A < 5" with
  | [ [ Value.Int count; Value.Int mn; Value.Int mx; Value.Float avg ] ] ->
      check_int "count" 50 count;
      check_int "min" 0 mn;
      check_int "max" 4 mx;
      check "avg" true (Float.abs (avg -. 2.0) < 0.001)
  | _ -> Alcotest.fail "unexpected aggregate result"

let test_exec_host_variables () =
  let db = mkdb () in
  let rows = rows_of db ~env:[ ("LO", Value.int 45) ] "SELECT A FROM T WHERE A >= :LO" in
  check "bound" true (List.for_all (function [ Value.Int a ] -> a >= 45 | _ -> false) rows);
  check "unbound raises" true
    (try
       ignore (rows_of db "SELECT A FROM T WHERE A >= :NOPE");
       false
     with Rdb_engine.Predicate.Unbound_param "NOPE" -> true)

let test_exec_in_subquery () =
  let db = mkdb () in
  let r = Executor.execute_sql db "SELECT COUNT(*) FROM T WHERE A IN (SELECT A FROM T WHERE A < 2)" in
  (match r.Executor.rows with
  | [ [ Value.Int n ] ] -> check_int "A in {0,1}" 20 n
  | _ -> Alcotest.fail "bad result");
  check_int "two retrievals" 2 (List.length r.Executor.summaries)

let test_exec_exists () =
  let db = mkdb () in
  let yes = rows_of db "SELECT COUNT(*) FROM T WHERE EXISTS (SELECT A FROM T WHERE A = 1)" in
  let no = rows_of db "SELECT COUNT(*) FROM T WHERE EXISTS (SELECT A FROM T WHERE A = 999)" in
  (match (yes, no) with
  | [ [ Value.Int y ] ], [ [ Value.Int n ] ] ->
      check_int "exists true keeps all" 500 y;
      check_int "exists false drops all" 0 n
  | _ -> Alcotest.fail "bad results")

let test_exec_errors () =
  let db = mkdb () in
  check "unknown table" true
    (try
       ignore (rows_of db "SELECT A FROM NOPE");
       false
     with Executor.Execution_error _ -> true);
  check "unknown column" true
    (try
       ignore (rows_of db "SELECT NOPE FROM T");
       false
     with Executor.Execution_error _ -> true);
  check "multi-column subquery rejected" true
    (try
       ignore (rows_of db "SELECT A FROM T WHERE A IN (SELECT A, B FROM T)");
       false
     with Executor.Execution_error _ -> true)

let test_exec_delete () =
  let db = mkdb () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let before = as_int (rows_of db "SELECT COUNT(*) FROM T") in
  let r = Executor.execute_sql db "DELETE FROM T WHERE A = 3" in
  (match r.Executor.message with
  | Some m -> check "message" true (m = "10 row(s) deleted from T")
  | None -> Alcotest.fail "no message");
  check_int "rows gone" (before - 10) (as_int (rows_of db "SELECT COUNT(*) FROM T"));
  check_int "none left with A=3" 0 (as_int (rows_of db "SELECT COUNT(*) FROM T WHERE A = 3"));
  (* the index agrees after the deletes *)
  let r2 = Executor.execute_sql db "SELECT COUNT(*) FROM T WHERE A BETWEEN 2 AND 4" in
  check_int "neighbours intact" 20 (as_int r2.Executor.rows)

let test_exec_update () =
  let db = mkdb () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let r = Executor.execute_sql db "UPDATE T SET A = 99 WHERE A = 7" in
  (match r.Executor.message with
  | Some m -> check "message" true (m = "10 row(s) updated in T")
  | None -> Alcotest.fail "no message");
  check_int "old key empty" 0 (as_int (rows_of db "SELECT COUNT(*) FROM T WHERE A = 7"));
  check_int "new key found via index" 10
    (as_int (rows_of db "SELECT COUNT(*) FROM T WHERE A = 99"));
  (* non-key update leaves indexes valid *)
  ignore (Executor.execute_sql db "UPDATE T SET B = 5 WHERE A = 99");
  check_int "b updated" 10 (as_int (rows_of db "SELECT COUNT(*) FROM T WHERE A = 99 AND B = 5"))

let test_exec_update_with_host_var () =
  let db = mkdb () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  ignore
    (Executor.execute_sql
       ~env:[ ("NEWB", Value.int 42); ("TARGET", Value.int 11) ]
       db "UPDATE T SET B = :NEWB WHERE A = :TARGET");
  check_int "updated via params" 10
    (as_int (rows_of db ~env:[] "SELECT COUNT(*) FROM T WHERE B = 42"))

let test_exec_delete_everything_and_update_nothing () =
  let db = mkdb () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let r = Executor.execute_sql db "UPDATE T SET B = 1 WHERE A = 12345" in
  check "update nothing" true (r.Executor.message = Some "0 row(s) updated in T");
  ignore (Executor.execute_sql db "DELETE FROM T");
  check_int "all gone" 0 (as_int (rows_of db "SELECT COUNT(*) FROM T"));
  (* aggregates over the empty table *)
  (match rows_of db "SELECT MIN(A), AVG(A), SUM(A) FROM T" with
  | [ [ Value.Null; Value.Null; Value.Null ] ] -> ()
  | _ -> Alcotest.fail "aggregates over empty set must be NULL");
  (* reinsert works after total deletion *)
  ignore (Executor.execute_sql db "INSERT INTO T VALUES (1, 2, 'z')");
  check_int "reborn" 1 (as_int (rows_of db "SELECT COUNT(*) FROM T"))

let test_explain_join () =
  let db = Rdb_engine.Database.create ~pool_capacity:128 () in
  ignore (Executor.execute_sql db "CREATE TABLE CUST (CID INT, CITY INT)");
  ignore (Executor.execute_sql db "CREATE TABLE ORD (OID INT, CID INT)");
  ignore (Executor.execute_sql db "INSERT INTO CUST VALUES (1, 1), (2, 2)");
  ignore (Executor.execute_sql db "INSERT INTO ORD VALUES (10, 1), (11, 1), (12, 2)");
  let r =
    Executor.execute_sql db
      "EXPLAIN SELECT COUNT(*) FROM CUST, ORD WHERE CUST.CID = ORD.CID AND CITY = 1"
  in
  check_int "two retrieval summaries" 2 (List.length r.Executor.summaries)

(* --- joins ----------------------------------------------------------------------- *)

let mk_join_db () =
  let db = Rdb_engine.Database.create ~pool_capacity:512 () in
  ignore (Executor.execute_sql db "CREATE TABLE CUST (CID INT, NAME STRING, CITY INT)");
  ignore (Executor.execute_sql db "CREATE TABLE ORD (OID INT, CID INT, AMT INT)");
  let custs =
    List.init 200 (fun i -> Printf.sprintf "(%d, 'cust%03d', %d)" i i (i mod 10))
  in
  ignore (Executor.execute_sql db ("INSERT INTO CUST VALUES " ^ String.concat ", " custs));
  let ords =
    List.init 2000 (fun i -> Printf.sprintf "(%d, %d, %d)" i (i mod 300) (i mod 97))
  in
  ignore (Executor.execute_sql db ("INSERT INTO ORD VALUES " ^ String.concat ", " ords));
  ignore (Executor.execute_sql db "CREATE INDEX ORD_CID ON ORD (CID)");
  db

let join_oracle db pred_c pred_o =
  (* count pairs (c, o) with c.CID = o.CID satisfying per-side preds *)
  let m = Rdb_storage.Cost.create () in
  let cust = Rdb_engine.Database.table db "CUST" in
  let ord = Rdb_engine.Database.table db "ORD" in
  let count = ref 0 in
  Rdb_storage.Heap_file.iter (Rdb_engine.Table.heap cust) m (fun _ crow ->
      if pred_c crow then
        Rdb_storage.Heap_file.iter (Rdb_engine.Table.heap ord) m (fun _ orow ->
            if Value.equal crow.(0) orow.(1) && pred_o orow then incr count));
  !count

let test_join_parse () =
  let s = Parser.parse_select "SELECT a FROM t, u WHERE t.x = u.y AND t.z = 1" in
  check "joined" true (s.Ast.joined = Some "U");
  match s.Ast.where with
  | Some (Ast.C_and [ Ast.C_cmp_col ("T.X", Ast.Eq, "U.Y"); Ast.C_cmp ("T.Z", _, _) ]) -> ()
  | _ -> Alcotest.fail "join condition misparsed"

let test_join_counts_match_oracle () =
  let db = mk_join_db () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let got =
    as_int
      (rows_of db
         "SELECT COUNT(*) FROM CUST, ORD WHERE CUST.CID = ORD.CID AND CITY = 3 AND AMT < 50")
  in
  let expected =
    join_oracle db
      (fun c -> Value.equal c.(2) (Value.int 3))
      (fun o -> match o.(2) with Value.Int a -> a < 50 | _ -> false)
  in
  check_int "join count" expected got;
  (* no restriction beyond the join *)
  let all = as_int (rows_of db "SELECT COUNT(*) FROM CUST, ORD WHERE CUST.CID = ORD.CID") in
  let expected_all = join_oracle db (fun _ -> true) (fun _ -> true) in
  check_int "full join count" expected_all all

let test_join_projection_and_order () =
  let db = mk_join_db () in
  let rows =
    rows_of db
      "SELECT NAME, AMT FROM CUST, ORD WHERE CUST.CID = ORD.CID AND CITY = 2 ORDER BY AMT        LIMIT 4"
  in
  check_int "limited" 4 (List.length rows);
  let amts = List.map (function [ _; Value.Int a ] -> a | _ -> -1) rows in
  let rec mono = function a :: b :: r -> a <= b && mono (b :: r) | _ -> true in
  check "ordered by AMT" true (mono amts)

let test_join_mixed_residual () =
  (* A cross-table non-equality conjunct must be applied post-join. *)
  let db = mk_join_db () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let got =
    as_int
      (rows_of db
         "SELECT COUNT(*) FROM CUST, ORD WHERE CUST.CID = ORD.CID AND CITY < AMT")
  in
  (* direct oracle with the cross predicate *)
  let m = Rdb_storage.Cost.create () in
  let cust = Rdb_engine.Database.table db "CUST" in
  let ord = Rdb_engine.Database.table db "ORD" in
  let count = ref 0 in
  Rdb_storage.Heap_file.iter (Rdb_engine.Table.heap cust) m (fun _ c ->
      Rdb_storage.Heap_file.iter (Rdb_engine.Table.heap ord) m (fun _ o ->
          match (c.(0), o.(1), c.(2), o.(2)) with
          | Value.Int a, Value.Int b, Value.Int city, Value.Int amt when a = b && city < amt
            ->
              incr count
          | _ -> ()));
  check_int "cross-table residual" !count got

let test_join_errors () =
  let db = mk_join_db () in
  check "ambiguous" true
    (try
       ignore (rows_of db "SELECT COUNT(*) FROM CUST, ORD WHERE CID = 1");
       false
     with Executor.Execution_error _ -> true);
  check "unknown qualified" true
    (try
       ignore (rows_of db "SELECT COUNT(*) FROM CUST, ORD WHERE CUST.NOPE = 1");
       false
     with Executor.Execution_error _ -> true)

let test_same_table_column_comparison () =
  (* Cmp_col within one table — "comparing attributes of the same
     index" (§5). *)
  let db = mk_join_db () in
  let as_int = function [ [ Value.Int n ] ] -> n | _ -> -1 in
  let got = as_int (rows_of db "SELECT COUNT(*) FROM ORD WHERE CID = AMT") in
  let m = Rdb_storage.Cost.create () in
  let ord = Rdb_engine.Database.table db "ORD" in
  let count = ref 0 in
  Rdb_storage.Heap_file.iter (Rdb_engine.Table.heap ord) m (fun _ o ->
      if Value.equal o.(1) o.(2) then incr count);
  check_int "self comparison" !count got

(* --- goal inference (§4) ---------------------------------------------------------- *)

let context_of db sql ~outer =
  Executor.goal_context_of_select db (Parser.parse_select sql) ~outer

let test_goal_context_rules () =
  let db = mkdb () in
  check "limit" true
    (context_of db "SELECT A FROM T LIMIT 2" ~outer:None = Some (Goal.Limit 2));
  check "distinct" true
    (context_of db "SELECT DISTINCT A FROM T" ~outer:None = Some Goal.Sort);
  check "aggregate" true
    (context_of db "SELECT COUNT(*) FROM T" ~outer:None = Some Goal.Aggregate);
  (* ORDER BY on an indexed column: no SORT node needed. *)
  check "order by indexed col" true
    (context_of db "SELECT A FROM T ORDER BY A" ~outer:None = None);
  check "order by unindexed col" true
    (context_of db "SELECT A FROM T ORDER BY S" ~outer:None = Some Goal.Sort);
  check "plain select defers to outer" true
    (context_of db "SELECT A FROM T" ~outer:(Some Goal.Exists) = Some Goal.Exists)

let test_paper_nested_example_goals () =
  (* The §4 example: fast-first for C (LIMIT), total-time for B (SORT
     via DISTINCT), total-time for A (explicit request). *)
  let db = Rdb_engine.Database.create ~pool_capacity:256 () in
  ignore (Executor.execute_sql db "CREATE TABLE A (X INT)");
  ignore (Executor.execute_sql db "CREATE TABLE B (Y INT)");
  ignore (Executor.execute_sql db "CREATE TABLE C (Z INT)");
  let ins t n =
    ignore
      (Executor.execute_sql db
         (Printf.sprintf "INSERT INTO %s VALUES %s" t
            (String.concat ", " (List.init n (fun i -> Printf.sprintf "(%d)" (i mod 40))))))
  in
  ins "A" 400;
  ins "B" 200;
  ins "C" 100;
  let r =
    Executor.execute_sql db
      "SELECT X FROM A WHERE X IN (SELECT DISTINCT Y FROM B WHERE Y IN (SELECT Z FROM C \
       LIMIT TO 2 ROWS)) OPTIMIZE FOR TOTAL TIME"
  in
  match r.Executor.summaries with
  | [ ("C", sc); ("B", sb); ("A", sa) ] ->
      check "C fast-first" true (sc.R.goal = Goal.Fast_first);
      check "B total-time" true (sb.R.goal = Goal.Total_time);
      check "A total-time" true (sa.R.goal = Goal.Total_time);
      check "A by user request" true (sa.R.goal_provenance = "user request")
  | l -> Alcotest.fail (Printf.sprintf "expected 3 summaries, got %d" (List.length l))

let test_explain_reports_decisions () =
  let db = mkdb () in
  let r = Executor.execute_sql db "EXPLAIN SELECT S FROM T WHERE A = 1" in
  check "has plan rows" true (r.Executor.rows <> []);
  let text =
    String.concat "\n"
      (List.map (function [ Value.Str s ] -> s | _ -> "") r.Executor.rows)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "mentions tactic" true (contains text "tactic")

let () =
  Alcotest.run "rdb_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select shape" `Quick test_parse_select_shape;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "not/in/is-null" `Quick test_parse_not_in_is_null;
          Alcotest.test_case "subqueries" `Quick test_parse_subqueries;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "negative/exponent literals" `Quick
            test_parse_negative_and_exponent_literals;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total_on_garbage;
          Alcotest.test_case "statement printing" `Quick test_statement_printing;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select/where" `Quick test_exec_select_where;
          Alcotest.test_case "NULL semantics" `Quick test_exec_null_semantics;
          Alcotest.test_case "order/limit/distinct" `Quick test_exec_order_limit_distinct;
          Alcotest.test_case "aggregates" `Quick test_exec_aggregates;
          Alcotest.test_case "host variables" `Quick test_exec_host_variables;
          Alcotest.test_case "IN subquery" `Quick test_exec_in_subquery;
          Alcotest.test_case "EXISTS" `Quick test_exec_exists;
          Alcotest.test_case "errors" `Quick test_exec_errors;
          Alcotest.test_case "DELETE" `Quick test_exec_delete;
          Alcotest.test_case "UPDATE" `Quick test_exec_update;
          Alcotest.test_case "UPDATE with host vars" `Quick test_exec_update_with_host_var;
        ] );
      ( "dml-edges",
        [
          Alcotest.test_case "delete all / update none / empty aggregates" `Quick
            test_exec_delete_everything_and_update_nothing;
          Alcotest.test_case "EXPLAIN join" `Quick test_explain_join;
        ] );
      ( "joins",
        [
          Alcotest.test_case "parse" `Quick test_join_parse;
          Alcotest.test_case "counts vs oracle" `Quick test_join_counts_match_oracle;
          Alcotest.test_case "projection/order/limit" `Quick test_join_projection_and_order;
          Alcotest.test_case "cross-table residual" `Quick test_join_mixed_residual;
          Alcotest.test_case "errors" `Quick test_join_errors;
          Alcotest.test_case "same-table column compare" `Quick
            test_same_table_column_comparison;
        ] );
      ( "goals",
        [
          Alcotest.test_case "context rules" `Quick test_goal_context_rules;
          Alcotest.test_case "paper nested example" `Quick test_paper_nested_example_goals;
          Alcotest.test_case "EXPLAIN" `Quick test_explain_reports_decisions;
        ] );
    ]

(* Tests for the scan strategies: every strategy must produce the same
   qualifying row set, plus Jscan-specific behaviours (intersection,
   competition discards, Tscan recommendation, borrowing, hybrid
   storage) and the final stage. *)

open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_exec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

type fixture = { table : Table.t; pool : Rdb_storage.Buffer_pool.t }

let fixture ?(rows = 3000) ?(pool_capacity = 2048) ?(seed = 3) () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:pool_capacity () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  { table; pool }

let oracle f pred =
  let m = Rdb_storage.Cost.create () in
  let out = ref [] in
  Rdb_storage.Heap_file.iter (Table.heap f.table) m (fun rid row ->
      if Predicate.eval pred schema row then out := rid :: !out);
  List.sort Rid.compare !out

let candidate_for f idx_name pred =
  let idx = Option.get (Table.find_index f.table idx_name) in
  let e = Range_extract.for_index pred idx in
  {
    Scan.idx;
    ranges = e.Range_extract.ranges;
    residual = e.Range_extract.residual;
    est =
      (let m = Rdb_storage.Cost.create () in
       (Estimate.ranges idx.Table.tree m e.Range_extract.ranges).Estimate.estimate);
    est_exact = false;
  }

let drain step_fn =
  let out = ref [] in
  let rec loop () =
    match step_fn () with
    | Scan.Deliver (rid, _) ->
        out := rid :: !out;
        loop ()
    | Scan.Continue -> loop ()
    | Scan.Done -> List.sort Rid.compare !out
    | Scan.Failed f -> raise (Rdb_storage.Fault.Injected f)
  in
  loop ()

(* --- tscan --------------------------------------------------------------- *)

let test_tscan_matches_oracle () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" >=% Value.int 20; "X" <% Value.int 40 ] in
  let m = Rdb_storage.Cost.create () in
  let t = Tscan.create f.table m pred in
  check "same rids" true (drain (fun () -> Tscan.step t) = oracle f pred);
  check_int "examined all" (Table.row_count f.table) (Tscan.examined t)

let test_tscan_cost_is_flat () =
  let f = fixture () in
  Rdb_storage.Buffer_pool.flush f.pool;
  let m = Rdb_storage.Cost.create () in
  let t = Tscan.create f.table m Predicate.True in
  ignore (drain (fun () -> Tscan.step t));
  check_int "page reads" (Table.page_count f.table) (Rdb_storage.Cost.physical_reads m)

(* --- sscan --------------------------------------------------------------- *)

let test_sscan_matches_oracle () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" >=% Value.int 20; "X" <% Value.int 40 ] in
  let m = Rdb_storage.Cost.create () in
  let s = Sscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  check "same rids" true (drain (fun () -> Sscan.step s) = oracle f pred)

let test_sscan_never_touches_heap () =
  let f = fixture () in
  Rdb_storage.Buffer_pool.flush f.pool;
  let open Predicate in
  let pred = "X" <% Value.int 50 in
  let m = Rdb_storage.Cost.create () in
  let s = Sscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  ignore (drain (fun () -> Sscan.step s));
  (* All block reads must be index blocks: with a flushed pool the heap
     would add page_count reads; we verify reads are below that. *)
  let idx = Option.get (Table.find_index f.table "X_IDX") in
  let max_index_reads = Btree.node_count idx.Table.tree + 5 in
  check "only index reads" true (Rdb_storage.Cost.physical_reads m <= max_index_reads)

let test_sscan_rejects_non_covering () =
  let f = fixture () in
  let open Predicate in
  let pred = "S" =% Value.str "nope" in
  check "raises" true
    (try
       ignore (Sscan.create f.table (Rdb_storage.Cost.create ())
                 (candidate_for f "X_IDX" ("X" <% Value.int 5)) ~restriction:pred);
       false
     with Invalid_argument _ -> true)

(* --- fscan --------------------------------------------------------------- *)

let test_fscan_matches_oracle_in_index_order () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" >=% Value.int 10; "X" <=% Value.int 12; "Y" <% Value.int 500 ] in
  let m = Rdb_storage.Cost.create () in
  let fs = Fscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  let delivered = ref [] in
  let rec loop () =
    match Fscan.step fs with
    | Scan.Deliver (rid, row) ->
        delivered := (rid, row) :: !delivered;
        loop ()
    | Scan.Continue -> loop ()
    | Scan.Done -> ()
    | Scan.Failed f -> raise (Rdb_storage.Fault.Injected f)
  in
  loop ();
  let rids = List.sort Rid.compare (List.map fst !delivered) in
  check "same rids" true (rids = oracle f pred);
  (* Delivery order must follow the X index. *)
  let xs =
    List.rev_map (fun (_, row) -> match Row.get row 1 with Value.Int x -> x | _ -> -1)
      !delivered
  in
  let rec non_decreasing = function
    | a :: b :: r -> a <= b && non_decreasing (b :: r)
    | _ -> true
  in
  check "index order" true (non_decreasing xs)

let test_fscan_filter_saves_fetches () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" =% Value.int 5 in
  let m = Rdb_storage.Cost.create () in
  let fs = Fscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  (* Attach an empty filter: every fetch is then skipped. *)
  Fscan.set_filter fs (Rdb_rid.Filter.of_sorted_array [||]);
  let rids = drain (fun () -> Fscan.step fs) in
  check_int "nothing delivered" 0 (List.length rids);
  check_int "no fetches" 0 (Fscan.fetched fs);
  check "skips counted" true (Fscan.saved_by_filter fs > 0)

let test_fscan_counts_wasted_fetches () =
  let f = fixture () in
  let open Predicate in
  (* Residual on Y rejects ~half after the fetch. *)
  let pred = And [ "X" =% Value.int 5; "Y" <% Value.int 500 ] in
  let m = Rdb_storage.Cost.create () in
  let fs = Fscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  ignore (drain (fun () -> Fscan.step fs));
  check "wasted fetches counted" true (Fscan.rejected_after_fetch fs > 0)

(* --- jscan --------------------------------------------------------------- *)

let run_jscan ?(cfg = Jscan.default_config) f pred idx_names =
  let m = Rdb_storage.Cost.create () in
  let trace = Trace.create () in
  let candidates = List.map (fun n -> candidate_for f n pred) idx_names in
  let j = Jscan.create f.table m cfg trace ~candidates in
  (Jscan.run j, j, trace, m)

let final_rids f pred outcome =
  match outcome with
  | Jscan.Rid_list rids ->
      let m = Rdb_storage.Cost.create () in
      let fin =
        Final_stage.create f.table m ~rids ~restriction:pred ~exclude:(fun _ -> false)
      in
      drain (fun () -> Final_stage.step fin)
  | Jscan.Recommend_tscan _ ->
      let m = Rdb_storage.Cost.create () in
      let t = Tscan.create f.table m pred in
      drain (fun () -> Tscan.step t)

let test_jscan_intersection_correct () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 7; "Y" <% Value.int 300 ] in
  let outcome, _, _, _ = run_jscan f pred [ "X_IDX"; "Y_IDX" ] in
  check "rows match oracle" true (final_rids f pred outcome = oracle f pred)

let test_jscan_empty_intersection_shortcuts () =
  let f = fixture () in
  let open Predicate in
  (* X = 7 AND Y in an empty range: the Y list is empty. *)
  let pred = And [ "X" =% Value.int 7; "Y" >% Value.int 5000 ] in
  let outcome, _, trace, _ = run_jscan f pred [ "Y_IDX"; "X_IDX" ] in
  (match outcome with
  | Jscan.Rid_list [||] -> ()
  | Jscan.Rid_list _ -> Alcotest.fail "expected empty list"
  | Jscan.Recommend_tscan _ -> Alcotest.fail "expected empty list, got tscan");
  (* The empty first list must have prevented further scans from
     keeping anything. *)
  check "completed without extra work" true
    (Trace.count trace (function Trace.Scan_completed _ -> true | _ -> false) >= 1)

let test_jscan_unselective_recommends_tscan () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" >=% Value.int 1 in
  (* 99% of the table *)
  let outcome, _, _, _ = run_jscan f pred [ "X_IDX" ] in
  (match outcome with
  | Jscan.Recommend_tscan _ -> ()
  | Jscan.Rid_list _ -> Alcotest.fail "expected tscan recommendation");
  check "rows still correct" true (final_rids f pred outcome = oracle f pred)

let test_jscan_discards_useless_second_index () =
  let f = fixture () in
  let open Predicate in
  (* Selective on X, useless on Y. *)
  let pred = And [ "X" =% Value.int 3; "Y" >=% Value.int 0 ] in
  let outcome, j, trace, _ = run_jscan f pred [ "X_IDX"; "Y_IDX" ] in
  check "correct" true (final_rids f pred outcome = oracle f pred);
  check "some scan discarded or preskipped" true
    (Jscan.discarded_scans j >= 1
    || Trace.count trace (function Trace.Scan_discarded _ -> true | _ -> false) >= 1)

let test_jscan_static_mode_never_discards_midscan () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 3; "Y" >=% Value.int 0 ] in
  let cfg = { Jscan.default_config with dynamic = false } in
  let _, _, trace, _ = run_jscan ~cfg f pred [ "X_IDX"; "Y_IDX" ] in
  check_int "no discards in static mode" 0
    (Trace.count trace (function Trace.Scan_discarded _ -> true | _ -> false))

let test_jscan_borrowing () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" =% Value.int 9 in
  let m = Rdb_storage.Cost.create () in
  let trace = Trace.create () in
  let j =
    Jscan.create f.table m Jscan.default_config trace
      ~candidates:[ candidate_for f "X_IDX" pred ]
  in
  (* Step a bit, borrow some RIDs, then finish. *)
  let borrowed = ref [] in
  for _ = 1 to 200 do
    ignore (Jscan.step j);
    match Jscan.borrow j with Some r -> borrowed := r :: !borrowed | None -> ()
  done;
  let _ = Jscan.run j in
  check "borrowed some rids" true (!borrowed <> []);
  (* Every borrowed rid really satisfies the X restriction. *)
  let hm = Rdb_storage.Cost.create () in
  List.iter
    (fun rid ->
      match Rdb_storage.Heap_file.fetch (Table.heap f.table) hm rid with
      | Some row -> check "borrowed rid qualifies" true (Predicate.eval pred schema row)
      | None -> Alcotest.fail "borrowed rid missing")
    !borrowed

let test_jscan_spills_with_tiny_budget () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" <% Value.int 50 in
  let cfg = { Jscan.default_config with memory_budget = 64; switch_ratio = 10.0; scan_cost_cap = 1e9 } in
  let outcome, _, trace, _ = run_jscan ~cfg f pred [ "X_IDX" ] in
  check "spilled" true
    (Trace.count trace (function Trace.List_spilled _ -> true | _ -> false) >= 1);
  check "rows correct despite spill" true (final_rids f pred outcome = oracle f pred)

let test_jscan_simultaneous_mode_correct () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" <% Value.int 10; "Y" <% Value.int 120 ] in
  let cfg = { Jscan.default_config with simultaneous = true } in
  let outcome, _, _, _ = run_jscan ~cfg f pred [ "X_IDX"; "Y_IDX" ] in
  check "simultaneous correct" true (final_rids f pred outcome = oracle f pred)

let prop_jscan_equals_tscan =
  QCheck.Test.make ~name:"jscan + final equals tscan row set" ~count:25
    QCheck.(triple (int_bound 99) (int_bound 999) (int_bound 999))
    (fun (x, ylo, yspan) ->
      let f = fixture ~rows:1500 () in
      let open Predicate in
      let pred =
        And
          [
            "X" =% Value.int x;
            between "Y" (Value.int ylo) (Value.int (ylo + yspan));
          ]
      in
      let outcome, _, _, _ = run_jscan f pred [ "X_IDX"; "Y_IDX" ] in
      final_rids f pred outcome = oracle f pred)

(* --- uscan --------------------------------------------------------------- *)

let or_oracle = oracle

let run_uscan f branch_specs =
  (* branch_specs: (index, branch predicate) pairs *)
  let m = Rdb_storage.Cost.create () in
  let trace = Trace.create () in
  let disjuncts = List.map (fun (n, p) -> candidate_for f n p) branch_specs in
  let u = Uscan.create f.table m Uscan.default_config trace ~disjuncts in
  (Uscan.run u, trace)

let uscan_rows f pred outcome =
  match outcome with
  | Uscan.Rid_list rids ->
      let m = Rdb_storage.Cost.create () in
      let fin =
        Final_stage.create f.table m ~rids ~restriction:pred ~exclude:(fun _ -> false)
      in
      drain (fun () -> Final_stage.step fin)
  | Uscan.Recommend_tscan _ ->
      let m = Rdb_storage.Cost.create () in
      let t = Tscan.create f.table m pred in
      drain (fun () -> Tscan.step t)

let test_uscan_union_correct () =
  let f = fixture () in
  let open Predicate in
  let b1 = "X" =% Value.int 3 and b2 = "Y" <% Value.int 40 in
  let pred = Or [ b1; b2 ] in
  let outcome, _ = run_uscan f [ ("X_IDX", b1); ("Y_IDX", b2) ] in
  check "union equals oracle" true (uscan_rows f pred outcome = or_oracle f pred)

let test_uscan_dedups_overlap () =
  let f = fixture () in
  let open Predicate in
  (* Overlapping disjuncts: X in both ranges. *)
  let b1 = And [ "X" >=% Value.int 3; "X" <=% Value.int 6 ] in
  let b2 = And [ "X" >=% Value.int 5; "X" <=% Value.int 9 ] in
  let pred = Or [ b1; b2 ] in
  let outcome, _ = run_uscan f [ ("X_IDX", b1); ("X_IDX", b2) ] in
  let rows = uscan_rows f pred outcome in
  check "no duplicates, matches oracle" true (rows = or_oracle f pred)

let test_uscan_falls_back_when_broad () =
  let f = fixture () in
  let open Predicate in
  let b1 = "X" >=% Value.int 1 and b2 = "Y" >=% Value.int 1 in
  let pred = Or [ b1; b2 ] in
  let outcome, trace = run_uscan f [ ("X_IDX", b1); ("Y_IDX", b2) ] in
  (match outcome with
  | Uscan.Recommend_tscan _ -> ()
  | Uscan.Rid_list _ -> Alcotest.fail "expected fallback to tscan");
  check "discard traced" true
    (Trace.count trace (function Trace.Scan_discarded _ -> true | _ -> false) >= 1);
  check "rows still correct" true (uscan_rows f pred outcome = or_oracle f pred)

let test_uscan_empty_union () =
  let f = fixture () in
  let open Predicate in
  let b1 = "X" >% Value.int 5000 and b2 = "Y" >% Value.int 5000 in
  let pred = Or [ b1; b2 ] in
  ignore pred;
  let outcome, _ = run_uscan f [ ("X_IDX", b1); ("Y_IDX", b2) ] in
  match outcome with
  | Uscan.Rid_list [||] -> ()
  | _ -> Alcotest.fail "expected empty union"

(* --- jscan config knobs ------------------------------------------------- *)

let test_jscan_filter_only_never_recommends_tscan () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" >=% Value.int 1 in
  (* 99% of the table *)
  let cfg = { Jscan.default_config with filter_only = true; initial_guaranteed_best = Some 1e9 } in
  let outcome, _, _, _ = run_jscan ~cfg f pred [ "X_IDX" ] in
  match outcome with
  | Jscan.Rid_list rids -> check "huge filter list delivered" true (Array.length rids > 2000)
  | Jscan.Recommend_tscan _ -> Alcotest.fail "filter-only must deliver the list"

let test_jscan_guaranteed_best_override_changes_decisions () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" <% Value.int 50 in
  (* With a tiny guaranteed best every scan is immediately hopeless. *)
  let cfg = { Jscan.default_config with initial_guaranteed_best = Some 0.5 } in
  let outcome, _, trace, _ = run_jscan ~cfg f pred [ "X_IDX" ] in
  (match outcome with
  | Jscan.Recommend_tscan _ -> ()
  | Jscan.Rid_list _ -> Alcotest.fail "expected abandonment under tiny g");
  check "discarded quickly" true
    (Trace.count trace (function Trace.Scan_discarded _ -> true | _ -> false) >= 1)

let test_jscan_no_candidates () =
  let f = fixture () in
  let m = Rdb_storage.Cost.create () in
  let trace = Trace.create () in
  let j = Jscan.create f.table m Jscan.default_config trace ~candidates:[] in
  (match Jscan.run j with
  | Jscan.Recommend_tscan _ -> ()
  | Jscan.Rid_list _ -> Alcotest.fail "no candidates must recommend tscan");
  check "no scans" true (Jscan.completed_scans j = 0)

let test_fscan_filter_attached_mid_scan () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" =% Value.int 5 in
  let m = Rdb_storage.Cost.create () in
  let fs = Fscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
  (* Deliver a few rows unfiltered... *)
  let first = ref [] in
  let rec take n =
    if n > 0 then begin
      match Fscan.step fs with
      | Scan.Deliver (rid, _) ->
          first := rid :: !first;
          take (n - 1)
      | Scan.Continue -> take n
      | Scan.Done -> ()
      | Scan.Failed f -> raise (Rdb_storage.Fault.Injected f)
    end
  in
  take 3;
  (* ...then attach an empty filter: nothing more is fetched. *)
  Fscan.set_filter fs (Rdb_rid.Filter.of_sorted_array [||]);
  let fetched_before = Fscan.fetched fs in
  let rest = drain (fun () -> Fscan.step fs) in
  check_int "nothing after the filter" 0 (List.length rest);
  check_int "no further fetches" fetched_before (Fscan.fetched fs);
  check_int "three delivered before" 3 (List.length !first)

let test_final_stage_empty () =
  let f = fixture () in
  let m = Rdb_storage.Cost.create () in
  let fin =
    Final_stage.create f.table m ~rids:[||] ~restriction:Predicate.True
      ~exclude:(fun _ -> false)
  in
  check "immediately done" true (Final_stage.step fin = Scan.Done)

let test_tscan_empty_table () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:16 () in
  let table = Table.create pool ~name:"E" schema in
  let m = Rdb_storage.Cost.create () in
  let t = Tscan.create table m Predicate.True in
  check "done at once" true (Tscan.step t = Scan.Done)

(* --- final stage ------------------------------------------------------------ *)

let test_final_stage_excludes_delivered () =
  let f = fixture () in
  let open Predicate in
  let pred = "X" =% Value.int 4 in
  let all = oracle f pred in
  let excluded = List.filteri (fun i _ -> i < 3) all in
  let m = Rdb_storage.Cost.create () in
  let fin =
    Final_stage.create f.table m
      ~rids:(Array.of_list all)
      ~restriction:pred
      ~exclude:(fun rid -> List.exists (Rid.equal rid) excluded)
  in
  let got = drain (fun () -> Final_stage.step fin) in
  check_int "rest delivered" (List.length all - 3) (List.length got);
  check_int "skips counted" 3 (Final_stage.skipped_delivered fin)

let test_final_stage_reevaluates_restriction () =
  let f = fixture () in
  let open Predicate in
  (* Hand the final stage RIDs that do NOT all satisfy the
     restriction (as hashed filters can): they must be filtered. *)
  let pred = "X" =% Value.int 4 in
  let good = oracle f pred in
  let bad = oracle f ("X" =% Value.int 5) in
  let mixed = List.sort Rid.compare (good @ bad) in
  let m = Rdb_storage.Cost.create () in
  let fin =
    Final_stage.create f.table m ~rids:(Array.of_list mixed) ~restriction:pred
      ~exclude:(fun _ -> false)
  in
  check "only qualifying survive" true (drain (fun () -> Final_stage.step fin) = good)

(* --- batch cursors (DESIGN.md §11) ---------------------------------------- *)

(* The batch budget is a pure amortization knob: delivered pairs (in
   order), total charged cost, and the fault sequence must be identical
   across budgets and identical to the pre-refactor step-at-a-time
   protocol (which budget 0 reproduces bit-for-bit). *)

let drive_steps step_fn ~cost =
  let rows = ref [] and faults = ref [] in
  let rec loop () =
    match step_fn () with
    | Scan.Deliver (rid, row) ->
        rows := (rid, row) :: !rows;
        loop ()
    | Scan.Continue -> loop ()
    | Scan.Done -> ()
    | Scan.Failed f ->
        faults := Rdb_storage.Fault.describe f :: !faults;
        loop ()
  in
  loop ();
  (List.rev !rows, cost (), List.rev !faults)

let drive_cursor (cursor : Scan.cursor) ~budget ~cost =
  let rows = ref [] and faults = ref [] in
  let rec loop () =
    let b = cursor.Scan.next_batch ~budget in
    List.iter (fun p -> rows := p :: !rows) b.Scan.rows;
    match b.Scan.status with
    | Scan.More -> loop ()
    | Scan.Faulted f ->
        faults := Rdb_storage.Fault.describe f :: !faults;
        loop ()
    | Scan.Exhausted -> ()
  in
  loop ();
  (List.rev !rows, cost (), List.rev !faults)

let batch_pred = Predicate.(And [ "X" >=% Value.int 10; "X" <% Value.int 40 ])

(* One cold run of [kind] over a fresh fixture: [budget = None] drives
   the raw step protocol, [Some b] the batch cursor. *)
let batch_run kind ~budget ~plan =
  let f = fixture ~rows:2000 () in
  Rdb_storage.Buffer_pool.flush f.pool;
  Rdb_storage.Buffer_pool.set_injector f.pool (Option.map Rdb_storage.Fault.create plan);
  let m = Rdb_storage.Cost.create () in
  let cost () = Rdb_storage.Cost.total m in
  let step, cursor =
    match kind with
    | `Tscan ->
        let t = Tscan.create f.table m batch_pred in
        ((fun () -> Tscan.step t), Tscan.cursor t)
    | `Sscan ->
        let s =
          Sscan.create f.table m (candidate_for f "X_IDX" batch_pred) ~restriction:batch_pred
        in
        ((fun () -> Sscan.step s), Sscan.cursor s)
    | `Fscan ->
        let fs =
          Fscan.create f.table m (candidate_for f "X_IDX" batch_pred) ~restriction:batch_pred
        in
        ((fun () -> Fscan.step fs), Fscan.cursor fs)
  in
  match budget with
  | None -> drive_steps step ~cost
  | Some b -> drive_cursor cursor ~budget:b ~cost

let batch_budgets = [ 0.0; 1.0; 7.0; 64.0 ]

let test_cursor_batch_invariance () =
  List.iter
    (fun (name, kind) ->
      let reference = batch_run kind ~budget:None ~plan:None in
      let rows, _, _ = reference in
      check (name ^ " delivers rows") true (rows <> []);
      List.iter
        (fun b ->
          check
            (Printf.sprintf "%s invariant at budget %g" name b)
            true
            (batch_run kind ~budget:(Some b) ~plan:None = reference))
        batch_budgets)
    [ ("tscan", `Tscan); ("sscan", `Sscan); ("fscan", `Fscan) ]

let test_cursor_fault_sequence_invariant () =
  let plan = Some (Rdb_storage.Fault.plan ~transient_read_rate:0.2 ~seed:11 ()) in
  let reference = batch_run `Fscan ~budget:None ~plan in
  let _, _, faults = reference in
  check "faults actually fired" true (faults <> []);
  List.iter
    (fun b ->
      check
        (Printf.sprintf "fault sequence invariant at budget %g" b)
        true
        (batch_run `Fscan ~budget:(Some b) ~plan = reference))
    batch_budgets

let prop_cursor_batch_invariant =
  QCheck.Test.make ~name:"fscan cursor invariant across batch budgets" ~count:10
    QCheck.(pair (int_bound 80) (int_bound 30))
    (fun (xlo, xspan) ->
      let pred =
        Predicate.(And [ "X" >=% Value.int xlo; "X" <=% Value.int (xlo + xspan) ])
      in
      let run budget =
        let f = fixture ~rows:1200 () in
        Rdb_storage.Buffer_pool.flush f.pool;
        let m = Rdb_storage.Cost.create () in
        let fs = Fscan.create f.table m (candidate_for f "X_IDX" pred) ~restriction:pred in
        let cost () = Rdb_storage.Cost.total m in
        match budget with
        | None -> drive_steps (fun () -> Fscan.step fs) ~cost
        | Some b -> drive_cursor (Fscan.cursor fs) ~budget:b ~cost
      in
      let reference = run None in
      List.for_all (fun b -> run (Some b) = reference) [ 1.0; 7.0; 64.0 ])

(* --- cost model --------------------------------------------------------------- *)

let test_cost_model_orders () =
  let f = fixture () in
  let tscan = Cost_model.tscan_cost f.table in
  check "fetch few < tscan" true (Cost_model.rid_fetch_cost f.table ~k:5 < tscan);
  check "fetch all >= tscan-ish" true
    (Cost_model.rid_fetch_cost f.table ~k:(Table.row_count f.table) >= tscan *. 0.9);
  let idx = Option.get (Table.find_index f.table "X_IDX") in
  check "index scan of few entries cheap" true
    (Cost_model.index_scan_cost idx ~entries:50.0 < tscan /. 4.0)

let () =
  Alcotest.run "rdb_exec"
    [
      ( "tscan",
        [
          Alcotest.test_case "matches oracle" `Quick test_tscan_matches_oracle;
          Alcotest.test_case "flat cost" `Quick test_tscan_cost_is_flat;
        ] );
      ( "sscan",
        [
          Alcotest.test_case "matches oracle" `Quick test_sscan_matches_oracle;
          Alcotest.test_case "index-only reads" `Quick test_sscan_never_touches_heap;
          Alcotest.test_case "rejects non-covering" `Quick test_sscan_rejects_non_covering;
        ] );
      ( "fscan",
        [
          Alcotest.test_case "oracle + index order" `Quick
            test_fscan_matches_oracle_in_index_order;
          Alcotest.test_case "filter saves fetches" `Quick test_fscan_filter_saves_fetches;
          Alcotest.test_case "wasted fetches counted" `Quick test_fscan_counts_wasted_fetches;
        ] );
      ( "jscan",
        [
          Alcotest.test_case "intersection correct" `Quick test_jscan_intersection_correct;
          Alcotest.test_case "empty intersection shortcut" `Quick
            test_jscan_empty_intersection_shortcuts;
          Alcotest.test_case "unselective -> tscan" `Quick
            test_jscan_unselective_recommends_tscan;
          Alcotest.test_case "useless index discarded" `Quick
            test_jscan_discards_useless_second_index;
          Alcotest.test_case "static mode no discards" `Quick
            test_jscan_static_mode_never_discards_midscan;
          Alcotest.test_case "borrowing" `Quick test_jscan_borrowing;
          Alcotest.test_case "tiny budget spills" `Quick test_jscan_spills_with_tiny_budget;
          Alcotest.test_case "simultaneous mode" `Quick test_jscan_simultaneous_mode_correct;
          QCheck_alcotest.to_alcotest prop_jscan_equals_tscan;
        ] );
      ( "uscan",
        [
          Alcotest.test_case "union correct" `Quick test_uscan_union_correct;
          Alcotest.test_case "dedups overlap" `Quick test_uscan_dedups_overlap;
          Alcotest.test_case "broad falls back" `Quick test_uscan_falls_back_when_broad;
          Alcotest.test_case "empty union" `Quick test_uscan_empty_union;
        ] );
      ( "jscan_config",
        [
          Alcotest.test_case "filter-only delivers list" `Quick
            test_jscan_filter_only_never_recommends_tscan;
          Alcotest.test_case "guaranteed-best override" `Quick
            test_jscan_guaranteed_best_override_changes_decisions;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "jscan with no candidates" `Quick test_jscan_no_candidates;
          Alcotest.test_case "fscan mid-scan filter" `Quick
            test_fscan_filter_attached_mid_scan;
          Alcotest.test_case "final stage empty" `Quick test_final_stage_empty;
          Alcotest.test_case "tscan empty table" `Quick test_tscan_empty_table;
        ] );
      ( "final_stage",
        [
          Alcotest.test_case "excludes delivered" `Quick test_final_stage_excludes_delivered;
          Alcotest.test_case "reevaluates restriction" `Quick
            test_final_stage_reevaluates_restriction;
        ] );
      ( "batch_cursor",
        [
          Alcotest.test_case "rows/cost invariant across budgets" `Quick
            test_cursor_batch_invariance;
          Alcotest.test_case "fault sequence invariant across budgets" `Quick
            test_cursor_fault_sequence_invariant;
          QCheck_alcotest.to_alcotest prop_cursor_batch_invariant;
        ] );
      ("cost_model", [ Alcotest.test_case "orderings" `Quick test_cost_model_orders ]);
    ]

(* Tests for hashed bitmaps, filters, and the hybrid RID list. *)

open Rdb_data
open Rdb_rid

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rid i = Rid.make ~page:(i / 16) ~slot:(i mod 16)

(* --- bitmap -------------------------------------------------------------- *)

let test_bitmap_no_false_negatives () =
  let b = Bitmap.create ~bits:1024 in
  for i = 0 to 99 do
    Bitmap.add b (rid i)
  done;
  for i = 0 to 99 do
    check "added is member" true (Bitmap.mem b (rid i))
  done

let test_bitmap_false_positive_rate () =
  let b = Bitmap.create ~bits:4096 in
  for i = 0 to 199 do
    Bitmap.add b (rid i)
  done;
  let fp = ref 0 in
  let probes = 2000 in
  for i = 1000 to 1000 + probes - 1 do
    if Bitmap.mem b (rid i) then incr fp
  done;
  let measured = float_of_int !fp /. float_of_int probes in
  let predicted = Bitmap.expected_false_positive_rate b in
  check "fp rate near prediction" true (Float.abs (measured -. predicted) < 0.05);
  check "fp rate smallish" true (measured < 0.1)

let test_bitmap_sizing () =
  let b = Bitmap.create ~bits:7 in
  check "rounded up to >= 64" true (Bitmap.bits b >= 64);
  check_int "population empty" 0 (Bitmap.population b);
  Bitmap.add b (rid 3);
  check "population grows" true (Bitmap.population b >= 1)

(* --- filter -------------------------------------------------------------- *)

let test_filter_exact () =
  let rids = Array.init 50 (fun i -> rid (i * 3)) in
  let f = Filter.of_sorted_array rids in
  check "exact" true (Filter.is_exact f);
  check "member" true (Filter.mem f (rid 9));
  check "non member" false (Filter.mem f (rid 10));
  check_int "size hint" 50 (Filter.size_hint f)

let test_filter_hashed_one_sided () =
  let b = Bitmap.create ~bits:2048 in
  let f = Filter.Hashed b in
  for i = 0 to 49 do
    Bitmap.add b (rid i)
  done;
  check "not exact" false (Filter.is_exact f);
  for i = 0 to 49 do
    check "no false negative" true (Filter.mem f (rid i))
  done

(* --- rid list: tiers -------------------------------------------------------- *)

let fresh_list ?(memory_budget = 64) () =
  let pool = Rdb_storage.Buffer_pool.create ~capacity:256 () in
  let meter = Rdb_storage.Cost.create () in
  (Rid_list.create ~memory_budget pool meter, meter)

let test_inline_tier () =
  let l, _ = fresh_list () in
  for i = 0 to Rid_list.inline_capacity - 1 do
    Rid_list.add l (rid i)
  done;
  check "still inline" true (Rid_list.tier l = Rid_list.Inline);
  check_int "count" Rid_list.inline_capacity (Rid_list.count l)

let test_buffer_promotion () =
  let l, _ = fresh_list () in
  for i = 0 to Rid_list.inline_capacity do
    Rid_list.add l (rid i)
  done;
  check "promoted to buffer" true (Rid_list.tier l = Rid_list.Buffered);
  check_int "count preserved" (Rid_list.inline_capacity + 1) (Rid_list.count l)

let test_spill_promotion () =
  let l, meter = fresh_list ~memory_budget:40 () in
  for i = 0 to 99 do
    Rid_list.add l (rid i)
  done;
  check "spilled" true (Rid_list.tier l = Rid_list.Spilled);
  check_int "count preserved" 100 (Rid_list.count l);
  ignore (Rid_list.to_sorted_array l);
  (* Sealing flushes the tail block: spill writes must be charged. *)
  check "writes charged" true (Rdb_storage.Cost.block_writes meter > 0)

let test_filter_kind_follows_tier () =
  let l, _ = fresh_list () in
  for i = 0 to 30 do
    Rid_list.add l (rid i)
  done;
  check "in-memory filter is exact" true (Filter.is_exact (Rid_list.filter l));
  let l2, _ = fresh_list ~memory_budget:30 () in
  for i = 0 to 99 do
    Rid_list.add l2 (rid i)
  done;
  check "spilled filter is hashed" false (Filter.is_exact (Rid_list.filter l2))

let test_to_sorted_array_all_tiers () =
  List.iter
    (fun n ->
      let l, _ = fresh_list ~memory_budget:40 () in
      (* insert in reverse to exercise sorting *)
      for i = n - 1 downto 0 do
        Rid_list.add l (rid i)
      done;
      let a = Rid_list.to_sorted_array l in
      check_int (Printf.sprintf "n=%d length" n) n (Array.length a);
      let sorted = ref true in
      for i = 1 to Array.length a - 1 do
        if Rid.compare a.(i - 1) a.(i) >= 0 then sorted := false
      done;
      check "sorted strictly" true !sorted)
    [ 0; 5; 20; 21; 60; 200 ]

let test_to_sorted_array_dedups () =
  let l, _ = fresh_list () in
  for _ = 1 to 3 do
    for i = 0 to 9 do
      Rid_list.add l (rid i)
    done
  done;
  check_int "deduped" 10 (Array.length (Rid_list.to_sorted_array l))

let test_add_after_seal_rejected () =
  let l, _ = fresh_list () in
  Rid_list.add l (rid 1);
  ignore (Rid_list.filter l);
  check "sealed" true
    (try
       Rid_list.add l (rid 2);
       false
     with Invalid_argument _ -> true)

let test_filter_membership_matches_contents () =
  List.iter
    (fun n ->
      let l, _ = fresh_list ~memory_budget:64 () in
      for i = 0 to n - 1 do
        Rid_list.add l (rid (2 * i))
      done;
      let f = Rid_list.filter l in
      (* No false negatives ever. *)
      for i = 0 to n - 1 do
        check "member" true (Filter.mem f (rid (2 * i)))
      done;
      (* Exact filters have no false positives either. *)
      if Filter.is_exact f then
        for i = 0 to n - 1 do
          check "non-member" false (Filter.mem f (rid ((2 * i) + 1)))
        done)
    [ 3; 30; 300 ]

let prop_sorted_array_matches_model =
  QCheck.Test.make ~name:"to_sorted_array equals sorted dedup of adds" ~count:80
    QCheck.(pair (int_range 21 80) (list (int_bound 500)))
    (fun (budget, adds) ->
      let pool = Rdb_storage.Buffer_pool.create ~capacity:256 () in
      let meter = Rdb_storage.Cost.create () in
      let l = Rid_list.create ~memory_budget:budget pool meter in
      List.iter (fun i -> Rid_list.add l (rid i)) adds;
      let got = Array.to_list (Rid_list.to_sorted_array l) in
      let want =
        List.sort_uniq Rid.compare (List.map rid adds)
      in
      List.length got = List.length want && List.for_all2 Rid.equal got want)

let () =
  Alcotest.run "rdb_rid"
    [
      ( "bitmap",
        [
          Alcotest.test_case "no false negatives" `Quick test_bitmap_no_false_negatives;
          Alcotest.test_case "false positive rate" `Quick test_bitmap_false_positive_rate;
          Alcotest.test_case "sizing" `Quick test_bitmap_sizing;
        ] );
      ( "filter",
        [
          Alcotest.test_case "exact" `Quick test_filter_exact;
          Alcotest.test_case "hashed one-sided" `Quick test_filter_hashed_one_sided;
        ] );
      ( "rid_list",
        [
          Alcotest.test_case "inline tier" `Quick test_inline_tier;
          Alcotest.test_case "buffer promotion" `Quick test_buffer_promotion;
          Alcotest.test_case "spill promotion" `Quick test_spill_promotion;
          Alcotest.test_case "filter kind per tier" `Quick test_filter_kind_follows_tier;
          Alcotest.test_case "sorted array all tiers" `Quick test_to_sorted_array_all_tiers;
          Alcotest.test_case "dedup" `Quick test_to_sorted_array_dedups;
          Alcotest.test_case "sealed" `Quick test_add_after_seal_rejected;
          Alcotest.test_case "filter membership" `Quick test_filter_membership_matches_contents;
          QCheck_alcotest.to_alcotest prop_sorted_array_matches_model;
        ] );
    ]

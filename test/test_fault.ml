(* Tests for the fault injector and the degradation policies it
   drives: injector-off neutrality, rows-invariance under transient
   faults, quarantine / fallback / abort / quota policies with their
   trace events, and buffer-pool invariants under random fault/flush
   interleavings. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage
module Btree = Rdb_btree.Btree
module Estimate = Rdb_btree.Estimate
module R = Rdb_core.Retrieval
module Executor = Rdb_sql.Executor

let check = Alcotest.(check bool)

let schema =
  Schema.make
    [
      Schema.col "ID" Value.T_int;
      Schema.col "X" Value.T_int;
      Schema.col "Y" Value.T_int;
      Schema.col "S" Value.T_str;
    ]

type fixture = { table : Table.t; pool : Buffer_pool.t }

let fixture ?(rows = 2000) ?(pool_capacity = 1024) ?(seed = 11) () =
  let pool = Buffer_pool.create ~capacity:pool_capacity () in
  let table = Table.create ~page_bytes:1024 pool ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed in
  for i = 0 to rows - 1 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  ignore (Table.create_index table ~name:"Y_IDX" ~columns:[ "Y" ] ());
  { table; pool }

let oracle f pred =
  let m = Cost.create () in
  let out = ref [] in
  Heap_file.iter (Table.heap f.table) m (fun _ row ->
      if Predicate.eval pred schema row then out := row :: !out);
  List.rev !out

let sort_rows rows = List.sort (fun a b -> Row.compare_at [| 0 |] a b) rows

let index_file f name =
  Btree.file_id (Option.get (Table.find_index f.table name)).Table.tree

let heap_file f = Heap_file.file_id (Table.heap f.table)

let has_event pred trace = List.exists pred trace

let degradation_event = function
  | Trace.Fault_detected _ | Trace.Index_quarantined _ | Trace.Fallback_tscan _ ->
      true
  | _ -> false

(* --- injector-off neutrality -------------------------------------------- *)

(* A pool carrying a null-plan injector must behave and cost exactly
   like a pool with no injector at all: the injector only turns charge
   points into fault points, it never adds charges of its own. *)
let test_null_injector_cost_identical () =
  let run with_injector =
    let f = fixture () in
    if with_injector then
      Buffer_pool.set_injector f.pool (Some (Fault.create Fault.null_plan));
    let open Predicate in
    let pred = And [ "X" <% Value.int 20; "Y" <% Value.int 400 ] in
    let rows, s = R.run f.table (R.request pred) in
    (sort_rows rows, s.R.total_cost, s.R.status)
  in
  let rows_off, cost_off, status_off = run false in
  let rows_on, cost_on, status_on = run true in
  check "rows identical" true (rows_off = rows_on);
  check "cost identical" true (cost_off = cost_on);
  check "both completed" true (status_off = R.Completed && status_on = R.Completed)

(* --- rows invariant under transient faults ------------------------------- *)

(* Transient faults perturb cost (retry penalties, interleave shifts)
   but never the result set: retries resume from unchanged scan
   positions.  Rates stay low enough that the bounded retry never
   spuriously escalates a heap fault into an abort. *)
let prop_transient_rows_invariant =
  QCheck.Test.make ~name:"rows invariant under transient faults" ~count:8
    QCheck.(pair (float_range 0.01 0.15) (int_range 1 1000))
    (fun (rate, seed) ->
      let f = fixture () in
      let open Predicate in
      let pred = And [ "X" <% Value.int 30; "Y" <% Value.int 500 ] in
      let expected = sort_rows (oracle f pred) in
      Buffer_pool.flush f.pool;
      let inj =
        Fault.create (Fault.plan ~transient_read_rate:rate ~seed ())
      in
      Buffer_pool.set_injector f.pool (Some inj);
      let rows, s = R.run f.table (R.request pred) in
      Buffer_pool.set_injector f.pool None;
      s.R.status = R.Completed && sort_rows rows = expected)

(* --- quarantine (background party) --------------------------------------- *)

(* A Jscan whose second index lives on a dead file: the first scan
   completes, the second faults persistently, [run] quarantines it and
   the competition finishes with what it has. *)
let test_jscan_quarantines_dead_index () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" =% Value.int 7; "Y" <% Value.int 300 ] in
  let candidate name =
    let idx = Option.get (Table.find_index f.table name) in
    let e = Range_extract.for_index pred idx in
    {
      Scan.idx;
      ranges = e.Range_extract.ranges;
      residual = e.Range_extract.residual;
      est =
        (let m = Cost.create () in
         (Estimate.ranges idx.Table.tree m e.Range_extract.ranges).Estimate.estimate);
      est_exact = false;
    }
  in
  (* Build candidates while the pool is healthy, then kill Y_IDX. *)
  let candidates = [ candidate "X_IDX"; candidate "Y_IDX" ] in
  Buffer_pool.flush f.pool;
  let inj =
    Fault.create
      (Fault.plan ~persistent_files:[ index_file f "Y_IDX" ] ~seed:1 ())
  in
  Buffer_pool.set_injector f.pool (Some inj);
  let m = Cost.create () in
  let trace = Trace.create () in
  let j = Jscan.create f.table m Jscan.default_config trace ~candidates in
  let outcome = Jscan.run j in
  Buffer_pool.set_injector f.pool None;
  check "quarantine traced" true
    (has_event
       (function Trace.Index_quarantined { index = "Y_IDX"; _ } -> true | _ -> false)
       (Trace.events trace));
  check "persistent fault recorded" true (Fault.injected_persistent inj > 0);
  (* The X scan's list survives; retrieving by it (with the residual
     re-checked on fetched rows) still yields exactly the oracle. *)
  match outcome with
  | Jscan.Recommend_tscan _ -> Alcotest.fail "healthy scan should have completed"
  | Jscan.Rid_list rids ->
      let m = Cost.create () in
      let fin =
        Final_stage.create f.table m ~rids ~restriction:pred
          ~exclude:(fun _ -> false)
      in
      let rows = ref [] in
      let rec drain () =
        match Final_stage.step fin with
        | Scan.Deliver (_, row) ->
            rows := row :: !rows;
            drain ()
        | Scan.Continue -> drain ()
        | Scan.Done -> ()
        | Scan.Failed fl -> raise (Fault.Injected fl)
      in
      drain ();
      check "rows match oracle after quarantine" true
        (sort_rows !rows = sort_rows (oracle f pred))

(* A full retrieval degrades around a dead index without the query
   ever failing, and says so in the trace. *)
let test_retrieval_survives_dead_index () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" <% Value.int 20; "Y" <% Value.int 400 ] in
  let expected = sort_rows (oracle f pred) in
  Buffer_pool.flush f.pool;
  let inj =
    Fault.create
      (Fault.plan ~persistent_files:[ index_file f "X_IDX" ] ~seed:2 ())
  in
  Buffer_pool.set_injector f.pool (Some inj);
  let rows, s = R.run f.table (R.request pred) in
  Buffer_pool.set_injector f.pool None;
  check "completed" true (s.R.status = R.Completed);
  check "rows match oracle" true (sort_rows rows = expected);
  check "degradation traced" true (has_event degradation_event s.R.trace);
  check "faults recorded" true (Fault.injected_persistent inj > 0)

(* --- corruption ---------------------------------------------------------- *)

let test_corrupt_leaf_detected_and_survived () =
  let f = fixture () in
  let tree = (Option.get (Table.find_index f.table "X_IDX")).Table.tree in
  let leaf = List.hd (Btree.leaf_blocks tree) in
  let open Predicate in
  let pred = "X" <% Value.int 15 in
  let expected = sort_rows (oracle f pred) in
  let inj =
    Fault.create
      (Fault.plan ~corrupt_blocks:[ (Btree.file_id tree, leaf) ] ~seed:3 ())
  in
  Buffer_pool.set_injector f.pool (Some inj);
  (* Checksums are lazily established: a first cold pass under the
     injector computes them (a freshly built leaf is dirty), a second
     cold pass verifies them — that is where the planned scramble
     fires. *)
  Buffer_pool.flush f.pool;
  ignore (R.run f.table (R.request pred));
  Buffer_pool.flush f.pool;
  let rows, s = R.run f.table (R.request pred) in
  Buffer_pool.set_injector f.pool None;
  check "completed" true (s.R.status = R.Completed);
  check "rows match oracle" true (sort_rows rows = expected);
  check "corruption detected" true (Fault.injected_corrupt inj >= 1);
  check "degradation traced" true (has_event degradation_event s.R.trace)

(* --- heap abort ---------------------------------------------------------- *)

let test_dead_heap_aborts_structurally () =
  let f = fixture () in
  Buffer_pool.flush f.pool;
  let inj =
    Fault.create (Fault.plan ~persistent_files:[ heap_file f ] ~seed:4 ())
  in
  Buffer_pool.set_injector f.pool (Some inj);
  let rows, s = R.run f.table (R.request Predicate.True) in
  Buffer_pool.set_injector f.pool None;
  check "no rows" true (rows = []);
  (match s.R.status with
  | R.Aborted _ -> ()
  | _ -> Alcotest.fail "dead heap must abort");
  check "abort traced" true
    (has_event (function Trace.Query_aborted _ -> true | _ -> false) s.R.trace)

(* --- spill exhaustion ----------------------------------------------------- *)

(* Temp-space exhaustion at a deterministic point: the smallest legal
   RID-list memory budget forces the background lists to spill, and a
   zero spill-write budget makes the very first spill-block write fail
   with [Spill_full] (competition checks are pushed out of the way so
   the scans actually complete and seal their lists).  Spill files
   back no structure, so the faulted lists are discarded and the
   retrieval falls back — never an abort: the rows still match the
   oracle. *)
let test_spill_exhaustion_falls_back () =
  let f = fixture () in
  let open Predicate in
  let pred = And [ "X" <% Value.int 30; "Y" <% Value.int 500 ] in
  let expected = sort_rows (oracle f pred) in
  Buffer_pool.flush f.pool;
  let inj = Fault.create (Fault.plan ~spill_write_budget:0 ~seed:5 ()) in
  Buffer_pool.set_injector f.pool (Some inj);
  let cfg =
    {
      R.default_config with
      R.jscan =
        {
          Jscan.default_config with
          Jscan.memory_budget = 20;
          check_every = 1_000_000;
        };
    }
  in
  let rows, s = R.run ~config:cfg f.table (R.request pred) in
  Buffer_pool.set_injector f.pool None;
  check "completed" true (s.R.status = R.Completed);
  check "rows match oracle" true (sort_rows rows = expected);
  check "spill exhaustion fired" true (Fault.injected_spill inj >= 1);
  check "degradation traced" true (has_event degradation_event s.R.trace)

(* --- corrupt heap exit ---------------------------------------------------- *)

(* A corrupt heap page aborts queries (no degradation path around the
   heap), but it is not an absorbing state: REPAIR TABLE rewrites the
   page — restamping its checksum from the live slots — after which
   queries complete and the heap is marked healthy again. *)
let test_corrupt_heap_healed_by_repair () =
  let db = Database.create ~pool_capacity:256 () in
  let pool = Database.pool db in
  let table = Database.create_table db ~page_bytes:1024 ~name:"T" schema in
  let rng = Rdb_util.Prng.create ~seed:11 in
  for i = 0 to 1999 do
    ignore
      (Table.insert table
         [|
           Value.int i;
           Value.int (Rdb_util.Prng.int rng 100);
           Value.int (Rdb_util.Prng.int rng 1000);
           Value.str (Printf.sprintf "s%05d" i);
         |])
  done;
  ignore (Table.create_index table ~name:"X_IDX" ~columns:[ "X" ] ());
  let open Predicate in
  let pred = "X" <% Value.int 15 in
  let expected =
    let m = Cost.create () in
    let out = ref [] in
    Heap_file.iter (Table.heap table) m (fun _ row ->
        if Predicate.eval pred schema row then out := row :: !out);
    sort_rows !out
  in
  let heap = Heap_file.file_id (Table.heap table) in
  let inj = Fault.create (Fault.plan ~corrupt_blocks:[ (heap, 0) ] ~seed:6 ()) in
  Buffer_pool.set_injector pool (Some inj);
  (* first cold pass stamps the lazily-established checksums; the
     second verifies them and hits the planned scramble *)
  Buffer_pool.flush pool;
  ignore (R.run table (R.request pred));
  Buffer_pool.flush pool;
  let rows, s = R.run table (R.request pred) in
  check "corrupt heap aborts" true
    (match s.R.status with R.Aborted _ -> true | _ -> false);
  check "no rows from aborted query" true (rows = []);
  check "corruption detected" true (Fault.injected_corrupt inj >= 1);
  (* the exit: REPAIR TABLE rewrites the page, with the injector still
     live — the scramble fires once, the rewrite heals it for good *)
  let r = Executor.execute_sql db "REPAIR TABLE T" in
  (match r.Executor.message with
  | Some m ->
      check "repair reports the rewrite" true
        (String.length m >= 7
        && (let rec has i =
              i + 7 <= String.length m
              && (String.sub m i 7 = "rewrote" || has (i + 1))
            in
            has 0))
  | None -> Alcotest.fail "REPAIR TABLE returned no message");
  Buffer_pool.flush pool;
  let rows, s = R.run table (R.request pred) in
  Buffer_pool.set_injector pool None;
  check "completed after repair" true (s.R.status = R.Completed);
  check "rows match oracle after repair" true (sort_rows rows = expected);
  check "heap healthy again" true
    (Health.state (Table.health table) Table.heap_structure = Health.Healthy)

(* --- cost-quota governor -------------------------------------------------- *)

let test_quota_cancels_at_quantum_boundary () =
  let f = fixture () in
  (* Cold pool: the full scan must pay physical reads, so a tiny quota
     is exceeded partway through the stream. *)
  Buffer_pool.flush f.pool;
  let quota = 10.0 in
  let cfg = { R.default_config with R.cost_quota = Some quota } in
  let rows, s = R.run ~config:cfg f.table (R.request Predicate.True) in
  (match s.R.status with
  | R.Cancelled_quota { spent; quota = q } ->
      check "reported quota" true (q = quota);
      check "spent beyond quota" true (spent > quota)
  | _ -> Alcotest.fail "tiny quota must cancel");
  check "quota traced" true
    (has_event (function Trace.Quota_exceeded _ -> true | _ -> false) s.R.trace);
  check "truncated" true
    (List.length rows < List.length (oracle f Predicate.True))

(* --- pool invariants under fault/flush interleavings ---------------------- *)

let prop_pool_invariants_under_faults =
  QCheck.Test.make ~name:"pool residency/meters under fault interleavings"
    ~count:6 QCheck.(int_range 1 1000)
    (fun seed ->
      let f = fixture ~rows:600 ~pool_capacity:64 () in
      let inj =
        Fault.create (Fault.plan ~transient_read_rate:0.1 ~seed ())
      in
      Buffer_pool.set_injector f.pool (Some inj);
      let rng = Rdb_util.Prng.create ~seed:(seed + 1) in
      let meter = Buffer_pool.global_meter f.pool in
      let last_phys = ref (Cost.physical_reads meter) in
      let last_log = ref (Cost.logical_reads meter) in
      let ok = ref true in
      let assert_invariants () =
        if Buffer_pool.resident f.pool > Buffer_pool.capacity f.pool then
          ok := false;
        let p = Cost.physical_reads meter and l = Cost.logical_reads meter in
        if p < !last_phys || l < !last_log then ok := false;
        last_phys := p;
        last_log := l
      in
      for _ = 1 to 12 do
        (match Rdb_util.Prng.int rng 4 with
        | 0 -> Buffer_pool.flush f.pool
        | 1 -> Buffer_pool.evict_file f.pool (heap_file f)
        | _ ->
            let open Predicate in
            let x = Rdb_util.Prng.int rng 80 in
            let rows, s =
              R.run f.table (R.request ("X" <% Value.int x))
            in
            if s.R.status <> R.Completed then ok := false;
            (* the oracle itself must run fault-free *)
            Buffer_pool.set_injector f.pool None;
            let expected = sort_rows (oracle f ("X" <% Value.int x)) in
            Buffer_pool.set_injector f.pool (Some inj);
            if sort_rows rows <> expected then ok := false);
        assert_invariants ()
      done;
      Buffer_pool.set_injector f.pool None;
      !ok)

let () =
  Alcotest.run "rdb_fault"
    [
      ( "injector",
        [
          Alcotest.test_case "null injector is cost-identical" `Quick
            test_null_injector_cost_identical;
          QCheck_alcotest.to_alcotest prop_transient_rows_invariant;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "jscan quarantines dead index" `Quick
            test_jscan_quarantines_dead_index;
          Alcotest.test_case "retrieval survives dead index" `Quick
            test_retrieval_survives_dead_index;
          Alcotest.test_case "corrupt leaf detected and survived" `Quick
            test_corrupt_leaf_detected_and_survived;
          Alcotest.test_case "dead heap aborts structurally" `Quick
            test_dead_heap_aborts_structurally;
          Alcotest.test_case "spill exhaustion falls back" `Quick
            test_spill_exhaustion_falls_back;
          Alcotest.test_case "corrupt heap healed by REPAIR TABLE" `Quick
            test_corrupt_heap_healed_by_repair;
          Alcotest.test_case "quota cancels at quantum boundary" `Quick
            test_quota_cancels_at_quantum_boundary;
        ] );
      ( "pool",
        [ QCheck_alcotest.to_alcotest prop_pool_invariants_under_faults ] );
    ]

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type submission = {
  sub_label : string option;
  sub_config : Retrieval.config option;
  sub_limit : int option;
  sub_quota : float option;
  sub_deadline : float option;
  sub_arrive_at : int;
  sub_table : Table.t;
  sub_request : Retrieval.request;
}

let query ?label ?config ?limit ?quota ?deadline ?(arrive_at = 0) table request =
  {
    sub_label = label;
    sub_config = config;
    sub_limit = limit;
    sub_quota = quota;
    sub_deadline = deadline;
    sub_arrive_at = arrive_at;
    sub_table = table;
    sub_request = request;
  }

type actions = {
  act_orphans : (string * string * int) list;
  act_requarantined : (string * string * int) list;
  act_rebuilds : (string * string) list;
}

let crash_teardown db =
  let pool = Database.pool db in
  Buffer_pool.flush pool;
  (match Buffer_pool.metrics pool with
  | None -> ()
  | Some m -> Rdb_util.Metrics.reset m);
  List.iter Table.reset_volatile (Database.tables db)

let recover ?trace db =
  let emit e = match trace with None -> () | Some t -> Trace.emit t e in
  let pool = Database.pool db in
  let manifest = Buffer_pool.manifest pool in
  (* 1. Orphan side trees: rebuilds that died [Building] never swapped
     anything in — drop their blocks and flip the record to [Aborted]
     so a second recovery pass finds nothing. *)
  let orphans =
    List.map
      (fun rb ->
        Buffer_pool.evict_file pool rb.Manifest.rb_side_file;
        Manifest.abort_rebuild manifest rb.Manifest.rb_id;
        emit
          (Trace.Orphan_discarded
             { index = rb.Manifest.rb_index; side_file = rb.Manifest.rb_side_file });
        (rb.Manifest.rb_table, rb.Manifest.rb_index, rb.Manifest.rb_side_file))
      (Manifest.orphans manifest)
  in
  (* 2. Restore the health registry from the persisted verdicts: the
     restart must not silently trust a structure the previous
     incarnation proved dead.  Backoff budgets are re-derived from the
     escalation counts. *)
  let restore table ~escalations structure =
    Health.restore_quarantined (Table.health table) ~now:(Table.now table)
      ~escalations structure;
    emit (Trace.Quarantine_restored { structure; escalations })
  in
  let verdicts = Manifest.quarantines manifest in
  let from_verdicts =
    List.filter_map
      (fun (tbl, structure, escalations) ->
        match Database.find_table db tbl with
        | None -> None
        | Some table ->
            restore table ~escalations structure;
            Some (tbl, structure, escalations))
      verdicts
  in
  (* An orphaned index with no prior verdict (the rebuild was elective)
     is conservatively re-quarantined: its committed tree may be stale
     relative to whatever prompted the rebuild, and the resubmitted
     rebuild is its recovery path. *)
  let from_orphans =
    List.filter_map
      (fun (tbl, idx, _) ->
        if List.exists (fun (t2, s2, _) -> t2 = tbl && s2 = idx) verdicts then None
        else
          match Database.find_table db tbl with
          | None -> None
          | Some table ->
              restore table ~escalations:0 idx;
              Some (tbl, idx, 0))
      orphans
  in
  let requarantined = List.sort compare (from_verdicts @ from_orphans) in
  (* 3. Every restored-quarantined structure that is an index gets its
     rebuild resubmitted — recovery restores service, it does not just
     restore suspicion.  The heap cannot be rebuilt from itself; its
     exits stay the re-probe and the REPAIR TABLE page rewrite. *)
  let rebuilds =
    List.sort_uniq compare
      (List.filter_map
         (fun (tbl, structure, _) ->
           match Database.find_table db tbl with
           | None -> None
           | Some table -> (
               match Table.find_index table structure with
               | Some _ -> Some (tbl, structure)
               | None -> None))
         requarantined)
  in
  List.iter (fun (_, idx) -> emit (Trace.Rebuild_resubmitted { index = idx })) rebuilds;
  { act_orphans = orphans; act_requarantined = requarantined; act_rebuilds = rebuilds }

(* --- the epoch supervisor --------------------------------------------- *)

type epoch_report = {
  ep_index : int;
  ep_report : Session.report;
  ep_actions : actions option;
}

type final = {
  f_label : string;
  f_outcome : Session.outcome option;
  f_rows : Row.t list;
  f_lost_count : int;
}

type report = {
  r_epochs : epoch_report list;
  r_submitted : int;
  r_served : int;
  r_shed : int;
  r_timed_out : int;
  r_unresolved : int;
  r_crashes : int;
  r_reissues : int;
  r_finals : final list;
  r_trace : Trace.event list;
}

type entry = {
  e_sub : submission;
  e_label : string;
  mutable e_lost : int;
  mutable e_final : Session.outcome option;
  mutable e_rows : Row.t list;
}

let run ?(config = Session.default_config) ?(crashes = []) ?(repairs = []) db subs =
  let entries =
    List.mapi
      (fun i s ->
        let label =
          match s.sub_label with Some l -> l | None -> Printf.sprintf "q%d" i
        in
        { e_sub = s; e_label = label; e_lost = 0; e_final = None; e_rows = [] })
      subs
  in
  let crashes = Array.of_list crashes in
  let trace = Trace.create () in
  let pending_repairs =
    ref (List.map (fun (tbl, idx) -> ("repair:" ^ idx, tbl, idx)) repairs)
  in
  let epochs = ref [] in
  let epoch = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let points =
      if !epoch < Array.length crashes then crashes.(!epoch) else []
    in
    let sched =
      Session.create ~config:{ config with Session.crash_points = points } db
    in
    (* Re-admit every unresolved journal entry, in submission order.
       Terminal outcomes stand — a crash never un-serves a query. *)
    let submitted =
      List.filter_map
        (fun e ->
          if e.e_final <> None then None
          else begin
            if !epoch > 0 then
              Trace.emit trace (Trace.Reissued { label = e.e_label; epoch = !epoch });
            let arrive_at = if !epoch = 0 then e.e_sub.sub_arrive_at else 0 in
            let id =
              Session.submit sched ~label:e.e_label ?config:e.e_sub.sub_config
                ?limit:e.e_sub.sub_limit ?quota:e.e_sub.sub_quota
                ?deadline:e.e_sub.sub_deadline ~arrive_at e.e_sub.sub_table
                e.e_sub.sub_request
            in
            Some (e, id)
          end)
        entries
    in
    List.iter
      (fun (label, tbl, idx) ->
        ignore (Session.submit_repair sched ~label tbl ~index:idx))
      !pending_repairs;
    let rep = Session.run sched in
    List.iter
      (fun (e, id) ->
        match
          List.find_opt (fun s -> s.Session.s_id = id) rep.Session.sessions
        with
        | None -> ()
        | Some s -> (
            match s.Session.s_outcome with
            | Session.Lost _ -> e.e_lost <- e.e_lost + 1
            | o ->
                e.e_final <- Some o;
                e.e_rows <- Session.rows_of sched id))
      submitted;
    let crash_tick = rep.Session.pool.Session.p_crash_tick in
    let actions =
      match crash_tick with
      | None ->
          (* Clean epoch: whatever repairs ran are done (their result is
             in the report and the manifest); nothing pends. *)
          pending_repairs := [];
          None
      | Some tick ->
          Trace.emit trace
            (Trace.Crash
               { epoch = !epoch; tick; lost = rep.Session.pool.Session.p_lost });
          crash_teardown db;
          let acts = recover ~trace db in
          ignore (Manifest.begin_epoch (Buffer_pool.manifest (Database.pool db)));
          pending_repairs :=
            List.filter_map
              (fun (tbl, idx) ->
                match Database.find_table db tbl with
                | None -> None
                | Some table -> Some ("recover:" ^ idx, table, idx))
              acts.act_rebuilds;
          Some acts
    in
    epochs := { ep_index = !epoch; ep_report = rep; ep_actions = actions } :: !epochs;
    let unresolved = List.exists (fun e -> e.e_final = None) entries in
    (* A crash-free epoch resolves everything it admitted; the schedule
       is finite, so the loop always reaches one. *)
    continue_ := crash_tick <> None && (unresolved || !pending_repairs <> []);
    incr epoch
  done;
  let finals =
    List.map
      (fun e ->
        {
          f_label = e.e_label;
          f_outcome = e.e_final;
          f_rows = e.e_rows;
          f_lost_count = e.e_lost;
        })
      entries
  in
  let count pred = List.length (List.filter pred finals) in
  let epochs = List.rev !epochs in
  {
    r_epochs = epochs;
    r_submitted = List.length finals;
    r_served = count (fun f -> f.f_outcome = Some Session.Served);
    r_shed =
      count (fun f -> match f.f_outcome with Some (Session.Shed _) -> true | _ -> false);
    r_timed_out =
      count (fun f ->
          match f.f_outcome with Some (Session.Timed_out _) -> true | _ -> false);
    r_unresolved = count (fun f -> f.f_outcome = None);
    r_crashes =
      List.length (List.filter (fun ep -> ep.ep_actions <> None) epochs);
    r_reissues = List.fold_left (fun acc f -> acc + f.f_lost_count) 0 finals;
    r_finals = finals;
    r_trace = Trace.events trace;
  }

let seeded_crashes ~seed ~epochs ~max_tick =
  if epochs < 0 then invalid_arg "Recovery.seeded_crashes: epochs < 0";
  if max_tick < 1 then invalid_arg "Recovery.seeded_crashes: max_tick < 1";
  let rng = Rdb_util.Prng.create ~seed in
  List.init epochs (fun _ ->
      [ Session.Crash_at_grant (Rdb_util.Prng.int_in rng 1 max_tick) ])

let report_to_string r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ep ->
      Buffer.add_string buf (Printf.sprintf "== epoch %d ==\n" ep.ep_index);
      Buffer.add_string buf (Session.report_to_string ep.ep_report);
      match ep.ep_actions with
      | None -> ()
      | Some a ->
          Buffer.add_string buf
            (Printf.sprintf
               "recovery: %d orphan side trees discarded, %d quarantines restored, \
                %d rebuilds resubmitted\n"
               (List.length a.act_orphans)
               (List.length a.act_requarantined)
               (List.length a.act_rebuilds)))
    r.r_epochs;
  Buffer.add_string buf "journal:\n";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %s%s\n" f.f_label
           (match f.f_outcome with
           | Some o -> Session.outcome_to_string o
           | None -> "unresolved")
           (if f.f_lost_count > 0 then
              Printf.sprintf " (lost %d time%s, reissued)" f.f_lost_count
                (if f.f_lost_count = 1 then "" else "s")
            else "")))
    r.r_finals;
  Buffer.add_string buf
    (Printf.sprintf
       "recovery ledger: %d served + %d shed + %d timed out + %d unresolved = %d \
        submitted (%d crashes, %d reissues)\n"
       r.r_served r.r_shed r.r_timed_out r.r_unresolved r.r_submitted r.r_crashes
       r.r_reissues);
  Buffer.contents buf

(** Dynamic single-table retrieval (§4, §7; Figure 4).

    The public face of the dynamic optimizer.  A retrieval is opened
    with a (possibly parameterized) restriction, an optimization-goal
    context, and an optional requested order; the engine then:

    + binds host variables and runs the §5 initial stage (estimation,
      candidate arrangement, empty-range cancellation);
    + picks a tactic — static Tscan/Sscan/Fscan where the choice is
      clear, otherwise one of the §7 competition tactics
      (background-only, fast-first, sorted, index-only);
    + interleaves the foreground and background processes at
      cost-proportional speeds, switching strategies when competition
      criteria fire;
    + delivers rows through a cursor that the caller may abandon at
      any point (early termination is what makes fast-first real).

    Every decision is recorded in the {!Rdb_exec.Trace}. *)

open Rdb_data
open Rdb_engine
open Rdb_exec

type config = {
  jscan : Jscan.config;
  fgr_buffer_cap : int;
      (** foreground delivered-RID buffer capacity; overflow stops the
          foreground (fast-first) or the background (index-only) *)
  fgr_waste_cap : float;
      (** stop the fast-first foreground when its wasted-fetch cost
          exceeds this fraction of the guaranteed best *)
  speed_ratio : float;
      (** foreground:background cost-speed ratio (1.0 = equal, the
          optimum under hyperbolic cost distributions [Ant91B]) *)
  default_goal : Goal.t;
  retry_limit : int;
      (** max consecutive transient-fault retries per access before the
          fault is treated as persistent (quarantine / fallback) *)
  batch_budget : float;
      (** cost budget per cursor batch (the {!Rdb_exec.Scan.cursor}
          quantum).  [0.] — the default — runs one machine step per
          batch, the row-at-a-time protocol; larger budgets amortize
          per-step dispatch and buffer-pool probes on hot loops.  Like
          every config knob this steers cost only: delivered rows,
          their order, and the charged totals are identical across
          budgets (pinned by the batch-invariance properties in
          [test_exec] / [test_oracle] and [bench -e batch]) *)
  bgr_enabled : bool;
      (** [false] drops the {e competitive} background-refinement arms:
          the index-only tactic degrades to its foreground Sscan and
          the sorted tactic to its foreground Fscan.  Tactics whose
          background is the sole row source (background-only, union,
          fast-first) are unaffected — under pressure the scheduler
          uses this as the first graceful-degradation rung while
          fast-first LIMIT probes keep their refinement.  Like every
          config knob it steers cost, never results: rows and their
          order are invariant.  Default [true] *)
  cost_quota : float option;
      (** per-query cost ceiling, checked at quantum boundaries; [None]
          disables the governor *)
  feedback_rate : float;
      (** learning rate for the table's cardinality-feedback store
          (DESIGN.md §13; 0..1).  At the default [0.] the loop is off:
          no corrections, no observations, no [Feedback_applied]
          events — byte-identical traces and metrics to a build
          without it.  At positive rates the initial stage scales
          inexact descent estimates by the factors learned from
          completed scans, and {!close} folds each completed scan's
          actual cardinality back into {!Rdb_engine.Feedback}.  Like
          every config knob it steers cost, never results: rows and
          their order are invariant under any rate *)
  metrics : Rdb_util.Metrics.t option;
      (** observation-only registry: tactic choices, per-arm costs,
          switch points, and estimate-vs-actual error are recorded at
          {!close}; [None] — the default — records nothing and changes
          nothing *)
}

val default_config : config

type request = {
  restriction : Predicate.t;
  env : Predicate.env;
  explicit_goal : Goal.t option;  (** OPTIMIZE FOR ... *)
  context : Goal.controlling_node option;  (** for goal inference *)
  order_by : string list;
  projection : string list option;  (** [None] = all columns *)
}

val request :
  ?env:Predicate.env ->
  ?explicit_goal:Goal.t ->
  ?context:Goal.controlling_node ->
  ?order_by:string list ->
  ?projection:string list ->
  Predicate.t ->
  request

type tactic_kind =
  | Static_tscan
  | Static_sscan
  | Static_fscan
  | Background_only
  | Fast_first_tactic
  | Sorted_tactic
  | Index_only_tactic
  | Union_tactic
      (** covered OR: one index scan per disjunct, union RID list —
          the §7 "covering ORs" extension *)
  | Cancelled  (** §5 empty-range cancellation *)

val tactic_to_string : tactic_kind -> string

type status =
  | Completed  (** normal exhaustion or caller close *)
  | Cancelled_quota of { spent : float; quota : float }
      (** the cost-quota governor stopped the query at a quantum
          boundary *)
  | Timed_out of { spent : float; deadline : float }
      (** a scheduler-imposed cost deadline cancelled the session at a
          grant boundary ({!note_deadline}); delivered rows stand *)
  | Aborted of { fault : string }
      (** the heap itself is unreadable — no degradation path left *)

val status_to_string : status -> string

type summary = {
  rows_delivered : int;
  total_cost : float;
  cost_to_first_row : float option;
  tactic : tactic_kind;
  goal : Goal.t;
  goal_provenance : string;
  policy : string;
      (** the fault-policy ladder this retrieval armed, as rung names
          joined with [" ⇒ "] (e.g. ["retry(8) ⇒ quarantine ⇒
          abort-heap ⇒ tscan-fallback"]) — EXPLAIN's [policy:] line.
          Always equal to [policy_description ~config tactic]. *)
  status : status;
  trace : Trace.event list;
}

val policy_description : ?config:config -> tactic_kind -> string
(** The degradation ladder a given tactic kind arms (DESIGN.md §17),
    without opening a cursor: bounded transient retry first, then —
    per tactic — background quarantine, the structured heap abort,
    and the Tscan fallback for foreground index paths.  Kept in
    lockstep with the armed {!Rdb_exec.Tactic.Policy} stack (pinned
    by the oracle suite's coverage test). *)

type cursor

val open_ : ?config:config -> Table.t -> request -> cursor
val fetch : cursor -> Row.t option
(** Next qualifying row; [None] when exhausted.  Rows arrive in
    requested order if [order_by] was given. *)

val fetch_pair : cursor -> (Rid.t * Row.t) option
(** Like {!fetch} but exposing the record's RID (DELETE/UPDATE drive
    this). *)

val drain_pairs : cursor -> (Rid.t * Row.t) list
(** Pump the cursor to exhaustion and return every remaining
    qualifying row in delivery order (the SQL executor's materializing
    path; Halloween-safe by construction — the scan completes before
    the caller mutates anything). *)

type step_result =
  | Step_row of Rid.t * Row.t  (** a qualifying row was delivered *)
  | Step_working  (** one quantum of work done, nothing delivered yet *)
  | Step_done  (** exhausted (or cancelled/aborted; see the summary) *)

val step : cursor -> step_result
(** Advance by exactly one cost quantum (one scan-machine step, plus
    the quota check and fault policies).  [fetch] is a loop over
    [step]; the multi-query session scheduler ({!Session}) interleaves
    cursors by calling [step] directly so that no query can hold the
    engine for longer than a bounded amount of charged cost. *)

val spent : cursor -> float
(** Total cost charged to this retrieval so far (foreground +
    background + estimation meters) — the scheduler's fairness
    currency. *)

val grant : cursor -> budget:float -> max_steps:int -> stop:(unit -> bool) -> on_row:(Row.t -> unit) -> bool
(** One scheduler grant: drive {!step} until [stop ()] holds, [budget]
    worth of cost has been charged since entry, or [max_steps] steps
    ran (all checked before each step — a spent budget grants
    nothing).  Delivered rows go to [on_row]; returns [true] iff the
    retrieval exhausted during the grant.  This is
    {!Rdb_exec.Driver.clocked_loop} over [step] — the one grant loop
    the session scheduler uses for queries and repairs alike. *)

val note_deadline : cursor -> deadline:float -> unit
(** Cooperative cancellation at a grant boundary: record that the
    session's cost deadline is spent.  The cursor stops producing
    (subsequent steps report done) and {!close} reports the structured
    {!constructor-Timed_out} status — never an exception, never an
    absorbing state; rows delivered before the deadline stand.
    Idempotent; a no-op after {!close}. *)

val rows_delivered : cursor -> int
val tactic : cursor -> tactic_kind

val close : cursor -> summary
(** May be called at any time (early termination).  Idempotent. *)

val run : ?config:config -> ?limit:int -> Table.t -> request -> Row.t list * summary
(** Convenience: open, fetch up to [limit] (all if omitted), close. *)

open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type config = {
  max_inflight : int;
  quantum : float;
  max_steps_per_quantum : int;
  starvation_bound : int;
  retrieval : Retrieval.config;
  record_events : bool;
  metrics : Rdb_util.Metrics.t option;
}

let default_config =
  {
    max_inflight = 4;
    quantum = 50.0;
    max_steps_per_quantum = 4096;
    starvation_bound = 16;
    retrieval = Retrieval.default_config;
    record_events = true;
    metrics = None;
  }

type id = int

type event =
  | Submitted of { id : id; label : string }
  | Admitted of { id : id; tick : int; waited : int }
  | Finished of { id : id; tick : int; rows : int }

type session_stats = {
  s_id : id;
  s_label : string;
  s_rows : int;
  s_quanta : int;
  s_charged : float;
  s_queue_wait : int;
  s_max_gap : int;
  s_degradations : int;
  s_summary : Retrieval.summary;
}

type pool_stats = {
  p_grants : int;
  p_physical : int;
  p_logical : int;
  p_hit_rate : float;
  p_total_cost : float;
  p_max_inflight_seen : int;
}

type report = {
  sessions : session_stats list;
  pool : pool_stats;
  events : event list;
}

(* Internal per-query record.  A query is Queued (no cursor yet: the
   plan is chosen at admission), then Active, then Done. *)
type query = {
  q_id : id;
  q_label : string;
  q_table : Table.t;
  q_request : Retrieval.request;
  q_config : Retrieval.config;
  q_limit : int option;
  mutable q_cursor : Retrieval.cursor option;
  mutable q_rows : Row.t list;  (** reversed *)
  mutable q_quanta : int;
  mutable q_charged : float;
  mutable q_queue_wait : int;
  mutable q_admitted_at : int;
  mutable q_last_grant : int;  (** tick of the last grant (or admission) *)
  mutable q_max_gap : int;
  mutable q_summary : Retrieval.summary option;
}

type t = {
  cfg : config;
  db : Database.t;
  mutable queries : query list;  (** reversed submission order *)
  mutable next_id : int;
  mutable events : event list;  (** reversed *)
  mutable ran : bool;
}

let create ?(config = default_config) db =
  if config.max_inflight < 1 then invalid_arg "Session.create: max_inflight < 1";
  if config.quantum <= 0.0 then invalid_arg "Session.create: quantum <= 0";
  { cfg = config; db; queries = []; next_id = 0; events = []; ran = false }

let emit t e = if t.cfg.record_events then t.events <- e :: t.events

let submit t ?label ?config ?limit table request =
  if t.ran then invalid_arg "Session.submit: scheduler already ran";
  let id = t.next_id in
  t.next_id <- id + 1;
  let label = match label with Some l -> l | None -> Printf.sprintf "q%d" id in
  let q =
    {
      q_id = id;
      q_label = label;
      q_table = table;
      q_request = request;
      q_config = (match config with Some c -> c | None -> t.cfg.retrieval);
      q_limit = limit;
      q_cursor = None;
      q_rows = [];
      q_quanta = 0;
      q_charged = 0.0;
      q_queue_wait = 0;
      q_admitted_at = 0;
      q_last_grant = 0;
      q_max_gap = 0;
      q_summary = None;
    }
  in
  t.queries <- q :: t.queries;
  emit t (Submitted { id; label });
  id

let degradations (s : Retrieval.summary) =
  List.length
    (List.filter
       (function
         | Trace.Fault_retry _ | Trace.Index_quarantined _ | Trace.Fallback_tscan _ ->
             true
         | _ -> false)
       s.Retrieval.trace)

(* Admission order: smallest declared cost quota first (a bounded query
   may jump an unbounded one), FIFO within a quota class. *)
let admission_key q =
  match q.q_config.Retrieval.cost_quota with
  | Some quota -> (quota, q.q_id)
  | None -> (infinity, q.q_id)

let pick_admission pending =
  match pending with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best q -> if admission_key q < admission_key best then q else best)
           first rest)

let finished q =
  match q.q_limit with
  | Some n when Option.is_some q.q_cursor ->
      Retrieval.rows_delivered (Option.get q.q_cursor) >= n
  | _ -> false

let run t =
  if t.ran then invalid_arg "Session.run: scheduler already ran";
  t.ran <- true;
  let all = List.rev t.queries in
  let pool = Database.pool t.db in
  let meter0 = Cost.snapshot (Buffer_pool.global_meter pool) in
  let pending = ref all in
  let active = ref [] in
  let tick = ref 0 in
  let max_inflight_seen = ref 0 in
  let close_query q =
    (match q.q_cursor with
    | Some c -> q.q_summary <- Some (Retrieval.close c)
    | None ->
        (* never admitted (defensive; cannot happen with max_inflight
           >= 1): open and close so the report stays total *)
        let c = Retrieval.open_ ~config:q.q_config q.q_table q.q_request in
        q.q_summary <- Some (Retrieval.close c));
    emit t (Finished { id = q.q_id; tick = !tick; rows = List.length q.q_rows })
  in
  let admit () =
    while List.length !active < t.cfg.max_inflight && !pending <> [] do
      match pick_admission !pending with
      | None -> ()
      | Some q ->
          pending := List.filter (fun p -> p.q_id <> q.q_id) !pending;
          q.q_queue_wait <- !tick;
          q.q_admitted_at <- !tick;
          q.q_last_grant <- !tick;
          (* Plan choice happens here, sequentially: competition state
             is born inside this cursor and never shared. *)
          q.q_cursor <- Some (Retrieval.open_ ~config:q.q_config q.q_table q.q_request);
          emit t (Admitted { id = q.q_id; tick = !tick; waited = !tick });
          active := !active @ [ q ];
          max_inflight_seen := max !max_inflight_seen (List.length !active)
    done
  in
  (* Least-charged-first with a starvation override: any session passed
     over for [starvation_bound] consecutive grants runs next. *)
  let pick_next () =
    match !active with
    | [] -> None
    | _ :: _ ->
        let gap q = !tick - q.q_last_grant in
        let starving =
          List.filter (fun q -> gap q >= t.cfg.starvation_bound) !active
        in
        let by_key key qs =
          List.fold_left
            (fun best q -> if key q < key best then q else best)
            (List.hd qs) qs
        in
        Some
          (match starving with
          | [] -> by_key (fun q -> (q.q_charged, q.q_id)) !active
          | qs -> by_key (fun q -> (-gap q, q.q_id)) qs)
  in
  let grant q =
    (match t.cfg.metrics with
    | None -> ()
    | Some m ->
        let module M = Rdb_util.Metrics in
        (* queue depth at grant time: runnable sessions plus those
           still waiting for admission *)
        M.observe
          (M.histogram m "session.queue_depth")
          (float_of_int (List.length !active + List.length !pending)));
    let cursor = Option.get q.q_cursor in
    let before = Retrieval.spent cursor in
    let gap = !tick - q.q_last_grant in
    q.q_max_gap <- max q.q_max_gap gap;
    q.q_last_grant <- !tick;
    incr tick;
    q.q_quanta <- q.q_quanta + 1;
    let steps = ref 0 in
    let done_ = ref (finished q) in
    while
      (not !done_)
      && Retrieval.spent cursor -. before < t.cfg.quantum
      && !steps < t.cfg.max_steps_per_quantum
    do
      incr steps;
      match Retrieval.step cursor with
      | Retrieval.Step_row (_, row) ->
          q.q_rows <- row :: q.q_rows;
          if finished q then done_ := true
      | Retrieval.Step_working -> ()
      | Retrieval.Step_done -> done_ := true
    done;
    q.q_charged <- q.q_charged +. (Retrieval.spent cursor -. before);
    if !done_ then begin
      close_query q;
      active := List.filter (fun p -> p.q_id <> q.q_id) !active
    end
  in
  admit ();
  let rec loop () =
    match pick_next () with
    | Some q ->
        grant q;
        admit ();
        loop ()
    | None -> ()
  in
  loop ();
  (* Queries never admitted (impossible today, but keep the report
     total) — close them with an opened-then-closed cursor. *)
  List.iter (fun q -> if q.q_summary = None then close_query q) all;
  let meter1 = Buffer_pool.global_meter pool in
  let physical = Cost.physical_reads meter1 - Cost.physical_reads meter0 in
  let logical = Cost.logical_reads meter1 - Cost.logical_reads meter0 in
  let sessions =
    List.map
      (fun q ->
        let summary = Option.get q.q_summary in
        {
          s_id = q.q_id;
          s_label = q.q_label;
          s_rows = List.length q.q_rows;
          s_quanta = q.q_quanta;
          s_charged = q.q_charged;
          s_queue_wait = q.q_queue_wait;
          s_max_gap = q.q_max_gap;
          s_degradations = degradations summary;
          s_summary = summary;
        })
      all
  in
  let total_cost = List.fold_left (fun acc s -> acc +. s.s_charged) 0.0 sessions in
  (match t.cfg.metrics with
  | None -> ()
  | Some m ->
      let module M = Rdb_util.Metrics in
      M.add (M.counter m "session.grants") !tick;
      M.add (M.counter m "session.queries") (List.length sessions);
      let max_gap = List.fold_left (fun acc s -> max acc s.s_max_gap) 0 sessions in
      M.set (M.gauge m "session.max_gap") (float_of_int max_gap);
      (* paper-facing fairness guarantee: how much of the bounded-wait
         budget the worst-treated session actually used up *)
      M.set
        (M.gauge m "session.starvation_margin")
        (float_of_int (t.cfg.starvation_bound - max_gap));
      M.set (M.gauge m "session.hit_rate")
        (if physical + logical = 0 then 1.0
         else float_of_int logical /. float_of_int (physical + logical));
      List.iter
        (fun s ->
          M.observe (M.histogram m "session.quanta") (float_of_int s.s_quanta);
          M.observe (M.histogram m "session.queue_wait") (float_of_int s.s_queue_wait);
          M.observe (M.histogram m "session.charged") s.s_charged)
        sessions);
  {
    sessions;
    pool =
      {
        p_grants = !tick;
        p_physical = physical;
        p_logical = logical;
        p_hit_rate =
          (if physical + logical = 0 then 1.0
           else float_of_int logical /. float_of_int (physical + logical));
        p_total_cost = total_cost;
        p_max_inflight_seen = !max_inflight_seen;
      };
    events = List.rev t.events;
  }

let rows_of t id =
  match List.find_opt (fun q -> q.q_id = id) t.queries with
  | Some q -> List.rev q.q_rows
  | None -> invalid_arg "Session.rows_of: unknown id"

let event_to_string = function
  | Submitted { id; label } -> Printf.sprintf "submitted q%d (%s)" id label
  | Admitted { id; tick; waited } ->
      Printf.sprintf "admitted q%d at grant %d (waited %d)" id tick waited
  | Finished { id; tick; rows } ->
      Printf.sprintf "finished q%d at grant %d (%d rows)" id tick rows

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "session                       rows  quanta  charged  wait  max-gap  degr  tactic / status\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %5d %7d %8.1f %5d %8d %5d  %s / %s\n" s.s_label s.s_rows
           s.s_quanta s.s_charged s.s_queue_wait s.s_max_gap s.s_degradations
           (Retrieval.tactic_to_string s.s_summary.Retrieval.tactic)
           (Retrieval.status_to_string s.s_summary.Retrieval.status)))
    r.sessions;
  Buffer.add_string buf
    (Printf.sprintf
       "pool: %d grants, %d physical + %d logical reads (hit rate %.3f), total \
        charged %.1f, max in-flight %d\n"
       r.pool.p_grants r.pool.p_physical r.pool.p_logical r.pool.p_hit_rate
       r.pool.p_total_cost r.pool.p_max_inflight_seen);
  (match r.events with
  | [] -> ()
  | evs ->
      Buffer.add_string buf "events:\n";
      List.iter (fun e -> Buffer.add_string buf ("  " ^ event_to_string e ^ "\n")) evs);
  Buffer.contents buf

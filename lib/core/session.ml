open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type shed_policy = Shed_newest | Shed_largest_quota

type crash_point = Crash_at_grant of int | Crash_at_cost of float

type config = {
  max_inflight : int;
  quantum : float;
  max_steps_per_quantum : int;
  starvation_bound : int;
  max_queue : int;
  shed_policy : shed_policy;
  pressure_threshold : int;
  pool_shards : int option;
  crash_points : crash_point list;
  retrieval : Retrieval.config;
  record_events : bool;
  metrics : Rdb_util.Metrics.t option;
}

let default_config =
  {
    max_inflight = 4;
    quantum = 50.0;
    max_steps_per_quantum = 4096;
    starvation_bound = 16;
    max_queue = max_int;
    shed_policy = Shed_newest;
    pressure_threshold = max_int;
    pool_shards = None;
    crash_points = [];
    retrieval = Retrieval.default_config;
    record_events = true;
    metrics = None;
  }

type id = int

type outcome =
  | Served
  | Timed_out of { deadline : float; spent : float }
  | Shed of { reason : string }
  | Lost of { at_tick : int }

let outcome_to_string = function
  | Served -> "served"
  | Timed_out { deadline; spent } ->
      Printf.sprintf "timed out (%.1f spent of %.1f)" spent deadline
  | Shed { reason } -> "shed: " ^ reason
  | Lost { at_tick } -> Printf.sprintf "lost to crash at grant %d" at_tick

type event =
  | Submitted of { id : id; label : string }
  | Admitted of { id : id; tick : int; waited : int }
  | Finished of { id : id; tick : int; rows : int }
  | Shed_event of { id : id; tick : int; reason : string }
  | Timed_out_event of { id : id; tick : int; spent : float; deadline : float }
  | Degraded of { id : id; tick : int; depth : int }
  | Crashed of { tick : int; lost : int }

type session_stats = {
  s_id : id;
  s_label : string;
  s_rows : int;
  s_quanta : int;
  s_charged : float;
  s_queue_wait : int;
  s_max_gap : int;
  s_degradations : int;
  s_outcome : outcome;
  s_degraded : bool;
  s_summary : Retrieval.summary option;
}

type repair_stats = {
  r_id : id;
  r_label : string;
  r_index : string;
  r_entries : int;
  r_ok : bool;
  r_quanta : int;
  r_charged : float;
  r_queue_wait : int;
  r_max_gap : int;
  r_retries : int;
  r_trace : Trace.event list;
}

type pool_stats = {
  p_grants : int;
  p_physical : int;
  p_logical : int;
  p_hit_rate : float;
  p_total_cost : float;
  p_max_inflight_seen : int;
  p_submitted : int;
  p_served : int;
  p_shed : int;
  p_timed_out : int;
  p_lost : int;
  p_crash_tick : int option;
  p_shards : int;
  p_shard_lookups : int array;
  p_lookup_balance : float;
}

type report = {
  sessions : session_stats list;
  repairs : repair_stats list;
  pool : pool_stats;
  events : event list;
}

(* Internal per-query payload.  A query is Queued (no cursor yet: the
   plan is chosen at admission), then Active, then Done.  Shed queries
   never open a cursor at all — [q_summary] stays [None]. *)
type query = {
  q_table : Table.t;
  q_request : Retrieval.request;
  q_config : Retrieval.config;
  q_limit : int option;
  mutable q_cursor : Retrieval.cursor option;
  mutable q_rows : Row.t list;  (** reversed *)
  mutable q_summary : Retrieval.summary option;
}

(* Internal per-repair payload.  The [Repair.t] is created at admission
   — that is when the index enters [Rebuilding] — mirroring the
   plan-choice-at-admission rule for queries. *)
type rjob = {
  r_rtable : Table.t;
  r_rindex : string;
  mutable r_repair : Repair.t option;
  mutable r_result : bool option;
}

type work = W_query of query | W_repair of rjob

(* One schedulable unit: the scheduling bookkeeping is shared, the
   payload differs.  Repairs are admitted, granted quanta, starved and
   reported exactly like queries — a rebuild is just another session
   competing for cost. *)
type job = {
  j_id : id;
  j_label : string;
  j_quota : float option;  (** admission-ordering key *)
  j_deadline : float option;  (** cost deadline (queries only) *)
  j_arrive_at : int;  (** grant tick at which the job joins the queue *)
  j_work : work;
  mutable j_arrived_tick : int;  (** tick at which it actually arrived *)
  mutable j_quanta : int;
  mutable j_charged : float;
  mutable j_queue_wait : int;
  mutable j_admitted_at : int;
  mutable j_last_grant : int;  (** tick of the last grant (or admission) *)
  mutable j_max_gap : int;
  mutable j_outcome : outcome option;
  mutable j_degraded : bool;
}

type t = {
  cfg : config;
  db : Database.t;
  mutable jobs : job list;  (** reversed submission order *)
  mutable next_id : int;
  mutable events : event list;  (** reversed *)
  mutable ran : bool;
}

let create ?(config = default_config) db =
  if config.max_inflight < 1 then invalid_arg "Session.create: max_inflight < 1";
  if config.quantum <= 0.0 then invalid_arg "Session.create: quantum <= 0";
  if config.max_queue < 0 then invalid_arg "Session.create: max_queue < 0";
  if config.pressure_threshold < 0 then
    invalid_arg "Session.create: pressure_threshold < 0";
  { cfg = config; db; jobs = []; next_id = 0; events = []; ran = false }

let emit t e = if t.cfg.record_events then t.events <- e :: t.events

let fresh_job t ?label ?deadline ?(arrive_at = 0) ~default_label ~quota work =
  if t.ran then invalid_arg "Session.submit: scheduler already ran";
  if arrive_at < 0 then invalid_arg "Session.submit: arrive_at < 0";
  let id = t.next_id in
  t.next_id <- id + 1;
  let label = match label with Some l -> l | None -> default_label id in
  let j =
    {
      j_id = id;
      j_label = label;
      j_quota = quota;
      j_deadline = deadline;
      j_arrive_at = arrive_at;
      j_work = work;
      j_arrived_tick = 0;
      j_quanta = 0;
      j_charged = 0.0;
      j_queue_wait = 0;
      j_admitted_at = 0;
      j_last_grant = 0;
      j_max_gap = 0;
      j_outcome = None;
      j_degraded = false;
    }
  in
  t.jobs <- j :: t.jobs;
  emit t (Submitted { id; label });
  id

let submit t ?label ?config ?limit ?quota ?deadline ?arrive_at table request =
  let q_config = match config with Some c -> c | None -> t.cfg.retrieval in
  let quota =
    match quota with Some _ as q -> q | None -> q_config.Retrieval.cost_quota
  in
  fresh_job t ?label ?deadline ?arrive_at
    ~default_label:(Printf.sprintf "q%d")
    ~quota
    (W_query
       {
         q_table = table;
         q_request = request;
         q_config;
         q_limit = limit;
         q_cursor = None;
         q_rows = [];
         q_summary = None;
       })

let submit_repair t ?label ?quota table ~index =
  (match Table.find_index table index with
  | Some _ -> ()
  | None -> invalid_arg ("Session.submit_repair: unknown index " ^ index));
  fresh_job t ?label
    ~default_label:(Printf.sprintf "repair%d")
    ~quota
    (W_repair { r_rtable = table; r_rindex = index; r_repair = None; r_result = None })

let degradations (s : Retrieval.summary) =
  List.length
    (List.filter
       (function
         | Trace.Fault_retry _ | Trace.Index_quarantined _ | Trace.Fallback_tscan _ ->
             true
         | _ -> false)
       s.Retrieval.trace)

(* Admission order: smallest declared cost quota first (a bounded query
   may jump an unbounded one), FIFO within a quota class. *)
let admission_key j =
  match j.j_quota with Some quota -> (quota, j.j_id) | None -> (infinity, j.j_id)

let pick_admission pending =
  match pending with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best j -> if admission_key j < admission_key best then j else best)
           first rest)

(* Shedding victim: [Shed_newest] drops the most recent arrival (the
   storm's marginal query), [Shed_largest_quota] drops the largest
   declared quota (unbounded work first) — ties broken newest-first so
   both policies are total orders. *)
let pick_victim policy pending =
  let key j =
    match policy with
    | Shed_newest -> (0.0, j.j_id)
    | Shed_largest_quota ->
        ((match j.j_quota with Some q -> q | None -> infinity), j.j_id)
  in
  match pending with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best j -> if key j > key best then j else best)
           first rest)

let query_finished q =
  match q.q_limit with
  | Some n when Option.is_some q.q_cursor ->
      Retrieval.rows_delivered (Option.get q.q_cursor) >= n
  | _ -> false

let job_rows j =
  match j.j_work with
  | W_query q -> List.length q.q_rows
  | W_repair r -> ( match r.r_repair with Some rp -> Repair.entries rp | None -> 0)

let run t =
  if t.ran then invalid_arg "Session.run: scheduler already ran";
  t.ran <- true;
  let all = List.rev t.jobs in
  let pool = Database.pool t.db in
  (* Repartition before the first access so every block of the run maps
     through the requested shard count.  Resharding drops residency
     (cost-only — a flush); a pool already at the requested count is
     left untouched, so [Some 1] on a fresh single-shard pool is
     byte-identical to [None]. *)
  (match t.cfg.pool_shards with
  | None -> ()
  | Some n -> if Buffer_pool.shards pool <> n then Buffer_pool.reshard pool ~shards:n);
  let meter0 = Cost.snapshot (Buffer_pool.global_meter pool) in
  let shard_lookups0 = Buffer_pool.shard_lookups pool in
  (* Everyone starts unarrived — the first [arrive] at tick 0 moves the
     arrive-at-0 submissions in, so the deadline-on-arrival check is
     one code path.  Sorted by arrival tick so each [arrive] peels a
     prefix instead of partitioning the whole remainder (the partition
     was quadratic in submissions across the run — visible at
     thousand-session storms). *)
  let unarrived =
    ref
      (List.sort
         (fun a b -> compare (a.j_arrive_at, a.j_id) (b.j_arrive_at, b.j_id))
         all)
  in
  let pending = ref [] in
  let active = ref [] in
  let tick = ref 0 in
  let max_inflight_seen = ref 0 in
  let metric_incr name =
    match t.cfg.metrics with
    | None -> ()
    | Some m ->
        let module M = Rdb_util.Metrics in
        M.incr (M.counter m name)
  in
  let finish_served j =
    (match j.j_work with
    | W_query q -> (
        match q.q_cursor with
        | Some c -> q.q_summary <- Some (Retrieval.close c)
        | None -> ())
    | W_repair r -> (
        match r.r_result with
        | Some _ -> ()
        | None ->
            let rp =
              match r.r_repair with
              | Some rp -> rp
              | None ->
                  let rp = Repair.create r.r_rtable ~index:r.r_rindex in
                  r.r_repair <- Some rp;
                  rp
            in
            r.r_result <- Some (Repair.run rp)));
    j.j_outcome <- Some Served;
    emit t (Finished { id = j.j_id; tick = !tick; rows = job_rows j })
  in
  let finish_timed_out j ~spent ~deadline =
    (match j.j_work with
    | W_query q -> (
        match q.q_cursor with
        | Some c ->
            Retrieval.note_deadline c ~deadline;
            q.q_summary <- Some (Retrieval.close c)
        | None -> ())
    | W_repair _ -> assert false (* repairs carry no deadline *));
    j.j_outcome <- Some (Timed_out { deadline; spent });
    metric_incr "session.timed_out";
    emit t (Timed_out_event { id = j.j_id; tick = !tick; spent; deadline })
  in
  let finish_shed j ~reason =
    j.j_queue_wait <- !tick - j.j_arrived_tick;
    j.j_outcome <- Some (Shed { reason });
    metric_incr "session.shed";
    emit t (Shed_event { id = j.j_id; tick = !tick; reason })
  in
  (* Move every job whose arrival tick has come into the queue.  A
     deadline that is already spent on arrival (<= 0) exits right here
     with a structured timeout: no cursor, no planning cost. *)
  let arrive () =
    let rec peel acc = function
      | j :: rest when j.j_arrive_at <= !tick -> peel (j :: acc) rest
      | rest -> (acc, rest)
    in
    let now_rev, later = peel [] !unarrived in
    unarrived := later;
    (* Process the batch in submission order (the peel yields
       arrival-tick order) so the event log is unchanged. *)
    let now = List.sort (fun a b -> compare a.j_id b.j_id) now_rev in
    List.iter
      (fun j ->
        j.j_arrived_tick <- !tick;
        match j.j_deadline with
        | Some d when d <= 0.0 -> finish_timed_out j ~spent:0.0 ~deadline:d
        | _ -> pending := !pending @ [ j ])
      now
  in
  let admit () =
    while List.length !active < t.cfg.max_inflight && !pending <> [] do
      match pick_admission !pending with
      | None -> ()
      | Some j ->
          pending := List.filter (fun p -> p.j_id <> j.j_id) !pending;
          j.j_queue_wait <- !tick - j.j_arrived_tick;
          j.j_admitted_at <- !tick;
          j.j_last_grant <- !tick;
          (* Graceful degradation: once the queue behind this admission
             is deep enough, drop the competitive background-refinement
             arms (the paper's bgr) — fast-first LIMIT probes keep
             their refinement because bgr is their only row source.
             Rows are invariant either way (Retrieval pins this). *)
          let depth = List.length !pending in
          (match j.j_work with
          | W_query q ->
              let config =
                if
                  depth >= t.cfg.pressure_threshold
                  && q.q_limit = None
                  && q.q_config.Retrieval.bgr_enabled
                then begin
                  j.j_degraded <- true;
                  metric_incr "session.degraded";
                  emit t (Degraded { id = j.j_id; tick = !tick; depth });
                  { q.q_config with Retrieval.bgr_enabled = false }
                end
                else q.q_config
              in
              (* Plan choice happens here, sequentially: competition
                 state is born inside this cursor and never shared.  A
                 repair likewise moves its index to Rebuilding here. *)
              q.q_cursor <- Some (Retrieval.open_ ~config q.q_table q.q_request)
          | W_repair r ->
              r.r_repair <- Some (Repair.create r.r_rtable ~index:r.r_rindex));
          emit t (Admitted { id = j.j_id; tick = !tick; waited = j.j_queue_wait });
          active := !active @ [ j ];
          max_inflight_seen := max !max_inflight_seen (List.length !active)
    done
  in
  (* Bounded queue: whatever admission could not drain past [max_queue]
     is shed with a structured outcome — the victim never opens a
     cursor, so a shed query charges nothing and perturbs nothing. *)
  let shed_excess () =
    let reason =
      match t.cfg.shed_policy with
      | Shed_newest -> "queue full (shed-newest)"
      | Shed_largest_quota -> "queue full (shed-largest-quota)"
    in
    while List.length !pending > t.cfg.max_queue do
      match pick_victim t.cfg.shed_policy !pending with
      | None -> ()
      | Some j ->
          pending := List.filter (fun p -> p.j_id <> j.j_id) !pending;
          finish_shed j ~reason
    done
  in
  let settle () =
    arrive ();
    admit ();
    shed_excess ()
  in
  (* Deterministic crash injection (DESIGN.md §15).  Crashes fire only
     at grant boundaries — the step-boundary crash model — so any
     multi-operation sequence inside one step (e.g. manifest commit +
     tree swap) is atomic by construction.  [crash_points = []] (the
     default) short-circuits: no cost reads, no behaviour change. *)
  let crash_tick = ref None in
  let crash_due () =
    match t.cfg.crash_points with
    | [] -> false
    | pts ->
        List.exists
          (function
            | Crash_at_grant g -> !tick >= g
            | Crash_at_cost c ->
                Cost.total (Buffer_pool.global_meter pool) -. Cost.total meter0 >= c)
          pts
  in
  (* The process dies: every non-terminal submission loses its rows,
     cursor and any in-flight rebuild — no close, no summary, no
     feedback teaching; the work simply vanishes.  Terminal outcomes
     (served / shed / timed out) already happened and stand. *)
  let do_crash () =
    crash_tick := Some !tick;
    let lost = List.filter (fun j -> j.j_outcome = None) all in
    List.iter
      (fun j ->
        (match j.j_work with
        | W_query q ->
            q.q_rows <- [];
            q.q_cursor <- None;
            q.q_summary <- None
        | W_repair _ -> ());
        j.j_outcome <- Some (Lost { at_tick = !tick });
        metric_incr "session.lost")
      lost;
    pending := [];
    active := [];
    unarrived := [];
    emit t (Crashed { tick = !tick; lost = List.length lost })
  in
  (* Least-charged-first with a starvation override: any session passed
     over for [starvation_bound] consecutive grants runs next. *)
  let pick_next () =
    match !active with
    | [] -> None
    | _ :: _ ->
        let gap j = !tick - j.j_last_grant in
        let starving =
          List.filter (fun j -> gap j >= t.cfg.starvation_bound) !active
        in
        let by_key key js =
          List.fold_left
            (fun best j -> if key j < key best then j else best)
            (List.hd js) js
        in
        Some
          (match starving with
          | [] -> by_key (fun j -> (j.j_charged, j.j_id)) !active
          | js -> by_key (fun j -> (-gap j, j.j_id)) js)
  in
  let grant j =
    (match t.cfg.metrics with
    | None -> ()
    | Some m ->
        let module M = Rdb_util.Metrics in
        (* queue depth at grant time: runnable sessions plus those
           still waiting for admission *)
        M.observe
          (M.histogram m "session.queue_depth")
          (float_of_int (List.length !active + List.length !pending)));
    let gap = !tick - j.j_last_grant in
    j.j_max_gap <- max j.j_max_gap gap;
    j.j_last_grant <- !tick;
    incr tick;
    j.j_quanta <- j.j_quanta + 1;
    (* Both work kinds share the one clocked grant loop (exposed as
       [Retrieval.grant] / [Repair.grant] over the generic driver):
       stop when the job finishes, its cost deadline is spent, the
       quantum's cost is spent, or the step cap is hit — all checked
       before each step. *)
    match j.j_work with
    | W_query q ->
        let cursor = Option.get q.q_cursor in
        let deadline_hit () =
          match j.j_deadline with
          | Some d -> Retrieval.spent cursor >= d
          | None -> false
        in
        let before = Retrieval.spent cursor in
        let exhausted =
          Retrieval.grant cursor ~budget:t.cfg.quantum
            ~max_steps:t.cfg.max_steps_per_quantum
            ~stop:(fun () -> query_finished q || deadline_hit ())
            ~on_row:(fun row -> q.q_rows <- row :: q.q_rows)
        in
        j.j_charged <- j.j_charged +. (Retrieval.spent cursor -. before);
        if exhausted || query_finished q then begin
          finish_served j;
          active := List.filter (fun p -> p.j_id <> j.j_id) !active
        end
        else if deadline_hit () then begin
          finish_timed_out j ~spent:(Retrieval.spent cursor)
            ~deadline:(Option.get j.j_deadline);
          active := List.filter (fun p -> p.j_id <> j.j_id) !active
        end
    | W_repair r ->
        let rp = Option.get r.r_repair in
        let before = Repair.spent rp in
        (match
           Repair.grant rp ~budget:t.cfg.quantum ~max_steps:t.cfg.max_steps_per_quantum
         with
        | Some ok -> r.r_result <- Some ok
        | None -> ());
        j.j_charged <- j.j_charged +. (Repair.spent rp -. before);
        if r.r_result <> None then begin
          finish_served j;
          active := List.filter (fun p -> p.j_id <> j.j_id) !active
        end
  in
  let rec loop () =
    if crash_due () then do_crash ()
    else begin
      settle ();
      match pick_next () with
      | Some j ->
          grant j;
          loop ()
      | None -> (
          (* No runnable session and (post-settle) nothing admissible: if
             arrivals remain, the pool idles forward to the next one —
             each iteration either grants (tick advances) or arrives a
             job, so the loop terminates. *)
          match !unarrived with
          | [] -> ()
          | j :: _ ->
              (* sorted by arrival tick: the head is the next arrival *)
              tick := max !tick j.j_arrive_at;
              loop ())
    end
  in
  loop ();
  let meter1 = Buffer_pool.global_meter pool in
  let physical = Cost.physical_reads meter1 - Cost.physical_reads meter0 in
  let logical = Cost.logical_reads meter1 - Cost.logical_reads meter0 in
  (* Probes this run performed, per shard (the pool counters are
     lifetime totals; shard count is constant during a run). *)
  let shard_lookups =
    Array.map2 ( - ) (Buffer_pool.shard_lookups pool) shard_lookups0
  in
  let lookup_balance = Buffer_pool.lookup_balance shard_lookups in
  let outcome_of j = match j.j_outcome with Some o -> o | None -> Served in
  let sessions =
    List.filter_map
      (fun j ->
        match j.j_work with
        | W_repair _ -> None
        | W_query q ->
            Some
              {
                s_id = j.j_id;
                s_label = j.j_label;
                s_rows = List.length q.q_rows;
                s_quanta = j.j_quanta;
                s_charged = j.j_charged;
                s_queue_wait = j.j_queue_wait;
                s_max_gap = j.j_max_gap;
                s_degradations =
                  (match q.q_summary with Some s -> degradations s | None -> 0);
                s_outcome = outcome_of j;
                s_degraded = j.j_degraded;
                s_summary = q.q_summary;
              })
      all
  in
  let repairs =
    List.filter_map
      (fun j ->
        match j.j_work with
        | W_query _ -> None
        | W_repair r ->
            (* A crash can leave a repair with no [Repair.t] at all
               (lost before admission) — report it with zero work. *)
            let entries, trace =
              match r.r_repair with
              | Some rp -> (Repair.entries rp, Trace.events (Repair.trace rp))
              | None -> (0, [])
            in
            Some
              {
                r_id = j.j_id;
                r_label = j.j_label;
                r_index = r.r_rindex;
                r_entries = entries;
                r_ok = (match r.r_result with Some ok -> ok | None -> false);
                r_quanta = j.j_quanta;
                r_charged = j.j_charged;
                r_queue_wait = j.j_queue_wait;
                r_max_gap = j.j_max_gap;
                r_retries =
                  List.length
                    (List.filter
                       (function Trace.Fault_retry _ -> true | _ -> false)
                       trace);
                r_trace = trace;
              })
      all
  in
  let total_cost = List.fold_left (fun acc j -> acc +. j.j_charged) 0.0 all in
  let count pred = List.length (List.filter pred all) in
  let submitted = List.length all in
  let served = count (fun j -> outcome_of j = Served) in
  let shed = count (fun j -> match outcome_of j with Shed _ -> true | _ -> false) in
  let timed_out =
    count (fun j -> match outcome_of j with Timed_out _ -> true | _ -> false)
  in
  let lost = count (fun j -> match outcome_of j with Lost _ -> true | _ -> false) in
  (match t.cfg.metrics with
  | None -> ()
  | Some m ->
      let module M = Rdb_util.Metrics in
      M.add (M.counter m "session.grants") !tick;
      M.add (M.counter m "session.queries") (List.length sessions);
      if repairs <> [] then M.add (M.counter m "session.repairs") (List.length repairs);
      let max_gap = List.fold_left (fun acc j -> max acc j.j_max_gap) 0 all in
      M.set (M.gauge m "session.max_gap") (float_of_int max_gap);
      (* paper-facing fairness guarantee: how much of the bounded-wait
         budget the worst-treated session actually used up *)
      M.set
        (M.gauge m "session.starvation_margin")
        (float_of_int (t.cfg.starvation_bound - max_gap));
      M.set (M.gauge m "session.hit_rate")
        (if physical + logical = 0 then 1.0
         else float_of_int logical /. float_of_int (physical + logical));
      (* balance gauge only on a partitioned pool, mirroring the
         pool.shard<k>.* counters: shards = 1 records nothing new *)
      if Buffer_pool.shards pool > 1 then
        M.set (M.gauge m "pool.lookup_balance") lookup_balance;
      List.iter
        (fun s ->
          M.observe (M.histogram m "session.quanta") (float_of_int s.s_quanta);
          M.observe (M.histogram m "session.queue_wait") (float_of_int s.s_queue_wait);
          M.observe (M.histogram m "session.charged") s.s_charged)
        sessions);
  {
    sessions;
    repairs;
    pool =
      {
        p_grants = !tick;
        p_physical = physical;
        p_logical = logical;
        p_hit_rate =
          (if physical + logical = 0 then 1.0
           else float_of_int logical /. float_of_int (physical + logical));
        p_total_cost = total_cost;
        p_max_inflight_seen = !max_inflight_seen;
        p_submitted = submitted;
        p_served = served;
        p_shed = shed;
        p_timed_out = timed_out;
        p_lost = lost;
        p_crash_tick = !crash_tick;
        p_shards = Buffer_pool.shards pool;
        p_shard_lookups = shard_lookups;
        p_lookup_balance = lookup_balance;
      };
    events = List.rev t.events;
  }

let rows_of t id =
  match List.find_opt (fun j -> j.j_id = id) t.jobs with
  | Some { j_work = W_query q; _ } -> List.rev q.q_rows
  | Some { j_work = W_repair _; _ } -> invalid_arg "Session.rows_of: id is a repair"
  | None -> invalid_arg "Session.rows_of: unknown id"

let repair_of t id =
  match List.find_opt (fun j -> j.j_id = id) t.jobs with
  | Some { j_work = W_repair r; _ } -> r.r_result
  | Some { j_work = W_query _; _ } -> invalid_arg "Session.repair_of: id is a query"
  | None -> invalid_arg "Session.repair_of: unknown id"

let event_to_string = function
  | Submitted { id; label } -> Printf.sprintf "submitted q%d (%s)" id label
  | Admitted { id; tick; waited } ->
      Printf.sprintf "admitted q%d at grant %d (waited %d)" id tick waited
  | Finished { id; tick; rows } ->
      Printf.sprintf "finished q%d at grant %d (%d rows)" id tick rows
  | Shed_event { id; tick; reason } ->
      Printf.sprintf "shed q%d at grant %d (%s)" id tick reason
  | Timed_out_event { id; tick; spent; deadline } ->
      Printf.sprintf "timed out q%d at grant %d (%.1f spent of %.1f)" id tick spent
        deadline
  | Degraded { id; tick; depth } ->
      Printf.sprintf "degraded q%d at grant %d (queue depth %d)" id tick depth
  | Crashed { tick; lost } ->
      Printf.sprintf "CRASH at grant %d (%d submissions lost)" tick lost

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "session                       rows  quanta  charged  wait  max-gap  degr  tactic / status\n";
  let session_line s =
    let tail =
      match s.s_summary with
      | Some summary ->
          Printf.sprintf "%s / %s"
            (Retrieval.tactic_to_string summary.Retrieval.tactic)
            (Retrieval.status_to_string summary.Retrieval.status)
      | None -> "- / " ^ outcome_to_string s.s_outcome
    in
    let tail = if s.s_degraded then tail ^ " [degraded]" else tail in
    Printf.sprintf "%-28s %5d %7d %8.1f %5d %8d %5d  %s\n" s.s_label s.s_rows
      s.s_quanta s.s_charged s.s_queue_wait s.s_max_gap s.s_degradations tail
  in
  let repair_line p =
    Printf.sprintf "%-28s %5d %7d %8.1f %5d %8d %5d  %s / %s\n" p.r_label p.r_entries
      p.r_quanta p.r_charged p.r_queue_wait p.r_max_gap p.r_retries
      ("rebuild " ^ p.r_index)
      (if p.r_ok then "completed" else "failed")
  in
  (* Merge queries and repairs back into submission order. *)
  let lines =
    List.map (fun s -> (s.s_id, session_line s)) r.sessions
    @ List.map (fun p -> (p.r_id, repair_line p)) r.repairs
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (_, l) -> Buffer.add_string buf l) lines;
  Buffer.add_string buf
    (Printf.sprintf
       "pool: %d grants, %d physical + %d logical reads (hit rate %.3f), total \
        charged %.1f, max in-flight %d\n"
       r.pool.p_grants r.pool.p_physical r.pool.p_logical r.pool.p_hit_rate
       r.pool.p_total_cost r.pool.p_max_inflight_seen);
  (* Single-shard reports are byte-identical to the pre-sharding
     scheduler; the shard line only exists on a partitioned pool. *)
  if r.pool.p_shards > 1 then
    Buffer.add_string buf
      (Printf.sprintf "shards: %d, lookup balance %.2f (lookups %s)\n"
         r.pool.p_shards r.pool.p_lookup_balance
         (String.concat "/"
            (Array.to_list (Array.map string_of_int r.pool.p_shard_lookups))));
  (* Crash-free reports keep the exact historical ledger line; the
     crash line and the [+ lost] term only appear when a crash fired,
     so a zero-crash run renders byte-identically to before. *)
  (match r.pool.p_crash_tick with
  | None -> ()
  | Some tick ->
      Buffer.add_string buf
        (Printf.sprintf "crash: process died at grant %d (%d submissions lost)\n" tick
           r.pool.p_lost));
  if r.pool.p_lost > 0 || r.pool.p_crash_tick <> None then
    Buffer.add_string buf
      (Printf.sprintf
         "admissions: %d served + %d shed + %d timed out + %d lost = %d submitted\n"
         r.pool.p_served r.pool.p_shed r.pool.p_timed_out r.pool.p_lost
         r.pool.p_submitted)
  else
    Buffer.add_string buf
      (Printf.sprintf "admissions: %d served + %d shed + %d timed out = %d submitted\n"
         r.pool.p_served r.pool.p_shed r.pool.p_timed_out r.pool.p_submitted);
  (match r.events with
  | [] -> ()
  | evs ->
      Buffer.add_string buf "events:\n";
      List.iter (fun e -> Buffer.add_string buf ("  " ^ event_to_string e ^ "\n")) evs);
  Buffer.contents buf

open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type strategy = P_tscan | P_sscan of string | P_fscan of string

type plan = { strategy : strategy; estimated_cost : float; estimated_rows : float }

let strategy_to_string = function
  | P_tscan -> "Tscan"
  | P_sscan i -> "Sscan(" ^ i ^ ")"
  | P_fscan i -> "Fscan(" ^ i ^ ")"

(* System-R default selectivities for predicates whose operand is a
   host variable unknown at compile time. *)
let default_selectivity = function
  | Predicate.Eq -> 0.1
  | Predicate.Ne -> 0.9
  | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge -> 1.0 /. 3.0

(* Point (mean) selectivity estimate of a restriction against one
   index, multiplying independent conjunct selectivities — the
   industry-standard model the paper criticizes. *)
let rec point_selectivity table meter pred =
  match pred with
  | Predicate.True -> 1.0
  | Predicate.False -> 0.0
  | Predicate.Not x -> 1.0 -. point_selectivity table meter x
  | Predicate.And ts ->
      List.fold_left (fun acc x -> acc *. point_selectivity table meter x) 1.0 ts
  | Predicate.Or ts ->
      (* independence: 1 - prod (1 - s_i) *)
      1.0
      -. List.fold_left
           (fun acc x -> acc *. (1.0 -. point_selectivity table meter x))
           1.0 ts
  | Predicate.Cmp (_, op, Predicate.Param _) -> default_selectivity op
  | Predicate.Between (_, Predicate.Param _, _) | Predicate.Between (_, _, Predicate.Param _)
    ->
      0.25
  | Predicate.In_list (col, os) ->
      let eq v = Predicate.Cmp (col, Predicate.Eq, v) in
      Rdb_util.Stats.clamp
        (List.fold_left (fun acc o -> acc +. point_selectivity table meter (eq o)) 0.0 os)
        ~lo:0.0 ~hi:1.0
  | Predicate.Cmp_col (_, op, _) -> default_selectivity op
  | Predicate.Is_null _ -> 0.05
  | Predicate.Is_not_null _ -> 0.95
  | Predicate.Like _ -> 0.1
  | (Predicate.Cmp (col, _, Predicate.Const _) | Predicate.Between (col, _, _)) as leaf -> (
      (* Bound leaf: use the index histogram if one leads on [col]. *)
      let leading =
        List.find_opt
          (fun idx -> match idx.Table.key_columns with c :: _ -> c = col | [] -> false)
          (Table.indexes table)
      in
      match leading with
      | None -> (
          match leaf with
          | Predicate.Cmp (_, op, _) -> default_selectivity op
          | _ -> 0.25)
      | Some idx ->
          let extraction = Range_extract.for_index leaf idx in
          if not extraction.Range_extract.bounded then 0.3
          else begin
            let card = Btree.cardinality idx.Table.tree in
            if card = 0 then 0.0
            else begin
              let r = Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges in
              Rdb_util.Stats.clamp
                (r.Estimate.estimate /. float_of_int card)
                ~lo:0.0 ~hi:1.0
            end
          end)

(* Compile-time binding: substitute known parameters, leave the rest. *)
let partial_bind pred env =
  let sub = function
    | Predicate.Param p as o -> (
        match List.assoc_opt p env with Some v -> Predicate.Const v | None -> o)
    | o -> o
  in
  let rec go = function
    | (Predicate.True | Predicate.False | Predicate.Is_null _ | Predicate.Is_not_null _
      | Predicate.Like _) as t ->
        t
    | Predicate.Cmp (c, op, o) -> Predicate.Cmp (c, op, sub o)
    | Predicate.Cmp_col _ as t -> t
    | Predicate.Between (c, a, b) -> Predicate.Between (c, sub a, sub b)
    | Predicate.In_list (c, os) -> Predicate.In_list (c, List.map sub os)
    | Predicate.And ts -> Predicate.And (List.map go ts)
    | Predicate.Or ts -> Predicate.Or (List.map go ts)
    | Predicate.Not x -> Predicate.Not (go x)
  in
  go pred

let compile ?projection table pred ~env =
  let meter = Cost.create () in
  let pred = Predicate.simplify (partial_bind pred env) in
  let card = float_of_int (Table.row_count table) in
  let sel = point_selectivity table meter pred in
  let est_rows = sel *. card in
  let tscan = (P_tscan, Cost_model.tscan_cost table) in
  (* Self-sufficiency must account for every column the query needs,
     not just the restriction: SELECT * can never be index-only. *)
  let needed =
    (match projection with
    | Some cols -> cols
    | None ->
        List.map (fun c -> c.Rdb_data.Schema.name)
          (Rdb_data.Schema.columns (Table.schema table)))
    @ Predicate.columns pred
  in
  let index_plans =
    List.filter_map
      (fun idx ->
        (* Per-index selectivity of the conjuncts this index absorbs,
           times default treatment of the rest — here simply the whole
           restriction's selectivity for the fetch count and the
           absorbed range for the scan length. *)
        let bound_part =
          (* Range over params still unbound: use defaults on full
             index. *)
          if Predicate.is_bound pred then begin
            let extraction = Range_extract.for_index pred idx in
            if extraction.Range_extract.bounded then
              Some
                (let card = Btree.cardinality idx.Table.tree in
                 if card = 0 then 0.0
                 else begin
                   let r =
                     Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges
                   in
                   Rdb_util.Stats.clamp
                     (r.Estimate.estimate /. float_of_int card)
                     ~lo:0.0 ~hi:1.0
                 end)
            else None
          end
          else begin
            (* Unbound: credit the index with the default selectivity
               of the conjuncts naming its leading column. *)
            let leading = List.hd idx.Table.key_columns in
            let conjuncts =
              match pred with Predicate.And ts -> ts | t -> [ t ]
            in
            let sels =
              List.filter_map
                (fun conj ->
                  match conj with
                  | Predicate.Cmp (c, op, _) when c = leading ->
                      Some (default_selectivity op)
                  | Predicate.Between (c, _, _) when c = leading -> Some 0.25
                  | _ -> None)
                conjuncts
            in
            match sels with [] -> None | s -> Some (List.fold_left ( *. ) 1.0 s)
          end
        in
        match bound_part with
        | None -> None
        | Some range_sel ->
            let entries = range_sel *. card in
            let scan_cost = Cost_model.index_scan_cost idx ~entries in
            if Table.index_covers idx ~columns:needed then
              Some (P_sscan idx.Table.idx_name, scan_cost)
            else begin
              let fetch_cost = Cost_model.key_order_fetch_cost table idx ~entries in
              Some (P_fscan idx.Table.idx_name, scan_cost +. fetch_cost)
            end)
      (Table.indexes table)
  in
  let strategy, estimated_cost =
    List.fold_left
      (fun (bs, bc) (s, c) -> if c < bc then (s, c) else (bs, bc))
      tscan index_plans
  in
  { strategy; estimated_cost; estimated_rows = est_rows }

type result = { rows : Row.t list; cost : float; trace : Trace.event list }

let execute ?limit table plan pred ~env =
  let meter = Cost.create () in
  let trace = Trace.create () in
  let restriction = Predicate.simplify (Predicate.bind pred env) in
  let rows = ref [] in
  let count = ref 0 in
  let want_more () = match limit with Some n -> !count < n | None -> true in
  let deliver row =
    rows := row :: !rows;
    incr count
  in
  let run_steps step =
    let rec loop () =
      if want_more () then begin
        match step () with
        | Scan.Deliver (_, row) ->
            deliver row;
            loop ()
        | Scan.Continue -> loop ()
        | Scan.Done -> ()
        | Scan.Failed f ->
            (* static paths run with no injector installed *)
            raise (Fault.Injected f)
      end
    in
    loop ()
  in
  (match plan.strategy with
  | P_tscan ->
      let t = Tscan.create table meter restriction in
      run_steps (fun () -> Tscan.step t)
  | P_sscan name | P_fscan name -> (
      match Table.find_index table name with
      | None -> invalid_arg ("Static_optimizer.execute: no index " ^ name)
      | Some idx ->
          let extraction = Range_extract.for_index restriction idx in
          let cand =
            {
              Scan.idx;
              ranges = extraction.Range_extract.ranges;
              residual = extraction.Range_extract.residual;
              est = 0.0;
              est_exact = false;
            }
          in
          (match plan.strategy with
          | P_sscan _ ->
              let s = Sscan.create table meter cand ~restriction in
              run_steps (fun () -> Sscan.step s)
          | P_fscan _ | P_tscan ->
              let f = Fscan.create table meter cand ~restriction in
              run_steps (fun () -> Fscan.step f))));
  Trace.emit trace (Trace.Retrieval_done { rows = !count; cost = Cost.total meter });
  { rows = List.rev !rows; cost = Cost.total meter; trace = Trace.events trace }

(** Online index rebuild.

    Reconstructs a damaged index from the heap — the ground truth — in
    bounded increments so the multi-query session scheduler can
    interleave the rebuild with foreground queries.  Every heap page
    read and new-tree node write is charged through the buffer pool to
    the repair's own meter, so the rebuild competes for cache and cost
    quanta like any other session.

    Lifecycle: {!create} moves the index to [Rebuilding] (it disappears
    from planning); each {!step} copies a batch of rows into a fresh
    tree, retrying transient heap faults with the same deterministic
    backoff as retrieval; on success the new tree is atomically swapped
    in ({!Rdb_engine.Table.replace_index} — pool label moved, stale
    blocks evicted, cached estimation state reseeded) and the index
    returns to [Healthy].  On a persistent heap fault the rebuild fails
    and the index goes back to [Quarantined] with an escalated
    backoff — degraded, but never absorbing: the re-probe path
    remains. *)

type t

val create : ?batch:int -> ?retry_limit:int -> Rdb_engine.Table.t -> index:string -> t
(** Start rebuilding [index].  [batch] (default 64) rows are copied per
    {!step}; [retry_limit] (default 8) bounds consecutive transient
    faults before the rebuild gives up.  Raises [Invalid_argument] on
    an unknown index name. *)

val step : t -> [ `Working | `Done of bool ]
(** One scheduler quantum of copying.  Idempotent after completion. *)

val run : t -> bool
(** Drive {!step} to completion (non-scheduled callers). *)

val grant : t -> budget:float -> max_steps:int -> bool option
(** One scheduler grant: drive {!step} until [budget] worth of cost
    has been charged since entry, [max_steps] steps ran, or the
    rebuild finished (all checked before each step).  [Some ok] iff it
    finished during the grant.  This is
    {!Rdb_exec.Driver.clocked_loop} over [step] — the same grant loop
    the session scheduler uses for queries. *)

val index_name : t -> string
val entries : t -> int
(** Entries copied into the new tree so far. *)

val spent : t -> float
(** Cost charged by the rebuild so far. *)

val result : t -> bool option
(** [None] while working. *)

val trace : t -> Rdb_exec.Trace.t
(** Repair_started / retries / health transitions / Repair_done. *)

(** Multi-query session scheduler over one shared buffer pool.

    Rdb/VMS ran its dynamic optimizer under concurrent sessions: many
    queries competing for one page buffer, each internally interleaving
    foreground and background scans (§3, §7).  This module reproduces
    that pressure deterministically: a cooperative scheduler drives N
    concurrent {!Retrieval} cursors against one shared
    {!Rdb_engine.Database} pool by round-robin {e cost quanta}.

    Guarantees:

    + {b Admission control.}  At most [max_inflight] queries hold open
      cursors; the rest wait in a queue ordered by (declared cost
      quota, arrival) — a bounded query (small [cost_quota]) may jump
      an unbounded one, ties broken FIFO.  Plans are chosen at
      admission time, one query at a time, so planning itself is never
      interleaved.
    + {b Fairness.}  Each grant gives one session up to [quantum] cost
      units of work (measured by its own meters).  The next grant goes
      to the active session with the least charged cost (deterministic
      tie-break: lowest id) — but any session passed over for
      [starvation_bound] consecutive grants is scheduled next
      unconditionally, so the wait of a runnable session is bounded.
    + {b Isolation.}  Competition state (guaranteed best, quarantine,
      fallback, retry counters) lives inside each cursor; one query's
      degradation never perturbs another's plan choice.  Queries
      interact only through the shared buffer pool — i.e. through
      {e cost}, never through {e results}.
    + {b Overload protection} (DESIGN.md §12).  Submissions may carry a
      cost {e deadline}: a session that exceeds it is cooperatively
      cancelled at the next grant boundary with a structured
      {!outcome.Timed_out} — partial rows and charged cost stand, no
      exception, no absorbing state.  The waiting queue is bounded by
      [max_queue]: excess arrivals are {e shed} ({!shed_policy}) with a
      structured {!outcome.Shed}, never opening a cursor.  When the
      queue behind an admission reaches [pressure_threshold], the new
      query is {e degraded} before anyone is shed: its competitive
      background-refinement arms are dropped
      ([Retrieval.bgr_enabled = false]) while fast-first LIMIT probes
      keep theirs.  Shedding and degradation change {e which} queries
      run and at what cost — never the results of queries that run.
    + {b Determinism.}  No wall clock, no OS scheduler: two runs with
      equal seeds and configs produce byte-identical reports.

    Observability: per-session counters (quanta, charged cost, queue
    wait, max scheduling gap, degradations, outcome) and pool-wide
    counters (grants, physical/logical reads, hit rate, exact
    served/shed/timed-out accounting) in the {!report}, plus a stable
    text rendering ({!report_to_string}) that serves as the
    scheduler's EXPLAIN and audits {e every} submission. *)

open Rdb_data
open Rdb_engine

type shed_policy =
  | Shed_newest  (** drop the most recent arrival (the storm's margin) *)
  | Shed_largest_quota
      (** drop the largest declared cost quota — unbounded work first;
          ties broken newest-first *)

type crash_point =
  | Crash_at_grant of int
      (** the process dies at the first grant boundary with
          [tick >= g] *)
  | Crash_at_cost of float
      (** … at the first grant boundary at which the run's charged
          cost (global-meter delta since {!run} started) reaches [c] *)

type config = {
  max_inflight : int;  (** admission-control limit, >= 1 *)
  quantum : float;  (** cost units granted per scheduling slice *)
  max_steps_per_quantum : int;
      (** hard step bound per grant, so zero-cost delivery (e.g. from a
          materialized sort) cannot hold the engine *)
  starvation_bound : int;
      (** a runnable session passed over this many consecutive grants
          is scheduled next unconditionally *)
  max_queue : int;
      (** waiting-queue bound: arrivals beyond it are shed with a
          structured {!outcome.Shed}.  [max_int] — the default — never
          sheds and reproduces the unbounded-queue scheduler exactly *)
  shed_policy : shed_policy;  (** victim choice when the queue overflows *)
  pressure_threshold : int;
      (** queue depth at (and beyond) which newly admitted queries are
          degraded — competitive background refinement disabled, rows
          invariant; [max_int] — the default — never degrades *)
  pool_shards : int option;
      (** repartition the database's buffer pool into this many
          independent LRU shards before the run
          ({!Rdb_storage.Buffer_pool.reshard} — residency dropped,
          cost-only).  Sharding steers contention and cost, never
          results.  [None] — the default — leaves the pool as created;
          [Some 1] on a single-shard pool is byte-identical to [None] *)
  crash_points : crash_point list;
      (** deterministic crash injection (DESIGN.md §15): the run ends
          at the first grant boundary at which any point has fired —
          every non-terminal submission becomes {!outcome.Lost} (rows,
          cursors and in-flight rebuilds vanish; terminal outcomes
          stand), a {!event.Crashed} event is emitted, and the report
          carries [p_crash_tick].  The scheduler performs no volatile
          teardown itself — that is {!Recovery.crash_teardown}'s job —
          and crashes only fire {e between} grants, so any
          multi-operation commit inside one step is atomic.  [[]] —
          the default — is byte-identical to a scheduler without crash
          support *)
  retrieval : Retrieval.config;  (** default per-query config *)
  record_events : bool;  (** keep the scheduler event log (golden tests) *)
  metrics : Rdb_util.Metrics.t option;
      (** observation-only registry: quanta granted, queue depth at
          each grant, per-session charged cost, the starvation margin,
          and shed/timed-out/degraded counts are recorded during
          {!run}; [None] records nothing *)
}

val default_config : config

type id = int

type outcome =
  | Served  (** ran to its natural end (exhaustion, LIMIT, quota, fault) *)
  | Timed_out of { deadline : float; spent : float }
      (** cost deadline exceeded; the partial rows delivered stand *)
  | Shed of { reason : string }
      (** dropped by the bounded queue before a cursor ever opened *)
  | Lost of { at_tick : int }
      (** the process crashed at grant [at_tick] before this
          submission reached a terminal outcome; its partial rows and
          progress are gone (a restart reissues it from the journal —
          {!Recovery}) *)

val outcome_to_string : outcome -> string

type event =
  | Submitted of { id : id; label : string }
  | Admitted of { id : id; tick : int; waited : int }
      (** [waited] = grants issued between arrival and admission *)
  | Finished of { id : id; tick : int; rows : int }
  | Shed_event of { id : id; tick : int; reason : string }
      (** the bounded queue dropped this submission *)
  | Timed_out_event of { id : id; tick : int; spent : float; deadline : float }
      (** the cost deadline cancelled this session at a grant boundary *)
  | Degraded of { id : id; tick : int; depth : int }
      (** admitted under pressure with background refinement disabled *)
  | Crashed of { tick : int; lost : int }
      (** a configured crash point fired; [lost] submissions became
          {!outcome.Lost} *)

type session_stats = {
  s_id : id;
  s_label : string;
  s_rows : int;
  s_quanta : int;  (** grants this session received *)
  s_charged : float;  (** cost charged across its grants *)
  s_queue_wait : int;  (** grants issued while it waited for admission *)
  s_max_gap : int;
      (** max grants between two consecutive slices while runnable *)
  s_degradations : int;
      (** fault retries + quarantines + fallbacks in its trace *)
  s_outcome : outcome;
  s_degraded : bool;  (** admitted with background refinement disabled *)
  s_summary : Retrieval.summary option;
      (** [None] iff the query never opened a cursor (shed, or timed
          out on arrival) — the outcome still accounts for it *)
}

type repair_stats = {
  r_id : id;
  r_label : string;
  r_index : string;
  r_entries : int;  (** heap entries copied into the new tree *)
  r_ok : bool;  (** the rebuilt tree was swapped in *)
  r_quanta : int;
  r_charged : float;
  r_queue_wait : int;
  r_max_gap : int;
  r_retries : int;  (** transient-fault retries during the rebuild *)
  r_trace : Rdb_exec.Trace.event list;
}

type pool_stats = {
  p_grants : int;  (** total quanta granted *)
  p_physical : int;  (** pool physical reads during the run *)
  p_logical : int;  (** pool logical reads during the run *)
  p_hit_rate : float;  (** logical / (logical + physical); 1.0 if no reads *)
  p_total_cost : float;  (** sum of per-session charged cost *)
  p_max_inflight_seen : int;
  p_submitted : int;  (** every submission, queries and repairs alike *)
  p_served : int;
  p_shed : int;
  p_timed_out : int;
  p_lost : int;
      (** exact accounting:
          served + shed + timed_out + lost = submitted (lost is 0
          unless a crash point fired) *)
  p_crash_tick : int option;
      (** the grant at which the run crashed; [None] on a clean run *)
  p_shards : int;  (** buffer-pool shard count during the run *)
  p_shard_lookups : int array;
      (** residency probes this run performed, per shard *)
  p_lookup_balance : float;
      (** max/mean skew of [p_shard_lookups]
          ({!Rdb_storage.Buffer_pool.lookup_balance}); [1.0] when
          single-sharded *)
}

type report = {
  sessions : session_stats list;  (** in submission order *)
  repairs : repair_stats list;  (** in submission order *)
  pool : pool_stats;
  events : event list;  (** empty unless [record_events] *)
}

type t

val create : ?config:config -> Database.t -> t

val submit :
  t ->
  ?label:string ->
  ?config:Retrieval.config ->
  ?limit:int ->
  ?quota:float ->
  ?deadline:float ->
  ?arrive_at:int ->
  Table.t ->
  Retrieval.request ->
  id
(** Enqueue a query.  Ids are dense, in submission order.  The table
    must share the scheduler's database pool.

    [quota] is the {e declared} admission-ordering quota — a
    declaration only, it does not enforce anything (enforcement is
    [config.cost_quota] / [deadline]); defaults to the query config's
    [cost_quota].  [deadline] is a cost deadline in the same cost
    units every meter charges: the session is cooperatively cancelled
    at the first grant boundary at which its total charged cost
    (planning included) reaches it, with outcome
    {!outcome.Timed_out}; a deadline [<= 0] times out on arrival
    without opening a cursor.  [arrive_at] (default [0]) is the grant
    tick at which the submission joins the queue — the storm
    workload's arrival process; the pool idles forward when nothing is
    runnable, so late arrivals always get service. *)

val submit_repair :
  t -> ?label:string -> ?quota:float -> Table.t -> index:string -> id
(** Enqueue an online rebuild of [index] ({!Repair}).  The repair is
    admitted, granted cost quanta, and reported exactly like a query
    session — background maintenance competes with foreground work
    instead of preempting it.  [quota] orders admission only (repairs
    run to completion regardless).  Ids share the query id space.
    Raises [Invalid_argument] on an unknown index. *)

val run : t -> report
(** Drive every submitted query to a structured exit — [Served],
    [Timed_out] or [Shed] — and return the report.  May be called
    once; reuse requires a fresh scheduler. *)

val rows_of : t -> id -> Row.t list
(** Rows the session delivered, in delivery order (valid after
    {!run}).  Raises [Invalid_argument] on a repair id. *)

val repair_of : t -> id -> bool option
(** Outcome of a repair job ([None] before {!run}).  Raises
    [Invalid_argument] on a query id. *)

val event_to_string : event -> string

val report_to_string : report -> string
(** Deterministic text rendering: one line per submission — shed and
    timed-out sessions render their outcome where finishers render
    tactic/status, so the report audits every submission — plus the
    pool totals, a shard/lookup-balance line when the pool is
    partitioned ([p_shards > 1] only, so single-shard reports are
    byte-identical to the pre-sharding scheduler), and the
    served/shed/timed-out ledger. *)

(** Multi-query session scheduler over one shared buffer pool.

    Rdb/VMS ran its dynamic optimizer under concurrent sessions: many
    queries competing for one page buffer, each internally interleaving
    foreground and background scans (§3, §7).  This module reproduces
    that pressure deterministically: a cooperative scheduler drives N
    concurrent {!Retrieval} cursors against one shared
    {!Rdb_engine.Database} pool by round-robin {e cost quanta}.

    Guarantees:

    + {b Admission control.}  At most [max_inflight] queries hold open
      cursors; the rest wait in a queue ordered by (declared cost
      quota, arrival) — a bounded query (small [cost_quota]) may jump
      an unbounded one, ties broken FIFO.  Plans are chosen at
      admission time, one query at a time, so planning itself is never
      interleaved.
    + {b Fairness.}  Each grant gives one session up to [quantum] cost
      units of work (measured by its own meters).  The next grant goes
      to the active session with the least charged cost (deterministic
      tie-break: lowest id) — but any session passed over for
      [starvation_bound] consecutive grants is scheduled next
      unconditionally, so the wait of a runnable session is bounded.
    + {b Isolation.}  Competition state (guaranteed best, quarantine,
      fallback, retry counters) lives inside each cursor; one query's
      degradation never perturbs another's plan choice.  Queries
      interact only through the shared buffer pool — i.e. through
      {e cost}, never through {e results}.
    + {b Determinism.}  No wall clock, no OS scheduler: two runs with
      equal seeds and configs produce byte-identical reports.

    Observability: per-session counters (quanta, charged cost, queue
    wait, max scheduling gap, degradations) and pool-wide counters
    (grants, physical/logical reads, hit rate) in the {!report}, plus
    a stable text rendering ({!report_to_string}) that serves as the
    scheduler's EXPLAIN. *)

open Rdb_data
open Rdb_engine

type config = {
  max_inflight : int;  (** admission-control limit, >= 1 *)
  quantum : float;  (** cost units granted per scheduling slice *)
  max_steps_per_quantum : int;
      (** hard step bound per grant, so zero-cost delivery (e.g. from a
          materialized sort) cannot hold the engine *)
  starvation_bound : int;
      (** a runnable session passed over this many consecutive grants
          is scheduled next unconditionally *)
  retrieval : Retrieval.config;  (** default per-query config *)
  record_events : bool;  (** keep the scheduler event log (golden tests) *)
  metrics : Rdb_util.Metrics.t option;
      (** observation-only registry: quanta granted, queue depth at
          each grant, per-session charged cost, and the starvation
          margin are recorded during {!run}; [None] records nothing *)
}

val default_config : config

type id = int

type event =
  | Submitted of { id : id; label : string }
  | Admitted of { id : id; tick : int; waited : int }
      (** [waited] = grants issued between submission and admission *)
  | Finished of { id : id; tick : int; rows : int }

type session_stats = {
  s_id : id;
  s_label : string;
  s_rows : int;
  s_quanta : int;  (** grants this session received *)
  s_charged : float;  (** cost charged across its grants *)
  s_queue_wait : int;  (** grants issued while it waited for admission *)
  s_max_gap : int;
      (** max grants between two consecutive slices while runnable *)
  s_degradations : int;
      (** fault retries + quarantines + fallbacks in its trace *)
  s_summary : Retrieval.summary;
}

type repair_stats = {
  r_id : id;
  r_label : string;
  r_index : string;
  r_entries : int;  (** heap entries copied into the new tree *)
  r_ok : bool;  (** the rebuilt tree was swapped in *)
  r_quanta : int;
  r_charged : float;
  r_queue_wait : int;
  r_max_gap : int;
  r_retries : int;  (** transient-fault retries during the rebuild *)
  r_trace : Rdb_exec.Trace.event list;
}

type pool_stats = {
  p_grants : int;  (** total quanta granted *)
  p_physical : int;  (** pool physical reads during the run *)
  p_logical : int;  (** pool logical reads during the run *)
  p_hit_rate : float;  (** logical / (logical + physical); 1.0 if no reads *)
  p_total_cost : float;  (** sum of per-session charged cost *)
  p_max_inflight_seen : int;
}

type report = {
  sessions : session_stats list;  (** in submission order *)
  repairs : repair_stats list;  (** in submission order *)
  pool : pool_stats;
  events : event list;  (** empty unless [record_events] *)
}

type t

val create : ?config:config -> Database.t -> t

val submit :
  t ->
  ?label:string ->
  ?config:Retrieval.config ->
  ?limit:int ->
  Table.t ->
  Retrieval.request ->
  id
(** Enqueue a query.  Ids are dense, in submission order.  The table
    must share the scheduler's database pool. *)

val submit_repair :
  t -> ?label:string -> ?quota:float -> Table.t -> index:string -> id
(** Enqueue an online rebuild of [index] ({!Repair}).  The repair is
    admitted, granted cost quanta, and reported exactly like a query
    session — background maintenance competes with foreground work
    instead of preempting it.  [quota] orders admission only (repairs
    run to completion regardless).  Ids share the query id space.
    Raises [Invalid_argument] on an unknown index. *)

val run : t -> report
(** Drive every submitted query to completion and return the report.
    May be called once; reuse requires a fresh scheduler. *)

val rows_of : t -> id -> Row.t list
(** Rows the session delivered, in delivery order (valid after
    {!run}).  Raises [Invalid_argument] on a repair id. *)

val repair_of : t -> id -> bool option
(** Outcome of a repair job ([None] before {!run}).  Raises
    [Invalid_argument] on a query id. *)

val report_to_string : report -> string
(** Deterministic text rendering: one line per session plus the pool
    totals — the scheduler's EXPLAIN surface. *)

(** The initial retrieval stage (§5).

    Arranges the available useful indexes into single or combined scan
    strategies: classifies each index (self-sufficient / fetch-needed /
    order-needed), estimates range cardinalities by descent-to-split,
    orders Jscan candidates by ascending estimate, and applies the
    paper's estimation-cost reductions:

    - indexes are estimated in the order the *previous* retrieval found
      best (stored on the table);
    - when a very short range is found, estimation of the remaining
      indexes stops (their estimate defaults, pessimistically, to the
      index cardinality);
    - an exactly-empty range cancels the whole retrieval: "end of
      data" at once. *)

open Rdb_engine
open Rdb_exec
open Rdb_storage

type classified = {
  jscan_candidates : Scan.candidate list;  (** ascending estimate *)
  self_sufficient : Scan.candidate list;  (** covering, ascending cost *)
  order_index : Scan.candidate option;  (** best order-providing index *)
  union_candidates : Scan.candidate list;
      (** one bounded candidate per OR disjunct when the whole
          restriction is a covered OR (the §7 union extension); empty
          otherwise.  Exactly-empty disjuncts are dropped. *)
  estimation_nodes : int;  (** node reads spent estimating *)
}

type decision =
  | No_rows of string  (** empty range: cancel all stages *)
  | Arranged of classified

val shortcut_threshold : int
(** Estimates at or below this stop further estimation (16). *)

val run :
  Table.t ->
  Cost.t ->
  Trace.t ->
  feedback_rate:float ->
  restriction:Predicate.t ->
  needed_columns:string list ->
  order_by:string list ->
  decision
(** [restriction] must be bound.  [needed_columns] is every column the
    query must produce or examine (for self-sufficiency).  Updates the
    table's preferred index order as a side effect.

    When [feedback_rate > 0.] every {i inexact} descent estimate is
    scaled by the table's learned {!Feedback} factor for that
    (index, ranges) cell before it is announced — a
    [Trace.Feedback_applied] event precedes the [Estimated] event and
    the candidate carries the corrected value, so competition
    thresholds and switch points consume it.  Exact estimates are
    never corrected (correction is cost-only by construction).  At
    rate 0 (the default config) the path is byte-identical to the
    uncorrected one. *)

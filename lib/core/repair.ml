open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type t = {
  table : Table.t;
  index : string;
  new_tree : Btree.t;
  key_of : Row.t -> Btree.key;
  meter : Cost.t;
  cursor : Heap_file.cursor;
  batch : int;
  retry_limit : int;
  trace : Trace.t;
  mutable pending : (Rid.t * Row.t) option;
      (* a row read from the heap whose insert faulted: replayed first *)
  mutable entries : int;
  mutable consec_faults : int;
  mutable result : bool option;
}

let default_batch = 64
let default_retry_limit = 8

let emit_transition t tr =
  match Table.note_transition t.table tr with
  | None -> ()
  | Some tr ->
      Trace.emit t.trace
        (Trace.Health_transition
           {
             structure = tr.Health.tr_structure;
             from_ = Health.state_to_string tr.Health.tr_from;
             to_ = Health.state_to_string tr.Health.tr_to;
             reason = tr.Health.tr_reason;
           })

let create ?(batch = default_batch) ?(retry_limit = default_retry_limit) table ~index =
  if batch < 1 then invalid_arg "Repair.create: batch < 1";
  let idx =
    match Table.find_index table index with
    | Some idx -> idx
    | None -> invalid_arg ("Repair.create: unknown index " ^ index)
  in
  let meter = Cost.create () in
  let t =
    {
      table;
      index;
      new_tree = Btree.create ~fanout:(Btree.fanout idx.Table.tree) (Table.pool table);
      key_of = Table.index_key idx;
      meter;
      cursor = Heap_file.scan (Table.heap table) meter;
      batch;
      retry_limit;
      trace = Trace.create ();
      pending = None;
      entries = 0;
      consec_faults = 0;
      result = None;
    }
  in
  Trace.emit t.trace (Trace.Repair_started { index });
  emit_transition t (Health.begin_rebuild (Table.health table) index);
  t

let index_name t = t.index
let entries t = t.entries
let spent t = Cost.total t.meter
let trace t = t.trace
let result t = t.result

let finish t ok =
  t.result <- Some ok;
  if ok then Table.replace_index t.table ~name:t.index t.new_tree;
  emit_transition t
    (Health.end_rebuild (Table.health t.table) ~now:(Table.now t.table) ~ok t.index);
  (match Buffer_pool.metrics (Table.pool t.table) with
  | None -> ()
  | Some m ->
      let module M = Rdb_util.Metrics in
      M.incr (M.counter m (if ok then "repair.completed" else "repair.failed"));
      M.add (M.counter m "repair.entries") t.entries);
  Trace.emit t.trace
    (Trace.Repair_done { index = t.index; entries = t.entries; cost = spent t; ok });
  `Done ok

(* One scheduler quantum: copy up to [batch] heap entries into the new
   tree.  The heap cursor retries the same page after a faulted read
   and (key, rid) inserts are idempotent, so transient faults replay
   the in-flight row instead of dropping or duplicating it. *)
let step t =
  match t.result with
  | Some ok -> `Done ok
  | None -> (
      let insert_row (rid, row) =
        t.pending <- Some (rid, row);
        Btree.insert t.new_tree t.meter (t.key_of row) rid;
        t.pending <- None;
        t.entries <- t.entries + 1
      in
      let rec copy n =
        if n = 0 then `Working
        else begin
          match t.pending with
          | Some p ->
              insert_row p;
              t.consec_faults <- 0;
              copy (n - 1)
          | None -> (
              match Heap_file.next t.cursor with
              | None -> `Copied_all
              | Some p ->
                  insert_row p;
                  t.consec_faults <- 0;
                  copy (n - 1))
        end
      in
      match copy t.batch with
      | `Working -> `Working
      | `Copied_all -> finish t true
      | exception Fault.Injected f ->
          Trace.emit t.trace
            (Trace.Fault_detected { site = "repair"; fault = Fault.describe f });
          t.consec_faults <- t.consec_faults + 1;
          if Fault.is_transient f && t.consec_faults <= t.retry_limit then begin
            (* Same deterministic backoff as retrieval: the i-th
               consecutive retry charges i physical reads. *)
            for _ = 1 to t.consec_faults do
              Cost.charge_physical t.meter
            done;
            Trace.emit t.trace
              (Trace.Fault_retry
                 { site = "repair"; attempt = t.consec_faults; penalty = t.consec_faults });
            `Working
          end
          else
            (* The ground truth itself is unreadable (or persistently
               flaky): give up; the index goes back to quarantine with
               an escalated backoff. *)
            finish t false)

let run t =
  let rec loop () = match step t with `Working -> loop () | `Done ok -> ok in
  loop ()

open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type t = {
  table : Table.t;
  index : string;
  new_tree : Btree.t;
  rebuild_id : int;  (* two-phase manifest record (DESIGN.md §15) *)
  key_of : Row.t -> Btree.key;
  meter : Cost.t;
  cursor : Heap_file.cursor;
  batch : int;
  retry_limit : int;
  trace : Trace.t;
  mutable pending : (Rid.t * Row.t) option;
      (* a row read from the heap whose insert faulted: replayed first *)
  mutable entries : int;
  mutable pump : Scan.cursor option;
      (* the copy loop under its fault ladder (Tactic.with_policy over
         the shared driver; installed lazily — it closes over [t]); the
         embedded driver owns the consecutive-fault count *)
  mutable result : bool option;
}

let default_batch = 64
let default_retry_limit = 8

let emit_transition t tr =
  match Table.note_transition t.table tr with
  | None -> ()
  | Some tr ->
      Trace.emit t.trace
        (Trace.Health_transition
           {
             structure = tr.Health.tr_structure;
             from_ = Health.state_to_string tr.Health.tr_from;
             to_ = Health.state_to_string tr.Health.tr_to;
             reason = tr.Health.tr_reason;
           })

let create ?(batch = default_batch) ?(retry_limit = default_retry_limit) table ~index =
  if batch < 1 then invalid_arg "Repair.create: batch < 1";
  let idx =
    match Table.find_index table index with
    | Some idx -> idx
    | None -> invalid_arg ("Repair.create: unknown index " ^ index)
  in
  let meter = Cost.create () in
  let new_tree =
    Btree.create ~fanout:(Btree.fanout idx.Table.tree) (Table.pool table)
  in
  (* Two-phase rebuild: register the side tree in the durable manifest
     before copying a single row.  A crash at any later step boundary
     leaves this record [Building] — a detectable orphan recovery
     discards — never a half-swapped tree. *)
  let rebuild_id =
    Manifest.begin_rebuild
      (Buffer_pool.manifest (Table.pool table))
      ~table:(Table.name table) ~index ~side_file:(Btree.file_id new_tree)
  in
  let t =
    {
      table;
      index;
      new_tree;
      rebuild_id;
      key_of = Table.index_key idx;
      meter;
      cursor = Heap_file.scan (Table.heap table) meter;
      batch;
      retry_limit;
      trace = Trace.create ();
      pending = None;
      entries = 0;
      pump = None;
      result = None;
    }
  in
  Trace.emit t.trace (Trace.Repair_started { index });
  emit_transition t (Health.begin_rebuild (Table.health table) index);
  t

let index_name t = t.index
let entries t = t.entries
let spent t = Cost.total t.meter
let trace t = t.trace
let result t = t.result

let finish t ok =
  t.result <- Some ok;
  (* Manifest commit and tree swap happen in the same driver step, and
     crashes only fire between steps — the pair is atomic.  A failed
     rebuild aborts its record so the side tree is never mistaken for
     an orphan of a crash. *)
  let manifest = Buffer_pool.manifest (Table.pool t.table) in
  if ok then begin
    Manifest.commit_rebuild manifest t.rebuild_id;
    Table.replace_index t.table ~name:t.index t.new_tree
  end
  else Manifest.abort_rebuild manifest t.rebuild_id;
  emit_transition t
    (Health.end_rebuild (Table.health t.table) ~now:(Table.now t.table) ~ok t.index);
  (match Buffer_pool.metrics (Table.pool t.table) with
  | None -> ()
  | Some m ->
      let module M = Rdb_util.Metrics in
      M.incr (M.counter m (if ok then "repair.completed" else "repair.failed"));
      M.add (M.counter m "repair.entries") t.entries);
  Trace.emit t.trace
    (Trace.Repair_done { index = t.index; entries = t.entries; cost = spent t; ok });
  `Done ok

(* One copy as a cursor step.  The heap cursor retries the same page
   after a faulted read and (key, rid) inserts are idempotent, so
   transient faults replay the in-flight row instead of dropping or
   duplicating it. *)
let copy_step t =
  let insert_row (rid, row) =
    t.pending <- Some (rid, row);
    Btree.insert t.new_tree t.meter (t.key_of row) rid;
    t.pending <- None;
    t.entries <- t.entries + 1
  in
  match
    match t.pending with
    | Some p ->
        insert_row p;
        `Copied
    | None -> (
        match Heap_file.next t.cursor with
        | None -> `Copied_all
        | Some p ->
            insert_row p;
            `Copied)
  with
  | `Copied -> Scan.Continue
  | `Copied_all -> Scan.Done
  | exception Fault.Injected f -> Scan.Failed f

(* The repair ladder (DESIGN.md §17): the same bounded retry with
   deterministic backoff as retrieval, then give up — when the ground
   truth itself is unreadable (or persistently flaky) the rebuild
   stops and the index goes back to quarantine with an escalated
   backoff. *)
let fault_policy t =
  Tactic.Policy.(
    seal
      ~observe:(fun f ~consec:_ ->
        Trace.emit t.trace
          (Trace.Fault_detected { site = "repair"; fault = Fault.describe f }))
      (stack
         [
           bounded_retry ~limit:t.retry_limit ~penalize:(fun _ ~consec ->
               (* The i-th consecutive retry charges i physical reads. *)
               for _ = 1 to consec do
                 Cost.charge_physical t.meter
               done;
               Trace.emit t.trace
                 (Trace.Fault_retry
                    { site = "repair"; attempt = consec; penalty = consec }));
           give_up ~name:"give-up";
         ]))

let pump_of t =
  match t.pump with
  | Some c -> c
  | None ->
      let c =
        Tactic.with_policy (fault_policy t)
          (Scan.cursor_of_step
             ~cost:(fun () -> Cost.total t.meter)
             ~max_steps:t.batch
             (fun () -> copy_step t))
      in
      t.pump <- Some c;
      c

(* One scheduler quantum: one driver batch of up to [batch] copies. *)
let step t =
  match t.result with
  | Some ok -> `Done ok
  | None -> (
      match ((pump_of t).Scan.next_batch ~budget:infinity).Scan.status with
      | Scan.More -> `Working
      | Scan.Exhausted -> finish t true
      | Scan.Faulted _ -> finish t false)

let run t =
  let rec loop () = match step t with `Working -> loop () | `Done ok -> ok in
  loop ()

let grant t ~budget ~max_steps =
  let res = ref None in
  Driver.clocked_loop
    ~spent:(fun () -> Cost.total t.meter)
    ~budget ~max_steps
    ~stop:(fun () -> !res <> None)
    ~step:(fun () ->
      match step t with
      | `Working -> `Continue
      | `Done ok ->
          res := Some ok;
          `Finished);
  !res

open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_storage

type result = {
  rows : Row.t list;
  cost : float;
  trace : Trace.event list;
  used_tscan : bool;
}

let run ?(keep_threshold = 0.25) ?limit table pred ~env =
  let meter = Cost.create () in
  let trace = Trace.create () in
  let restriction = Predicate.simplify (Predicate.bind pred env) in
  let card = float_of_int (Int.max 1 (Table.row_count table)) in
  (* Static selection: estimate every index once, keep those under the
     fixed threshold, order ascending.  This *is* dynamic estimation
     at start-retrieval time — what MoHa90 supports — but nothing is
     revisited once scanning begins. *)
  let candidates =
    List.filter_map
      (fun idx ->
        let extraction = Range_extract.for_index restriction idx in
        if not extraction.Range_extract.bounded then None
        else begin
          let r = Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges in
          if r.Estimate.estimate > keep_threshold *. card then None
          else
            Some
              {
                Scan.idx;
                ranges = extraction.Range_extract.ranges;
                residual = extraction.Range_extract.residual;
                est = r.Estimate.estimate;
                est_exact = r.Estimate.exact;
              }
        end)
      (Table.indexes table)
  in
  let candidates =
    List.stable_sort (fun a b -> Float.compare a.Scan.est b.Scan.est) candidates
  in
  let rows = ref [] in
  let count = ref 0 in
  let want_more () = match limit with Some n -> !count < n | None -> true in
  let run_steps step =
    let rec loop () =
      if want_more () then begin
        match step () with
        | Scan.Deliver (_, row) ->
            rows := row :: !rows;
            incr count;
            loop ()
        | Scan.Continue -> loop ()
        | Scan.Done -> ()
        | Scan.Failed f ->
            (* static paths run with no injector installed *)
            raise (Fault.Injected f)
      end
    in
    loop ()
  in
  let used_tscan = ref false in
  (if candidates = [] then begin
     used_tscan := true;
     Trace.emit trace (Trace.Use_tscan { reason = "no index under the static threshold" });
     let t = Tscan.create table meter restriction in
     run_steps (fun () -> Tscan.step t)
   end
   else begin
     let cfg = { Jscan.default_config with dynamic = false; simultaneous = false } in
     let jscan = Jscan.create table meter cfg trace ~candidates in
     match Jscan.run jscan with
     | Jscan.Rid_list rids ->
         let fin =
           Final_stage.create table meter ~rids ~restriction ~exclude:(fun _ -> false)
         in
         run_steps (fun () -> Final_stage.step fin)
     | Jscan.Recommend_tscan _ ->
         used_tscan := true;
         let t = Tscan.create table meter restriction in
         run_steps (fun () -> Tscan.step t)
   end);
  Trace.emit trace (Trace.Retrieval_done { rows = !count; cost = Cost.total meter });
  {
    rows = List.rev !rows;
    cost = Cost.total meter;
    trace = Trace.events trace;
    used_tscan = !used_tscan;
  }

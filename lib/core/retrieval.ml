open Rdb_data
open Rdb_engine
open Rdb_exec
open Rdb_rid
open Rdb_storage

type config = {
  jscan : Jscan.config;
  fgr_buffer_cap : int;
  fgr_waste_cap : float;
  speed_ratio : float;
  default_goal : Goal.t;
  retry_limit : int;
      (** consecutive faulted quanta tolerated before a transient fault
          is escalated to the non-retriable policy *)
  batch_budget : float;
      (** cost budget per cursor batch; 0. = one step per batch (the
          row-at-a-time protocol).  Steers amortization only: rows,
          order, and charged cost are batch-size-independent *)
  bgr_enabled : bool;
      (** [false] drops the competitive background-refinement arms
          (index-only falls back to its foreground Sscan, sorted to its
          foreground Fscan) — the scheduler's graceful-degradation
          rung.  Tactics whose background is the sole row source are
          unaffected.  Rows and order are invariant *)
  cost_quota : float option;
      (** per-query cost ceiling, checked at quantum boundaries *)
  feedback_rate : float;
      (** learning rate for the table's cardinality-feedback store
          (DESIGN.md §13).  0. (the default) disables the loop
          entirely — no corrections, no observations, no events:
          byte-identical to a build without it.  Positive rates scale
          inexact descent estimates by learned factors and fold each
          completed scan's actual back in at [close].  Cost-only:
          rows and order are invariant under any rate *)
  metrics : Rdb_util.Metrics.t option;
      (** observation-only registry; per-retrieval aggregates are
          recorded at [close] *)
}

let default_config =
  {
    jscan = Jscan.default_config;
    fgr_buffer_cap = 512;
    fgr_waste_cap = 0.5;
    speed_ratio = 1.0;
    default_goal = Goal.Total_time;
    retry_limit = 8;
    batch_budget = 0.0;
    bgr_enabled = true;
    cost_quota = None;
    feedback_rate = 0.0;
    metrics = None;
  }

type request = {
  restriction : Predicate.t;
  env : Predicate.env;
  explicit_goal : Goal.t option;
  context : Goal.controlling_node option;
  order_by : string list;
  projection : string list option;
}

let request ?(env = []) ?explicit_goal ?context ?(order_by = []) ?projection restriction =
  { restriction; env; explicit_goal; context; order_by; projection }

type tactic_kind =
  | Static_tscan
  | Static_sscan
  | Static_fscan
  | Background_only
  | Fast_first_tactic
  | Sorted_tactic
  | Index_only_tactic
  | Union_tactic
  | Cancelled

let tactic_to_string = function
  | Static_tscan -> "static Tscan"
  | Static_sscan -> "static Sscan"
  | Static_fscan -> "static Fscan"
  | Background_only -> "background-only (Jscan)"
  | Fast_first_tactic -> "fast-first (Fgr borrows from Jscan)"
  | Sorted_tactic -> "sorted (Fscan + Jscan filter)"
  | Index_only_tactic -> "index-only (Sscan vs Jscan)"
  | Union_tactic -> "union (one scan per OR disjunct)"
  | Cancelled -> "cancelled (empty range)"

(* How the retrieval ended.  The stream API ([fetch] returning [None])
   does not distinguish these; the summary does, and the SQL executor
   turns anything but [Completed] into a reported error. *)
type status =
  | Completed
  | Cancelled_quota of { spent : float; quota : float }
  | Timed_out of { spent : float; deadline : float }
      (** a scheduler-imposed cost deadline cancelled the session at a
          grant boundary; delivered rows stand *)
  | Aborted of { fault : string }
      (** the heap itself was unreadable; no degradation path exists *)

let status_to_string = function
  | Completed -> "completed"
  | Cancelled_quota { spent; quota } ->
      Printf.sprintf "cancelled: cost quota exceeded (%.1f of %.1f)" spent quota
  | Timed_out { spent; deadline } ->
      Printf.sprintf "timed out: cost deadline exceeded (%.1f of %.1f)" spent deadline
  | Aborted { fault } -> Printf.sprintf "aborted: %s" fault

type summary = {
  rows_delivered : int;
  total_cost : float;
  cost_to_first_row : float option;
  tactic : tactic_kind;
  goal : Goal.t;
  goal_provenance : string;
  policy : string;  (** the composed fault-policy ladder (DESIGN.md §17) *)
  status : status;
  trace : Trace.event list;
}

(* ------------------------------------------------------------------ *)
(* Stage-2 machinery shared by background-bearing tactics              *)
(* ------------------------------------------------------------------ *)

type stage2 = S_final of Final_stage.t | S_tscan of Tscan.t

type fast_first = {
  ff_jscan : Jscan.t;
  ff_delivered : (Rid.t, unit) Hashtbl.t;
  mutable ff_active : bool;  (** foreground still running *)
  mutable ff_wasted : int;  (** fetches rejected by the restriction *)
  mutable ff_stage2 : stage2 option;
}

type sorted_t = {
  so_fscan : Fscan.t;
  so_jscan : Jscan.t;
  mutable so_bgr_active : bool;
}

type index_only = {
  io_sscan : Sscan.t;
  io_cand : Scan.candidate;
  io_jscan : Jscan.t;
  io_delivered : (Rid.t, unit) Hashtbl.t;
  mutable io_bgr_active : bool;
  mutable io_stage2 : stage2 option;
}

type bg_only = { bg_jscan : Jscan.t; mutable bg_stage2 : stage2 option }

type union_t = { un_scan : Uscan.t; mutable un_stage2 : stage2 option }

type machine =
  | M_tscan of Tscan.t
  | M_sscan of Sscan.t
  | M_fscan of Fscan.t
  | M_bg_only of bg_only
  | M_fast_first of fast_first
  | M_sorted of sorted_t
  | M_index_only of index_only
  | M_union of union_t
  | M_empty

type cursor = {
  table : Table.t;
  cfg : config;
  trace : Trace.t;
  tactic : tactic_kind;
  goal : Goal.t;
  goal_provenance : string;
  restriction : Predicate.t;  (** bound *)
  mutable machine : machine;  (** mutable: fault fallback swaps in a Tscan *)
  mutable tac : Tactic.t;
      (** the machine's behavior as a composed tactic (DESIGN.md §17);
          rebuilt whenever [machine] is swapped *)
  fgr_meter : Cost.t;
  bgr_meter : Cost.t;
  est_meter : Cost.t;
  order_ids : int array;  (** requested order, as column positions *)
  mutable sorted_rows : (Rid.t * Row.t) list option;  (** materialized post-sort *)
  mutable presort : (Rid.t * Row.t) list;
      (** rows accumulated (reversed) while draining ahead of the sort *)
  mutable needs_sort : bool;
  ordered_by_index : bool;
      (** delivery order came from an index: a fault fallback must
          re-sort the remainder to keep the stream ordered *)
  feedback_pending : Scan.candidate list;
      (** inexact planned candidates awaiting an actual: paired with
          [Scan_completed] events at [close] and folded into the
          table's feedback store (empty unless [feedback_rate > 0.]) *)
  delivered_rids : (Rid.t, unit) Hashtbl.t;
  mutable exclude_delivered : bool;
      (** set at fault fallback: the replacement Tscan must not
          re-deliver rows the faulted scan already produced *)
  mutable driver : Driver.t option;
      (** the shared cursor driver pumping the machine; installed right
          after construction (it closes over this record).
          Consecutive-fault counting lives in the driver *)
  mutable inbox : (Rid.t * Row.t) list;
      (** batch rows accepted but not yet handed to [step] *)
  mutable pending_bg : (Fault.failure -> unit) option;
      (** quarantine action for a fault surfaced by a background
          competitor this quantum; [None] means the fault is the
          foreground's *)
  mutable aborted : string option;
  mutable quota_hit : (float * float) option;
  mutable deadline_hit : (float * float) option;
      (** (spent, deadline): the scheduler cancelled this cursor at a
          grant boundary ({!note_deadline}) *)
  mutable delivered : int;
  mutable first_row_cost : float option;
  mutable closed : bool;
  mutable summary : summary option;
}

let total_cost c =
  Cost.total c.fgr_meter +. Cost.total c.bgr_meter +. Cost.total c.est_meter

(* ------------------------------------------------------------------ *)
(* Tactic selection                                                    *)
(* ------------------------------------------------------------------ *)

let covering_sscan_choice table (classified : Initial_stage.classified) =
  (* Cheapest self-sufficient scan, compared against Tscan. *)
  match classified.Initial_stage.self_sufficient with
  | [] -> None
  | ss ->
      let cost c = Cost_model.index_scan_cost c.Scan.idx ~entries:c.Scan.est in
      let best =
        List.fold_left (fun acc c -> if cost c < cost acc then c else acc) (List.hd ss) ss
      in
      if cost best <= Cost_model.tscan_cost table then Some best else None

let fetch_needed_candidates classified =
  classified.Initial_stage.jscan_candidates

let decide table goal ~bgr ~order_by ~(classified : Initial_stage.classified) trace =
  let emit tactic reason =
    Trace.emit trace (Trace.Tactic_chosen { tactic = tactic_to_string tactic; reason });
    tactic
  in
  let cands = fetch_needed_candidates classified in
  let best_ss = covering_sscan_choice table classified in
  let order_idx = classified.Initial_stage.order_index in
  match (goal, order_by, order_idx) with
  | Goal.Fast_first, _ :: _, Some oi
    when not (Table.index_covers oi.Scan.idx ~columns:(Predicate.columns oi.Scan.residual))
         || best_ss = None ->
      (* Order-providing fetch-needed index: sorted tactic if any other
         index can build a filter, else classical Fscan. *)
      let others =
        List.filter (fun c -> c.Scan.idx.Table.idx_name <> oi.Scan.idx.Table.idx_name) cands
      in
      if others = [] then emit Static_fscan "only the order-needed index is useful"
      else if not bgr then
        emit Static_fscan "background refinement disabled (overload degradation)"
      else emit Sorted_tactic "order-delivering Fscan with filter-delivering Jscan"
  | _ -> (
      match (best_ss, cands) with
      | Some ss, others when List.exists (fun c -> c.Scan.idx.Table.idx_name <> ss.Scan.idx.Table.idx_name) others ->
          if not bgr then
            emit Static_sscan "background refinement disabled (overload degradation)"
          else emit Index_only_tactic "self-sufficient Sscan competes with Jscan"
      | Some _, _ -> emit Static_sscan "single useful self-sufficient index"
      | None, [] ->
          if classified.Initial_stage.union_candidates <> [] then
            emit Union_tactic "every OR disjunct has a usable index"
          else emit Static_tscan "no useful index"
      | None, _ :: _ -> (
          match goal with
          | Goal.Total_time -> emit Background_only "total-time with fetch-needed indexes"
          | Goal.Fast_first -> emit Fast_first_tactic "fast-first with fetch-needed indexes"))

(* ------------------------------------------------------------------ *)
(* Machine construction                                                *)
(* ------------------------------------------------------------------ *)

let sscan_candidate_of classified table =
  match covering_sscan_choice table classified with
  | Some c -> c
  | None -> (
      match classified.Initial_stage.self_sufficient with
      | c :: _ -> c
      | [] -> invalid_arg "sscan_candidate_of: no self-sufficient index")

let build_machine cursor_cfg table trace restriction
    ~(classified : Initial_stage.classified) ~fgr_meter ~bgr_meter tactic =
  match tactic with
  | Cancelled -> M_empty
  | Static_tscan -> M_tscan (Tscan.create table fgr_meter restriction)
  | Static_sscan ->
      let cand = sscan_candidate_of classified table in
      M_sscan (Sscan.create table fgr_meter cand ~restriction)
  | Static_fscan -> (
      match classified.Initial_stage.order_index with
      | Some oi -> M_fscan (Fscan.create table fgr_meter oi ~restriction)
      | None -> (
          match classified.Initial_stage.jscan_candidates with
          | c :: _ -> M_fscan (Fscan.create table fgr_meter c ~restriction)
          | [] -> M_tscan (Tscan.create table fgr_meter restriction)))
  | Background_only ->
      let jscan =
        Jscan.create table bgr_meter cursor_cfg.jscan trace
          ~candidates:classified.Initial_stage.jscan_candidates
      in
      M_bg_only { bg_jscan = jscan; bg_stage2 = None }
  | Fast_first_tactic ->
      let jscan =
        Jscan.create table bgr_meter cursor_cfg.jscan trace
          ~candidates:classified.Initial_stage.jscan_candidates
      in
      M_fast_first
        {
          ff_jscan = jscan;
          ff_delivered = Hashtbl.create 64;
          ff_active = true;
          ff_wasted = 0;
          ff_stage2 = None;
        }
  | Sorted_tactic -> (
      match classified.Initial_stage.order_index with
      | None -> invalid_arg "sorted tactic without order index"
      | Some oi ->
          let others =
            List.filter
              (fun c -> c.Scan.idx.Table.idx_name <> oi.Scan.idx.Table.idx_name)
              classified.Initial_stage.jscan_candidates
          in
          (* The background Jscan builds a *filter*: it competes
             against the foreground Fscan's remaining cost (scan plus
             one fetch per in-range entry), not against a Tscan. *)
          let fscan_cost =
            Cost_model.index_scan_cost oi.Scan.idx ~entries:oi.Scan.est
            +. Cost_model.key_order_fetch_cost table oi.Scan.idx ~entries:oi.Scan.est
          in
          let jscan_cfg =
            {
              cursor_cfg.jscan with
              Jscan.filter_only = true;
              initial_guaranteed_best = Some fscan_cost;
            }
          in
          let jscan = Jscan.create table bgr_meter jscan_cfg trace ~candidates:others in
          M_sorted
            {
              so_fscan = Fscan.create table fgr_meter oi ~restriction;
              so_jscan = jscan;
              so_bgr_active = true;
            })
  | Union_tactic ->
      let cfg =
        {
          Uscan.default_config with
          Uscan.switch_ratio = cursor_cfg.jscan.Jscan.switch_ratio;
          memory_budget = cursor_cfg.jscan.Jscan.memory_budget;
        }
      in
      let us =
        Uscan.create table bgr_meter cfg trace
          ~disjuncts:classified.Initial_stage.union_candidates
      in
      M_union { un_scan = us; un_stage2 = None }
  | Index_only_tactic ->
      let cand = sscan_candidate_of classified table in
      let others =
        List.filter
          (fun c -> c.Scan.idx.Table.idx_name <> cand.Scan.idx.Table.idx_name)
          classified.Initial_stage.jscan_candidates
      in
      let jscan = Jscan.create table bgr_meter cursor_cfg.jscan trace ~candidates:others in
      M_index_only
        {
          io_sscan = Sscan.create table fgr_meter cand ~restriction;
          io_cand = cand;
          io_jscan = jscan;
          io_delivered = Hashtbl.create 64;
          io_bgr_active = true;
          io_stage2 = None;
        }

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

let step_stage2 table restriction delivered stage2 =
  match stage2 with
  | S_final f -> Final_stage.step f
  | S_tscan t -> (
      match Tscan.step t with
      | Scan.Deliver (rid, _) when Hashtbl.mem delivered rid -> Scan.Continue
      | s ->
          ignore table;
          ignore restriction;
          s)

let make_stage2 c outcome ~delivered =
  let exclude rid = Hashtbl.mem delivered rid in
  match outcome with
  | Jscan.Rid_list rids ->
      Trace.emit c.trace
        (Trace.Final_stage { rids = Array.length rids; filtered_delivered = Hashtbl.length delivered });
      S_final
        (Final_stage.create c.table c.bgr_meter ~rids ~restriction:c.restriction ~exclude)
  | Jscan.Recommend_tscan _ -> S_tscan (Tscan.create c.table c.bgr_meter c.restriction)

let fgr_cost c = Cost.total c.fgr_meter
let bgr_cost c = Cost.total c.bgr_meter

let prefer_fgr c = fgr_cost c <= bgr_cost c *. c.cfg.speed_ratio

(* A background competitor faulted this quantum: park its quarantine
   action for the fault policy (which decides retry vs quarantine) and
   surface the failure.  One helper for every background arm —
   bg-only, fast-first, sorted, index-only, and the union scan. *)
let bg_failed c quarantine f =
  c.pending_bg <- Some quarantine;
  Scan.Failed f

(* Successor thunk for [Tactic.then_]: build the final stage from the
   settled background outcome (the [Final_stage] trace event fires
   here, in the switch quantum, exactly as the bespoke machines
   emitted it) and step it from then on.  [store] parks the stage on
   the machine record so the batch-boundary cache drop can reach it. *)
let stage2_successor c ~delivered ~store outcome =
  let s2 = make_stage2 c outcome ~delivered in
  store s2;
  fun () -> step_stage2 c.table c.restriction delivered s2

(* One quantum of the fast-first foreground phase.  The background
   Jscan is always advanced first (it is also the RID source); the
   foreground additionally borrows a RID when its spent cost lags the
   background's.  The bg-step + borrow pairing stays one arm on
   purpose: §7's fast-first couples the two inside a single quantum,
   which a per-quantum [Tactic.race] cannot express — the one
   deliberate exception noted in DESIGN.md §17. *)
let fast_first_phase1 c ff =
  match Jscan.step ff.ff_jscan with
  | `Faulted f -> bg_failed c (Jscan.quarantine ff.ff_jscan) f
  | `Finished _ ->
      if ff.ff_active then
        Trace.emit c.trace (Trace.Foreground_stopped { reason = "background completed" });
      ff.ff_active <- false;
      Scan.Done
  | `Working ->
      if ff.ff_active && prefer_fgr c then begin
        match Jscan.borrow ff.ff_jscan with
        | None -> Scan.Continue
        | Some rid ->
            if Hashtbl.mem ff.ff_delivered rid then Scan.Continue
            else begin
              (* A faulted borrowed fetch is reported as a
                 *foreground* heap fault; the borrowed RID is not
                 replayed, which is safe — any true result row it
                 names is still owed by the final stage (or the
                 Tscan fallback), which excludes only delivered
                 rows. *)
              match Heap_file.fetch (Table.heap c.table) c.fgr_meter rid with
              | exception Fault.Injected f -> Scan.Failed f
              | None -> Scan.Continue
              | Some row ->
                  if Predicate.eval c.restriction (Table.schema c.table) row then begin
                    Hashtbl.replace ff.ff_delivered rid ();
                    if Hashtbl.length ff.ff_delivered >= c.cfg.fgr_buffer_cap then begin
                      ff.ff_active <- false;
                      Trace.emit c.trace
                        (Trace.Foreground_stopped { reason = "foreground buffer overflow" })
                    end;
                    Scan.Deliver (rid, row)
                  end
                  else begin
                    ff.ff_wasted <- ff.ff_wasted + 1;
                    let wasted_cost =
                      float_of_int ff.ff_wasted *. Cost.default_weights.Cost.physical_read
                    in
                    if
                      wasted_cost
                      > c.cfg.fgr_waste_cap *. Jscan.guaranteed_best ff.ff_jscan
                    then begin
                      ff.ff_active <- false;
                      Trace.emit c.trace
                        (Trace.Foreground_stopped
                           { reason = "wasted fetches exceed competition cap" })
                    end;
                    Scan.Continue
                  end
            end
      end
      else Scan.Continue

(* Sorted tactic arms: the foreground Fscan is the only deliverer; the
   background Jscan builds a filter while its cost lags. *)
let sorted_bg c so =
  match Jscan.step so.so_jscan with
  | `Faulted f -> bg_failed c (Jscan.quarantine so.so_jscan) f
  | `Working -> Scan.Continue
  | `Finished (Jscan.Rid_list rids) ->
      so.so_bgr_active <- false;
      Fscan.set_filter so.so_fscan (Filter.of_sorted_array rids);
      Scan.Continue
  | `Finished (Jscan.Recommend_tscan _) ->
      so.so_bgr_active <- false;
      Scan.Continue

let sorted_fg c so =
  match Fscan.step so.so_fscan with
  | Scan.Done ->
      if so.so_bgr_active then begin
        so.so_bgr_active <- false;
        Trace.emit c.trace (Trace.Background_stopped { reason = "foreground finished first" })
      end;
      Scan.Done
  | s -> s

(* Index-only arms: the self-sufficient Sscan delivers; the Jscan
   competes for a sure list that preempts it. *)
let index_only_bg c io =
  match Jscan.step io.io_jscan with
  | `Faulted f -> bg_failed c (Jscan.quarantine io.io_jscan) f
  | `Working -> Scan.Continue
  | `Finished (Jscan.Recommend_tscan _) ->
      io.io_bgr_active <- false;
      Trace.emit c.trace
        (Trace.Background_stopped { reason = "Jscan found no competitive list" });
      Scan.Continue
  | `Finished (Jscan.Rid_list rids) ->
      io.io_bgr_active <- false;
      (* Is the "sure" RID-list retrieval cheaper than finishing
         the Sscan? *)
      let remaining =
        Float.max 0.0 (io.io_cand.Scan.est -. float_of_int (Sscan.delivered io.io_sscan))
      in
      let sscan_rest = Cost_model.index_scan_cost io.io_cand.Scan.idx ~entries:remaining in
      let list_cost = Cost_model.rid_fetch_cost c.table ~k:(Array.length rids) in
      if list_cost < sscan_rest then begin
        Trace.emit c.trace
          (Trace.Foreground_stopped
             { reason = "Jscan delivered a small sure list; Sscan abandoned" });
        Trace.emit c.trace
          (Trace.Final_stage
             { rids = Array.length rids; filtered_delivered = Hashtbl.length io.io_delivered });
        io.io_stage2 <-
          Some
            (S_final
               (Final_stage.create c.table c.bgr_meter ~rids ~restriction:c.restriction
                  ~exclude:(fun rid -> Hashtbl.mem io.io_delivered rid)))
      end;
      Scan.Continue

let index_only_fg c io =
  match Sscan.step io.io_sscan with
  | Scan.Deliver (rid, row) ->
      Hashtbl.replace io.io_delivered rid ();
      if Hashtbl.length io.io_delivered >= c.cfg.fgr_buffer_cap && io.io_bgr_active
      then begin
        (* Foreground buffer overflow: the safer Sscan wins,
           Jscan terminates (§7 index-only). *)
        io.io_bgr_active <- false;
        Trace.emit c.trace
          (Trace.Background_stopped
             { reason = "foreground buffer overflow; Sscan is the safer strategy" })
      end;
      Scan.Deliver (rid, row)
  | s -> s

(* The machine's behavior, assembled from Tactic combinators
   (DESIGN.md §17).  Each arm above is a one-quantum closure over the
   tactic's state; phase sequencing ([then_]: the background settles,
   then the final stage), cost competition ([race]: the §3
   foreground/background switch), and mid-flight takeover ([preempt]:
   index-only's sure list replacing the Sscan) belong to the
   combinators — no bespoke multi-phase step dispatch remains.
   Rebuilt whenever the machine is swapped (Tscan fallback). *)
let tactic_of c machine =
  match machine with
  | M_empty -> Tactic.halt
  | M_tscan t -> fun () -> Tscan.step t
  | M_sscan s -> fun () -> Sscan.step s
  | M_fscan f -> fun () -> Fscan.step f
  | M_bg_only bg ->
      let nobody = Hashtbl.create 0 in
      Tactic.then_
        (fun () ->
          match Jscan.step bg.bg_jscan with
          | `Working -> Scan.Continue
          | `Faulted f -> bg_failed c (Jscan.quarantine bg.bg_jscan) f
          | `Finished _ -> Scan.Done)
        (fun () ->
          stage2_successor c ~delivered:nobody
            ~store:(fun s2 -> bg.bg_stage2 <- Some s2)
            (Option.get (Jscan.outcome bg.bg_jscan)))
  | M_union un ->
      let nobody = Hashtbl.create 0 in
      Tactic.then_
        (fun () ->
          match Uscan.step un.un_scan with
          | `Working -> Scan.Continue
          | `Faulted f -> bg_failed c (Uscan.abandon un.un_scan) f
          | `Finished _ -> Scan.Done)
        (fun () ->
          let as_jscan =
            match Option.get (Uscan.outcome un.un_scan) with
            | Uscan.Rid_list rids -> Jscan.Rid_list rids
            | Uscan.Recommend_tscan r -> Jscan.Recommend_tscan r
          in
          stage2_successor c ~delivered:nobody
            ~store:(fun s2 -> un.un_stage2 <- Some s2)
            as_jscan)
  | M_fast_first ff ->
      Tactic.then_
        (fun () -> fast_first_phase1 c ff)
        (fun () ->
          stage2_successor c ~delivered:ff.ff_delivered
            ~store:(fun s2 -> ff.ff_stage2 <- Some s2)
            (Option.get (Jscan.outcome ff.ff_jscan)))
  | M_sorted so ->
      Tactic.race
        ~choose:(fun () ->
          if so.so_bgr_active && not (prefer_fgr c) then `Right else `Left)
        ~left:(fun () -> sorted_fg c so)
        ~right:(fun () -> sorted_bg c so)
  | M_index_only io ->
      Tactic.preempt
        (fun () ->
          match io.io_stage2 with
          | Some s2 ->
              Some (fun () -> step_stage2 c.table c.restriction io.io_delivered s2)
          | None -> None)
        (Tactic.race
           ~choose:(fun () ->
             if io.io_bgr_active && not (prefer_fgr c) then `Right else `Left)
           ~left:(fun () -> index_only_fg c io)
           ~right:(fun () -> index_only_bg c io))

(* ------------------------------------------------------------------ *)
(* Cursor API                                                          *)
(* ------------------------------------------------------------------ *)

let needed_columns table (req : request) restriction =
  let projection =
    match req.projection with
    | Some cols -> cols
    | None -> List.map (fun c -> c.Schema.name) (Schema.columns (Table.schema table))
  in
  let all = projection @ Predicate.columns restriction @ req.order_by in
  List.sort_uniq compare all

let open_ ?(config = default_config) table (req : request) =
  let trace = Trace.create () in
  Trace.emit trace (Trace.Span_begin { span = "plan" });
  let fgr_meter = Cost.create () in
  let bgr_meter = Cost.create () in
  let est_meter = Cost.create () in
  let restriction = Predicate.simplify (Predicate.bind req.restriction req.env) in
  let goal, goal_provenance =
    Goal.resolve ?explicit:req.explicit_goal ?context:req.context
      ~default:config.default_goal ()
  in
  let schema = Table.schema table in
  let order_ids = Array.of_list (List.map (Schema.index_of schema) req.order_by) in
  let tactic, machine, classified_order, feedback_pending =
    if restriction = Predicate.False then (Cancelled, M_empty, false, [])
    else begin
      match
        match
          Initial_stage.run table est_meter trace
            ~feedback_rate:config.feedback_rate ~restriction
            ~needed_columns:(needed_columns table req restriction)
            ~order_by:req.order_by
        with
        | Initial_stage.No_rows _ -> (Cancelled, M_empty, false, [])
        | Initial_stage.Arranged classified ->
            let tactic =
              decide table goal ~bgr:config.bgr_enabled ~order_by:req.order_by
                ~classified trace
            in
            let machine =
              build_machine config table trace restriction ~classified ~fgr_meter
                ~bgr_meter tactic
            in
            let ordered_delivery =
              match tactic with
              | Sorted_tactic | Static_fscan -> (
                  (* Ordered iff driven by an order-providing index. *)
                  match classified.Initial_stage.order_index with
                  | Some oi -> Table.index_provides_order oi.Scan.idx ~order:req.order_by
                  | None -> false)
              | Static_sscan -> (
                  match classified.Initial_stage.self_sufficient with
                  | c :: _ -> Table.index_provides_order c.Scan.idx ~order:req.order_by
                  | [] -> false)
              | _ -> false
            in
            (* Candidates a completed scan can later teach from: the
               inexact ones (exact estimates have nothing to learn). *)
            let pending =
              if config.feedback_rate > 0.0 then
                List.filter
                  (fun cand -> not cand.Scan.est_exact)
                  (classified.Initial_stage.jscan_candidates
                  @ classified.Initial_stage.union_candidates)
              else []
            in
            (tactic, machine, ordered_delivery, pending)
      with
      | exception Fault.Injected f ->
          (* Planning faulted (estimation descent, clustering probe).
             Estimates are advice: degrade to the plan that needs
             none. *)
          Trace.emit trace
            (Trace.Fault_detected { site = "planning"; fault = Fault.describe f });
          Trace.emit trace
            (Trace.Fallback_tscan { reason = "fault during planning" });
          Trace.emit trace
            (Trace.Tactic_chosen
               { tactic = tactic_to_string Static_tscan; reason = "fault during planning" });
          (Static_tscan, M_tscan (Tscan.create table fgr_meter restriction), false, [])
      | planned -> planned
    end
  in
  Trace.emit trace (Trace.Span_end { span = "plan"; cost = Cost.total est_meter; rows = 0 });
  Trace.emit trace (Trace.Span_begin { span = "execute" });
  let needs_sort = req.order_by <> [] && not classified_order in
  let c =
    {
      table;
      cfg = config;
      trace;
      tactic;
      goal;
      goal_provenance;
      restriction;
      machine;
      tac = Tactic.halt;
      fgr_meter;
      bgr_meter;
      est_meter;
      order_ids;
      sorted_rows = None;
      presort = [];
      needs_sort;
      ordered_by_index = classified_order;
      feedback_pending;
      delivered_rids = Hashtbl.create 64;
      exclude_delivered = false;
      driver = None;
      inbox = [];
      pending_bg = None;
      aborted = None;
      quota_hit = None;
      deadline_hit = None;
      delivered = 0;
      first_row_cost = None;
      closed = false;
      summary = None;
    }
  in
  c.tac <- tactic_of c c.machine;
  c

(* ------------------------------------------------------------------ *)
(* Degradation policies                                                *)
(* ------------------------------------------------------------------ *)

(* A non-retriable fault also feeds the table's health registry: the
   structure backing the faulted file is marked suspect (checksum
   mismatch) or quarantined (dead), so *later* queries stop planning
   with it instead of rediscovering the fault.  Spill and foreign
   files map to no structure and are skipped. *)
let note_structure_fault c (f : Fault.failure) =
  match Table.structure_of_file c.table f.Fault.file with
  | None -> ()
  | Some structure -> (
      let health = Table.health c.table in
      let now = Table.now c.table in
      let tr =
        match f.Fault.kind with
        | Fault.Corrupt -> Health.record_corrupt health ~now structure
        | Fault.Persistent | Fault.Transient | Fault.Spill_full ->
            Health.record_dead health ~now structure
      in
      match Table.note_transition c.table tr with
      | None -> ()
      | Some tr ->
          Trace.emit c.trace
            (Trace.Health_transition
               {
                 structure = tr.Health.tr_structure;
                 from_ = Health.state_to_string tr.Health.tr_from;
                 to_ = Health.state_to_string tr.Health.tr_to;
                 reason = tr.Health.tr_reason;
               }))

let abort_query c f =
  Trace.emit c.trace (Trace.Query_aborted { fault = Fault.describe f });
  c.aborted <- Some (Fault.describe f)

(* A foreground index path died: swap in the guaranteed-safe Tscan,
   skipping rows already delivered.  If delivery order came from the
   index, the already-delivered prefix holds the lowest keys, so
   sorting the remainder keeps the whole stream ordered. *)
let fallback_tscan c f =
  Trace.emit c.trace (Trace.Fallback_tscan { reason = Fault.describe f });
  if c.ordered_by_index then c.needs_sort <- true;
  c.exclude_delivered <- true;
  c.machine <- M_tscan (Tscan.create c.table c.fgr_meter c.restriction);
  c.tac <- tactic_of c c.machine

(* Retrieval's degradation ladder as a Tactic.Policy stack, one rung
   per recourse, tried in order (DESIGN.md §17).  The driver owns
   consecutive-fault counting; the rungs own what the count means:
   bounded retry with deterministic backoff for transient faults, then
   quarantine (background), fallback (foreground index path), or abort
   (heap).  Exactly one rung decides each fault, and a deciding
   escalation rung's first effect is feeding the health registry. *)

let fault_site c (f : Fault.failure) =
  (if Option.is_some c.pending_bg then "background " else "foreground ")
  ^ Fault.class_name f.Fault.class_

let retry_rung c =
  Tactic.Policy.bounded_retry ~limit:c.cfg.retry_limit
    ~penalize:(fun f ~consec ->
      (* The i-th consecutive retry charges i physical reads to the
         faulted side's meter, so repeated faults both show up in
         the cost accounting and shift the foreground/background
         interleave away from the flaky device. *)
      let meter = if Option.is_some c.pending_bg then c.bgr_meter else c.fgr_meter in
      for _ = 1 to consec do
        Cost.charge_physical meter
      done;
      Trace.emit c.trace
        (Trace.Fault_retry { site = fault_site c f; attempt = consec; penalty = consec }))

let quarantine_rung c =
  Tactic.Policy.rung ~name:"quarantine" (fun f ~consec:_ ->
      match c.pending_bg with
      | Some quarantine ->
          note_structure_fault c f;
          quarantine f;
          Some Driver.Absorb
      | None -> None)

let abort_heap_rung c =
  Tactic.Policy.rung ~name:"abort-heap" (fun f ~consec:_ ->
      match f.Fault.class_ with
      | Fault.Heap ->
          note_structure_fault c f;
          abort_query c f;
          Some Driver.Stop
      | Fault.Index | Fault.Spill | Fault.Other -> None)

let fallback_rung c =
  Tactic.Policy.rung ~name:"tscan-fallback" (fun f ~consec:_ ->
      note_structure_fault c f;
      fallback_tscan c f;
      Some Driver.Absorb)

(* Which rungs arm for which tactic: background-bearing tactics can
   quarantine the faulted competitor; foreground index paths can fall
   back to Tscan; a Tscan (and the empty machine) only ever touches
   the heap, whose sole recourse past retrying is the structured
   abort. *)
let policy_stack c =
  Tactic.Policy.stack
    (match c.tactic with
    | Background_only | Fast_first_tactic | Sorted_tactic | Index_only_tactic
    | Union_tactic ->
        [ retry_rung c; quarantine_rung c; abort_heap_rung c; fallback_rung c ]
    | Static_sscan | Static_fscan ->
        [ retry_rung c; abort_heap_rung c; fallback_rung c ]
    | Static_tscan | Cancelled -> [ retry_rung c; abort_heap_rung c ])

let fault_policy c =
  Tactic.Policy.seal
    ~observe:(fun f ~consec:_ ->
      Trace.emit c.trace
        (Trace.Fault_detected { site = fault_site c f; fault = Fault.describe f }))
    (policy_stack c)

(* The ladder a given tactic kind arms, as EXPLAIN prints it — kept in
   lockstep with [policy_stack] (pinned per covered tactic by the
   oracle suite). *)
let policy_description ?(config = default_config) tactic =
  let retry = Printf.sprintf "retry(%d)" config.retry_limit in
  String.concat " \xe2\x87\x92 "
    (match tactic with
    | Background_only | Fast_first_tactic | Sorted_tactic | Index_only_tactic
    | Union_tactic ->
        [ retry; "quarantine"; "abort-heap"; "tscan-fallback" ]
    | Static_sscan | Static_fscan -> [ retry; "abort-heap"; "tscan-fallback" ]
    | Static_tscan | Cancelled -> [ retry; "abort-heap" ])

(* Page-handle caches are only sound within one batch; the machine
   cursor invalidates whichever its current shape holds on every batch
   boundary. *)
let drop_machine_caches c =
  match c.machine with
  | M_fscan f -> Fscan.drop_cache f
  | M_sorted so -> Fscan.drop_cache so.so_fscan
  | M_bg_only { bg_stage2 = Some (S_final fs); _ }
  | M_union { un_stage2 = Some (S_final fs); _ }
  | M_fast_first { ff_stage2 = Some (S_final fs); _ }
  | M_index_only { io_stage2 = Some (S_final fs); _ } ->
      Final_stage.drop_cache fs
  | _ -> ()

let machine_cursor c =
  Scan.cursor_of_step
    ~cost:(fun () -> total_cost c)
    ~on_yield:(fun () -> drop_machine_caches c)
    (fun () ->
      (* [pending_bg] is only ever set on a path that returns [Failed],
         which ends the batch — so clearing it per step keeps the
         blame assignment of the step-at-a-time protocol. *)
      c.pending_bg <- None;
      c.tac ())

let driver_of c =
  match c.driver with
  | Some d -> d
  | None ->
      let d = Driver.make (machine_cursor c) (fault_policy c) in
      c.driver <- Some d;
      d

(* Batch consumption: exclusion and delivered-RID bookkeeping happen
   here, *before* any fault policy could swap in a fallback scan — a
   fallback must see every row the batch delivered ahead of the fault
   as already delivered. *)
let accept_batch c (b : Scan.batch) =
  let keep =
    List.filter
      (fun (rid, _) ->
        if c.exclude_delivered && Hashtbl.mem c.delivered_rids rid then false
        else begin
          Hashtbl.replace c.delivered_rids rid ();
          true
        end)
      b.Scan.rows
  in
  c.inbox <- c.inbox @ keep

(* One quantum of raw progress: hand out a buffered row if the last
   batch left any, otherwise check the quota and pump the driver for
   one batch — the unit the multi-query session scheduler interleaves
   by.  At the default [batch_budget = 0.] a batch is a single machine
   step, reproducing the row-at-a-time protocol exactly. *)
let quantum_raw c =
  match c.inbox with
  | p :: rest ->
      c.inbox <- rest;
      `Row p
  | [] ->
      if c.aborted <> None || c.quota_hit <> None || c.deadline_hit <> None then
        `Exhausted
      else begin
        match c.cfg.cost_quota with
        | Some quota when total_cost c > quota ->
            Trace.emit c.trace (Trace.Quota_exceeded { spent = total_cost c; quota });
            c.quota_hit <- Some (total_cost c, quota);
            `Exhausted
        | _ -> (
            let progress =
              Driver.pump (driver_of c) ~budget:c.cfg.batch_budget
                ~on_rows:(accept_batch c)
            in
            match c.inbox with
            | p :: rest ->
                c.inbox <- rest;
                `Row p
            | [] -> (
                match progress with
                | Driver.More | Driver.Stopped _ -> `Working
                | Driver.Exhausted -> `Exhausted))
      end

type step_result = Step_row of Rid.t * Row.t | Step_working | Step_done

let step c =
  let raw =
    if c.closed then Step_done
    else if c.needs_sort then begin
      match c.sorted_rows with
      | Some (p :: rest) ->
          c.sorted_rows <- Some rest;
          Step_row (fst p, snd p)
      | Some [] -> Step_done
      | None -> (
          match quantum_raw c with
          | `Row p ->
              c.presort <- p :: c.presort;
              Step_working
          | `Working -> Step_working
          | `Exhausted ->
              (* Materialize and sort (the SORT node that made this goal
                 total-time in the first place). *)
              let arr = Array.of_list (List.rev c.presort) in
              c.presort <- [];
              Array.sort (fun (_, a) (_, b) -> Row.compare_at c.order_ids a b) arr;
              Cost.charge_cpu c.fgr_meter (Array.length arr);
              c.sorted_rows <- Some (Array.to_list arr);
              Step_working)
    end
    else begin
      match quantum_raw c with
      | `Row (rid, row) -> Step_row (rid, row)
      | `Working -> Step_working
      | `Exhausted -> Step_done
    end
  in
  (match raw with
  | Step_row _ ->
      c.delivered <- c.delivered + 1;
      if c.first_row_cost = None then c.first_row_cost <- Some (total_cost c)
  | Step_working | Step_done -> ());
  raw

let rec fetch_pair c =
  match step c with
  | Step_row (rid, row) -> Some (rid, row)
  | Step_working -> fetch_pair c
  | Step_done -> None

let fetch c = Option.map snd (fetch_pair c)

let drain_pairs c =
  let rec loop acc =
    match fetch_pair c with
    | Some p -> loop (p :: acc)
    | None -> List.rev acc
  in
  loop []

let spent = total_cost

let grant c ~budget ~max_steps ~stop ~on_row =
  let finished = ref false in
  Driver.clocked_loop
    ~spent:(fun () -> total_cost c)
    ~budget ~max_steps ~stop
    ~step:(fun () ->
      match step c with
      | Step_row (_, row) ->
          on_row row;
          `Continue
      | Step_working -> `Continue
      | Step_done ->
          finished := true;
          `Finished);
  !finished

(* The scheduler's cooperative cancellation point: called at a grant
   boundary when the session's cost deadline is spent.  The cursor
   stops producing (every later quantum reports done) and [close]
   reports the structured [Timed_out] status — never an exception, and
   the rows delivered before the deadline stand. *)
let note_deadline c ~deadline =
  if c.deadline_hit = None && c.summary = None then begin
    let spent = total_cost c in
    Trace.emit c.trace (Trace.Deadline_exceeded { spent; deadline });
    c.deadline_hit <- Some (spent, deadline)
  end

let rows_delivered c = c.delivered
let tactic c = c.tactic

(* Bucket ladder for the estimate-vs-actual error factor (always >= 1;
   a factor of 1 is a perfect estimate). *)
let error_buckets = [| 1.0; 1.25; 1.5; 2.0; 4.0; 8.0; 16.0 |]

(* Per-index estimate-vs-actual error factors, from the trace: pair
   each [Estimated] with the [Scan_completed] of the same index and
   report max(est/actual, actual/est). *)
let estimate_errors events =
  let actuals = Hashtbl.create 4 in
  List.iter
    (function
      | Trace.Scan_completed { index; scanned; _ } ->
          Hashtbl.replace actuals index scanned
      | _ -> ())
    events;
  List.filter_map
    (function
      | Trace.Estimated { index; estimate; _ } -> (
          match Hashtbl.find_opt actuals index with
          | Some scanned ->
              let actual = Float.max 1.0 (float_of_int scanned) in
              let est = Float.max 1.0 estimate in
              Some (Float.max (est /. actual) (actual /. est))
          | None -> None)
      | _ -> None)
    events

let is_switch_point = function
  | Trace.Foreground_stopped _ | Trace.Background_stopped _ | Trace.Use_tscan _
  | Trace.Simultaneous_winner _ | Trace.Scan_discarded _ ->
      true
  | _ -> false

let is_degradation = function
  | Trace.Index_quarantined _ | Trace.Fallback_tscan _ | Trace.Query_aborted _
  | Trace.Quota_exceeded _ | Trace.Deadline_exceeded _ ->
      true
  | _ -> false

(* Close the feedback loop (DESIGN.md §13): pair each inexact planned
   candidate with the completed scan of the same index and fold the
   (estimate, actual) observation into the table's feedback store.
   Completed scans are the only observation source — [Scan_completed]
   fires only when a range walk ran to end-of-range, so [scanned] is
   the true range cardinality; discarded or truncated scans teach
   nothing.  An index appearing more than once on either side (union
   disjuncts can share an index) is skipped as ambiguous. *)
let feed_back c events =
  let rate = c.cfg.feedback_rate in
  if rate > 0.0 && c.feedback_pending <> [] then begin
    (* name -> (value, occurrences); an index seen more than once on
       either side is ambiguous and teaches nothing. *)
    let estimates = Hashtbl.create 4 in
    let completions = Hashtbl.create 4 in
    List.iter
      (function
        | Trace.Estimated { index; estimate; exact; _ } -> (
            match Hashtbl.find_opt estimates index with
            | Some (_, _, n) -> Hashtbl.replace estimates index (estimate, exact, n + 1)
            | None -> Hashtbl.add estimates index (estimate, exact, 1))
        | Trace.Scan_completed { index; scanned; _ } -> (
            match Hashtbl.find_opt completions index with
            | Some (_, n) -> Hashtbl.replace completions index (scanned, n + 1)
            | None -> Hashtbl.add completions index (scanned, 1))
        | _ -> ())
      events;
    let names =
      List.map (fun cand -> cand.Scan.idx.Table.idx_name) c.feedback_pending
    in
    let unique name = List.length (List.filter (String.equal name) names) = 1 in
    let observed = ref 0 in
    List.iter
      (fun cand ->
        let name = cand.Scan.idx.Table.idx_name in
        if unique name then
          (* Teach only from a real announced descent (the pessimistic
             whole-index default after an estimation shortcut emits no
             [Estimated] event and must not skew the cell) that is
             inexact (exact cells have nothing to learn), paired with
             exactly one completed walk. *)
          match
            (Hashtbl.find_opt estimates name, Hashtbl.find_opt completions name)
          with
          | Some (est, false, 1), Some (scanned, 1) ->
              Feedback.observe (Table.feedback c.table) ~rate ~name
                ~key:cand.Scan.ranges ~est ~actual:(float_of_int scanned);
              incr observed
          | _ -> ())
      c.feedback_pending;
    match c.cfg.metrics with
    | Some m when !observed > 0 ->
        let module M = Rdb_util.Metrics in
        M.add (M.counter m "feedback.observations") !observed;
        M.set (M.gauge m "feedback.cells")
          (float_of_int (Feedback.cells (Table.feedback c.table)))
    | _ -> ()
  end

let record_metrics c events =
  match c.cfg.metrics with
  | None -> ()
  | Some m ->
      let module M = Rdb_util.Metrics in
      let count name = M.incr (M.counter m name) in
      let add name n = if n > 0 then M.add (M.counter m name) n in
      let observe name v = M.observe (M.histogram m name) v in
      count "retrieval.count";
      count (M.labeled "retrieval.tactic" (tactic_to_string c.tactic));
      observe "retrieval.cost.total" (total_cost c);
      observe "retrieval.cost.foreground" (Cost.total c.fgr_meter);
      observe "retrieval.cost.background" (Cost.total c.bgr_meter);
      observe "retrieval.cost.estimation" (Cost.total c.est_meter);
      observe "retrieval.rows" (float_of_int c.delivered);
      add "retrieval.switch_points" (List.length (List.filter is_switch_point events));
      add "retrieval.faults"
        (List.length
           (List.filter (function Trace.Fault_detected _ -> true | _ -> false) events));
      add "retrieval.degradations" (List.length (List.filter is_degradation events));
      add "feedback.applied"
        (List.length
           (List.filter (function Trace.Feedback_applied _ -> true | _ -> false) events));
      List.iter
        (fun e -> M.observe (M.histogram ~buckets:error_buckets m "retrieval.estimate_error") e)
        (estimate_errors events)

let close c =
  match c.summary with
  | Some s -> s
  | None ->
      c.closed <- true;
      (match c.tactic with
      | Background_only | Fast_first_tactic | Sorted_tactic | Index_only_tactic
      | Union_tactic ->
          Trace.emit c.trace
            (Trace.Span_end
               { span = "foreground"; cost = Cost.total c.fgr_meter; rows = c.delivered });
          Trace.emit c.trace
            (Trace.Span_end { span = "background"; cost = Cost.total c.bgr_meter; rows = 0 })
      | _ -> ());
      Trace.emit c.trace
        (Trace.Span_end
           {
             span = "execute";
             cost = Cost.total c.fgr_meter +. Cost.total c.bgr_meter;
             rows = c.delivered;
           });
      Trace.emit c.trace
        (Trace.Retrieval_done { rows = c.delivered; cost = total_cost c });
      let status =
        match (c.aborted, c.quota_hit, c.deadline_hit) with
        | Some fault, _, _ -> Aborted { fault }
        | None, Some (spent, quota), _ -> Cancelled_quota { spent; quota }
        | None, None, Some (spent, deadline) -> Timed_out { spent; deadline }
        | None, None, None -> Completed
      in
      let events = Trace.events c.trace in
      feed_back c events;
      record_metrics c events;
      let s =
        {
          rows_delivered = c.delivered;
          total_cost = total_cost c;
          cost_to_first_row = c.first_row_cost;
          tactic = c.tactic;
          goal = c.goal;
          goal_provenance = c.goal_provenance;
          policy = Tactic.Policy.describe (policy_stack c);
          status;
          trace = events;
        }
      in
      c.summary <- Some s;
      s

let run ?config ?limit table req =
  let c = open_ ?config table req in
  let rows = ref [] in
  let continue_ () =
    match limit with Some n -> c.delivered < n | None -> true
  in
  let rec loop () =
    if continue_ () then begin
      match fetch c with
      | Some row ->
          rows := row :: !rows;
          loop ()
      | None -> ()
    end
  in
  loop ();
  (List.rev !rows, close c)

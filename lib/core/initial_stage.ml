open Rdb_btree
open Rdb_engine
open Rdb_exec
open Rdb_storage

type classified = {
  jscan_candidates : Scan.candidate list;
  self_sufficient : Scan.candidate list;
  order_index : Scan.candidate option;
  union_candidates : Scan.candidate list;
  estimation_nodes : int;
}

type decision = No_rows of string | Arranged of classified

let shortcut_threshold = 16

(* Indexes in the adaptively-remembered order, unremembered ones
   last in catalog order. *)
let indexes_in_preferred_order table =
  let preferred = Table.preferred_order table in
  let all = Table.indexes table in
  let remembered =
    List.filter_map (fun n -> List.find_opt (fun i -> i.Table.idx_name = n) all) preferred
  in
  let rest = List.filter (fun i -> not (List.mem i.Table.idx_name preferred)) all in
  remembered @ rest

(* One bounded candidate per OR disjunct, when every disjunct has a
   usable index (the §7 "covering ORs" extension).  A disjunct whose
   best estimate is exactly zero contributes no rows and is dropped. *)
let union_candidates table meter trace ~restriction ~nodes_spent =
  match Predicate.simplify restriction with
  | Predicate.Or branches when List.length branches <= 8 ->
      let branch_candidate branch =
        let best = ref None in
        List.iter
          (fun idx ->
            let extraction = Range_extract.for_index branch idx in
            if extraction.Range_extract.bounded then begin
              match Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges with
              | exception Fault.Injected f ->
                  (* Skip the faulting index for this disjunct; if no
                     other index covers it the union tactic is simply
                     not offered. *)
                  Trace.emit trace
                    (Trace.Fault_detected
                       { site = "estimation"; fault = Fault.describe f })
              | r ->
              nodes_spent := !nodes_spent + r.Estimate.nodes_visited;
              Trace.emit trace
                (Trace.Estimated
                   {
                     index = idx.Table.idx_name;
                     estimate = r.Estimate.estimate;
                     exact = r.Estimate.exact;
                     nodes = r.Estimate.nodes_visited;
                   });
              let cand =
                {
                  Scan.idx;
                  ranges = extraction.Range_extract.ranges;
                  residual = extraction.Range_extract.residual;
                  est = r.Estimate.estimate;
                  est_exact = r.Estimate.exact;
                }
              in
              match !best with
              | Some b when b.Scan.est <= cand.Scan.est -> ()
              | _ -> best := Some cand
            end)
          (Table.indexes table);
        !best
      in
      let rec all_covered acc = function
        | [] -> Some (List.rev acc)
        | branch :: rest -> (
            match branch_candidate branch with
            | None -> None
            | Some c when c.Scan.est_exact && c.Scan.est = 0.0 ->
                (* empty disjunct: contributes nothing *)
                all_covered acc rest
            | Some c -> all_covered (c :: acc) rest)
      in
      (match all_covered [] branches with
      | Some cands ->
          (* cheap certain scans first: abandonment decisions then rest
             on maximum evidence per unit of scan investment *)
          List.stable_sort (fun a b -> Float.compare a.Scan.est b.Scan.est) cands
      | None -> [])
  | _ -> []

let run table meter trace ~restriction ~needed_columns ~order_by =
  let indexes = indexes_in_preferred_order table in
  let nodes_spent = ref 0 in
  let stop_estimating = ref false in
  let empty_found = ref None in
  let candidates =
    List.filter_map
      (fun idx ->
        let extraction = Range_extract.for_index restriction idx in
        if not extraction.Range_extract.bounded then None
        else begin
          let est, exact =
            if !stop_estimating then
              (* Pessimistic default: unknown, assume the whole index. *)
              (float_of_int (Btree.cardinality idx.Table.tree), false)
            else begin
              match Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges with
              | exception Fault.Injected f ->
                  (* Estimation is advice: a faulting descent costs us
                     accuracy, never the index.  Fall back to the same
                     pessimistic whole-index default as a shortcut. *)
                  Trace.emit trace
                    (Trace.Fault_detected
                       { site = "estimation"; fault = Fault.describe f });
                  (float_of_int (Btree.cardinality idx.Table.tree), false)
              | r ->
              nodes_spent := !nodes_spent + r.Estimate.nodes_visited;
              Trace.emit trace
                (Trace.Estimated
                   {
                     index = idx.Table.idx_name;
                     estimate = r.Estimate.estimate;
                     exact = r.Estimate.exact;
                     nodes = r.Estimate.nodes_visited;
                   });
              if r.Estimate.exact && r.Estimate.estimate = 0.0 then
                empty_found := Some idx.Table.idx_name
              else if r.Estimate.estimate <= float_of_int shortcut_threshold then begin
                stop_estimating := true;
                Trace.emit trace
                  (Trace.Shortcut_estimation
                     { index = idx.Table.idx_name; estimate = r.Estimate.estimate })
              end;
              (r.Estimate.estimate, r.Estimate.exact)
            end
          in
          Some
            {
              Scan.idx;
              ranges = extraction.Range_extract.ranges;
              residual = extraction.Range_extract.residual;
              est;
              est_exact = exact;
            }
        end)
      indexes
  in
  match !empty_found with
  | Some index ->
      Trace.emit trace (Trace.Empty_range { index });
      No_rows ("empty range on index " ^ index)
  | None ->
      let by_est =
        List.stable_sort (fun a b -> Float.compare a.Scan.est b.Scan.est) candidates
      in
      (* Remember this order for the next retrieval's estimation. *)
      Table.set_preferred_order table
        (List.map (fun c -> c.Scan.idx.Table.idx_name) by_est);
      let covering_columns = needed_columns in
      let bounded_covering =
        List.filter
          (fun c -> Table.index_covers c.Scan.idx ~columns:covering_columns)
          by_est
      in
      (* A covering index is a useful Sscan even without a bounded
         range: a full index scan can beat the table scan. *)
      let unbounded_covering =
        List.filter_map
          (fun idx ->
            let already =
              List.exists (fun c -> c.Scan.idx.Table.idx_name = idx.Table.idx_name) by_est
            in
            if already || not (Table.index_covers idx ~columns:covering_columns) then None
            else
              Some
                {
                  Scan.idx;
                  ranges = [ Btree.full_range ];
                  residual = Predicate.simplify restriction;
                  est = float_of_int (Btree.cardinality idx.Table.tree);
                  est_exact = true;
                })
          (Table.indexes table)
      in
      let self_sufficient = bounded_covering @ unbounded_covering in
      let order_index =
        if order_by = [] then None
        else begin
          (* Among order-providing indexes prefer the narrowest range. *)
          let providers =
            List.filter
              (fun c -> Table.index_provides_order c.Scan.idx ~order:order_by)
              by_est
          in
          match providers with
          | c :: _ -> Some c
          | [] ->
              (* An unbounded order index is still useful for order. *)
              List.find_opt
                (fun i -> Table.index_provides_order i ~order:order_by)
                (Table.indexes table)
              |> Option.map (fun idx ->
                     {
                       Scan.idx;
                       ranges = [ Btree.full_range ];
                       residual = Predicate.simplify restriction;
                       est = float_of_int (Btree.cardinality idx.Table.tree);
                       est_exact = false;
                     })
        end
      in
      let union_candidates =
        if by_est = [] && self_sufficient = [] then
          union_candidates table meter trace ~restriction ~nodes_spent
        else []
      in
      Arranged
        {
          jscan_candidates = by_est;
          self_sufficient;
          order_index;
          union_candidates;
          estimation_nodes = !nodes_spent;
        }

open Rdb_btree
open Rdb_engine
open Rdb_exec
open Rdb_storage

type classified = {
  jscan_candidates : Scan.candidate list;
  self_sufficient : Scan.candidate list;
  order_index : Scan.candidate option;
  union_candidates : Scan.candidate list;
  estimation_nodes : int;
}

type decision = No_rows of string | Arranged of classified

let shortcut_threshold = 16

(* Forward a health transition to the pool metrics and the trace. *)
let note_health table trace tr =
  match Table.note_transition table tr with
  | None -> ()
  | Some tr ->
      Trace.emit trace
        (Trace.Health_transition
           {
             structure = tr.Health.tr_structure;
             from_ = Health.state_to_string tr.Health.tr_from;
             to_ = Health.state_to_string tr.Health.tr_to;
             reason = tr.Health.tr_reason;
           })

(* Catalog indexes the health registry allows plans to touch:
   quarantined-in-backoff and rebuilding indexes are invisible to the
   optimizer (a quarantined index past its backoff is offered — that
   planning attempt is the re-probe). *)
let usable_indexes table =
  List.filter (Table.index_usable table) (Table.indexes table)

(* Indexes in the adaptively-remembered order, unremembered ones
   last in catalog order. *)
let indexes_in_preferred_order table =
  let preferred = Table.preferred_order table in
  let all = usable_indexes table in
  let remembered =
    List.filter_map (fun n -> List.find_opt (fun i -> i.Table.idx_name = n) all) preferred
  in
  let rest = List.filter (fun i -> not (List.mem i.Table.idx_name preferred)) all in
  remembered @ rest

(* Scale an inexact descent estimate by the table's learned feedback
   factor (DESIGN.md §13), announcing the correction on the trace.
   Exact estimates pass through untouched: exactness is what
   correctness-critical decisions gate on (empty-range cancel,
   pre-skip, union disjunct drop), so correction is cost-only by
   construction. *)
let apply_feedback table trace ~feedback_rate ~index ~ranges ~est ~exact =
  if feedback_rate <= 0.0 || exact then est
  else
    let fb = Table.feedback table in
    if not (Feedback.known fb ~name:index ~key:ranges) then est
    else begin
      let corrected = Feedback.correct fb ~name:index ~key:ranges est in
      Trace.emit trace (Trace.Feedback_applied { index; raw = est; corrected });
      corrected
    end

(* One bounded candidate per OR disjunct, when every disjunct has a
   usable index (the §7 "covering ORs" extension).  A disjunct whose
   best estimate is exactly zero contributes no rows and is dropped. *)
let union_candidates table meter trace ~feedback_rate ~restriction ~nodes_spent =
  match Predicate.simplify restriction with
  | Predicate.Or branches when List.length branches <= 8 ->
      let branch_candidate branch =
        let best = ref None in
        List.iter
          (fun idx ->
            let extraction = Range_extract.for_index branch idx in
            if extraction.Range_extract.bounded then begin
              match Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges with
              | exception Fault.Injected f ->
                  (* Skip the faulting index for this disjunct; if no
                     other index covers it the union tactic is simply
                     not offered. *)
                  Trace.emit trace
                    (Trace.Fault_detected
                       { site = "estimation"; fault = Fault.describe f })
              | r ->
              nodes_spent := !nodes_spent + r.Estimate.nodes_visited;
              let est =
                apply_feedback table trace ~feedback_rate
                  ~index:idx.Table.idx_name ~ranges:extraction.Range_extract.ranges
                  ~est:r.Estimate.estimate ~exact:r.Estimate.exact
              in
              Trace.emit trace
                (Trace.Estimated
                   {
                     index = idx.Table.idx_name;
                     estimate = est;
                     exact = r.Estimate.exact;
                     nodes = r.Estimate.nodes_visited;
                   });
              let cand =
                {
                  Scan.idx;
                  ranges = extraction.Range_extract.ranges;
                  residual = extraction.Range_extract.residual;
                  est;
                  est_exact = r.Estimate.exact;
                }
              in
              match !best with
              | Some b when b.Scan.est <= cand.Scan.est -> ()
              | _ -> best := Some cand
            end)
          (usable_indexes table);
        !best
      in
      let rec all_covered acc = function
        | [] -> Some (List.rev acc)
        | branch :: rest -> (
            match branch_candidate branch with
            | None -> None
            | Some c when c.Scan.est_exact && c.Scan.est = 0.0 ->
                (* empty disjunct: contributes nothing *)
                all_covered acc rest
            | Some c -> all_covered (c :: acc) rest)
      in
      (match all_covered [] branches with
      | Some cands ->
          (* cheap certain scans first: abandonment decisions then rest
             on maximum evidence per unit of scan investment *)
          List.stable_sort (fun a b -> Float.compare a.Scan.est b.Scan.est) cands
      | None -> [])
  | _ -> []

let run table meter trace ~feedback_rate ~restriction ~needed_columns ~order_by =
  let indexes = indexes_in_preferred_order table in
  let nodes_spent = ref 0 in
  let stop_estimating = ref false in
  let empty_found = ref None in
  let candidates =
    List.filter_map
      (fun idx ->
        let extraction = Range_extract.for_index restriction idx in
        if not extraction.Range_extract.bounded then None
        else begin
          let name = idx.Table.idx_name in
          let health = Table.health table in
          let probing = Health.probe_due health ~now:(Table.now table) name in
          let pessimistic = (float_of_int (Btree.cardinality idx.Table.tree), false) in
          let est_opt =
            if !stop_estimating && not probing then
              (* Pessimistic default: unknown, assume the whole index. *)
              Some pessimistic
            else begin
              match Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges with
              | exception Fault.Injected f ->
                  Trace.emit trace
                    (Trace.Fault_detected
                       { site = "estimation"; fault = Fault.describe f });
                  if probing then begin
                    (* The re-probe of a quarantined index failed:
                       escalate its backoff and keep it out of the
                       plan. *)
                    note_health table trace
                      (Health.record_dead health ~now:(Table.now table) name);
                    None
                  end
                  else begin
                    match f.Fault.kind with
                    | Fault.Persistent ->
                        (* The file is dead; a scan over it cannot
                           succeed either.  Quarantine now. *)
                        note_health table trace
                          (Health.record_dead health ~now:(Table.now table) name);
                        None
                    | Fault.Corrupt ->
                        note_health table trace
                          (Health.record_corrupt health ~now:(Table.now table) name);
                        if Health.usable health ~now:(Table.now table) name then
                          (* Estimation is advice: a suspect descent
                             costs us accuracy, never the index. *)
                          Some pessimistic
                        else None
                    | Fault.Transient | Fault.Spill_full ->
                        (* Estimation is advice: a faulting descent
                           costs us accuracy, never the index.  Fall
                           back to the pessimistic whole-index
                           default. *)
                        Some pessimistic
                  end
              | r ->
                  if probing then
                    (* The descent succeeded: the quarantined index is
                       readable again. *)
                    note_health table trace (Health.mark_healthy health name);
                  nodes_spent := !nodes_spent + r.Estimate.nodes_visited;
                  let est =
                    apply_feedback table trace ~feedback_rate ~index:name
                      ~ranges:extraction.Range_extract.ranges
                      ~est:r.Estimate.estimate ~exact:r.Estimate.exact
                  in
                  Trace.emit trace
                    (Trace.Estimated
                       {
                         index = name;
                         estimate = est;
                         exact = r.Estimate.exact;
                         nodes = r.Estimate.nodes_visited;
                       });
                  if r.Estimate.exact && est = 0.0 then
                    empty_found := Some name
                  else if est <= float_of_int shortcut_threshold then begin
                    stop_estimating := true;
                    Trace.emit trace
                      (Trace.Shortcut_estimation { index = name; estimate = est })
                  end;
                  Some (est, r.Estimate.exact)
            end
          in
          match est_opt with
          | None -> None
          | Some (est, exact) ->
              Some
                {
                  Scan.idx;
                  ranges = extraction.Range_extract.ranges;
                  residual = extraction.Range_extract.residual;
                  est;
                  est_exact = exact;
                }
        end)
      indexes
  in
  match !empty_found with
  | Some index ->
      Trace.emit trace (Trace.Empty_range { index });
      No_rows ("empty range on index " ^ index)
  | None ->
      let by_est =
        List.stable_sort (fun a b -> Float.compare a.Scan.est b.Scan.est) candidates
      in
      (* Remember this order for the next retrieval's estimation. *)
      Table.set_preferred_order table
        (List.map (fun c -> c.Scan.idx.Table.idx_name) by_est);
      let covering_columns = needed_columns in
      let bounded_covering =
        List.filter
          (fun c -> Table.index_covers c.Scan.idx ~columns:covering_columns)
          by_est
      in
      (* A covering index is a useful Sscan even without a bounded
         range: a full index scan can beat the table scan. *)
      let unbounded_covering =
        List.filter_map
          (fun idx ->
            let already =
              List.exists (fun c -> c.Scan.idx.Table.idx_name = idx.Table.idx_name) by_est
            in
            if already || not (Table.index_covers idx ~columns:covering_columns) then None
            else
              Some
                {
                  Scan.idx;
                  ranges = [ Btree.full_range ];
                  residual = Predicate.simplify restriction;
                  est = float_of_int (Btree.cardinality idx.Table.tree);
                  est_exact = true;
                })
          (usable_indexes table)
      in
      let self_sufficient = bounded_covering @ unbounded_covering in
      let order_index =
        if order_by = [] then None
        else begin
          (* Among order-providing indexes prefer the narrowest range. *)
          let providers =
            List.filter
              (fun c -> Table.index_provides_order c.Scan.idx ~order:order_by)
              by_est
          in
          match providers with
          | c :: _ -> Some c
          | [] ->
              (* An unbounded order index is still useful for order. *)
              List.find_opt
                (fun i -> Table.index_provides_order i ~order:order_by)
                (usable_indexes table)
              |> Option.map (fun idx ->
                     {
                       Scan.idx;
                       ranges = [ Btree.full_range ];
                       residual = Predicate.simplify restriction;
                       est = float_of_int (Btree.cardinality idx.Table.tree);
                       est_exact = false;
                     })
        end
      in
      let union_candidates =
        if by_est = [] && self_sufficient = [] then
          union_candidates table meter trace ~feedback_rate ~restriction ~nodes_spent
        else []
      in
      Arranged
        {
          jscan_candidates = by_est;
          self_sufficient;
          order_index;
          union_candidates;
          estimation_nodes = !nodes_spent;
        }

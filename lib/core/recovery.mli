(** Crash–restart supervision: volatile teardown, restart recovery,
    and a journal that reissues submissions lost to crashes.

    The crash model (DESIGN.md §15) is FoundationDB-style deterministic
    simulation: a {!Session.crash_point} kills the scheduler at a grant
    boundary, losing every piece of {e volatile} state — buffer-pool
    residency, open cursors, scheduler queues, health counters, the
    feedback store, metrics — while {e durable} state (heap pages,
    committed trees, the {!Rdb_storage.Manifest}) survives.  This
    module owns the other half of the story:

    + {!crash_teardown} — wipe the volatile state, exactly once per
      crash, so the next epoch starts as cold as a real restart.
    + {!recover} — the restart protocol: discard orphan side trees
      (rebuilds that died [Building]), restore quarantine verdicts
      from the manifest into each table's health registry (backoff
      re-derived from the persisted escalation count), and name the
      rebuilds to resubmit.  Idempotent: recovery crashing and
      re-running reaches the same state (pinned by
      [test_recovery.ml]).
    + {!run} — the epoch supervisor: submit a journaled workload,
      crash where the schedule says, tear down, recover, reissue every
      submission that was lost, and repeat until an epoch completes
      cleanly.  Every submission ends in {e exactly one} terminal
      outcome across any number of crashes:
      served + shed + timed_out + unresolved = submitted, with losses
      counted separately as reissues.

    Crashes lose cost and progress, never answers or accounting: a
    reissued query re-runs from scratch on a cold cache and must
    return exactly the rows a never-crashed run returns (pinned by
    [bench -e crash]). *)

open Rdb_data
open Rdb_engine
open Rdb_exec

type submission

val query :
  ?label:string ->
  ?config:Retrieval.config ->
  ?limit:int ->
  ?quota:float ->
  ?deadline:float ->
  ?arrive_at:int ->
  Table.t ->
  Retrieval.request ->
  submission
(** A journaled query submission; the parameters mirror
    {!Session.submit}.  [arrive_at] applies to the first epoch only —
    a reissue after a crash re-arrives at tick 0 (the reconnecting
    client retries immediately); a reissued deadline query gets its
    full deadline again (the crash lost its spent cost too). *)

(** Restart-recovery actions, in deterministic (sorted) order. *)
type actions = {
  act_orphans : (string * string * int) list;
      (** discarded orphan side trees as [(table, index, side_file)] *)
  act_requarantined : (string * string * int) list;
      (** restored verdicts as [(table, structure, escalations)];
          includes orphaned indexes with no prior verdict, conservatively
          re-quarantined at escalation 0 *)
  act_rebuilds : (string * string) list;
      (** index rebuilds to resubmit as [(table, index)] — every
          restored-quarantined structure that is an index (the heap's
          exit stays the re-probe / [REPAIR TABLE] path) *)
}

val crash_teardown : Database.t -> unit
(** Tear down all volatile state: flush every buffer-pool shard, reset
    the pool's metrics registry (when attached), and
    {!Table.reset_volatile} every table (health entries, feedback
    store, cached stats).  Durable state — heap contents, committed
    trees, the manifest — is untouched. *)

val recover : ?trace:Trace.t -> Database.t -> actions
(** The restart protocol against the manifest (see module doc).
    Emits {!Trace.event.Orphan_discarded} /
    {!Trace.event.Quarantine_restored} /
    {!Trace.event.Rebuild_resubmitted} events into [trace] when
    given.  Safe to call any number of times: a second pass finds no
    orphans and restores the same verdicts. *)

type epoch_report = {
  ep_index : int;  (** 0-based epoch (restart count) *)
  ep_report : Session.report;
  ep_actions : actions option;
      (** [Some] iff this epoch crashed: the recovery that followed *)
}

(** Final journal state of one submission. *)
type final = {
  f_label : string;
  f_outcome : Session.outcome option;
      (** the unique terminal outcome; [None] only if the supervisor
          stopped with the submission still unresolved (a clean final
          epoch never leaves any) *)
  f_rows : Row.t list;  (** rows of the epoch that resolved it *)
  f_lost_count : int;  (** times it was lost to a crash and reissued *)
}

type report = {
  r_epochs : epoch_report list;  (** in epoch order *)
  r_submitted : int;
  r_served : int;
  r_shed : int;
  r_timed_out : int;
  r_unresolved : int;
      (** exact cross-epoch accounting:
          served + shed + timed_out + unresolved = submitted *)
  r_crashes : int;
  r_reissues : int;  (** total lost-then-reissued occurrences *)
  r_finals : final list;  (** in submission order *)
  r_trace : Trace.event list;
      (** crash / orphan / restore / resubmit / reissue events, in
          order *)
}

val run :
  ?config:Session.config ->
  ?crashes:Session.crash_point list list ->
  ?repairs:(Table.t * string) list ->
  Database.t ->
  submission list ->
  report
(** The epoch supervisor.  Element [i] of [crashes] is the crash
    schedule of epoch [i] (missing elements mean crash-free, so the
    loop always terminates).  [repairs] are submitted in epoch 0
    (labelled ["repair:<index>"]); rebuilds recovery resubmits are
    labelled ["recover:<index>"].  Each epoch creates a fresh
    scheduler from [config] (with that epoch's crash points),
    submits every unresolved journal entry in submission order plus
    the pending repairs, runs it, then — on a crash — tears down,
    recovers, and loops while work remains.  With an empty [crashes]
    schedule the single epoch's report is byte-identical to running
    {!Session} directly. *)

val seeded_crashes :
  seed:int -> epochs:int -> max_tick:int -> Session.crash_point list list
(** A deterministic crash schedule from a {!Rdb_util.Prng} seed: one
    [Crash_at_grant] per epoch, uniform on [[1, max_tick]]. *)

val report_to_string : report -> string
(** Deterministic rendering: each epoch's scheduler report under an
    ["== epoch N =="] header with its recovery summary, the journal's
    final outcome per submission, and the cross-epoch ledger. *)

type rebuild_state = Building | Committed | Aborted

type rebuild = {
  rb_id : int;
  rb_table : string;
  rb_index : string;
  rb_side_file : int;
  mutable rb_state : rebuild_state;
}

type t = {
  mutable epoch : int;
  indexes : (string * string, int) Hashtbl.t;
  verdicts : (string * string, int) Hashtbl.t;  (* escalation count *)
  mutable rebuilds : rebuild list;  (* reversed registration order *)
  mutable next_rebuild : int;
}

let create () =
  {
    epoch = 0;
    indexes = Hashtbl.create 8;
    verdicts = Hashtbl.create 8;
    rebuilds = [];
    next_rebuild = 0;
  }

let epoch t = t.epoch

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch

let commit_index t ~table ~index ~file = Hashtbl.replace t.indexes (table, index) file
let forget_index t ~table ~index = Hashtbl.remove t.indexes (table, index)

let forget_table t ~table =
  Hashtbl.iter
    (fun ((tbl, _) as k) _ -> if tbl = table then Hashtbl.remove t.indexes k)
    (Hashtbl.copy t.indexes)

let committed_file t ~table ~index = Hashtbl.find_opt t.indexes (table, index)

let begin_rebuild t ~table ~index ~side_file =
  let id = t.next_rebuild in
  t.next_rebuild <- id + 1;
  t.rebuilds <-
    { rb_id = id; rb_table = table; rb_index = index; rb_side_file = side_file;
      rb_state = Building }
    :: t.rebuilds;
  id

let find_rebuild t id =
  match List.find_opt (fun rb -> rb.rb_id = id) t.rebuilds with
  | Some rb -> rb
  | None -> invalid_arg (Printf.sprintf "Manifest: unknown rebuild %d" id)

let commit_rebuild t id = (find_rebuild t id).rb_state <- Committed
let abort_rebuild t id = (find_rebuild t id).rb_state <- Aborted

let rebuilds t = List.rev t.rebuilds
let orphans t = List.filter (fun rb -> rb.rb_state = Building) (rebuilds t)

let record_quarantine t ~table ~structure ~escalations =
  Hashtbl.replace t.verdicts (table, structure) escalations

let clear_quarantine t ~table ~structure = Hashtbl.remove t.verdicts (table, structure)

let quarantines t =
  Hashtbl.fold (fun (tbl, st) esc acc -> (tbl, st, esc) :: acc) t.verdicts []
  |> List.sort compare

let state_name = function
  | Building -> "building"
  | Committed -> "committed"
  | Aborted -> "aborted"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "manifest (epoch %d)\n" t.epoch);
  let committed =
    Hashtbl.fold (fun (tbl, idx) file acc -> (tbl, idx, file) :: acc) t.indexes []
    |> List.sort compare
  in
  List.iter
    (fun (tbl, idx, file) ->
      Buffer.add_string buf (Printf.sprintf "  index %s.%s -> file %d\n" tbl idx file))
    committed;
  List.iter
    (fun rb ->
      Buffer.add_string buf
        (Printf.sprintf "  rebuild #%d %s.%s side file %d: %s\n" rb.rb_id rb.rb_table
           rb.rb_index rb.rb_side_file (state_name rb.rb_state)))
    (rebuilds t);
  List.iter
    (fun (tbl, st, esc) ->
      Buffer.add_string buf
        (Printf.sprintf "  quarantined %s.%s (escalations %d)\n" tbl st esc))
    (quarantines t);
  Buffer.contents buf

module Prng = Rdb_util.Prng

type file_class = Heap | Index | Spill | Other
type kind = Transient | Persistent | Corrupt | Spill_full

type failure = {
  file : int;
  index : int;
  class_ : file_class;
  kind : kind;
}

exception Injected of failure

type plan = {
  seed : int;
  transient_read_rate : float;
  transient_classes : file_class list;
  transient_files : int list option;
  persistent_files : int list;
  corrupt_blocks : (int * int) list;
  spill_write_budget : int option;
  fail_at_access : (int * int) list;
}

let null_plan =
  {
    seed = 0;
    transient_read_rate = 0.0;
    transient_classes = [];
    transient_files = None;
    persistent_files = [];
    corrupt_blocks = [];
    spill_write_budget = None;
    fail_at_access = [];
  }

let plan ?(transient_read_rate = 0.0) ?(transient_classes = [ Heap; Index; Spill ])
    ?transient_files ?(persistent_files = []) ?(corrupt_blocks = [])
    ?spill_write_budget ?(fail_at_access = []) ~seed () =
  if transient_read_rate < 0.0 || transient_read_rate > 1.0 then
    invalid_arg "Fault.plan: transient_read_rate outside [0,1]";
  List.iter
    (fun (_, n) -> if n < 1 then invalid_arg "Fault.plan: fail_at_access counts from 1")
    fail_at_access;
  {
    seed;
    transient_read_rate;
    transient_classes;
    transient_files;
    persistent_files;
    corrupt_blocks;
    spill_write_budget;
    fail_at_access;
  }

type t = {
  plan : plan;
  prng : Prng.t;
  mutable corrupt_pending : (int * int) list;
  mutable spill_writes : int;
  read_counts : (int, int) Hashtbl.t;  (* file -> read accesses so far *)
  mutable n_transient : int;
  mutable n_persistent : int;
  mutable n_corrupt : int;
  mutable n_spill : int;
}

let create plan =
  {
    plan;
    prng = Prng.create ~seed:plan.seed;
    corrupt_pending = plan.corrupt_blocks;
    spill_writes = 0;
    read_counts = Hashtbl.create 8;
    n_transient = 0;
    n_persistent = 0;
    n_corrupt = 0;
    n_spill = 0;
  }

let plan_of t = t.plan

let persistent t ~file = List.mem file t.plan.persistent_files

let transient_scope t ~cls ~file =
  t.plan.transient_read_rate > 0.0
  && List.mem cls t.plan.transient_classes
  && match t.plan.transient_files with
     | None -> true
     | Some files -> List.mem file files

let read_accesses t ~file =
  match Hashtbl.find_opt t.read_counts file with Some n -> n | None -> 0

let on_read t ~cls ~file ~index ~hit =
  if t.plan.fail_at_access <> [] then begin
    (* The schedule counts *every* read access (hit or miss), so the
       firing point does not depend on cache residency: "the Nth access
       to file f" means the same access in every run. *)
    let n = read_accesses t ~file + 1 in
    Hashtbl.replace t.read_counts file n;
    if List.mem (file, n) t.plan.fail_at_access then begin
      t.n_transient <- t.n_transient + 1;
      raise (Injected { file; index; class_ = cls; kind = Transient })
    end
  end;
  if persistent t ~file then begin
    t.n_persistent <- t.n_persistent + 1;
    raise (Injected { file; index; class_ = cls; kind = Persistent })
  end;
  if (not hit) && transient_scope t ~cls ~file
     && Prng.float t.prng 1.0 < t.plan.transient_read_rate
  then begin
    t.n_transient <- t.n_transient + 1;
    raise (Injected { file; index; class_ = cls; kind = Transient })
  end

let on_write t ~cls ~file ~index =
  if persistent t ~file then begin
    t.n_persistent <- t.n_persistent + 1;
    raise (Injected { file; index; class_ = cls; kind = Persistent })
  end;
  if cls = Spill then begin
    t.spill_writes <- t.spill_writes + 1;
    match t.plan.spill_write_budget with
    | Some budget when t.spill_writes > budget ->
        t.n_spill <- t.n_spill + 1;
        raise (Injected { file; index; class_ = cls; kind = Spill_full })
    | _ -> ()
  end

let take_corruption t ~file ~index =
  if List.mem (file, index) t.corrupt_pending then begin
    t.corrupt_pending <-
      List.filter (fun b -> b <> (file, index)) t.corrupt_pending;
    t.n_corrupt <- t.n_corrupt + 1;
    true
  end
  else false

let is_transient f = f.kind = Transient
let injected_transient t = t.n_transient
let injected_persistent t = t.n_persistent
let injected_corrupt t = t.n_corrupt
let injected_spill t = t.n_spill
let injected_total t = t.n_transient + t.n_persistent + t.n_corrupt + t.n_spill

let class_name = function
  | Heap -> "heap"
  | Index -> "index"
  | Spill -> "spill"
  | Other -> "other"

let kind_name = function
  | Transient -> "transient"
  | Persistent -> "persistent"
  | Corrupt -> "corrupt"
  | Spill_full -> "spill-full"

let describe f =
  Printf.sprintf "%s %s fault on %s file %d block %d" (kind_name f.kind)
    (match f.kind with Spill_full -> "write" | _ -> "read")
    (class_name f.class_) f.file f.index

(* FNV-1a over machine ints / bytes; order-sensitive. *)
let crc_init = 0xcbf29ce4
let fnv_prime = 0x01000193

let crc_int acc v =
  let acc = (acc lxor (v land 0xffff)) * fnv_prime in
  let acc = (acc lxor ((v lsr 16) land 0xffffffff)) * fnv_prime in
  acc land max_int

let crc_bytes acc b =
  let acc = ref (crc_int acc (Bytes.length b)) in
  for i = 0 to Bytes.length b - 1 do
    acc := (!acc lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime land max_int
  done;
  !acc

let crc_scramble crc = crc lxor 0x5a5a5a5a

open Rdb_data
module Dynarray = Rdb_util.Dynarray

type page = {
  slots : Bytes.t option Dynarray.t; (* None = tombstone *)
  mutable bytes_used : int;
  (* Lazily-maintained content checksum: mutations invalidate, the
     next cold read under a fault injector recomputes (dirty page) or
     verifies (clean page).  Without an injector the fields are
     untouched, keeping the seed cost profile bit-identical. *)
  mutable crc : int;
  mutable crc_valid : bool;
}

type t = {
  pool : Buffer_pool.t;
  file : int;
  page_bytes : int;
  pages : page Dynarray.t;
  mutable live : int;
  mutable max_slots : int;
}

let create ?(page_bytes = 8192) pool =
  if page_bytes < 64 then invalid_arg "Heap_file.create: page too small";
  let file = Buffer_pool.fresh_file pool in
  Buffer_pool.classify pool ~file Fault.Heap;
  {
    pool;
    file;
    page_bytes;
    pages = Dynarray.create ();
    live = 0;
    max_slots = 1;
  }

let file_id t = t.file
let page_count t = Dynarray.length t.pages
let record_count t = t.live

let records_per_page t =
  let pages = Int.max 1 (page_count t) in
  Int.max 1 ((t.live + pages - 1) / pages)

let block t index : Buffer_pool.block = { file = t.file; index }

let insert t row =
  let encoded = Row.encode row in
  let size = Bytes.length encoded + 4 (* slot directory entry *) in
  let page, page_no =
    match Dynarray.last t.pages with
    | Some p when p.bytes_used + size <= t.page_bytes -> (p, Dynarray.length t.pages - 1)
    | _ ->
        let p =
          { slots = Dynarray.create (); bytes_used = 0;
            crc = Fault.crc_init; crc_valid = false }
        in
        Dynarray.push t.pages p;
        (p, Dynarray.length t.pages - 1)
  in
  let slot = Dynarray.length page.slots in
  Dynarray.push page.slots (Some encoded);
  page.bytes_used <- page.bytes_used + size;
  page.crc_valid <- false;
  t.live <- t.live + 1;
  t.max_slots <- Int.max t.max_slots (slot + 1);
  Rid.make ~page:page_no ~slot

let page_crc page =
  Dynarray.fold_left
    (fun acc slot ->
      match slot with
      | None -> Fault.crc_int acc 0
      | Some bytes -> Fault.crc_bytes acc bytes)
    Fault.crc_init page.slots

(* Checksum discipline on a cold read: a dirty page (mutated since the
   last check) gets its crc recomputed — the write-side stamp; a clean
   page is verified against the stored crc.  Verification is modelled
   as free (the bytes are already in hand) and only runs under an
   injector, so injector-off runs are cost- and work-identical. *)
let audit t page page_no inj =
  if not page.crc_valid then begin
    page.crc <- page_crc page;
    page.crc_valid <- true
  end
  else begin
    if Fault.take_corruption inj ~file:t.file ~index:page_no then
      page.crc <- Fault.crc_scramble page.crc;
    if page_crc page <> page.crc then
      raise
        (Fault.Injected
           { Fault.file = t.file; index = page_no; class_ = Fault.Heap;
             kind = Fault.Corrupt })
  end

let get_page t meter page_no =
  if page_no < 0 || page_no >= Dynarray.length t.pages then None
  else begin
    let page = Dynarray.get t.pages page_no in
    (match Buffer_pool.touch_read t.pool meter (block t page_no) with
    | `Hit -> ()
    | `Miss -> (
        match Buffer_pool.injector t.pool with
        | None -> ()
        | Some inj -> audit t page page_no inj));
    Some page
  end

let decode_slot page meter (rid : Rid.t) =
  if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then None
  else begin
    match Dynarray.get page.slots rid.slot with
    | None -> None
    | Some bytes ->
        Cost.charge_cpu meter 1;
        Some (Row.decode bytes)
  end

let fetch t meter (rid : Rid.t) =
  match get_page t meter rid.page with
  | None -> None
  | Some page -> decode_slot page meter rid

(* --- cached fetch -----------------------------------------------------
   Per-RID fetchers (Fscan record fetches, the final stage) often hit
   the same heap page many times in a row — clustered indexes and
   sorted RID lists guarantee it.  A fetch cache remembers the last
   page together with its pool {!Buffer_pool.handle}; a repeat fetch
   re-accesses via {!Buffer_pool.retouch} — identical charges, metrics
   and injector stream, one fewer residency probe.  The cache is only
   sound while its handle is: holders must [invalidate_cache] whenever
   control leaves their batch quantum. *)

type fetch_cache = {
  mutable entry : (int * page * Buffer_pool.handle) option; (* page_no *)
}

let fetch_cache () = { entry = None }
let invalidate_cache c = c.entry <- None

let get_page_h t meter page_no =
  if page_no < 0 || page_no >= Dynarray.length t.pages then None
  else begin
    let page = Dynarray.get t.pages page_no in
    let kind, h = Buffer_pool.touch_read_h t.pool meter (block t page_no) in
    (match kind with
    | `Hit -> ()
    | `Miss -> (
        match Buffer_pool.injector t.pool with
        | None -> ()
        | Some inj -> audit t page page_no inj));
    Some (page, h)
  end

let fetch_via t meter cache (rid : Rid.t) =
  let cached =
    match cache.entry with
    | Some (page_no, page, h) when page_no = rid.page ->
        if Buffer_pool.retouch t.pool meter h then Some page else None
    | _ -> None
  in
  match cached with
  | Some page -> decode_slot page meter rid
  | None -> (
      cache.entry <- None;
      match get_page_h t meter rid.page with
      | None -> None
      | Some (page, h) ->
          cache.entry <- Some (rid.page, page, h);
          decode_slot page meter rid)

let delete t meter (rid : Rid.t) =
  match get_page t meter rid.page with
  | None -> false
  | Some page ->
      if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then false
      else begin
        match Dynarray.get page.slots rid.slot with
        | None -> false
        | Some bytes ->
            Dynarray.set page.slots rid.slot None;
            page.bytes_used <- page.bytes_used - (Bytes.length bytes + 4);
            page.crc_valid <- false;
            t.live <- t.live - 1;
            Buffer_pool.write t.pool meter (block t rid.page);
            true
      end

let update t meter (rid : Rid.t) row =
  match get_page t meter rid.page with
  | None -> false
  | Some page ->
      if rid.slot < 0 || rid.slot >= Dynarray.length page.slots then false
      else begin
        match Dynarray.get page.slots rid.slot with
        | None -> false
        | Some old ->
            let encoded = Row.encode row in
            Dynarray.set page.slots rid.slot (Some encoded);
            page.bytes_used <- page.bytes_used - Bytes.length old + Bytes.length encoded;
            page.crc_valid <- false;
            Buffer_pool.write t.pool meter (block t rid.page);
            true
      end

type cursor = {
  heap : t;
  meter : Cost.t;
  mutable page_no : int;
  mutable slot : int;
  mutable loaded : page option;
}

let scan t meter = { heap = t; meter; page_no = -1; slot = 0; loaded = None }

let rec next c =
  match c.loaded with
  | None ->
      let page_no = c.page_no + 1 in
      if page_no >= page_count c.heap then None
      else begin
        (* Load before advancing the cursor: a faulted read leaves the
           cursor unchanged, so re-calling [next] retries this page
           instead of silently skipping it. *)
        let loaded = get_page c.heap c.meter page_no in
        c.page_no <- page_no;
        c.slot <- 0;
        c.loaded <- loaded;
        next c
      end
  | Some page ->
      if c.slot >= Dynarray.length page.slots then begin
        c.loaded <- None;
        next c
      end
      else begin
        let slot = c.slot in
        c.slot <- slot + 1;
        match Dynarray.get page.slots slot with
        | None -> next c
        | Some bytes ->
            Cost.charge_cpu c.meter 1;
            Some (Rid.make ~page:c.page_no ~slot, Row.decode bytes)
      end

(* The corrupt-page exit (REPAIR TABLE): probe every page cold and
   rewrite the ones whose checksum verification fails — restamp the
   crc from the live slots and charge the page write.  Eviction first
   guarantees each probe is a genuine miss, so lazy verification
   actually runs.  Only [Corrupt] faults are healed; transient and
   persistent faults propagate (a rewrite cannot fix a dead disk). *)
let rewrite_corrupt_pages t meter =
  Buffer_pool.evict_file t.pool t.file;
  let healed = ref 0 in
  for page_no = 0 to page_count t - 1 do
    match get_page t meter page_no with
    | _ -> ()
    | exception Fault.Injected { Fault.kind = Fault.Corrupt; _ } ->
        let page = Dynarray.get t.pages page_no in
        page.crc <- page_crc page;
        page.crc_valid <- true;
        Buffer_pool.write t.pool meter (block t page_no);
        incr healed
  done;
  !healed

let iter t meter f =
  let c = scan t meter in
  let rec loop () =
    match next c with
    | None -> ()
    | Some (rid, row) ->
        f rid row;
        loop ()
  in
  loop ()

let slots_per_page_hint t = t.max_slots

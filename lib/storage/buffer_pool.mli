(** LRU buffer pool simulation, partitioned into independent shards.

    The pool does not hold data — backing stores keep their contents in
    memory — it simulates the *caching behaviour* of a page buffer:
    an access to a resident block is a cheap logical read; a miss is a
    physical read that evicts the least-recently-used block.  Heap
    pages, index nodes and spill blocks all live in one pool, which
    reproduces the paper's §3(c) uncertainty: the cost of a scan
    depends on what other scans (foreground vs background, competing
    strategies, other queries) have pulled in.

    {1 Sharding}

    The pool is split into [shards] independent LRU domains; a block
    maps to its shard by a deterministic mix of [{file; index}]
    (stable across OCaml versions — no [Hashtbl.hash]).  Each shard
    owns its slice of the capacity, its own LRU list, residency table,
    eviction stamp and lookup counter, so eviction pressure in one
    shard never invalidates handles or reorders recency in another —
    the structural prerequisite for thousands of concurrent sessions.

    Sharding steers contention and cost, never results: which blocks
    are resident (and therefore hit/miss charges, eviction order, and
    residency-dependent transient-fault draws) varies with the shard
    count, but the rows a scan returns do not.  [shards = 1] — the
    default everywhere — is byte-for-byte today's monolithic pool:
    same charges, same eviction order, same fault stream, same
    metrics (per-shard counters are only recorded when [shards > 1]). *)

type t

type block = { file : int; index : int }

val create : ?shards:int -> capacity:int -> unit -> t
(** [capacity] in blocks, split as evenly as possible across [shards]
    (default 1) LRU domains; the first [capacity mod shards] shards
    hold one extra block.  Raises [Invalid_argument] if [capacity < 1],
    [shards < 1], or [capacity < shards] (every shard must hold at
    least one block). *)

val capacity : t -> int
val resident : t -> int

val shards : t -> int
(** Number of independent LRU domains. *)

val shard_of_block : t -> block -> int
(** The shard index a block maps to — deterministic, version-stable. *)

val shard_lookups : t -> int array
(** Per-shard residency-table probe counts (see {!lookups}); index [k]
    is shard [k].  Resets to zeros on {!reshard}. *)

val shard_residents : t -> int array
val shard_capacities : t -> int array

val lookup_balance : int array -> float
(** Max/mean skew of a per-shard lookup vector: [1.0] is perfectly
    balanced, [n] means all probes landed on one of [n] shards.
    Degenerate inputs (single shard, all-zero) read as [1.0]. *)

val shard_lookup_balance : t -> float
(** [lookup_balance (shard_lookups t)]. *)

val reshard : t -> shards:int -> unit
(** Repartition the pool into [shards] domains.  Residency is dropped
    (equivalent to {!flush} — cost-only, results unaffected), every
    outstanding {!handle} is invalidated, and per-shard lookup
    counters restart at zero ({!lookups} stays monotone: pre-reshard
    probes are retired into the pool total).  Raises
    [Invalid_argument] on [shards < 1] or [capacity < shards]. *)

val fresh_file : t -> int
(** Allocate a new file id (heap, index, or spill space). *)

val classify : t -> file:int -> Fault.file_class -> unit
(** Record a file's class (heap / index / spill) so the fault injector
    can scope faults.  Backing stores call this at creation. *)

val file_class : t -> int -> Fault.file_class
(** [Other] if never classified. *)

val set_injector : t -> Fault.t option -> unit
(** Attach (or detach) a fault injector.  With [None] — the default —
    every access behaves and costs exactly as an injector-free pool.
    With an injector, reads and writes may raise {!Fault.Injected}
    after being charged; a faulted read does not make the block
    resident. *)

val injector : t -> Fault.t option

val set_metrics : t -> Rdb_util.Metrics.t option -> unit
(** Attach (or detach) a metrics registry.  Observation-only: with a
    registry attached the pool counts hits / misses / evictions /
    writes / faults per file label — and, when [shards > 1], the same
    events per shard under [pool.shard<k>.*] — but charges, residency
    and results are identical to an unobserved pool. *)

val metrics : t -> Rdb_util.Metrics.t option

val name_file : t -> file:int -> string -> unit
(** Give a file a human label ("table:employees", "index:emp_dept")
    used in per-file metric names.  Unnamed files show as "file<N>". *)

val file_label : t -> int -> string

val touch : t -> Cost.t -> block -> unit
(** Access a block for reading: charge logical on hit, physical on
    miss (and make it resident, evicting if full). *)

val touch_read : t -> Cost.t -> block -> [ `Hit | `Miss ]
(** [touch], reporting whether the access was a hit or a physical
    read.  Checksummed stores verify page integrity on [`Miss] (a cold
    read is the moment corruption would be observed). *)

(** {1 Lookup handles} — batch-quantum repeat-access fast path.

    Every [touch_read] probes the residency hash table; a batched
    cursor touching the same page many times inside one quantum pays
    that probe each time even though nothing moved.  A {!handle}
    remembers the LRU node a lookup resolved to, and {!retouch}
    replays the {e hit} path through it — same LRU bump, same logical
    charge to the meter and the global meter, same metrics events,
    same fault-injector stream — while skipping the probe.  Handles
    are invalidated conservatively by {e any} eviction in the owning
    shard ([retouch] returns [false]; redo the full lookup) — evictions
    in other shards leave them valid — so they are only worth holding
    across a short window such as one [next_batch] call. *)

type handle

val touch_read_h : t -> Cost.t -> block -> [ `Hit | `Miss ] * handle
(** Exactly [touch_read], also returning a handle for the (now
    resident) block.  No handle is produced on a faulted read (the
    exception propagates before residency). *)

val retouch : t -> Cost.t -> handle -> bool
(** Re-access the handled block as a hit without probing the table.
    [false] if an eviction in the block's shard invalidated the handle
    since it was made (nothing charged; caller falls back to
    [touch_read_h]).  May raise {!Fault.Injected} exactly as a hit
    access would. *)

val lookups : t -> int
(** Residency-table probes performed so far, summed across shards and
    monotone across {!reshard} (charged read and write accesses only;
    [retouch] does not probe).  Distinct from charged accesses: this
    is the in-memory bookkeeping the batch-quantum cursors amortize,
    also exported per file as the [pool.lookups] metric. *)

val write : t -> Cost.t -> block -> unit
(** Access a block for writing: charges a block write; the block
    becomes resident. *)

val is_resident : t -> block -> bool

val evict_file : t -> int -> unit
(** Drop all resident blocks of a file (file destruction). *)

val flush : t -> unit
(** Empty the pool (cold-cache experiments). *)

val global_meter : t -> Cost.t
(** Pool-lifetime accumulated charges (all meters combined). *)

val manifest : t -> Manifest.t
(** The durable metadata manifest rooted at this pool ({!Manifest}).
    Always present; crash teardown ({!flush} of residency plus
    volatile-state resets) leaves it intact — it is the record
    restart recovery reads. *)

(** LRU buffer pool simulation.

    The pool does not hold data — backing stores keep their contents in
    memory — it simulates the *caching behaviour* of a page buffer:
    an access to a resident block is a cheap logical read; a miss is a
    physical read that evicts the least-recently-used block.  Heap
    pages, index nodes and spill blocks all live in one pool, which
    reproduces the paper's §3(c) uncertainty: the cost of a scan
    depends on what other scans (foreground vs background, competing
    strategies, other queries) have pulled in. *)

type t

type block = { file : int; index : int }

val create : capacity:int -> t
(** [capacity] in blocks.  Raises [Invalid_argument] if < 1. *)

val capacity : t -> int
val resident : t -> int

val fresh_file : t -> int
(** Allocate a new file id (heap, index, or spill space). *)

val classify : t -> file:int -> Fault.file_class -> unit
(** Record a file's class (heap / index / spill) so the fault injector
    can scope faults.  Backing stores call this at creation. *)

val file_class : t -> int -> Fault.file_class
(** [Other] if never classified. *)

val set_injector : t -> Fault.t option -> unit
(** Attach (or detach) a fault injector.  With [None] — the default —
    every access behaves and costs exactly as an injector-free pool.
    With an injector, reads and writes may raise {!Fault.Injected}
    after being charged; a faulted read does not make the block
    resident. *)

val injector : t -> Fault.t option

val set_metrics : t -> Rdb_util.Metrics.t option -> unit
(** Attach (or detach) a metrics registry.  Observation-only: with a
    registry attached the pool counts hits / misses / evictions /
    writes / faults per file label, but charges, residency and results
    are identical to an unobserved pool. *)

val metrics : t -> Rdb_util.Metrics.t option

val name_file : t -> file:int -> string -> unit
(** Give a file a human label ("table:employees", "index:emp_dept")
    used in per-file metric names.  Unnamed files show as "file<N>". *)

val file_label : t -> int -> string

val touch : t -> Cost.t -> block -> unit
(** Access a block for reading: charge logical on hit, physical on
    miss (and make it resident, evicting if full). *)

val touch_read : t -> Cost.t -> block -> [ `Hit | `Miss ]
(** [touch], reporting whether the access was a hit or a physical
    read.  Checksummed stores verify page integrity on [`Miss] (a cold
    read is the moment corruption would be observed). *)

(** {1 Lookup handles} — batch-quantum repeat-access fast path.

    Every [touch_read] probes the residency hash table; a batched
    cursor touching the same page many times inside one quantum pays
    that probe each time even though nothing moved.  A {!handle}
    remembers the LRU node a lookup resolved to, and {!retouch}
    replays the {e hit} path through it — same LRU bump, same logical
    charge to the meter and the global meter, same metrics events,
    same fault-injector stream — while skipping the probe.  Handles
    are invalidated conservatively by {e any} eviction ([retouch]
    returns [false]; redo the full lookup), so they are only worth
    holding across a short window such as one [next_batch] call. *)

type handle

val touch_read_h : t -> Cost.t -> block -> [ `Hit | `Miss ] * handle
(** Exactly [touch_read], also returning a handle for the (now
    resident) block.  No handle is produced on a faulted read (the
    exception propagates before residency). *)

val retouch : t -> Cost.t -> handle -> bool
(** Re-access the handled block as a hit without probing the table.
    [false] if any eviction invalidated the handle since it was made
    (nothing charged; caller falls back to [touch_read_h]).  May raise
    {!Fault.Injected} exactly as a hit access would. *)

val lookups : t -> int
(** Residency-table probes performed so far (charged read and write
    accesses only; [retouch] does not probe).  Distinct from charged
    accesses: this is the in-memory bookkeeping the batch-quantum
    cursors amortize, also exported per file as the [pool.lookups]
    metric. *)

val write : t -> Cost.t -> block -> unit
(** Access a block for writing: charges a block write; the block
    becomes resident. *)

val is_resident : t -> block -> bool

val evict_file : t -> int -> unit
(** Drop all resident blocks of a file (file destruction). *)

val flush : t -> unit
(** Empty the pool (cold-cache experiments). *)

val global_meter : t -> Cost.t
(** Pool-lifetime accumulated charges (all meters combined). *)

(** Slotted-page heap file.

    Records are appended to pages of a fixed byte capacity; a record's
    RID is its (page, slot) address and never changes.  Every page
    access goes through the buffer pool, so sequential scans, random
    fetches, and clustering effects cost what they should. *)

open Rdb_data

type t

val create : ?page_bytes:int -> Buffer_pool.t -> t
(** [page_bytes] defaults to 8192. *)

val file_id : t -> int
val page_count : t -> int
val record_count : t -> int
(** Live (non-deleted) records. *)

val records_per_page : t -> int
(** Average live records per page (>= 1), for Yao-formula
    projections. *)

val insert : t -> Row.t -> Rid.t
(** Append; starts a new page when the current one is full. *)

val fetch : t -> Cost.t -> Rid.t -> Row.t option
(** Random fetch by RID.  Charges one page access.  [None] if deleted
    or out of range. *)

(** {1 Cached fetch} — batch-quantum page-locality fast path.

    Clustered fetches and sorted RID lists hit the same page many
    times in a row; a fetch cache carries the last page's pool handle
    so repeat fetches re-access it via {!Buffer_pool.retouch}:
    charges, metrics, and the fault-injector stream are identical to
    {!fetch}, only the residency probe is skipped.  Holders must
    invalidate the cache whenever control leaves their batch quantum
    (another cursor may evict the page meanwhile); a stale handle
    falls back to the full lookup automatically. *)

type fetch_cache

val fetch_cache : unit -> fetch_cache
(** A fresh (empty) cache. *)

val invalidate_cache : fetch_cache -> unit

val fetch_via : t -> Cost.t -> fetch_cache -> Rid.t -> Row.t option
(** [fetch], resolving the page through [cache] when it still holds
    the RID's page with a valid handle.  Updates the cache to the
    fetched page otherwise. *)

val delete : t -> Cost.t -> Rid.t -> bool
(** Tombstone the record; [false] if absent. *)

val update : t -> Cost.t -> Rid.t -> Row.t -> bool

(** {1 Sequential scan} *)

type cursor

val scan : t -> Cost.t -> cursor
(** Page-at-a-time sequential cursor; each new page charges one
    access. *)

val next : cursor -> (Rid.t * Row.t) option
(** Next live record in physical order. *)

val iter : t -> Cost.t -> (Rid.t -> Row.t -> unit) -> unit

val rewrite_corrupt_pages : t -> Cost.t -> int
(** The corrupt-page exit: evict the file (cold probe), read every
    page, and rewrite each one whose checksum verification fails —
    the crc is restamped from the live slot contents and the page
    write charged.  Returns the number of pages rewritten.  This is
    what [REPAIR TABLE] runs before its index logic, giving corrupt
    heap blocks the "until the page is rewritten" recovery that
    {!Fault} documents.  Transient and persistent faults are not
    healed here and propagate to the caller. *)

val slots_per_page_hint : t -> int
(** Upper bound on slots used in any page (dense-bitmap sizing). *)

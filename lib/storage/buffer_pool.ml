module Metrics = Rdb_util.Metrics

type block = { file : int; index : int }

(* Doubly-linked LRU list threaded through a hash table. *)
type node = {
  block : block;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  table : (block, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable count : int;
  mutable next_file : int;
  mutable lookups : int; (* residency probes, charged accesses only *)
  mutable stamp : int; (* bumped on any eviction; invalidates handles *)
  global : Cost.t;
  classes : (int, Fault.file_class) Hashtbl.t;
  mutable injector : Fault.t option;
  names : (int, string) Hashtbl.t;  (* file id -> human label for metrics *)
  mutable metrics : Metrics.t option;
}

(* A handle pins no memory: it remembers the LRU node a lookup found
   (or created) plus the eviction stamp at that moment.  [retouch]
   replays the hit path through the node, skipping the hash probe —
   valid only while no eviction has happened since, which the stamp
   check enforces conservatively (any eviction invalidates every
   outstanding handle). *)
type handle = { h_node : node; h_stamp : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    cap = capacity;
    table = Hashtbl.create (capacity * 2);
    head = None;
    tail = None;
    count = 0;
    next_file = 0;
    lookups = 0;
    stamp = 0;
    global = Cost.create ();
    classes = Hashtbl.create 16;
    injector = None;
    names = Hashtbl.create 16;
    metrics = None;
  }

let capacity t = t.cap
let resident t = t.count

let fresh_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  id

let classify t ~file cls = Hashtbl.replace t.classes file cls

let file_class t file =
  match Hashtbl.find_opt t.classes file with
  | Some cls -> cls
  | None -> Fault.Other

let set_injector t inj = t.injector <- inj
let injector t = t.injector

(* --- observability ---------------------------------------------------
   Observation-only by contract: recording never touches the LRU list,
   the cost meters, or residency, so enabling a registry cannot change
   results or charged costs (pinned in test/test_metrics.ml). *)

let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let name_file t ~file name = Hashtbl.replace t.names file name

let file_label t file =
  match Hashtbl.find_opt t.names file with
  | Some n -> n
  | None -> "file" ^ string_of_int file

let record t event file =
  match t.metrics with
  | None -> ()
  | Some m ->
      Metrics.incr (Metrics.counter m (Metrics.labeled ("pool." ^ event) (file_label t file)))

(* Fault injectors raise; count the fault against the faulted file
   before letting the failure propagate to the degradation policies. *)
let inject t f block =
  match t.injector with
  | None -> ()
  | Some inj -> (
      try f inj with
      | Fault.Injected _ as e ->
          record t "fault" block.file;
          raise e)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.block;
      t.count <- t.count - 1;
      t.stamp <- t.stamp + 1;
      record t "evict" n.block.file

let make_resident t block =
  let n = { block; prev = None; next = None } in
  if t.count >= t.cap then evict_lru t;
  Hashtbl.replace t.table block n;
  push_front t n;
  t.count <- t.count + 1;
  n

let probe t block =
  t.lookups <- t.lookups + 1;
  record t "lookups" block.file;
  Hashtbl.find_opt t.table block

let hit_charges t meter block =
  Cost.charge_logical meter;
  Cost.charge_logical t.global;
  record t "hit" block.file;
  inject t
    (fun inj ->
      Fault.on_read inj ~cls:(file_class t block.file) ~file:block.file
        ~index:block.index ~hit:true)
    block

let touch_read_h t meter block =
  match probe t block with
  | Some n ->
      unlink t n;
      push_front t n;
      hit_charges t meter block;
      (`Hit, { h_node = n; h_stamp = t.stamp })
  | None ->
      (* The I/O attempt is charged whether or not it succeeds; on a
         fault the block does *not* become resident (the read failed,
         there is nothing to cache), so a retry is another miss. *)
      Cost.charge_physical meter;
      Cost.charge_physical t.global;
      record t "miss" block.file;
      inject t
        (fun inj ->
          Fault.on_read inj ~cls:(file_class t block.file) ~file:block.file
            ~index:block.index ~hit:false)
        block;
      let n = make_resident t block in
      (`Miss, { h_node = n; h_stamp = t.stamp })

let touch_read t meter block = fst (touch_read_h t meter block)
let touch t meter block = ignore (touch_read t meter block)

let retouch t meter h =
  if h.h_stamp <> t.stamp then false
  else begin
    (* Replay the hit path exactly — LRU bump, charges, metrics and
       injector stream all identical to [touch_read] on a resident
       block — minus the hash probe, which is the point. *)
    let n = h.h_node in
    unlink t n;
    push_front t n;
    hit_charges t meter n.block;
    true
  end

let write t meter block =
  Cost.charge_write meter;
  Cost.charge_write t.global;
  record t "write" block.file;
  inject t
    (fun inj ->
      Fault.on_write inj ~cls:(file_class t block.file) ~file:block.file
        ~index:block.index)
    block;
  match probe t block with
  | Some n ->
      unlink t n;
      push_front t n
  | None -> ignore (make_resident t block)

let is_resident t block = Hashtbl.mem t.table block

let evict_file t file =
  let doomed =
    Hashtbl.fold (fun b n acc -> if b.file = file then n :: acc else acc) t.table []
  in
  if doomed <> [] then t.stamp <- t.stamp + 1;
  List.iter
    (fun n ->
      unlink t n;
      Hashtbl.remove t.table n.block;
      t.count <- t.count - 1)
    doomed

let flush t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.count <- 0;
  t.stamp <- t.stamp + 1

let lookups t = t.lookups
let global_meter t = t.global

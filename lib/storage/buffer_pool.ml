module Metrics = Rdb_util.Metrics

type block = { file : int; index : int }

(* Doubly-linked LRU list threaded through a hash table. *)
type node = {
  block : block;
  mutable prev : node option;
  mutable next : node option;
}

(* Per-shard metric names are precomputed at shard construction so the
   hot path never formats a string. *)
type shard_metrics = {
  m_lookups : string;
  m_hit : string;
  m_miss : string;
  m_evict : string;
  m_write : string;
}

(* One independent LRU domain.  Every piece of state the monolithic
   pool used to keep globally — residency table, LRU list, count,
   probe counter, eviction stamp — lives per shard, so shards never
   contend: an eviction in one shard cannot invalidate a handle or
   reorder recency in another. *)
type shard = {
  sh_cap : int;
  sh_table : (block, node) Hashtbl.t;
  mutable sh_head : node option; (* most recently used *)
  mutable sh_tail : node option; (* least recently used *)
  mutable sh_count : int;
  mutable sh_lookups : int; (* residency probes, charged accesses only *)
  mutable sh_stamp : int; (* bumped on any eviction; invalidates handles *)
  sh_metrics : shard_metrics;
}

type t = {
  cap : int;
  mutable shards : shard array;
  mutable next_file : int;
  mutable retired_lookups : int; (* probes performed before the last reshard *)
  global : Cost.t;
  classes : (int, Fault.file_class) Hashtbl.t;
  mutable injector : Fault.t option;
  names : (int, string) Hashtbl.t;  (* file id -> human label for metrics *)
  mutable metrics : Metrics.t option;
  manifest : Manifest.t;  (* durable metadata root (survives crashes) *)
}

(* A handle pins no memory: it remembers the LRU node a lookup found
   (or created), the shard that owns it, and the shard's eviction
   stamp at that moment.  [retouch] replays the hit path through the
   node, skipping the hash probe — valid only while no eviction has
   happened in that shard since, which the stamp check enforces
   conservatively (any eviction in the shard invalidates every
   outstanding handle on it; evictions in other shards do not). *)
type handle = { h_node : node; h_shard : shard; h_stamp : int }

let make_shard ~cap k =
  {
    sh_cap = cap;
    sh_table = Hashtbl.create (cap * 2);
    sh_head = None;
    sh_tail = None;
    sh_count = 0;
    sh_lookups = 0;
    sh_stamp = 0;
    sh_metrics =
      {
        m_lookups = Printf.sprintf "pool.shard%d.lookups" k;
        m_hit = Printf.sprintf "pool.shard%d.hit" k;
        m_miss = Printf.sprintf "pool.shard%d.miss" k;
        m_evict = Printf.sprintf "pool.shard%d.evict" k;
        m_write = Printf.sprintf "pool.shard%d.write" k;
      };
  }

(* Capacity is split as evenly as integer division allows: the first
   [capacity mod n] shards get one extra block.  [shards = 1] puts the
   whole capacity in shard 0 — the monolithic pool, byte for byte. *)
let make_shards ~capacity n =
  Array.init n (fun k ->
      make_shard ~cap:((capacity / n) + if k < capacity mod n then 1 else 0) k)

let create ?(shards = 1) ~capacity () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  if shards < 1 then invalid_arg "Buffer_pool.create: shards < 1";
  if capacity < shards then invalid_arg "Buffer_pool.create: capacity < shards";
  {
    cap = capacity;
    shards = make_shards ~capacity shards;
    next_file = 0;
    retired_lookups = 0;
    global = Cost.create ();
    classes = Hashtbl.create 16;
    injector = None;
    names = Hashtbl.create 16;
    metrics = None;
    manifest = Manifest.create ();
  }

let capacity t = t.cap
let shards t = Array.length t.shards

let resident t = Array.fold_left (fun acc sh -> acc + sh.sh_count) 0 t.shards

(* Deterministic multiplicative mix over {file; index} — independent of
   [Hashtbl.hash] so the partition is identical on every OCaml version
   and word size (folded to 30 bits).  [shards = 1] short-circuits so
   the single-shard pool never pays the hash. *)
let shard_index t (b : block) =
  let n = Array.length t.shards in
  if n = 1 then 0
  else
    let h = (b.file * 0x9e3779b1) lxor (b.index * 0x7feb352d) in
    (h land 0x3fffffff) mod n

let shard_of t b = t.shards.(shard_index t b)
let shard_of_block t b = shard_index t b
let shard_lookups t = Array.map (fun sh -> sh.sh_lookups) t.shards
let shard_residents t = Array.map (fun sh -> sh.sh_count) t.shards
let shard_capacities t = Array.map (fun sh -> sh.sh_cap) t.shards

(* max/mean skew of a per-shard lookup vector: 1.0 = perfectly
   balanced, [n] = everything on one of n shards.  Degenerate vectors
   (single shard, no lookups) read as balanced. *)
let lookup_balance counts =
  let n = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  if n <= 1 || total = 0 then 1.0
  else
    let mx = Array.fold_left max 0 counts in
    float_of_int (mx * n) /. float_of_int total

let shard_lookup_balance t = lookup_balance (shard_lookups t)

let fresh_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  id

let classify t ~file cls = Hashtbl.replace t.classes file cls

let file_class t file =
  match Hashtbl.find_opt t.classes file with
  | Some cls -> cls
  | None -> Fault.Other

let set_injector t inj = t.injector <- inj
let injector t = t.injector

(* --- observability ---------------------------------------------------
   Observation-only by contract: recording never touches the LRU lists,
   the cost meters, or residency, so enabling a registry cannot change
   results or charged costs (pinned in test/test_metrics.ml). *)

let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let name_file t ~file name = Hashtbl.replace t.names file name

let file_label t file =
  match Hashtbl.find_opt t.names file with
  | Some n -> n
  | None -> "file" ^ string_of_int file

let record t event file =
  match t.metrics with
  | None -> ()
  | Some m ->
      Metrics.incr (Metrics.counter m (Metrics.labeled ("pool." ^ event) (file_label t file)))

(* Per-shard counters exist only on a partitioned pool: at [shards = 1]
   the metrics stream is byte-identical to the monolithic pool's. *)
let record_shard t name =
  if Array.length t.shards > 1 then
    match t.metrics with
    | None -> ()
    | Some m -> Metrics.incr (Metrics.counter m name)

(* Fault injectors raise; count the fault against the faulted file
   before letting the failure propagate to the degradation policies. *)
let inject t f block =
  match t.injector with
  | None -> ()
  | Some inj -> (
      try f inj with
      | Fault.Injected _ as e ->
          record t "fault" block.file;
          raise e)

let unlink sh n =
  (match n.prev with Some p -> p.next <- n.next | None -> sh.sh_head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> sh.sh_tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front sh n =
  n.next <- sh.sh_head;
  n.prev <- None;
  (match sh.sh_head with Some h -> h.prev <- Some n | None -> sh.sh_tail <- Some n);
  sh.sh_head <- Some n

let evict_lru t sh =
  match sh.sh_tail with
  | None -> ()
  | Some n ->
      unlink sh n;
      Hashtbl.remove sh.sh_table n.block;
      sh.sh_count <- sh.sh_count - 1;
      sh.sh_stamp <- sh.sh_stamp + 1;
      record t "evict" n.block.file;
      record_shard t sh.sh_metrics.m_evict

let make_resident t sh block =
  let n = { block; prev = None; next = None } in
  if sh.sh_count >= sh.sh_cap then evict_lru t sh;
  Hashtbl.replace sh.sh_table block n;
  push_front sh n;
  sh.sh_count <- sh.sh_count + 1;
  n

let probe t sh block =
  sh.sh_lookups <- sh.sh_lookups + 1;
  record t "lookups" block.file;
  record_shard t sh.sh_metrics.m_lookups;
  Hashtbl.find_opt sh.sh_table block

let hit_charges t sh meter block =
  Cost.charge_logical meter;
  Cost.charge_logical t.global;
  record t "hit" block.file;
  record_shard t sh.sh_metrics.m_hit;
  inject t
    (fun inj ->
      Fault.on_read inj ~cls:(file_class t block.file) ~file:block.file
        ~index:block.index ~hit:true)
    block

let touch_read_h t meter block =
  let sh = shard_of t block in
  match probe t sh block with
  | Some n ->
      unlink sh n;
      push_front sh n;
      hit_charges t sh meter block;
      (`Hit, { h_node = n; h_shard = sh; h_stamp = sh.sh_stamp })
  | None ->
      (* The I/O attempt is charged whether or not it succeeds; on a
         fault the block does *not* become resident (the read failed,
         there is nothing to cache), so a retry is another miss. *)
      Cost.charge_physical meter;
      Cost.charge_physical t.global;
      record t "miss" block.file;
      record_shard t sh.sh_metrics.m_miss;
      inject t
        (fun inj ->
          Fault.on_read inj ~cls:(file_class t block.file) ~file:block.file
            ~index:block.index ~hit:false)
        block;
      let n = make_resident t sh block in
      (`Miss, { h_node = n; h_shard = sh; h_stamp = sh.sh_stamp })

let touch_read t meter block = fst (touch_read_h t meter block)
let touch t meter block = ignore (touch_read t meter block)

let retouch t meter h =
  if h.h_stamp <> h.h_shard.sh_stamp then false
  else begin
    (* Replay the hit path exactly — LRU bump, charges, metrics and
       injector stream all identical to [touch_read] on a resident
       block — minus the hash probe, which is the point. *)
    let n = h.h_node in
    unlink h.h_shard n;
    push_front h.h_shard n;
    hit_charges t h.h_shard meter n.block;
    true
  end

let write t meter block =
  let sh = shard_of t block in
  Cost.charge_write meter;
  Cost.charge_write t.global;
  record t "write" block.file;
  record_shard t sh.sh_metrics.m_write;
  inject t
    (fun inj ->
      Fault.on_write inj ~cls:(file_class t block.file) ~file:block.file
        ~index:block.index)
    block;
  match probe t sh block with
  | Some n ->
      unlink sh n;
      push_front sh n
  | None -> ignore (make_resident t sh block)

let is_resident t block = Hashtbl.mem (shard_of t block).sh_table block

let evict_file t file =
  Array.iter
    (fun sh ->
      let doomed =
        Hashtbl.fold
          (fun b n acc -> if b.file = file then n :: acc else acc)
          sh.sh_table []
      in
      if doomed <> [] then sh.sh_stamp <- sh.sh_stamp + 1;
      List.iter
        (fun n ->
          unlink sh n;
          Hashtbl.remove sh.sh_table n.block;
          sh.sh_count <- sh.sh_count - 1)
        doomed)
    t.shards

let flush t =
  Array.iter
    (fun sh ->
      Hashtbl.reset sh.sh_table;
      sh.sh_head <- None;
      sh.sh_tail <- None;
      sh.sh_count <- 0;
      sh.sh_stamp <- sh.sh_stamp + 1)
    t.shards

let reshard t ~shards =
  if shards < 1 then invalid_arg "Buffer_pool.reshard: shards < 1";
  if t.cap < shards then invalid_arg "Buffer_pool.reshard: capacity < shards";
  (* Residency is dropped (a flush), never migrated: redistributing
     nodes would have to invent a cross-shard recency order that no
     access pattern produced.  Outstanding handles die with their old
     shards — the stamp bump below is what [retouch] checks. *)
  t.retired_lookups <-
    Array.fold_left (fun acc sh -> acc + sh.sh_lookups) t.retired_lookups t.shards;
  Array.iter (fun sh -> sh.sh_stamp <- sh.sh_stamp + 1) t.shards;
  t.shards <- make_shards ~capacity:t.cap shards

let lookups t =
  Array.fold_left (fun acc sh -> acc + sh.sh_lookups) t.retired_lookups t.shards

let global_meter t = t.global
let manifest t = t.manifest

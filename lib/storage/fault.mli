(** Deterministic fault injection.

    A fault injector turns the buffer pool's charge points into fault
    points: every block access that costs something can also fail.
    All randomness flows from a {!Rdb_util.Prng} seed — two runs with
    the same plan observe the same faults at the same accesses — and a
    pool without an injector behaves (and costs) exactly as before.

    Fault taxonomy:

    - {e transient} read faults: a physical read fails but a retry may
      succeed.  Fired probabilistically on buffer-pool misses only
      (a resident block needs no I/O), scoped to file classes and
      optionally to specific files.
    - {e persistent} faults: every access to a listed file fails
      (a dead disk / unreadable index).  Never retried successfully.
    - {e corruption}: a listed block's stored checksum is scrambled
      once; lazy verification on the next cold read detects the
      mismatch and fails the access until the page is rewritten —
      heap pages via [Heap_file.rewrite_corrupt_pages] (the
      [REPAIR TABLE] exit), index nodes via the online rebuild.
    - {e spill exhaustion}: spill-store writes beyond a budget fail
      ([Spill_full]), modelling temp-space exhaustion. *)

type file_class = Heap | Index | Spill | Other

type kind =
  | Transient  (** retry may succeed *)
  | Persistent  (** file is dead; retry never helps *)
  | Corrupt  (** checksum mismatch on a cold read *)
  | Spill_full  (** spill-store write budget exhausted *)

type failure = {
  file : int;
  index : int;  (** block index within the file *)
  class_ : file_class;
  kind : kind;
}

exception Injected of failure
(** Raised at the faulted block access, after the access has been
    charged to the meters (the I/O attempt is paid for whether or not
    it succeeds).  Callers convert this into a structured outcome at
    the scan-step boundary; it never crosses a retrieval API. *)

type plan = {
  seed : int;
  transient_read_rate : float;  (** per-physical-read probability *)
  transient_classes : file_class list;
  transient_files : int list option;  (** [None] = every file in class *)
  persistent_files : int list;
  corrupt_blocks : (int * int) list;  (** (file, index) pairs *)
  spill_write_budget : int option;  (** max spill block writes *)
  fail_at_access : (int * int) list;
      (** deterministic schedule: [(f, n)] fires a transient read fault
          on exactly the [n]-th read access (1-based, hits and misses
          both counted) to file [f] — lets tests place a fault at a
          precise point instead of tuning probabilities.  To force a
          retry-exhaustion escalation, schedule [retry_limit + 1]
          consecutive access numbers: each retry re-accesses the file
          and advances the counter. *)
}

val null_plan : plan
(** No faults ever (seed 0, zero rate, empty scopes). *)

val plan :
  ?transient_read_rate:float ->
  ?transient_classes:file_class list ->
  ?transient_files:int list ->
  ?persistent_files:int list ->
  ?corrupt_blocks:(int * int) list ->
  ?spill_write_budget:int ->
  ?fail_at_access:(int * int) list ->
  seed:int ->
  unit ->
  plan
(** Defaults: rate 0.0, classes [[Heap; Index; Spill]], all files, no
    persistent files, no corruption, unlimited spill, no scheduled
    faults.  Raises [Invalid_argument] on a rate outside [0,1] or a
    scheduled access number below 1. *)

type t

val create : plan -> t
val plan_of : t -> plan

val on_read : t -> cls:file_class -> file:int -> index:int -> hit:bool -> unit
(** Called by the pool on every read access, after charging.
    Persistent faults fire on any access to a listed file; transient
    faults fire only on misses ([hit = false]), with probability
    [transient_read_rate], within the configured scope.
    @raise Injected on a fault. *)

val on_write : t -> cls:file_class -> file:int -> index:int -> unit
(** Called by the pool on every block write, after charging.
    Persistent files reject writes too; spill-class writes count
    against [spill_write_budget] and fail with [Spill_full] once it is
    spent.  Transient faults never fire on writes (a write retry after
    the caller mutated its state is not replayable).
    @raise Injected on a fault. *)

val take_corruption : t -> file:int -> index:int -> bool
(** [true] exactly once for each planned corrupt block: the caller
    must scramble that block's stored checksum so subsequent
    verification genuinely fails.  (Firing once matters: scrambling is
    an involution, so a second application would restore the page.) *)

val is_transient : failure -> bool

(** {1 Stats} — cumulative injected-fault counters, for benches. *)

val read_accesses : t -> file:int -> int
(** Read accesses observed on [file] so far.  Counted only while the
    plan carries a [fail_at_access] schedule (the counter exists for
    the schedule); 0 otherwise. *)

val injected_transient : t -> int
val injected_persistent : t -> int
val injected_corrupt : t -> int
val injected_spill : t -> int
val injected_total : t -> int

val class_name : file_class -> string
val kind_name : kind -> string

val describe : failure -> string
(** e.g. ["transient read fault on index file 3 block 17"]. *)

(** {1 Checksums} — order-sensitive integer mixing for page contents.
    Not cryptographic; detects the injector's deliberate scrambling
    and any accidental divergence between content and stored crc. *)

val crc_init : int
val crc_int : int -> int -> int
val crc_bytes : int -> Bytes.t -> int
val crc_scramble : int -> int
(** Involutive corruption of a stored checksum. *)

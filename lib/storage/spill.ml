open Rdb_data
module Dynarray = Rdb_util.Dynarray

type t = {
  pool : Buffer_pool.t;
  file : int;
  cap : int;
  blocks : Rid.t array Dynarray.t; (* sealed full blocks *)
  tail : Rid.t Dynarray.t;
  mutable sealed : bool;
}

let create ?(rids_per_block = 1024) pool =
  if rids_per_block < 1 then invalid_arg "Spill.create";
  let file = Buffer_pool.fresh_file pool in
  Buffer_pool.classify pool ~file Fault.Spill;
  {
    pool;
    file;
    cap = rids_per_block;
    blocks = Dynarray.create ();
    tail = Dynarray.create ();
    sealed = false;
  }

let flush_tail t meter =
  if Dynarray.length t.tail > 0 then begin
    let index = Dynarray.length t.blocks in
    Dynarray.push t.blocks (Dynarray.to_array t.tail);
    Dynarray.clear t.tail;
    Buffer_pool.write t.pool meter { file = t.file; index }
  end

let append t meter rids =
  if t.sealed then invalid_arg "Spill.append: sealed";
  Array.iter
    (fun rid ->
      Dynarray.push t.tail rid;
      if Dynarray.length t.tail >= t.cap then flush_tail t meter)
    rids

let seal t meter =
  if not t.sealed then begin
    flush_tail t meter;
    t.sealed <- true
  end

let length t =
  Dynarray.fold_left (fun acc b -> acc + Array.length b) 0 t.blocks
  + Dynarray.length t.tail

let block_count t = Dynarray.length t.blocks + if Dynarray.is_empty t.tail then 0 else 1

let iter t meter f =
  Dynarray.iteri
    (fun index block ->
      Buffer_pool.touch t.pool meter { file = t.file; index };
      Array.iter f block)
    t.blocks;
  Dynarray.iter f t.tail

let to_array t meter =
  let out = Dynarray.create () in
  iter t meter (Dynarray.push out);
  Dynarray.to_array out

let destroy t = Buffer_pool.evict_file t.pool t.file

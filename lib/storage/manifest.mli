(** Durable metadata manifest: the state that survives a process crash.

    The crash model (DESIGN.md §15) splits the system into volatile
    state — buffer-pool residency, open cursors, scheduler queues, the
    feedback store, health counters, metrics — and durable state: heap
    page contents, committed index trees, and this manifest.  The
    manifest is the small root record a real engine would keep on disk
    and fsync at commit points; here it is an in-memory structure that
    survives by convention (a crash tears down everything {e except}
    heap/tree contents and the manifest).

    It records three things:

    + {b Committed indexes} — which tree file is the committed version
      of each (table, index).  Updated atomically when an index build
      or rebuild commits.
    + {b Two-phase rebuilds} — every online rebuild registers a
      [Building] record naming its side tree file before copying a
      single row, and flips it to [Committed] in the same step as the
      tree swap.  A crash mid-rebuild therefore leaves a detectable
      uncommitted orphan, never a half-swapped tree; recovery discards
      the side tree and flips the record to [Aborted].
    + {b Quarantine verdicts} — each structure's quarantine, with its
      backoff escalation count, persists so a restart cannot silently
      trust a structure the previous incarnation proved dead.

    Manifest writes are modelled as free (a handful of metadata bytes
    next to multi-block data operations) and charge no meter, which
    keeps crash-free runs byte-identical to a build without this
    module.  All renderings are sorted and deterministic. *)

type rebuild_state = Building | Committed | Aborted

type rebuild = {
  rb_id : int;  (** dense, in registration order *)
  rb_table : string;
  rb_index : string;
  rb_side_file : int;  (** pool file id of the side tree *)
  mutable rb_state : rebuild_state;
}

type t

val create : unit -> t
(** Empty manifest, epoch 0. *)

val epoch : t -> int

val begin_epoch : t -> int
(** Bump and return the epoch counter — recovery stamps each restart. *)

(** {1 Committed indexes} *)

val commit_index : t -> table:string -> index:string -> file:int -> unit
(** Record [file] as the committed tree of [(table, index)] — the
    atomic commit point of an index build or rebuild swap. *)

val forget_index : t -> table:string -> index:string -> unit
(** Drop the entry (index dropped). *)

val forget_table : t -> table:string -> unit
(** Drop every entry of [table] (table dropped). *)

val committed_file : t -> table:string -> index:string -> int option

(** {1 Two-phase rebuilds} *)

val begin_rebuild : t -> table:string -> index:string -> side_file:int -> int
(** Register a [Building] record for a rebuild copying into
    [side_file]; returns its [rb_id].  Must be called before the first
    copied row so a crash at any later step boundary finds the
    orphan. *)

val commit_rebuild : t -> int -> unit
(** Flip to [Committed] — called in the same step as the tree swap, so
    the pair is atomic under the step-boundary crash model. *)

val abort_rebuild : t -> int -> unit
(** Flip to [Aborted] (failed rebuild, or recovery discarding an
    orphan).  Idempotent on an already-aborted record. *)

val orphans : t -> rebuild list
(** Rebuild records still [Building] — after a crash, exactly the
    rebuilds that died mid-copy — in [rb_id] order. *)

val rebuilds : t -> rebuild list
(** Every rebuild record, in [rb_id] order. *)

(** {1 Quarantine verdicts} *)

val record_quarantine :
  t -> table:string -> structure:string -> escalations:int -> unit
(** Persist (or update) a quarantine verdict with its backoff
    escalation count. *)

val clear_quarantine : t -> table:string -> structure:string -> unit
(** The structure was proven healthy (probe success / rebuild). *)

val quarantines : t -> (string * string * int) list
(** Every persisted verdict as [(table, structure, escalations)],
    sorted. *)

val to_string : t -> string
(** Deterministic rendering (sorted sections) — the recovery
    idempotence property compares these before/after a second
    recovery pass. *)

(** Selectivity distributions for restrictions (paper §2 applied).

    Builds a {!Rdb_dist.Dist.t} for a bound restriction against a
    table: leaf predicates that an index can estimate get a bell (or a
    point, when the descent reached a leaf) around the descent-to-split
    estimate; everything else is fully uncertain (uniform); AND/OR/NOT
    combine under the unknown-correlation assumption.  The result is
    what the initial stage and competition reports use to reason about
    how uncertain a strategy's cost is. *)

open Rdb_storage

val of_predicate :
  ?bins:int -> ?feedback:Feedback.t -> Table.t -> Cost.t -> Predicate.t -> Rdb_dist.Dist.t
(** Selectivity distribution of a bound restriction.  Estimation node
    reads are charged to the meter.  When [feedback] is supplied,
    inexact leaf estimates are scaled by the factors the optimizer
    learned for the same (index, ranges) cells (DESIGN.md §13) —
    advice-only, like the distributions themselves. *)

val uncertainty_of_estimate :
  estimate:float -> cardinality:int -> exact:bool -> split_level:int -> float
(** Standard deviation attached to a descent estimate: 0 when exact,
    otherwise growing with the split level (each level multiplies the
    fanout uncertainty). *)

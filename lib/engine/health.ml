type state = Healthy | Suspect | Quarantined | Rebuilding

let state_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"
  | Rebuilding -> "rebuilding"

type config = {
  suspect_threshold : int;
  backoff_budget : float;
  backoff_factor : float;
}

let default_config =
  { suspect_threshold = 2; backoff_budget = 400.0; backoff_factor = 2.0 }

type transition = {
  tr_structure : string;
  tr_from : state;
  tr_to : state;
  tr_reason : string;
}

type entry = {
  mutable st : state;
  mutable corrupt_count : int;
  mutable budget : float;  (** current backoff budget (escalates) *)
  mutable due_at : float;  (** cost-clock instant the next probe is allowed *)
  mutable escalations : int;  (** times the backoff budget was escalated *)
  mutable transitions : int;
}

type verdict = Verdict_quarantined of { escalations : int } | Verdict_cleared

type t = {
  mutable cfg : config;
  entries : (string, entry) Hashtbl.t;
  mutable observer : (string -> verdict -> unit) option;
}

let create ?(config = default_config) () =
  if config.suspect_threshold < 1 then
    invalid_arg "Health.create: suspect_threshold < 1";
  if config.backoff_budget <= 0.0 then invalid_arg "Health.create: backoff_budget <= 0";
  if config.backoff_factor < 1.0 then invalid_arg "Health.create: backoff_factor < 1";
  { cfg = config; entries = Hashtbl.create 8; observer = None }

let set_observer t f = t.observer <- Some f

let observe t name v =
  match t.observer with None -> () | Some f -> f name v

let configure t config = t.cfg <- config
let config t = t.cfg

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
      let e =
        {
          st = Healthy;
          corrupt_count = 0;
          budget = t.cfg.backoff_budget;
          due_at = 0.0;
          escalations = 0;
          transitions = 0;
        }
      in
      Hashtbl.add t.entries name e;
      e

let state t name =
  match Hashtbl.find_opt t.entries name with Some e -> e.st | None -> Healthy

let goto e name to_ reason =
  let from_ = e.st in
  e.st <- to_;
  e.transitions <- e.transitions + 1;
  Some { tr_structure = name; tr_from = from_; tr_to = to_; tr_reason = reason }

let quarantine_ t e name ~now reason =
  e.due_at <- now +. e.budget;
  observe t name (Verdict_quarantined { escalations = e.escalations });
  goto e name Quarantined reason

let record_corrupt t ~now name =
  let e = entry t name in
  match e.st with
  | Healthy ->
      e.corrupt_count <- 1;
      if t.cfg.suspect_threshold = 1 then
        quarantine_ t e name ~now "checksum mismatch (threshold reached)"
      else goto e name Suspect "checksum mismatch"
  | Suspect ->
      e.corrupt_count <- e.corrupt_count + 1;
      if e.corrupt_count >= t.cfg.suspect_threshold then
        quarantine_ t e name ~now "repeated checksum mismatches"
      else None
  | Quarantined | Rebuilding -> None

let record_dead t ~now name =
  let e = entry t name in
  match e.st with
  | Healthy | Suspect -> quarantine_ t e name ~now "retry exhausted / dead structure"
  | Quarantined ->
      (* Re-probe (or a later access) failed again: escalate the
         backoff so a persistently dead structure is probed ever more
         rarely, never in a tight loop. *)
      e.budget <- e.budget *. t.cfg.backoff_factor;
      e.escalations <- e.escalations + 1;
      e.due_at <- now +. e.budget;
      observe t name (Verdict_quarantined { escalations = e.escalations });
      None
  | Rebuilding -> None

let clear_ t e name =
  e.corrupt_count <- 0;
  e.budget <- t.cfg.backoff_budget;
  e.due_at <- 0.0;
  e.escalations <- 0;
  observe t name Verdict_cleared

let mark_healthy t name =
  let e = entry t name in
  match e.st with
  | Healthy -> None
  | Suspect | Quarantined | Rebuilding ->
      clear_ t e name;
      goto e name Healthy "probe succeeded"

let begin_rebuild t name =
  let e = entry t name in
  match e.st with
  | Rebuilding -> None
  | _ -> goto e name Rebuilding "online rebuild started"

let end_rebuild t ~now ~ok name =
  let e = entry t name in
  match e.st with
  | Rebuilding ->
      if ok then begin
        clear_ t e name;
        goto e name Healthy "rebuilt from heap"
      end
      else begin
        e.budget <- e.budget *. t.cfg.backoff_factor;
        e.escalations <- e.escalations + 1;
        quarantine_ t e name ~now "rebuild failed"
      end
  | _ -> None

(* --- crash recovery support ------------------------------------------ *)

let reset t = Hashtbl.reset t.entries

let restore_quarantined t ~now ~escalations name =
  if escalations < 0 then invalid_arg "Health.restore_quarantined: escalations < 0";
  let e = entry t name in
  e.st <- Quarantined;
  e.corrupt_count <- 0;
  e.escalations <- escalations;
  e.budget <-
    t.cfg.backoff_budget *. (t.cfg.backoff_factor ** float_of_int escalations);
  e.due_at <- now +. e.budget;
  observe t name (Verdict_quarantined { escalations })

let escalations t name =
  match Hashtbl.find_opt t.entries name with Some e -> e.escalations | None -> 0

let probe_due t ~now name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e.st = Quarantined && now >= e.due_at
  | None -> false

let usable t ~now name =
  match Hashtbl.find_opt t.entries name with
  | None -> true
  | Some e -> (
      match e.st with
      | Healthy | Suspect -> true
      | Rebuilding -> false
      | Quarantined -> now >= e.due_at)

type status = {
  structure : string;
  st : state;
  probe_in : float option;  (** cost units until re-probe; Quarantined only *)
  transitions : int;
}

let report t ~now =
  Hashtbl.fold
    (fun name (e : entry) acc ->
      let probe_in =
        if e.st = Quarantined then Some (Float.max 0.0 (e.due_at -. now)) else None
      in
      { structure = name; st = e.st; probe_in; transitions = e.transitions } :: acc)
    t.entries []
  |> List.sort (fun a b -> compare a.structure b.structure)

let status_to_string s =
  match s.probe_in with
  | Some due ->
      Printf.sprintf "%-16s %-12s (re-probe in %.0f cost units, %d transitions)"
        s.structure (state_to_string s.st) due s.transitions
  | None ->
      Printf.sprintf "%-16s %-12s (%d transitions)" s.structure
        (state_to_string s.st) s.transitions

let transition_to_string tr =
  Printf.sprintf "%s: %s -> %s (%s)" tr.tr_structure (state_to_string tr.tr_from)
    (state_to_string tr.tr_to) tr.tr_reason

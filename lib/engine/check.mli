(** Consistency checker: cross-validate each B+-tree index against the
    heap through the buffer pool.

    One heap pass builds the expected (key, rid) multiset per index;
    one full-range cursor walk per index then consumes it.  Every
    probe — heap pages, index descent, leaf chain, self-check node
    visits — is charged to the caller's meter, so checking competes
    for cache and shows up in cost accounting like any other work.

    Damage taxonomy per index:
    - {e missing}: heap rows whose entry the index walk never produced;
    - {e phantom}: index entries with no backing heap row;
    - {e structural}: ordering / fill / linkage violations from
      [Btree.self_check];
    - {e fault}: the walk itself faulted ([Fault.Injected] is caught
      and recorded — an unreadable index is damage, not a crash).

    Heap faults are {e not} caught: a checker cannot say anything
    without the ground truth, so [Fault.Injected] from the heap pass
    propagates to the caller. *)

type index_report = {
  ir_index : string;
  ir_entries : int;  (** entries the index walk produced *)
  ir_missing : int;  (** heap entries the index lacks *)
  ir_phantom : int;  (** index entries the heap lacks *)
  ir_structural : string option;  (** [Btree.self_check] violation *)
  ir_fault : string option;  (** walk faulted (index unreadable) *)
}

val clean : index_report -> bool
(** No missing/phantom entries, no structural violation, no fault. *)

type report = {
  table : string;
  heap_rows : int;
  indexes : index_report list;  (** in table index order *)
  cost : float;  (** cost charged for the whole check *)
}

val damaged : report -> index_report list
(** The indexes that failed {!clean}. *)

val run : ?meter:Rdb_storage.Cost.t -> Table.t -> report
(** Check every index of [table].  [meter] defaults to a throwaway
    meter; pass one to make the check's cost visible (e.g. a session
    quantum meter).
    @raise Rdb_storage.Fault.Injected if the heap itself is unreadable. *)

val damage_to_string : index_report -> string
(** ["clean"] or a semicolon-joined damage summary. *)

val index_report_to_string : index_report -> string
val report_to_string : report -> string

type cell = { mutable factor : float }

type t = {
  buckets : int;
  cells : (string * int, cell) Hashtbl.t;
  mutable observations : int;
}

let create ?(buckets = 256) () =
  if buckets <= 0 then invalid_arg "Feedback.create: buckets must be positive";
  { buckets; cells = Hashtbl.create 16; observations = 0 }

let reset t =
  Hashtbl.reset t.cells;
  t.observations <- 0

let cells t = Hashtbl.length t.cells
let observations t = t.observations

(* [Hashtbl.hash] is the structural hash: deterministic across runs
   and processes for the Value/range keys we feed it. *)
let bucket t key = Hashtbl.hash key mod t.buckets

let find t ~name ~key = Hashtbl.find_opt t.cells (name, bucket t key)
let known t ~name ~key = find t ~name ~key <> None

let factor t ~name ~key =
  match find t ~name ~key with Some c -> c.factor | None -> 1.0

let correct t ~name ~key est =
  match find t ~name ~key with Some c -> est *. c.factor | None -> est

(* Correction factors live in [1/64, 64]: a runaway cell (aliased
   bucket, adversarial workload) can skew cost decisions but stays
   within the range the competition machinery recovers from. *)
let min_factor = 1. /. 64.
let max_factor = 64.

let observe t ~rate ~name ~key ~est ~actual =
  let rate = Float.min 1.0 (Float.max 0.0 rate) in
  if rate > 0.0 then begin
    let est = Float.max 1.0 est and actual = Float.max 1.0 actual in
    let id = (name, bucket t key) in
    let cell =
      match Hashtbl.find_opt t.cells id with
      | Some c -> c
      | None ->
          let c = { factor = 1.0 } in
          Hashtbl.replace t.cells id c;
          c
    in
    let next = cell.factor *. ((actual /. est) ** rate) in
    cell.factor <- Float.min max_factor (Float.max min_factor next);
    t.observations <- t.observations + 1
  end

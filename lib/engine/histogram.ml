open Rdb_data
open Rdb_storage

type t = {
  column : string;
  lo : float;
  hi : float;
  counts : float array;
  total : float;
  rows_at_build : int;
  build_cost : float;
}

let build ?(buckets = 64) table ~column meter =
  let schema = Table.schema table in
  let col =
    match Schema.find schema column with
    | Some i -> i
    | None -> invalid_arg ("Histogram.build: unknown column " ^ column)
  in
  let before = Cost.total meter in
  (* Pass 1: bounds.  Pass 2: bucket counts.  Two full scans is how the
     real method pays for itself. *)
  let lo = ref infinity and hi = ref neg_infinity in
  Heap_file.iter (Table.heap table) meter (fun _ row ->
      match Value.as_float (Row.get row col) with
      | Some v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v
      | None -> ());
  let lo = !lo and hi = !hi in
  let counts = Array.make buckets 0.0 in
  let total = ref 0.0 in
  if lo <= hi then begin
    let width = Float.max 1e-9 ((hi -. lo) /. float_of_int buckets) in
    Heap_file.iter (Table.heap table) meter (fun _ row ->
        match Value.as_float (Row.get row col) with
        | Some v ->
            let b = Int.min (buckets - 1) (int_of_float ((v -. lo) /. width)) in
            counts.(b) <- counts.(b) +. 1.0;
            total := !total +. 1.0
        | None -> ())
  end;
  {
    column;
    lo;
    hi;
    counts;
    total = !total;
    rows_at_build = Table.row_count table;
    build_cost = Cost.total meter -. before;
  }

let buckets t = Array.length t.counts
let built_at_rows t = t.rows_at_build
let build_cost t = t.build_cost

(* Feedback cells for histogram estimates live under a name distinct
   from any index so they never alias the descent-estimate cells. *)
let feedback_name t = "histogram:" ^ t.column

let raw_estimate_range t ~lo ~hi =
  if t.total <= 0.0 then 0.0
  else begin
    let n = Array.length t.counts in
    let width = Float.max 1e-9 ((t.hi -. t.lo) /. float_of_int n) in
    let qlo = match lo with Some v -> v | None -> t.lo in
    let qhi = match hi with Some v -> v | None -> t.hi in
    if qlo > qhi then 0.0
    else begin
      let acc = ref 0.0 in
      for b = 0 to n - 1 do
        let b_lo = t.lo +. (float_of_int b *. width) in
        let b_hi = b_lo +. width in
        let overlap = Float.min qhi b_hi -. Float.max qlo b_lo in
        if overlap > 0.0 then acc := !acc +. (t.counts.(b) *. Float.min 1.0 (overlap /. width))
        else if overlap = 0.0 && qlo = qhi && qlo >= b_lo && qlo <= b_hi then
          (* point query: assume uniform spread inside the bucket *)
          acc := !acc +. (t.counts.(b) /. Float.max 1.0 (width +. 1.0))
      done;
      !acc
    end
  end

let estimate_range ?feedback t ~lo ~hi =
  let raw = raw_estimate_range t ~lo ~hi in
  match feedback with
  | None -> raw
  | Some fb -> Feedback.correct fb ~name:(feedback_name t) ~key:(lo, hi) raw

let observe_range t fb ~rate ~lo ~hi ~actual =
  let est = estimate_range ~feedback:fb t ~lo ~hi in
  Feedback.observe fb ~rate ~name:(feedback_name t) ~key:(lo, hi) ~est ~actual

let estimate_predicate ?feedback t pred =
  let open Predicate in
  let range lo hi = Some (estimate_range ?feedback t ~lo ~hi) in
  match pred with
  | Cmp (c, op, Const v) when c = t.column -> (
      match Value.as_float v with
      | None -> None
      | Some x -> (
          match op with
          | Eq -> range (Some x) (Some x)
          | Le -> range None (Some x)
          | Lt -> range None (Some x)
          | Ge -> range (Some x) None
          | Gt -> range (Some x) None
          | Ne -> Some (t.total -. estimate_range ?feedback t ~lo:(Some x) ~hi:(Some x))))
  | Between (c, Const a, Const b) when c = t.column -> (
      match (Value.as_float a, Value.as_float b) with
      | Some x, Some y -> range (Some x) (Some y)
      | _ -> None)
  | _ -> None (* not range-producing: the method's blind spot *)

let pp fmt t =
  Format.fprintf fmt "histogram(%s): %d buckets over [%g, %g], %g rows at build" t.column
    (Array.length t.counts) t.lo t.hi t.total

(** Feedback-driven estimation: a deterministic per-name/per-range
    store of multiplicative corrections learned from observed scan
    cardinalities (DESIGN.md §13).

    The paper (§5) pre-orders indexes by the outcomes of previous
    runs; this module closes the same loop for the *estimates*
    themselves.  Each completed scan contributes an
    (estimate, actual) pair; the store keeps one mutable correction
    factor per (name, range-bucket) cell and nudges it toward
    [actual / estimate] with a learning rate, so repeated workloads
    converge onto observed cardinalities (online multiplicative
    update à la adaptive cardinality estimation — Ivanov & Bartunov;
    online learning for selectivity).

    Invariants:
    - {b Observation-only.}  Corrections scale inexact estimates,
      which steer cost, never results.  Exact estimates (descent
      reached a leaf) must not be corrected by callers — exactness is
      what correctness-critical decisions gate on.
    - {b Deterministic.}  Bucketing uses the polymorphic hash of the
      structural key; no wall clock, no randomness.  The same
      workload replays to the same factors.
    - {b Config-gated.}  At learning rate 0 {!observe} is a no-op and
      {!correct} is the identity, so the default configuration is
      byte-identical to a build without this module. *)

type t

val create : ?buckets:int -> unit -> t
(** Fresh empty store.  [buckets] (default 256) is the number of
    range buckets each name's keys hash into; collisions merge cells,
    trading resolution for bounded memory. *)

val reset : t -> unit
(** Drop every cell — the estimation re-seed after a structural
    change ([Table.invalidate_stats], repair). *)

val cells : t -> int
(** Number of (name, bucket) cells holding a learned factor. *)

val observations : t -> int
(** Total observations ever folded in (0 after {!reset}). *)

val bucket : t -> 'a -> int
(** The deterministic bucket a key falls into (exposed for tests). *)

val known : t -> name:string -> key:'a -> bool
(** Whether a factor has been learned for this (name, bucket). *)

val factor : t -> name:string -> key:'a -> float
(** The learned correction factor, 1.0 when unknown. *)

val correct : t -> name:string -> key:'a -> float -> float
(** [correct t ~name ~key est] = [est *. factor]; the identity when
    the cell is unknown. *)

val observe : t -> rate:float -> name:string -> key:'a -> est:float -> actual:float -> unit
(** Fold one completed-scan observation into the cell:
    [factor <- factor *. (actual /. est) ** rate] with [est] and
    [actual] clamped to [>= 1.0], [rate] clamped to [0, 1] and the
    factor clamped to [1/64, 64].  In log space this is a stochastic
    approximation that converges monotonically onto [actual /. est]
    for a repeated identical range; [rate = 0.] is a no-op (the cell
    is not even created). *)

(** Tables: a heap file plus any number of B+-tree indexes and the
    adaptive statistics the dynamic optimizer keeps per table (§5's
    "freshly reordered indexes are used for the next retrieval
    estimates as a starting point"). *)

open Rdb_btree
open Rdb_data
open Rdb_storage

type index = {
  idx_name : string;
  key_columns : string list;  (** in key order *)
  key_ids : int array;  (** column positions in the table schema *)
  tree : Btree.t;
}

type t

val create : ?page_bytes:int -> Buffer_pool.t -> name:string -> Schema.t -> t

val name : t -> string
val schema : t -> Schema.t
val heap : t -> Heap_file.t
val pool : t -> Buffer_pool.t
val indexes : t -> index list
val find_index : t -> string -> index option

val row_count : t -> int
val page_count : t -> int

val insert : t -> Row.t -> Rid.t
(** Validates against the schema (raises [Invalid_argument] on
    mismatch) and maintains all indexes.  Maintenance I/O is charged
    to an internal build meter, not to any query. *)

val insert_many : t -> Row.t list -> unit

val delete : t -> Rid.t -> bool
(** Remove the row and its index entries. *)

val update : t -> Rid.t -> Row.t -> bool
(** Replace the row in place, maintaining every index whose key
    changed.  [false] if the RID is dead.  Raises [Invalid_argument]
    on schema mismatch. *)

val create_index : t -> ?fanout:int -> name:string -> columns:string list -> unit -> index
(** Build a new index over existing rows.  Raises [Invalid_argument]
    on duplicate name or unknown column. *)

val drop_index : t -> string -> bool

val index_key : index -> Row.t -> Btree.key
(** Project a row onto the index key columns. *)

val index_covers : index -> columns:string list -> bool
(** Self-sufficiency (§4): every needed column is in the index key. *)

val index_provides_order : index -> order:string list -> bool
(** Order-needed check: the requested column order is a prefix of the
    index key (ascending). *)

val build_meter : t -> Cost.t
(** Accumulated maintenance cost (loads, index builds). *)

val clustering_factor : t -> index -> float
(** Fraction of consecutive index entries (sampled over the first
    4096) whose RIDs land on the same or the next data page — 1.0 for
    an index whose order coincides with physical placement, near
    [records_per_page / row_count] for a random one.  The paper's
    §3(b) uncertainty source, measured instead of guessed.  Cached
    until the row count moves by more than 10%%. *)

(** {1 Adaptive per-table statistics} *)

val preferred_order : t -> string list
(** Index names in the order the last initial stage found best;
    empty initially. *)

val set_preferred_order : t -> string list -> unit

val feedback : t -> Feedback.t
(** The table's cardinality-feedback store ({!Feedback}): learned
    multiplicative corrections from completed scans, consumed by the
    initial stage when the retrieval config enables a learning rate.
    Reset by {!invalidate_stats} (and therefore by {!replace_index})
    because learned factors describe the old physical tree. *)

(** {1 Self-healing} *)

val heap_structure : string
(** The health-registry name of the heap ("heap"); indexes register
    under their index names. *)

val health : t -> Health.t
(** The table's per-structure health registry.  Consult it with
    {!now} as the clock. *)

val now : t -> float
(** The health clock: total cost ever charged through this table's
    pool (deterministic; no wall time). *)

val structure_of_file : t -> int -> string option
(** Map a pool file id to the structure it backs — [heap_structure]
    for the heap file, the index name for an index tree file; [None]
    for files this table does not own (spill space, other tables). *)

val index_usable : t -> index -> bool
(** [Health.usable] on the index at {!now}: quarantined-in-backoff and
    rebuilding indexes must not be planned with. *)

val note_transition : t -> Health.transition option -> Health.transition option
(** Pass-through that counts the transition in the pool's metrics
    registry (when attached).  Callers emit the trace event. *)

val invalidate_stats : t -> unit
(** Drop the clustering cache, the adaptive preferred order and the
    learned feedback factors — the estimation re-seed after a
    structural change. *)

val reset_volatile : t -> unit
(** Crash teardown (DESIGN.md §15): drop every piece of this table's
    soft state — the health registry's entries ({!Health.reset}) plus
    everything {!invalidate_stats} drops.  Heap contents, committed
    trees and the pool's manifest are durable and untouched; restart
    recovery reconstructs health from the manifest's verdicts. *)

val replace_index : t -> name:string -> Btree.t -> unit
(** Atomically swap in a rebuilt tree for the named index: the new
    file takes over the index's pool label and becomes the committed
    tree in the pool's manifest, the old file's resident blocks are
    evicted, and cached estimation state is invalidated
    ({!invalidate_stats}).  Raises [Invalid_argument] on an unknown
    name. *)

open Rdb_btree
module Dist = Rdb_dist.Dist

let uncertainty_of_estimate ~estimate ~cardinality ~exact ~split_level =
  if exact || cardinality = 0 then 0.0
  else begin
    (* The edge children of the split node contribute the error: about
       one child-load of entries per side, i.e. a relative error around
       1/k scaled by how high the split sits. *)
    let sel = estimate /. float_of_int cardinality in
    let level_factor = 0.25 *. float_of_int (Int.max 1 (split_level - 1)) in
    Rdb_util.Stats.clamp (sel *. level_factor) ~lo:0.0 ~hi:0.5
  end

(* Find an index whose leading key column is [col]. *)
let leading_index table col =
  List.find_opt
    (fun idx -> match idx.Table.key_columns with c :: _ -> c = col | [] -> false)
    (Table.indexes table)

let leaf_dist ?bins ?feedback table meter pred =
  let uncertain () = Dist.uniform ?bins () in
  match Predicate.columns pred with
  | [ col ] -> (
      match leading_index table col with
      | None -> uncertain ()
      | Some idx -> (
          let extraction = Range_extract.for_index pred idx in
          if not extraction.Range_extract.bounded then uncertain ()
          else begin
            let card = Btree.cardinality idx.Table.tree in
            if card = 0 then Dist.point ?bins 0.0
            else begin
              let r = Estimate.ranges idx.Table.tree meter extraction.Range_extract.ranges in
              (* Same (index, ranges) cells the initial stage learns
                 into: selectivity advice shares the corrections.
                 Exact descents are never corrected. *)
              let estimate =
                match feedback with
                | Some fb when not r.Estimate.exact ->
                    Feedback.correct fb ~name:idx.Table.idx_name
                      ~key:extraction.Range_extract.ranges r.Estimate.estimate
                | _ -> r.Estimate.estimate
              in
              let sel =
                Rdb_util.Stats.clamp (estimate /. float_of_int card) ~lo:0.0 ~hi:1.0
              in
              let sd =
                uncertainty_of_estimate ~estimate ~cardinality:card
                  ~exact:r.Estimate.exact ~split_level:r.Estimate.split_level
              in
              if sd <= 0.0 then Dist.point ?bins sel
              else Dist.bell ?bins ~mean:sel ~stddev:sd ()
            end
          end))
  | _ -> uncertain ()

let rec of_predicate ?bins ?feedback table meter pred =
  match pred with
  | Predicate.True -> Dist.point ?bins 1.0
  | Predicate.False -> Dist.point ?bins 0.0
  | Predicate.Not x -> Dist.neg (of_predicate ?bins ?feedback table meter x)
  | Predicate.And ts ->
      fold_op ?bins ?feedback table meter ~empty:1.0 ~op:(Dist.and_ ~corr:Dist.Unknown) ts
  | Predicate.Or ts ->
      fold_op ?bins ?feedback table meter ~empty:0.0 ~op:(Dist.or_ ~corr:Dist.Unknown) ts
  | Predicate.Cmp _ | Predicate.Cmp_col _ | Predicate.Between _ | Predicate.In_list _
  | Predicate.Is_null _ | Predicate.Is_not_null _ | Predicate.Like _ ->
      leaf_dist ?bins ?feedback table meter pred

and fold_op ?bins ?feedback table meter ~empty ~op = function
  | [] -> Dist.point ?bins empty
  | [ x ] -> of_predicate ?bins ?feedback table meter x
  | x :: rest ->
      List.fold_left
        (fun acc y -> op acc (of_predicate ?bins ?feedback table meter y))
        (of_predicate ?bins ?feedback table meter x)
        rest

(** Stored equi-width column histograms — the §5 strawman.

    The paper dismisses the "widely known estimation method based on
    storing the column distribution histograms" for three reasons:

    + it "fully depends on costly data rescans for histogram
      maintenance" — building one reads the whole table, and it goes
      stale as data changes;
    + it "can only be used for range-producing restrictions";
    + "even for range estimates, histograms fail to detect small
      ranges falling below granularity, though the smallest ranges
      must be detected and scanned first".

    This module implements that method honestly so the benchmark
    harness can measure all three drawbacks against the B-tree
    descent estimator (see `bench -e histogram`). *)

open Rdb_storage

type t

val build : ?buckets:int -> Table.t -> column:string -> Cost.t -> t
(** Full-scan build ([buckets] defaults to 64): one pass over the heap
    is charged to the meter.  Non-numeric and NULL values are skipped.
    Raises [Invalid_argument] on an unknown column. *)

val buckets : t -> int
val built_at_rows : t -> int
(** The table's row count at build time (staleness witness). *)

val build_cost : t -> float
(** Pages read to build it. *)

val estimate_range : ?feedback:Feedback.t -> t -> lo:float option -> hi:float option -> float
(** Estimated number of rows with [lo <= v <= hi] (either bound
    optional), with linear interpolation inside partially covered
    buckets.  Reflects the data as of build time — unless [feedback]
    is supplied, in which case the raw estimate is scaled by the
    factor learned from {!observe_range} for this (column, bounds)
    cell (DESIGN.md §13): feedback is the online patch for the
    method's staleness drawback. *)

val observe_range :
  t -> Feedback.t -> rate:float -> lo:float option -> hi:float option -> actual:float -> unit
(** Fold the observed actual cardinality of the range back into the
    feedback store (keyed under ["histogram:<column>"], never aliasing
    index cells), so later {!estimate_range} calls with [feedback]
    converge toward it. *)

val estimate_predicate : ?feedback:Feedback.t -> t -> Predicate.t -> float option
(** Estimate for a bound predicate on the histogram's column.  [None]
    when the predicate is not range-producing (LIKE, IS NULL, ...) —
    the method's second drawback.  [feedback] as in
    {!estimate_range}. *)

val pp : Format.formatter -> t -> unit

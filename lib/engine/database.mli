(** The catalog: named tables sharing one buffer pool. *)

open Rdb_data
open Rdb_storage

type t

val create : ?pool_capacity:int -> ?pool_shards:int -> unit -> t
(** [pool_capacity] in blocks, default 256 — small enough that cache
    effects (paper §3c) are visible on the benchmark workloads.
    [pool_shards] (default 1) partitions the pool into independent LRU
    shards ({!Buffer_pool.create}) — cost and contention only, results
    invariant. *)

val pool : t -> Buffer_pool.t

val create_table : t -> ?page_bytes:int -> name:string -> Schema.t -> Table.t
(** Raises [Invalid_argument] on duplicate names. *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val find_table : t -> string -> Table.t option
val tables : t -> Table.t list
val drop_table : t -> string -> bool

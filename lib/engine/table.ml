open Rdb_btree
open Rdb_data
open Rdb_storage

type index = {
  idx_name : string;
  key_columns : string list;
  key_ids : int array;
  tree : Btree.t;
}

type t = {
  name : string;
  schema : Schema.t;
  heap : Heap_file.t;
  pool : Buffer_pool.t;
  mutable indexes : index list;
  build : Cost.t;
  mutable preferred : string list;
  clustering_cache : (string, float * int) Hashtbl.t;
      (* index -> (factor, row_count at measurement) *)
  health : Health.t;
  feedback : Feedback.t;
}

let create ?page_bytes pool ~name schema =
  let heap = Heap_file.create ?page_bytes pool in
  Buffer_pool.name_file pool ~file:(Heap_file.file_id heap) ("table:" ^ name);
  let health = Health.create () in
  (* Quarantine verdicts are durable facts about storage: mirror every
     quarantine/escalation/clear into the pool's manifest so a restart
     can reconstruct the registry (DESIGN.md §15).  Observation-only
     and cost-free — crash-free runs are unaffected. *)
  let manifest = Buffer_pool.manifest pool in
  Health.set_observer health (fun structure verdict ->
      match verdict with
      | Health.Verdict_quarantined { escalations } ->
          Manifest.record_quarantine manifest ~table:name ~structure ~escalations
      | Health.Verdict_cleared ->
          Manifest.clear_quarantine manifest ~table:name ~structure);
  {
    name;
    schema;
    heap;
    pool;
    indexes = [];
    build = Cost.create ();
    preferred = [];
    clustering_cache = Hashtbl.create 4;
    health;
    feedback = Feedback.create ();
  }

let name t = t.name
let schema t = t.schema
let heap t = t.heap
let pool t = t.pool
let indexes t = t.indexes

let find_index t iname = List.find_opt (fun i -> i.idx_name = iname) t.indexes

let row_count t = Heap_file.record_count t.heap
let page_count t = Heap_file.page_count t.heap

let index_key idx row = Row.project row idx.key_ids

let insert t row =
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.insert(%s): %s" t.name e));
  let rid = Heap_file.insert t.heap row in
  List.iter (fun idx -> Btree.insert idx.tree t.build (index_key idx row) rid) t.indexes;
  rid

let insert_many t rows = List.iter (fun r -> ignore (insert t r)) rows

let delete t rid =
  match Heap_file.fetch t.heap t.build rid with
  | None -> false
  | Some row ->
      List.iter
        (fun idx -> ignore (Btree.delete idx.tree t.build (index_key idx row) rid))
        t.indexes;
      Heap_file.delete t.heap t.build rid

let update t rid row =
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Table.update(%s): %s" t.name e));
  match Heap_file.fetch t.heap t.build rid with
  | None -> false
  | Some old ->
      if Heap_file.update t.heap t.build rid row then begin
        List.iter
          (fun idx ->
            let old_key = index_key idx old and new_key = index_key idx row in
            if Btree.compare_key old_key new_key <> 0 then begin
              ignore (Btree.delete idx.tree t.build old_key rid);
              Btree.insert idx.tree t.build new_key rid
            end)
          t.indexes;
        true
      end
      else false

let create_index t ?(fanout = 64) ~name:iname ~columns () =
  if find_index t iname <> None then
    invalid_arg ("Table.create_index: duplicate index " ^ iname);
  if columns = [] then invalid_arg "Table.create_index: no columns";
  let key_ids =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.find t.schema c with
           | Some i -> i
           | None -> invalid_arg ("Table.create_index: unknown column " ^ c))
         columns)
  in
  let tree = Btree.create ~fanout t.pool in
  Buffer_pool.name_file t.pool ~file:(Btree.file_id tree) ("index:" ^ iname);
  let idx = { idx_name = iname; key_columns = columns; key_ids; tree } in
  Heap_file.iter t.heap t.build (fun rid row -> Btree.insert tree t.build (index_key idx row) rid);
  t.indexes <- t.indexes @ [ idx ];
  Manifest.commit_index (Buffer_pool.manifest t.pool) ~table:t.name ~index:iname
    ~file:(Btree.file_id tree);
  idx

let drop_index t iname =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun i -> i.idx_name <> iname) t.indexes;
  if List.length t.indexes < before then begin
    Manifest.forget_index (Buffer_pool.manifest t.pool) ~table:t.name ~index:iname;
    true
  end
  else false

let index_covers idx ~columns =
  List.for_all (fun c -> List.mem c idx.key_columns) columns

let index_provides_order idx ~order =
  let rec prefix req keys =
    match (req, keys) with
    | [], _ -> true
    | _, [] -> false
    | r :: rs, k :: ks -> r = k && prefix rs ks
  in
  prefix order idx.key_columns

(* Probe the adjacency of consecutive index entries at random spots
   across the whole key space (a prefix walk would be dominated by the
   hottest key).  Each probe descends to a sampled key and inspects a
   short run of consecutive entries. *)
let measure_clustering t idx =
  let probes = 64 and run_length = 8 in
  let rng = Rdb_util.Prng.create ~seed:(Hashtbl.hash idx.idx_name) in
  let samples = Sampling.ranked rng idx.tree t.build ~n:probes in
  let adjacent = ref 0 and pairs = ref 0 in
  Array.iter
    (fun (key, _) ->
      let cursor =
        Btree.cursor idx.tree t.build { Btree.lo = Btree.Incl key; hi = Btree.Unbounded }
      in
      let prev = ref None in
      let rec walk n =
        if n > 0 then begin
          match Btree.next cursor with
          | None -> ()
          | Some (_, rid) ->
              (match !prev with
              | Some (p : Rid.t) ->
                  incr pairs;
                  if rid.Rid.page = p.Rid.page || rid.Rid.page = p.Rid.page + 1 then
                    incr adjacent
              | None -> ());
              prev := Some rid;
              walk (n - 1)
        end
      in
      walk run_length)
    samples.Sampling.samples;
  if !pairs = 0 then 1.0 else float_of_int !adjacent /. float_of_int !pairs

let clustering_factor t idx =
  let fresh () =
    let f = measure_clustering t idx in
    Hashtbl.replace t.clustering_cache idx.idx_name (f, row_count t);
    f
  in
  match Hashtbl.find_opt t.clustering_cache idx.idx_name with
  | Some (f, at_rows) ->
      let rows = row_count t in
      if abs (rows - at_rows) * 10 > Int.max 1 at_rows then fresh () else f
  | None -> fresh ()

let build_meter t = t.build

let preferred_order t = t.preferred

let set_preferred_order t order = t.preferred <- order

(* --- self-healing support ------------------------------------------- *)

let heap_structure = "heap"

let health t = t.health

(* The health clock: total cost ever charged through this table's pool.
   Deterministic, monotone, and it advances with actual load — a busy
   database retries a quarantined index sooner in wall-clock terms but
   after the same amount of useful work. *)
let now t = Cost.total (Buffer_pool.global_meter t.pool)

let structure_of_file t file =
  if file = Heap_file.file_id t.heap then Some heap_structure
  else
    List.find_map
      (fun idx -> if Btree.file_id idx.tree = file then Some idx.idx_name else None)
      t.indexes

let index_usable t idx = Health.usable t.health ~now:(now t) idx.idx_name

(* Count health transitions in the pool's metrics registry (if one is
   attached); the trace event is the caller's job. *)
let note_transition t = function
  | None -> None
  | Some tr ->
      (match Buffer_pool.metrics t.pool with
      | None -> ()
      | Some m ->
          let module M = Rdb_util.Metrics in
          M.incr (M.counter m "health.transitions");
          M.incr
            (M.counter m
               (M.labeled "health.to_state" (Health.state_to_string tr.Health.tr_to))));
      Some tr

let feedback t = t.feedback

let invalidate_stats t =
  Hashtbl.reset t.clustering_cache;
  t.preferred <- [];
  Feedback.reset t.feedback

(* Crash teardown: everything this table keeps outside the heap pages
   and committed trees is volatile — health states and counters,
   learned feedback, cached clustering, the preferred order.  The
   manifest (reachable via the pool) survives; recovery reconstructs
   health from it. *)
let reset_volatile t =
  Health.reset t.health;
  invalidate_stats t

let replace_index t ~name:iname tree =
  match List.find_opt (fun i -> i.idx_name = iname) t.indexes with
  | None -> invalid_arg ("Table.replace_index: unknown index " ^ iname)
  | Some old ->
      Buffer_pool.name_file t.pool ~file:(Btree.file_id tree) ("index:" ^ iname);
      Buffer_pool.evict_file t.pool (Btree.file_id old.tree);
      Manifest.commit_index (Buffer_pool.manifest t.pool) ~table:t.name ~index:iname
        ~file:(Btree.file_id tree);
      t.indexes <-
        List.map
          (fun i -> if i.idx_name = iname then { i with tree } else i)
          t.indexes;
      (* A rebuilt index carries a fresh physical layout and fresh
         descent statistics: drop every cached estimate derived from
         the old tree so the next initial stage re-seeds them. *)
      invalidate_stats t

(** Per-structure health-state machine.

    Degraded states must be exits, not absorbing states: PR 1's fault
    policies quarantine a dead index for the life of the database,
    silently forcing every later query onto the Tscan floor.  This
    registry gives each storage structure (the heap, each index) an
    explicit lifecycle

    {v
      Healthy --checksum mismatch--> Suspect
      Suspect --repeated mismatch--> Quarantined
      Healthy/Suspect --retry exhaustion--> Quarantined
      Quarantined --backoff elapsed--> (re-probe: estimation descent)
          probe ok  --> Healthy
          probe dead--> Quarantined (backoff escalated)
      any --rebuild started--> Rebuilding
      Rebuilding --rebuild ok--> Healthy  (budgets reset)
      Rebuilding --rebuild failed--> Quarantined (backoff escalated)
    v}

    so every quarantine carries a recovery path: either the timed
    re-probe or an online rebuild.

    All timing is in {e cost units} on the caller-supplied [now] clock
    (by convention [Cost.total (Buffer_pool.global_meter pool)]) — no
    wall clock, so backoff is deterministic and scales with how busy
    the database actually is.

    The module is observation-free by design: transition functions
    return the {!transition} that occurred (if any) and the caller —
    which lives above the exec layer — turns it into trace events and
    metrics. *)

type state = Healthy | Suspect | Quarantined | Rebuilding

val state_to_string : state -> string

type config = {
  suspect_threshold : int;
      (** checksum mismatches tolerated in [Suspect] before the
          structure is quarantined (>= 1; 1 quarantines immediately) *)
  backoff_budget : float;
      (** cost units that must elapse on the caller's clock before a
          quarantined structure may be re-probed *)
  backoff_factor : float;
      (** budget multiplier on every failed probe / failed rebuild
          (>= 1), so a persistently dead structure is probed ever more
          rarely *)
}

val default_config : config
(** threshold 2, budget 400.0 cost units, factor 2.0. *)

type transition = {
  tr_structure : string;
  tr_from : state;
  tr_to : state;
  tr_reason : string;
}

val transition_to_string : transition -> string

type t

val create : ?config:config -> unit -> t
val configure : t -> config -> unit
(** Replace the config (tests tighten backoff budgets).  Existing
    entries keep their current escalated budgets. *)

val config : t -> config

val state : t -> string -> state
(** [Healthy] for a structure never reported. *)

(** {1 Fault-driven transitions}

    Each returns the transition performed, or [None] when the event
    changed no state (it may still have escalated a backoff). *)

val record_corrupt : t -> now:float -> string -> transition option
(** A checksum mismatch: [Healthy -> Suspect]; the
    [suspect_threshold]-th mismatch escalates to [Quarantined]. *)

val record_dead : t -> now:float -> string -> transition option
(** Retry exhaustion / persistent fault: [-> Quarantined] with the
    re-probe due after the current backoff budget.  On an already
    quarantined structure (a failed re-probe) the budget escalates by
    [backoff_factor] and the due time moves out; no state change. *)

val mark_healthy : t -> string -> transition option
(** A probe succeeded: [-> Healthy], counters and budgets reset. *)

val begin_rebuild : t -> string -> transition option
(** [-> Rebuilding]; the structure is unusable while rebuilding. *)

val end_rebuild : t -> now:float -> ok:bool -> string -> transition option
(** [ok = true]: [-> Healthy] with budgets reset.  [ok = false]:
    [-> Quarantined] with the backoff escalated. *)

(** {1 Durable verdicts and crash recovery}

    The registry itself is volatile — a crash loses every counter —
    but quarantine {e verdicts} are durable facts about storage, so an
    observer (wired by [Table] to the pool's manifest) is told
    whenever a structure is quarantined (with its current backoff
    escalation count) or proven healthy again.  Restart recovery
    replays the persisted verdicts back in through
    {!restore_quarantined}. *)

type verdict =
  | Verdict_quarantined of { escalations : int }
      (** quarantined, with the number of backoff escalations so far *)
  | Verdict_cleared  (** proven healthy (probe success / rebuild) *)

val set_observer : t -> (string -> verdict -> unit) -> unit
(** Install the durable-verdict observer (at most one; later calls
    replace).  Called synchronously on every quarantine, escalation,
    and clear — observation-only, it must not call back into [t]. *)

val reset : t -> unit
(** Crash teardown: drop every entry (states, counters, budgets).  The
    observer survives — it is wiring, not state. *)

val restore_quarantined : t -> now:float -> escalations:int -> string -> unit
(** Recovery: reconstruct a quarantined entry from a persisted
    verdict.  The backoff budget is re-derived as
    [backoff_budget *. backoff_factor ** escalations] and the next
    probe is due a full budget after [now] — exactly the state the
    pre-crash registry would have reached by the same escalations.
    Raises [Invalid_argument] on a negative count. *)

val escalations : t -> string -> int
(** Current backoff escalation count (0 if never escalated). *)

(** {1 Queries} *)

val usable : t -> now:float -> string -> bool
(** May a plan consider this structure?  [Healthy]/[Suspect]: yes
    ([Suspect] data is still served; checksums catch lies).
    [Rebuilding]: no.  [Quarantined]: only once the backoff budget has
    elapsed — that planning attempt {e is} the re-probe. *)

val probe_due : t -> now:float -> string -> bool
(** [Quarantined] and past the due time. *)

type status = {
  structure : string;
  st : state;
  probe_in : float option;  (** cost units until re-probe; Quarantined only *)
  transitions : int;
}

val report : t -> now:float -> status list
(** Every known structure, sorted by name. *)

val status_to_string : status -> string

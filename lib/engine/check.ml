open Rdb_btree
open Rdb_storage

type index_report = {
  ir_index : string;
  ir_entries : int;
  ir_missing : int;
  ir_phantom : int;
  ir_structural : string option;
  ir_fault : string option;
}

let clean r =
  r.ir_missing = 0 && r.ir_phantom = 0 && r.ir_structural = None && r.ir_fault = None

type report = {
  table : string;
  heap_rows : int;
  indexes : index_report list;
  cost : float;
}

let damaged rep = List.filter (fun r -> not (clean r)) rep.indexes

(* The expected entry set of an index is a multiset of (key, rid)
   pairs derived from one heap pass; each index walk then consumes it.
   Structural hashing is fine: keys are Value.t arrays. *)
let expected_entries table heap_meter =
  let idxs = Table.indexes table in
  let per_index = List.map (fun idx -> (idx, Hashtbl.create 1024)) idxs in
  let rows = ref 0 in
  Heap_file.iter (Table.heap table) heap_meter (fun rid row ->
      incr rows;
      List.iter
        (fun ((idx : Table.index), tbl) ->
          let k = (Table.index_key idx row, rid) in
          let n = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0 in
          Hashtbl.replace tbl k (n + 1))
        per_index);
  (!rows, per_index)

let check_index meter (idx : Table.index) expected =
  let entries = ref 0 and phantom = ref 0 and fault = ref None in
  (try
     let cursor = Btree.cursor idx.Table.tree meter Btree.full_range in
     let rec loop () =
       match Btree.next cursor with
       | None -> ()
       | Some (key, rid) ->
           incr entries;
           let k = (key, rid) in
           (match Hashtbl.find_opt expected k with
           | Some n when n > 1 -> Hashtbl.replace expected k (n - 1)
           | Some _ -> Hashtbl.remove expected k
           | None -> incr phantom);
           loop ()
     in
     loop ()
   with Fault.Injected f -> fault := Some (Fault.describe f));
  let missing = Hashtbl.fold (fun _ n acc -> acc + n) expected 0 in
  let structural =
    match !fault with
    | Some _ -> None (* unreadable: structure unknowable, fault dominates *)
    | None -> (
        try
          match Btree.self_check idx.Table.tree with
          | Ok () -> None
          | Error e -> Some e
        with Fault.Injected f ->
          fault := Some (Fault.describe f);
          None)
  in
  {
    ir_index = idx.Table.idx_name;
    ir_entries = !entries;
    ir_missing = missing;
    ir_phantom = !phantom;
    ir_structural = structural;
    ir_fault = !fault;
  }

let run ?meter table =
  let meter = match meter with Some m -> m | None -> Cost.create () in
  let before = Cost.total meter in
  let heap_rows, per_index = expected_entries table meter in
  let indexes =
    List.map (fun (idx, expected) -> check_index meter idx expected) per_index
  in
  {
    table = Table.name table;
    heap_rows;
    indexes;
    cost = Cost.total meter -. before;
  }

let damage_to_string r =
  if clean r then "clean"
  else
    String.concat "; "
      (List.filter_map
         (fun x -> x)
         [
           (if r.ir_missing > 0 then Some (Printf.sprintf "%d missing" r.ir_missing)
            else None);
           (if r.ir_phantom > 0 then Some (Printf.sprintf "%d phantom" r.ir_phantom)
            else None);
           Option.map (fun e -> "structural: " ^ e) r.ir_structural;
           Option.map (fun f -> "unreadable: " ^ f) r.ir_fault;
         ])

let index_report_to_string r =
  Printf.sprintf "%-12s %6d entries  %s" r.ir_index r.ir_entries (damage_to_string r)

let report_to_string rep =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "check %s: %d heap rows, %d indexes, cost %.0f\n" rep.table
       rep.heap_rows (List.length rep.indexes) rep.cost);
  List.iter
    (fun r -> Buffer.add_string b ("  " ^ index_report_to_string r ^ "\n"))
    rep.indexes;
  Buffer.contents b

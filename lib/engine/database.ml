
open Rdb_storage

type t = { pool : Buffer_pool.t; tables : (string, Table.t) Hashtbl.t }

let create ?(pool_capacity = 256) ?(pool_shards = 1) () =
  {
    pool = Buffer_pool.create ~shards:pool_shards ~capacity:pool_capacity ();
    tables = Hashtbl.create 8;
  }

let pool t = t.pool

let create_table t ?page_bytes ~name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: duplicate table " ^ name);
  let table = Table.create ?page_bytes t.pool ~name schema in
  Hashtbl.add t.tables name table;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise Not_found

let find_table t name = Hashtbl.find_opt t.tables name

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let drop_table t name =
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    true
  end
  else false
